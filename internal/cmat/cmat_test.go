package cmat

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func cApprox(a, b complex128, tol float64) bool { return cmplx.Abs(a-b) <= tol }

func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return m
}

// randomHermitian returns A A^H + eps*I, guaranteed Hermitian PSD.
func randomHermitian(rng *rand.Rand, n int) *Matrix {
	a := randomMatrix(rng, n, n)
	h := a.Mul(a.Herm())
	h.Hermitize()
	return h
}

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3)
	if m.Rows != 2 || m.Cols != 3 || len(m.Data) != 6 {
		t.Fatalf("New(2,3) = %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	m.Set(1, 2, 3+4i)
	if m.At(1, 2) != 3+4i {
		t.Fatalf("At(1,2) = %v, want 3+4i", m.At(1, 2))
	}
	if m.At(0, 0) != 0 {
		t.Fatalf("zero matrix has nonzero element")
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	for _, dims := range [][2]int{{0, 1}, {1, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			New(dims[0], dims[1])
		}()
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]complex128{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("FromRows layout wrong: %v", m)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("ragged FromRows did not panic")
			}
		}()
		FromRows([][]complex128{{1, 2}, {3}})
	}()
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			want := complex128(0)
			if r == c {
				want = 1
			}
			if id.At(r, c) != want {
				t.Fatalf("Identity(3)[%d][%d] = %v", r, c, id.At(r, c))
			}
		}
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromRows([][]complex128{{1, 2i}, {3, 4}})
	b := FromRows([][]complex128{{5, 6}, {7i, 8}})
	sum := a.Add(b)
	if sum.At(0, 0) != 6 || sum.At(0, 1) != 6+2i {
		t.Fatalf("Add wrong: %v", sum)
	}
	diff := sum.Sub(b)
	if !diff.Equal(a, 1e-15) {
		t.Fatalf("Add then Sub did not round-trip")
	}
	sc := a.Scale(2i)
	if sc.At(0, 0) != 2i || sc.At(1, 1) != 8i {
		t.Fatalf("Scale wrong: %v", sc)
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomMatrix(rng, 4, 4)
	if !a.Mul(Identity(4)).Equal(a, 1e-12) {
		t.Error("A*I != A")
	}
	if !Identity(4).Mul(a).Equal(a, 1e-12) {
		t.Error("I*A != A")
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {3, 4}})
	b := FromRows([][]complex128{{0, 1}, {1, 0}})
	got := a.Mul(b)
	want := FromRows([][]complex128{{2, 1}, {4, 3}})
	if !got.Equal(want, 1e-15) {
		t.Fatalf("Mul = %v, want %v", got, want)
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomMatrix(rng, 3, 5)
	v := make([]complex128, 5)
	for i := range v {
		v[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	col := New(5, 1)
	for i, x := range v {
		col.Set(i, 0, x)
	}
	want := a.Mul(col)
	got := a.MulVec(v)
	for i := range got {
		if !cApprox(got[i], want.At(i, 0), 1e-12) {
			t.Fatalf("MulVec[%d] = %v, want %v", i, got[i], want.At(i, 0))
		}
	}
}

func TestHermAndTranspose(t *testing.T) {
	a := FromRows([][]complex128{{1 + 1i, 2}, {3, 4 - 2i}})
	h := a.Herm()
	if h.At(0, 0) != 1-1i || h.At(0, 1) != 3 || h.At(1, 0) != 2 || h.At(1, 1) != 4+2i {
		t.Fatalf("Herm wrong: %v", h)
	}
	tr := a.Transpose()
	if tr.At(0, 1) != 3 || tr.At(1, 0) != 2 {
		t.Fatalf("Transpose wrong: %v", tr)
	}
}

func TestHermIsInvolution(t *testing.T) {
	f := func(re, im [4]float64) bool {
		m := New(2, 2)
		for i := 0; i < 4; i++ {
			m.Data[i] = complex(re[i], im[i])
		}
		return m.Herm().Herm().Equal(m, 1e-15)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOuterAndAccumulate(t *testing.T) {
	a := []complex128{1, 2i}
	b := []complex128{3, 4}
	o := Outer(a, b)
	if o.At(0, 0) != 3 || o.At(1, 0) != 6i || o.At(1, 1) != 8i {
		t.Fatalf("Outer wrong: %v", o)
	}
	acc := New(2, 2)
	acc.AccumulateOuter(a, b)
	acc.AccumulateOuter(a, b)
	if !acc.Equal(o.Scale(2), 1e-15) {
		t.Fatalf("AccumulateOuter twice != 2*Outer")
	}
}

func TestDotNormNormalize(t *testing.T) {
	a := []complex128{1i, 0}
	b := []complex128{1i, 2}
	// a^H b = conj(i)*i = 1.
	if got := Dot(a, b); !cApprox(got, 1, 1e-15) {
		t.Fatalf("Dot = %v, want 1", got)
	}
	v := []complex128{3, 4i}
	if got := Norm2(v); math.Abs(got-5) > 1e-15 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
	n := Normalize(v)
	if math.Abs(n-5) > 1e-15 || math.Abs(Norm2(v)-1) > 1e-12 {
		t.Fatalf("Normalize: returned %v, new norm %v", n, Norm2(v))
	}
	var zero []complex128
	if Normalize(zero) != 0 {
		t.Error("Normalize(nil) should return 0")
	}
}

func TestTraceAndFrobNorm(t *testing.T) {
	a := FromRows([][]complex128{{1, 9}, {9, 2i}})
	if got := a.Trace(); got != 1+2i {
		t.Fatalf("Trace = %v", got)
	}
	b := FromRows([][]complex128{{3, 0}, {0, 4}})
	if got := b.FrobNorm(); math.Abs(got-5) > 1e-15 {
		t.Fatalf("FrobNorm = %v, want 5", got)
	}
}

func TestIsHermitianAndHermitize(t *testing.T) {
	h := FromRows([][]complex128{{2, 1 + 1i}, {1 - 1i, 3}})
	if !h.IsHermitian(1e-12) {
		t.Error("known Hermitian matrix rejected")
	}
	nh := FromRows([][]complex128{{2, 1}, {5, 3}})
	if nh.IsHermitian(1e-12) {
		t.Error("non-Hermitian matrix accepted")
	}
	nh.Hermitize()
	if !nh.IsHermitian(0) {
		t.Error("Hermitize did not produce Hermitian matrix")
	}
	if nh.At(0, 1) != 3 || nh.At(1, 0) != 3 {
		t.Errorf("Hermitize average wrong: %v", nh)
	}
}

func TestSubmatrixColRow(t *testing.T) {
	a := FromRows([][]complex128{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	s := a.Submatrix(1, 3, 0, 2)
	want := FromRows([][]complex128{{4, 5}, {7, 8}})
	if !s.Equal(want, 0) {
		t.Fatalf("Submatrix = %v", s)
	}
	col := a.Col(2)
	if col[0] != 3 || col[2] != 9 {
		t.Fatalf("Col = %v", col)
	}
	row := a.Row(1)
	if row[0] != 4 || row[2] != 6 {
		t.Fatalf("Row = %v", row)
	}
}

// --- Eigendecomposition ---

func TestHermEigDiagonal(t *testing.T) {
	d := FromRows([][]complex128{{3, 0}, {0, 1}})
	e, err := HermEig(d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.Values[0]-3) > 1e-12 || math.Abs(e.Values[1]-1) > 1e-12 {
		t.Fatalf("Values = %v", e.Values)
	}
}

func TestHermEigKnown2x2(t *testing.T) {
	// [[2, i], [-i, 2]] has eigenvalues 3 and 1.
	a := FromRows([][]complex128{{2, 1i}, {-1i, 2}})
	e, err := HermEig(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.Values[0]-3) > 1e-10 || math.Abs(e.Values[1]-1) > 1e-10 {
		t.Fatalf("Values = %v, want [3 1]", e.Values)
	}
	// Check A v = lambda v for both pairs.
	for k := 0; k < 2; k++ {
		v := e.Vectors.Col(k)
		av := a.MulVec(v)
		for i := range av {
			if !cApprox(av[i], complex(e.Values[k], 0)*v[i], 1e-9) {
				t.Fatalf("eigenpair %d violated: Av=%v lambda*v=%v", k, av[i], complex(e.Values[k], 0)*v[i])
			}
		}
	}
}

func TestHermEigReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for n := 2; n <= 8; n++ {
		a := randomHermitian(rng, n)
		e, err := HermEig(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Rebuild A = V diag V^H.
		d := New(n, n)
		for i, v := range e.Values {
			d.Set(i, i, complex(v, 0))
		}
		rebuilt := e.Vectors.Mul(d).Mul(e.Vectors.Herm())
		if !rebuilt.Equal(a, 1e-8*(1+a.FrobNorm())) {
			t.Fatalf("n=%d: reconstruction error %v", n, rebuilt.Sub(a).FrobNorm())
		}
		// Eigenvalues sorted descending.
		for i := 1; i < n; i++ {
			if e.Values[i] > e.Values[i-1]+1e-12 {
				t.Fatalf("n=%d: eigenvalues not sorted: %v", n, e.Values)
			}
		}
		// V unitary.
		vv := e.Vectors.Herm().Mul(e.Vectors)
		if !vv.Equal(Identity(n), 1e-9) {
			t.Fatalf("n=%d: eigenvectors not orthonormal", n)
		}
	}
}

func TestHermEigPropertyTraceAndPSD(t *testing.T) {
	// Property: eigenvalue sum equals trace; A A^H eigenvalues nonnegative.
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		n := 2 + r.Intn(7)
		a := randomHermitian(r, n)
		e, err := HermEig(a)
		if err != nil {
			return false
		}
		var sum float64
		for _, v := range e.Values {
			sum += v
			if v < -1e-8 {
				return false
			}
		}
		return math.Abs(sum-real(a.Trace())) < 1e-8*(1+math.Abs(sum))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestHermEigRejectsNonHermitian(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {3, 4}})
	if _, err := HermEig(a); err != ErrNotHermitian {
		t.Fatalf("err = %v, want ErrNotHermitian", err)
	}
}

func TestHermEigZeroMatrix(t *testing.T) {
	e, err := HermEig(New(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range e.Values {
		if v != 0 {
			t.Fatalf("zero matrix eigenvalues = %v", e.Values)
		}
	}
}

func TestSubspaces(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomHermitian(rng, 5)
	e, err := HermEig(a)
	if err != nil {
		t.Fatal(err)
	}
	ns := e.NoiseSubspace(2)
	if ns.Rows != 5 || ns.Cols != 3 {
		t.Fatalf("NoiseSubspace dims %dx%d", ns.Rows, ns.Cols)
	}
	ss := e.SignalSubspace(2)
	if ss.Rows != 5 || ss.Cols != 2 {
		t.Fatalf("SignalSubspace dims %dx%d", ss.Rows, ss.Cols)
	}
	// Signal and noise subspaces must be orthogonal.
	cross := ss.Herm().Mul(ns)
	if cross.FrobNorm() > 1e-9 {
		t.Fatalf("subspaces not orthogonal: %v", cross.FrobNorm())
	}
}

// --- Solve / Inverse ---

func TestSolveKnown(t *testing.T) {
	a := FromRows([][]complex128{{2, 0}, {0, 4}})
	x, err := Solve(a, []complex128{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if !cApprox(x[0], 1, 1e-12) || !cApprox(x[1], 2, 1e-12) {
		t.Fatalf("Solve = %v", x)
	}
}

func TestSolveRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(7)
		a := randomMatrix(rng, n, n)
		want := make([]complex128, n)
		for i := range want {
			want[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		b := a.MulVec(want)
		got, err := Solve(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range got {
			if !cApprox(got[i], want[i], 1e-8*(1+cmplx.Abs(want[i]))) {
				t.Fatalf("trial %d: x[%d]=%v want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestSolveSingular(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {2, 4}})
	if _, err := Solve(a, []complex128{1, 2}); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randomMatrix(rng, 4, 4)
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Mul(inv).Equal(Identity(4), 1e-9) {
		t.Fatal("A * A^-1 != I")
	}
	if !inv.Mul(a).Equal(Identity(4), 1e-9) {
		t.Fatal("A^-1 * A != I")
	}
}

func TestSolveLeastSquaresReal(t *testing.T) {
	// Overdetermined consistent system: y = 2x + 1 sampled at x=0..3.
	a := [][]float64{{0, 1}, {1, 1}, {2, 1}, {3, 1}}
	b := []float64{1, 3, 5, 7}
	x, err := SolveLeastSquaresReal(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-10 || math.Abs(x[1]-1) > 1e-10 {
		t.Fatalf("least squares = %v, want [2 1]", x)
	}
}

func TestSolveLeastSquaresRejectsBadInput(t *testing.T) {
	if _, err := SolveLeastSquaresReal(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := SolveLeastSquaresReal([][]float64{{1, 2}, {3}}, []float64{1, 2}); err == nil {
		t.Error("ragged input accepted")
	}
}

func BenchmarkHermEig8x8(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	a := randomHermitian(rng, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := HermEig(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMul8x8(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	x := randomMatrix(rng, 8, 8)
	y := randomMatrix(rng, 8, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Mul(y)
	}
}
