package cmat

import (
	"errors"
	"math"
	"math/cmplx"
)

// EigResult holds the eigendecomposition of a Hermitian matrix:
// A = V diag(Values) V^H, with Values sorted descending and the k-th column
// of Vectors the unit eigenvector for Values[k].
type EigResult struct {
	Values  []float64 // real eigenvalues, descending
	Vectors *Matrix   // columns are eigenvectors
}

// ErrNotHermitian is returned by HermEig when the input is not Hermitian.
var ErrNotHermitian = errors.New("cmat: matrix is not Hermitian")

// ErrNoConverge is returned when the Jacobi iteration fails to reduce the
// off-diagonal mass within the sweep budget. For the well-conditioned 8x8
// covariances SecureAngle produces this does not occur in practice.
var ErrNoConverge = errors.New("cmat: Jacobi eigensolver did not converge")

const (
	jacobiMaxSweeps = 64
	jacobiTol       = 1e-13
)

// HermEig computes the eigendecomposition of a Hermitian matrix using the
// cyclic complex Jacobi method. Each (p,q) pair is annihilated with a
// unitary plane rotation built from the 2x2 Hermitian subproblem; rotations
// are accumulated into the eigenvector matrix. Convergence is quadratic
// near the diagonal, and the method is unconditionally stable, which
// matters more than speed for the small (<=8x8) matrices in this system.
func HermEig(a *Matrix) (*EigResult, error) {
	var ws EigWorkspace
	return ws.HermEig(a)
}

// EigWorkspace holds the Jacobi solver's working matrices and result
// storage so repeated eigendecompositions of same-sized matrices perform
// no heap allocation — the per-packet pipeline decomposes one 8x8
// covariance per packet. The EigResult returned by HermEig aliases the
// workspace and is valid until the next HermEig call on it. Not safe
// for concurrent use.
type EigWorkspace struct {
	w, v *Matrix
	idx  []int
	vals []float64
	col  []complex128
	res  EigResult
}

func (ws *EigWorkspace) ensure(n int) {
	if ws.w != nil && ws.w.Rows == n {
		return
	}
	ws.w = New(n, n)
	ws.v = New(n, n)
	ws.idx = make([]int, n)
	ws.vals = make([]float64, n)
	ws.col = make([]complex128, n)
	ws.res = EigResult{Values: make([]float64, n), Vectors: New(n, n)}
}

// HermEig is the package-level HermEig computing into the workspace; see
// EigWorkspace for the aliasing contract.
func (ws *EigWorkspace) HermEig(a *Matrix) (*EigResult, error) {
	if !a.IsHermitian(1e-9 * (1 + a.FrobNorm())) {
		return nil, ErrNotHermitian
	}
	n := a.Rows
	ws.ensure(n)
	w, v := ws.w, ws.v
	copy(w.Data, a.Data)
	w.Hermitize()
	for i := range v.Data {
		v.Data[i] = 0
	}
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}

	scale := w.FrobNorm()
	if scale == 0 {
		// Zero matrix: eigenvalues all zero, identity eigenvectors.
		return ws.sortedEig(), nil
	}

	for sweep := 0; sweep < jacobiMaxSweeps; sweep++ {
		off := offDiagNorm(w)
		if off <= jacobiTol*scale {
			return ws.sortedEig(), nil
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				jacobiRotate(w, v, p, q)
			}
		}
	}
	if offDiagNorm(w) <= 1e-8*scale {
		// Converged to a looser tolerance; still usable.
		return ws.sortedEig(), nil
	}
	return nil, ErrNoConverge
}

// jacobiRotate annihilates w[p][q] (and by symmetry w[q][p]) with a unitary
// plane rotation, updating w in place and accumulating the rotation into v.
//
// The complex 2x2 Hermitian subproblem is reduced to the real symmetric
// case by factoring out the phase of w[p][q]: with w[p][q] = mag*e^{i phi},
// the unitary G restricted to the (p,q) plane is
//
//	G = | c            s           |   applied as W <- G^H W G,
//	    | -s*e^{-iphi} c*e^{-iphi} |
//
// where c = cos(theta), s = sin(theta) solve the real Jacobi angle
// cot(2 theta) = (w[q][q]-w[p][p]) / (2*mag).
func jacobiRotate(w, v *Matrix, p, q int) {
	apq := w.At(p, q)
	mag := cmplx.Abs(apq)
	if mag == 0 {
		return
	}
	app := real(w.At(p, p))
	aqq := real(w.At(q, q))
	ph := apq / complex(mag, 0) // e^{i phi}

	// Real Jacobi angle (Numerical Recipes convention).
	var t float64 // tan(theta)
	theta := (aqq - app) / (2 * mag)
	if theta == 0 {
		t = 1
	} else {
		t = math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
	}
	c := 1 / math.Sqrt(1+t*t)
	s := t * c

	cs := complex(c, 0)
	sn := complex(s, 0)
	phc := cmplx.Conj(ph)

	n := w.Rows
	// W <- W G (column update).
	for k := 0; k < n; k++ {
		wkp := w.At(k, p)
		wkq := w.At(k, q)
		w.Set(k, p, cs*wkp-sn*phc*wkq)
		w.Set(k, q, sn*wkp+cs*phc*wkq)
	}
	// W <- G^H W (row update).
	for k := 0; k < n; k++ {
		wpk := w.At(p, k)
		wqk := w.At(q, k)
		w.Set(p, k, cs*wpk-sn*ph*wqk)
		w.Set(q, k, sn*wpk+cs*ph*wqk)
	}
	// Clean up the annihilated pair and enforce a real diagonal against
	// floating-point drift.
	w.Set(p, q, 0)
	w.Set(q, p, 0)
	w.Set(p, p, complex(real(w.At(p, p)), 0))
	w.Set(q, q, complex(real(w.At(q, q)), 0))

	// Accumulate V <- V G.
	for k := 0; k < n; k++ {
		vkp := v.At(k, p)
		vkq := v.At(k, q)
		v.Set(k, p, cs*vkp-sn*phc*vkq)
		v.Set(k, q, sn*vkp+cs*phc*vkq)
	}
}

func offDiagNorm(m *Matrix) float64 {
	var s float64
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			if r == c {
				continue
			}
			v := m.At(r, c)
			s += real(v)*real(v) + imag(v)*imag(v)
		}
	}
	return math.Sqrt(s)
}

func (ws *EigWorkspace) sortedEig() *EigResult {
	w, v := ws.w, ws.v
	n := w.Rows
	idx, vals := ws.idx, ws.vals
	for i := 0; i < n; i++ {
		idx[i] = i
		vals[i] = real(w.At(i, i))
	}
	// Insertion sort, descending by eigenvalue: allocation-free (the
	// reflective sort.Slice closure allocates) and plenty for n <= 8.
	for i := 1; i < n; i++ {
		j := i
		for j > 0 && vals[idx[j]] > vals[idx[j-1]] {
			idx[j], idx[j-1] = idx[j-1], idx[j]
			j--
		}
	}

	res := &ws.res
	col := ws.col
	for out, in := range idx {
		res.Values[out] = vals[in]
		for r := 0; r < n; r++ {
			col[r] = v.At(r, in)
		}
		Normalize(col)
		for r := 0; r < n; r++ {
			res.Vectors.Set(r, out, col[r])
		}
	}
	return res
}

// NoiseSubspace returns the matrix whose columns are the eigenvectors for
// the n-k smallest eigenvalues — MUSIC's noise subspace for k sources.
func (e *EigResult) NoiseSubspace(k int) *Matrix {
	n := len(e.Values)
	if k < 0 || k >= n {
		panic("cmat: NoiseSubspace requires 0 <= k < n")
	}
	return e.Vectors.Submatrix(0, n, k, n)
}

// SignalSubspace returns the eigenvectors for the k largest eigenvalues.
func (e *EigResult) SignalSubspace(k int) *Matrix {
	n := len(e.Values)
	if k <= 0 || k > n {
		panic("cmat: SignalSubspace requires 0 < k <= n")
	}
	return e.Vectors.Submatrix(0, n, 0, k)
}
