// Package cmat implements dense complex-valued vectors and matrices with
// the operations SecureAngle's array processing needs: arithmetic,
// Hermitian transposes, outer products, linear solves, and a Hermitian
// eigendecomposition.
//
// The package is self-contained (stdlib only) because the Go ecosystem has
// no standard complex linear algebra; the matrices involved are small
// (antenna counts of 2-8, so 8x8 covariances), which lets us favour
// numerically robust O(n^3) algorithms over tuned BLAS-style kernels.
package cmat

import (
	"fmt"
	"math"
	"math/cmplx"
	"strings"
)

// Matrix is a dense, row-major complex matrix.
type Matrix struct {
	Rows, Cols int
	Data       []complex128 // len Rows*Cols, Data[r*Cols+c]
}

// New returns a zero matrix with the given dimensions.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("cmat: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]complex128, rows*cols)}
}

// FromRows builds a matrix from row slices. All rows must share a length.
func FromRows(rows [][]complex128) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("cmat: FromRows requires a non-empty rectangular input")
	}
	m := New(len(rows), len(rows[0]))
	for r, row := range rows {
		if len(row) != m.Cols {
			panic("cmat: FromRows rows have differing lengths")
		}
		copy(m.Data[r*m.Cols:(r+1)*m.Cols], row)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns the element at row r, column c.
func (m *Matrix) At(r, c int) complex128 { return m.Data[r*m.Cols+c] }

// Set assigns the element at row r, column c.
func (m *Matrix) Set(r, c int, v complex128) { m.Data[r*m.Cols+c] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Equal reports whether m and n have the same shape and elements within tol
// (per element, in absolute value).
func (m *Matrix) Equal(n *Matrix, tol float64) bool {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		return false
	}
	for i := range m.Data {
		if cmplx.Abs(m.Data[i]-n.Data[i]) > tol {
			return false
		}
	}
	return true
}

// Add returns m + n.
func (m *Matrix) Add(n *Matrix) *Matrix {
	m.mustMatch(n)
	out := New(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = m.Data[i] + n.Data[i]
	}
	return out
}

// Sub returns m - n.
func (m *Matrix) Sub(n *Matrix) *Matrix {
	m.mustMatch(n)
	out := New(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = m.Data[i] - n.Data[i]
	}
	return out
}

// AddInPlace accumulates n into m.
func (m *Matrix) AddInPlace(n *Matrix) {
	m.mustMatch(n)
	for i := range m.Data {
		m.Data[i] += n.Data[i]
	}
}

// Scale returns s * m.
func (m *Matrix) Scale(s complex128) *Matrix {
	out := New(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = s * m.Data[i]
	}
	return out
}

// ScaleInPlace multiplies every element of m by s.
func (m *Matrix) ScaleInPlace(s complex128) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// Mul returns the matrix product m * n.
func (m *Matrix) Mul(n *Matrix) *Matrix {
	if m.Cols != n.Rows {
		panic(fmt.Sprintf("cmat: Mul shape mismatch %dx%d * %dx%d", m.Rows, m.Cols, n.Rows, n.Cols))
	}
	out := New(m.Rows, n.Cols)
	for r := 0; r < m.Rows; r++ {
		for k := 0; k < m.Cols; k++ {
			a := m.Data[r*m.Cols+k]
			if a == 0 {
				continue
			}
			nRow := n.Data[k*n.Cols : (k+1)*n.Cols]
			oRow := out.Data[r*out.Cols : (r+1)*out.Cols]
			for c := range nRow {
				oRow[c] += a * nRow[c]
			}
		}
	}
	return out
}

// MulInto computes the matrix product a * b into dst, reshaping dst's
// backing storage only when too small — the in-place variant of Mul for
// allocation-free hot paths. dst must not alias a or b. Returns dst.
func MulInto(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("cmat: MulInto shape mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	need := a.Rows * b.Cols
	if cap(dst.Data) < need {
		dst.Data = make([]complex128, need)
	}
	dst.Rows, dst.Cols = a.Rows, b.Cols
	dst.Data = dst.Data[:need]
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	for r := 0; r < a.Rows; r++ {
		for k := 0; k < a.Cols; k++ {
			av := a.Data[r*a.Cols+k]
			if av == 0 {
				continue
			}
			bRow := b.Data[k*b.Cols : (k+1)*b.Cols]
			oRow := dst.Data[r*dst.Cols : (r+1)*dst.Cols]
			for c := range bRow {
				oRow[c] += av * bRow[c]
			}
		}
	}
	return dst
}

// MulVec returns the matrix-vector product m * v.
func (m *Matrix) MulVec(v []complex128) []complex128 {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("cmat: MulVec shape mismatch %dx%d * %d", m.Rows, m.Cols, len(v)))
	}
	out := make([]complex128, m.Rows)
	for r := 0; r < m.Rows; r++ {
		var s complex128
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		for c, a := range row {
			s += a * v[c]
		}
		out[r] = s
	}
	return out
}

// Transpose returns the (non-conjugated) transpose of m.
func (m *Matrix) Transpose() *Matrix {
	out := New(m.Cols, m.Rows)
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			out.Set(c, r, m.At(r, c))
		}
	}
	return out
}

// Herm returns the Hermitian (conjugate) transpose of m.
func (m *Matrix) Herm() *Matrix {
	out := New(m.Cols, m.Rows)
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			out.Set(c, r, cmplx.Conj(m.At(r, c)))
		}
	}
	return out
}

// Conj returns the element-wise conjugate of m.
func (m *Matrix) Conj() *Matrix {
	out := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = cmplx.Conj(v)
	}
	return out
}

// Col returns a copy of column c.
func (m *Matrix) Col(c int) []complex128 {
	out := make([]complex128, m.Rows)
	for r := 0; r < m.Rows; r++ {
		out[r] = m.At(r, c)
	}
	return out
}

// Row returns a copy of row r.
func (m *Matrix) Row(r int) []complex128 {
	out := make([]complex128, m.Cols)
	copy(out, m.Data[r*m.Cols:(r+1)*m.Cols])
	return out
}

// Submatrix returns the block m[r0:r1, c0:c1] as a copy.
func (m *Matrix) Submatrix(r0, r1, c0, c1 int) *Matrix {
	if r0 < 0 || c0 < 0 || r1 > m.Rows || c1 > m.Cols || r0 >= r1 || c0 >= c1 {
		panic("cmat: Submatrix bounds out of range")
	}
	out := New(r1-r0, c1-c0)
	for r := r0; r < r1; r++ {
		copy(out.Data[(r-r0)*out.Cols:(r-r0+1)*out.Cols], m.Data[r*m.Cols+c0:r*m.Cols+c1])
	}
	return out
}

// Outer returns the outer product a * b^H, an len(a) x len(b) matrix.
func Outer(a, b []complex128) *Matrix {
	out := New(len(a), len(b))
	for r, av := range a {
		for c, bv := range b {
			out.Set(r, c, av*cmplx.Conj(bv))
		}
	}
	return out
}

// AccumulateOuter adds a * b^H into m, for covariance accumulation without
// per-sample allocation.
func (m *Matrix) AccumulateOuter(a, b []complex128) {
	if m.Rows != len(a) || m.Cols != len(b) {
		panic("cmat: AccumulateOuter shape mismatch")
	}
	for r, av := range a {
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		for c, bv := range b {
			row[c] += av * cmplx.Conj(bv)
		}
	}
}

// Dot returns the Hermitian inner product a^H b.
func Dot(a, b []complex128) complex128 {
	if len(a) != len(b) {
		panic("cmat: Dot length mismatch")
	}
	var s complex128
	for i := range a {
		s += cmplx.Conj(a[i]) * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []complex128) float64 {
	var s float64
	for _, x := range v {
		s += real(x)*real(x) + imag(x)*imag(x)
	}
	return math.Sqrt(s)
}

// Normalize scales v in place to unit Euclidean norm; zero vectors are left
// untouched. It returns the original norm.
func Normalize(v []complex128) float64 {
	n := Norm2(v)
	if n == 0 {
		return 0
	}
	inv := complex(1/n, 0)
	for i := range v {
		v[i] *= inv
	}
	return n
}

// FrobNorm returns the Frobenius norm of m.
func (m *Matrix) FrobNorm() float64 {
	var s float64
	for _, x := range m.Data {
		s += real(x)*real(x) + imag(x)*imag(x)
	}
	return math.Sqrt(s)
}

// Trace returns the trace of a square matrix.
func (m *Matrix) Trace() complex128 {
	m.mustSquare()
	var s complex128
	for i := 0; i < m.Rows; i++ {
		s += m.At(i, i)
	}
	return s
}

// IsHermitian reports whether m equals its conjugate transpose within tol.
func (m *Matrix) IsHermitian(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for r := 0; r < m.Rows; r++ {
		for c := r; c < m.Cols; c++ {
			if cmplx.Abs(m.At(r, c)-cmplx.Conj(m.At(c, r))) > tol {
				return false
			}
		}
	}
	return true
}

// Hermitize overwrites m with (m + m^H)/2, forcing exact Hermitian symmetry.
// Useful to cancel floating-point asymmetry in accumulated covariances.
func (m *Matrix) Hermitize() {
	m.mustSquare()
	for r := 0; r < m.Rows; r++ {
		m.Set(r, r, complex(real(m.At(r, r)), 0))
		for c := r + 1; c < m.Cols; c++ {
			v := (m.At(r, c) + cmplx.Conj(m.At(c, r))) / 2
			m.Set(r, c, v)
			m.Set(c, r, cmplx.Conj(v))
		}
	}
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			v := m.At(r, c)
			fmt.Fprintf(&b, "% .4f%+.4fi ", real(v), imag(v))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func (m *Matrix) mustMatch(n *Matrix) {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		panic(fmt.Sprintf("cmat: shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, n.Rows, n.Cols))
	}
}

func (m *Matrix) mustSquare() {
	if m.Rows != m.Cols {
		panic(fmt.Sprintf("cmat: %dx%d matrix is not square", m.Rows, m.Cols))
	}
}
