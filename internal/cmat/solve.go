package cmat

import (
	"errors"
	"math/cmplx"
)

// ErrSingular is returned when a linear solve meets a (numerically)
// singular matrix.
var ErrSingular = errors.New("cmat: singular matrix")

// Solve returns x with a*x = b using Gaussian elimination with partial
// pivoting. a must be square; b's length must equal a's dimension. a and b
// are not modified.
func Solve(a *Matrix, b []complex128) ([]complex128, error) {
	a.mustSquare()
	n := a.Rows
	if len(b) != n {
		return nil, errors.New("cmat: Solve dimension mismatch")
	}
	// Augmented working copies.
	w := a.Clone()
	x := make([]complex128, n)
	copy(x, b)

	for col := 0; col < n; col++ {
		// Partial pivot: find the largest magnitude entry in this column.
		pivot := col
		best := cmplx.Abs(w.At(col, col))
		for r := col + 1; r < n; r++ {
			if m := cmplx.Abs(w.At(r, col)); m > best {
				best, pivot = m, r
			}
		}
		if best == 0 {
			return nil, ErrSingular
		}
		if pivot != col {
			for c := 0; c < n; c++ {
				w.Data[col*n+c], w.Data[pivot*n+c] = w.Data[pivot*n+c], w.Data[col*n+c]
			}
			x[col], x[pivot] = x[pivot], x[col]
		}
		inv := 1 / w.At(col, col)
		for r := col + 1; r < n; r++ {
			f := w.At(r, col) * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				w.Set(r, c, w.At(r, c)-f*w.At(col, c))
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for r := n - 1; r >= 0; r-- {
		s := x[r]
		for c := r + 1; c < n; c++ {
			s -= w.At(r, c) * x[c]
		}
		x[r] = s / w.At(r, r)
	}
	return x, nil
}

// Inverse returns the inverse of a square matrix, or ErrSingular.
func Inverse(a *Matrix) (*Matrix, error) {
	a.mustSquare()
	n := a.Rows
	out := New(n, n)
	// Solve against each unit basis vector. O(n^4) but n <= 8 here.
	e := make([]complex128, n)
	for c := 0; c < n; c++ {
		for i := range e {
			e[i] = 0
		}
		e[c] = 1
		col, err := Solve(a, e)
		if err != nil {
			return nil, err
		}
		for r := 0; r < n; r++ {
			out.Set(r, c, col[r])
		}
	}
	return out, nil
}

// SolveLeastSquaresReal solves the real overdetermined system A x = b in the
// least-squares sense via the normal equations. It exists for the bearing
// triangulation in the locate package, where A is tall and skinny (rows =
// number of APs, cols = 2). Inputs are real-valued for clarity at the call
// site; internally we reuse the complex solver.
func SolveLeastSquaresReal(a [][]float64, b []float64) ([]float64, error) {
	if len(a) == 0 || len(a) != len(b) {
		return nil, errors.New("cmat: least squares dimension mismatch")
	}
	cols := len(a[0])
	// Normal equations: (A^T A) x = A^T b.
	ata := New(cols, cols)
	atb := make([]complex128, cols)
	for r, row := range a {
		if len(row) != cols {
			return nil, errors.New("cmat: ragged least squares input")
		}
		for i := 0; i < cols; i++ {
			for j := 0; j < cols; j++ {
				ata.Set(i, j, ata.At(i, j)+complex(row[i]*row[j], 0))
			}
			atb[i] += complex(row[i]*b[r], 0)
		}
	}
	x, err := Solve(ata, atb)
	if err != nil {
		return nil, err
	}
	out := make([]float64, cols)
	for i, v := range x {
		out[i] = real(v)
	}
	return out, nil
}
