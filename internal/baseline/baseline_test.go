package baseline

import (
	"math"
	"testing"
)

func TestFromPowersAndDistance(t *testing.T) {
	a := FromPowers([]float64{1e-6, 1e-7, 1e-8})
	b := FromPowers([]float64{1e-6, 1e-7, 1e-8})
	d, err := Distance(a, b)
	if err != nil || d != 0 {
		t.Fatalf("identical prints distance = %v, %v", d, err)
	}
	c := FromPowers([]float64{1e-6, 1e-7, 1e-9}) // third AP 10 dB lower
	d, err = Distance(a, c)
	if err != nil || math.Abs(d-10) > 1e-9 {
		t.Fatalf("distance = %v, want 10 dB", d)
	}
}

func TestDistanceLengthMismatch(t *testing.T) {
	a := FromPowers([]float64{1, 2})
	b := FromPowers([]float64{1})
	if _, err := Distance(a, b); err != ErrLengthMismatch {
		t.Errorf("err = %v", err)
	}
}

func TestMatcher(t *testing.T) {
	m := DefaultMatcher()
	a := FromPowers([]float64{1e-6, 1e-7})
	near := FromPowers([]float64{1.5e-6, 0.8e-7}) // < 2 dB off
	far := FromPowers([]float64{1e-5, 1e-7})      // 10 dB off on AP 1
	if ok, _ := m.Matches(a, near); !ok {
		t.Error("near print rejected")
	}
	if ok, _ := m.Matches(a, far); ok {
		t.Error("far print accepted")
	}
}

func TestDirectionalAttackerDefeatsRSS(t *testing.T) {
	// The victim's print and the attacker's natural print differ by well
	// under the antenna's gain range: the forged print must pass the
	// 5 dB matcher — RSS identification is subverted (reference [10]).
	victim := FromPowers([]float64{1e-6, 4e-7, 2e-7})
	attackerNatural := FromPowers([]float64{3e-7, 8e-7, 1e-7})
	atk := DirectionalAttacker{MaxGainDB: 20, ErrorDB: 1}
	forged, err := atk.ForgePrint(victim, attackerNatural)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := DefaultMatcher().Matches(victim, forged)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		d, _ := Distance(victim, forged)
		t.Errorf("directional attacker failed to forge RSS (distance %v dB)", d)
	}
}

func TestDirectionalAttackerGainLimited(t *testing.T) {
	// A victim 40 dB hotter at one AP exceeds the 20 dB gain range: the
	// forgery must fail there.
	victim := FromPowers([]float64{1e-2, 1e-7})
	attackerNatural := FromPowers([]float64{1e-6, 1e-7})
	atk := DirectionalAttacker{MaxGainDB: 20}
	forged, err := atk.ForgePrint(victim, attackerNatural)
	if err != nil {
		t.Fatal(err)
	}
	ok, _ := DefaultMatcher().Matches(victim, forged)
	if ok {
		t.Error("40 dB deficit forged with a 20 dB antenna")
	}
}

func TestForgePrintLengthMismatch(t *testing.T) {
	atk := DirectionalAttacker{MaxGainDB: 20}
	if _, err := atk.ForgePrint(FromPowers([]float64{1}), FromPowers([]float64{1, 2})); err != ErrLengthMismatch {
		t.Errorf("err = %v", err)
	}
}
