// Package baseline implements the received-signal-strength "signalprint"
// identification scheme SecureAngle's related work compares against
// (Faria & Cheriton, reference [7]; RADAR, reference [2]) together with
// the directional-antenna attack that defeats it (Patwari & Kasera,
// reference [10]): an attacker who can shape per-AP received power can
// forge an RSS fingerprint, but cannot forge the multipath AoA structure
// an antenna array observes.
package baseline

import (
	"errors"
	"math"

	"secureangle/internal/dsp"
)

// Signalprint is a vector of received signal strengths (dB), one per AP.
type Signalprint struct {
	RSSdB []float64
}

// FromPowers builds a signalprint from linear received powers.
func FromPowers(p []float64) Signalprint {
	out := Signalprint{RSSdB: make([]float64, len(p))}
	for i, v := range p {
		out.RSSdB[i] = dsp.DB(v)
	}
	return out
}

// ErrLengthMismatch reports signalprints over different AP sets.
var ErrLengthMismatch = errors.New("baseline: signalprint lengths differ")

// Distance returns the max-abs difference in dB between two signalprints
// (the matching rule of signalprint systems: prints within a few dB per
// AP are considered the same transmitter).
func Distance(a, b Signalprint) (float64, error) {
	if len(a.RSSdB) != len(b.RSSdB) {
		return 0, ErrLengthMismatch
	}
	var m float64
	for i := range a.RSSdB {
		m = math.Max(m, math.Abs(a.RSSdB[i]-b.RSSdB[i]))
	}
	return m, nil
}

// Matcher applies a signalprint accept threshold.
type Matcher struct {
	// MaxDiffDB accepts prints whose per-AP difference never exceeds this
	// (5 dB is typical in the signalprint literature).
	MaxDiffDB float64
}

// DefaultMatcher returns the conventional 5 dB rule.
func DefaultMatcher() Matcher { return Matcher{MaxDiffDB: 5} }

// Matches reports whether b is accepted as the same transmitter as a.
func (m Matcher) Matches(a, b Signalprint) (bool, error) {
	d, err := Distance(a, b)
	if err != nil {
		return false, err
	}
	return d <= m.MaxDiffDB, nil
}

// DirectionalAttacker models the strong attacker of the threat model
// (section 1: "an attacker equipped with an omnidirectional antenna,
// directional antenna ... or antenna array"). With a steerable
// directional antenna and transmit power control, the attacker measures
// the victim's per-AP RSS and shapes its own emission pattern to
// reproduce it.
type DirectionalAttacker struct {
	// MaxGainDB bounds how much the attacker can boost toward one AP
	// relative to its omnidirectional level (front-to-back ratio of its
	// antenna). 20 dB covers commodity patch/yagi hardware.
	MaxGainDB float64
	// ErrorDB is the residual per-AP matching error the attacker cannot
	// remove (measurement noise, pattern granularity).
	ErrorDB float64
}

// ForgePrint returns the signalprint the attacker achieves when trying to
// imitate victim from its own baseline print (the print it would produce
// with an omnidirectional antenna at its location). Each AP's RSS moves
// from the attacker's natural value toward the victim's, limited by the
// antenna's gain range.
func (a DirectionalAttacker) ForgePrint(victim, attackerNatural Signalprint) (Signalprint, error) {
	if len(victim.RSSdB) != len(attackerNatural.RSSdB) {
		return Signalprint{}, ErrLengthMismatch
	}
	out := Signalprint{RSSdB: make([]float64, len(victim.RSSdB))}
	for i := range victim.RSSdB {
		want := victim.RSSdB[i]
		have := attackerNatural.RSSdB[i]
		adj := want - have
		// Directional shaping bounds the per-AP adjustment.
		if adj > a.MaxGainDB {
			adj = a.MaxGainDB
		}
		if adj < -a.MaxGainDB {
			adj = -a.MaxGainDB
		}
		out.RSSdB[i] = have + adj + a.ErrorDB*sign(want-have)*0.1
	}
	return out, nil
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}
