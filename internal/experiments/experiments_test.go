package experiments

import (
	"strings"
	"testing"
)

// The experiment drivers are the heaviest integration tests in the tree:
// each runs the full env -> radio -> detect -> MUSIC pipeline dozens to
// hundreds of times. They use reduced packet counts where the paper's
// full counts are not needed to verify the qualitative claims.

func TestFig5Reproduction(t *testing.T) {
	if testing.Short() {
		t.Skip("full testbed sweep")
	}
	res, err := RunFig5(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clients) != 20 {
		t.Fatalf("clients = %d", len(res.Clients))
	}
	// Headline: mean 99% CI across clients in the paper's band (~7 deg;
	// allow generous margin for the simulated office).
	if res.MeanCI99 > 12 {
		t.Errorf("mean 99%% CI = %.1f deg, paper reports ~7", res.MeanCI99)
	}
	// Qualitative structure: the pillar/far clients are the bad ones.
	if !res.DegradedClientsWorse() {
		t.Error("clients 6/11/12 are not the degraded ones")
	}
	// Bearing estimates correlate with ground truth: no client should be
	// grossly wrong on average except the known hard cases.
	for _, c := range res.Clients {
		limit := 15.0
		switch c.ID {
		case 6, 11, 12:
			limit = 60 // pillar/far-corner reflection-flip regime
		case 2, 13, 14, 15, 16, 17, 18, 19, 20:
			limit = 30 // through-wall clients: occasional drift-induced flips
		}
		if c.AbsError > limit {
			t.Errorf("client %d mean error %.1f deg exceeds %v", c.ID, c.AbsError, limit)
		}
	}
	if !strings.Contains(res.Render(), "Figure 5") {
		t.Error("render output malformed")
	}
}

func TestFig6Reproduction(t *testing.T) {
	if testing.Short() {
		t.Skip("full testbed sweep")
	}
	res, err := RunFig6(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clients) != 3 {
		t.Fatalf("clients = %d", len(res.Clients))
	}
	for _, c := range res.Clients {
		if len(c.Snapshots) != len(Fig6Offsets) {
			t.Fatalf("client %d snapshots = %d", c.ID, len(c.Snapshots))
		}
		// Short-term similarity must be high (minute-to-minute stability).
		for _, s := range c.Snapshots[:3] { // 0, 1, 10 s
			if s.SimilarityToT0 < 0.9 {
				t.Errorf("client %d at %gs: similarity %.3f, want > 0.9",
					c.ID, s.OffsetSec, s.SimilarityToT0)
			}
		}
	}
	if !res.DirectStableReflectionsWander() {
		t.Error("Figure 6 structure violated: direct peak unstable or no drift at all")
	}
	if !strings.Contains(res.Render(), "Figure 6") {
		t.Error("render output malformed")
	}
}

func TestFig7Reproduction(t *testing.T) {
	if testing.Short() {
		t.Skip("full testbed sweep")
	}
	res, err := RunFig7(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if !res.ResolutionImproves() {
		for _, row := range res.Rows {
			t.Logf("antennas=%d peak=%.1f err=%.1f peaks=%d",
				row.Antennas, row.PeakBearing, row.AbsError, row.PeakCount)
		}
		t.Error("Figure 7 structure violated: resolution does not improve with antennas")
	}
}

func TestAccuracyClaim(t *testing.T) {
	if testing.Short() {
		t.Skip("full testbed sweep")
	}
	res, err := RunAccuracy(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: ~3/4 of clients within 2.5 deg. Require at least half in the
	// simulated office (the exact fraction depends on wall materials).
	if res.FractionWithin2_5 < 0.5 {
		t.Errorf("fraction within 2.5 deg = %.2f, paper ~0.75", res.FractionWithin2_5)
	}
	// Paper: all clients within 14 deg; allow the reflection-flip clients
	// some slack but demand a finite band.
	if res.MaxP95 > 60 {
		t.Errorf("worst client p95 = %.1f deg", res.MaxP95)
	}
	if !strings.Contains(res.Render(), "2.5") {
		t.Error("render output malformed")
	}
}

func TestFenceExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("full testbed sweep")
	}
	res, err := RunFence(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cases) != 24 { // 20 clients + 4 intruders
		t.Fatalf("cases = %d", len(res.Cases))
	}
	// Every outside intruder must be dropped (the security property);
	// most inside clients must be allowed (the availability property).
	var insideOK, insideTotal int
	for _, c := range res.Cases {
		if !c.Inside {
			if c.Decision.String() != "drop" {
				t.Errorf("intruder %s allowed (fused at %v)", c.Label, c.FusedPos)
			}
			continue
		}
		insideTotal++
		if c.Decision.String() == "allow" {
			insideOK++
		}
	}
	if frac := float64(insideOK) / float64(insideTotal); frac < 0.8 {
		t.Errorf("only %.2f of inside clients allowed", frac)
	}
	if res.MedianLocErrM > 1.5 {
		t.Errorf("median localisation error %.2f m", res.MedianLocErrM)
	}
}

func TestSpoofExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("full testbed sweep")
	}
	res, err := RunSpoof(6, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.FalseAlarmRate > 0.2 {
		t.Errorf("false alarm rate %.2f", res.FalseAlarmRate)
	}
	if res.AoADetectionRate < 0.9 {
		t.Errorf("AoA detection rate %.2f, want >= 0.9", res.AoADetectionRate)
	}
	// The directional attacker defeats RSS: its detection rate must be
	// clearly below SecureAngle's.
	if res.RSSDetectionRate >= res.AoADetectionRate {
		t.Errorf("RSS (%.2f) not worse than AoA (%.2f) under directional attack",
			res.RSSDetectionRate, res.AoADetectionRate)
	}
}

func TestEstimatorAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("full testbed sweep")
	}
	res, err := RunEstimatorAblation(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"MUSIC", "Bartlett", "MVDR"} {
		if _, ok := res.MeanErrDeg[name]; !ok {
			t.Errorf("missing estimator %s", name)
		}
	}
	// MUSIC should be at least as accurate as the classical Bartlett
	// beamformer on LoS clients.
	if res.MeanErrDeg["MUSIC"] > res.MeanErrDeg["Bartlett"]+1 {
		t.Errorf("MUSIC %.2f worse than Bartlett %.2f",
			res.MeanErrDeg["MUSIC"], res.MeanErrDeg["Bartlett"])
	}
}

func TestCalibrationAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("full testbed sweep")
	}
	res, err := RunCalibrationAblation(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.WithCalDeg > 5 {
		t.Errorf("calibrated error %.1f deg", res.WithCalDeg)
	}
	if res.WithoutCalDeg < 3*res.WithCalDeg && res.WithoutCalDeg < 15 {
		t.Errorf("uncalibrated error %.1f deg vs calibrated %.1f: calibration appears unnecessary",
			res.WithoutCalDeg, res.WithCalDeg)
	}
}

func TestPacketVsSampleAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("full testbed sweep")
	}
	res, err := RunPacketVsSample(9, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.WholePacketDeg > res.SingleSampleDeg {
		t.Errorf("whole-packet error %.1f worse than single-sample %.1f",
			res.WholePacketDeg, res.SingleSampleDeg)
	}
}
