// Package experiments contains the drivers that regenerate every artefact
// of the paper's evaluation (section 3): Figure 5 (bearing accuracy per
// client), Figure 6 (signature stability over time), Figure 7 (resolution
// versus antenna count), the section 2.3.1 accuracy claim, the virtual
// fence and address-spoofing applications, and the ablations DESIGN.md
// calls out. Each driver returns a structured result that cmd/secureangle
// renders as the paper's rows/series and bench_test.go exercises.
package experiments

import (
	"fmt"
	"math"

	"secureangle/internal/core"
	"secureangle/internal/geom"
	"secureangle/internal/ofdm"
	"secureangle/internal/rng"
	"secureangle/internal/stats"
	"secureangle/internal/testbed"
)

// observe sends one uplink packet from the client and returns the AP's
// report.
func observe(ap *core.AP, clientID int, pos geom.Point, seq uint16) (*core.Report, error) {
	bb, err := testbed.FrameBaseband(testbed.UplinkFrame(clientID, seq, []byte("uplink")), ofdm.QPSK)
	if err != nil {
		return nil, err
	}
	return ap.Observe(pos, bb)
}

// estimateChunkSize bounds how many raw captures a sweep buffers before
// flushing them through the batch worker pool — enough to keep the pool
// busy, small enough that a large -packets run holds O(chunk) captures
// rather than O(packets).
const estimateChunkSize = 32

// synthesize captures one uplink packet's raw per-antenna streams without
// running the estimation stages. The sweeps capture serially — channel
// drift and noise draws stay in a deterministic order, so results match
// the packet-at-a-time drivers bit for bit — and then fan the captures
// out on core's batch worker pool.
func synthesize(ap *core.AP, clientID int, pos geom.Point, seq uint16) ([][]complex128, error) {
	bb, err := testbed.FrameBaseband(testbed.UplinkFrame(clientID, seq, []byte("uplink")), ofdm.QPSK)
	if err != nil {
		return nil, err
	}
	return ap.Receive(pos, bb)
}

// newAP1 builds the standard circular-array AP at the Figure 4 position.
func newAP1(seed int64) *core.AP {
	e, _ := testbed.Building()
	fe := testbed.NewAPFrontEnd(testbed.CircularArray(), testbed.AP1, rng.New(seed))
	return core.NewAP("ap1", fe, e, core.DefaultConfig())
}

// bearingStats converts packet bearings to a circular mean, deviations,
// and a Student-t confidence half-width.
func bearingStats(bearings []float64, conf float64) (mean float64, ci float64) {
	mean = stats.CircularMeanDeg(bearings)
	devs := make([]float64, len(bearings))
	for i, b := range bearings {
		d := math.Mod(b-mean, 360)
		if d > 180 {
			d -= 360
		}
		if d < -180 {
			d += 360
		}
		devs[i] = d
	}
	return mean, stats.ConfidenceInterval(devs, conf)
}

// fmtDeg renders a bearing for table output.
func fmtDeg(v float64) string { return fmt.Sprintf("%7.1f", v) }
