package experiments

import (
	"fmt"
	"strings"

	"secureangle/internal/baseline"
	"secureangle/internal/env"
	"secureangle/internal/geom"
	"secureangle/internal/ofdm"
	"secureangle/internal/signature"
	"secureangle/internal/testbed"
)

// SpoofTrial is one attacker location trying to impersonate the victim.
type SpoofTrial struct {
	AttackerPos geom.Point
	DistanceM   float64 // attacker-to-victim distance
	// AoADetected: SecureAngle flagged the spoofed packet.
	AoADetected bool
	AoADistance float64
	// RSSDetected: the RSS signalprint baseline flagged the attacker
	// even when it shapes power with a directional antenna.
	RSSDetected bool
	RSSDiffDB   float64
}

// SpoofResult is the address-spoofing-prevention experiment.
type SpoofResult struct {
	VictimID int
	// FalseAlarmRate is the fraction of genuine victim packets flagged.
	FalseAlarmRate float64
	// AoADetectionRate / RSSDetectionRate aggregate over attacker
	// positions.
	AoADetectionRate float64
	RSSDetectionRate float64
	Trials           []SpoofTrial
	LegitPackets     int
}

// RunSpoof reproduces the section 2.3.2 application with the related-work
// comparison of section 4: the AP trains on the victim's signature, then
// (a) re-observes the victim to measure false alarms under channel noise,
// and (b) observes an attacker spoofing the victim's MAC from every other
// client position. The RSS baseline faces a directional-antenna attacker
// that shapes per-AP power (reference [10]); SecureAngle faces the same
// attacker, whose antenna cannot forge multipath AoA structure.
func RunSpoof(seed int64, victimID, legitPackets int) (*SpoofResult, error) {
	if legitPackets <= 0 {
		legitPackets = 20
	}
	ap := newAP1(seed)
	victim, err := testbed.ClientByID(victimID)
	if err != nil {
		return nil, err
	}
	// Training stage.
	trainFrame := testbed.UplinkFrame(victimID, 0, []byte("train"))
	if _, err := ap.ProcessFrame(victim.Pos, trainFrame, ofdm.QPSK); err != nil {
		return nil, err
	}

	res := &SpoofResult{VictimID: victimID, LegitPackets: legitPackets}

	// (a) False alarms on genuine traffic.
	var falseAlarms int
	for pkt := 1; pkt <= legitPackets; pkt++ {
		f := testbed.UplinkFrame(victimID, uint16(pkt), []byte("legit"))
		fr, err := ap.ProcessFrame(victim.Pos, f, ofdm.QPSK)
		if err != nil {
			return nil, err
		}
		if fr.Decision == signature.Flag {
			falseAlarms++
		}
	}
	res.FalseAlarmRate = float64(falseAlarms) / float64(legitPackets)

	// RSS prints for the baseline: victim's print at the 3 AP positions.
	e, _ := testbed.Building()
	victimPrint := rssPrint(e, victim.Pos)

	// (b) Attacker from every other client position in the same room set.
	var aoaHits, rssHits int
	for _, c := range testbed.Clients() {
		if c.ID == victimID {
			continue
		}
		spoof := testbed.UplinkFrame(victimID, 100+uint16(c.ID), []byte("spoofed"))
		fr, err := ap.ProcessFrame(c.Pos, spoof, ofdm.QPSK)
		if err != nil {
			continue // unhearable attacker position: no packet, no threat
		}
		trial := SpoofTrial{
			AttackerPos: c.Pos,
			DistanceM:   c.Pos.Dist(victim.Pos),
			AoADetected: fr.Decision == signature.Flag,
			AoADistance: fr.Distance,
		}
		// RSS baseline against the directional attacker.
		atk := baseline.DirectionalAttacker{MaxGainDB: 20, ErrorDB: 1}
		forged, err := atk.ForgePrint(victimPrint, rssPrint(e, c.Pos))
		if err != nil {
			return nil, err
		}
		match, err := baseline.DefaultMatcher().Matches(victimPrint, forged)
		if err != nil {
			return nil, err
		}
		trial.RSSDetected = !match
		trial.RSSDiffDB, _ = baseline.Distance(victimPrint, forged)
		if trial.AoADetected {
			aoaHits++
		}
		if trial.RSSDetected {
			rssHits++
		}
		res.Trials = append(res.Trials, trial)
	}
	if n := len(res.Trials); n > 0 {
		res.AoADetectionRate = float64(aoaHits) / float64(n)
		res.RSSDetectionRate = float64(rssHits) / float64(n)
	}
	return res, nil
}

// rssPrint computes the received power at each AP position from a
// transmitter: the input to the signalprint baseline.
func rssPrint(e *env.Environment, tx geom.Point) baseline.Signalprint {
	apPos := []geom.Point{testbed.AP1, testbed.AP2, testbed.AP3}
	powers := make([]float64, len(apPos))
	for i, ap := range apPos {
		var p float64
		for _, path := range e.Trace(tx, ap) {
			g := real(path.Gain)*real(path.Gain) + imag(path.Gain)*imag(path.Gain)
			p += g
		}
		powers[i] = p
	}
	return baseline.FromPowers(powers)
}

// Render prints the spoofing-prevention comparison.
func (r *SpoofResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Address spoofing prevention (victim = client %d):\n", r.VictimID)
	fmt.Fprintf(&b, "false alarm rate on %d genuine packets: %.2f\n", r.LegitPackets, r.FalseAlarmRate)
	fmt.Fprintf(&b, "%-18s %-10s %-14s %-14s\n", "attacker", "dist(m)", "AoA detect", "RSS detect (directional atk)")
	for _, tr := range r.Trials {
		fmt.Fprintf(&b, "%-18s %-10.1f %-14v %-14v\n", tr.AttackerPos, tr.DistanceM, tr.AoADetected, tr.RSSDetected)
	}
	fmt.Fprintf(&b, "AoA detection rate: %.2f   RSS baseline detection rate: %.2f\n",
		r.AoADetectionRate, r.RSSDetectionRate)
	return b.String()
}
