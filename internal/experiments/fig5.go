package experiments

import (
	"fmt"
	"strings"

	"secureangle/internal/core"
	"secureangle/internal/geom"
	"secureangle/internal/rng"
	"secureangle/internal/stats"
	"secureangle/internal/testbed"
)

// Fig5Client is one row of Figure 5: measured versus ground-truth bearing
// for one client with 99% confidence error bars.
type Fig5Client struct {
	ID           int
	GroundTruth  float64
	MeanBearing  float64
	CI99         float64 // half-width, degrees
	AbsError     float64 // |mean - truth| on the circle
	PacketsUsed  int
	PacketsTried int
}

// Fig5Result is the full Figure 5 dataset.
type Fig5Result struct {
	Clients []Fig5Client
	// MeanCI99 is the mean 99% confidence half-width across clients —
	// the paper reports "as small as 7 degrees".
	MeanCI99 float64
	// PacketsPerClient is the number of pseudospectra per client (10 in
	// the paper).
	PacketsPerClient int
}

// RunFig5 reproduces Figure 5: the circular 8-antenna array at AP1
// estimates each of the 20 clients' bearings from packetsPerClient
// packets; the mean bearing and 99% CI are reported per client. Packets
// are spaced 20 seconds apart with the environment's reflectors drifting
// (people and objects moving in the office between captures) — the source
// of the paper's per-client error bars.
func RunFig5(seed int64, packetsPerClient int) (*Fig5Result, error) {
	if packetsPerClient <= 0 {
		packetsPerClient = 10
	}
	e, _ := testbed.Building()
	e.EnableDrift(rng.New(seed^0xf165), 120, 0.25, 1.1)
	fe := testbed.NewAPFrontEnd(testbed.CircularArray(), testbed.AP1, rng.New(seed))
	ap := core.NewAP("ap1", fe, e, core.DefaultConfig())
	res := &Fig5Result{PacketsPerClient: packetsPerClient}
	var cis []float64
	for _, c := range testbed.Clients() {
		truth := testbed.GroundTruth(testbed.AP1, c.Pos)
		// Capture the client's packets serially (the drift advances
		// between captures), estimating each chunk in parallel so a
		// large packet count never holds more than a chunk of captures.
		var bearings []float64
		var captures [][][]complex128
		flush := func() {
			for _, br := range ap.ProcessStreamsBatch(captures) {
				if br.Err != nil {
					continue // undetected packet: skip, like a real capture
				}
				bearings = append(bearings, br.Report.BearingDeg)
			}
			captures = captures[:0]
		}
		tried := 0
		for pkt := 0; pkt < packetsPerClient; pkt++ {
			tried++
			e.Advance(20)
			streams, err := synthesize(ap, c.ID, c.Pos, uint16(pkt))
			if err != nil {
				continue // blocked packet: skip, like a real capture
			}
			captures = append(captures, streams)
			if len(captures) >= estimateChunkSize {
				flush()
			}
		}
		flush()
		if len(bearings) == 0 {
			return nil, fmt.Errorf("experiments: client %d produced no usable packets", c.ID)
		}
		mean, ci := bearingStats(bearings, 0.99)
		res.Clients = append(res.Clients, Fig5Client{
			ID:           c.ID,
			GroundTruth:  truth,
			MeanBearing:  mean,
			CI99:         ci,
			AbsError:     geom.AngularDistDeg(mean, truth),
			PacketsUsed:  len(bearings),
			PacketsTried: tried,
		})
		cis = append(cis, ci)
	}
	res.MeanCI99 = stats.Mean(cis)
	return res, nil
}

// Render prints the Figure 5 table in the layout of the paper's scatter
// plot: ground truth versus estimate with CI, flagging the degraded
// clients the paper discusses (6, 11, 12).
func (r *Fig5Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: measured vs ground-truth bearing (circular array, %d packets/client)\n", r.PacketsPerClient)
	fmt.Fprintf(&b, "%-8s %-12s %-12s %-10s %-10s %s\n", "client", "truth(deg)", "mean(deg)", "CI99(deg)", "err(deg)", "notes")
	for _, c := range r.Clients {
		note := ""
		switch c.ID {
		case 6:
			note = "far corner, strong multipath"
		case 11, 12:
			note = "behind pillar"
		case 2:
			note = "adjacent room"
		}
		fmt.Fprintf(&b, "%-8d %-12s %-12s %-10.1f %-10.1f %s\n",
			c.ID, fmtDeg(c.GroundTruth), fmtDeg(c.MeanBearing), c.CI99, c.AbsError, note)
	}
	fmt.Fprintf(&b, "mean 99%% CI across clients: %.1f deg (paper: ~7 deg)\n", r.MeanCI99)
	return b.String()
}

// DegradedClientsWorse reports whether the pillar/far clients (6, 11, 12)
// show a larger combined error+CI than the line-of-sight median — the
// qualitative structure of Figure 5.
func (r *Fig5Result) DegradedClientsWorse() bool {
	var degraded, los []float64
	for _, c := range r.Clients {
		score := c.AbsError + c.CI99
		switch c.ID {
		case 6, 11, 12:
			degraded = append(degraded, score)
		case 1, 3, 5, 7, 8, 9:
			los = append(los, score)
		}
	}
	if len(degraded) == 0 || len(los) == 0 {
		return false
	}
	return stats.Mean(degraded) > stats.Median(los)
}
