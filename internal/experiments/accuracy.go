package experiments

import (
	"fmt"
	"strings"

	"secureangle/internal/geom"
	"secureangle/internal/stats"
	"secureangle/internal/testbed"
)

// AccuracyResult quantifies the section 2.3.1 claim: "after overhearing
// just one packet, it is possible to measure approximately three quarters
// of our clients' bearings to the access point to within 2.5 degrees and
// all clients' bearings to within 14 degrees with 95% confidence".
type AccuracyResult struct {
	// PerClientP95 is each client's 95th-percentile single-packet error.
	PerClientP95 map[int]float64
	// FractionWithin2_5 is the fraction of clients whose 95th-percentile
	// error is at most 2.5 degrees.
	FractionWithin2_5 float64
	// MaxP95 is the worst client's 95th-percentile error (the paper's
	// "all clients within 14 degrees").
	MaxP95 float64
	// Packets is the number of single-packet trials per client.
	Packets int
}

// RunAccuracy measures single-packet bearing error distributions for all
// 20 clients on the circular array.
func RunAccuracy(seed int64, packets int) (*AccuracyResult, error) {
	if packets <= 0 {
		packets = 20
	}
	ap := newAP1(seed)
	res := &AccuracyResult{PerClientP95: map[int]float64{}, Packets: packets}
	var within int
	var clients int
	for _, c := range testbed.Clients() {
		truth := testbed.GroundTruth(testbed.AP1, c.Pos)
		// Serial capture (deterministic noise draws), chunked parallel
		// estimation: large -packets runs hold O(chunk) captures.
		var errs []float64
		var captures [][][]complex128
		flush := func() {
			for _, br := range ap.ProcessStreamsBatch(captures) {
				if br.Err != nil {
					continue
				}
				errs = append(errs, geom.AngularDistDeg(br.Report.BearingDeg, truth))
			}
			captures = captures[:0]
		}
		for pkt := 0; pkt < packets; pkt++ {
			streams, err := synthesize(ap, c.ID, c.Pos, uint16(pkt))
			if err != nil {
				continue
			}
			captures = append(captures, streams)
			if len(captures) >= estimateChunkSize {
				flush()
			}
		}
		flush()
		if len(errs) == 0 {
			return nil, fmt.Errorf("experiments: client %d undetectable", c.ID)
		}
		p95 := stats.Percentile(errs, 95)
		res.PerClientP95[c.ID] = p95
		clients++
		if p95 <= 2.5 {
			within++
		}
		if p95 > res.MaxP95 {
			res.MaxP95 = p95
		}
	}
	res.FractionWithin2_5 = float64(within) / float64(clients)
	return res, nil
}

// Render prints the accuracy-claim table.
func (r *AccuracyResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 2.3.1 accuracy claim (single-packet bearings, %d packets/client):\n", r.Packets)
	fmt.Fprintf(&b, "%-8s %s\n", "client", "95th-pct error (deg)")
	for id := 1; id <= 20; id++ {
		if v, ok := r.PerClientP95[id]; ok {
			fmt.Fprintf(&b, "%-8d %.1f\n", id, v)
		}
	}
	fmt.Fprintf(&b, "fraction of clients within 2.5 deg: %.2f (paper: ~0.75)\n", r.FractionWithin2_5)
	fmt.Fprintf(&b, "worst client 95th-pct error: %.1f deg (paper: 14 deg)\n", r.MaxP95)
	return b.String()
}
