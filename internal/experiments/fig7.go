package experiments

import (
	"fmt"
	"strings"
	"sync"

	"secureangle/internal/core"
	"secureangle/internal/detect"
	"secureangle/internal/geom"
	"secureangle/internal/music"
	"secureangle/internal/ofdm"
	"secureangle/internal/radio"
	"secureangle/internal/rng"
	"secureangle/internal/testbed"
)

// Fig7Row is the pseudospectrum of the same packet analysed with a
// 2-, 4-, 6- or 8-antenna linear subarray.
type Fig7Row struct {
	Antennas    int
	PeakBearing float64
	PeakCount   int // peaks within 10 dB of the top, >= 8 deg apart
	SpectrumDB  []float64
	GridDeg     []float64
	AbsError    float64
}

// Fig7Result holds the Figure 7 reproduction: resolution versus antenna
// count for pillar-blocked client 12.
type Fig7Result struct {
	ClientID    int
	GroundTruth float64
	Rows        []Fig7Row
}

// RunFig7 reproduces Figure 7: one packet from client 12 (strong
// multipath behind the pillar) is captured on the full 8-antenna linear
// array; the same capture is then analysed with its first 2, 4, 6 and all
// 8 antennas. More antennas sharpen the pseudospectrum and separate the
// direct path from reflections.
func RunFig7(seed int64) (*Fig7Result, error) {
	e, _ := testbed.Building()
	arr := testbed.LinearArray()
	fe := testbed.NewAPFrontEnd(arr, testbed.AP1, rng.New(seed))
	c12, err := testbed.ClientByID(12)
	if err != nil {
		return nil, err
	}
	truth := testbed.GroundTruth(testbed.AP1, c12.Pos)

	// One capture, shared by all antenna subsets — exactly "the AoA
	// pseudospectrum plot for the same packet with 2, 4, 6 and 8
	// antennas".
	bb, err := testbed.FrameBaseband(testbed.UplinkFrame(12, 1, []byte("fig7")), ofdm.QPSK)
	if err != nil {
		return nil, err
	}
	streams, err := fe.Receive(e, c12.Pos, bb)
	if err != nil {
		return nil, err
	}
	radio.ApplyCalibration(streams, fe.Calibrate(2000))

	dets := detect.Find(streams[0], detect.DefaultConfig())
	if len(dets) == 0 {
		return nil, core.ErrNoPacket
	}
	win, ok := detect.ExtractAligned(streams, dets[0], packetSamples(streams[0], dets[0].Start))
	if !ok {
		return nil, fmt.Errorf("experiments: fig7 extraction failed")
	}

	// The subarray analyses share one capture and are independent of each
	// other — run them concurrently.
	counts := []int{2, 4, 6, 8}
	rows := make([]Fig7Row, len(counts))
	errs := make([]error, len(counts))
	var wg sync.WaitGroup
	for i, n := range counts {
		wg.Add(1)
		go func(i, n int) {
			defer wg.Done()
			idx := make([]int, n)
			for j := range idx {
				idx[j] = j
			}
			sub := arr.Subarray(idx...)
			r, err := music.Covariance(win[:n])
			if err != nil {
				errs[i] = err
				return
			}
			est := &music.MUSIC{Sources: 0, Samples: len(win[0])}
			ps, err := est.Pseudospectrum(r, sub, sub.ScanGrid(0.5))
			if err != nil {
				errs[i] = err
				return
			}
			peaks := ps.Peaks(8, 10)
			rows[i] = Fig7Row{
				Antennas:    n,
				PeakBearing: ps.PeakBearing(),
				PeakCount:   len(peaks),
				SpectrumDB:  ps.NormalizedDB(),
				GridDeg:     ps.AnglesDeg,
				AbsError:    geom.AngularDistDeg(ps.PeakBearing(), truth),
			}
		}(i, n)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	res := &Fig7Result{ClientID: 12, GroundTruth: truth, Rows: rows}
	return res, nil
}

// packetSamples mirrors core's packet-extent heuristic for the shared
// capture (kept local to avoid exporting an internal detail from core).
func packetSamples(x []complex128, start int) int {
	n := len(x) - start
	if n > 2000 {
		n = 2000
	}
	return n
}

// Render prints the Figure 7 summary rows.
func (r *Fig7Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: resolution vs antenna count (client %d, truth %s, linear array)\n",
		r.ClientID, fmtDeg(r.GroundTruth))
	fmt.Fprintf(&b, "%-10s %-12s %-10s %s\n", "antennas", "peak(deg)", "err(deg)", "resolved peaks (10 dB window)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10d %-12s %-10.1f %d\n", row.Antennas, fmtDeg(row.PeakBearing), row.AbsError, row.PeakCount)
	}
	return b.String()
}

// ResolutionImproves checks Figure 7's qualitative claims: 2 antennas see
// a single broad peak; 6 or more antennas resolve at least two arrivals
// (direct + reflection); and the 8-antenna bearing error does not exceed
// the 2-antenna error.
func (r *Fig7Result) ResolutionImproves() bool {
	byN := map[int]Fig7Row{}
	for _, row := range r.Rows {
		byN[row.Antennas] = row
	}
	if byN[2].PeakCount > 1 {
		// A two-antenna ULA cannot resolve two sources; its pseudospectrum
		// with one noise-subspace dimension yields a single ridge.
		return false
	}
	if byN[6].PeakCount < 2 && byN[8].PeakCount < 2 {
		return false
	}
	return byN[8].AbsError <= byN[2].AbsError+1e-9
}
