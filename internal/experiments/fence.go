package experiments

import (
	"fmt"
	"strings"

	"secureangle/internal/core"
	"secureangle/internal/geom"
	"secureangle/internal/locate"
	"secureangle/internal/rng"
	"secureangle/internal/stats"
	"secureangle/internal/testbed"
)

// FenceCase is one transmitter evaluated by the virtual fence.
type FenceCase struct {
	Label    string
	TruePos  geom.Point
	Inside   bool // ground truth
	FusedPos geom.Point
	Decision locate.Decision
	// LocErrM is the localisation error in metres (only meaningful when
	// fusion succeeded).
	LocErrM float64
	// Bearings are the per-AP direct-path bearings used.
	Bearings []float64
}

// FenceResult is the virtual-fence experiment: three APs triangulate
// every transmitter; frames from outside the building are dropped.
type FenceResult struct {
	Cases []FenceCase
	// CorrectRate is the fraction of correct allow/drop decisions.
	CorrectRate float64
	// MedianLocErrM is the median localisation error over inside clients.
	MedianLocErrM float64
}

// RunFence reproduces the section 2.3.1 application with the multi-AP
// candidate resolution of section 3.1: each AP reports its top
// pseudospectrum peaks; the controller-side logic picks the combination
// that intersects consistently and applies the building-shell fence.
func RunFence(seed int64) (*FenceResult, error) {
	e, shell := testbed.Building()
	fence := &locate.Fence{Boundary: shell}

	apPos := []geom.Point{testbed.AP1, testbed.AP2, testbed.AP3}
	aps := make([]*core.AP, len(apPos))
	for i, pos := range apPos {
		fe := testbed.NewAPFrontEnd(testbed.CircularArray(), pos, rng.New(seed+int64(i)))
		aps[i] = core.NewAP(fmt.Sprintf("ap%d", i+1), fe, e, core.DefaultConfig())
	}

	res := &FenceResult{}
	var correct int
	var insideErrs []float64

	runCase := func(label string, pos geom.Point, inside bool, clientID int) error {
		cands := make([][]float64, 0, len(aps))
		usedAPs := make([]geom.Point, 0, len(aps))
		for i, ap := range aps {
			rep, err := observe(ap, clientID, pos, 1)
			if err != nil {
				continue // this AP cannot hear the client; fuse the rest
			}
			peaks := rep.Spectrum.Peaks(10, 6)
			bearings := make([]float64, 0, 3)
			for _, p := range peaks {
				bearings = append(bearings, p.BearingDeg)
				if len(bearings) == 3 {
					break
				}
			}
			if len(bearings) == 0 {
				continue
			}
			cands = append(cands, bearings)
			usedAPs = append(usedAPs, apPos[i])
		}
		fc := FenceCase{Label: label, TruePos: pos, Inside: inside}
		if len(usedAPs) >= 2 {
			fused, sel, err := locate.ResolveCandidates(usedAPs, cands)
			if err == nil {
				fc.FusedPos = fused
				fc.Bearings = sel
				fc.LocErrM = fused.Dist(pos)
				if fence.Allows(fused) {
					fc.Decision = locate.Allow
				} else {
					fc.Decision = locate.Drop
				}
			} else {
				fc.Decision = locate.Drop // unfusable: fail closed
			}
		} else {
			fc.Decision = locate.Drop // unheard by enough APs: fail closed
		}
		if (fc.Decision == locate.Allow) == inside {
			correct++
		}
		if inside && fc.LocErrM > 0 {
			insideErrs = append(insideErrs, fc.LocErrM)
		}
		res.Cases = append(res.Cases, fc)
		return nil
	}

	for _, c := range testbed.Clients() {
		if err := runCase(fmt.Sprintf("client-%d", c.ID), c.Pos, true, c.ID); err != nil {
			return nil, err
		}
	}
	for i, p := range testbed.OutsidePositions() {
		if err := runCase(fmt.Sprintf("intruder-%d", i+1), p, false, 90+i); err != nil {
			return nil, err
		}
	}

	res.CorrectRate = float64(correct) / float64(len(res.Cases))
	res.MedianLocErrM = stats.Median(insideErrs)
	return res, nil
}

// Render prints the fence decision table.
func (r *FenceResult) Render() string {
	var b strings.Builder
	b.WriteString("Virtual fence (3 APs, building-shell boundary):\n")
	fmt.Fprintf(&b, "%-12s %-16s %-8s %-8s %-10s\n", "tx", "true pos", "truth", "decision", "loc err(m)")
	for _, c := range r.Cases {
		truth := "inside"
		if !c.Inside {
			truth = "OUTSIDE"
		}
		fmt.Fprintf(&b, "%-12s %-16s %-8s %-8s %-10.2f\n", c.Label, c.TruePos, truth, c.Decision, c.LocErrM)
	}
	fmt.Fprintf(&b, "decision accuracy: %.2f; median inside localisation error: %.2f m\n",
		r.CorrectRate, r.MedianLocErrM)
	return b.String()
}
