package experiments

import (
	"fmt"
	"strings"

	"secureangle/internal/antenna"
	"secureangle/internal/cmat"
	"secureangle/internal/core"
	"secureangle/internal/detect"
	"secureangle/internal/geom"
	"secureangle/internal/music"
	"secureangle/internal/ofdm"
	"secureangle/internal/radio"
	"secureangle/internal/rng"
	"secureangle/internal/stats"
	"secureangle/internal/testbed"
)

// losClients are the unobstructed in-room clients used for controlled
// estimator comparisons.
var losClients = []int{1, 3, 5, 7, 8, 9}

// EstimatorAblation compares MUSIC against the Bartlett and MVDR
// baselines on the line-of-sight clients.
type EstimatorAblation struct {
	// MeanErrDeg maps estimator name to mean absolute bearing error.
	MeanErrDeg map[string]float64
	Packets    int
}

// RunEstimatorAblation measures each estimator's mean bearing error over
// the LoS clients.
func RunEstimatorAblation(seed int64, packets int) (*EstimatorAblation, error) {
	if packets <= 0 {
		packets = 5
	}
	res := &EstimatorAblation{MeanErrDeg: map[string]float64{}, Packets: packets}
	ests := []music.Estimator{
		&music.MUSIC{Sources: 0, Samples: 1000},
		music.Bartlett{},
		music.MVDR{},
	}
	for _, est := range ests {
		e, _ := testbed.Building()
		fe := testbed.NewAPFrontEnd(testbed.CircularArray(), testbed.AP1, rng.New(seed))
		cfg := core.DefaultConfig()
		cfg.Estimator = est
		ap := core.NewAP("ablation", fe, e, cfg)
		var errs []float64
		for _, id := range losClients {
			c, _ := testbed.ClientByID(id)
			truth := testbed.GroundTruth(testbed.AP1, c.Pos)
			for pkt := 0; pkt < packets; pkt++ {
				rep, err := observe(ap, id, c.Pos, uint16(pkt))
				if err != nil {
					return nil, err
				}
				errs = append(errs, geom.AngularDistDeg(rep.BearingDeg, truth))
			}
		}
		res.MeanErrDeg[est.Name()] = stats.Mean(errs)
	}
	return res, nil
}

// Render prints the estimator comparison.
func (r *EstimatorAblation) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Estimator ablation (LoS clients, %d packets each):\n", r.Packets)
	for _, name := range []string{"MUSIC", "Bartlett", "MVDR"} {
		fmt.Fprintf(&b, "  %-10s mean |err| = %.2f deg\n", name, r.MeanErrDeg[name])
	}
	return b.String()
}

// CalibrationAblation quantifies section 2.2: bearing error with and
// without the phase-offset calibration.
type CalibrationAblation struct {
	WithCalDeg    float64
	WithoutCalDeg float64
}

// RunCalibrationAblation measures client 5's bearing error with
// calibration applied versus skipped, across several random offset draws.
func RunCalibrationAblation(seed int64, draws int) (*CalibrationAblation, error) {
	if draws <= 0 {
		draws = 5
	}
	c5, err := testbed.ClientByID(5)
	if err != nil {
		return nil, err
	}
	truth := testbed.GroundTruth(testbed.AP1, c5.Pos)
	var withCal, withoutCal []float64
	for d := 0; d < draws; d++ {
		e, _ := testbed.Building()
		fe := testbed.NewAPFrontEnd(testbed.CircularArray(), testbed.AP1, rng.New(seed+int64(d)))
		bb, err := testbed.FrameBaseband(testbed.UplinkFrame(5, uint16(d), nil), ofdm.QPSK)
		if err != nil {
			return nil, err
		}
		streams, err := fe.Receive(e, c5.Pos, bb)
		if err != nil {
			return nil, err
		}
		// Uncalibrated copy.
		raw := make([][]complex128, len(streams))
		for i, s := range streams {
			raw[i] = append([]complex128(nil), s...)
		}
		radio.ApplyCalibration(streams, fe.Calibrate(2000))

		for i, set := range [][][]complex128{streams, raw} {
			dets := detect.Find(set[0], detect.DefaultConfig())
			if len(dets) == 0 {
				return nil, core.ErrNoPacket
			}
			n := len(set[0]) - dets[0].Start
			if n > 2000 {
				n = 2000
			}
			win, _ := detect.ExtractAligned(set, dets[0], n)
			r, err := music.Covariance(win)
			if err != nil {
				return nil, err
			}
			est := &music.MUSIC{Sources: 0, Samples: n}
			ps, err := est.Pseudospectrum(r, fe.Array, fe.Array.ScanGrid(1))
			if err != nil {
				return nil, err
			}
			errDeg := geom.AngularDistDeg(ps.PeakBearing(), truth)
			if i == 0 {
				withCal = append(withCal, errDeg)
			} else {
				withoutCal = append(withoutCal, errDeg)
			}
		}
	}
	return &CalibrationAblation{
		WithCalDeg:    stats.Mean(withCal),
		WithoutCalDeg: stats.Mean(withoutCal),
	}, nil
}

// Render prints the calibration comparison.
func (r *CalibrationAblation) Render() string {
	return fmt.Sprintf("Calibration ablation (client 5): with cal %.1f deg, without cal %.1f deg\n",
		r.WithCalDeg, r.WithoutCalDeg)
}

// PacketVsSampleAblation quantifies the section 3 remark that estimates
// from one sample are noise-sensitive compared to whole-packet
// correlation.
type PacketVsSampleAblation struct {
	WholePacketDeg  float64
	SingleSampleDeg float64
	Trials          int
}

// RunPacketVsSample compares bearing error using the whole packet's
// covariance versus a single snapshot's rank-1 "covariance". Client 12
// (pillar-blocked, reflections within a few dB of the direct path) is the
// regime where single-sample estimates visibly suffer — one snapshot
// freezes an arbitrary phase alignment of the coherent paths, whereas the
// whole packet averages over the delay-spread decorrelation.
func RunPacketVsSample(seed int64, trials int) (*PacketVsSampleAblation, error) {
	if trials <= 0 {
		trials = 10
	}
	const clientID = 12
	e, _ := testbed.Building()
	fe := testbed.NewAPFrontEnd(testbed.CircularArray(), testbed.AP1, rng.New(seed))
	offsets := fe.Calibrate(2000)
	c5, err := testbed.ClientByID(clientID)
	if err != nil {
		return nil, err
	}
	truth := testbed.GroundTruth(testbed.AP1, c5.Pos)

	var whole, single []float64
	for trial := 0; trial < trials; trial++ {
		bb, err := testbed.FrameBaseband(testbed.UplinkFrame(clientID, uint16(trial), nil), ofdm.QPSK)
		if err != nil {
			return nil, err
		}
		streams, err := fe.Receive(e, c5.Pos, bb)
		if err != nil {
			return nil, err
		}
		radio.ApplyCalibration(streams, offsets)
		dets := detect.Find(streams[0], detect.DefaultConfig())
		if len(dets) == 0 {
			return nil, core.ErrNoPacket
		}
		n := len(streams[0]) - dets[0].Start
		if n > 2000 {
			n = 2000
		}
		win, _ := detect.ExtractAligned(streams, dets[0], n)

		for i, m := range []int{n, 1} {
			sub := make([][]complex128, len(win))
			// Single-sample case: pick a mid-packet snapshot (the
			// preamble head would be atypically clean).
			off := 0
			if m == 1 {
				off = n / 2
			}
			for a := range win {
				sub[a] = win[a][off : off+m]
			}
			r, err := music.Covariance(sub)
			if err != nil {
				return nil, err
			}
			est := &music.MUSIC{Sources: 1} // rank-1 input: one source is all there is
			if m > 1 {
				est = &music.MUSIC{Sources: 0, Samples: m}
			}
			ps, err := est.Pseudospectrum(r, fe.Array, fe.Array.ScanGrid(1))
			if err != nil {
				return nil, err
			}
			errDeg := geom.AngularDistDeg(ps.PeakBearing(), truth)
			if i == 0 {
				whole = append(whole, errDeg)
			} else {
				single = append(single, errDeg)
			}
		}
	}
	return &PacketVsSampleAblation{
		WholePacketDeg:  stats.Mean(whole),
		SingleSampleDeg: stats.Mean(single),
		Trials:          trials,
	}, nil
}

// Render prints the packet-vs-sample comparison.
func (r *PacketVsSampleAblation) Render() string {
	return fmt.Sprintf("Packet vs single-sample covariance (client 12, %d trials): whole packet %.1f deg, single sample %.1f deg\n",
		r.Trials, r.WholePacketDeg, r.SingleSampleDeg)
}

// doaEstimator is the grid-free estimation interface RootMUSIC and ESPRIT
// share.
type doaEstimator interface {
	DOAs(*cmat.Matrix, *antenna.Array) ([]float64, error)
}

// GridFreeAblation compares the grid-scanned MUSIC estimate against the
// grid-free root-MUSIC and ESPRIT estimates on the linear array, where an
// off-grid bearing exposes the scan step's quantisation.
type GridFreeAblation struct {
	// MeanErrDeg per estimator over the trials.
	MeanErrDeg map[string]float64
	Trials     int
}

// RunGridFreeAblation synthesises a line-of-sight geometry with the
// rotated ULA (as in Figure 6) and measures each estimator's bearing
// error for clients whose true bearings fall between grid points.
func RunGridFreeAblation(seed int64, trials int) (*GridFreeAblation, error) {
	if trials <= 0 {
		trials = 5
	}
	e, _ := testbed.Building()
	arr := testbed.LinearArray().Rotate(-94)
	fe := testbed.NewAPFrontEnd(arr, testbed.AP1, rng.New(seed))
	offsets := fe.Calibrate(2000)

	res := &GridFreeAblation{MeanErrDeg: map[string]float64{}, Trials: trials}
	sums := map[string]float64{}
	count := 0
	for _, id := range []int{5, 3, 1} { // bearings -37.9, 14.9, 52.0: off-grid
		c, err := testbed.ClientByID(id)
		if err != nil {
			return nil, err
		}
		truth := testbed.GroundTruth(testbed.AP1, c.Pos)
		for trial := 0; trial < trials; trial++ {
			bb, err := testbed.FrameBaseband(testbed.UplinkFrame(id, uint16(trial), nil), ofdm.QPSK)
			if err != nil {
				return nil, err
			}
			streams, err := fe.Receive(e, c.Pos, bb)
			if err != nil {
				return nil, err
			}
			radio.ApplyCalibration(streams, offsets)
			dets := detect.Find(streams[0], detect.DefaultConfig())
			if len(dets) == 0 {
				continue
			}
			n := len(streams[0]) - dets[0].Start
			win, _ := detect.ExtractAligned(streams, dets[0], n)
			r, err := music.Covariance(win)
			if err != nil {
				return nil, err
			}
			count++

			// Grid MUSIC at a 3-degree step: the memory/latency-saving
			// configuration an embedded AP might run, whose quantisation
			// the grid-free estimators avoid.
			gm := &music.MUSIC{Sources: 0, Samples: n}
			ps, err := gm.Pseudospectrum(r, arr, arr.ScanGrid(3))
			if err != nil {
				return nil, err
			}
			sums["MUSIC-3deg"] += geom.AngularDistDeg(ps.PeakBearing(), truth)

			// Grid-free estimators: nearest DOA to truth (they emit one
			// DOA per detected source; multipath contributes extras).
			gridFree := map[string]doaEstimator{
				"root-MUSIC": &music.RootMUSIC{Sources: 0, Samples: n},
				"ESPRIT":     &music.ESPRIT{Sources: 0, Samples: n},
			}
			for name, est := range gridFree {
				doas, err := est.DOAs(r, arr)
				if err != nil {
					return nil, err
				}
				best := 180.0
				for _, d := range doas {
					if v := geom.AngularDistDeg(d, truth); v < best {
						best = v
					}
				}
				sums[name] += best
			}
		}
	}
	for name, s := range sums {
		res.MeanErrDeg[name] = s / float64(count)
	}
	return res, nil
}

// Render prints the grid-free comparison.
func (r *GridFreeAblation) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Grid-free ablation (rotated ULA, off-grid bearings, %d packets/client):\n", r.Trials)
	for _, name := range []string{"MUSIC-3deg", "root-MUSIC", "ESPRIT"} {
		fmt.Fprintf(&b, "  %-12s mean |err| = %.2f deg\n", name, r.MeanErrDeg[name])
	}
	return b.String()
}
