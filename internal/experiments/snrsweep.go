package experiments

import (
	"fmt"
	"strings"

	"secureangle/internal/core"
	"secureangle/internal/dsp"
	"secureangle/internal/geom"
	"secureangle/internal/radio"
	"secureangle/internal/rng"
	"secureangle/internal/stats"
	"secureangle/internal/testbed"
)

// SNRPoint is one operating point of the robustness sweep.
type SNRPoint struct {
	SNRdB float64
	// DetectRate is the fraction of packets the Schmidl-Cox detector
	// found.
	DetectRate float64
	// MedianErrDeg is the median bearing error over detected packets.
	MedianErrDeg float64
	// P90ErrDeg is the 90th-percentile error.
	P90ErrDeg float64
}

// SNRSweepResult characterises the pipeline's noise robustness — the
// operating envelope a deployment would consult. The paper's prototype
// ran at one indoor operating point; this sweep shows where the cliff is.
type SNRSweepResult struct {
	ClientID int
	Points   []SNRPoint
	// CliffdB is the lowest swept SNR at which detection still succeeded
	// for at least 90% of packets.
	CliffdB float64
}

// RunSNRSweep measures detection rate and bearing error versus SNR for a
// line-of-sight client, by scaling the receiver noise floor.
func RunSNRSweep(seed int64, packets int) (*SNRSweepResult, error) {
	if packets <= 0 {
		packets = 10
	}
	const clientID = 5
	c, err := testbed.ClientByID(clientID)
	if err != nil {
		return nil, err
	}
	truth := testbed.GroundTruth(testbed.AP1, c.Pos)

	// The testbed floor gives client 5 roughly 38 dB; scale relative to
	// that to hit the target SNRs.
	const baseSNR = 38.0
	sweep := []float64{30, 25, 20, 15, 10, 5, 2, 0, -3}
	res := &SNRSweepResult{ClientID: clientID, CliffdB: sweep[0]}
	for _, snr := range sweep {
		floor := testbed.NoiseFloor * dsp.FromDB(baseSNR-snr)
		e, _ := testbed.Building()
		fe := radio.NewFrontEnd(testbed.CircularArray(), testbed.AP1, rng.New(seed),
			radio.WithNoiseFloor(floor))
		ap := core.NewAP("snr", fe, e, core.DefaultConfig())
		var errs []float64
		detected := 0
		for pkt := 0; pkt < packets; pkt++ {
			rep, err := observe(ap, clientID, c.Pos, uint16(pkt))
			if err != nil {
				continue
			}
			detected++
			errs = append(errs, geom.AngularDistDeg(rep.BearingDeg, truth))
		}
		pt := SNRPoint{SNRdB: snr, DetectRate: float64(detected) / float64(packets)}
		if len(errs) > 0 {
			pt.MedianErrDeg = stats.Median(errs)
			pt.P90ErrDeg = stats.Percentile(errs, 90)
		}
		if pt.DetectRate >= 0.9 {
			res.CliffdB = snr
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// Render prints the sweep table.
func (r *SNRSweepResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SNR robustness sweep (client %d, line of sight):\n", r.ClientID)
	fmt.Fprintf(&b, "%-10s %-12s %-14s %-14s\n", "SNR(dB)", "detect rate", "median err", "p90 err")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-10.0f %-12.2f %-14.1f %-14.1f\n", p.SNRdB, p.DetectRate, p.MedianErrDeg, p.P90ErrDeg)
	}
	fmt.Fprintf(&b, "detection holds (>= 90%% of packets) down to %.0f dB\n", r.CliffdB)
	return b.String()
}
