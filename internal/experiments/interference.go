package experiments

import (
	"fmt"
	"strings"

	"secureangle/internal/geom"
	"secureangle/internal/music"
	"secureangle/internal/ofdm"
	"secureangle/internal/radio"
	"secureangle/internal/rng"
	"secureangle/internal/testbed"
)

// InterferenceTrial is one concurrent-transmitter configuration.
type InterferenceTrial struct {
	ClientA, ClientB int
	TruthA, TruthB   float64
	// Resolved reports whether both bearings appear in the top peaks.
	Resolved      bool
	ErrA, ErrB    float64
	SeparationDeg float64
}

// InterferenceResult measures the section 3 concern — "interference from
// other senders" — by putting two clients on the air simultaneously and
// checking the array separates their bearings (their symbol streams are
// independent, so unlike multipath the two arrivals are incoherent and
// MUSIC resolves them directly).
type InterferenceResult struct {
	Trials      []InterferenceTrial
	ResolveRate float64
}

// RunInterference runs concurrent-transmission trials over client pairs.
func RunInterference(seed int64) (*InterferenceResult, error) {
	e, _ := testbed.Building()
	fe := testbed.NewAPFrontEnd(testbed.CircularArray(), testbed.AP1, rng.New(seed))
	offsets := fe.Calibrate(2000)

	pairs := [][2]int{{5, 9}, {1, 7}, {3, 8}, {5, 1}, {7, 9}}
	res := &InterferenceResult{}
	var resolved int
	for _, pair := range pairs {
		ca, err := testbed.ClientByID(pair[0])
		if err != nil {
			return nil, err
		}
		cb, err := testbed.ClientByID(pair[1])
		if err != nil {
			return nil, err
		}
		bbA, err := testbed.FrameBaseband(testbed.UplinkFrame(pair[0], 1, []byte("A")), ofdm.QPSK)
		if err != nil {
			return nil, err
		}
		bbB, err := testbed.FrameBaseband(testbed.UplinkFrame(pair[1], 1, []byte("B")), ofdm.QPSK)
		if err != nil {
			return nil, err
		}
		streams, err := fe.ReceiveMulti(e, []radio.Transmission{
			{Pos: ca.Pos, Baseband: bbA, Power: 1},
			{Pos: cb.Pos, Baseband: bbB, Power: 1},
		})
		if err != nil {
			return nil, err
		}
		radio.ApplyCalibration(streams, offsets)
		r, err := music.Covariance(streams)
		if err != nil {
			return nil, err
		}
		est := &music.MUSIC{Sources: 0, Samples: len(streams[0])}
		ps, err := est.Pseudospectrum(r, fe.Array, fe.Array.ScanGrid(1))
		if err != nil {
			return nil, err
		}

		truthA := testbed.GroundTruth(testbed.AP1, ca.Pos)
		truthB := testbed.GroundTruth(testbed.AP1, cb.Pos)
		trial := InterferenceTrial{
			ClientA: pair[0], ClientB: pair[1],
			TruthA: truthA, TruthB: truthB,
			SeparationDeg: geom.AngularDistDeg(truthA, truthB),
			ErrA:          180, ErrB: 180,
		}
		for _, p := range ps.Peaks(10, 15) {
			if d := geom.AngularDistDeg(p.BearingDeg, truthA); d < trial.ErrA {
				trial.ErrA = d
			}
			if d := geom.AngularDistDeg(p.BearingDeg, truthB); d < trial.ErrB {
				trial.ErrB = d
			}
		}
		trial.Resolved = trial.ErrA < 5 && trial.ErrB < 5
		if trial.Resolved {
			resolved++
		}
		res.Trials = append(res.Trials, trial)
	}
	res.ResolveRate = float64(resolved) / float64(len(res.Trials))
	return res, nil
}

// Render prints the interference table.
func (r *InterferenceResult) Render() string {
	var b strings.Builder
	b.WriteString("Concurrent transmitters (section 3 interference concern):\n")
	fmt.Fprintf(&b, "%-10s %-10s %-10s %-10s %-10s %s\n", "clients", "sep(deg)", "errA", "errB", "resolved", "")
	for _, tr := range r.Trials {
		fmt.Fprintf(&b, "%d+%-8d %-10.1f %-10.1f %-10.1f %-10v\n",
			tr.ClientA, tr.ClientB, tr.SeparationDeg, tr.ErrA, tr.ErrB, tr.Resolved)
	}
	fmt.Fprintf(&b, "both-bearing resolve rate: %.2f\n", r.ResolveRate)
	return b.String()
}
