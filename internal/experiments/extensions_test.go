package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestMobilityTracking(t *testing.T) {
	if testing.Short() {
		t.Skip("full testbed sweep")
	}
	res, err := RunMobility(11)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) < 30 {
		t.Fatalf("steps = %d", len(res.Steps))
	}
	if res.FixRate < 0.9 {
		t.Errorf("fix rate %.2f", res.FixRate)
	}
	// Filtering must not be worse than raw triangulation, and the walk
	// must be tracked to house-scale accuracy.
	if res.FilteredRMSE > res.RawRMSE+0.1 {
		t.Errorf("filtered RMSE %.2f worse than raw %.2f", res.FilteredRMSE, res.RawRMSE)
	}
	if res.FilteredRMSE > 2.0 {
		t.Errorf("filtered RMSE %.2f m", res.FilteredRMSE)
	}
	if !strings.Contains(res.Render(), "Mobility tracking") {
		t.Error("render malformed")
	}
}

func TestDownlinkBeamforming(t *testing.T) {
	if testing.Short() {
		t.Skip("full testbed sweep")
	}
	res, err := RunBeamform(12)
	if err != nil {
		t.Fatal(err)
	}
	ideal := 10 * math.Log10(8)
	// Steering from the uplink AoA estimate must realise nearly the full
	// 8-antenna array gain at every LoS client.
	for _, c := range res.Clients {
		if c.IdealDB < ideal-1e-6 {
			t.Errorf("client %d ideal gain %.2f < %.2f", c.ID, c.IdealDB, ideal)
		}
		if c.GainDB < ideal-1.0 {
			t.Errorf("client %d realised gain %.2f dB, want within 1 dB of %.2f", c.ID, c.GainDB, ideal)
		}
	}
	if res.MeanGainDB < ideal-0.5 {
		t.Errorf("mean gain %.2f dB", res.MeanGainDB)
	}
	if res.BeamwidthDeg <= 0 || res.BeamwidthDeg > 90 {
		t.Errorf("beamwidth %.1f deg", res.BeamwidthDeg)
	}
	if !strings.Contains(res.Render(), "Downlink") {
		t.Error("render malformed")
	}
}

func TestInterference(t *testing.T) {
	if testing.Short() {
		t.Skip("full testbed sweep")
	}
	res, err := RunInterference(13)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 5 {
		t.Fatalf("trials = %d", len(res.Trials))
	}
	// Equal-distance pairs resolve; the near-far pair (client 5 at 2.3 m
	// vs client 9 at 5.9 m, ~8 dB power imbalance) may capture — classic
	// near-far behaviour, so demand at least 4 of 5.
	if res.ResolveRate < 0.8 {
		t.Errorf("resolve rate %.2f", res.ResolveRate)
	}
	// The stronger transmitter's bearing must always be recovered.
	for _, tr := range res.Trials {
		if tr.ErrA > 5 && tr.ErrB > 5 {
			t.Errorf("pair %d+%d: neither bearing recovered", tr.ClientA, tr.ClientB)
		}
	}
}

func TestSNRSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full testbed sweep")
	}
	res, err := RunSNRSweep(14, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 5 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// High SNR: perfect detection and sub-2-degree error.
	first := res.Points[0]
	if first.DetectRate < 1 || first.MedianErrDeg > 2 {
		t.Errorf("30 dB point: %+v", first)
	}
	// Detection must degrade monotonically-ish: the last point (deep
	// negative SNR) must fail.
	last := res.Points[len(res.Points)-1]
	if last.DetectRate > 0.2 {
		t.Errorf("detection at %v dB should fail, rate %v", last.SNRdB, last.DetectRate)
	}
	// The cliff lies somewhere sensible for Schmidl-Cox at threshold 0.5.
	if res.CliffdB < 2 || res.CliffdB > 25 {
		t.Errorf("cliff at %v dB", res.CliffdB)
	}
}

func TestGridFreeAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("full testbed sweep")
	}
	res, err := RunGridFreeAblation(15, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"MUSIC-3deg", "root-MUSIC", "ESPRIT"} {
		if _, ok := res.MeanErrDeg[name]; !ok {
			t.Fatalf("missing %s", name)
		}
	}
	// Grid-free methods must beat the coarse grid's quantisation.
	if res.MeanErrDeg["root-MUSIC"] >= res.MeanErrDeg["MUSIC-3deg"] {
		t.Errorf("root-MUSIC %.2f not better than 3-degree grid %.2f",
			res.MeanErrDeg["root-MUSIC"], res.MeanErrDeg["MUSIC-3deg"])
	}
	if res.MeanErrDeg["root-MUSIC"] > 1 {
		t.Errorf("root-MUSIC error %.2f deg", res.MeanErrDeg["root-MUSIC"])
	}
}

func TestRendersProduceOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("full testbed sweep")
	}
	// Smoke-check every Render method the CLI prints.
	snr, err := RunSNRSweep(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(snr.Render(), "SNR robustness") {
		t.Error("snr render")
	}
	intf, err := RunInterference(16)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(intf.Render(), "Concurrent transmitters") {
		t.Error("interference render")
	}
	gf, err := RunGridFreeAblation(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(gf.Render(), "Grid-free") {
		t.Error("grid-free render")
	}
}
