package experiments

import (
	"fmt"
	"math"
	"strings"

	"secureangle/internal/beamform"
	"secureangle/internal/core"
	"secureangle/internal/geom"
	"secureangle/internal/locate"
	"secureangle/internal/rng"
	"secureangle/internal/stats"
	"secureangle/internal/testbed"
	"secureangle/internal/track"
)

// --- Section 5 extension 1: mobility tracking with multiple APs ---

// MobilityStep is one sample of the tracked trace.
type MobilityStep struct {
	T        float64
	TruePos  geom.Point
	RawPos   geom.Point // per-step triangulation (when available)
	RawOK    bool
	Filtered geom.Point
}

// MobilityResult is the section 5 mobility-tracking experiment.
type MobilityResult struct {
	Steps []MobilityStep
	// RawRMSE and FilteredRMSE are metres over steps with a raw fix.
	RawRMSE      float64
	FilteredRMSE float64
	FixRate      float64
}

// RunMobility walks a client at ~1.2 m/s along a corridor-and-room path
// through the Figure 4 building, transmitting twice per second; three APs
// estimate bearings per packet, the controller-side logic triangulates,
// and an alpha-beta tracker smooths the trace — the paper's "track the
// mobility trace with multiple APs" future work.
func RunMobility(seed int64) (*MobilityResult, error) {
	e, _ := testbed.Building()
	apPos := []geom.Point{testbed.AP1, testbed.AP2, testbed.AP3}
	aps := make([]*core.AP, len(apPos))
	for i, pos := range apPos {
		fe := testbed.NewAPFrontEnd(testbed.CircularArray(), pos, rng.New(seed+int64(i)))
		aps[i] = core.NewAP(fmt.Sprintf("ap%d", i+1), fe, e, core.DefaultConfig())
	}

	// A walk through the main room, past the pillar, into the east
	// office.
	path := track.LinearTrace([]geom.Point{
		{X: 3, Y: 3}, {X: 12, Y: 4}, {X: 14, Y: 8}, {X: 19, Y: 7}, {X: 22, Y: 4},
	}, 1.2, 0.5)

	filt := track.NewFilter(0.5, 0.25)
	res := &MobilityResult{}
	var rawSq, filtSq float64
	var rawN, filtN int
	prevT := 0.0
	for i, wp := range path {
		dt := wp.T - prevT
		prevT = wp.T
		if i == 0 {
			dt = 0.5
		}
		var obs []locate.BearingObs
		for j, ap := range aps {
			rep, err := observe(ap, 42, wp.Pos, uint16(i))
			if err != nil {
				continue
			}
			obs = append(obs, locate.BearingObs{AP: apPos[j], BearingDeg: rep.BearingDeg})
		}
		step := MobilityStep{T: wp.T, TruePos: wp.Pos}
		if raw, err := locate.Triangulate(obs); err == nil {
			step.RawPos, step.RawOK = raw, true
			rawSq += raw.Sub(wp.Pos).Dot(raw.Sub(wp.Pos))
			rawN++
		}
		step.Filtered, _ = filt.Step(obs, dt)
		if i > 4 { // after filter convergence
			filtSq += step.Filtered.Sub(wp.Pos).Dot(step.Filtered.Sub(wp.Pos))
			filtN++
		}
		res.Steps = append(res.Steps, step)
	}
	if rawN > 0 {
		res.RawRMSE = math.Sqrt(rawSq / float64(rawN))
		res.FixRate = float64(rawN) / float64(len(path))
	}
	if filtN > 0 {
		res.FilteredRMSE = math.Sqrt(filtSq / float64(filtN))
	}
	return res, nil
}

// Render prints the mobility trace summary.
func (r *MobilityResult) Render() string {
	var b strings.Builder
	b.WriteString("Mobility tracking (section 5 extension): walking client, 3 APs, alpha-beta filter\n")
	fmt.Fprintf(&b, "%-8s %-18s %-18s %-18s\n", "t(s)", "truth", "raw fix", "filtered")
	for i, s := range r.Steps {
		if i%4 != 0 { // print every 2 seconds
			continue
		}
		raw := "-"
		if s.RawOK {
			raw = s.RawPos.String()
		}
		fmt.Fprintf(&b, "%-8.1f %-18s %-18s %-18s\n", s.T, s.TruePos, raw, s.Filtered)
	}
	fmt.Fprintf(&b, "raw RMSE %.2f m (fix rate %.2f); filtered RMSE %.2f m\n",
		r.RawRMSE, r.FixRate, r.FilteredRMSE)
	return b.String()
}

// --- Section 5 extension 2: downlink directional transmission ---

// BeamformClient is one client's downlink beamforming outcome.
type BeamformClient struct {
	ID int
	// UplinkBearing is the AoA estimate the AP steers toward.
	UplinkBearing float64
	// GainDB is the realised array gain toward the client's true bearing
	// (the paper's "higher throughput and better reliability").
	GainDB float64
	// IdealDB is the gain had the AP known the exact bearing.
	IdealDB float64
}

// BeamformResult is the downlink-beamforming experiment.
type BeamformResult struct {
	Clients []BeamformClient
	// MeanGainDB across clients; ideal is 10 log10(8) ~ 9 dB.
	MeanGainDB float64
	// BeamwidthDeg is the array's half-power beamwidth.
	BeamwidthDeg float64
}

// RunBeamform estimates each LoS client's bearing from one uplink packet,
// forms MRT downlink weights toward it, and measures the realised array
// gain at the client's true bearing.
func RunBeamform(seed int64) (*BeamformResult, error) {
	ap := newAP1(seed)
	arr := ap.FE.Array
	res := &BeamformResult{BeamwidthDeg: beamform.HalfPowerBeamwidth(arr, 0, 0.5)}
	var gains []float64
	for _, id := range losClients {
		c, err := testbed.ClientByID(id)
		if err != nil {
			return nil, err
		}
		rep, err := observe(ap, id, c.Pos, 1)
		if err != nil {
			return nil, err
		}
		truth := testbed.GroundTruth(testbed.AP1, c.Pos)
		w := beamform.MRT(arr, rep.BearingDeg)
		g := beamform.GainDB(arr, w, truth)
		ideal := beamform.GainDB(arr, beamform.MRT(arr, truth), truth)
		res.Clients = append(res.Clients, BeamformClient{
			ID: id, UplinkBearing: rep.BearingDeg, GainDB: g, IdealDB: ideal,
		})
		gains = append(gains, g)
	}
	res.MeanGainDB = stats.Mean(gains)
	return res, nil
}

// Render prints the beamforming table.
func (r *BeamformResult) Render() string {
	var b strings.Builder
	b.WriteString("Downlink directional transmission (section 5 extension): MRT from uplink AoA\n")
	fmt.Fprintf(&b, "%-8s %-16s %-14s %-14s\n", "client", "uplink AoA", "gain(dB)", "ideal(dB)")
	for _, c := range r.Clients {
		fmt.Fprintf(&b, "%-8d %-16.1f %-14.2f %-14.2f\n", c.ID, c.UplinkBearing, c.GainDB, c.IdealDB)
	}
	fmt.Fprintf(&b, "mean realised gain %.2f dB (ideal 8-antenna array: %.2f dB); half-power beamwidth %.1f deg\n",
		r.MeanGainDB, 10*math.Log10(8), r.BeamwidthDeg)
	return b.String()
}
