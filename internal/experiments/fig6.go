package experiments

import (
	"fmt"
	"strings"

	"secureangle/internal/core"
	"secureangle/internal/music"
	"secureangle/internal/rng"
	"secureangle/internal/signature"
	"secureangle/internal/stats"
	"secureangle/internal/testbed"
)

// Fig6Offsets are the paper's log-spaced observation times in seconds:
// 0, 1, 10, 100, 1000 s, one hour, one day.
var Fig6Offsets = []float64{0, 1, 10, 100, 1000, 3600, 86400}

// Fig6Snapshot is one pseudospectrum observation of one client at one
// time offset.
type Fig6Snapshot struct {
	OffsetSec   float64
	PeakBearing float64
	// SpectrumDB is the normalised pseudospectrum in dB over the grid.
	SpectrumDB []float64
	// SimilarityToT0 is the cosine similarity of this snapshot's
	// signature to the t=0 signature.
	SimilarityToT0 float64
}

// Fig6Client is the time series for one of the three clients (2, 5, 10).
type Fig6Client struct {
	ID          int
	GroundTruth float64 // broadside convention not applied; global degrees
	Snapshots   []Fig6Snapshot
	// DirectPeakSpreadDeg is the circular spread of the direct-path peak
	// bearing across all offsets — the paper's claim is that it is small.
	DirectPeakSpreadDeg float64
}

// Fig6Result holds the Figure 6 reproduction: AoA signature stability for
// clients 2, 5 and 10 with the linear array.
type Fig6Result struct {
	GridDeg []float64
	Clients []Fig6Client
	// CoherenceTau is the reflector drift coherence time used (seconds).
	CoherenceTau float64
}

// RunFig6 reproduces Figure 6: the linear 8-antenna array observes clients
// 2 (adjacent room), 5 (near) and 10 (far) at log-spaced intervals from
// zero seconds to one day, with the environment's reflector gains
// drifting on a coherence-time scale; the direct-path peak stays put while
// reflection peaks wander.
func RunFig6(seed int64) (*Fig6Result, error) {
	const tau = 1800 // 30-minute reflector coherence time: minute-scale stability, day-scale change
	e, _ := testbed.Building()
	e.EnableDrift(rng.New(seed^0x5eed), tau, 0.18, 0.9)
	// Orient the linear array so its unambiguous half-plane faces clients
	// 2, 5 and 10 (bearings -38..29 degrees from AP1), keeping all three
	// well away from endfire where a ULA's resolution collapses — the
	// prototype's installers had the same freedom.
	arr := testbed.LinearArray().Rotate(-94)
	fe := testbed.NewAPFrontEnd(arr, testbed.AP1, rng.New(seed))
	ap := core.NewAP("ap1-linear", fe, e, core.DefaultConfig())

	res := &Fig6Result{GridDeg: ap.Grid(), CoherenceTau: tau}
	for _, id := range []int{2, 5, 10} {
		c, err := testbed.ClientByID(id)
		if err != nil {
			return nil, err
		}
		fc := Fig6Client{ID: id, GroundTruth: testbed.GroundTruth(testbed.AP1, c.Pos)}
		// Capture the log-spaced snapshots serially (drift advances
		// between them), then estimate the whole series in parallel.
		captures := make([][][]complex128, 0, len(Fig6Offsets))
		prev := 0.0
		for _, off := range Fig6Offsets {
			e.Advance(off - prev)
			prev = off
			streams, err := synthesize(ap, id, c.Pos, uint16(off))
			if err != nil {
				return nil, fmt.Errorf("experiments: fig6 client %d at %gs: %w", id, off, err)
			}
			captures = append(captures, streams)
		}
		batch := ap.ProcessStreamsBatch(captures)
		var t0 *signature.Signature
		var t0Peak float64
		var directPeaks []float64
		for i, off := range Fig6Offsets {
			if batch[i].Err != nil {
				return nil, fmt.Errorf("experiments: fig6 client %d at %gs: %w", id, off, batch[i].Err)
			}
			rep := batch[i].Report
			snap := Fig6Snapshot{
				OffsetSec:   off,
				PeakBearing: rep.BearingDeg,
				SpectrumDB:  rep.Spectrum.NormalizedDB(),
			}
			if t0 == nil {
				t0 = rep.Sig
				t0Peak = rep.BearingDeg
				snap.SimilarityToT0 = 1
			} else {
				sim, err := signature.Similarity(t0, rep.Sig)
				if err != nil {
					return nil, err
				}
				snap.SimilarityToT0 = sim
			}
			// Track the direct-path peak: the pseudospectrum peak nearest
			// the t=0 direct peak. (The global maximum can momentarily
			// flip to a reflection; the paper's claim is about the
			// direct-path peak's bearing staying put.)
			directPeaks = append(directPeaks, nearestPeak(rep.Spectrum.Peaks(8, 12), t0Peak))
			fc.Snapshots = append(fc.Snapshots, snap)
		}
		fc.DirectPeakSpreadDeg = stats.CircularSpreadDeg(directPeaks)
		res.Clients = append(res.Clients, fc)
		// Decorrelate the drift state before the next client (fresh day).
		e.Advance(10 * tau)
	}
	return res, nil
}

// nearestPeak returns the bearing of the peak closest (on the circle) to
// ref, or ref itself when no peaks were found.
func nearestPeak(peaks []music.Peak, ref float64) float64 {
	best, bestDist := ref, 1e18
	for _, p := range peaks {
		d := angDist(p.BearingDeg, ref)
		if d < bestDist {
			best, bestDist = p.BearingDeg, d
		}
	}
	return best
}

func angDist(a, b float64) float64 {
	d := a - b
	for d > 180 {
		d -= 360
	}
	for d < -180 {
		d += 360
	}
	if d < 0 {
		d = -d
	}
	return d
}

// Render prints Figure 6 as the per-client peak-bearing and similarity
// series (the textual equivalent of the stacked pseudospectrum plots).
func (r *Fig6Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: AoA signature stability (linear array, reflector coherence %gs)\n", r.CoherenceTau)
	for _, c := range r.Clients {
		fmt.Fprintf(&b, "client %d (truth %s):\n", c.ID, fmtDeg(c.GroundTruth))
		fmt.Fprintf(&b, "  %-10s %-14s %-14s\n", "t(s)", "peak(deg)", "sim-to-t0")
		for _, s := range c.Snapshots {
			fmt.Fprintf(&b, "  %-10g %-14.1f %-14.3f\n", s.OffsetSec, s.PeakBearing, s.SimilarityToT0)
		}
		fmt.Fprintf(&b, "  direct-peak spread: %.1f deg\n", c.DirectPeakSpreadDeg)
	}
	return b.String()
}

// DirectStableReflectionsWander checks Figure 6's qualitative claim: the
// direct-path peak bearing stays within a few degrees across a day, while
// signatures at long offsets differ more from t=0 than signatures at
// short offsets (reflection peaks wander).
func (r *Fig6Result) DirectStableReflectionsWander() bool {
	for _, c := range r.Clients {
		if c.DirectPeakSpreadDeg > 6 {
			return false
		}
		shortSim := c.Snapshots[1].SimilarityToT0 // 1 s
		daySim := c.Snapshots[len(c.Snapshots)-1].SimilarityToT0
		if daySim > shortSim+1e-9 && daySim > 0.999 {
			return false // a day of drift left the signature bit-identical: no dynamics
		}
	}
	return true
}
