package track

import (
	"math"
	"math/rand"
	"testing"

	"secureangle/internal/geom"
	"secureangle/internal/locate"
)

func TestFilterFirstUpdatePassesThrough(t *testing.T) {
	f := NewFilter(0.5, 0.3)
	p := f.Update(geom.Point{X: 3, Y: 4}, 1)
	if p != (geom.Point{X: 3, Y: 4}) {
		t.Errorf("first update = %v", p)
	}
}

func TestFilterConvergesOnStationaryTarget(t *testing.T) {
	f := NewFilter(0.5, 0.3)
	rng := rand.New(rand.NewSource(1))
	target := geom.Point{X: 10, Y: 5}
	var last geom.Point
	for i := 0; i < 50; i++ {
		meas := target.Add(geom.Point{X: rng.NormFloat64() * 0.5, Y: rng.NormFloat64() * 0.5})
		last = f.Update(meas, 0.5)
	}
	if last.Dist(target) > 0.5 {
		t.Errorf("converged to %v, want near %v", last, target)
	}
	// Velocity jitter scales with beta/dt * measurement noise (~0.6 m/s
	// here); it must stay bounded but will not be zero.
	if f.Velocity().Norm() > 1.2 {
		t.Errorf("stationary target but velocity %v", f.Velocity())
	}
}

func TestFilterTracksConstantVelocity(t *testing.T) {
	f := NewFilter(0.5, 0.3)
	rng := rand.New(rand.NewSource(2))
	const dt = 0.5
	vel := geom.Point{X: 1, Y: 0.5} // m/s
	pos := geom.Point{}
	var err float64
	for i := 0; i < 60; i++ {
		pos = pos.Add(vel.Scale(dt))
		meas := pos.Add(geom.Point{X: rng.NormFloat64() * 0.3, Y: rng.NormFloat64() * 0.3})
		est := f.Update(meas, dt)
		if i > 20 { // after convergence
			err = math.Max(err, est.Dist(pos))
		}
	}
	if err > 0.8 {
		t.Errorf("steady-state tracking error %v m", err)
	}
	if f.Velocity().Sub(vel).Norm() > 0.4 {
		t.Errorf("velocity estimate %v, want %v", f.Velocity(), vel)
	}
}

func TestFilterSmoothsNoise(t *testing.T) {
	// Filtered RMS error must beat raw measurement RMS error.
	raw := NewFilter(0.4, 0.2)
	rng := rand.New(rand.NewSource(3))
	const dt = 0.5
	vel := geom.Point{X: 1.2, Y: 0}
	pos := geom.Point{}
	var rawSq, filtSq float64
	n := 0
	for i := 0; i < 100; i++ {
		pos = pos.Add(vel.Scale(dt))
		meas := pos.Add(geom.Point{X: rng.NormFloat64(), Y: rng.NormFloat64()})
		est := raw.Update(meas, dt)
		if i > 20 {
			rawSq += meas.Sub(pos).Dot(meas.Sub(pos))
			filtSq += est.Sub(pos).Dot(est.Sub(pos))
			n++
		}
	}
	if filtSq >= rawSq {
		t.Errorf("filter did not reduce error: filt %v vs raw %v",
			math.Sqrt(filtSq/float64(n)), math.Sqrt(rawSq/float64(n)))
	}
}

func TestFilterGainClamps(t *testing.T) {
	f := NewFilter(-1, 99)
	if f.Alpha != 0.5 || f.Beta != 0.3 {
		t.Errorf("gains not clamped: %+v", f)
	}
}

func TestFilterReset(t *testing.T) {
	f := NewFilter(0.5, 0.3)
	f.Update(geom.Point{X: 1, Y: 1}, 1)
	f.Update(geom.Point{X: 2, Y: 2}, 1)
	f.Reset()
	p := f.Update(geom.Point{X: 9, Y: 9}, 1)
	if p != (geom.Point{X: 9, Y: 9}) {
		t.Error("reset did not clear state")
	}
}

func TestStepTriangulatesAndCoasts(t *testing.T) {
	aps := []geom.Point{{X: 0, Y: 0}, {X: 20, Y: 0}}
	target := geom.Point{X: 8, Y: 6}
	obs := []locate.BearingObs{
		{AP: aps[0], BearingDeg: geom.BearingDeg(aps[0], target)},
		{AP: aps[1], BearingDeg: geom.BearingDeg(aps[1], target)},
	}
	f := NewFilter(0.5, 0.3)
	p, ok := f.Step(obs, 0.5)
	if !ok || p.Dist(target) > 1e-6 {
		t.Fatalf("step = %v, %v", p, ok)
	}
	// Underdetermined step coasts.
	p2, ok := f.Step(obs[:1], 0.5)
	if ok {
		t.Error("single-bearing step claimed a fix")
	}
	if p2.Dist(target) > 1 {
		t.Errorf("coast wandered to %v", p2)
	}
}

func TestLinearTrace(t *testing.T) {
	corners := []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 10, Y: 5}}
	wps := LinearTrace(corners, 1, 0.5)
	if len(wps) < 25 {
		t.Fatalf("waypoints = %d", len(wps))
	}
	if wps[0].Pos != corners[0] {
		t.Error("trace does not start at the first corner")
	}
	last := wps[len(wps)-1]
	if last.Pos.Dist(corners[2]) > 1e-9 {
		t.Errorf("trace ends at %v, want %v", last.Pos, corners[2])
	}
	// Monotone time, uniform spacing along segments (0.5 m at 1 m/s per
	// 0.5 s sample).
	for i := 1; i < len(wps); i++ {
		if wps[i].T <= wps[i-1].T {
			t.Fatalf("time not monotone at %d", i)
		}
	}
	if LinearTrace(corners[:1], 1, 0.5) != nil {
		t.Error("degenerate trace accepted")
	}
	if LinearTrace(corners, 0, 0.5) != nil {
		t.Error("zero speed accepted")
	}
}
