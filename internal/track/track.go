// Package track implements the paper's section 5 extension of testing
// the applications "with client mobility and track[ing] the mobility
// trace with multiple APs": a constant-velocity alpha-beta filter over
// the positions that multi-AP bearing triangulation produces, smoothing
// per-packet localisation noise into a mobility trace.
package track

import (
	"errors"

	"secureangle/internal/geom"
	"secureangle/internal/locate"
)

// Filter is a 2-D alpha-beta (g-h) tracker with a constant-velocity
// motion model. Alpha weighs the position innovation, Beta the velocity
// innovation per second.
type Filter struct {
	Alpha float64
	Beta  float64

	pos    geom.Point
	vel    geom.Point
	inited bool
}

// NewFilter returns a tracker with the given gains. Typical indoor
// walking-speed settings: alpha 0.5, beta 0.3.
func NewFilter(alpha, beta float64) *Filter {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.5
	}
	if beta < 0 || beta > 2 {
		beta = 0.3
	}
	return &Filter{Alpha: alpha, Beta: beta}
}

// Update feeds one position measurement taken dt seconds after the
// previous one and returns the filtered position estimate.
func (f *Filter) Update(meas geom.Point, dt float64) geom.Point {
	if !f.inited {
		f.pos = meas
		f.inited = true
		return f.pos
	}
	if dt <= 0 {
		dt = 1e-3
	}
	// Predict.
	pred := f.pos.Add(f.vel.Scale(dt))
	// Innovate.
	resid := meas.Sub(pred)
	f.pos = pred.Add(resid.Scale(f.Alpha))
	f.vel = f.vel.Add(resid.Scale(f.Beta / dt))
	return f.pos
}

// Velocity returns the current velocity estimate (m/s).
func (f *Filter) Velocity() geom.Point { return f.vel }

// State exposes the filter's internal estimate for snapshotting: the
// position, the velocity, and whether the filter has been initialised by
// a first measurement. SetState is its inverse.
func (f *Filter) State() (pos, vel geom.Point, inited bool) {
	return f.pos, f.vel, f.inited
}

// SetState restores a filter estimate captured by State — the
// crash-recovery path of the fusion engine's snapshot codec.
func (f *Filter) SetState(pos, vel geom.Point, inited bool) {
	f.pos, f.vel, f.inited = pos, vel, inited
}

// Reset clears the filter state.
func (f *Filter) Reset() { *f = Filter{Alpha: f.Alpha, Beta: f.Beta} }

// ErrNoFix is returned when a trace step has too few bearings to
// triangulate.
var ErrNoFix = errors.New("track: not enough bearings for a fix")

// Step fuses one time step's bearing observations and advances the
// filter. Steps without a usable fix coast on the motion model (the
// filter's prediction) and report ok=false.
func (f *Filter) Step(obs []locate.BearingObs, dt float64) (geom.Point, bool) {
	p, err := locate.Triangulate(obs)
	if err != nil {
		// Coast: advance the prediction without an innovation.
		if f.inited {
			f.pos = f.pos.Add(f.vel.Scale(dt))
		}
		return f.pos, false
	}
	return f.Update(p, dt), true
}

// Waypoint is one point of a mobility ground-truth trace.
type Waypoint struct {
	T   float64 // seconds
	Pos geom.Point
}

// LinearTrace returns waypoints along straight segments between corners,
// walked at the given speed with one waypoint per sampleInterval seconds.
func LinearTrace(corners []geom.Point, speedMps, sampleInterval float64) []Waypoint {
	if len(corners) < 2 || speedMps <= 0 || sampleInterval <= 0 {
		return nil
	}
	var out []Waypoint
	t := 0.0
	out = append(out, Waypoint{T: 0, Pos: corners[0]})
	for i := 1; i < len(corners); i++ {
		a, b := corners[i-1], corners[i]
		segLen := a.Dist(b)
		dir := b.Sub(a).Unit()
		walked := 0.0
		for {
			walked += speedMps * sampleInterval
			if walked >= segLen {
				break
			}
			t += sampleInterval
			out = append(out, Waypoint{T: t, Pos: a.Add(dir.Scale(walked))})
		}
		t += (segLen - (walked - speedMps*sampleInterval)) / speedMps
		out = append(out, Waypoint{T: t, Pos: b})
	}
	return out
}
