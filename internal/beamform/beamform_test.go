package beamform

import (
	"math"
	"testing"
	"testing/quick"

	"secureangle/internal/antenna"
)

func uca() *antenna.Array { return antenna.NewUCA(8, 0.047, antenna.DefaultCarrierHz) }
func ula() *antenna.Array { return antenna.NewHalfWaveULA(8, antenna.DefaultCarrierHz) }

func TestMRTAchievesFullArrayGain(t *testing.T) {
	for _, arr := range []*antenna.Array{uca(), ula()} {
		for _, b := range []float64{0, 45, 137, 291} {
			w := MRT(arr, b)
			g := Gain(arr, w, b)
			// Unit-norm weights toward the matched steering vector give
			// |w^T a|^2 = N.
			if math.Abs(g-8) > 1e-9 {
				t.Errorf("%v array, bearing %v: gain %v, want 8", arr.Kind, b, g)
			}
		}
	}
}

func TestMRTUnitNorm(t *testing.T) {
	f := func(b float64) bool {
		w := MRT(uca(), math.Mod(b, 360))
		var n float64
		for _, v := range w {
			n += real(v)*real(v) + imag(v)*imag(v)
		}
		return math.Abs(n-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMRTGainBoundProperty(t *testing.T) {
	// No bearing can see more than the full array gain.
	arr := uca()
	w := MRT(arr, 100)
	f := func(b float64) bool {
		return Gain(arr, w, math.Mod(b, 360)) <= 8+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMRTBeamSelective(t *testing.T) {
	// Off-beam gain must fall well below the peak: mean sidelobe level of
	// an 8-element array is ~N times below the mainlobe.
	arr := uca()
	const target = 60.0
	w := MRT(arr, target)
	peak := Gain(arr, w, target)
	var off []float64
	for b := 0.0; b < 360; b++ {
		if math.Abs(b-target) > 40 {
			off = append(off, Gain(arr, w, b))
		}
	}
	var mean float64
	for _, g := range off {
		mean += g
	}
	mean /= float64(len(off))
	if mean > peak/4 {
		t.Errorf("mean off-beam gain %v vs peak %v: beam not selective", mean, peak)
	}
}

func TestPattern(t *testing.T) {
	arr := uca()
	w := MRT(arr, 45)
	grid := arr.ScanGrid(1)
	p := Pattern(arr, w, grid)
	if len(p) != len(grid) {
		t.Fatal("pattern length")
	}
	best, bi := -1.0, 0
	for i, g := range p {
		if g > best {
			best, bi = g, i
		}
	}
	if math.Abs(grid[bi]-45) > 1.5 {
		t.Errorf("pattern peak at %v, want 45", grid[bi])
	}
}

func TestGainDB(t *testing.T) {
	arr := uca()
	w := MRT(arr, 10)
	if db := GainDB(arr, w, 10); math.Abs(db-10*math.Log10(8)) > 1e-6 {
		t.Errorf("GainDB = %v, want %v", db, 10*math.Log10(8))
	}
}

func TestSteerWithNull(t *testing.T) {
	arr := uca()
	w, err := SteerWithNull(arr, 50, 200)
	if err != nil {
		t.Fatal(err)
	}
	gTarget := Gain(arr, w, 50)
	gNull := Gain(arr, w, 200)
	if gNull > 1e-12 {
		t.Errorf("null direction gain %v, want ~0", gNull)
	}
	if gTarget < 4 { // most of the array gain retained
		t.Errorf("target gain %v with null constraint, want > 4", gTarget)
	}
	// Norm 1.
	var n float64
	for _, v := range w {
		n += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(n-1) > 1e-9 {
		t.Errorf("norm = %v", n)
	}
}

func TestSteerWithNullCloseDirections(t *testing.T) {
	// Target and null 15 degrees apart: still a perfect null, with some
	// target-gain sacrifice.
	arr := uca()
	w, err := SteerWithNull(arr, 50, 65)
	if err != nil {
		t.Fatal(err)
	}
	if g := Gain(arr, w, 65); g > 1e-10 {
		t.Errorf("null gain %v", g)
	}
	if g := Gain(arr, w, 50); g < 1 {
		t.Errorf("target gain %v collapsed", g)
	}
}

func TestHalfPowerBeamwidth(t *testing.T) {
	bw8 := HalfPowerBeamwidth(uca(), 45, 0.5)
	if bw8 <= 0 || bw8 > 120 {
		t.Errorf("8-antenna beamwidth = %v", bw8)
	}
	// A 3-element (smaller aperture) circular array must have a wider
	// beam than the 8-element one.
	small := antenna.NewUCA(3, 0.047, antenna.DefaultCarrierHz)
	bw3 := HalfPowerBeamwidth(small, 45, 0.5)
	if bw3 <= bw8 {
		t.Errorf("beamwidths: 3-element %v <= 8-element %v", bw3, bw8)
	}
}

func BenchmarkMRTPattern(b *testing.B) {
	arr := uca()
	w := MRT(arr, 45)
	grid := arr.ScanGrid(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Pattern(arr, w, grid)
	}
}
