package beamform_test

import (
	"fmt"

	"secureangle/internal/antenna"
	"secureangle/internal/beamform"
)

// ExampleMRT forms a downlink beam toward an uplink-estimated bearing.
func ExampleMRT() {
	arr := antenna.NewUCA(8, 0.047, antenna.DefaultCarrierHz)
	w := beamform.MRT(arr, 60) // steer toward 60 degrees
	fmt.Printf("gain toward client: %.1f dB\n", beamform.GainDB(arr, w, 60))
	fmt.Printf("back lobe well below the beam: %v\n", beamform.GainDB(arr, w, 240) < 3)
	// Output:
	// gain toward client: 9.0 dB
	// back lobe well below the beam: true
}

// ExampleSteerWithNull serves a client while nulling a protected incumbent
// — the whitespace-radio yield primitive.
func ExampleSteerWithNull() {
	arr := antenna.NewUCA(8, 0.047, antenna.DefaultCarrierHz)
	w, _ := beamform.SteerWithNull(arr, 60, 200)
	fmt.Printf("client gain positive: %v\n", beamform.GainDB(arr, w, 60) > 5)
	fmt.Printf("incumbent nulled: %v\n", beamform.GainDB(arr, w, 200) < -100)
	// Output:
	// client gain positive: true
	// incumbent nulled: true
}
