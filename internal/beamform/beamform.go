// Package beamform implements the paper's section 5 extension: "With AoA
// information obtained, high efficiency downlink directional transmission
// will also be feasible resulting in higher throughput and better
// reliability." Given the uplink bearing a SecureAngle AP already
// estimates, the AP can steer its downlink with conjugate (maximum ratio
// transmission) weights, or place a spatial null toward a protected
// receiver — the mechanism behind the paper's whitespace-radio remark
// that an AP could yield to incumbent transmitters it can localise.
package beamform

import (
	"errors"
	"math"
	"math/cmplx"

	"secureangle/internal/antenna"
	"secureangle/internal/cmat"
)

// MRT returns unit-norm maximum-ratio-transmission weights toward the
// given bearing: the conjugate of the steering vector. Transmitting with
// these weights adds the per-element phases so all elements' fields sum
// coherently at the target bearing, for an array gain of N (in power)
// over a single antenna at equal total transmit power.
func MRT(arr *antenna.Array, bearingDeg float64) []complex128 {
	s := arr.Steering(bearingDeg)
	w := make([]complex128, len(s))
	for i, v := range s {
		w[i] = cmplx.Conj(v)
	}
	cmat.Normalize(w)
	return w
}

// Gain returns the transmit array gain (linear power, relative to a
// single isotropic element at the same total power) of weights w toward a
// bearing: |w^T a(theta)|^2.
func Gain(arr *antenna.Array, w []complex128, bearingDeg float64) float64 {
	a := arr.Steering(bearingDeg)
	var sum complex128
	for i := range a {
		sum += w[i] * a[i]
	}
	return real(sum)*real(sum) + imag(sum)*imag(sum)
}

// Pattern evaluates the gain over a bearing grid (for plotting and for
// sidelobe checks).
func Pattern(arr *antenna.Array, w []complex128, gridDeg []float64) []float64 {
	out := make([]float64, len(gridDeg))
	for i, b := range gridDeg {
		out[i] = Gain(arr, w, b)
	}
	return out
}

// GainDB is Gain in decibels.
func GainDB(arr *antenna.Array, w []complex128, bearingDeg float64) float64 {
	g := Gain(arr, w, bearingDeg)
	if g <= 0 {
		return -300
	}
	return 10 * math.Log10(g)
}

// ErrTooFewAntennas is returned when a constrained beamformer has more
// constraints than degrees of freedom.
var ErrTooFewAntennas = errors.New("beamform: more constraints than antennas")

// SteerWithNull returns unit-norm weights with unit response toward
// targetDeg and a null toward nullDeg, via the minimum-norm solution of
// the two linear constraints (LCMV with identity covariance):
//
//	w^T a(target) = 1,  w^T a(null) = 0.
//
// This is the "yield to incumbent transmitters" primitive: the AP keeps
// serving its client while placing a spatial null on the bearing of a
// protected incumbent it has localised.
func SteerWithNull(arr *antenna.Array, targetDeg, nullDeg float64) ([]complex128, error) {
	n := arr.N()
	if n < 2 {
		return nil, ErrTooFewAntennas
	}
	at := arr.Steering(targetDeg)
	an := arr.Steering(nullDeg)

	// Minimum-norm w solving C^T w = d, with C = [a_t a_n]:
	// w = conj(C) (C^H conj(C))^{-1} ... — work with the transposed
	// system directly: let B = [a_t^T; a_n^T] (2 x n), solve B w = d with
	// w = B^H (B B^H)^{-1} d.
	bbh := cmat.New(2, 2) // B B^H where B rows are a_t^T, a_n^T
	rows := [][]complex128{at, an}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			var s complex128
			for k := 0; k < n; k++ {
				s += rows[i][k] * cmplx.Conj(rows[j][k])
			}
			bbh.Set(i, j, s)
		}
	}
	d := []complex128{1, 0}
	y, err := cmat.Solve(bbh, d)
	if err != nil {
		return nil, err
	}
	w := make([]complex128, n)
	for k := 0; k < n; k++ {
		w[k] = cmplx.Conj(at[k])*y[0] + cmplx.Conj(an[k])*y[1]
	}
	cmat.Normalize(w)
	return w, nil
}

// HalfPowerBeamwidth returns the -3 dB beamwidth (degrees) of the MRT
// beam toward bearingDeg, scanned over the array's grid at the given
// step. It measures how selective directional downlink would be.
func HalfPowerBeamwidth(arr *antenna.Array, bearingDeg, stepDeg float64) float64 {
	w := MRT(arr, bearingDeg)
	peak := Gain(arr, w, bearingDeg)
	if peak <= 0 {
		return 360
	}
	half := peak / 2
	// Walk outward from the peak in both directions.
	width := 0.0
	for _, dir := range []float64{1, -1} {
		for off := stepDeg; off <= 180; off += stepDeg {
			if Gain(arr, w, bearingDeg+dir*off) < half {
				width += off
				break
			}
			if off+stepDeg > 180 {
				width += 180
			}
		}
	}
	return width
}
