package defense

import (
	"math"
	"testing"
	"time"

	"secureangle/internal/geom"
	"secureangle/internal/wifi"
)

// TestReportPathAllocs pins the steady-state verdict-report path at
// zero allocations: once a client's threat state exists, scoring a
// spoof verdict and a fence verdict must touch only pre-existing
// sharded state (the BENCH_PR5 level the closed loop was built at).
func TestReportPathAllocs(t *testing.T) {
	e := MustNew(Config{
		MaxClients:   1 << 10,
		TickInterval: time.Hour,
		Emit:         func(Directive) {},
	})
	defer e.Close()

	m := wifi.Addr{0x02, 0, 0, 0, 0, 1}
	pos := geom.Point{X: -3, Y: 2}
	seq := uint64(0)
	report := func() {
		seq++
		e.ReportSpoof(SpoofVerdict{
			AP: "ap1", MAC: m, Flagged: true,
			Distance: 0.5, Threshold: 0.12, BearingDeg: 42, HasBearing: true,
		})
		e.ReportFence(FenceVerdict{MAC: m, Seq: seq, Pos: pos, Allowed: false})
	}
	// First cycle creates the threat state and fires the quarantine /
	// null-steer transitions; afterwards the path is pure scoring.
	for i := 0; i < 10; i++ {
		report()
	}
	// Best of a few attempts: sharded state is steady, but a GC pass
	// inside one window can charge unrelated runtime refills here.
	best := math.Inf(1)
	for attempt := 0; attempt < 3 && best > 0; attempt++ {
		best = math.Min(best, testing.AllocsPerRun(200, report))
	}
	if best > 0 {
		t.Errorf("steady-state report path: %.1f allocs, want 0", best)
	}
}
