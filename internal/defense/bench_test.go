package defense

import (
	"testing"
	"time"

	"secureangle/internal/geom"
	"secureangle/internal/wifi"
)

// BenchmarkDefenseDirective measures the verdict -> directive hot
// path: one flagged spoof verdict plus one fence drop per iteration
// over a rotating 1024-MAC working set (state creation, decay,
// scoring, and the quarantine/null-steer transitions on the first
// cycle; steady-state scoring afterwards) — the per-packet cost the
// controller pays to keep the loop closed.
func BenchmarkDefenseDirective(b *testing.B) {
	e := MustNew(Config{
		MaxClients:   1 << 16,
		TickInterval: time.Hour, // sweeping excluded; measured path only
		Emit:         func(Directive) {},
	})
	defer e.Close()

	macs := make([]wifi.Addr, 1024)
	for i := range macs {
		macs[i] = wifi.Addr{0x02, 0, 0, byte(i >> 16), byte(i >> 8), byte(i)}
	}
	pos := geom.Point{X: -3, Y: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := macs[i%len(macs)]
		e.ReportSpoof(SpoofVerdict{
			AP: "ap1", MAC: m, Flagged: true,
			Distance: 0.5, Threshold: 0.12, BearingDeg: 42, HasBearing: true,
		})
		e.ReportFence(FenceVerdict{MAC: m, Seq: uint64(i), Pos: pos, Allowed: false})
	}
}

// BenchmarkDefenseDirectiveParallel is the same path under concurrent
// ingest — sweep -cpu to see the MAC sharding avoid lock contention.
func BenchmarkDefenseDirectiveParallel(b *testing.B) {
	e := MustNew(Config{
		MaxClients:   1 << 16,
		TickInterval: time.Hour,
		Emit:         func(Directive) {},
	})
	defer e.Close()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			m := wifi.Addr{0x02, 1, 0, byte(i >> 16), byte(i >> 8), byte(i)}
			e.ReportSpoof(SpoofVerdict{
				AP: "ap1", MAC: m, Flagged: true,
				Distance: 0.5, Threshold: 0.12, BearingDeg: 42, HasBearing: true,
			})
		}
	})
}
