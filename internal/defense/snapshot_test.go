package defense

import (
	"bytes"
	"reflect"
	"sort"
	"testing"
	"time"

	"secureangle/internal/geom"
	"secureangle/internal/wifi"
)

// TestDefenseSnapshotRoundTrip pins the Save/Restore codec: a restored
// engine reports the same threat states — a quarantined client stays
// quarantined with its score, countermeasure action, and evidence
// intact — and the state machine keeps working from where it left off.
func TestDefenseSnapshotRoundTrip(t *testing.T) {
	a, nowA, _, _ := testEngine(t, Config{})
	defer a.Close()

	spoofer := wifi.Addr{2, 0, 0, 0, 0, 1}
	monitored := wifi.Addr{2, 0, 0, 0, 0, 2}
	a.ReportSpoof(SpoofVerdict{
		AP: "ap1", MAC: spoofer, Flagged: true,
		Distance: 0.9, Threshold: 0.12, BearingDeg: 60, HasBearing: true, Stage: "spoofcheck",
	})
	a.ReportFence(FenceVerdict{MAC: monitored, Seq: 1, Pos: geom.Point{X: 30, Y: 5}, Allowed: false})
	a.ReportFence(FenceVerdict{MAC: monitored, Seq: 2, Pos: geom.Point{X: 30, Y: 6}, Allowed: false})
	if st, _ := a.State(spoofer); st.State != StateQuarantine {
		t.Fatalf("setup: spoofer state = %v", st.State)
	}
	if st, _ := a.State(monitored); st.State != StateMonitor {
		t.Fatalf("setup: monitored state = %v", st.State)
	}

	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()

	b, nowB, emittedB, muB := testEngine(t, Config{})
	defer b.Close()
	*nowB = *nowA
	if err := b.Restore(bytes.NewReader(blob)); err != nil {
		t.Fatal(err)
	}
	muB.Lock()
	if len(*emittedB) != 0 {
		t.Errorf("restore emitted directives: %+v", *emittedB)
	}
	muB.Unlock()

	wantStates := a.Snapshot()
	gotStates := b.Snapshot()
	sortByMAC(wantStates)
	sortByMAC(gotStates)
	if !reflect.DeepEqual(normThreats(wantStates), normThreats(gotStates)) {
		t.Errorf("snapshot round trip:\n  %+v\nvs %+v", wantStates, gotStates)
	}
	if q := b.Quarantined(); len(q) != 1 || q[0].MAC != spoofer || q[0].Action != ActionQuarantine {
		t.Errorf("restored quarantine = %+v", q)
	}

	// The restored machine still escalates: two more drops push the
	// monitored client over the default QuarantineScore.
	b.ReportFence(FenceVerdict{MAC: monitored, Seq: 3, Pos: geom.Point{X: 30, Y: 7}, Allowed: false})
	b.ReportFence(FenceVerdict{MAC: monitored, Seq: 4, Pos: geom.Point{X: 30, Y: 8}, Allowed: false})
	if st, _ := b.State(monitored); st.State != StateQuarantine {
		t.Errorf("restored engine did not escalate: %+v", st)
	}

	// And still de-escalates: decay past MinQuarantine releases.
	*nowB = nowB.Add(10 * time.Minute)
	b.Sweep(*nowB)
	if q := b.Quarantined(); len(q) != 0 {
		t.Errorf("restored quarantines did not decay: %+v", q)
	}

	// Identical state encodes to identical bytes (MAC-ordered records).
	var buf2 bytes.Buffer
	if err := a.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, buf2.Bytes()) {
		t.Error("two saves of unchanged state differ")
	}
}

func TestDefenseRestoreRejectsGarbage(t *testing.T) {
	e, _, _, _ := testEngine(t, Config{})
	defer e.Close()
	if err := e.Restore(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("garbage restored without error")
	}
}

func sortByMAC(ts []ClientThreat) {
	sort.Slice(ts, func(i, j int) bool {
		return bytes.Compare(ts[i].MAC[:], ts[j].MAC[:]) < 0
	})
}

// normThreats rounds away monotonic clock readings so DeepEqual
// compares wall instants.
func normThreats(ts []ClientThreat) []ClientThreat {
	out := make([]ClientThreat, len(ts))
	for i, st := range ts {
		st.Since = st.Since.Round(0)
		st.Updated = st.Updated.Round(0)
		out[i] = st
	}
	return out
}
