package defense

// The threat engine's snapshot codec: a versioned binary encoding of
// every tracked client's threat state — score, state-machine position,
// evidence counters, and the direction/position data countermeasures
// are aimed with — so a restarted controller resumes live quarantines
// instead of handing every quarantined attacker a free re-entry window.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"secureangle/internal/geom"
	"secureangle/internal/wifi"
)

// Snapshot codec framing. v2 appends the threat's last trace ID after
// the strings, so incident-timeline causality survives a restart; v1
// snapshots restore with a zero trace.
const (
	snapMagic     = "SADS" // SecureAngle Defense State
	snapVersion   = 2
	snapVersionV1 = 1
)

// threatFixedSize is one encoded threat record minus its two strings:
// MAC + state + action + score + 3 evidence counters + distance +
// threshold + bearing + hasBearing + pos + hasPos + since + updated.
const threatFixedSize = 6 + 1 + 1 + 8 + 3*8 + 8 + 8 + 8 + 1 + 16 + 1 + 8 + 8

// Save writes a versioned binary snapshot of the engine's threat state
// to w, in MAC order (deterministic bytes for identical state). Safe to
// call concurrently with ingest; consistent per shard, not across
// shards.
func (e *Engine) Save(w io.Writer) error {
	type rec struct {
		mac  wifi.Addr
		body []byte
	}
	var recs []rec
	for _, s := range e.shards {
		s.mu.Lock()
		for mac, th := range s.threats {
			recs = append(recs, rec{mac: mac, body: encodeThreat(nil, th)})
		}
		s.mu.Unlock()
	}
	sort.Slice(recs, func(i, j int) bool {
		return bytes.Compare(recs[i].mac[:], recs[j].mac[:]) < 0
	})
	bw := bufio.NewWriter(w)
	bw.WriteString(snapMagic)
	var hdr [6]byte
	binary.BigEndian.PutUint16(hdr[0:2], snapVersion)
	binary.BigEndian.PutUint32(hdr[2:6], uint32(len(recs)))
	bw.Write(hdr[:])
	for i := range recs {
		bw.Write(recs[i].body)
	}
	return bw.Flush()
}

// encodeThreat appends one threat's wire form: the fixed block, then
// the two length-prefixed strings. Shard lock held.
func encodeThreat(b []byte, th *threat) []byte {
	b = append(b, th.mac[:]...)
	b = append(b, byte(th.state), byte(th.action))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(th.score))
	b = binary.BigEndian.AppendUint64(b, th.flags)
	b = binary.BigEndian.AppendUint64(b, th.fenceDrops)
	b = binary.BigEndian.AppendUint64(b, th.speedFlags)
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(th.lastDistance))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(th.lastThreshold))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(th.bearingDeg))
	b = appendBool(b, th.hasBearing)
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(th.pos.X))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(th.pos.Y))
	b = appendBool(b, th.hasPos)
	b = binary.BigEndian.AppendUint64(b, uint64(th.since.UnixNano()))
	b = binary.BigEndian.AppendUint64(b, uint64(th.updated.UnixNano()))
	b = appendString(b, th.lastAP)
	b = appendString(b, th.stage)
	return binary.BigEndian.AppendUint64(b, th.lastTrace)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendString(b []byte, s string) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

func readSnapString(br *bufio.Reader) (string, error) {
	var n [2]byte
	if _, err := io.ReadFull(br, n[:]); err != nil {
		return "", err
	}
	buf := make([]byte, binary.BigEndian.Uint16(n[:]))
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// Restore loads a snapshot written by Save into the engine, replacing
// any state held for the snapshotted MACs. Intended for a freshly-built
// engine before traffic arrives (the crash-recovery path); no
// directives are emitted — restored quarantines are already in force at
// the engine's view of the fleet, and the controller re-broadcasts them
// to APs as they (re)connect.
func (e *Engine) Restore(r io.Reader) error {
	hdr := make([]byte, 4+6)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return fmt.Errorf("defense: snapshot header: %w", err)
	}
	if string(hdr[:4]) != snapMagic {
		return fmt.Errorf("defense: bad snapshot magic %q", hdr[:4])
	}
	ver := binary.BigEndian.Uint16(hdr[4:6])
	if ver != snapVersion && ver != snapVersionV1 {
		return fmt.Errorf("defense: unsupported snapshot version %d", ver)
	}
	count := binary.BigEndian.Uint32(hdr[6:10])
	br := bufio.NewReader(r)
	fixed := make([]byte, threatFixedSize)
	for i := uint32(0); i < count; i++ {
		if _, err := io.ReadFull(br, fixed); err != nil {
			return fmt.Errorf("defense: snapshot threat %d: %w", i, err)
		}
		lastAP, err := readSnapString(br)
		if err != nil {
			return fmt.Errorf("defense: snapshot threat %d: %w", i, err)
		}
		stage, err := readSnapString(br)
		if err != nil {
			return fmt.Errorf("defense: snapshot threat %d: %w", i, err)
		}
		var lastTrace uint64
		if ver >= snapVersion {
			var tb [8]byte
			if _, err := io.ReadFull(br, tb[:]); err != nil {
				return fmt.Errorf("defense: snapshot threat %d: %w", i, err)
			}
			lastTrace = binary.BigEndian.Uint64(tb[:])
		}
		e.restoreThreat(fixed, lastAP, stage, lastTrace)
	}
	return nil
}

// restoreThreat decodes one fixed block + strings and installs the
// threat entry in its shard.
func (e *Engine) restoreThreat(b []byte, lastAP, stage string, lastTrace uint64) {
	var mac wifi.Addr
	copy(mac[:], b[:6])
	now := e.cfg.Clock()
	s := e.shardFor(mac)
	s.mu.Lock()
	th, ds := s.touch(e, mac, now)
	th.state = State(b[6])
	th.action = Action(b[7])
	th.score = math.Float64frombits(binary.BigEndian.Uint64(b[8:16]))
	th.flags = binary.BigEndian.Uint64(b[16:24])
	th.fenceDrops = binary.BigEndian.Uint64(b[24:32])
	th.speedFlags = binary.BigEndian.Uint64(b[32:40])
	th.lastDistance = math.Float64frombits(binary.BigEndian.Uint64(b[40:48]))
	th.lastThreshold = math.Float64frombits(binary.BigEndian.Uint64(b[48:56]))
	th.bearingDeg = math.Float64frombits(binary.BigEndian.Uint64(b[56:64]))
	th.hasBearing = b[64] != 0
	th.pos = geom.Point{
		X: math.Float64frombits(binary.BigEndian.Uint64(b[65:73])),
		Y: math.Float64frombits(binary.BigEndian.Uint64(b[73:81])),
	}
	th.hasPos = b[81] != 0
	th.since = time.Unix(0, int64(binary.BigEndian.Uint64(b[82:90])))
	th.updated = time.Unix(0, int64(binary.BigEndian.Uint64(b[90:98])))
	th.lastAP, th.stage = lastAP, stage
	th.lastTrace = lastTrace
	s.unlockAndEmit(e, ds)
}
