// Package defense closes SecureAngle's loop from detection to response.
// The paper's three analyses — per-AP AoA-signature spoof checks
// (section 2.3.2), the multi-AP virtual fence (section 2.3.1), and
// mobility tracking (section 5) — each produce verdicts about a client;
// this package is the policy engine that turns those verdicts into
// countermeasures.
//
// Every client MAC carries a threat state machine
//
//	allow -> monitor -> quarantine -> (release back to allow)
//
// driven by a decaying threat score: spoof flags (weighted by how far
// past the threshold the signature landed), fence drops, and
// physically-implausible track velocities all add evidence; time
// removes it (exponential decay with a configurable half-life). State
// transitions apply hysteresis — escalation happens at the
// Monitor/Quarantine thresholds, de-escalation only once the score has
// decayed below the lower Release threshold and a minimum quarantine
// residence has passed — so a client oscillating near a threshold does
// not flap. A hard QuarantineTTL bounds how long any quarantine can
// outlive its evidence: the seed's permanent fleet-wide quarantine map
// becomes a state that always decays back to release.
//
// The engine emits typed Directives on state transitions: quarantine
// (drop the client's frames), null-steer (additionally place a spatial
// transmit null toward the threat's bearing — the paper's section 5
// "yield to transmitters you can localise" primitive, finally wired
// into the runtime via internal/beamform), and allow (release). The
// controller broadcasts directives to APs over the v3-gated wire
// message TypeDirective; internal/core applies them.
//
// State is sharded by MAC (FNV-1a, the fusion/registry pattern) and
// bounded: MaxClients LRU-evicts the least-recently-updated client,
// and fully-decayed allow-state entries are dropped by the sweeper, so
// memory is O(live threats), never O(clients ever seen).
package defense

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"secureangle/internal/geom"
	"secureangle/internal/signature"
	"secureangle/internal/timingwheel"
	"secureangle/internal/wifi"
)

// State is a client's position in the threat state machine.
type State uint8

const (
	// StateAllow: no active suspicion; frames flow normally.
	StateAllow State = iota
	// StateMonitor: evidence below the quarantine bar; the client is
	// watched (no directive is emitted, but the state is queryable).
	StateMonitor
	// StateQuarantine: the client's frames are dropped fleet-wide, and
	// past the null-steer escalation bar APs also place a transmit null
	// on its bearing.
	StateQuarantine
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateAllow:
		return "allow"
	case StateMonitor:
		return "monitor"
	case StateQuarantine:
		return "quarantine"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Action is the countermeasure a Directive instructs APs to take.
type Action uint8

const (
	// ActionAllow releases the client: clear any countermeasure.
	ActionAllow Action = iota
	// ActionQuarantine drops the client's frames.
	ActionQuarantine
	// ActionNullSteer drops the client's frames and places a spatial
	// transmit null toward its bearing.
	ActionNullSteer
)

// String names the action.
func (a Action) String() string {
	switch a {
	case ActionAllow:
		return "allow"
	case ActionQuarantine:
		return "quarantine"
	case ActionNullSteer:
		return "null-steer"
	default:
		return fmt.Sprintf("action(%d)", uint8(a))
	}
}

// SpoofVerdict is one AP's scored signature check for one frame — the
// margin-carrying form of the boolean flag the seed broadcast.
type SpoofVerdict struct {
	// AP names the reporting access point.
	AP  string
	MAC wifi.Addr
	// Flagged is the binary decision (true = signature mismatch).
	Flagged bool
	// Distance and Threshold score the decision: how far the observed
	// signature sat from the certified one, against what bar.
	Distance  float64
	Threshold float64
	// BearingDeg is the bearing the AP observed the frame at — the
	// null-steer fallback direction when no fused position exists.
	// HasBearing marks it valid: verdicts relayed from peers that never
	// measured one (v1/v2 alerts, bare SendAlert) leave it false, and
	// the engine will not order a null-steer on direction it does not
	// have.
	BearingDeg float64
	HasBearing bool
	// Stage, when non-empty, is the pipeline stage behind an anomalous
	// failure ("spoofcheck" for a mismatch; "detect"/"estimate" for
	// anomalies reported as alerts).
	Stage string
	// Trace is the flagged packet's trace ID (0 = untraced).
	Trace uint64
}

// Severity is the normalised threshold exceedance of a flagged verdict
// (0 for accepts; 1.0 when the distance doubled the threshold) —
// signature.Verdict.Severity, the one home of the formula, applied to
// this verdict's scoring fields.
func (v SpoofVerdict) Severity() float64 {
	if !v.Flagged {
		return 0
	}
	return signature.Verdict{Distance: v.Distance, Threshold: v.Threshold}.Severity()
}

// FenceVerdict is one fused virtual-fence decision.
type FenceVerdict struct {
	MAC wifi.Addr
	Seq uint64
	Pos geom.Point
	// Allowed is the fence outcome (false = located outside the
	// boundary).
	Allowed bool
	// Forced marks a decision fused at a deadline without angular
	// diversity — weaker evidence.
	Forced bool
	// Trace is the fused decision's trace ID (0 = untraced).
	Trace uint64
}

// TrackVerdict is one mobility-track update: the fused, filtered
// position and velocity of a client. The engine uses it to keep the
// threat's last known position fresh (null-steer bearings) and to flag
// physically-implausible velocities (two radios sharing one MAC
// "teleport" between fixes).
type TrackVerdict struct {
	MAC wifi.Addr
	Pos geom.Point
	Vel geom.Point
	// Trace is the underlying fused decision's trace ID (0 = untraced).
	Trace uint64
}

// Directive is one typed countermeasure order, emitted on threat-state
// transitions and broadcast to APs.
type Directive struct {
	MAC    wifi.Addr
	Action Action
	// From/To record the state transition that produced the directive.
	From, To State
	// Reporter names the origin of the triggering evidence: the flagging
	// AP, "fence" for fence-driven escalations, "track" for velocity
	// anomalies, "operator" for manual releases, "ttl"/"decay" for
	// automatic ones, "evicted" for a release forced by MaxClients
	// eviction (the engine will not remember the client, so APs must
	// not keep countermeasures for it).
	Reporter string
	// BearingDeg is the threat bearing observed by the flagging AP
	// (HasBearing marks it valid) — the null direction for APs that
	// cannot derive one from Pos.
	BearingDeg float64
	HasBearing bool
	// Pos is the threat's last known fused position; HasPos marks it
	// valid. APs with a position compute their own null bearing from it.
	Pos    geom.Point
	HasPos bool
	// TTL, when positive, is the countermeasure lease for a quarantine
	// or null-steer directive: APs self-expire the countermeasure this
	// long after applying it, so a release frame lost to a full
	// broadcast queue (or a dropped connection) cannot leave a client
	// countermeasured forever. It mirrors Policy.QuarantineTTL, which
	// always postdates any engine-side release, so the lease only fires
	// as a backstop.
	TTL time.Duration
	// Score is the threat score at emission; Distance/Threshold the last
	// spoof verdict's scoring (margin = Threshold - Distance); Stage the
	// last pipeline stage (see SpoofVerdict.Stage).
	Score     float64
	Distance  float64
	Threshold float64
	Stage     string
	// Trace is the trace ID of the last traced evidence that touched the
	// threat before this directive — the causal link an incident
	// timeline joins report, verdict, and countermeasure on.
	Trace uint64
}

// ClientThreat is one client's queryable threat state.
type ClientThreat struct {
	MAC   wifi.Addr
	State State
	// Action is the countermeasure currently directed (ActionAllow when
	// none).
	Action Action
	// Score is the decayed threat score as of Updated.
	Score float64
	// Flags / FenceDrops / SpeedFlags count the evidence ingested.
	Flags      uint64
	FenceDrops uint64
	SpeedFlags uint64
	// LastAP is the most recent flagging AP; Stage its pipeline stage;
	// LastDistance/LastThreshold its scored verdict; BearingDeg its
	// bearing (HasBearing marks it valid).
	LastAP        string
	Stage         string
	LastDistance  float64
	LastThreshold float64
	BearingDeg    float64
	HasBearing    bool
	// Pos is the last known fused position (HasPos marks it valid).
	Pos    geom.Point
	HasPos bool
	// Since is when the current state was entered; Updated the last
	// evidence or sweep touch.
	Since   time.Time
	Updated time.Time
	// Trace is the trace ID of the most recent traced evidence — the
	// handle an incident timeline (or an operator release) joins this
	// threat's history on. Zero when no traced evidence arrived.
	Trace uint64
}

// Policy tunes the threat state machine. Zero fields take the defaults;
// Validate rejects contradictions (the Config convention shared with
// core and fusion).
type Policy struct {
	// MonitorScore escalates allow -> monitor at score >= it.
	MonitorScore float64
	// QuarantineScore escalates to quarantine at score >= it.
	QuarantineScore float64
	// NullSteerScore escalates a quarantined client to the null-steer
	// countermeasure at score >= it. Negative disables null-steering
	// (quarantine stays the strongest action).
	NullSteerScore float64
	// ReleaseScore de-escalates once the decayed score drops below it —
	// the hysteresis floor, strictly below MonitorScore.
	ReleaseScore float64
	// HalfLife is the score's exponential-decay half-life.
	HalfLife time.Duration
	// MinQuarantine is the minimum quarantine residence: decay-driven
	// release is deferred until it has passed (time-domain hysteresis,
	// so one borderline flag cannot bounce a client out immediately).
	MinQuarantine time.Duration
	// QuarantineTTL hard-bounds quarantine residence: past it the client
	// is released regardless of score (the score is zeroed). Negative
	// disables the bound — the seed's permanent quarantine, opt-in.
	QuarantineTTL time.Duration
	// SpoofWeight is the score of one flagged spoof verdict, scaled by
	// (1 + Severity) so gross mismatches escalate faster.
	SpoofWeight float64
	// FenceWeight is the score of one fence Drop (halved when Forced —
	// degenerate-geometry decisions are weaker evidence).
	FenceWeight float64
	// SpeedWeight is the score of one implausible-velocity track update;
	// MaxSpeedMS is the plausibility bound (negative disables the check).
	SpeedWeight float64
	MaxSpeedMS  float64
}

// Defaults for zero Policy fields. One spoof alert quarantines
// immediately (SpoofWeight == QuarantineScore — the seed's semantics);
// fence drops and velocity anomalies accumulate through monitor first.
const (
	DefaultMonitorScore    = 1.0
	DefaultQuarantineScore = 2.0
	DefaultNullSteerScore  = 5.0
	DefaultReleaseScore    = 0.5
	DefaultHalfLife        = 30 * time.Second
	DefaultMinQuarantine   = 5 * time.Second
	DefaultQuarantineTTL   = 10 * time.Minute
	DefaultSpoofWeight     = 2.0
	DefaultFenceWeight     = 0.5
	DefaultSpeedWeight     = 1.0
	DefaultMaxSpeedMS      = 10.0
)

// WithDefaults returns p with zero fields replaced by defaults.
func (p Policy) WithDefaults() Policy {
	if p.MonitorScore == 0 {
		p.MonitorScore = DefaultMonitorScore
	}
	if p.QuarantineScore == 0 {
		p.QuarantineScore = DefaultQuarantineScore
	}
	if p.NullSteerScore == 0 {
		p.NullSteerScore = DefaultNullSteerScore
	}
	if p.ReleaseScore == 0 {
		p.ReleaseScore = DefaultReleaseScore
	}
	if p.HalfLife == 0 {
		p.HalfLife = DefaultHalfLife
	}
	if p.MinQuarantine == 0 {
		p.MinQuarantine = DefaultMinQuarantine
	}
	if p.QuarantineTTL == 0 {
		p.QuarantineTTL = DefaultQuarantineTTL
	}
	if p.SpoofWeight == 0 {
		p.SpoofWeight = DefaultSpoofWeight
	}
	if p.FenceWeight == 0 {
		p.FenceWeight = DefaultFenceWeight
	}
	if p.SpeedWeight == 0 {
		p.SpeedWeight = DefaultSpeedWeight
	}
	if p.MaxSpeedMS == 0 {
		p.MaxSpeedMS = DefaultMaxSpeedMS
	}
	return p
}

// Validate reports contradictions in an already-defaulted Policy.
func (p Policy) Validate() error {
	switch {
	case p.MonitorScore <= 0 || p.QuarantineScore <= 0:
		return errors.New("defense: non-positive escalation threshold")
	case p.QuarantineScore < p.MonitorScore:
		return fmt.Errorf("defense: QuarantineScore %g below MonitorScore %g", p.QuarantineScore, p.MonitorScore)
	case p.NullSteerScore >= 0 && p.NullSteerScore < p.QuarantineScore:
		return fmt.Errorf("defense: NullSteerScore %g below QuarantineScore %g", p.NullSteerScore, p.QuarantineScore)
	case p.ReleaseScore <= 0 || p.ReleaseScore >= p.MonitorScore:
		return fmt.Errorf("defense: ReleaseScore %g outside (0, MonitorScore)", p.ReleaseScore)
	case p.HalfLife <= 0:
		return errors.New("defense: non-positive HalfLife")
	case p.MinQuarantine < 0:
		return errors.New("defense: negative MinQuarantine")
	case p.SpoofWeight <= 0 || p.FenceWeight <= 0 || p.SpeedWeight <= 0:
		return errors.New("defense: non-positive evidence weight")
	}
	return nil
}

// Config tunes an Engine.
type Config struct {
	Policy Policy
	// Shards is the lock-striping factor over MACs (default 16).
	Shards int
	// MaxClients caps tracked threat entries across all shards; the
	// least-recently-updated entry is evicted beyond it (default 65536).
	MaxClients int
	// TickInterval is the coarse sweep period driving decay-based
	// release and TTL expiry (default 50ms).
	TickInterval time.Duration
	// Emit receives every directive, called outside all shard locks.
	// Nil discards directives (state still advances).
	Emit func(Directive)
	// Logf, if set, receives diagnostic output.
	Logf func(format string, args ...any)

	// Clock overrides time.Now. Tests and the journal's deterministic
	// replay (internal/journal) drive it with synthetic or recorded
	// timestamps; nil means wall time.
	Clock func() time.Time
}

// Defaults for zero Config fields.
const (
	DefaultShards       = 16
	DefaultMaxClients   = 65536
	DefaultTickInterval = 50 * time.Millisecond
)

// WithDefaults returns cfg with zero fields replaced by defaults
// (including the nested Policy).
func (cfg Config) WithDefaults() Config {
	cfg.Policy = cfg.Policy.WithDefaults()
	if cfg.Shards == 0 {
		cfg.Shards = DefaultShards
	}
	if cfg.MaxClients == 0 {
		cfg.MaxClients = DefaultMaxClients
	}
	if cfg.TickInterval == 0 {
		cfg.TickInterval = DefaultTickInterval
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return cfg
}

// Validate reports contradictions in an already-defaulted Config.
func (cfg Config) Validate() error {
	if err := cfg.Policy.Validate(); err != nil {
		return err
	}
	if cfg.Shards < 1 {
		return fmt.Errorf("defense: Shards %d < 1", cfg.Shards)
	}
	if cfg.MaxClients < 1 {
		return fmt.Errorf("defense: MaxClients %d < 1", cfg.MaxClients)
	}
	if cfg.TickInterval < 0 {
		return errors.New("defense: negative TickInterval")
	}
	return nil
}

// Stats are the engine's monotonic counters.
type Stats struct {
	// SpoofVerdicts / FenceVerdicts / TrackVerdicts count ingested
	// evidence.
	SpoofVerdicts uint64
	FenceVerdicts uint64
	TrackVerdicts uint64
	// Quarantines counts entries into the quarantine state; NullSteers
	// counts escalations to the null-steer countermeasure.
	Quarantines uint64
	NullSteers  uint64
	// Releases counts all releases back to allow, split by cause
	// (Releases == Decay + TTL + Operator + Evicted releases).
	Releases         uint64
	DecayReleases    uint64
	TTLReleases      uint64
	OperatorReleases uint64
	EvictedReleases  uint64
	// SpeedFlags counts implausible-velocity track updates.
	SpeedFlags uint64
	// Evicted counts threat entries displaced by MaxClients.
	Evicted uint64
	// Directives counts directives emitted.
	Directives uint64
}

type counters struct {
	spoof, fence, track                         uint64
	quarantines, nullSteers                     uint64
	releases, decayRel, ttlRel, opRel, evictRel uint64
	speedFlags, evicted, directives             uint64
}

func (c *counters) add(o counters) {
	c.spoof += o.spoof
	c.fence += o.fence
	c.track += o.track
	c.quarantines += o.quarantines
	c.nullSteers += o.nullSteers
	c.releases += o.releases
	c.decayRel += o.decayRel
	c.ttlRel += o.ttlRel
	c.opRel += o.opRel
	c.evictRel += o.evictRel
	c.speedFlags += o.speedFlags
	c.evicted += o.evicted
	c.directives += o.directives
}

// Engine is the sharded threat engine. Safe for concurrent use.
type Engine struct {
	cfg    Config
	shards []*dshard

	wheel  *timingwheel.Wheel
	tmr    timingwheel.Timer
	closed atomic.Bool
}

// New builds an Engine from cfg (zero fields defaulted, then
// validated).
func New(cfg Config) (*Engine, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:    cfg,
		shards: make([]*dshard, cfg.Shards),
	}
	perShard := (cfg.MaxClients + cfg.Shards - 1) / cfg.Shards
	for i := range e.shards {
		e.shards[i] = &dshard{
			threats:    make(map[wifi.Addr]*threat),
			maxClients: perShard,
		}
	}
	// Periodic decay/TTL sweep on the shared hierarchical timing wheel
	// (see internal/timingwheel): self-rescheduling timer, no goroutine.
	e.wheel = timingwheel.Acquire()
	e.tmr.Fn = func() {
		if e.closed.Load() {
			return
		}
		e.Sweep(e.cfg.Clock())
		if !e.closed.Load() {
			e.wheel.Schedule(&e.tmr, e.cfg.TickInterval)
		}
	}
	e.wheel.Schedule(&e.tmr, cfg.TickInterval)
	return e, nil
}

// MustNew is New for static configs known to be valid; it panics on a
// Validate failure.
func MustNew(cfg Config) *Engine {
	e, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// Close stops the sweeper. In-flight reports complete; no further
// directives are emitted.
func (e *Engine) Close() {
	if e.closed.Swap(true) {
		return
	}
	e.wheel.StopWait(&e.tmr)
	timingwheel.Release(e.wheel)
}

func (e *Engine) logf(format string, args ...any) {
	if e.cfg.Logf != nil {
		e.cfg.Logf(format, args...)
	}
}

func (e *Engine) shardFor(mac wifi.Addr) *dshard {
	return e.shards[mac.Hash()%uint32(len(e.shards))]
}

// emit hands directives to the configured sink outside all locks.
func (e *Engine) emit(ds []Directive) {
	if e.cfg.Emit == nil {
		return
	}
	for _, d := range ds {
		e.cfg.Emit(d)
	}
}

// ReportSpoof ingests one scored signature verdict. Accepted verdicts
// refresh an *existing* threat entry's evidence without adding score —
// for an unknown MAC they are a no-op, so the fleet's clean traffic
// does not churn threat entries; flagged ones add
// SpoofWeight * (1 + severity).
func (e *Engine) ReportSpoof(v SpoofVerdict) {
	if e.closed.Load() {
		return
	}
	now := e.cfg.Clock()
	s := e.shardFor(v.MAC)
	s.mu.Lock()
	s.ctr.spoof++
	if !v.Flagged && s.threats[v.MAC] == nil {
		s.mu.Unlock()
		return
	}
	th, ds := s.touch(e, v.MAC, now)
	th.decayTo(now, e.cfg.Policy.HalfLife)
	th.lastAP, th.stage = v.AP, v.Stage
	th.lastDistance, th.lastThreshold = v.Distance, v.Threshold
	if v.Trace != 0 {
		th.lastTrace = v.Trace
	}
	if v.HasBearing {
		th.bearingDeg, th.hasBearing = v.BearingDeg, true
	}
	if v.Flagged {
		th.flags++
		th.score += e.cfg.Policy.SpoofWeight * (1 + math.Min(v.Severity(), 1))
	}
	ds = append(ds, e.transition(s, th, now, v.AP)...)
	s.unlockAndEmit(e, ds)
}

// ReportFence ingests one fused fence decision. Drops add FenceWeight
// (halved when the decision was forced at a deadline); the fused
// position refreshes an existing threat's last known location. Allowed
// decisions for unknown MACs are a no-op — the fusion hot path must
// not churn threat entries for legitimate clients.
func (e *Engine) ReportFence(v FenceVerdict) {
	if e.closed.Load() {
		return
	}
	now := e.cfg.Clock()
	s := e.shardFor(v.MAC)
	s.mu.Lock()
	s.ctr.fence++
	if v.Allowed && s.threats[v.MAC] == nil {
		s.mu.Unlock()
		return
	}
	th, ds := s.touch(e, v.MAC, now)
	th.decayTo(now, e.cfg.Policy.HalfLife)
	th.pos, th.hasPos = v.Pos, true
	if v.Trace != 0 {
		th.lastTrace = v.Trace
	}
	if !v.Allowed {
		th.fenceDrops++
		w := e.cfg.Policy.FenceWeight
		if v.Forced {
			w /= 2
		}
		th.score += w
	}
	ds = append(ds, e.transition(s, th, now, "fence")...)
	s.unlockAndEmit(e, ds)
}

// ReportTrack ingests one mobility-track update: the position refreshes
// an existing threat's location, and a speed past Policy.MaxSpeedMS
// (two radios sharing a MAC cannot move like one) adds SpeedWeight.
// Plausible updates for unknown MACs are a no-op, like ReportFence.
func (e *Engine) ReportTrack(v TrackVerdict) {
	if e.closed.Load() {
		return
	}
	anomalous := false
	if max := e.cfg.Policy.MaxSpeedMS; max >= 0 {
		anomalous = math.Hypot(v.Vel.X, v.Vel.Y) > max
	}
	now := e.cfg.Clock()
	s := e.shardFor(v.MAC)
	s.mu.Lock()
	s.ctr.track++
	if !anomalous && s.threats[v.MAC] == nil {
		s.mu.Unlock()
		return
	}
	th, ds := s.touch(e, v.MAC, now)
	th.decayTo(now, e.cfg.Policy.HalfLife)
	th.pos, th.hasPos = v.Pos, true
	if v.Trace != 0 {
		th.lastTrace = v.Trace
	}
	if anomalous {
		th.speedFlags++
		s.ctr.speedFlags++
		th.score += e.cfg.Policy.SpeedWeight
	}
	ds = append(ds, e.transition(s, th, now, "track")...)
	s.unlockAndEmit(e, ds)
}

// Release is the operator path: drop the client back to allow
// immediately, zeroing its score, and emit a release directive if a
// countermeasure was active. Returns whether the MAC was known.
func (e *Engine) Release(mac wifi.Addr) bool {
	if e.closed.Load() {
		return false
	}
	now := e.cfg.Clock()
	s := e.shardFor(mac)
	s.mu.Lock()
	th, ok := s.threats[mac]
	if !ok {
		s.mu.Unlock()
		return false
	}
	var ds []Directive
	th.score = 0
	th.updated = now
	if th.state != StateAllow {
		s.ctr.opRel++
		ds = append(ds, e.release(s, th, now, "operator"))
	}
	s.unlockAndEmit(e, ds)
	return true
}

// State returns the live threat state for one MAC (score decayed to
// now; reads do not mutate the stored score).
func (e *Engine) State(mac wifi.Addr) (ClientThreat, bool) {
	now := e.cfg.Clock()
	s := e.shardFor(mac)
	s.mu.Lock()
	defer s.mu.Unlock()
	th, ok := s.threats[mac]
	if !ok {
		return ClientThreat{}, false
	}
	return th.snapshot(now, e.cfg.Policy.HalfLife), true
}

// Snapshot returns every tracked client's threat state. Consistent per
// shard, not across shards (the registry-snapshot contract).
func (e *Engine) Snapshot() []ClientThreat {
	now := e.cfg.Clock()
	var out []ClientThreat
	for _, s := range e.shards {
		s.mu.Lock()
		for _, th := range s.threats {
			out = append(out, th.snapshot(now, e.cfg.Policy.HalfLife))
		}
		s.mu.Unlock()
	}
	return out
}

// Quarantined returns the threat state of every client currently in
// quarantine.
func (e *Engine) Quarantined() []ClientThreat {
	now := e.cfg.Clock()
	var out []ClientThreat
	for _, s := range e.shards {
		s.mu.Lock()
		for _, th := range s.threats {
			if th.state == StateQuarantine {
				out = append(out, th.snapshot(now, e.cfg.Policy.HalfLife))
			}
		}
		s.mu.Unlock()
	}
	return out
}

// StateCounts reports how many tracked clients sit in each threat
// state right now — the live gauge behind the ops surface's
// secureangle_defense_clients series (a quarantine storm shows up as
// the StateQuarantine count spiking).
func (e *Engine) StateCounts() (allow, monitor, quarantine int) {
	for _, s := range e.shards {
		s.mu.Lock()
		for _, th := range s.threats {
			switch th.state {
			case StateQuarantine:
				quarantine++
			case StateMonitor:
				monitor++
			default:
				allow++
			}
		}
		s.mu.Unlock()
	}
	return allow, monitor, quarantine
}

// ClientCount reports tracked threat entries across all shards.
func (e *Engine) ClientCount() int {
	n := 0
	for _, s := range e.shards {
		s.mu.Lock()
		n += len(s.threats)
		s.mu.Unlock()
	}
	return n
}

// Stats snapshots the engine counters (aggregated across shards).
func (e *Engine) Stats() Stats {
	var c counters
	for _, s := range e.shards {
		s.mu.Lock()
		c.add(s.ctr)
		s.mu.Unlock()
	}
	return Stats{
		SpoofVerdicts:    c.spoof,
		FenceVerdicts:    c.fence,
		TrackVerdicts:    c.track,
		Quarantines:      c.quarantines,
		NullSteers:       c.nullSteers,
		Releases:         c.releases,
		DecayReleases:    c.decayRel,
		TTLReleases:      c.ttlRel,
		OperatorReleases: c.opRel,
		EvictedReleases:  c.evictRel,
		SpeedFlags:       c.speedFlags,
		Evicted:          c.evicted,
		Directives:       c.directives,
	}
}

// Sweep advances time-driven transitions: score decay below the release
// floor de-escalates (respecting MinQuarantine), QuarantineTTL expiry
// force-releases, and fully-decayed allow entries are dropped. The
// internal ticker calls it every TickInterval; tests call it directly
// with a synthetic clock.
func (e *Engine) Sweep(now time.Time) {
	p := e.cfg.Policy
	for _, s := range e.shards {
		s.mu.Lock()
		var ds []Directive
		// Sweep in MAC order: map iteration order would otherwise decide
		// which of two same-tick transitions emits its directive first,
		// and replay (internal/journal) requires the sequence to be
		// deterministic.
		macs := make([]wifi.Addr, 0, len(s.threats))
		for mac := range s.threats {
			macs = append(macs, mac)
		}
		sort.Slice(macs, func(i, j int) bool {
			return bytes.Compare(macs[i][:], macs[j][:]) < 0
		})
		for _, mac := range macs {
			th := s.threats[mac]
			th.decayTo(now, p.HalfLife)
			switch th.state {
			case StateQuarantine:
				if p.QuarantineTTL >= 0 && now.Sub(th.since) >= p.QuarantineTTL {
					th.score = 0
					s.ctr.ttlRel++
					ds = append(ds, e.release(s, th, now, "ttl"))
					continue
				}
				if th.score < p.ReleaseScore && now.Sub(th.since) >= p.MinQuarantine {
					s.ctr.decayRel++
					ds = append(ds, e.release(s, th, now, "decay"))
				}
			case StateMonitor:
				if th.score < p.ReleaseScore {
					th.setState(StateAllow, now)
				}
			case StateAllow:
				// Fully decayed and idle: the entry carries no
				// information distinguishable from an unknown MAC — drop
				// it so state stays O(live threats).
				if th.score < 1e-6 {
					s.lruUnlink(th)
					delete(s.threats, mac)
				}
			}
		}
		s.unlockAndEmit(e, ds)
	}
}

// transition applies score-driven escalations for th (shard lock held)
// and returns the directives to emit after unlock.
func (e *Engine) transition(s *dshard, th *threat, now time.Time, reporter string) []Directive {
	p := e.cfg.Policy
	var ds []Directive
	switch th.state {
	case StateAllow, StateMonitor:
		if th.score >= p.QuarantineScore {
			from := th.state
			th.setState(StateQuarantine, now)
			s.ctr.quarantines++
			th.action = ActionQuarantine
			if e.nullSteerReady(th) {
				th.action = ActionNullSteer
				s.ctr.nullSteers++
			}
			s.ctr.directives++
			ds = append(ds, e.quarantineDirective(th, from, reporter))
			e.logf("defense: %v %s -> quarantine (score %.2f, %s)", th.mac, from, th.score, reporter)
		} else if th.state == StateAllow && th.score >= p.MonitorScore {
			th.setState(StateMonitor, now)
			e.logf("defense: %v allow -> monitor (score %.2f, %s)", th.mac, th.score, reporter)
		}
	case StateQuarantine:
		if th.action == ActionQuarantine && e.nullSteerReady(th) {
			th.action = ActionNullSteer
			s.ctr.nullSteers++
			s.ctr.directives++
			ds = append(ds, e.quarantineDirective(th, StateQuarantine, reporter))
			e.logf("defense: %v escalated to null-steer (score %.2f, %s)", th.mac, th.score, reporter)
		}
	}
	return ds
}

// nullSteerReady reports whether th qualifies for the null-steer
// escalation: past the policy bar AND with a direction to null — a
// fused position or a measured bearing. Without either, ordering a
// spatial null would aim it at an arbitrary default bearing.
func (e *Engine) nullSteerReady(th *threat) bool {
	p := e.cfg.Policy
	return p.NullSteerScore >= 0 && th.score >= p.NullSteerScore && (th.hasPos || th.hasBearing)
}

// quarantineDirective builds a countermeasure directive carrying the
// lease TTL: APs self-expire the countermeasure at Policy.QuarantineTTL
// (which postdates every engine-side release), so a lost release frame
// cannot strand it. A disabled TTL (negative: the opt-in permanent
// quarantine) sends no lease.
func (e *Engine) quarantineDirective(th *threat, from State, reporter string) Directive {
	d := th.directive(from, reporter)
	if ttl := e.cfg.Policy.QuarantineTTL; ttl > 0 {
		d.TTL = ttl
	}
	return d
}

// release moves th back to allow and builds the release directive.
// Shard lock held; caller emits.
func (e *Engine) release(s *dshard, th *threat, now time.Time, reporter string) Directive {
	from := th.state
	th.setState(StateAllow, now)
	th.action = ActionAllow
	s.ctr.releases++
	s.ctr.directives++
	e.logf("defense: %v released (%s)", th.mac, reporter)
	return th.directive(from, reporter)
}

// --- shard internals ---

type dshard struct {
	mu         sync.Mutex
	threats    map[wifi.Addr]*threat
	maxClients int
	ctr        counters
	// emitMu serialises directive emission in transition order: it is
	// acquired before mu is released (see unlockAndEmit), so two
	// goroutines that transitioned the same client back-to-back cannot
	// hand their directives to the sink in the wrong order — APs would
	// otherwise settle on the stale state.
	emitMu sync.Mutex
	// Intrusive LRU over threats; head = most recently updated.
	lruHead, lruTail *threat
}

// unlockAndEmit releases the state lock and emits ds under the shard's
// emission lock, taken while the state lock is still held. Emission
// order therefore matches transition order per shard (and a client's
// MAC always hashes to one shard).
func (s *dshard) unlockAndEmit(e *Engine, ds []Directive) {
	if len(ds) == 0 {
		s.mu.Unlock()
		return
	}
	s.emitMu.Lock()
	s.mu.Unlock()
	e.emit(ds)
	s.emitMu.Unlock()
}

type threat struct {
	mac    wifi.Addr
	state  State
	action Action
	score  float64

	flags, fenceDrops, speedFlags uint64
	lastAP, stage                 string
	lastDistance, lastThreshold   float64
	// lastTrace is the most recent traced evidence's trace ID, stamped
	// into every directive this threat emits.
	lastTrace  uint64
	bearingDeg float64
	hasBearing bool
	pos        geom.Point
	hasPos     bool

	since   time.Time // entered current state
	updated time.Time // last decay anchor

	lruPrev, lruNext *threat
}

func (th *threat) setState(st State, now time.Time) {
	if th.state != st {
		th.state = st
		th.since = now
	}
}

// decayTo folds exponential score decay from the last anchor to now.
func (th *threat) decayTo(now time.Time, halfLife time.Duration) {
	dt := now.Sub(th.updated)
	if dt > 0 {
		th.score *= math.Exp2(-dt.Seconds() / halfLife.Seconds())
	}
	if now.After(th.updated) {
		th.updated = now
	}
}

// decayedScore is decayTo without mutating (read paths).
func (th *threat) decayedScore(now time.Time, halfLife time.Duration) float64 {
	dt := now.Sub(th.updated)
	if dt <= 0 {
		return th.score
	}
	return th.score * math.Exp2(-dt.Seconds()/halfLife.Seconds())
}

func (th *threat) snapshot(now time.Time, halfLife time.Duration) ClientThreat {
	return ClientThreat{
		MAC:           th.mac,
		State:         th.state,
		Action:        th.action,
		Score:         th.decayedScore(now, halfLife),
		Flags:         th.flags,
		FenceDrops:    th.fenceDrops,
		SpeedFlags:    th.speedFlags,
		LastAP:        th.lastAP,
		Stage:         th.stage,
		LastDistance:  th.lastDistance,
		LastThreshold: th.lastThreshold,
		BearingDeg:    th.bearingDeg,
		HasBearing:    th.hasBearing,
		Pos:           th.pos,
		HasPos:        th.hasPos,
		Since:         th.since,
		Updated:       th.updated,
		Trace:         th.lastTrace,
	}
}

func (th *threat) directive(from State, reporter string) Directive {
	return Directive{
		MAC:        th.mac,
		Action:     th.action,
		From:       from,
		To:         th.state,
		Reporter:   reporter,
		BearingDeg: th.bearingDeg,
		HasBearing: th.hasBearing,
		Pos:        th.pos,
		HasPos:     th.hasPos,
		Score:      th.score,
		Distance:   th.lastDistance,
		Threshold:  th.lastThreshold,
		Stage:      th.stage,
		Trace:      th.lastTrace,
	}
}

// touch returns the threat entry for mac, creating it (and evicting the
// LRU entry past the shard cap) as needed, and moves it to the LRU
// head. Shard lock held. An eviction of a non-allow entry yields a
// release directive the caller must emit after unlock — forgetting a
// quarantined client without one would leave its countermeasures
// applied at the APs forever.
func (s *dshard) touch(e *Engine, mac wifi.Addr, now time.Time) (*threat, []Directive) {
	th := s.threats[mac]
	var ds []Directive
	if th == nil {
		if len(s.threats) >= s.maxClients {
			if d, ok := s.evictLRU(e, now); ok {
				ds = append(ds, d)
			}
		}
		th = &threat{mac: mac, since: now, updated: now}
		s.threats[mac] = th
	}
	s.lruMoveToFront(th)
	return th, ds
}

func (s *dshard) lruMoveToFront(th *threat) {
	if s.lruHead == th {
		return
	}
	s.lruUnlink(th)
	th.lruNext = s.lruHead
	if s.lruHead != nil {
		s.lruHead.lruPrev = th
	}
	s.lruHead = th
	if s.lruTail == nil {
		s.lruTail = th
	}
}

func (s *dshard) lruUnlink(th *threat) {
	if th.lruPrev != nil {
		th.lruPrev.lruNext = th.lruNext
	}
	if th.lruNext != nil {
		th.lruNext.lruPrev = th.lruPrev
	}
	if s.lruHead == th {
		s.lruHead = th.lruNext
	}
	if s.lruTail == th {
		s.lruTail = th.lruPrev
	}
	th.lruPrev, th.lruNext = nil, nil
}

// evictLRU drops the least-recently-updated threat entry. Shard lock
// held. Evicting an entry under an active countermeasure returns the
// release directive the caller emits after unlock: the engine is about
// to forget this client, so the fleet's countermeasures must not
// outlive the state that justified them.
func (s *dshard) evictLRU(e *Engine, now time.Time) (Directive, bool) {
	victim := s.lruTail
	if victim == nil {
		return Directive{}, false
	}
	s.lruUnlink(victim)
	delete(s.threats, victim.mac)
	s.ctr.evicted++
	e.logf("defense: evicted threat entry %v (state %s) at MaxClients", victim.mac, victim.state)
	if victim.state == StateAllow {
		return Directive{}, false
	}
	s.ctr.evictRel++
	return e.release(s, victim, now, "evicted"), true
}
