package defense

// Native fuzzing of the snapshot codec, mirroring the fusion fuzzer:
// crash recovery hands Restore arbitrary on-disk bytes, so it must
// never panic, and whatever it accepts must restore to an engine whose
// own Save is a stable canonical form.

import (
	"bytes"
	"testing"
	"time"

	"secureangle/internal/geom"
	"secureangle/internal/wifi"
)

func fuzzDefenseEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := New(Config{TickInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

func FuzzDefenseSnapshotRestore(f *testing.F) {
	seedEngine, err := New(Config{TickInterval: time.Hour})
	if err != nil {
		f.Fatal(err)
	}
	defer seedEngine.Close()
	var empty bytes.Buffer
	if err := seedEngine.Save(&empty); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())
	seedEngine.ReportSpoof(SpoofVerdict{
		AP: "ap1", MAC: wifi.Addr{2, 0, 0, 0, 0, 1}, Flagged: true,
		Distance: 0.9, Threshold: 0.12, BearingDeg: 60, HasBearing: true, Stage: "spoofcheck",
	})
	seedEngine.ReportFence(FenceVerdict{MAC: wifi.Addr{2, 0, 0, 0, 0, 2}, Seq: 1, Pos: geom.Point{X: 30, Y: 5}, Allowed: false})
	var populated bytes.Buffer
	if err := seedEngine.Save(&populated); err != nil {
		f.Fatal(err)
	}
	f.Add(populated.Bytes())
	f.Add([]byte{})
	f.Add([]byte("SADS"))
	f.Add([]byte("SADS\x00\x01\xff\xff\xff\xff")) // huge claimed count

	f.Fuzz(func(t *testing.T, data []byte) {
		e := fuzzDefenseEngine(t)
		if err := e.Restore(bytes.NewReader(data)); err != nil {
			return // rejected snapshots are the contract for bad bytes
		}
		var canon bytes.Buffer
		if err := e.Save(&canon); err != nil {
			t.Fatalf("restored engine cannot Save: %v", err)
		}
		e2 := fuzzDefenseEngine(t)
		if err := e2.Restore(bytes.NewReader(canon.Bytes())); err != nil {
			t.Fatalf("canonical snapshot rejected: %v\n%x", err, canon.Bytes())
		}
		var canon2 bytes.Buffer
		if err := e2.Save(&canon2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(canon.Bytes(), canon2.Bytes()) {
			t.Fatalf("canonical snapshot is not a fixed point:\n%x\nvs\n%x", canon.Bytes(), canon2.Bytes())
		}
	})
}
