package defense

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"secureangle/internal/geom"
	"secureangle/internal/wifi"
)

// testEngine builds an engine on a synthetic clock with the sweeper
// ticker effectively disabled (tests drive Sweep directly).
func testEngine(t *testing.T, cfg Config) (*Engine, *time.Time, *[]Directive, *sync.Mutex) {
	t.Helper()
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	var emitted []Directive
	cfg.Clock = func() time.Time { return now }
	cfg.TickInterval = time.Hour
	if cfg.Emit == nil {
		cfg.Emit = func(d Directive) {
			mu.Lock()
			emitted = append(emitted, d)
			mu.Unlock()
		}
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e, &now, &emitted, &mu
}

func mac(i int) wifi.Addr {
	return wifi.MustParseAddr(fmt.Sprintf("02:00:00:00:%02x:%02x", i>>8, i&0xff))
}

func flagged(ap string, m wifi.Addr, dist float64) SpoofVerdict {
	return SpoofVerdict{AP: ap, MAC: m, Flagged: true, Distance: dist, Threshold: 0.12, BearingDeg: 42, HasBearing: true, Stage: "spoofcheck"}
}

func TestDefensePolicyValidate(t *testing.T) {
	if err := (Policy{}).WithDefaults().Validate(); err != nil {
		t.Fatalf("default policy invalid: %v", err)
	}
	bad := []Policy{
		{QuarantineScore: 0.5},                // below default MonitorScore
		{ReleaseScore: 2},                     // above MonitorScore
		{HalfLife: -time.Second},              // negative decay
		{NullSteerScore: 1},                   // below QuarantineScore
		{MonitorScore: -1},                    // negative threshold
		{SpoofWeight: -1},                     // negative weight
		{MinQuarantine: -time.Second},         // negative residence
		{MonitorScore: 3, QuarantineScore: 2}, // inverted thresholds
		{ReleaseScore: 1, MonitorScore: 1},    // release not below monitor
	}
	for i, p := range bad {
		if err := p.WithDefaults().Validate(); err == nil {
			t.Errorf("bad policy %d validated: %+v", i, p)
		}
	}
	if _, err := New(Config{Policy: Policy{ReleaseScore: 9}}); err == nil {
		t.Error("New accepted a contradictory policy")
	}
	if _, err := New(Config{Shards: -1}); err == nil {
		t.Error("New accepted negative Shards")
	}
}

func TestDefenseSpoofEscalationAndMargin(t *testing.T) {
	e, _, emitted, mu := testEngine(t, Config{})
	m := mac(1)

	// An accepted verdict for an unknown MAC creates no state — clean
	// traffic must not churn threat entries.
	e.ReportSpoof(SpoofVerdict{AP: "ap1", MAC: m, Distance: 0.02, Threshold: 0.12})
	if st, ok := e.State(m); ok {
		t.Fatalf("accepted verdict created state: %+v", st)
	}
	if n := e.ClientCount(); n != 0 {
		t.Fatalf("ClientCount after clean verdict = %d", n)
	}

	// One flagged verdict at default weights quarantines immediately
	// (the seed's single-alert semantics).
	e.ReportSpoof(flagged("ap1", m, 0.5))
	st, ok := e.State(m)
	if !ok || st.State != StateQuarantine || st.Action != ActionQuarantine {
		t.Fatalf("after flag: %+v, %v", st, ok)
	}
	// Severity scaling: distance 0.5 vs threshold 0.12 caps at 2x weight.
	if st.Score != 2*DefaultSpoofWeight {
		t.Errorf("score %v, want severity-capped %v", st.Score, 2*DefaultSpoofWeight)
	}
	mu.Lock()
	if len(*emitted) != 1 || (*emitted)[0].Action != ActionQuarantine ||
		(*emitted)[0].To != StateQuarantine || (*emitted)[0].MAC != m {
		t.Fatalf("directives = %+v", *emitted)
	}
	if (*emitted)[0].BearingDeg != 42 || (*emitted)[0].Stage != "spoofcheck" {
		t.Errorf("directive evidence = %+v", (*emitted)[0])
	}
	mu.Unlock()

	// A second flag escalates past NullSteerScore (4 + 4 >= 5).
	e.ReportSpoof(flagged("ap1", m, 0.5))
	st, _ = e.State(m)
	if st.Action != ActionNullSteer {
		t.Fatalf("no null-steer escalation: %+v", st)
	}
	mu.Lock()
	if n := len(*emitted); n != 2 || (*emitted)[1].Action != ActionNullSteer {
		t.Fatalf("directives after escalation = %+v", *emitted)
	}
	mu.Unlock()

	s := e.Stats()
	if s.Quarantines != 1 || s.NullSteers != 1 || s.Directives != 2 || s.SpoofVerdicts != 3 {
		t.Errorf("stats = %+v", s)
	}
	if q := e.Quarantined(); len(q) != 1 || q[0].MAC != m {
		t.Errorf("quarantined = %+v", q)
	}
}

func TestDefenseFenceMonitorThenQuarantine(t *testing.T) {
	e, _, emitted, mu := testEngine(t, Config{})
	m := mac(2)
	out := geom.Point{X: -3, Y: 2}

	// Fence drops accumulate: 0.5 each, monitor at 1, quarantine at 2.
	e.ReportFence(FenceVerdict{MAC: m, Seq: 1, Pos: out, Allowed: false})
	if st, _ := e.State(m); st.State != StateAllow {
		t.Fatalf("one drop escalated: %+v", st)
	}
	e.ReportFence(FenceVerdict{MAC: m, Seq: 2, Pos: out, Allowed: false})
	if st, _ := e.State(m); st.State != StateMonitor {
		t.Fatalf("two drops (score 1) not monitoring: %+v", st)
	}
	// Forced decisions count half.
	e.ReportFence(FenceVerdict{MAC: m, Seq: 3, Pos: out, Allowed: false, Forced: true})
	if st, _ := e.State(m); st.State != StateMonitor || st.Score != 1.25 {
		t.Fatalf("forced drop weighting: %+v", st)
	}
	e.ReportFence(FenceVerdict{MAC: m, Seq: 4, Pos: out, Allowed: false})
	e.ReportFence(FenceVerdict{MAC: m, Seq: 5, Pos: out, Allowed: false})
	st, _ := e.State(m)
	if st.State != StateQuarantine {
		t.Fatalf("five drops not quarantined: %+v", st)
	}
	if !st.HasPos || st.Pos != out {
		t.Errorf("threat position not tracked: %+v", st)
	}
	mu.Lock()
	if len(*emitted) != 1 || !(*emitted)[0].HasPos || (*emitted)[0].Pos != out {
		t.Fatalf("quarantine directive lacks position: %+v", *emitted)
	}
	if (*emitted)[0].From != StateMonitor {
		t.Errorf("transition from = %v, want monitor", (*emitted)[0].From)
	}
	mu.Unlock()
	if st.FenceDrops != 5 {
		t.Errorf("fence drops = %d, want 5", st.FenceDrops)
	}
}

func TestDefenseTrackVelocityAnomaly(t *testing.T) {
	e, _, _, _ := testEngine(t, Config{})
	m := mac(3)
	// Walking pace for an unknown MAC: no evidence, no entry.
	e.ReportTrack(TrackVerdict{MAC: m, Pos: geom.Point{X: 1}, Vel: geom.Point{X: 1.2}})
	if st, ok := e.State(m); ok {
		t.Fatalf("walking pace created state: %+v", st)
	}
	// Teleporting MAC: two radios sharing an address.
	e.ReportTrack(TrackVerdict{MAC: m, Pos: geom.Point{X: 40}, Vel: geom.Point{X: 80}})
	st, _ := e.State(m)
	if st.SpeedFlags != 1 || st.Score != DefaultSpeedWeight {
		t.Fatalf("implausible velocity not flagged: %+v", st)
	}
	// Plausible updates keep refreshing an existing threat's position.
	e.ReportTrack(TrackVerdict{MAC: m, Pos: geom.Point{X: 41}, Vel: geom.Point{X: 1}})
	if st, ok := e.State(m); !ok || st.Pos.X != 41 {
		t.Fatalf("existing threat position not refreshed: %+v, %v", st, ok)
	}
	if e.Stats().SpeedFlags != 1 {
		t.Errorf("stats speed flags = %+v", e.Stats())
	}

	// Disabled check: negative MaxSpeedMS — never anomalous, no entry.
	e2, _, _, _ := testEngine(t, Config{Policy: Policy{MaxSpeedMS: -1}})
	e2.ReportTrack(TrackVerdict{MAC: m, Pos: geom.Point{}, Vel: geom.Point{X: 500}})
	if st, ok := e2.State(m); ok {
		t.Errorf("disabled speed check created state: %+v", st)
	}
}

func TestDefenseDecayReleaseWithHysteresis(t *testing.T) {
	e, now, emitted, mu := testEngine(t, Config{
		Policy: Policy{HalfLife: time.Second, MinQuarantine: 5 * time.Second},
	})
	m := mac(4)
	e.ReportSpoof(flagged("ap1", m, 0.5)) // score 4, quarantined

	// After one half-life the score (2) is still above ReleaseScore.
	*now = now.Add(time.Second)
	e.Sweep(*now)
	if st, _ := e.State(m); st.State != StateQuarantine {
		t.Fatalf("released too early: %+v", st)
	}

	// After five half-lives the score (0.125) is below ReleaseScore and
	// MinQuarantine (5s) has passed: decay releases, no operator needed.
	*now = now.Add(4 * time.Second)
	e.Sweep(*now)
	st, ok := e.State(m)
	if !ok || st.State != StateAllow || st.Action != ActionAllow {
		t.Fatalf("no decay release: %+v, %v", st, ok)
	}
	mu.Lock()
	last := (*emitted)[len(*emitted)-1]
	mu.Unlock()
	if last.Action != ActionAllow || last.From != StateQuarantine || last.Reporter != "decay" {
		t.Fatalf("release directive = %+v", last)
	}
	if s := e.Stats(); s.DecayReleases != 1 || s.Releases != 1 {
		t.Errorf("stats = %+v", s)
	}

	// MinQuarantine hysteresis: re-quarantine; at 4s the score (~0.26)
	// is already below ReleaseScore but the residence floor holds the
	// quarantine until 5s.
	e.ReportSpoof(flagged("ap1", m, 0.5))
	*now = now.Add(4 * time.Second)
	e.Sweep(*now)
	if st, _ := e.State(m); st.State != StateQuarantine {
		t.Fatalf("left quarantine before MinQuarantine: %+v", st)
	}
	*now = now.Add(1500 * time.Millisecond)
	e.Sweep(*now)
	if st, _ := e.State(m); st.State != StateAllow {
		t.Fatalf("not released after MinQuarantine: %+v", st)
	}
}

func TestDefenseQuarantineTTLForcesRelease(t *testing.T) {
	// A huge half-life keeps the score pinned; only the TTL can release.
	e, now, emitted, mu := testEngine(t, Config{
		Policy: Policy{HalfLife: time.Hour, QuarantineTTL: 10 * time.Second},
	})
	m := mac(5)
	e.ReportSpoof(flagged("ap1", m, 0.5))

	*now = now.Add(9 * time.Second)
	e.Sweep(*now)
	if st, _ := e.State(m); st.State != StateQuarantine {
		t.Fatalf("TTL fired early: %+v", st)
	}
	*now = now.Add(2 * time.Second)
	e.Sweep(*now)
	st, _ := e.State(m)
	if st.State != StateAllow || st.Score != 0 {
		t.Fatalf("TTL did not release: %+v", st)
	}
	mu.Lock()
	last := (*emitted)[len(*emitted)-1]
	mu.Unlock()
	if last.Reporter != "ttl" || last.Action != ActionAllow {
		t.Fatalf("TTL release directive = %+v", last)
	}
	if s := e.Stats(); s.TTLReleases != 1 {
		t.Errorf("stats = %+v", s)
	}

	// Negative TTL = the seed's permanent quarantine, opt-in.
	e2, now2, _, _ := testEngine(t, Config{
		Policy: Policy{HalfLife: time.Hour, QuarantineTTL: -1},
	})
	e2.ReportSpoof(flagged("ap1", m, 0.5))
	*now2 = now2.Add(24 * time.Hour)
	e2.Sweep(*now2)
	// Score pinned near 4 by the hour half-life? 24h >> 1h half-life —
	// score decays to ~0, but MinQuarantine passed, so decay releases.
	// Permanence needs both knobs; verify the TTL path alone never fires.
	if s := e2.Stats(); s.TTLReleases != 0 {
		t.Errorf("negative TTL released by ttl: %+v", s)
	}
}

func TestDefenseOperatorRelease(t *testing.T) {
	e, _, emitted, mu := testEngine(t, Config{})
	m := mac(6)
	if e.Release(m) {
		t.Fatal("released an unknown MAC")
	}
	e.ReportSpoof(flagged("ap1", m, 0.5))
	if !e.Release(m) {
		t.Fatal("Release(known) = false")
	}
	st, _ := e.State(m)
	if st.State != StateAllow || st.Score != 0 {
		t.Fatalf("operator release state: %+v", st)
	}
	mu.Lock()
	last := (*emitted)[len(*emitted)-1]
	mu.Unlock()
	if last.Reporter != "operator" || last.Action != ActionAllow || last.From != StateQuarantine {
		t.Fatalf("operator release directive = %+v", last)
	}
	if s := e.Stats(); s.OperatorReleases != 1 {
		t.Errorf("stats = %+v", s)
	}
	// Releasing an already-allowed client is a no-op without directives.
	mu.Lock()
	n := len(*emitted)
	mu.Unlock()
	if !e.Release(m) {
		t.Fatal("second release of known MAC = false")
	}
	mu.Lock()
	if len(*emitted) != n {
		t.Errorf("idle release emitted a directive")
	}
	mu.Unlock()
}

func TestDefenseAllowEntriesDecayAway(t *testing.T) {
	e, now, _, _ := testEngine(t, Config{Policy: Policy{HalfLife: time.Second}})
	// Allowed decisions for unknown MACs never create entries.
	for i := 0; i < 8; i++ {
		e.ReportFence(FenceVerdict{MAC: mac(300 + i), Seq: 1, Pos: geom.Point{X: 1}, Allowed: true})
	}
	if n := e.ClientCount(); n != 0 {
		t.Fatalf("allowed decisions created %d entries", n)
	}
	// One sub-threshold drop each: allow-state entries with a small
	// score, which the sweeper deletes once fully decayed.
	for i := 0; i < 32; i++ {
		e.ReportFence(FenceVerdict{MAC: mac(100 + i), Seq: 1, Pos: geom.Point{X: 1}, Allowed: false})
	}
	if n := e.ClientCount(); n != 32 {
		t.Fatalf("ClientCount = %d", n)
	}
	*now = now.Add(time.Minute)
	e.Sweep(*now)
	if n := e.ClientCount(); n != 0 {
		t.Fatalf("idle allow entries survived the sweep: %d", n)
	}
}

func TestDefenseLRUEviction(t *testing.T) {
	e, _, emitted, mu := testEngine(t, Config{Shards: 1, MaxClients: 8})
	for i := 0; i < 32; i++ {
		e.ReportSpoof(flagged("ap1", mac(200+i), 0.5))
	}
	if n := e.ClientCount(); n > 8 {
		t.Fatalf("ClientCount = %d past MaxClients 8", n)
	}
	if s := e.Stats(); s.Evicted != 24 {
		t.Errorf("evictions = %+v", s)
	}
	// The most recent MAC survives.
	if _, ok := e.State(mac(231)); !ok {
		t.Error("most recent threat entry evicted")
	}
	// Every evicted entry was quarantined, so each eviction must have
	// emitted a release directive — the engine forgetting a client must
	// not leave its countermeasures applied at the APs forever.
	mu.Lock()
	defer mu.Unlock()
	releases := 0
	for _, d := range *emitted {
		if d.Action == ActionAllow && d.Reporter == "evicted" {
			releases++
		}
	}
	if releases != 24 {
		t.Errorf("eviction releases = %d, want 24", releases)
	}
	s := e.Stats()
	if s.EvictedReleases != 24 {
		t.Errorf("EvictedReleases = %d, want 24", s.EvictedReleases)
	}
	if s.Releases != s.DecayReleases+s.TTLReleases+s.OperatorReleases+s.EvictedReleases {
		t.Errorf("release split does not sum: %+v", s)
	}
}

func TestDefenseClosedEngineRefusesIngest(t *testing.T) {
	e, _, emitted, mu := testEngine(t, Config{})
	e.Close()
	e.ReportSpoof(flagged("ap1", mac(7), 0.5))
	e.ReportFence(FenceVerdict{MAC: mac(7), Allowed: false})
	e.ReportTrack(TrackVerdict{MAC: mac(7)})
	if e.Release(mac(7)) {
		t.Error("closed engine released")
	}
	if n := e.ClientCount(); n != 0 {
		t.Errorf("closed engine grew state: %d", n)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(*emitted) != 0 {
		t.Errorf("closed engine emitted: %+v", *emitted)
	}
}

// TestDefenseConcurrentIngest hammers every ingest path plus reads,
// releases, and sweeps from many goroutines — run under -race.
func TestDefenseConcurrentIngest(t *testing.T) {
	e := MustNew(Config{
		Shards:       4,
		MaxClients:   256,
		TickInterval: time.Millisecond,
		Policy:       Policy{HalfLife: 10 * time.Millisecond, MinQuarantine: time.Millisecond},
		Emit:         func(Directive) {},
	})
	defer e.Close()

	const (
		workers = 8
		iters   = 400
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m := mac(i % 64)
				switch (w + i) % 5 {
				case 0:
					e.ReportSpoof(flagged("ap1", m, 0.3))
				case 1:
					e.ReportFence(FenceVerdict{MAC: m, Seq: uint64(i), Pos: geom.Point{X: float64(i)}, Allowed: i%2 == 0})
				case 2:
					e.ReportTrack(TrackVerdict{MAC: m, Pos: geom.Point{X: float64(i)}, Vel: geom.Point{X: float64(i % 20)}})
				case 3:
					e.State(m)
					e.Quarantined()
				case 4:
					e.Release(m)
					e.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	s := e.Stats()
	if s.SpoofVerdicts == 0 || s.FenceVerdicts == 0 || s.TrackVerdicts == 0 {
		t.Errorf("ingest paths unexercised: %+v", s)
	}
	if n := e.ClientCount(); n > 256 {
		t.Errorf("ClientCount %d past MaxClients", n)
	}
}

func TestDefenseNullSteerNeedsDirection(t *testing.T) {
	// Spoof evidence with no measured bearing and no fused position
	// must not order a spatial null (there is nothing to aim it at);
	// the escalation happens as soon as direction evidence arrives.
	e, _, emitted, mu := testEngine(t, Config{Policy: Policy{NullSteerScore: 2}})
	m := mac(8)
	blind := SpoofVerdict{AP: "ap1", MAC: m, Flagged: true, Distance: 0.9, Threshold: 0.12}
	e.ReportSpoof(blind)
	st, _ := e.State(m)
	if st.State != StateQuarantine || st.Action != ActionQuarantine {
		t.Fatalf("blind verdict state = %+v", st)
	}
	mu.Lock()
	if len(*emitted) != 1 || (*emitted)[0].Action != ActionQuarantine {
		t.Fatalf("directives = %+v", *emitted)
	}
	mu.Unlock()

	// A fused fix supplies the direction: the held escalation fires.
	e.ReportFence(FenceVerdict{MAC: m, Seq: 1, Pos: geom.Point{X: -2, Y: 3}, Allowed: false})
	st, _ = e.State(m)
	if st.Action != ActionNullSteer {
		t.Fatalf("no escalation after position arrived: %+v", st)
	}
	mu.Lock()
	last := (*emitted)[len(*emitted)-1]
	mu.Unlock()
	if last.Action != ActionNullSteer || !last.HasPos {
		t.Fatalf("escalation directive = %+v", last)
	}
	if last.TTL != DefaultQuarantineTTL {
		t.Errorf("directive lease TTL = %v, want policy QuarantineTTL", last.TTL)
	}
}
