package netproto

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"secureangle/internal/geom"
	"secureangle/internal/locate"
	"secureangle/internal/wifi"
)

// TestV1HelloWireFormatUnchanged pins the v1 encoding: an unversioned
// Hello must marshal byte-identically to the seed protocol (no version
// field), or real v1 agents would stop decoding.
func TestV1HelloWireFormatUnchanged(t *testing.T) {
	b := MarshalHello(Hello{Name: "ap1", Pos: geom.Point{X: 3, Y: 4}})
	// type byte + 2-byte name length + name + 16 bytes of position.
	if want := 1 + 2 + 3 + 16; len(b) != want {
		t.Fatalf("v1 hello is %d bytes, want %d", len(b), want)
	}
	v2 := MarshalHello(Hello{Name: "ap1", Pos: geom.Point{X: 3, Y: 4}, Version: ProtoV2})
	if len(v2) != len(b)+2 {
		t.Fatalf("v2 hello is %d bytes, want %d", len(v2), len(b)+2)
	}
}

// TestUpgradeV1AgentV2Controller is the acceptance round trip: a v1
// agent (Hello without a version field) and a v2 agent (negotiated
// handshake) both exchange reports with the same v2 controller, whose
// fused decision draws on both.
func TestUpgradeV1AgentV2Controller(t *testing.T) {
	c, addr := startController(t)
	defer c.Close()
	sub := c.Subscribe(4)

	target := geom.Point{X: 9, Y: 6}
	ap1Pos := geom.Point{X: 4, Y: 2}
	ap2Pos := geom.Point{X: 20, Y: 3}

	// v1 agent: the legacy constructor, no version, no Welcome.
	v1, err := Dial(addr, Hello{Name: "ap1", Pos: ap1Pos})
	if err != nil {
		t.Fatal(err)
	}
	defer v1.Close()
	if v1.Version() != ProtoV1 {
		t.Fatalf("v1 agent negotiated v%d", v1.Version())
	}

	// v2 agent: DialContext performs the versioned handshake.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	v2, err := DialContext(ctx, addr, Hello{Name: "ap2", Pos: ap2Pos})
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	if v2.Version() != ProtoVersion {
		t.Fatalf("negotiating agent settled on v%d, want the build's v%d", v2.Version(), ProtoVersion)
	}

	mac := wifi.MustParseAddr("00:16:ea:50:00:11")
	if err := v1.Send(Report{APName: "ap1", MAC: mac, SeqNo: 7, BearingDeg: geom.BearingDeg(ap1Pos, target)}); err != nil {
		t.Fatal(err)
	}
	if err := v2.SendContext(ctx, Report{APName: "ap2", MAC: mac, SeqNo: 7, BearingDeg: geom.BearingDeg(ap2Pos, target)}); err != nil {
		t.Fatal(err)
	}

	select {
	case d := <-sub.C:
		if d.MAC != mac || d.SeqNo != 7 {
			t.Errorf("decision identity %v/%d", d.MAC, d.SeqNo)
		}
		if d.Decision != locate.Allow {
			t.Errorf("inside client dropped: %+v", d)
		}
		if d.Pos.Dist(target) > 0.1 {
			t.Errorf("fused position %v", d.Pos)
		}
		if len(d.APs) != 2 {
			t.Errorf("decision drew on APs %v, want both", d.APs)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no decision within 5s")
	}
}

// TestAlertStagePerVersion: a v2 agent's staged alert is broadcast with
// the stage to v2 sessions and with the stage stripped (still
// decodable) to v1 sessions.
func TestAlertStagePerVersion(t *testing.T) {
	c, addr := startController(t)
	defer c.Close()

	v1, err := Dial(addr, Hello{Name: "ap1", Pos: geom.Point{X: 1, Y: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer v1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	v2, err := DialContext(ctx, addr, Hello{Name: "ap2", Pos: geom.Point{X: 2, Y: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()

	v1Alerts := v1.Alerts()
	v2Alerts := v2.Alerts()

	mac := wifi.MustParseAddr("66:00:00:00:00:01")
	if err := v2.SendAlertDetail(Alert{APName: "ap2", MAC: mac, Distance: 0.4, Stage: "spoofcheck"}); err != nil {
		t.Fatal(err)
	}

	recv := func(ch <-chan Alert, label string) Alert {
		select {
		case a, ok := <-ch:
			if !ok {
				t.Fatalf("%s alert channel closed", label)
			}
			return a
		case <-time.After(5 * time.Second):
			t.Fatalf("%s got no alert broadcast", label)
			return Alert{}
		}
	}
	a2 := recv(v2Alerts, "v2")
	if a2.MAC != mac || a2.Stage != "spoofcheck" {
		t.Errorf("v2 broadcast %+v, want stage intact", a2)
	}
	a1 := recv(v1Alerts, "v1")
	if a1.MAC != mac {
		t.Errorf("v1 broadcast %+v", a1)
	}
	if a1.Stage != "" {
		t.Errorf("v1 session received v2-only stage %q", a1.Stage)
	}
	if q := c.Quarantined(); len(q) != 1 || q[0].Stage != "spoofcheck" {
		t.Errorf("quarantine %+v, want one staged entry", q)
	}
}

// TestDialContextAlreadyCancelled: the satellite requirement — a dead
// context fails the dial without touching the network.
func TestDialContextAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DialContext(ctx, "127.0.0.1:1", Hello{Name: "x"}); err == nil {
		t.Fatal("cancelled DialContext succeeded")
	}
}

// TestSubscribeFanout: every subscriber sees every decision;
// unsubscribing closes only that channel; the legacy Decisions channel
// keeps working alongside.
func TestSubscribeFanout(t *testing.T) {
	c, addr := startController(t)
	defer c.Close()
	s1 := c.Subscribe(4)
	s2 := c.Subscribe(4)

	ap1Pos := geom.Point{X: 4, Y: 2}
	ap2Pos := geom.Point{X: 20, Y: 3}
	a1, err := Dial(addr, Hello{Name: "ap1", Pos: ap1Pos})
	if err != nil {
		t.Fatal(err)
	}
	defer a1.Close()
	a2, err := Dial(addr, Hello{Name: "ap2", Pos: ap2Pos})
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()

	target := geom.Point{X: 9, Y: 6}
	mac := wifi.MustParseAddr("00:16:ea:50:00:12")
	send := func(seq uint64) {
		t.Helper()
		if err := a1.Send(Report{APName: "ap1", MAC: mac, SeqNo: seq, BearingDeg: geom.BearingDeg(ap1Pos, target)}); err != nil {
			t.Fatal(err)
		}
		if err := a2.Send(Report{APName: "ap2", MAC: mac, SeqNo: seq, BearingDeg: geom.BearingDeg(ap2Pos, target)}); err != nil {
			t.Fatal(err)
		}
	}
	recv := func(ch <-chan FenceDecision, label string) FenceDecision {
		t.Helper()
		select {
		case d, ok := <-ch:
			if !ok {
				t.Fatalf("%s closed early", label)
			}
			return d
		case <-time.After(5 * time.Second):
			t.Fatalf("%s got nothing", label)
			return FenceDecision{}
		}
	}

	send(1)
	d1 := recv(s1.C, "sub1")
	d2 := recv(s2.C, "sub2")
	dl := recv(c.Decisions(), "legacy")
	if d1.SeqNo != 1 || d2.SeqNo != 1 || dl.SeqNo != 1 {
		t.Errorf("fanout seqs %d/%d/%d", d1.SeqNo, d2.SeqNo, dl.SeqNo)
	}

	c.Unsubscribe(s2)
	if _, ok := <-s2.C; ok {
		t.Error("unsubscribed channel still open")
	}
	send(2)
	if d := recv(s1.C, "sub1"); d.SeqNo != 2 {
		t.Errorf("sub1 seq %d after unsubscribe of sub2", d.SeqNo)
	}
	recv(c.Decisions(), "legacy")
}

// TestSubscribeAfterClose returns an already-closed channel rather than
// one that can never deliver.
func TestSubscribeAfterClose(t *testing.T) {
	c, _ := startController(t)
	c.Close()
	s := c.Subscribe(1)
	if _, ok := <-s.C; ok {
		t.Error("subscription on closed controller delivered")
	}
	c.Unsubscribe(s) // must not panic
}

// TestDialContextCancelMidHandshake: plain cancellation (no deadline)
// interrupts a handshake against a peer that accepts but never replies.
func TestDialContextCancelMidHandshake(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		time.Sleep(3 * time.Second) // accept, then say nothing
	}()

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := DialContext(ctx, ln.Addr().String(), Hello{Name: "x"})
		errCh <- err
	}()
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("mid-handshake cancel returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("DialContext ignored cancellation during the Welcome read")
	}
}

// TestPingKeepalive: an otherwise-idle agent that pings inside the read
// deadline stays registered with the controller.
func TestPingKeepalive(t *testing.T) {
	fence := &locate.Fence{Boundary: geom.Rect(0, 0, 24, 16)}
	c := NewController(fence)
	c.ReadTimeout = 150 * time.Millisecond
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c.Serve(ln)
	defer c.Close()

	a, err := Dial(ln.Addr().String(), Hello{Name: "ap1", Pos: geom.Point{X: 1, Y: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	// Stay idle for several deadline windows, pinging inside each.
	for i := 0; i < 6; i++ {
		time.Sleep(50 * time.Millisecond)
		if err := a.Ping(); err != nil {
			t.Fatalf("ping %d: %v", i, err)
		}
	}
	// Still connected: an alert sent now must reach the quarantine.
	mac := wifi.MustParseAddr("66:00:00:00:00:02")
	if err := a.SendAlert("ap1", mac, 0.5); err != nil {
		t.Fatalf("post-ping alert: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(c.Quarantined()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("alert after keepalives never arrived — connection dropped?")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestControllerReadDeadline: a connected agent that never sends
// anything is disconnected once the keepalive deadline lapses, instead
// of pinning its handler goroutine.
func TestControllerReadDeadline(t *testing.T) {
	fence := &locate.Fence{Boundary: geom.Rect(0, 0, 24, 16)}
	c := NewController(fence)
	c.ReadTimeout = 100 * time.Millisecond
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c.Serve(ln)
	defer c.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Stall silently. The controller must drop us; its close of the
	// connection surfaces as EOF/reset on our read.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("stalled connection still alive after keepalive deadline")
	}
}
