package netproto

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"secureangle/internal/defense"
	"secureangle/internal/geom"
	"secureangle/internal/journal"
	"secureangle/internal/locate"
	"secureangle/internal/ops"
	"secureangle/internal/trace"
	"secureangle/internal/wifi"
)

// TestIncidentTimelineEndToEnd is the PR's acceptance path: drive a
// spoofed client through a partitioned controller over real TCP — v5
// agents carrying one trace ID end to end — then hard-stop the
// controller and reconstruct the full report → verdict → directive →
// ack → release timeline from the journal directory alone, the way
// `secureangle incident` does.
func TestIncidentTimelineEndToEnd(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	dir := t.TempDir()
	fence := &locate.Fence{Boundary: geom.Rect(0, 0, 24, 16)}
	attacker := wifi.MustParseAddr("66:00:00:00:00:01")
	ap1Pos, ap2Pos := geom.Point{X: 0, Y: 0}, geom.Point{X: 24, Y: 0}

	c := NewController(fence)
	c.DefensePolicy = defense.Policy{HalfLife: time.Hour, MinQuarantine: time.Millisecond}
	c.Partitions = 2
	c.SnapshotInterval = -1
	// A private recorder so a parallel test's spans can't satisfy the
	// retained-store assertions below.
	c.Tracer = trace.NewRecorder(ops.NewRegistry())
	if err := c.WithJournalDir(dir, journal.Options{}); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c.Serve(ln)

	ag1, err := DialContext(ctx, ln.Addr().String(), Hello{Name: "ap1", Pos: ap1Pos})
	if err != nil {
		t.Fatal(err)
	}
	defer ag1.Close()
	ag2, err := DialContext(ctx, ln.Addr().String(), Hello{Name: "ap2", Pos: ap2Pos})
	if err != nil {
		t.Fatal(err)
	}
	defer ag2.Close()
	if ag1.Version() != ProtoVersion || ag2.Version() != ProtoVersion {
		t.Fatalf("sessions negotiated v%d/v%d, want v%d", ag1.Version(), ag2.Version(), ProtoVersion)
	}
	directives := ag2.Directives()

	// One observed transmission: both APs report it under the same
	// trace ID, exactly as the core pipeline mints it once per packet.
	tr := trace.NextID()
	target := geom.Point{X: 12, Y: 8}
	if err := ag1.Send(Report{APName: "ap1", MAC: attacker, SeqNo: 1, BearingDeg: geom.BearingDeg(ap1Pos, target), Trace: tr}); err != nil {
		t.Fatal(err)
	}
	if err := ag2.Send(Report{APName: "ap2", MAC: attacker, SeqNo: 1, BearingDeg: geom.BearingDeg(ap2Pos, target), Trace: tr}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "fused decision", func() bool {
		_, ok := c.Track(attacker)
		return ok
	})

	// The spoof verdict rides the same trace; its score crossing fans a
	// quarantine directive back out, trace intact.
	if err := ag1.SendAlertDetail(Alert{
		APName: "ap1", MAC: attacker, Distance: 0.9, Threshold: 0.12,
		BearingDeg: 60, HasBearing: true, Stage: "spoofcheck", Trace: tr,
	}); err != nil {
		t.Fatal(err)
	}
	var d Directive
	select {
	case d = <-directives:
	case <-time.After(10 * time.Second):
		t.Fatal("no quarantine directive within 10s")
	}
	if d.MAC != attacker || d.Action != defense.ActionQuarantine {
		t.Fatalf("directive = %+v", d)
	}
	if d.Trace != tr {
		t.Fatalf("directive arrived with trace %016x, want %016x (v5 wire propagation)", d.Trace, tr)
	}
	if err := ag2.SendDirectiveAck(d.Directive); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "directive ack", func() bool { return c.Stats().DirectiveAcks == 1 })

	// The alert path retains the trace unconditionally (tail-based
	// sampling never drops an incident), with controller spans on it.
	waitFor(t, 5*time.Second, "retained trace", func() bool { return c.Tracer.RetainedCount() > 0 })
	var spans []trace.Span
	for _, v := range c.Tracer.Snapshot(0) {
		if v.Trace == tr {
			spans = v.Spans
		}
	}
	if len(spans) == 0 {
		t.Fatalf("retained store has no spans for trace %016x: %+v", tr, c.Tracer.Snapshot(0))
	}
	stages := map[trace.Stage]bool{}
	for _, s := range spans {
		stages[s.Stage] = true
	}
	if !stages[trace.StageIngest] {
		t.Errorf("retained spans missing ingest stage: %+v", spans)
	}

	// Operator release closes the incident, then a hard stop: nothing
	// survives but the per-partition WAL.
	if !c.Release(attacker) {
		t.Fatal("release refused")
	}
	c.Close()

	// --- Forensics: the timeline from the journal tree alone. ---
	inc, err := journal.ReconstructIncident(dir, journal.IncidentQuery{MAC: attacker, HasMAC: true})
	if err != nil {
		t.Fatal(err)
	}
	if inc.Partitions != 2 {
		t.Fatalf("reconstruction scanned %d partitions, want 2", inc.Partitions)
	}
	var seq []journal.RecordType
	for _, e := range inc.Entries {
		seq = append(seq, e.Type)
	}
	idx := func(rt journal.RecordType) int {
		for i, s := range seq {
			if s == rt {
				return i
			}
		}
		t.Fatalf("timeline missing %s: %v", rt, seq)
		return -1
	}
	iRep, iAlert, iDir := idx(journal.RecReport), idx(journal.RecAlert), idx(journal.RecDirective)
	iAck, iRel := idx(journal.RecAck), idx(journal.RecRelease)
	// The WAL applies-before-journaling, so the quarantine directive's
	// record may land a hair before its triggering alert's — but the
	// causal skeleton must hold: observation, then the verdict/directive
	// pair, then the fleet ack, then the release.
	if !(iRep < iAlert && iRep < iDir && iDir < iAck && iAlert < iAck && iAck < iRel) {
		t.Fatalf("timeline out of order: %v", seq)
	}
	for _, e := range inc.Entries {
		if e.Type == journal.RecReport && e.Trace != tr {
			t.Fatalf("journaled report trace = %016x, want %016x", e.Trace, tr)
		}
	}
	if inc.Entries[iDir].Trace != tr || inc.Entries[iAck].Trace != tr || inc.Entries[iRel].Trace != tr {
		t.Fatalf("trace did not survive the directive/ack/release records: %+v", inc.Entries)
	}
	joined := false
	for _, id := range inc.Traces {
		joined = joined || id == tr
	}
	if !joined {
		t.Fatalf("incident traces %v missing %016x", inc.Traces, tr)
	}

	// The same timeline must be reachable from the trace ID alone —
	// the handle an operator copies out of /traces or a log line.
	byTrace, err := journal.ReconstructIncident(dir, journal.IncidentQuery{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if len(byTrace.Entries) == 0 {
		t.Fatal("by-trace reconstruction found nothing")
	}
	out := inc.Render()
	for _, want := range []string{"report", "alert", "directive", "ack", "release"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render() missing %q:\n%s", want, out)
		}
	}
}

// TestTraceWireCompatV3 pins the downgrade contract: a session
// negotiated at v3 strips the trace field rather than corrupting the
// frame, and the controller still processes the report.
func TestTraceWireCompatV3(t *testing.T) {
	c, addr := startController(t)
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	a, err := DialContext(ctx, addr, Hello{Name: "ap1", Pos: geom.Point{X: 4, Y: 2}, Version: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if a.Version() != 3 {
		t.Fatalf("negotiated v%d, want v3", a.Version())
	}
	mac := wifi.Addr{9, 9, 9, 9, 9, 9}
	if err := a.Send(Report{APName: "ap1", MAC: mac, BearingDeg: 40, SeqNo: 1, Trace: 0xdeadbeef}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, "ingest", func() bool { return c.Stats().Ingested == 1 })
}

// opsBase starts the ops HTTP endpoint for a running controller and
// returns its base URL.
func opsBase(t *testing.T, c *Controller) string {
	t.Helper()
	opsLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c.ServeOps(opsLn)
	return "http://" + opsLn.Addr().String()
}

// TestOpsHandlerHTTPEdges pins the endpoint's HTTP contract: unknown
// routes 404, writes to read-only documents 405 with an Allow header,
// and both JSON documents declare their content type.
func TestOpsHandlerHTTPEdges(t *testing.T) {
	c, _ := startController(t)
	defer c.Close()
	base := opsBase(t, c)

	resp, err := http.Get(base + "/no-such-route")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /no-such-route = %d, want 404", resp.StatusCode)
	}

	for _, path := range []string{"/status", "/traces"} {
		resp, err := http.Post(base+path, "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s = %d, want 405", path, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); !strings.Contains(allow, "GET") {
			t.Errorf("POST %s Allow = %q, want GET advertised", path, allow)
		}
		if !strings.Contains(string(body), "method not allowed") {
			t.Errorf("POST %s body = %q", path, body)
		}

		resp, err = http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("GET %s Content-Type = %q, want application/json", path, ct)
		}
	}

	// A malformed trace filter is a client error, not a panic or an
	// empty 200.
	resp, err = http.Get(base + "/traces?trace=not-hex")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("GET /traces?trace=not-hex = %d, want 400", resp.StatusCode)
	}
}

// TestOpsHandlerTracesDocument: /traces serves the retained store with
// histogram exemplar links, decodable into TracesDocument.
func TestOpsHandlerTracesDocument(t *testing.T) {
	c, addr := startController(t)
	defer c.Close()
	c.Tracer = trace.NewRecorder(ops.NewRegistry())
	base := opsBase(t, c)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	a, err := DialContext(ctx, addr, Hello{Name: "ap1", Pos: geom.Point{X: 4, Y: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	mac := wifi.Addr{7, 7, 7, 7, 7, 7}
	tr := trace.NextID()
	if err := a.SendAlertDetail(Alert{APName: "ap1", MAC: mac, Distance: 0.9, Threshold: 0.12, Stage: "spoofcheck", Trace: tr}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "retained trace", func() bool { return c.Tracer.RetainedCount() > 0 })

	resp, err := http.Get(base + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc TracesDocument
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Retained < 1 || len(doc.Traces) < 1 {
		t.Fatalf("traces document = %+v", doc)
	}
	for _, v := range doc.Traces {
		if len(v.Trace) != 16 {
			t.Errorf("trace ID %q is not 16 hex digits", v.Trace)
		}
		if len(v.Spans) == 0 {
			t.Errorf("retained trace %s has no spans", v.Trace)
		}
	}
}
