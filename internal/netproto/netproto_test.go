package netproto

import (
	"bytes"
	"net"
	"testing"
	"time"

	"secureangle/internal/geom"
	"secureangle/internal/locate"
	"secureangle/internal/music"
	"secureangle/internal/signature"
	"secureangle/internal/wifi"
)

func testSig() *signature.Signature {
	grid := make([]float64, 360)
	p := make([]float64, 360)
	for i := range grid {
		grid[i] = float64(i)
		p[i] = float64(i%37) + 1
	}
	return signature.FromPseudospectrum(&music.Pseudospectrum{AnglesDeg: grid, P: p})
}

func TestHelloRoundTrip(t *testing.T) {
	// An unversioned Hello marshals in the v1 wire form and decodes as
	// protocol version 1.
	h := Hello{Name: "ap-west", Pos: geom.Point{X: 8, Y: 5}}
	got, err := Unmarshal(MarshalHello(h))
	if err != nil {
		t.Fatal(err)
	}
	want := h
	want.Version = ProtoV1
	if got.(Hello) != want {
		t.Errorf("round trip %v != %v", got, want)
	}

	// A versioned Hello round-trips with its version intact.
	h2 := Hello{Name: "ap-east", Pos: geom.Point{X: 1, Y: 2}, Version: ProtoV2}
	got2, err := Unmarshal(MarshalHello(h2))
	if err != nil {
		t.Fatal(err)
	}
	if got2.(Hello) != h2 {
		t.Errorf("v2 round trip %v != %v", got2, h2)
	}
}

func TestReportRoundTrip(t *testing.T) {
	r := Report{
		APName:     "ap1",
		MAC:        wifi.MustParseAddr("00:16:ea:50:00:05"),
		BearingDeg: 123.75,
		SeqNo:      987654321,
		Sig:        testSig(),
	}
	got, err := Unmarshal(MarshalReport(r))
	if err != nil {
		t.Fatal(err)
	}
	gr := got.(Report)
	if gr.APName != r.APName || gr.MAC != r.MAC || gr.BearingDeg != r.BearingDeg || gr.SeqNo != r.SeqNo {
		t.Errorf("fields: %+v", gr)
	}
	d, err := signature.Distance(gr.Sig, r.Sig)
	if err != nil || d > 1e-12 {
		t.Errorf("signature round trip: %v, %v", d, err)
	}
}

func TestReportWithoutSignature(t *testing.T) {
	r := Report{APName: "ap2", BearingDeg: 45}
	got, err := Unmarshal(MarshalReport(r))
	if err != nil {
		t.Fatal(err)
	}
	if got.(Report).Sig != nil {
		t.Error("nil signature did not survive")
	}
}

func TestUnmarshalMalformed(t *testing.T) {
	cases := [][]byte{
		nil,
		{99},                    // unknown type
		{TypeHello},             // no name
		{TypeHello, 0, 3, 'a'},  // short name
		{TypeReport, 0, 1, 'x'}, // truncated body
	}
	for i, b := range cases {
		if _, err := Unmarshal(b); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Valid hello with trailing garbage.
	h := MarshalHello(Hello{Name: "a"})
	if _, err := Unmarshal(append(h, 0xff)); err == nil {
		t.Error("trailing garbage accepted")
	}
}

func TestMessageFraming(t *testing.T) {
	var buf bytes.Buffer
	body := []byte("hello framing")
	if err := WriteMessage(&buf, body); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, body) {
		t.Error("framing round trip")
	}
}

func TestMessageSizeLimit(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, make([]byte, MaxMessageSize+1)); err != ErrTooLarge {
		t.Errorf("oversize write err = %v", err)
	}
	// Hostile length prefix.
	buf.Reset()
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadMessage(&buf); err != ErrTooLarge {
		t.Errorf("hostile prefix err = %v", err)
	}
}

// startController runs a controller on a loopback listener.
func startController(t *testing.T) (*Controller, string) {
	t.Helper()
	fence := &locate.Fence{Boundary: geom.Rect(0, 0, 24, 16)}
	c := NewController(fence)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c.Serve(ln)
	return c, ln.Addr().String()
}

func TestControllerFusesInsideClient(t *testing.T) {
	c, addr := startController(t)
	defer c.Close()

	target := geom.Point{X: 9, Y: 6}
	ap1Pos := geom.Point{X: 4, Y: 2}
	ap2Pos := geom.Point{X: 20, Y: 3}
	a1, err := Dial(addr, Hello{Name: "ap1", Pos: ap1Pos})
	if err != nil {
		t.Fatal(err)
	}
	defer a1.Close()
	a2, err := Dial(addr, Hello{Name: "ap2", Pos: ap2Pos})
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()

	mac := wifi.MustParseAddr("00:16:ea:50:00:07")
	if err := a1.Send(Report{APName: "ap1", MAC: mac, SeqNo: 1, BearingDeg: geom.BearingDeg(ap1Pos, target)}); err != nil {
		t.Fatal(err)
	}
	if err := a2.Send(Report{APName: "ap2", MAC: mac, SeqNo: 1, BearingDeg: geom.BearingDeg(ap2Pos, target)}); err != nil {
		t.Fatal(err)
	}

	select {
	case d := <-c.Decisions():
		if d.Decision != locate.Allow {
			t.Errorf("inside client dropped: %+v", d)
		}
		if d.Pos.Dist(target) > 0.1 {
			t.Errorf("fused position %v, want %v", d.Pos, target)
		}
		if d.MAC != mac || d.SeqNo != 1 {
			t.Error("decision identity wrong")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no decision within 5s")
	}
}

func TestControllerDropsOutsideClient(t *testing.T) {
	c, addr := startController(t)
	defer c.Close()

	intruder := geom.Point{X: -5, Y: 8} // outside the shell
	ap1Pos := geom.Point{X: 4, Y: 2}
	ap2Pos := geom.Point{X: 12, Y: 14}
	a1, _ := Dial(addr, Hello{Name: "ap1", Pos: ap1Pos})
	defer a1.Close()
	a2, _ := Dial(addr, Hello{Name: "ap2", Pos: ap2Pos})
	defer a2.Close()

	mac := wifi.MustParseAddr("66:66:66:66:66:66")
	a1.Send(Report{APName: "ap1", MAC: mac, SeqNo: 9, BearingDeg: geom.BearingDeg(ap1Pos, intruder)})
	a2.Send(Report{APName: "ap2", MAC: mac, SeqNo: 9, BearingDeg: geom.BearingDeg(ap2Pos, intruder)})

	select {
	case d := <-c.Decisions():
		if d.Decision != locate.Drop {
			t.Errorf("outside client allowed: %+v", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no decision within 5s")
	}
}

func TestControllerIgnoresUnknownAP(t *testing.T) {
	c, addr := startController(t)
	defer c.Close()

	// Agent that never sent a Hello for the name it reports under.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send a report directly without Hello.
	mac := wifi.MustParseAddr("00:16:ea:50:00:01")
	if err := WriteMessage(conn, MarshalReport(Report{APName: "ghost", MAC: mac, SeqNo: 1, BearingDeg: 10})); err != nil {
		t.Fatal(err)
	}

	select {
	case d, ok := <-c.Decisions():
		if ok {
			t.Errorf("decision from unknown AP: %+v", d)
		}
	case <-time.After(300 * time.Millisecond):
		// expected: nothing fused
	}
}

func TestControllerRequiresMinAPs(t *testing.T) {
	c, addr := startController(t)
	c.MinAPs = 3
	defer c.Close()

	ap1Pos := geom.Point{X: 4, Y: 2}
	ap2Pos := geom.Point{X: 20, Y: 3}
	a1, _ := Dial(addr, Hello{Name: "ap1", Pos: ap1Pos})
	defer a1.Close()
	a2, _ := Dial(addr, Hello{Name: "ap2", Pos: ap2Pos})
	defer a2.Close()

	mac := wifi.MustParseAddr("00:16:ea:50:00:02")
	target := geom.Point{X: 9, Y: 6}
	a1.Send(Report{APName: "ap1", MAC: mac, SeqNo: 3, BearingDeg: geom.BearingDeg(ap1Pos, target)})
	a2.Send(Report{APName: "ap2", MAC: mac, SeqNo: 3, BearingDeg: geom.BearingDeg(ap2Pos, target)})

	select {
	case d := <-c.Decisions():
		t.Errorf("decision with only 2 of 3 APs: %+v", d)
	case <-time.After(300 * time.Millisecond):
	}
}

func TestControllerGracefulClose(t *testing.T) {
	c, addr := startController(t)
	a, err := Dial(addr, Hello{Name: "ap1", Pos: geom.Point{}})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	done := make(chan struct{})
	go func() {
		c.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung with open connection")
	}
	// Decisions channel must be closed.
	if _, ok := <-c.Decisions(); ok {
		t.Error("decisions channel still open")
	}
}

func TestAgentOnPipe(t *testing.T) {
	// NewAgentOn works over an in-memory pipe; the far end sees the Hello.
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	go func() {
		if _, err := NewAgentOn(client, Hello{Name: "pipe-ap", Pos: geom.Point{X: 1, Y: 2}}); err != nil {
			t.Error(err)
		}
	}()
	body, err := ReadMessage(server)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := Unmarshal(body)
	if err != nil {
		t.Fatal(err)
	}
	if h := msg.(Hello); h.Name != "pipe-ap" {
		t.Errorf("hello = %+v", h)
	}
}
