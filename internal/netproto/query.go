package netproto

import (
	"context"
	"encoding/binary"
	"errors"
	"math"
	"time"

	"secureangle/internal/fusion"
	"secureangle/internal/geom"
	"secureangle/internal/locate"
	"secureangle/internal/wifi"
)

// The v2 mobility-trace exchange: an agent sends Query and the
// controller answers with one or more Tracks frames carrying the
// fusion engine's live track state. Both message types are v2-gated —
// the controller ignores a Query arriving on a v1 session (and never
// emits Tracks on one), and Agent.Query refuses to send on a v1
// session, so v1 peers never see a frame they cannot decode.

// ErrRequiresV2 reports a v2-only operation attempted on a session
// that negotiated protocol v1.
var ErrRequiresV2 = errors.New("netproto: operation requires protocol v2")

// Query asks the controller for mobility-trace state: every tracked
// client when All is set, otherwise the single MAC. ID correlates the
// reply frames with the request (echoed into every Tracks chunk), so
// a reply still in flight when its query is abandoned cannot be
// mistaken for the next query's answer.
type Query struct {
	MAC wifi.Addr
	All bool
	ID  uint32
}

// Tracks is the controller's reply to a Query, echoing its ID. Large
// snapshots are chunked across frames; More marks every frame except
// the last.
type Tracks struct {
	ID     uint32
	More   bool
	States []fusion.TrackState
}

// trackWireSize is one encoded TrackState: MAC + pos + vel + fixes +
// lastSeq + updated (unix nanos) + decision byte.
const trackWireSize = 6 + 16 + 16 + 8 + 8 + 8 + 1

// maxTracksPerFrame bounds a Tracks frame under MaxMessageSize.
const maxTracksPerFrame = (MaxMessageSize - 16) / trackWireSize

// MarshalQuery encodes a Query message body.
func MarshalQuery(q Query) []byte {
	b := []byte{TypeQuery, 0}
	if q.All {
		b[1] = 1
	}
	b = binary.BigEndian.AppendUint32(b, q.ID)
	return append(b, q.MAC[:]...)
}

func unmarshalQuery(rest []byte) (Query, error) {
	if len(rest) != 11 {
		return Query{}, ErrBadMessage
	}
	var q Query
	q.All = rest[0]&1 != 0
	q.ID = binary.BigEndian.Uint32(rest[1:5])
	copy(q.MAC[:], rest[5:11])
	return q, nil
}

// MarshalTracks encodes one Tracks message body. The caller keeps
// len(States) within maxTracksPerFrame (the controller chunks).
func MarshalTracks(t Tracks) []byte {
	b := make([]byte, 0, 10+trackWireSize*len(t.States))
	b = append(b, TypeTrack, 0)
	if t.More {
		b[1] = 1
	}
	b = binary.BigEndian.AppendUint32(b, t.ID)
	b = binary.BigEndian.AppendUint32(b, uint32(len(t.States)))
	for _, ts := range t.States {
		b = append(b, ts.MAC[:]...)
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(ts.Pos.X))
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(ts.Pos.Y))
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(ts.Vel.X))
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(ts.Vel.Y))
		b = binary.BigEndian.AppendUint64(b, ts.Fixes)
		b = binary.BigEndian.AppendUint64(b, ts.LastSeq)
		b = binary.BigEndian.AppendUint64(b, uint64(ts.Updated.UnixNano()))
		b = append(b, byte(ts.Decision))
	}
	return b
}

func unmarshalTracks(rest []byte) (Tracks, error) {
	if len(rest) < 9 {
		return Tracks{}, ErrBadMessage
	}
	var t Tracks
	t.More = rest[0]&1 != 0
	t.ID = binary.BigEndian.Uint32(rest[1:5])
	count64 := uint64(binary.BigEndian.Uint32(rest[5:9]))
	rest = rest[9:]
	if count64 != uint64(len(rest))/trackWireSize || uint64(len(rest)) != count64*trackWireSize {
		return Tracks{}, ErrBadMessage
	}
	t.States = make([]fusion.TrackState, count64)
	for i := range t.States {
		ts := &t.States[i]
		copy(ts.MAC[:], rest[:6])
		ts.Pos = geom.Point{
			X: math.Float64frombits(binary.BigEndian.Uint64(rest[6:14])),
			Y: math.Float64frombits(binary.BigEndian.Uint64(rest[14:22])),
		}
		ts.Vel = geom.Point{
			X: math.Float64frombits(binary.BigEndian.Uint64(rest[22:30])),
			Y: math.Float64frombits(binary.BigEndian.Uint64(rest[30:38])),
		}
		ts.Fixes = binary.BigEndian.Uint64(rest[38:46])
		ts.LastSeq = binary.BigEndian.Uint64(rest[46:54])
		ts.Updated = time.Unix(0, int64(binary.BigEndian.Uint64(rest[54:62])))
		ts.Decision = locate.Decision(rest[62])
		rest = rest[trackWireSize:]
	}
	return t, nil
}

// --- Agent side ---

// startReader launches the agent's single inbound reader, demuxing
// controller frames onto per-type channels. It is shared by Alerts and
// TrackReplies — the connection has one read side, so whichever is
// called first owns it and both channels are fed. Frames of a kind no
// caller has subscribed to are dropped rather than queued, so the
// reader can only block on a channel some caller has promised to
// drain.
func (a *Agent) startReader() {
	a.readerOnce.Do(func() {
		a.alerts = make(chan Alert, 16)
		a.tracks = make(chan Tracks, 4)
		go func() {
			defer func() {
				// Mark the shutdown under pendMu before closing, so a
				// concurrent Alerts() flush never sends on a closed
				// channel (it waits for the lock, sees readerClosed,
				// and skips).
				a.pendMu.Lock()
				a.readerClosed = true
				a.pendMu.Unlock()
				close(a.alerts)
				close(a.tracks)
			}()
			for {
				body, err := ReadMessage(a.conn)
				if err != nil {
					return
				}
				msg, err := Unmarshal(body)
				if err != nil {
					continue
				}
				switch m := msg.(type) {
				case Alert:
					a.deliverAlert(m)
				case Tracks:
					if a.wantTracks.Load() {
						a.tracks <- m
					}
				}
			}
		}()
	})
}

// deliverAlert hands one controller broadcast to the Alerts
// subscriber, or parks it (bounded, oldest dropped) until someone
// subscribes — an agent that started the shared reader via QueryTracks
// before calling Alerts must not lose broadcasts read in between.
func (a *Agent) deliverAlert(m Alert) {
	a.pendMu.Lock()
	if !a.wantAlerts.Load() {
		if len(a.pendAlerts) >= cap(a.alerts) {
			a.pendAlerts = a.pendAlerts[1:]
		}
		a.pendAlerts = append(a.pendAlerts, m)
		a.pendMu.Unlock()
		return
	}
	a.pendMu.Unlock()
	a.alerts <- m
}

// Query asks the controller for mobility-trace state; replies arrive
// as Tracks frames on TrackReplies. Protocol v2 only: on a v1 session
// it fails with ErrRequiresV2 without touching the wire.
func (a *Agent) Query(q Query) error {
	if a.Version() < ProtoV2 {
		return ErrRequiresV2
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.writeBody(MarshalQuery(q))
}

// TrackReplies delivers the controller's Tracks frames. Like Alerts it
// consumes the connection's inbound side (through the shared reader);
// the channel closes when the connection drops. Keep draining it —
// once subscribed, an abandoned channel stalls the shared reader.
func (a *Agent) TrackReplies() <-chan Tracks {
	a.wantTracks.Store(true)
	a.startReader()
	return a.tracks
}

// QueryTracks sends a Query and collects its complete (possibly
// chunked) reply under ctx. It is a convenience for request/response
// callers — serialise calls, and do not interleave with manual
// TrackReplies consumption.
func (a *Agent) QueryTracks(ctx context.Context, q Query) ([]fusion.TrackState, error) {
	ch := a.TrackReplies() // start the reader before the request can race the reply
	q.ID = a.querySeq.Add(1)
	if err := a.Query(q); err != nil {
		return nil, err
	}
	var out []fusion.TrackState
	for {
		select {
		case t, ok := <-ch:
			if !ok {
				return nil, errors.New("netproto: connection closed awaiting Tracks")
			}
			if t.ID != q.ID {
				continue // stale frame of an abandoned earlier query
			}
			out = append(out, t.States...)
			if !t.More {
				return out, nil
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// --- Controller side ---

// answerQuery resolves a v2 session's Query against the fusion engine
// and enqueues the (chunked) reply on the session's broadcast queue.
func (c *Controller) answerQuery(q Query, name string, bcast chan []byte) {
	var states []fusion.TrackState
	if q.All {
		states = c.Snapshot()
	} else if ts, ok := c.Track(q.MAC); ok {
		states = []fusion.TrackState{ts}
	}
	for first := true; first || len(states) > 0; first = false {
		n := len(states)
		if n > maxTracksPerFrame {
			n = maxTracksPerFrame
		}
		frame := Tracks{ID: q.ID, States: states[:n], More: n < len(states)}
		states = states[n:]
		select {
		case bcast <- MarshalTracks(frame):
		default:
			c.logf("controller: track reply queue to %s full, dropping %d states", name, n+len(states))
			// Best effort: still terminate the reply, so a QueryTracks
			// caller sees a truncated result instead of waiting out its
			// context deadline for chunks that will never come.
			select {
			case bcast <- MarshalTracks(Tracks{ID: q.ID}):
			default:
			}
			return
		}
	}
}
