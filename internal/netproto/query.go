package netproto

import (
	"context"
	"encoding/binary"
	"errors"
	"math"
	"time"

	"secureangle/internal/defense"
	"secureangle/internal/fusion"
	"secureangle/internal/geom"
	"secureangle/internal/locate"
	"secureangle/internal/wifi"
)

// The query exchanges: an agent sends Query and the controller answers
// with one or more Tracks frames (KindTracks — the fusion engine's
// live mobility state, protocol v2) or Threats frames (KindThreats —
// the defense engine's live threat state, protocol v3). Every message
// type is version-gated — the controller ignores a Query arriving on a
// session too old for its kind (and never emits Tracks or Threats on
// one), and the agent-side senders refuse locally, so older peers
// never see a frame they cannot decode.

// ErrRequiresV2 reports a v2-only operation attempted on a session
// that negotiated protocol v1.
var ErrRequiresV2 = errors.New("netproto: operation requires protocol v2")

// ErrRequiresV3 reports a v3-only operation (the defense exchanges)
// attempted on a session that negotiated an older protocol.
var ErrRequiresV3 = errors.New("netproto: operation requires protocol v3")

// QueryKind selects what a Query asks for.
type QueryKind uint8

const (
	// KindTracks requests mobility-trace state (Tracks replies).
	KindTracks QueryKind = 0
	// KindThreats requests defense threat state (Threats replies;
	// protocol v3).
	KindThreats QueryKind = 1
)

// Query asks the controller for per-client state of the given Kind:
// every tracked client when All is set, otherwise the single MAC. ID
// correlates the reply frames with the request (echoed into every
// reply chunk), so a reply still in flight when its query is abandoned
// cannot be mistaken for the next query's answer.
type Query struct {
	MAC  wifi.Addr
	All  bool
	ID   uint32
	Kind QueryKind
}

// Tracks is the controller's reply to a Query, echoing its ID. Large
// snapshots are chunked across frames; More marks every frame except
// the last.
type Tracks struct {
	ID     uint32
	More   bool
	States []fusion.TrackState
}

// trackWireSize is one encoded TrackState: MAC + pos + vel + fixes +
// lastSeq + updated (unix nanos) + decision byte.
const trackWireSize = 6 + 16 + 16 + 8 + 8 + 8 + 1

// maxTracksPerFrame bounds a Tracks frame under MaxMessageSize.
const maxTracksPerFrame = (MaxMessageSize - 16) / trackWireSize

// MarshalQuery encodes a Query message body. A KindTracks query is
// encoded in the original 11-byte v2 form (decodable by v2
// controllers); other kinds append the kind byte (the v3 form).
func MarshalQuery(q Query) []byte {
	b := []byte{TypeQuery, 0}
	if q.All {
		b[1] = 1
	}
	b = binary.BigEndian.AppendUint32(b, q.ID)
	b = append(b, q.MAC[:]...)
	if q.Kind != KindTracks {
		b = append(b, byte(q.Kind))
	}
	return b
}

func unmarshalQuery(rest []byte) (Query, error) {
	if len(rest) != 11 && len(rest) != 12 {
		return Query{}, ErrBadMessage
	}
	var q Query
	q.All = rest[0]&1 != 0
	q.ID = binary.BigEndian.Uint32(rest[1:5])
	copy(q.MAC[:], rest[5:11])
	if len(rest) == 12 {
		q.Kind = QueryKind(rest[11])
	}
	return q, nil
}

// MarshalTracks encodes one Tracks message body. The caller keeps
// len(States) within maxTracksPerFrame (the controller chunks).
func MarshalTracks(t Tracks) []byte {
	b := make([]byte, 0, 10+trackWireSize*len(t.States))
	b = append(b, TypeTrack, 0)
	if t.More {
		b[1] = 1
	}
	b = binary.BigEndian.AppendUint32(b, t.ID)
	b = binary.BigEndian.AppendUint32(b, uint32(len(t.States)))
	for _, ts := range t.States {
		b = append(b, ts.MAC[:]...)
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(ts.Pos.X))
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(ts.Pos.Y))
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(ts.Vel.X))
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(ts.Vel.Y))
		b = binary.BigEndian.AppendUint64(b, ts.Fixes)
		b = binary.BigEndian.AppendUint64(b, ts.LastSeq)
		b = binary.BigEndian.AppendUint64(b, uint64(ts.Updated.UnixNano()))
		b = append(b, byte(ts.Decision))
	}
	return b
}

func unmarshalTracks(rest []byte) (Tracks, error) {
	if len(rest) < 9 {
		return Tracks{}, ErrBadMessage
	}
	var t Tracks
	t.More = rest[0]&1 != 0
	t.ID = binary.BigEndian.Uint32(rest[1:5])
	count64 := uint64(binary.BigEndian.Uint32(rest[5:9]))
	rest = rest[9:]
	if count64 != uint64(len(rest))/trackWireSize || uint64(len(rest)) != count64*trackWireSize {
		return Tracks{}, ErrBadMessage
	}
	t.States = make([]fusion.TrackState, count64)
	for i := range t.States {
		ts := &t.States[i]
		copy(ts.MAC[:], rest[:6])
		ts.Pos = geom.Point{
			X: math.Float64frombits(binary.BigEndian.Uint64(rest[6:14])),
			Y: math.Float64frombits(binary.BigEndian.Uint64(rest[14:22])),
		}
		ts.Vel = geom.Point{
			X: math.Float64frombits(binary.BigEndian.Uint64(rest[22:30])),
			Y: math.Float64frombits(binary.BigEndian.Uint64(rest[30:38])),
		}
		ts.Fixes = binary.BigEndian.Uint64(rest[38:46])
		ts.LastSeq = binary.BigEndian.Uint64(rest[46:54])
		ts.Updated = time.Unix(0, int64(binary.BigEndian.Uint64(rest[54:62])))
		ts.Decision = locate.Decision(rest[62])
		rest = rest[trackWireSize:]
	}
	return t, nil
}

// --- Threats: the defense-state reply ---

// Threats is the controller's reply to a Query{Kind: KindThreats},
// echoing its ID. Large snapshots are chunked across frames; More
// marks every frame except the last.
type Threats struct {
	ID     uint32
	More   bool
	States []defense.ClientThreat
}

// threatFixedWire is one encoded ClientThreat minus its two strings:
// MAC + state + action + score + flags + fenceDrops + speedFlags +
// lastDistance + lastThreshold + bearing + hasBearing + pos + hasPos +
// since + updated (unix nanos).
const threatFixedWire = 6 + 1 + 1 + 8 + 8 + 8 + 8 + 8 + 8 + 8 + 1 + 16 + 1 + 8 + 8

// threatMaxStr caps the LastAP/Stage strings on the wire so a frame's
// size is boundable for chunking.
const threatMaxStr = 255

// maxThreatsPerFrame bounds a Threats frame under MaxMessageSize.
const maxThreatsPerFrame = (MaxMessageSize - 16) / (threatFixedWire + 2*(2+threatMaxStr))

// capStr truncates s to the wire cap.
func capStr(s string) string {
	if len(s) > threatMaxStr {
		return s[:threatMaxStr]
	}
	return s
}

// MarshalThreats encodes one Threats message body. The caller keeps
// len(States) within maxThreatsPerFrame (the controller chunks).
func MarshalThreats(t Threats) []byte {
	b := make([]byte, 0, 10+(threatFixedWire+16)*len(t.States))
	b = append(b, TypeThreat, 0)
	if t.More {
		b[1] = 1
	}
	b = binary.BigEndian.AppendUint32(b, t.ID)
	b = binary.BigEndian.AppendUint32(b, uint32(len(t.States)))
	for _, st := range t.States {
		b = append(b, st.MAC[:]...)
		b = append(b, byte(st.State), byte(st.Action))
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(st.Score))
		b = binary.BigEndian.AppendUint64(b, st.Flags)
		b = binary.BigEndian.AppendUint64(b, st.FenceDrops)
		b = binary.BigEndian.AppendUint64(b, st.SpeedFlags)
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(st.LastDistance))
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(st.LastThreshold))
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(st.BearingDeg))
		if st.HasBearing {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(st.Pos.X))
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(st.Pos.Y))
		if st.HasPos {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = binary.BigEndian.AppendUint64(b, uint64(st.Since.UnixNano()))
		b = binary.BigEndian.AppendUint64(b, uint64(st.Updated.UnixNano()))
		b = writeString(b, capStr(st.LastAP))
		b = writeString(b, capStr(st.Stage))
	}
	return b
}

func unmarshalThreats(rest []byte) (Threats, error) {
	if len(rest) < 9 {
		return Threats{}, ErrBadMessage
	}
	var t Threats
	t.More = rest[0]&1 != 0
	t.ID = binary.BigEndian.Uint32(rest[1:5])
	count64 := uint64(binary.BigEndian.Uint32(rest[5:9]))
	rest = rest[9:]
	// Each state is at least threatFixedWire + two empty strings.
	if count64 > uint64(len(rest))/(threatFixedWire+4) {
		return Threats{}, ErrBadMessage
	}
	t.States = make([]defense.ClientThreat, count64)
	for i := range t.States {
		if len(rest) < threatFixedWire {
			return Threats{}, ErrBadMessage
		}
		st := &t.States[i]
		copy(st.MAC[:], rest[:6])
		st.State = defense.State(rest[6])
		st.Action = defense.Action(rest[7])
		rest = rest[8:]
		st.Score = math.Float64frombits(binary.BigEndian.Uint64(rest[0:8]))
		st.Flags = binary.BigEndian.Uint64(rest[8:16])
		st.FenceDrops = binary.BigEndian.Uint64(rest[16:24])
		st.SpeedFlags = binary.BigEndian.Uint64(rest[24:32])
		st.LastDistance = math.Float64frombits(binary.BigEndian.Uint64(rest[32:40]))
		st.LastThreshold = math.Float64frombits(binary.BigEndian.Uint64(rest[40:48]))
		st.BearingDeg = math.Float64frombits(binary.BigEndian.Uint64(rest[48:56]))
		st.HasBearing = rest[56] != 0
		st.Pos = geom.Point{
			X: math.Float64frombits(binary.BigEndian.Uint64(rest[57:65])),
			Y: math.Float64frombits(binary.BigEndian.Uint64(rest[65:73])),
		}
		st.HasPos = rest[73] != 0
		st.Since = time.Unix(0, int64(binary.BigEndian.Uint64(rest[74:82])))
		st.Updated = time.Unix(0, int64(binary.BigEndian.Uint64(rest[82:90])))
		rest = rest[90:]
		var err error
		if st.LastAP, rest, err = readString(rest); err != nil {
			return Threats{}, err
		}
		if st.Stage, rest, err = readString(rest); err != nil {
			return Threats{}, err
		}
	}
	if len(rest) != 0 {
		return Threats{}, ErrBadMessage
	}
	return t, nil
}

// --- Agent side ---

// startReader launches the agent's single inbound reader, demuxing
// controller frames onto per-type channels. It is shared by Alerts,
// TrackReplies, ThreatReplies, and Directives — the connection has one
// read side, so whichever is called first owns it and all channels are
// fed. Frames of a kind no caller has subscribed to are dropped
// (alerts and directives: parked, bounded) rather than queued, so the
// reader can only block on a channel some caller has promised to
// drain.
func (a *Agent) startReader() {
	a.readerOnce.Do(func() {
		a.alerts = make(chan Alert, 16)
		a.tracks = make(chan Tracks, 4)
		a.threats = make(chan Threats, 4)
		a.directives = make(chan Directive, 16)
		go func() {
			defer func() {
				// Mark the shutdown under pendMu before closing, so a
				// concurrent Alerts()/Directives() flush never sends on
				// a closed channel (it waits for the lock, sees
				// readerClosed, and skips).
				a.pendMu.Lock()
				a.readerClosed = true
				a.pendMu.Unlock()
				close(a.alerts)
				close(a.tracks)
				close(a.threats)
				close(a.directives)
			}()
			for {
				body, err := ReadMessage(a.conn)
				if err != nil {
					return
				}
				msg, err := Unmarshal(body)
				if err != nil {
					continue
				}
				switch m := msg.(type) {
				case Alert:
					a.deliverAlert(m)
				case Tracks:
					if a.wantTracks.Load() {
						a.tracks <- m
					}
				case Threats:
					if a.wantThreats.Load() {
						a.threats <- m
					}
				case Directive:
					a.deliverDirective(m)
				}
			}
		}()
	})
}

// deliverAlert hands one controller broadcast to the Alerts
// subscriber, or parks it (bounded, oldest dropped) until someone
// subscribes — an agent that started the shared reader via QueryTracks
// before calling Alerts must not lose broadcasts read in between.
func (a *Agent) deliverAlert(m Alert) {
	a.pendMu.Lock()
	if !a.wantAlerts.Load() {
		if len(a.pendAlerts) >= cap(a.alerts) {
			a.pendAlerts = a.pendAlerts[1:]
		}
		a.pendAlerts = append(a.pendAlerts, m)
		a.pendMu.Unlock()
		return
	}
	a.pendMu.Unlock()
	a.alerts <- m
}

// Query asks the controller for per-client state; replies arrive as
// Tracks frames on TrackReplies (KindTracks, protocol v2) or Threats
// frames on ThreatReplies (KindThreats, protocol v3). On a session
// too old for the query's kind it fails with ErrRequiresV2/V3 without
// touching the wire (a v2 controller would kill a connection sending
// it the kind-suffixed form).
func (a *Agent) Query(q Query) error {
	if q.Kind != KindTracks && a.Version() < ProtoV3 {
		return ErrRequiresV3
	}
	if a.Version() < ProtoV2 {
		return ErrRequiresV2
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.writeBody(MarshalQuery(q))
}

// TrackReplies delivers the controller's Tracks frames. Like Alerts it
// consumes the connection's inbound side (through the shared reader);
// the channel closes when the connection drops. Keep draining it —
// once subscribed, an abandoned channel stalls the shared reader.
func (a *Agent) TrackReplies() <-chan Tracks {
	a.wantTracks.Store(true)
	a.startReader()
	return a.tracks
}

// QueryTracks sends a KindTracks Query and collects its complete
// (possibly chunked) reply under ctx. It is a convenience for
// request/response callers — serialise calls, and do not interleave
// with manual TrackReplies consumption.
func (a *Agent) QueryTracks(ctx context.Context, q Query) ([]fusion.TrackState, error) {
	ch := a.TrackReplies() // start the reader before the request can race the reply
	q.Kind = KindTracks
	q.ID = a.querySeq.Add(1)
	if err := a.Query(q); err != nil {
		return nil, err
	}
	var out []fusion.TrackState
	for {
		select {
		case t, ok := <-ch:
			if !ok {
				return nil, errors.New("netproto: connection closed awaiting Tracks")
			}
			if t.ID != q.ID {
				continue // stale frame of an abandoned earlier query
			}
			out = append(out, t.States...)
			if !t.More {
				return out, nil
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// ThreatReplies delivers the controller's Threats frames through the
// shared reader; the channel closes when the connection drops. Keep
// draining it once subscribed.
func (a *Agent) ThreatReplies() <-chan Threats {
	a.wantThreats.Store(true)
	a.startReader()
	return a.threats
}

// QueryThreats sends a KindThreats Query and collects the controller's
// complete defense threat snapshot under ctx — the wire face of the
// defense engine's Snapshot. Serialise calls, and do not interleave
// with manual ThreatReplies consumption.
func (a *Agent) QueryThreats(ctx context.Context, q Query) ([]defense.ClientThreat, error) {
	ch := a.ThreatReplies()
	q.Kind = KindThreats
	q.ID = a.querySeq.Add(1)
	if err := a.Query(q); err != nil {
		return nil, err
	}
	var out []defense.ClientThreat
	for {
		select {
		case t, ok := <-ch:
			if !ok {
				return nil, errors.New("netproto: connection closed awaiting Threats")
			}
			if t.ID != q.ID {
				continue // stale frame of an abandoned earlier query
			}
			out = append(out, t.States...)
			if !t.More {
				return out, nil
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// --- Controller side ---

// answerQuery resolves a session's Query against the fusion engine
// (KindTracks) or the defense engine (KindThreats, v3-gated like the
// frames it answers with) and enqueues the (chunked) reply on the
// session's broadcast queue.
func (c *Controller) answerQuery(q Query, name string, bcast chan []byte, ver uint16) {
	switch q.Kind {
	case KindThreats:
		if ver < ProtoV3 {
			c.logf("controller: threat query ignored on v%d session", ver)
			return
		}
		var states []defense.ClientThreat
		if s := c.partsLoaded(); s != nil {
			if q.All {
				states = s.Threats()
			} else if st, ok := s.State(q.MAC); ok {
				states = []defense.ClientThreat{st}
			}
		}
		sendChunked(c, name, bcast, q.ID, states, maxThreatsPerFrame,
			func(id uint32, ss []defense.ClientThreat, more bool) []byte {
				return MarshalThreats(Threats{ID: id, States: ss, More: more})
			})
	default:
		var states []fusion.TrackState
		if q.All {
			states = c.Snapshot()
		} else if ts, ok := c.Track(q.MAC); ok {
			states = []fusion.TrackState{ts}
		}
		sendChunked(c, name, bcast, q.ID, states, maxTracksPerFrame,
			func(id uint32, ss []fusion.TrackState, more bool) []byte {
				return MarshalTracks(Tracks{ID: id, States: ss, More: more})
			})
	}
}

// sendChunked splits a query reply across frames of at most maxPer
// states and enqueues them on the session's broadcast queue. The first
// frame is always sent (an empty snapshot still terminates the reply),
// and a full queue degrades to a best-effort empty terminating frame,
// so a Query* caller sees a truncated result instead of waiting out
// its context deadline for chunks that will never come.
func sendChunked[T any](c *Controller, name string, bcast chan []byte, id uint32, states []T, maxPer int, marshal func(id uint32, states []T, more bool) []byte) {
	for first := true; first || len(states) > 0; first = false {
		n := len(states)
		if n > maxPer {
			n = maxPer
		}
		frame := marshal(id, states[:n], n < len(states))
		states = states[n:]
		select {
		case bcast <- frame:
		default:
			c.logf("controller: query reply queue to %s full, dropping %d states", name, n+len(states))
			select {
			case bcast <- marshal(id, nil, false):
			default:
			}
			return
		}
	}
}
