// Package netproto is the system-level glue of section 2.3: SecureAngle
// APs stream per-packet AoA reports to a controller over TCP, and the
// controller fuses bearings from multiple APs into client locations and
// virtual-fence decisions.
//
// Wire format: length-prefixed binary messages, big endian throughout.
// Each message is
//
//	uint32 length (of everything after this field)
//	uint8  type
//	...    type-specific body
//
// Message types: Hello (AP announces its name and position) and Report
// (one packet's MAC, bearing, and serialised AoA signature).
package netproto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"secureangle/internal/geom"
	"secureangle/internal/signature"
	"secureangle/internal/wifi"
)

// Message type identifiers.
const (
	TypeHello       = 1
	TypeReport      = 2
	TypeReportBatch = 4
	TypeWelcome     = 5
	TypePing        = 6
	TypeQuery       = 7
	TypeTrack       = 8
	TypeDirective   = 9
	TypeThreat      = 10
	TypeSegment     = 11
	TypeSegmentAck  = 12
)

// Wire protocol versions. v1 is the seed protocol: a Hello with no
// version field and no controller reply. v2 appends a version to the
// Hello, answers it with a Welcome carrying the negotiated version
// (the minimum of what both ends speak), extends Alert with the
// pipeline-stage field, and adds the Query/Tracks mobility-trace
// exchange (the controller ignores Query on v1 sessions and never
// sends Tracks to them). v3 is the defense loop: Alert gains the
// threshold/bearing scoring fields, Query gains a Kind byte selecting
// the Query(KindThreats)/Threats defense-state exchange, and the
// Directive countermeasure broadcast/ack/release flows are added. Each
// frame is encoded at the session's negotiated version, so v1 and v2
// peers keep decoding exactly the forms their builds shipped with —
// they never see Directive, Threats, extended Alerts, or Kind-suffixed
// Queries; quarantine entries reach them as legacy Alert broadcasts.
// Agents and controllers negotiate down, so older agents talk to a
// newer controller unchanged.
// v4 is the enrollment extension: the Hello gains a bearer-token
// string (minted by the controller at enroll time) and the Welcome
// gains a status byte so an authentication rejection is a typed
// outcome rather than a silent hangup. Sessions negotiated below v4
// keep the exact v1–v3 wire forms — no token, 3-byte Welcome — and
// whether the controller accepts them is its RequireAuth knob, not a
// wire-format question.
// v5 is the trace-context extension: Report, ReportBatch, Alert, and
// Directive frames carry the 64-bit trace ID minted at the observing
// AP, so a decision's causal chain (observation → ingest → fusion →
// directive → ack) is joinable end to end. Every trace field is a
// trailing extension — appended after the v4 form, discriminated by
// leftover length at decode (a batch appends one 8-byte ID per report
// after the bodies) — so sessions negotiated at v1–v4 keep their exact
// byte forms and old decoders never see the new bytes.
const (
	ProtoV1 = 1
	ProtoV2 = 2
	ProtoV3 = 3
	ProtoV4 = 4
	ProtoV5 = 5
	// ProtoVersion is the highest version this build speaks.
	ProtoVersion = ProtoV5
)

// NegotiateVersion returns the version a ProtoVersion-speaking peer
// settles on against a remote advertising v: the highest version both
// ends speak. A zero v (a Hello without the field) is v1.
func NegotiateVersion(v uint16) uint16 {
	if v < ProtoV2 {
		return ProtoV1
	}
	if v > ProtoVersion {
		return ProtoVersion
	}
	return v
}

// MaxMessageSize bounds a single message (a signature over a 0.25-degree
// 360 grid is ~23 KB; 1 MB leaves ample margin while stopping hostile
// length prefixes from ballooning allocations).
const MaxMessageSize = 1 << 20

// Hello announces an AP to the controller. Version is the highest
// protocol version the agent speaks; zero (or 1) marshals in the v1
// wire form, without the version field, so a Hello round-trips
// byte-identically with v1 peers. An empty Name makes the session an
// observer: it receives broadcasts and may query tracks, but is not
// registered as a bearing source (the `secureangle tracks` CLI
// connects this way).
type Hello struct {
	Name string
	Pos  geom.Point
	// Version is the advertised protocol version (0 means v1).
	Version uint16
	// Token is the enrollment bearer token (v4+; empty for earlier
	// versions and for agents connecting to an auth-optional
	// controller).
	Token string
}

// Welcome status codes (v4+).
const (
	// WelcomeOK: the session is accepted.
	WelcomeOK = 0
	// WelcomeAuthRejected: the Hello's token was missing, unknown, or
	// revoked and the controller requires authentication. The
	// controller closes the connection after sending it.
	WelcomeAuthRejected = 1
)

// Welcome is the controller's reply to a v2 (or later) Hello, carrying
// the negotiated protocol version for the connection. v1 agents never
// receive one — the v1 exchange had no controller reply. On v4+
// sessions a status byte follows the version (see WelcomeOK and
// WelcomeAuthRejected); earlier sessions keep the 3-byte form.
type Welcome struct {
	Version uint16
	// Status is WelcomeOK or WelcomeAuthRejected (v4+; earlier wire
	// forms have no status and decode as WelcomeOK).
	Status uint8
}

// Ping is an agent keepalive: the controller drops connections that
// stay silent past its read deadline, so an agent with nothing to
// report (listen-only fence nodes between transmissions) pings within
// Controller.ReadTimeout to stay registered. The controller ignores the
// body — reading the frame is what resets the deadline.
type Ping struct{}

// MarshalPing encodes a Ping message body.
func MarshalPing() []byte { return []byte{TypePing} }

// Report is one packet observation from one AP.
type Report struct {
	APName     string
	MAC        wifi.Addr
	BearingDeg float64
	// SeqNo correlates reports of the same transmission across APs.
	SeqNo uint64
	// Sig may be nil when only the bearing is reported.
	Sig *signature.Signature
	// Trace is the trace ID minted at the observing AP (protocol v5;
	// zero when untraced or on older sessions).
	Trace uint64
}

var (
	// ErrTooLarge reports a message exceeding MaxMessageSize.
	ErrTooLarge = errors.New("netproto: message too large")
	// ErrBadMessage reports a malformed body.
	ErrBadMessage = errors.New("netproto: malformed message")
)

// writeString appends a uint16-length-prefixed string.
func writeString(b []byte, s string) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

func readString(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, ErrBadMessage
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < n {
		return "", nil, ErrBadMessage
	}
	return string(b[:n]), b[n:], nil
}

// MarshalHello encodes a Hello message body (without the length
// prefix). Version 0 or 1 produces the v1 form (no version field);
// higher versions append it.
func MarshalHello(h Hello) []byte {
	b := []byte{TypeHello}
	b = writeString(b, h.Name)
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(h.Pos.X))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(h.Pos.Y))
	if h.Version >= ProtoV2 {
		b = binary.BigEndian.AppendUint16(b, h.Version)
	}
	if h.Version >= ProtoV4 {
		b = writeString(b, h.Token)
	}
	return b
}

// MarshalWelcome encodes a Welcome message body.
func MarshalWelcome(w Welcome) []byte {
	b := []byte{TypeWelcome}
	b = binary.BigEndian.AppendUint16(b, w.Version)
	if w.Version >= ProtoV4 {
		b = append(b, w.Status)
	}
	return b
}

// MarshalReport encodes a Report message body in the highest wire form
// this build speaks.
func MarshalReport(r Report) []byte {
	return marshalReportV(r, ProtoVersion)
}

// marshalReportV encodes a Report for a session at the given negotiated
// version: v5 appends the trailing trace ID, earlier versions keep the
// exact v1–v4 bytes.
func marshalReportV(r Report, version uint16) []byte {
	b := appendReportBody([]byte{TypeReport}, r)
	if version >= ProtoV5 {
		b = binary.BigEndian.AppendUint64(b, r.Trace)
	}
	return b
}

// appendReportBody appends one report's self-delimiting wire form.
func appendReportBody(b []byte, r Report) []byte {
	b = writeString(b, r.APName)
	b = append(b, r.MAC[:]...)
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(r.BearingDeg))
	b = binary.BigEndian.AppendUint64(b, r.SeqNo)
	if r.Sig != nil {
		sig := r.Sig.Marshal()
		b = binary.BigEndian.AppendUint32(b, uint32(len(sig)))
		b = append(b, sig...)
	} else {
		b = binary.BigEndian.AppendUint32(b, 0)
	}
	return b
}

// ReportBatch is several observations shipped as one framed message — the
// batch pipeline's ObserveBatch output crosses the wire in one write
// instead of one syscall per packet.
type ReportBatch []Report

// MarshalReportBatch encodes a ReportBatch message body in the highest
// wire form this build speaks. The caller must keep the result under
// MaxMessageSize (Agent.SendBatch chunks automatically).
func MarshalReportBatch(rs []Report) []byte {
	return marshalReportBatchV(rs, ProtoVersion)
}

// marshalReportBatchV encodes a ReportBatch for a session at the given
// negotiated version. The v5 trace IDs trail the report bodies as one
// contiguous block (one 8-byte ID per report, in report order) rather
// than interleaving, so the batch stays length-discriminable: after
// count self-delimiting bodies, 0 leftover bytes is the v1–v4 form and
// 8*count is v5.
func marshalReportBatchV(rs []Report, version uint16) []byte {
	b := []byte{TypeReportBatch}
	b = binary.BigEndian.AppendUint32(b, uint32(len(rs)))
	for _, r := range rs {
		b = appendReportBody(b, r)
	}
	if version >= ProtoV5 {
		for _, r := range rs {
			b = binary.BigEndian.AppendUint64(b, r.Trace)
		}
	}
	return b
}

// readReportBody parses one report from b, returning the remainder.
func readReportBody(b []byte) (Report, []byte, error) {
	var r Report
	name, rest, err := readString(b)
	if err != nil {
		return r, nil, err
	}
	if len(rest) < 6+8+8+4 {
		return r, nil, ErrBadMessage
	}
	r.APName = name
	copy(r.MAC[:], rest[:6])
	rest = rest[6:]
	r.BearingDeg = math.Float64frombits(binary.BigEndian.Uint64(rest[0:8]))
	r.SeqNo = binary.BigEndian.Uint64(rest[8:16])
	sigLen := int(binary.BigEndian.Uint32(rest[16:20]))
	rest = rest[20:]
	if sigLen > 0 {
		if len(rest) < sigLen {
			return r, nil, ErrBadMessage
		}
		sig, err := signature.Unmarshal(rest[:sigLen])
		if err != nil {
			return r, nil, fmt.Errorf("netproto: %w", err)
		}
		r.Sig = sig
		rest = rest[sigLen:]
	}
	return r, rest, nil
}

// Unmarshal decodes a message body into either Hello or Report.
func Unmarshal(b []byte) (any, error) {
	if len(b) < 1 {
		return nil, ErrBadMessage
	}
	switch b[0] {
	case TypeHello:
		name, rest, err := readString(b[1:])
		if err != nil {
			return nil, err
		}
		var version uint16
		var token string
		switch {
		case len(rest) == 16:
			version = ProtoV1
		case len(rest) == 18:
			version = binary.BigEndian.Uint16(rest[16:18])
		case len(rest) > 18:
			// Only v4+ Hellos carry bytes past the version field (the
			// enrollment token); trailing garbage on a v1–v3 Hello is a
			// malformed frame.
			version = binary.BigEndian.Uint16(rest[16:18])
			if version < ProtoV4 {
				return nil, ErrBadMessage
			}
			var tail []byte
			var err error
			token, tail, err = readString(rest[18:])
			if err != nil || len(tail) != 0 {
				return nil, ErrBadMessage
			}
		default:
			return nil, ErrBadMessage
		}
		return Hello{
			Name: name,
			Pos: geom.Point{
				X: math.Float64frombits(binary.BigEndian.Uint64(rest[0:8])),
				Y: math.Float64frombits(binary.BigEndian.Uint64(rest[8:16])),
			},
			Version: version,
			Token:   token,
		}, nil
	case TypeWelcome:
		switch len(b) {
		case 3:
			return Welcome{Version: binary.BigEndian.Uint16(b[1:3])}, nil
		case 4:
			v := binary.BigEndian.Uint16(b[1:3])
			if v < ProtoV4 {
				// v1–v3 Welcomes are exactly 3 bytes; a status byte on
				// an older version is malformed.
				return nil, ErrBadMessage
			}
			return Welcome{Version: v, Status: b[3]}, nil
		default:
			return nil, ErrBadMessage
		}
	case TypePing:
		if len(b) != 1 {
			return nil, ErrBadMessage
		}
		return Ping{}, nil
	case TypeReport:
		r, rest, err := readReportBody(b[1:])
		if err != nil {
			return nil, err
		}
		switch len(rest) {
		case 0: // v1–v4 form
		case 8: // v5: trailing trace ID
			r.Trace = binary.BigEndian.Uint64(rest)
		default:
			return nil, ErrBadMessage
		}
		return r, nil
	case TypeReportBatch:
		rest := b[1:]
		if len(rest) < 4 {
			return nil, ErrBadMessage
		}
		// Validate the count in uint64 before any int conversion: on
		// 32-bit builds a hostile count >= 2^31 would wrap negative and
		// slip past the bound only to panic in make. A report body is at
		// least 2+6+8+8+4 bytes, so a genuine count can never exceed the
		// body length it must be backed by.
		count64 := uint64(binary.BigEndian.Uint32(rest[:4]))
		rest = rest[4:]
		if count64 > uint64(len(rest)/(2+6+8+8+4)) {
			return nil, ErrBadMessage
		}
		count := int(count64)
		batch := make(ReportBatch, 0, count)
		for i := 0; i < count; i++ {
			var r Report
			var err error
			r, rest, err = readReportBody(rest)
			if err != nil {
				return nil, err
			}
			batch = append(batch, r)
		}
		switch {
		case len(rest) == 0: // v1–v4 form
		case count > 0 && len(rest) == 8*count:
			// v5: one trailing trace ID per report, in report order.
			for i := range batch {
				batch[i].Trace = binary.BigEndian.Uint64(rest[8*i:])
			}
		default:
			return nil, ErrBadMessage
		}
		return batch, nil
	case TypeAlert:
		return unmarshalAlert(b[1:])
	case TypeQuery:
		return unmarshalQuery(b[1:])
	case TypeTrack:
		return unmarshalTracks(b[1:])
	case TypeDirective:
		return unmarshalDirective(b[1:])
	case TypeThreat:
		return unmarshalThreats(b[1:])
	case TypeSegment:
		return unmarshalSegment(b[1:])
	case TypeSegmentAck:
		return unmarshalSegmentAck(b[1:])
	default:
		return nil, fmt.Errorf("netproto: unknown message type %d", b[0])
	}
}

// WriteMessage frames and writes one message body.
func WriteMessage(w io.Writer, body []byte) error {
	if len(body) > MaxMessageSize {
		return ErrTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// ReadMessage reads one length-prefixed message body.
func ReadMessage(r io.Reader) ([]byte, error) {
	return ReadMessageBuf(r, nil)
}

// ReadMessageBuf reads one length-prefixed message body into buf when
// it fits, allocating only when it does not — the streaming consumers'
// (standby apply loop) zero-alloc steady state. The returned slice
// aliases buf; it is valid until the next ReadMessageBuf call with the
// same buffer.
func ReadMessageBuf(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxMessageSize {
		return nil, ErrTooLarge
	}
	body := buf
	if uint32(cap(body)) < n {
		body = make([]byte, n)
	}
	body = body[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}
