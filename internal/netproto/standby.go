package netproto

// Warm standby: a process that subscribes to a leader controller's
// journal stream (see replication.go), durably re-appends every record
// into its own journal layout, and continuously applies them into a
// warm Controller whose engines track the leader's state — clock
// pinned to stream time, journaling and directive fan-out suppressed.
// Promotion (operator-driven, or automatic after PromoteAfter of
// leader silence) flips the controller live: clock to wall time,
// engines snapshotted, and the caller serves the fleet's APs on it.
// Because the journal carries enrollment mutations, APs reconnect to
// the promoted standby with their original tokens and are resumed from
// the restored quarantine state.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"secureangle/internal/journal"
	"secureangle/internal/locate"
	"secureangle/internal/ops"
)

// StandbyConfig configures a warm standby.
type StandbyConfig struct {
	// LeaderAddr is the leader controller's AP port.
	LeaderAddr string
	// Dir is the standby's own journal directory; its layout (flat or
	// p0..p{N-1}) is created to match the partition count learned from
	// the leader's first frame.
	Dir string
	// Journal tunes the standby's journals (zero fields take the
	// package journal defaults).
	Journal journal.Options
	// Token authenticates the subscription — any enrolled AP's token
	// (journal streaming reuses the enrollment trust root).
	Token string
	// Configure, if set, is applied to the warm controller before its
	// journals attach — the place to mirror the leader's tuning fields
	// (fence, MinAPs, defense policy, auth posture) so the promoted
	// controller is decision-identical to the leader.
	Configure func(*Controller)
	// Fence is the promoted controller's fence (required).
	Fence *locate.Fence
	// PromoteAfter auto-promotes after this much leader silence while
	// disconnected or idle (0 = promote only via Promote/POST
	// /promote). Heartbeats arrive ~2/s per partition, so values of a
	// few seconds are already conservative.
	PromoteAfter time.Duration
	// ReconnectMin/Max bound the reconnect backoff (defaults 250ms/4s).
	ReconnectMin, ReconnectMax time.Duration
	// Logf, if set, receives diagnostic output.
	Logf func(format string, args ...any)
}

// Standby is a warm replica of a leader controller.
type Standby struct {
	cfg  StandbyConfig
	ctrl *Controller
	reg  *ops.Registry

	mu        sync.Mutex
	connected bool
	promoted  bool
	parts     int
	leaderLSN []uint64
	applied   []uint64
	lastFrame time.Time
	conn      net.Conn

	opsSrv *http.Server

	promoteOnce sync.Once
	promotedCh  chan struct{}
}

// NewStandby builds a warm standby. The controller it wraps is
// returned by Controller() after promotion; before that it is warm
// state, not to be served.
func NewStandby(cfg StandbyConfig) (*Standby, error) {
	if cfg.LeaderAddr == "" {
		return nil, errors.New("netproto: standby: empty LeaderAddr")
	}
	if cfg.Dir == "" {
		return nil, errors.New("netproto: standby: empty Dir")
	}
	if cfg.Fence == nil {
		return nil, errors.New("netproto: standby: nil Fence")
	}
	if cfg.ReconnectMin <= 0 {
		cfg.ReconnectMin = 250 * time.Millisecond
	}
	if cfg.ReconnectMax < cfg.ReconnectMin {
		cfg.ReconnectMax = 4 * time.Second
	}
	ctrl := NewController(cfg.Fence)
	ctrl.Logf = cfg.Logf
	if cfg.Configure != nil {
		cfg.Configure(ctrl)
	}
	s := &Standby{
		cfg:        cfg,
		ctrl:       ctrl,
		reg:        ops.NewRegistry(),
		promotedCh: make(chan struct{}),
	}
	s.registerOps()
	return s, nil
}

// Controller returns the wrapped controller. Before promotion it is
// warm restore state: read-only accessors (Threats, Quarantined,
// StatusReport) reflect the replicated stream, but it must not be
// served to APs until Promote.
func (s *Standby) Controller() *Controller { return s.ctrl }

// Promoted reports whether the standby has been promoted.
func (s *Standby) Promoted() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.promoted
}

// PromotedCh closes when the standby promotes.
func (s *Standby) PromotedCh() <-chan struct{} { return s.promotedCh }

func (s *Standby) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Run follows the leader until ctx is cancelled or the standby
// promotes: connect, subscribe from the local journals' positions,
// apply the stream, reconnect with backoff on any error. It returns
// nil after promotion (the controller is then live and the caller
// serves it) and ctx.Err() on cancellation.
func (s *Standby) Run(ctx context.Context) error {
	backoff := s.cfg.ReconnectMin
	for {
		if s.Promoted() {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		err := s.followOnce(ctx)
		if s.Promoted() {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if err != nil {
			s.logf("standby: leader connection: %v", err)
		}
		s.noteDisconnected()
		if s.maybeAutoPromote() {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > s.cfg.ReconnectMax {
			backoff = s.cfg.ReconnectMax
		}
	}
}

// followOnce runs one leader session: dial, authenticate, subscribe,
// and apply frames until the connection breaks or the watchdog fires.
func (s *Standby) followOnce(ctx context.Context) error {
	d := net.Dialer{Timeout: 5 * time.Second}
	conn, err := d.DialContext(ctx, "tcp", s.cfg.LeaderAddr)
	if err != nil {
		return err
	}
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	// Observer handshake: an empty Hello name keeps the standby out of
	// the leader's AP position table (it is never a bearing source),
	// and the token authenticates the subscription.
	if err := WriteMessage(conn, MarshalHello(Hello{Version: ProtoVersion, Token: s.cfg.Token})); err != nil {
		return err
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	body, err := ReadMessage(conn)
	if err != nil {
		return fmt.Errorf("welcome: %w", err)
	}
	msg, err := Unmarshal(body)
	if err != nil {
		return fmt.Errorf("welcome: %w", err)
	}
	w, ok := msg.(Welcome)
	if !ok {
		return fmt.Errorf("expected Welcome, got %T", msg)
	}
	if w.Status != WelcomeOK {
		return ErrAuthRejected
	}
	if NegotiateVersion(w.Version) < ProtoV4 {
		return fmt.Errorf("leader speaks v%d, need v4 for journal streaming", w.Version)
	}

	// Subscribe from what the local journals already hold.
	if err := WriteMessage(conn, MarshalSegmentAck(s.subscribeAck())); err != nil {
		return err
	}
	s.mu.Lock()
	s.connected = true
	s.lastFrame = time.Now()
	s.conn = conn
	s.mu.Unlock()
	s.logf("standby: following %s", s.cfg.LeaderAddr)

	// The watchdog read deadline doubles as the leader-loss detector:
	// heartbeats arrive ~2/s, so a PromoteAfter silence surfaces as a
	// read timeout here.
	//
	// The loop reuses its decode scratch frame to frame: the read
	// buffer and the Segment record slice live for the connection, so
	// the steady-state apply path does not allocate per frame. Both
	// are consumed before the next read (AppendRecord and Apply copy
	// or decode what they keep), so the aliasing never escapes.
	var (
		readBuf []byte
		recs    []journal.Record
	)
	for {
		deadline := 30 * time.Second
		if s.cfg.PromoteAfter > 0 && s.cfg.PromoteAfter < deadline {
			deadline = s.cfg.PromoteAfter
		}
		conn.SetReadDeadline(time.Now().Add(deadline))
		body, err := ReadMessageBuf(conn, readBuf)
		if err != nil {
			return err
		}
		if cap(body) > cap(readBuf) {
			readBuf = body
		}
		if len(body) == 0 || body[0] != TypeSegment {
			// Directives/alerts broadcast to every session; not ours to
			// act on. Validate the frame, then move on.
			if _, err := Unmarshal(body); err != nil {
				return err
			}
			continue
		}
		seg, err := unmarshalSegmentInto(body[1:], recs)
		if err != nil {
			return err
		}
		if cap(seg.Records) > cap(recs) {
			recs = seg.Records
		}
		if err := s.applySegment(seg); err != nil {
			return err
		}
		if err := WriteMessage(conn, MarshalSegmentAck(s.ackFor(seg.Partition))); err != nil {
			return err
		}
	}
}

// subscribeAck builds the initial position vector from the local
// journals (empty before the first session sized them — the leader
// then streams from the start of retained history).
func (s *Standby) subscribeAck() SegmentAck {
	js := s.ctrl.journals()
	ack := SegmentAck{}
	for i, j := range js {
		ack.Positions = append(ack.Positions, SegmentPos{Partition: i, LSN: j.LSN()})
	}
	return ack
}

// ackFor reports partition p's applied position.
func (s *Standby) ackFor(p int) SegmentAck {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p < 0 || p >= len(s.applied) {
		return SegmentAck{}
	}
	return SegmentAck{Positions: []SegmentPos{{Partition: p, LSN: s.applied[p]}}}
}

// applySegment durably appends and warm-applies one frame. The first
// frame sizes the standby: partition count from the leader, journals
// opened (recovering any prior local history into the engines), and
// the controller parked in warm mode — clock pinned to stream time,
// journaling and fan-out suppressed.
func (s *Standby) applySegment(seg Segment) error {
	if seg.PartCount <= 0 || seg.Partition < 0 || seg.Partition >= seg.PartCount {
		return fmt.Errorf("standby: bad segment header (partition %d of %d)", seg.Partition, seg.PartCount)
	}
	if err := s.ensureSized(seg.PartCount); err != nil {
		return err
	}
	s.mu.Lock()
	if seg.PartCount != s.parts {
		s.mu.Unlock()
		return fmt.Errorf("standby: leader repartitioned %d -> %d (wipe %s and restart)", s.parts, seg.PartCount, s.cfg.Dir)
	}
	s.lastFrame = time.Now()
	s.leaderLSN[seg.Partition] = seg.LeaderLSN
	applied := s.applied[seg.Partition]
	s.mu.Unlock()

	js := s.ctrl.journals()
	set := s.ctrl.partsLoaded()
	if js == nil || set == nil {
		return errors.New("standby: journals not attached")
	}
	j := js[seg.Partition]
	part := set.At(seg.Partition)
	hooks := s.ctrl.partitionHooks(part.Fusion, part.Defense)
	for _, rec := range seg.Records {
		if rec.LSN <= applied {
			continue // duplicate delivery after a reconnect
		}
		// Durable first, then warm-apply: a crash between the two
		// replays the record from the local journal on restart.
		if err := j.AppendRecord(rec); err != nil {
			return fmt.Errorf("standby: p%d append LSN %d: %w", seg.Partition, rec.LSN, err)
		}
		if err := journal.Apply(rec, hooks); err != nil {
			return fmt.Errorf("standby: p%d apply LSN %d: %w", seg.Partition, rec.LSN, err)
		}
		applied = rec.LSN
		if rec.Type == journal.RecSkip {
			if sk, err := journal.DecodeSkip(rec.Data); err == nil && sk.End > applied {
				applied = sk.End
			}
		}
	}
	s.mu.Lock()
	if applied > s.applied[seg.Partition] {
		s.applied[seg.Partition] = applied
	}
	s.mu.Unlock()
	return nil
}

// ensureSized sizes the standby to the leader's partition count on the
// first frame: opens the journal layout (recovering any prior local
// history into the engines) and parks the controller in warm mode.
func (s *Standby) ensureSized(parts int) error {
	s.mu.Lock()
	sized := s.parts != 0
	s.mu.Unlock()
	if sized {
		return nil
	}
	s.ctrl.Partitions = parts
	if err := s.ctrl.WithJournalDir(s.cfg.Dir, s.cfg.Journal); err != nil {
		return err
	}
	// attachJournals left the controller live; park it warm: the clock
	// re-pins to stream time at the first applied record, and
	// recovering suppresses journaling (the stream is appended
	// verbatim) and directive fan-out (no APs are served here).
	s.ctrl.recovering.Store(true)
	applied := make([]uint64, parts)
	for i, j := range s.ctrl.journals() {
		applied[i] = j.LSN()
	}
	s.mu.Lock()
	s.parts = parts
	s.leaderLSN = make([]uint64, parts)
	s.applied = applied
	s.mu.Unlock()
	s.logf("standby: sized to %d partition(s), restored through %v", parts, applied)
	return nil
}

func (s *Standby) noteDisconnected() {
	s.mu.Lock()
	s.connected = false
	s.conn = nil
	s.mu.Unlock()
}

// maybeAutoPromote promotes when the leader has been silent past
// PromoteAfter (and the standby has actually followed it at some
// point — a standby that never reached the leader keeps retrying).
func (s *Standby) maybeAutoPromote() bool {
	s.mu.Lock()
	silent := s.parts != 0 && s.cfg.PromoteAfter > 0 &&
		!s.lastFrame.IsZero() && time.Since(s.lastFrame) >= s.cfg.PromoteAfter
	s.mu.Unlock()
	if !silent {
		return false
	}
	s.logf("standby: leader silent past %v, promoting", s.cfg.PromoteAfter)
	s.Promote()
	return true
}

// Promote flips the warm controller live: the leader session (if any)
// is dropped, the engine clock returns to wall time, journaling and
// fan-out resume, and every partition is snapshotted so a crash right
// after promotion restores instantly. Idempotent. After it returns the
// caller serves the controller (Serve/ServeOps) and the fleet's APs
// reconnect with their original enrollment tokens, receiving resume
// directives for the restored quarantines.
func (s *Standby) Promote() {
	s.promoteOnce.Do(func() {
		s.mu.Lock()
		s.promoted = true
		conn := s.conn
		s.conn = nil
		s.mu.Unlock()
		if conn != nil {
			conn.Close()
		}
		s.ctrl.clk.Live()
		s.ctrl.recovering.Store(false)
		if s.ctrl.journals() != nil && s.ctrl.snapshotsEnabled() {
			if err := s.ctrl.SnapshotJournal(); err != nil {
				s.logf("standby: promotion snapshot: %v", err)
			}
		}
		s.logf("standby: promoted")
		close(s.promotedCh)
	})
}

// StandbyPartition is one partition's replication position in a
// StandbyStatus.
type StandbyPartition struct {
	Partition  int    `json:"partition"`
	LeaderLSN  uint64 `json:"leader_lsn"`
	AppliedLSN uint64 `json:"applied_lsn"`
	Lag        uint64 `json:"lag"`
}

// StandbyStatus is the standby's own health document, embedded in the
// /status reply next to the warm controller's state.
type StandbyStatus struct {
	Leader    string `json:"leader"`
	Connected bool   `json:"connected"`
	Promoted  bool   `json:"promoted"`
	// FailoverReady is true when the standby is connected and every
	// partition's lag is zero: promotion would lose nothing.
	FailoverReady bool               `json:"failover_ready"`
	MaxLag        uint64             `json:"max_lag"`
	Partitions    []StandbyPartition `json:"partitions,omitempty"`
	LastFrame     time.Time          `json:"last_frame,omitempty"`
}

// Status reports the standby's replication state.
func (s *Standby) Status() StandbyStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := StandbyStatus{
		Leader:    s.cfg.LeaderAddr,
		Connected: s.connected,
		Promoted:  s.promoted,
		LastFrame: s.lastFrame,
	}
	for i := 0; i < s.parts; i++ {
		lag := uint64(0)
		if s.leaderLSN[i] > s.applied[i] {
			lag = s.leaderLSN[i] - s.applied[i]
		}
		st.Partitions = append(st.Partitions, StandbyPartition{
			Partition:  i,
			LeaderLSN:  s.leaderLSN[i],
			AppliedLSN: s.applied[i],
			Lag:        lag,
		})
		if lag > st.MaxLag {
			st.MaxLag = lag
		}
	}
	st.FailoverReady = s.connected && s.parts > 0 && st.MaxLag == 0
	return st
}

// registerOps installs the standby's collector families on its private
// registry (private so a leader and standby in one process — tests —
// do not clobber each other's closures on the default registry).
func (s *Standby) registerOps() {
	s.reg.RegisterCollector("secureangle_journal_replication_lag",
		"Journal records the leader has assigned but this standby has not yet applied, per partition.", ops.KindGauge,
		func(emit func(string, float64)) {
			for _, p := range s.Status().Partitions {
				emit(fmt.Sprintf(`partition="%d"`, p.Partition), float64(p.Lag))
			}
		})
	s.reg.RegisterCollector("secureangle_standby_failover_ready",
		"1 when the standby is connected with zero lag on every partition.", ops.KindGauge,
		func(emit func(string, float64)) {
			v := 0.0
			if s.Status().FailoverReady {
				v = 1
			}
			emit("", v)
		})
	s.reg.RegisterCollector("secureangle_standby_connected",
		"1 while the leader session is up.", ops.KindGauge,
		func(emit func(string, float64)) {
			v := 0.0
			if s.Status().Connected {
				v = 1
			}
			emit("", v)
		})
}

// OpsHandler returns the standby's operations HTTP handler:
//
//	GET  /metrics   Prometheus text exposition (standby registry)
//	GET  /status    controller Status document plus a "standby" section
//	POST /promote   promote now; returns the post-promotion status
//	GET  /debug/pprof/...  runtime profiles (when the wrapped
//	                controller's PprofOps is set, e.g. via Configure)
func (s *Standby) OpsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", s.reg.Handler())
	if s.ctrl.PprofOps {
		mountPprof(mux)
	}
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		doc := struct {
			Status
			Standby StandbyStatus `json:"standby"`
		}{s.ctrl.StatusReport(), s.Status()}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc)
	})
	mux.HandleFunc("/promote", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, `{"error":"method not allowed"}`, http.StatusMethodNotAllowed)
			return
		}
		s.Promote()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(s.Status())
	})
	return mux
}

// ServeOps starts the standby's operations HTTP server on ln. It
// returns immediately; Close shuts it down.
func (s *Standby) ServeOps(ln net.Listener) {
	srv := &http.Server{Handler: s.OpsHandler(), ReadHeaderTimeout: 5 * time.Second}
	s.mu.Lock()
	s.opsSrv = srv
	s.mu.Unlock()
	go func() { _ = srv.Serve(ln) }()
}

// Close shuts the standby down: the leader session, the ops server,
// and the wrapped controller (sealing its journals).
func (s *Standby) Close() {
	s.mu.Lock()
	conn := s.conn
	s.conn = nil
	srv := s.opsSrv
	s.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	if srv != nil {
		srv.Close()
	}
	s.ctrl.Close()
}
