package netproto

// Native fuzzing of the wire decoder: every inbound frame — from any
// peer, at any negotiated version — funnels through Unmarshal, so it
// must never panic, never over-allocate on a hostile length field, and
// whatever it accepts must re-encode to a form it accepts again. CI
// runs a time-boxed `go test -fuzz` smoke on top of the seeded corpus.

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"secureangle/internal/defense"
	"secureangle/internal/fusion"
	"secureangle/internal/geom"
	"secureangle/internal/wifi"
)

// fuzzSeeds returns one marshalled body per frame kind and version
// form this build speaks — Hello v1/v2+, Report, ReportBatch, Welcome,
// Ping, Alert v1/v2/v3, Query v2/v3, Tracks, Threats, Directive.
func fuzzSeeds() [][]byte {
	mac := wifi.Addr{0x66, 0, 0, 0, 0, 5}
	dir := defense.Directive{
		MAC: mac, Action: defense.ActionNullSteer,
		From: defense.StateMonitor, To: defense.StateQuarantine,
		Reporter: "ap1", BearingDeg: 60, HasBearing: true,
		Pos: geom.Point{X: 3, Y: 4}, HasPos: true,
		Score: 5, Distance: 0.9, Threshold: 0.12, Stage: "spoofcheck",
		TTL: 10 * time.Minute,
	}
	return [][]byte{
		MarshalHello(Hello{Name: "ap1", Pos: geom.Point{X: 1, Y: 2}}),                   // v1 form
		MarshalHello(Hello{Name: "ap1", Pos: geom.Point{X: 1, Y: 2}, Version: ProtoV2}), // versioned form
		MarshalHello(Hello{Name: "", Pos: geom.Point{}, Version: ProtoV3}),              // observer
		MarshalHello(Hello{Name: "ap1", Pos: geom.Point{X: 1, Y: 2}, Version: ProtoV4,
			Token: "deadbeefdeadbeefdeadbeefdeadbeef"}), // enrolled v4 form
		MarshalHello(Hello{Name: "ap1", Pos: geom.Point{X: 1, Y: 2}, Version: ProtoV4}), // v4, tokenless
		MarshalWelcome(Welcome{Version: ProtoV4, Status: WelcomeAuthRejected}),          // v4 rejection
		MarshalReport(Report{APName: "ap1", MAC: mac, BearingDeg: 42.5, SeqNo: 7}),      // sig-less report
		MarshalReportBatch([]Report{{APName: "a", MAC: mac, SeqNo: 1}, {APName: "b"}}),  // batch
		MarshalWelcome(Welcome{Version: ProtoV2}),                                       //
		MarshalPing(), //
		marshalAlertV(Alert{APName: "ap1", MAC: mac, Distance: 0.9}, ProtoV1),           // v1 alert
		marshalAlertV(Alert{APName: "ap1", MAC: mac, Stage: "spoofcheck"}, ProtoV2),     // v2 alert
		MarshalAlert(Alert{APName: "ap1", MAC: mac, Threshold: 0.12, HasBearing: true}), // v3 alert
		MarshalQuery(Query{All: true, ID: 9}),                                           // v2 query (KindTracks)
		MarshalQuery(Query{MAC: mac, ID: 10, Kind: KindThreats}),                        // v3 query
		MarshalTracks(Tracks{ID: 3, More: true, States: []fusion.TrackState{{MAC: mac, Fixes: 2, Updated: time.Unix(5, 0)}}}),
		MarshalThreats(Threats{ID: 4, States: []defense.ClientThreat{{MAC: mac, State: defense.StateQuarantine, LastAP: "ap1", Since: time.Unix(5, 0), Updated: time.Unix(6, 0)}}}),
		MarshalDirective(Directive{Directive: dir}),
		MarshalDirective(Directive{Directive: dir, Ack: true}),
		{},                // empty body
		{0xff},            // unknown type
		{TypeHello, 0xff}, // truncated
	}
}

// remarshal re-encodes a decoded message in this build's highest wire
// form (the re-decode target).
func remarshal(msg any) ([]byte, bool) {
	switch m := msg.(type) {
	case Hello:
		return MarshalHello(m), true
	case Welcome:
		return MarshalWelcome(m), true
	case Ping:
		return MarshalPing(), true
	case Report:
		return MarshalReport(m), true
	case ReportBatch:
		return MarshalReportBatch(m), true
	case Alert:
		return MarshalAlert(m), true
	case Query:
		return MarshalQuery(m), true
	case Tracks:
		return MarshalTracks(m), true
	case Threats:
		return MarshalThreats(m), true
	case Directive:
		return MarshalDirective(m), true
	default:
		return nil, false
	}
}

func FuzzUnmarshal(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		msg, err := Unmarshal(body)
		if err != nil {
			return // malformed input rejected — the contract
		}
		// Round-trip property: whatever decodes must re-encode (the
		// re-encode normalises to the newest version form) to a body
		// that decodes again, and that second decode must re-encode to
		// the SAME bytes — a fixed point after one normalisation. Bytes
		// are the comparison surface because struct equality is wrong
		// for NaN floats and for time.Time wall/monotonic split.
		enc, ok := remarshal(msg)
		if !ok {
			t.Fatalf("decoded unknown message type %T", msg)
		}
		msg2, err := Unmarshal(enc)
		if err != nil {
			t.Fatalf("re-encoded %T does not decode: %v\ninput: %x\nre-encoded: %x", msg, err, body, enc)
		}
		if reflect.TypeOf(msg2) != reflect.TypeOf(msg) {
			t.Fatalf("re-decode changed type: %T -> %T", msg, msg2)
		}
		enc2, ok := remarshal(msg2)
		if !ok {
			t.Fatalf("re-decoded unknown message type %T", msg2)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("normalised form is not a fixed point for %T:\n%x\nvs\n%x", msg, enc, enc2)
		}
	})
}
