package netproto

import (
	"encoding/binary"
	"math"
	"time"

	"secureangle/internal/defense"
	"secureangle/internal/geom"
	"secureangle/internal/journal"
	"secureangle/internal/trace"
	"secureangle/internal/wifi"
)

// The v3 countermeasure exchange, the wire half of the closed defense
// loop: the controller's defense engine emits typed directives
// (quarantine / null-steer / release) which are broadcast to every v3
// agent as TypeDirective frames; agents apply them (core.ApplyDirective)
// and report the applied countermeasure back as an acknowledgement frame
// of the same type. An agent may also send an unacknowledged
// ActionAllow directive to request an operator release
// (Agent.SendRelease — the `secureangle defense -release` CLI path).
//
// Both directions are v3-gated: the controller never enqueues a
// TypeDirective frame on a session that negotiated v1 or v2 (those
// fleets still receive the legacy Alert broadcast, encoded at their
// version, when a client enters quarantine), and the agent-side
// senders refuse with ErrRequiresV3.

// Directive is the wire form of one defense countermeasure order: the
// engine's typed directive plus the acknowledgement flag distinguishing
// controller orders (Ack false, controller -> AP) from applied-
// countermeasure reports (Ack true, AP -> controller; Reporter names
// the applying AP).
type Directive struct {
	defense.Directive
	Ack bool
}

// directive wire flag bits.
const (
	directiveFlagHasPos     = 1 << 0
	directiveFlagAck        = 1 << 1
	directiveFlagHasBearing = 1 << 2
)

// MarshalDirective encodes a Directive message body in the highest
// wire form this build speaks.
func MarshalDirective(d Directive) []byte {
	return marshalDirectiveV(d, ProtoVersion)
}

// marshalDirectiveV encodes a Directive for a session at the given
// negotiated version: v5 appends the trailing trace ID, v3/v4 keep
// their exact bytes.
func marshalDirectiveV(d Directive, version uint16) []byte {
	b := []byte{TypeDirective, 0}
	if d.HasPos {
		b[1] |= directiveFlagHasPos
	}
	if d.Ack {
		b[1] |= directiveFlagAck
	}
	if d.HasBearing {
		b[1] |= directiveFlagHasBearing
	}
	b = append(b, byte(d.Action), byte(d.From), byte(d.To))
	b = append(b, d.MAC[:]...)
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(d.BearingDeg))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(d.Pos.X))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(d.Pos.Y))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(d.Score))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(d.Distance))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(d.Threshold))
	b = binary.BigEndian.AppendUint64(b, uint64(d.TTL))
	b = writeString(b, d.Reporter)
	b = writeString(b, d.Stage)
	if version >= ProtoV5 {
		b = binary.BigEndian.AppendUint64(b, d.Trace)
	}
	return b
}

// directiveFixedWire is the byte length of a Directive body between the
// flags byte and the trailing strings.
const directiveFixedWire = 3 + 6 + 7*8

func unmarshalDirective(rest []byte) (Directive, error) {
	if len(rest) < 1+directiveFixedWire {
		return Directive{}, ErrBadMessage
	}
	var d Directive
	flags := rest[0]
	d.HasPos = flags&directiveFlagHasPos != 0
	d.Ack = flags&directiveFlagAck != 0
	d.HasBearing = flags&directiveFlagHasBearing != 0
	d.Action = defense.Action(rest[1])
	d.From = defense.State(rest[2])
	d.To = defense.State(rest[3])
	copy(d.MAC[:], rest[4:10])
	rest = rest[10:]
	d.BearingDeg = math.Float64frombits(binary.BigEndian.Uint64(rest[0:8]))
	d.Pos = geom.Point{
		X: math.Float64frombits(binary.BigEndian.Uint64(rest[8:16])),
		Y: math.Float64frombits(binary.BigEndian.Uint64(rest[16:24])),
	}
	d.Score = math.Float64frombits(binary.BigEndian.Uint64(rest[24:32]))
	d.Distance = math.Float64frombits(binary.BigEndian.Uint64(rest[32:40]))
	d.Threshold = math.Float64frombits(binary.BigEndian.Uint64(rest[40:48]))
	d.TTL = time.Duration(binary.BigEndian.Uint64(rest[48:56]))
	rest = rest[56:]
	var err error
	if d.Reporter, rest, err = readString(rest); err != nil {
		return Directive{}, err
	}
	if d.Stage, rest, err = readString(rest); err != nil {
		return Directive{}, err
	}
	switch len(rest) {
	case 0: // v3/v4 form
	case 8: // v5: trailing trace ID
		d.Trace = binary.BigEndian.Uint64(rest)
	default:
		return Directive{}, ErrBadMessage
	}
	return d, nil
}

// --- Controller side ---

// emitDirective is the defense engine's Emit sink: broadcast the
// directive to every v3 session, and mirror quarantine entries as
// Alert broadcasts to every session (per-version encoding) — v1/v2
// fleets cannot decode TypeDirective but still learn a MAC went bad,
// and Alerts() consumers keep their pre-directive notification
// surface.
func (c *Controller) emitDirective(d defense.Directive) {
	// A directive re-derived during journal recovery is history: the
	// journal already holds it, and no AP is connected yet to receive
	// it (reconnecting APs get the surviving quarantines as resume
	// frames from startBroadcaster instead).
	if c.recovering.Load() {
		return
	}
	c.journalAppend(d.MAC, journal.RecDirective, journal.EncodeDirective(d))
	c.noteDirectiveSent(d.MAC)
	// A directive is the incident the trace layer exists for: retain its
	// trace unconditionally and mark the fan-out point in the timeline.
	c.traceSpan(trace.StageDirective, d.Trace, d.MAC, "controller", 0)
	c.tracer().Retain(d.Trace)
	// Two directive encodings: v3/v4 sessions must not see the trailing
	// trace ID their decoders reject.
	frameV5 := marshalDirectiveV(Directive{Directive: d}, ProtoV5)
	frameV3 := marshalDirectiveV(Directive{Directive: d}, ProtoV3)
	entering := d.To == defense.StateQuarantine && d.From != defense.StateQuarantine
	var legacy Alert
	if entering {
		legacy = Alert{
			APName: "controller", MAC: d.MAC, Distance: d.Distance,
			Threshold: d.Threshold, Stage: d.Stage,
			BearingDeg: d.BearingDeg, HasBearing: d.HasBearing, Trace: d.Trace,
		}
		c.logf("controller: quarantining mac=%s reporter=%s score=%.2f action=%s trace=%016x", d.MAC, d.Reporter, d.Score, d.Action, d.Trace)
	}
	c.quar.mu.Lock()
	defer c.quar.mu.Unlock()
	for name, ac := range c.quar.conns {
		if entering {
			select {
			case ac.ch <- marshalAlertV(legacy, ac.version):
			default:
				c.logf("controller: broadcast queue to %s full", name)
			}
		}
		if ac.version >= ProtoV3 {
			frame := frameV3
			if ac.version >= ProtoV5 {
				frame = frameV5
			}
			select {
			case ac.ch <- frame:
			default:
				c.logf("controller: directive queue to %s full", name)
			}
		}
	}
}

// handleDirective processes an inbound Directive frame from an agent:
// acknowledgement frames record the applied countermeasure; an
// unacknowledged ActionAllow is an operator release request. Anything
// else from an agent is ignored (APs do not order countermeasures).
func (c *Controller) handleDirective(d Directive, apName string) {
	if d.Ack {
		c.directiveAcks.Add(1)
		c.noteDirectiveAck(d.MAC, apName)
		c.traceSpan(trace.StageAck, d.Trace, d.MAC, apName, 0)
		c.tracer().Retain(d.Trace)
		c.journalAppend(d.MAC, journal.RecAck, journal.EncodeAck(journal.AckEvent{AP: apName, Directive: d.Directive}))
		c.logf("controller: ap=%s applied %s mac=%s bearing=%.1f trace=%016x", apName, d.Action, d.MAC, d.BearingDeg, d.Trace)
		return
	}
	if d.Action == defense.ActionAllow {
		c.logf("controller: release of %s requested by %s", d.MAC, apName)
		c.releaseFrom(d.MAC, apName)
		return
	}
	c.logf("controller: directive %s from %s ignored (agents cannot order countermeasures)", d.Action, apName)
}

// --- Agent side ---

// Directives delivers controller countermeasure orders through the
// agent's shared background reader (Alerts/TrackReplies feed off the
// same reader; directives read before this call are parked, bounded,
// and flushed to the subscriber). The channel closes when the
// connection drops. Keep draining it once subscribed.
func (a *Agent) Directives() <-chan Directive {
	a.startReader()
	a.pendMu.Lock()
	if !a.readerClosed {
		for _, d := range a.pendDirectives {
			a.directives <- d
		}
	}
	a.pendDirectives = nil
	a.wantDirectives.Store(true)
	a.pendMu.Unlock()
	return a.directives
}

// deliverDirective hands one controller directive to the Directives
// subscriber, or parks it (bounded, oldest dropped) until someone
// subscribes — mirroring deliverAlert.
func (a *Agent) deliverDirective(d Directive) {
	a.pendMu.Lock()
	if !a.wantDirectives.Load() {
		if len(a.pendDirectives) >= cap(a.directives) {
			a.pendDirectives = a.pendDirectives[1:]
		}
		a.pendDirectives = append(a.pendDirectives, d)
		a.pendMu.Unlock()
		return
	}
	a.pendMu.Unlock()
	a.directives <- d
}

// SendDirectiveAck reports an applied countermeasure back to the
// controller: the directive as applied, with Reporter naming this AP.
// Protocol v3 only.
func (a *Agent) SendDirectiveAck(d defense.Directive) error {
	if a.Version() < ProtoV3 {
		return ErrRequiresV3
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.writeBody(marshalDirectiveV(Directive{Directive: d, Ack: true}, a.Version()))
}

// SendRelease asks the controller for an operator release of mac — the
// wire face of Controller.Release. Protocol v3 only.
func (a *Agent) SendRelease(mac wifi.Addr) error {
	if a.Version() < ProtoV3 {
		return ErrRequiresV3
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.writeBody(marshalDirectiveV(Directive{
		Directive: defense.Directive{MAC: mac, Action: defense.ActionAllow, Reporter: "operator"},
	}, a.Version()))
}
