package netproto

// The controller's flight recorder (see package journal): WithJournal
// attaches a durable event journal, recovers state from it, and from
// then on every decision-relevant event — reports at ingest, spoof
// alerts, fused decisions, directives, acks, operator releases — is
// appended as it happens, with the fusion and defense engines
// snapshotted on a timer and at shutdown. A controller restarted over
// the same directory resumes its live quarantines instead of handing
// every quarantined attacker a free re-entry window as AP leases
// expire.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"time"

	"secureangle/internal/defense"
	"secureangle/internal/fusion"
	"secureangle/internal/journal"
)

// DefaultSnapshotInterval is the journal snapshot cadence when
// Controller.SnapshotInterval is zero.
const DefaultSnapshotInterval = 30 * time.Second

// Controller snapshot framing: the journal's snapshot file holds both
// engines' codecs, length-prefixed.
const (
	ctrlSnapMagic   = "SACS" // SecureAngle Controller Snapshot
	ctrlSnapVersion = 1
)

// WithJournal attaches an open journal to the controller and recovers
// from it: the latest snapshot (if any) is restored into the fusion and
// defense engines, and the WAL tail after it is re-applied with the
// engines' clock pinned to the recorded timestamps, so decay, pending
// TTLs, and forced-decision deadlines replay exactly as they elapsed.
// Call it after setting the tuning fields and before Serve — it builds
// both engines (freezing the tuning, the lazy-build contract) and
// returns an error on contradictory tuning or unreadable journal state.
//
// After WithJournal returns, every decision-relevant event is appended
// to the journal as it happens, snapshots are taken every
// SnapshotInterval and at Close, and APs that (re)connect receive the
// surviving quarantines as resume directives.
func (c *Controller) WithJournal(j *journal.Journal) error {
	if j == nil {
		return errors.New("netproto: WithJournal(nil)")
	}
	if c.jrnl.Load() != nil {
		return errors.New("netproto: journal already attached")
	}
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return errors.New("netproto: WithJournal on closed controller")
	}
	if err := c.fusionConfig().WithDefaults().Validate(); err != nil {
		return err
	}
	if err := c.defenseConfig().WithDefaults().Validate(); err != nil {
		return err
	}

	// Recovery runs with journaling suppressed (the events being
	// re-applied are already in the log) and the engine clock pinned to
	// recorded time. The journal is only attached once recovery
	// succeeds: a failed recovery must not leave live events appending
	// to (and shutdown snapshots overwriting) a directory whose history
	// the engines do not reflect, and the caller may retry with a
	// repaired journal.
	c.recovering.Store(true)
	defer func() {
		c.clk.Live()
		c.recovering.Store(false)
	}()

	fe := c.eng()
	de := c.defense()
	if fe == nil || de == nil {
		return errors.New("netproto: engines unavailable for recovery")
	}

	// Restore the newest readable snapshot generation, falling back to
	// its predecessor on pre-apply validation failure (that is why two
	// generations are retained) — a corrupt latest snapshot costs a
	// longer tail replay, not the recovery. Errors raised after
	// validation are fatal: the engines may hold partial state.
	var snapLSN uint64
	snaps, err := journal.Snapshots(j.Dir())
	if err != nil {
		return fmt.Errorf("netproto: journal snapshots: %w", err)
	}
	for i := len(snaps) - 1; i >= 0; i-- {
		r, err := journal.OpenSnapshot(j.Dir(), snaps[i])
		if err != nil {
			c.logf("controller: snapshot LSN %d unreadable (%v), trying older", snaps[i], err)
			continue
		}
		err = readControllerSnapshot(r, fe, de)
		r.Close()
		if err == nil {
			snapLSN = snaps[i]
			break
		}
		if !errors.Is(err, errSnapshotCorrupt) {
			return fmt.Errorf("netproto: journal snapshot LSN %d: %w", snaps[i], err)
		}
		c.logf("controller: snapshot LSN %d corrupt (%v), trying older", snaps[i], err)
	}

	last, n, err := journal.ApplyRecords(j.Dir(), snapLSN, journal.Hooks{
		Clock: &c.clk,
		Sweep: func(now time.Time) {
			fe.Sweep(now)
			de.Sweep(now)
		},
		Report: func(ev journal.ReportEvent) {
			fe.Ingest(fusion.Bearing{AP: ev.AP, APPos: ev.APPos, MAC: ev.MAC, Seq: ev.Seq, Deg: ev.BearingDeg})
		},
		Alert: func(v defense.SpoofVerdict) {
			de.ReportSpoof(v)
		},
		Release: func(ev journal.ReleaseEvent) {
			de.Release(ev.MAC)
		},
	})
	if err != nil {
		return fmt.Errorf("netproto: journal recovery: %w", err)
	}
	quarantined := len(de.Quarantined())
	c.logf("controller: journal recovery: snapshot through LSN %d, %d tail records re-applied (through LSN %d), %d client(s) still quarantined",
		snapLSN, n, last, quarantined)

	c.jrnl.Store(j)
	if c.snapshotsEnabled() {
		c.snapDone = make(chan struct{})
		c.snapWG.Add(1)
		go c.snapshotLoop(j)
	}
	return nil
}

// snapshotsEnabled resolves the snapshot cadence knob (negative
// disables snapshots, including the shutdown one).
func (c *Controller) snapshotsEnabled() bool { return c.SnapshotInterval >= 0 }

// snapshotInterval resolves the cadence (0 means the default).
func (c *Controller) snapshotInterval() time.Duration {
	if c.SnapshotInterval != 0 {
		return c.SnapshotInterval
	}
	return DefaultSnapshotInterval
}

func (c *Controller) snapshotLoop(j *journal.Journal) {
	defer c.snapWG.Done()
	t := time.NewTicker(c.snapshotInterval())
	defer t.Stop()
	for {
		select {
		case <-c.snapDone:
			return
		case <-c.ctx.Done():
			return
		case <-t.C:
			if err := c.saveSnapshot(j); err != nil && !errors.Is(err, journal.ErrClosed) {
				c.logf("controller: snapshot: %v", err)
			}
		}
	}
}

// SnapshotJournal forces a snapshot now (the timer path made callable —
// operational tooling and tests). No-op error when no journal is
// attached.
func (c *Controller) SnapshotJournal() error {
	j := c.jrnl.Load()
	if j == nil {
		return errors.New("netproto: no journal attached")
	}
	return c.saveSnapshot(j)
}

// saveSnapshot persists both engines' state through the journal's
// atomic snapshot path.
func (c *Controller) saveSnapshot(j *journal.Journal) error {
	fe := c.engine.Load()
	de := c.defenseLoaded()
	_, err := j.SaveSnapshot(func(w io.Writer) error {
		return writeControllerSnapshot(w, fe, de)
	})
	return err
}

// errSnapshotCorrupt marks a snapshot that failed validation BEFORE
// any engine state was touched — recovery may cleanly fall back to the
// previous generation. Errors past validation (a codec bug surfacing
// mid-apply) are fatal instead: the engines may hold partial state.
var errSnapshotCorrupt = errors.New("netproto: corrupt controller snapshot")

// writeControllerSnapshot frames both engine codecs (either may be nil
// before traffic) into one snapshot stream, CRC32C-sealed so recovery
// can reject bit rot or a torn write before applying anything.
func writeControllerSnapshot(w io.Writer, fe *fusion.Engine, de *defense.Engine) error {
	buf := bytes.NewBuffer(make([]byte, 0, 4096))
	buf.WriteString(ctrlSnapMagic)
	var ver [2]byte
	binary.BigEndian.PutUint16(ver[:], ctrlSnapVersion)
	buf.Write(ver[:])
	writeSection := func(save func(io.Writer) error) error {
		lenAt := buf.Len()
		buf.Write([]byte{0, 0, 0, 0})
		if save != nil {
			if err := save(buf); err != nil {
				return err
			}
		}
		binary.BigEndian.PutUint32(buf.Bytes()[lenAt:lenAt+4], uint32(buf.Len()-lenAt-4))
		return nil
	}
	var feSave, deSave func(io.Writer) error
	if fe != nil {
		feSave = fe.Save
	}
	if de != nil {
		deSave = de.Save
	}
	if err := writeSection(feSave); err != nil {
		return err
	}
	if err := writeSection(deSave); err != nil {
		return err
	}
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], crc32.Checksum(buf.Bytes(), crcTable))
	buf.Write(crc[:])
	_, err := w.Write(buf.Bytes())
	return err
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// readControllerSnapshot restores both engine codecs from a snapshot
// stream written by writeControllerSnapshot. The whole stream is read
// and CRC-validated before either engine is mutated; validation
// failures return errSnapshotCorrupt.
func readControllerSnapshot(r io.Reader, fe *fusion.Engine, de *defense.Engine) error {
	blob, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("%w: %v", errSnapshotCorrupt, err)
	}
	if len(blob) < 4+2+4+4+4 {
		return fmt.Errorf("%w: %d bytes", errSnapshotCorrupt, len(blob))
	}
	body, crc := blob[:len(blob)-4], binary.BigEndian.Uint32(blob[len(blob)-4:])
	if crc32.Checksum(body, crcTable) != crc {
		return fmt.Errorf("%w: checksum mismatch", errSnapshotCorrupt)
	}
	if string(body[:4]) != ctrlSnapMagic {
		return fmt.Errorf("%w: bad magic %q", errSnapshotCorrupt, body[:4])
	}
	if v := binary.BigEndian.Uint16(body[4:6]); v != ctrlSnapVersion {
		return fmt.Errorf("%w: unsupported version %d", errSnapshotCorrupt, v)
	}
	rest := body[6:]
	section := func() ([]byte, error) {
		if len(rest) < 4 {
			return nil, fmt.Errorf("%w: truncated section header", errSnapshotCorrupt)
		}
		n := binary.BigEndian.Uint32(rest[:4])
		rest = rest[4:]
		if uint64(len(rest)) < uint64(n) {
			return nil, fmt.Errorf("%w: truncated section", errSnapshotCorrupt)
		}
		s := rest[:n]
		rest = rest[n:]
		return s, nil
	}
	fuBlob, err := section()
	if err != nil {
		return err
	}
	deBlob, err := section()
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", errSnapshotCorrupt, len(rest))
	}
	// Validation passed: apply. Failures from here are fatal, not
	// fallback-able (see errSnapshotCorrupt).
	if len(fuBlob) > 0 {
		if err := fe.Restore(bytes.NewReader(fuBlob)); err != nil {
			return fmt.Errorf("fusion section: %w", err)
		}
	}
	if len(deBlob) > 0 {
		if err := de.Restore(bytes.NewReader(deBlob)); err != nil {
			return fmt.Errorf("defense section: %w", err)
		}
	}
	return nil
}

// journalAppend records one event when a journal is attached and the
// controller is not replaying history. Append failures are logged, not
// fatal: the controller keeps serving (degraded to in-memory) rather
// than dropping the fleet because a disk filled.
func (c *Controller) journalAppend(t journal.RecordType, data []byte) {
	j := c.jrnl.Load()
	if j == nil || c.recovering.Load() {
		return
	}
	if _, err := j.Append(journal.Record{Type: t, Data: data}); err != nil && !errors.Is(err, journal.ErrClosed) {
		c.logf("controller: journal append (%s): %v", t, err)
	}
}

// resumeFrames builds the frames a (re)connecting AP session must see
// to enforce the quarantines currently in force: v3 sessions get resume
// directives carrying a fresh lease TTL, older sessions the legacy
// Alert form. Ordered by MAC for determinism.
func (c *Controller) resumeFrames(version uint16) [][]byte {
	e := c.defenseLoaded()
	if e == nil {
		return nil
	}
	qs := e.Quarantined()
	if len(qs) == 0 {
		return nil
	}
	sort.Slice(qs, func(i, k int) bool {
		return bytes.Compare(qs[i].MAC[:], qs[k].MAC[:]) < 0
	})
	policy := c.DefensePolicy.WithDefaults()
	frames := make([][]byte, 0, len(qs))
	for _, st := range qs {
		if version >= ProtoV3 {
			d := defense.Directive{
				MAC:        st.MAC,
				Action:     st.Action,
				From:       defense.StateQuarantine,
				To:         defense.StateQuarantine,
				Reporter:   "resume",
				BearingDeg: st.BearingDeg,
				HasBearing: st.HasBearing,
				Pos:        st.Pos,
				HasPos:     st.HasPos,
				Score:      st.Score,
				Distance:   st.LastDistance,
				Threshold:  st.LastThreshold,
				Stage:      st.Stage,
			}
			if policy.QuarantineTTL > 0 {
				d.TTL = policy.QuarantineTTL
			}
			frames = append(frames, MarshalDirective(Directive{Directive: d}))
		} else {
			frames = append(frames, marshalAlertV(Alert{
				APName: "controller", MAC: st.MAC, Distance: st.LastDistance,
				Threshold: st.LastThreshold, Stage: st.Stage,
				BearingDeg: st.BearingDeg, HasBearing: st.HasBearing,
			}, version))
		}
	}
	return frames
}
