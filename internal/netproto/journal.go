package netproto

// The controller's flight recorder (see package journal): WithJournal /
// WithJournalDir attach durable event journals, recover state from
// them, and from then on every decision-relevant event — reports at
// ingest, spoof alerts, fused decisions, directives, acks, operator
// releases, enrollment mutations — is appended as it happens, with the
// engines snapshotted on a timer and at shutdown. A controller
// restarted over the same directory resumes its live quarantines
// instead of handing every quarantined attacker a free re-entry window
// as AP leases expire.
//
// A partitioned controller (Partitions > 1) keeps one journal per
// MAC-range partition under dir/p0..p{N-1}: each partition's stream is
// strictly ordered for its MACs, recoverable independently, and
// streamable to a standby without cross-partition coordination. The
// single-partition layout stays flat (the PR 5–7 on-disk format),
// so existing deployments recover unchanged.

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"secureangle/internal/defense"
	"secureangle/internal/fusion"
	"secureangle/internal/journal"
	"secureangle/internal/partition"
	"secureangle/internal/wifi"
)

// DefaultSnapshotInterval is the journal snapshot cadence when
// Controller.SnapshotInterval is zero.
const DefaultSnapshotInterval = 30 * time.Second

// Controller snapshot framing: the journal's snapshot file holds both
// engines' codecs, length-prefixed.
const (
	ctrlSnapMagic   = "SACS" // SecureAngle Controller Snapshot
	ctrlSnapVersion = 1
)

// journalSet is the per-partition journal vector, one *journal.Journal
// per MAC-range partition (length always equals the partition count).
type journalSet struct {
	js []*journal.Journal
}

// journals returns the attached journal vector (nil when none).
func (c *Controller) journals() []*journal.Journal {
	if js := c.jset.Load(); js != nil {
		return js.js
	}
	return nil
}

// WithJournal attaches one open journal to a single-partition
// controller and recovers from it — the PR 5 entry point, kept for the
// flat on-disk layout. Partitioned controllers use WithJournalDir.
func (c *Controller) WithJournal(j *journal.Journal) error {
	if j == nil {
		return errors.New("netproto: WithJournal(nil)")
	}
	if c.nParts() > 1 {
		return errors.New("netproto: WithJournal on a partitioned controller (use WithJournalDir)")
	}
	return c.attachJournals([]*journal.Journal{j})
}

// WithJournalDir opens (creating as needed) the controller's journal
// layout under dir and attaches it: a flat journal for a
// single-partition controller, dir/p0..p{N-1} for Partitions == N. The
// on-disk layout must match the configured partition count — a
// mismatch is refused rather than silently splitting or merging
// history (re-partitioning an existing journal is an offline
// migration, not a config change). opts applies to every partition's
// journal; zero fields take the package journal defaults.
func (c *Controller) WithJournalDir(dir string, opts journal.Options) error {
	n := c.nParts()
	flat, err := hasFlatSegments(dir)
	if err != nil {
		return err
	}
	onDisk, err := countPartDirs(dir)
	if err != nil {
		return err
	}
	if n == 1 {
		if onDisk > 0 {
			return fmt.Errorf("netproto: journal dir %s holds %d partition(s) but Partitions=1", dir, onDisk)
		}
		j, err := journal.Open(dir, opts)
		if err != nil {
			return err
		}
		if err := c.attachJournals([]*journal.Journal{j}); err != nil {
			j.Close()
			return err
		}
		return nil
	}
	if flat {
		return fmt.Errorf("netproto: journal dir %s holds a flat single-partition journal but Partitions=%d", dir, n)
	}
	if onDisk > n {
		return fmt.Errorf("netproto: journal dir %s holds %d partition(s) but Partitions=%d", dir, onDisk, n)
	}
	js := make([]*journal.Journal, n)
	for i := range js {
		j, err := journal.Open(filepath.Join(dir, fmt.Sprintf("p%d", i)), opts)
		if err != nil {
			for k := 0; k < i; k++ {
				js[k].Close()
			}
			return err
		}
		js[i] = j
	}
	if err := c.attachJournals(js); err != nil {
		for _, j := range js {
			j.Close()
		}
		return err
	}
	return nil
}

// hasFlatSegments reports whether dir directly contains WAL segments
// (the single-partition layout).
func hasFlatSegments(dir string) (bool, error) {
	m, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		return false, err
	}
	return len(m) > 0, nil
}

// countPartDirs counts contiguous p0, p1, … subdirectories of dir (the
// partitioned layout's width).
func countPartDirs(dir string) (int, error) {
	n := 0
	for {
		fi, err := os.Stat(filepath.Join(dir, fmt.Sprintf("p%d", n)))
		if err != nil {
			if os.IsNotExist(err) {
				return n, nil
			}
			return n, err
		}
		if !fi.IsDir() {
			return n, nil
		}
		n++
	}
}

// attachJournals recovers every partition from its journal and arms
// live journaling: per partition, the latest readable snapshot
// generation is restored into that partition's engines (falling back
// one generation on pre-apply validation failure), then the WAL tail
// after it is re-applied with the engines' clock pinned to the
// recorded timestamps, so decay, pending TTLs, and forced-decision
// deadlines replay exactly as they elapsed. Call it after setting the
// tuning fields and before Serve — it builds the engine set (freezing
// the tuning, the lazy-build contract) and returns an error on
// contradictory tuning or unreadable journal state; a failed recovery
// attaches nothing, so the caller may retry with a repaired journal.
//
// After it returns, every decision-relevant event is appended to its
// MAC's partition journal as it happens, snapshots are taken every
// SnapshotInterval and at Close, and APs that (re)connect receive the
// surviving quarantines as resume directives.
func (c *Controller) attachJournals(js []*journal.Journal) error {
	if c.jset.Load() != nil {
		return errors.New("netproto: journal already attached")
	}
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return errors.New("netproto: journal attach on closed controller")
	}
	if err := c.fusionConfig().WithDefaults().Validate(); err != nil {
		return err
	}
	if err := c.defenseConfig().WithDefaults().Validate(); err != nil {
		return err
	}

	// Recovery runs with journaling suppressed (the events being
	// re-applied are already in the log) and the engine clock pinned to
	// recorded time.
	c.recovering.Store(true)
	defer func() {
		c.clk.Live()
		c.recovering.Store(false)
	}()

	set := c.partsBuild()
	if set == nil {
		return errors.New("netproto: engines unavailable for recovery")
	}
	if set.N() != len(js) {
		return fmt.Errorf("netproto: %d journal(s) for %d partition(s)", len(js), set.N())
	}

	for i, j := range js {
		if err := c.recoverPartition(i, j, set); err != nil {
			return err
		}
	}
	c.logf("controller: journal recovery: %d partition(s), %d client(s) still quarantined",
		len(js), len(set.Quarantined()))

	c.jset.Store(&journalSet{js: js})
	if c.snapshotsEnabled() {
		c.snapDone = make(chan struct{})
		c.snapWG.Add(1)
		go c.snapshotLoop()
	}
	return nil
}

// recoverPartition restores one partition's engines from its journal:
// newest readable snapshot generation first (that is why two
// generations are retained — a corrupt latest snapshot costs a longer
// tail replay, not the recovery), then the WAL tail after it. Errors
// raised after snapshot validation are fatal: the engines may hold
// partial state.
func (c *Controller) recoverPartition(i int, j *journal.Journal, set *partition.Set) error {
	fe, de := set.At(i).Fusion, set.At(i).Defense
	var snapLSN uint64
	snaps, err := journal.Snapshots(j.Dir())
	if err != nil {
		return fmt.Errorf("netproto: journal snapshots p%d: %w", i, err)
	}
	for k := len(snaps) - 1; k >= 0; k-- {
		r, err := journal.OpenSnapshot(j.Dir(), snaps[k])
		if err != nil {
			c.logf("controller: p%d snapshot LSN %d unreadable (%v), trying older", i, snaps[k], err)
			continue
		}
		err = readControllerSnapshot(r, fe, de)
		r.Close()
		if err == nil {
			snapLSN = snaps[k]
			break
		}
		if !errors.Is(err, errSnapshotCorrupt) {
			return fmt.Errorf("netproto: journal snapshot p%d LSN %d: %w", i, snaps[k], err)
		}
		c.logf("controller: p%d snapshot LSN %d corrupt (%v), trying older", i, snaps[k], err)
	}

	last, n, err := journal.ApplyRecords(j.Dir(), snapLSN, c.partitionHooks(fe, de))
	if err != nil {
		return fmt.Errorf("netproto: journal recovery p%d: %w", i, err)
	}
	c.logf("controller: p%d recovery: snapshot through LSN %d, %d tail records re-applied (through LSN %d)",
		i, snapLSN, n, last)
	return nil
}

// partitionHooks routes replayed records into one partition's engines
// (and the controller-global token table). Shared by recovery and the
// standby's live apply path.
func (c *Controller) partitionHooks(fe *fusion.Engine, de *defense.Engine) journal.Hooks {
	return journal.Hooks{
		Clock: &c.clk,
		Sweep: func(now time.Time) {
			fe.Sweep(now)
			de.Sweep(now)
		},
		Report: func(ev journal.ReportEvent) {
			fe.Ingest(fusion.Bearing{AP: ev.AP, APPos: ev.APPos, MAC: ev.MAC, Seq: ev.Seq, Deg: ev.BearingDeg, Trace: ev.Trace})
		},
		Alert: func(v defense.SpoofVerdict) {
			de.ReportSpoof(v)
		},
		Release: func(ev journal.ReleaseEvent) {
			de.Release(ev.MAC)
		},
		Enroll: func(ev journal.EnrollEvent) {
			c.applyEnroll(ev)
		},
	}
}

// applyEnroll replays one enrollment mutation into the token table: a
// digest mints (or rotates) an AP's credential, an empty digest
// revokes it. Malformed digests are dropped — a journal from a newer
// hash would otherwise corrupt the table.
func (c *Controller) applyEnroll(ev journal.EnrollEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(ev.Digest) == 0 {
		delete(c.tokens, ev.Name)
		return
	}
	if len(ev.Digest) != sha256.Size || ev.Name == "" {
		return
	}
	if c.tokens == nil {
		c.tokens = make(map[string][sha256.Size]byte)
	}
	var d [sha256.Size]byte
	copy(d[:], ev.Digest)
	c.tokens[ev.Name] = d
}

// snapshotsEnabled resolves the snapshot cadence knob (negative
// disables snapshots, including the shutdown one).
func (c *Controller) snapshotsEnabled() bool { return c.SnapshotInterval >= 0 }

// snapshotInterval resolves the cadence (0 means the default).
func (c *Controller) snapshotInterval() time.Duration {
	if c.SnapshotInterval != 0 {
		return c.SnapshotInterval
	}
	return DefaultSnapshotInterval
}

func (c *Controller) snapshotLoop() {
	defer c.snapWG.Done()
	t := time.NewTicker(c.snapshotInterval())
	defer t.Stop()
	for {
		select {
		case <-c.snapDone:
			return
		case <-c.ctx.Done():
			return
		case <-t.C:
			for i, j := range c.journals() {
				if err := c.saveSnapshot(i, j); err != nil && !errors.Is(err, journal.ErrClosed) {
					c.logf("controller: snapshot p%d: %v", i, err)
				}
			}
		}
	}
}

// SnapshotJournal forces a snapshot of every partition now (the timer
// path made callable — operational tooling and tests). No-op error
// when no journal is attached.
func (c *Controller) SnapshotJournal() error {
	js := c.journals()
	if js == nil {
		return errors.New("netproto: no journal attached")
	}
	for i, j := range js {
		if err := c.saveSnapshot(i, j); err != nil {
			return err
		}
	}
	return nil
}

// saveSnapshot persists one partition's engine state through its
// journal's atomic snapshot path.
func (c *Controller) saveSnapshot(i int, j *journal.Journal) error {
	var fe *fusion.Engine
	var de *defense.Engine
	if set := c.partsLoaded(); set != nil && i < set.N() {
		p := set.At(i)
		fe, de = p.Fusion, p.Defense
	}
	_, err := j.SaveSnapshot(func(w io.Writer) error {
		return writeControllerSnapshot(w, fe, de)
	})
	return err
}

// errSnapshotCorrupt marks a snapshot that failed validation BEFORE
// any engine state was touched — recovery may cleanly fall back to the
// previous generation. Errors past validation (a codec bug surfacing
// mid-apply) are fatal instead: the engines may hold partial state.
var errSnapshotCorrupt = errors.New("netproto: corrupt controller snapshot")

// writeControllerSnapshot frames both engine codecs (either may be nil
// before traffic) into one snapshot stream, CRC32C-sealed so recovery
// can reject bit rot or a torn write before applying anything.
func writeControllerSnapshot(w io.Writer, fe *fusion.Engine, de *defense.Engine) error {
	buf := bytes.NewBuffer(make([]byte, 0, 4096))
	buf.WriteString(ctrlSnapMagic)
	var ver [2]byte
	binary.BigEndian.PutUint16(ver[:], ctrlSnapVersion)
	buf.Write(ver[:])
	writeSection := func(save func(io.Writer) error) error {
		lenAt := buf.Len()
		buf.Write([]byte{0, 0, 0, 0})
		if save != nil {
			if err := save(buf); err != nil {
				return err
			}
		}
		binary.BigEndian.PutUint32(buf.Bytes()[lenAt:lenAt+4], uint32(buf.Len()-lenAt-4))
		return nil
	}
	var feSave, deSave func(io.Writer) error
	if fe != nil {
		feSave = fe.Save
	}
	if de != nil {
		deSave = de.Save
	}
	if err := writeSection(feSave); err != nil {
		return err
	}
	if err := writeSection(deSave); err != nil {
		return err
	}
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], crc32.Checksum(buf.Bytes(), crcTable))
	buf.Write(crc[:])
	_, err := w.Write(buf.Bytes())
	return err
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// readControllerSnapshot restores both engine codecs from a snapshot
// stream written by writeControllerSnapshot. The whole stream is read
// and CRC-validated before either engine is mutated; validation
// failures return errSnapshotCorrupt.
func readControllerSnapshot(r io.Reader, fe *fusion.Engine, de *defense.Engine) error {
	blob, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("%w: %v", errSnapshotCorrupt, err)
	}
	if len(blob) < 4+2+4+4+4 {
		return fmt.Errorf("%w: %d bytes", errSnapshotCorrupt, len(blob))
	}
	body, crc := blob[:len(blob)-4], binary.BigEndian.Uint32(blob[len(blob)-4:])
	if crc32.Checksum(body, crcTable) != crc {
		return fmt.Errorf("%w: checksum mismatch", errSnapshotCorrupt)
	}
	if string(body[:4]) != ctrlSnapMagic {
		return fmt.Errorf("%w: bad magic %q", errSnapshotCorrupt, body[:4])
	}
	if v := binary.BigEndian.Uint16(body[4:6]); v != ctrlSnapVersion {
		return fmt.Errorf("%w: unsupported version %d", errSnapshotCorrupt, v)
	}
	rest := body[6:]
	section := func() ([]byte, error) {
		if len(rest) < 4 {
			return nil, fmt.Errorf("%w: truncated section header", errSnapshotCorrupt)
		}
		n := binary.BigEndian.Uint32(rest[:4])
		rest = rest[4:]
		if uint64(len(rest)) < uint64(n) {
			return nil, fmt.Errorf("%w: truncated section", errSnapshotCorrupt)
		}
		s := rest[:n]
		rest = rest[n:]
		return s, nil
	}
	fuBlob, err := section()
	if err != nil {
		return err
	}
	deBlob, err := section()
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", errSnapshotCorrupt, len(rest))
	}
	// Validation passed: apply. Failures from here are fatal, not
	// fallback-able (see errSnapshotCorrupt).
	if len(fuBlob) > 0 {
		if err := fe.Restore(bytes.NewReader(fuBlob)); err != nil {
			return fmt.Errorf("fusion section: %w", err)
		}
	}
	if len(deBlob) > 0 {
		if err := de.Restore(bytes.NewReader(deBlob)); err != nil {
			return fmt.Errorf("defense section: %w", err)
		}
	}
	return nil
}

// journalAppend records one event in its MAC's partition journal, when
// journals are attached and the controller is not replaying history.
// Append failures are logged, not fatal: the controller keeps serving
// (degraded to in-memory) rather than dropping the fleet because a
// disk filled.
func (c *Controller) journalAppend(mac wifi.Addr, t journal.RecordType, data []byte) {
	js := c.journals()
	if js == nil {
		return
	}
	c.journalAppendTo(partition.IndexFor(mac, len(js)), t, data)
}

// journalAppendTo records one event in an explicit partition's journal
// — the MAC-less events' path (enrollment mutations go to partition 0).
func (c *Controller) journalAppendTo(p int, t journal.RecordType, data []byte) {
	js := c.journals()
	if js == nil || c.recovering.Load() {
		return
	}
	if p < 0 || p >= len(js) {
		p = 0
	}
	if _, err := js[p].Append(journal.Record{Type: t, Data: data}); err != nil && !errors.Is(err, journal.ErrClosed) {
		c.logf("controller: journal append p%d (%s): %v", p, t, err)
	}
}

// resumeFrames builds the frames a (re)connecting AP session must see
// to enforce the quarantines currently in force: v3 sessions get resume
// directives carrying a fresh lease TTL, older sessions the legacy
// Alert form. Ordered by MAC for determinism.
func (c *Controller) resumeFrames(version uint16) [][]byte {
	set := c.partsLoaded()
	if set == nil {
		return nil
	}
	qs := set.Quarantined()
	if len(qs) == 0 {
		return nil
	}
	sort.Slice(qs, func(i, k int) bool {
		return bytes.Compare(qs[i].MAC[:], qs[k].MAC[:]) < 0
	})
	policy := c.DefensePolicy.WithDefaults()
	frames := make([][]byte, 0, len(qs))
	for _, st := range qs {
		if version >= ProtoV3 {
			d := defense.Directive{
				MAC:        st.MAC,
				Action:     st.Action,
				From:       defense.StateQuarantine,
				To:         defense.StateQuarantine,
				Reporter:   "resume",
				BearingDeg: st.BearingDeg,
				HasBearing: st.HasBearing,
				Pos:        st.Pos,
				HasPos:     st.HasPos,
				Score:      st.Score,
				Distance:   st.LastDistance,
				Threshold:  st.LastThreshold,
				Stage:      st.Stage,
				Trace:      st.Trace,
			}
			if policy.QuarantineTTL > 0 {
				d.TTL = policy.QuarantineTTL
			}
			frames = append(frames, marshalDirectiveV(Directive{Directive: d}, version))
		} else {
			frames = append(frames, marshalAlertV(Alert{
				APName: "controller", MAC: st.MAC, Distance: st.LastDistance,
				Threshold: st.LastThreshold, Stage: st.Stage,
				BearingDeg: st.BearingDeg, HasBearing: st.HasBearing,
				Trace: st.Trace,
			}, version))
		}
	}
	return frames
}
