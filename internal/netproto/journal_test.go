package netproto

import (
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"secureangle/internal/defense"
	"secureangle/internal/geom"
	"secureangle/internal/journal"
	"secureangle/internal/locate"
	"secureangle/internal/wifi"
)

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestJournalCrashRecoveryEndToEnd is the acceptance path: quarantine a
// client end to end over TCP, hard-stop the controller (snapshots
// disabled, so nothing survives but the WAL), restart a fresh
// controller over the same journal directory, and verify the
// quarantine survived, the lease is re-broadcast to a reconnecting AP,
// and normal decay release still completes.
func TestJournalCrashRecoveryEndToEnd(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	dir := t.TempDir()
	fence := &locate.Fence{Boundary: geom.Rect(0, 0, 24, 16)}
	policy := defense.Policy{
		HalfLife:      700 * time.Millisecond,
		MinQuarantine: time.Millisecond,
	}
	ap1Pos, ap2Pos := geom.Point{X: 0, Y: 0}, geom.Point{X: 24, Y: 0}
	attacker := wifi.MustParseAddr("66:00:00:00:00:01")
	client := wifi.MustParseAddr("02:00:00:00:00:05")

	// --- First life: record an incident. ---
	a := NewController(fence)
	a.DefensePolicy = policy
	a.SnapshotInterval = -1 // hard-stop semantics: recovery must come from the WAL alone
	j, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.WithJournal(j); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	a.Serve(ln)

	ag1, err := DialContext(ctx, ln.Addr().String(), Hello{Name: "ap1", Pos: ap1Pos})
	if err != nil {
		t.Fatal(err)
	}
	ag2, err := DialContext(ctx, ln.Addr().String(), Hello{Name: "ap2", Pos: ap2Pos})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)

	// A fused fence decision for a benign client (exercises report
	// records) ...
	target := geom.Point{X: 12, Y: 8}
	if err := ag1.Send(Report{APName: "ap1", MAC: client, SeqNo: 1, BearingDeg: geom.BearingDeg(ap1Pos, target)}); err != nil {
		t.Fatal(err)
	}
	if err := ag2.Send(Report{APName: "ap2", MAC: client, SeqNo: 1, BearingDeg: geom.BearingDeg(ap2Pos, target)}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "fused decision", func() bool {
		_, ok := a.Track(client)
		return ok
	})
	// ... then the incident: a scored spoof alert quarantines the
	// attacker fleet-wide.
	if err := ag1.SendAlertDetail(Alert{
		APName: "ap1", MAC: attacker, Distance: 0.9, Threshold: 0.12,
		BearingDeg: 60, HasBearing: true, Stage: "spoofcheck",
	}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "quarantine", func() bool { return len(a.Quarantined()) == 1 })

	// Hard stop: close connections and the controller. With snapshots
	// disabled nothing but the event log survives.
	ag1.Close()
	ag2.Close()
	a.Close()

	// --- Second life: recover over the same directory. ---
	b := NewController(fence)
	b.DefensePolicy = policy
	b.SnapshotInterval = -1
	j2, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.WithJournal(j2); err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	q := b.Quarantined()
	if len(q) != 1 || q[0].MAC != attacker {
		t.Fatalf("quarantine did not survive the restart: %+v", q)
	}
	if th, ok := b.Threat(attacker); !ok || th.State != defense.StateQuarantine || th.LastAP != "ap1" || th.Stage != "spoofcheck" {
		t.Fatalf("restored threat state = %+v (ok=%v)", th, ok)
	}
	if ts, ok := b.Track(client); !ok || ts.Fixes != 1 {
		t.Fatalf("fusion track did not survive the restart: %+v (ok=%v)", ts, ok)
	}

	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b.Serve(ln2)
	ag3, err := DialContext(ctx, ln2.Addr().String(), Hello{Name: "ap2", Pos: ap2Pos})
	if err != nil {
		t.Fatal(err)
	}
	defer ag3.Close()
	directives := ag3.Directives()

	// The reconnecting AP is re-armed: the surviving quarantine arrives
	// as a resume directive carrying a fresh lease TTL.
	select {
	case d, ok := <-directives:
		if !ok {
			t.Fatal("directive channel closed awaiting resume")
		}
		if d.MAC != attacker || d.Action != defense.ActionQuarantine || d.Reporter != "resume" {
			t.Fatalf("resume directive = %+v", d)
		}
		if d.TTL <= 0 {
			t.Errorf("resume directive carries no lease TTL: %+v", d)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no resume directive within 10s")
	}

	// Normal decay release still completes on the recovered state.
	select {
	case d, ok := <-directives:
		if !ok {
			t.Fatal("directive channel closed awaiting release")
		}
		if d.MAC != attacker || d.Action != defense.ActionAllow || d.Reporter != "decay" {
			t.Fatalf("expected decay release, got %+v", d)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("recovered quarantine never decayed to release")
	}
	waitFor(t, 5*time.Second, "quarantine list to empty", func() bool { return len(b.Quarantined()) == 0 })
}

// TestJournalSnapshotPlusTailRecovery exercises the combined path: a
// snapshot mid-run plus WAL-tail events after it, both restored.
func TestJournalSnapshotPlusTailRecovery(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	dir := t.TempDir()
	fence := &locate.Fence{Boundary: geom.Rect(0, 0, 24, 16)}
	macX := wifi.MustParseAddr("66:00:00:00:00:11")
	macY := wifi.MustParseAddr("66:00:00:00:00:22")

	a := NewController(fence)
	a.SnapshotInterval = -1 // only the explicit snapshot below
	j, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.WithJournal(j); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	a.Serve(ln)
	ag, err := DialContext(ctx, ln.Addr().String(), Hello{Name: "ap1", Pos: geom.Point{}})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)

	// Quarantine X, snapshot, then quarantine Y in the tail.
	if err := ag.SendAlertDetail(Alert{APName: "ap1", MAC: macX, Distance: 0.9, Threshold: 0.12, Stage: "spoofcheck"}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "first quarantine", func() bool { return len(a.Quarantined()) == 1 })
	if err := a.SnapshotJournal(); err != nil {
		t.Fatal(err)
	}
	if err := ag.SendAlertDetail(Alert{APName: "ap1", MAC: macY, Distance: 0.8, Threshold: 0.12, Stage: "spoofcheck"}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "second quarantine", func() bool { return len(a.Quarantined()) == 2 })
	ag.Close()
	a.Close()

	b := NewController(fence)
	b.SnapshotInterval = -1
	j2, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.WithJournal(j2); err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	got := map[wifi.Addr]bool{}
	for _, st := range b.Quarantined() {
		got[st.MAC] = true
	}
	if !got[macX] || !got[macY] || len(got) != 2 {
		t.Fatalf("recovered quarantines = %v (want X from the snapshot AND Y from the tail)", got)
	}
	// Idempotence guard: the tail alert that raced the snapshot must not
	// have inflated counters into nonsense — Y's evidence is one flag.
	if th, ok := b.Threat(macY); !ok || th.Flags != 1 {
		t.Errorf("tail-recovered threat = %+v (ok=%v)", th, ok)
	}
}

// TestJournalRecordsEventStream verifies the live controller journals
// every decision-relevant event kind.
func TestJournalRecordsEventStream(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	dir := t.TempDir()
	fence := &locate.Fence{Boundary: geom.Rect(0, 0, 24, 16)}
	c := NewController(fence)
	j, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WithJournal(j); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c.Serve(ln)

	ap1Pos, ap2Pos := geom.Point{X: 0, Y: 0}, geom.Point{X: 24, Y: 0}
	ag1, err := DialContext(ctx, ln.Addr().String(), Hello{Name: "ap1", Pos: ap1Pos})
	if err != nil {
		t.Fatal(err)
	}
	defer ag1.Close()
	ag2, err := DialContext(ctx, ln.Addr().String(), Hello{Name: "ap2", Pos: ap2Pos})
	if err != nil {
		t.Fatal(err)
	}
	defer ag2.Close()
	directives := ag1.Directives()
	time.Sleep(50 * time.Millisecond)

	mac := wifi.MustParseAddr("66:00:00:00:00:33")
	target := geom.Point{X: 12, Y: 20} // outside: a fence drop decision
	ag1.Send(Report{APName: "ap1", MAC: mac, SeqNo: 1, BearingDeg: geom.BearingDeg(ap1Pos, target)})
	ag2.Send(Report{APName: "ap2", MAC: mac, SeqNo: 1, BearingDeg: geom.BearingDeg(ap2Pos, target)})
	if err := ag1.SendAlertDetail(Alert{APName: "ap1", MAC: mac, Distance: 0.9, Threshold: 0.12, Stage: "spoofcheck"}); err != nil {
		t.Fatal(err)
	}
	var quarDirective defense.Directive
	select {
	case d := <-directives:
		quarDirective = d.Directive
	case <-time.After(10 * time.Second):
		t.Fatal("no directive broadcast")
	}
	if err := ag1.SendDirectiveAck(quarDirective); err != nil {
		t.Fatal(err)
	}
	if err := ag2.SendRelease(mac); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "release to land", func() bool { return len(c.Quarantined()) == 0 })
	c.Close()

	counts := map[journal.RecordType]int{}
	if err := journal.ReadRecords(dir, 0, func(rec journal.Record) error {
		counts[rec.Type]++
		if _, err := journal.DecodeEvent(rec); err != nil {
			t.Errorf("LSN %d (%s): %v", rec.LSN, rec.Type, err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if counts[journal.RecReport] != 2 || counts[journal.RecAlert] != 1 ||
		counts[journal.RecDecision] < 1 || counts[journal.RecDirective] < 2 ||
		counts[journal.RecAck] != 1 || counts[journal.RecRelease] != 1 {
		t.Errorf("journalled event counts = %v", counts)
	}
}

// TestJournalCorruptSnapshotFallsBack pins the two-generation design:
// recovery rejects a bit-rotted latest snapshot by CRC before touching
// engine state and falls back to the predecessor plus a longer WAL
// tail.
func TestJournalCorruptSnapshotFallsBack(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	dir := t.TempDir()
	fence := &locate.Fence{Boundary: geom.Rect(0, 0, 24, 16)}
	macX := wifi.MustParseAddr("66:00:00:00:00:44")
	macY := wifi.MustParseAddr("66:00:00:00:00:55")

	a := NewController(fence)
	a.SnapshotInterval = -1
	j, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.WithJournal(j); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	a.Serve(ln)
	ag, err := DialContext(ctx, ln.Addr().String(), Hello{Name: "ap1", Pos: geom.Point{}})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if err := ag.SendAlertDetail(Alert{APName: "ap1", MAC: macX, Distance: 0.9, Threshold: 0.12, Stage: "spoofcheck"}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "first quarantine", func() bool { return len(a.Quarantined()) == 1 })
	if err := a.SnapshotJournal(); err != nil { // generation 1 (good)
		t.Fatal(err)
	}
	if err := ag.SendAlertDetail(Alert{APName: "ap1", MAC: macY, Distance: 0.8, Threshold: 0.12, Stage: "spoofcheck"}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "second quarantine", func() bool { return len(a.Quarantined()) == 2 })
	if err := a.SnapshotJournal(); err != nil { // generation 2 (to be corrupted)
		t.Fatal(err)
	}
	ag.Close()
	a.Close()

	// Bit-rot the newest generation.
	snaps, err := journal.Snapshots(dir)
	if err != nil || len(snaps) != 2 {
		t.Fatalf("snapshots = %v (%v)", snaps, err)
	}
	r, err := journal.OpenSnapshot(dir, snaps[1])
	if err != nil {
		t.Fatal(err)
	}
	blob, err := io.ReadAll(r)
	r.Close()
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0xff
	if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("snap-%020d.snap", snaps[1])), blob, 0o644); err != nil {
		t.Fatal(err)
	}

	var logs []string
	var logMu sync.Mutex
	b := NewController(fence)
	b.SnapshotInterval = -1
	b.Logf = func(format string, args ...any) {
		logMu.Lock()
		logs = append(logs, fmt.Sprintf(format, args...))
		logMu.Unlock()
	}
	j2, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.WithJournal(j2); err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	got := map[wifi.Addr]bool{}
	for _, st := range b.Quarantined() {
		got[st.MAC] = true
	}
	if !got[macX] || !got[macY] || len(got) != 2 {
		t.Fatalf("fallback recovery quarantines = %v (want both: X from the predecessor snapshot, Y from the longer tail)", got)
	}
	logMu.Lock()
	defer logMu.Unlock()
	var sawFallback bool
	for _, l := range logs {
		if strings.Contains(l, "corrupt") && strings.Contains(l, "trying older") {
			sawFallback = true
		}
	}
	if !sawFallback {
		t.Errorf("no fallback log line; logs = %q", logs)
	}
}
