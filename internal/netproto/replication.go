package netproto

// Journal segment streaming (protocol v4): a warm standby subscribes
// with a SegmentAck carrying its per-partition resume positions, and
// the leader streams every partition's journal records to it in
// Segment frames, tailing the live WAL with a journal.Cursor. Empty
// Segment frames double as heartbeats (~2/s per partition), carrying
// the leader's durable tip so the standby can observe lag 0 — the
// failover-readiness signal — and detect leader loss by silence.
//
// The exchange is token-gated: journal streams carry the fleet's full
// event history, so only a session whose Hello presented a valid
// enrollment token (see enroll.go) may subscribe, reusing the AP
// enrollment trust root rather than growing a second one.

import (
	"sync/atomic"
	"time"

	"secureangle/internal/journal"
)

// Replication pacing: how often an idle partition sender emits a
// heartbeat frame, how often it polls the cursor at the live tail, and
// the per-frame payload budget (well under MaxMessageSize with frame
// overhead included).
const (
	replHeartbeat    = 500 * time.Millisecond
	replPoll         = 100 * time.Millisecond
	replFrameBudget  = 256 << 10
	replMaxPositions = 4096
)

// Segment is one replication frame: a run of consecutive journal
// records from one partition, plus the leader's current durable tip
// for that partition. Records is empty on heartbeat frames.
type Segment struct {
	// Partition is the MAC-range partition this frame belongs to;
	// PartCount the leader's total, so a fresh standby can size itself
	// from the first frame it sees.
	Partition int
	PartCount int
	// LeaderLSN is the leader journal's last assigned LSN at send time
	// — the number the standby measures its lag against.
	LeaderLSN uint64
	Records   []journal.Record
}

// SegmentAck is the standby-to-leader frame. The first ack on a
// session subscribes: Positions carries the standby's per-partition
// resume points (the last LSN it already holds; empty means "from the
// start of retained history for every partition"). Later acks report
// applied positions, which feed the leader's lag gauge.
type SegmentAck struct {
	Positions []SegmentPos
}

// SegmentPos is one partition's position in a SegmentAck.
type SegmentPos struct {
	Partition int
	LSN       uint64
}

// MarshalSegment encodes a Segment frame.
func MarshalSegment(s Segment) []byte {
	size := 1 + 2 + 2 + 8 + 4
	for _, r := range s.Records {
		size += 1 + 8 + 8 + 4 + len(r.Data)
	}
	b := make([]byte, 0, size)
	b = append(b, TypeSegment)
	b = be16(b, uint16(s.Partition))
	b = be16(b, uint16(s.PartCount))
	b = be64(b, s.LeaderLSN)
	b = be32(b, uint32(len(s.Records)))
	for _, r := range s.Records {
		b = append(b, byte(r.Type))
		b = be64(b, r.LSN)
		b = be64(b, uint64(r.TS.UnixNano()))
		b = be32(b, uint32(len(r.Data)))
		b = append(b, r.Data...)
	}
	return b
}

func unmarshalSegment(rest []byte) (Segment, error) {
	return unmarshalSegmentInto(rest, nil)
}

// unmarshalSegmentInto decodes a Segment reusing recs (length reset,
// capacity kept) as the Records backing store — the standby apply
// loop's per-frame record-slice reuse. Record Data fields alias rest.
func unmarshalSegmentInto(rest []byte, recs []journal.Record) (Segment, error) {
	if len(rest) < 2+2+8+4 {
		return Segment{}, ErrBadMessage
	}
	s := Segment{
		Partition: int(beU16(rest[0:2])),
		PartCount: int(beU16(rest[2:4])),
		LeaderLSN: beU64(rest[4:12]),
	}
	n := beU32(rest[12:16])
	rest = rest[16:]
	const recFixed = 1 + 8 + 8 + 4
	if uint64(n)*recFixed > uint64(len(rest)) {
		return Segment{}, ErrBadMessage
	}
	if n > 0 {
		if s.Records = recs[:0]; cap(recs) < int(n) {
			s.Records = make([]journal.Record, 0, n)
		}
	}
	for i := uint32(0); i < n; i++ {
		if len(rest) < recFixed {
			return Segment{}, ErrBadMessage
		}
		rec := journal.Record{
			Type: journal.RecordType(rest[0]),
			LSN:  beU64(rest[1:9]),
			TS:   time.Unix(0, int64(beU64(rest[9:17]))),
		}
		dl := beU32(rest[17:21])
		rest = rest[recFixed:]
		if dl > journal.MaxRecordSize || uint64(dl) > uint64(len(rest)) {
			return Segment{}, ErrBadMessage
		}
		rec.Data = rest[:dl:dl]
		rest = rest[dl:]
		s.Records = append(s.Records, rec)
	}
	if len(rest) != 0 {
		return Segment{}, ErrBadMessage
	}
	return s, nil
}

// MarshalSegmentAck encodes a SegmentAck frame.
func MarshalSegmentAck(a SegmentAck) []byte {
	b := make([]byte, 0, 1+2+10*len(a.Positions))
	b = append(b, TypeSegmentAck)
	b = be16(b, uint16(len(a.Positions)))
	for _, p := range a.Positions {
		b = be16(b, uint16(p.Partition))
		b = be64(b, p.LSN)
	}
	return b
}

func unmarshalSegmentAck(rest []byte) (SegmentAck, error) {
	if len(rest) < 2 {
		return SegmentAck{}, ErrBadMessage
	}
	n := beU16(rest[0:2])
	rest = rest[2:]
	if n > replMaxPositions || len(rest) != int(n)*10 {
		return SegmentAck{}, ErrBadMessage
	}
	a := SegmentAck{}
	if n > 0 {
		a.Positions = make([]SegmentPos, 0, n)
	}
	for i := 0; i < int(n); i++ {
		a.Positions = append(a.Positions, SegmentPos{
			Partition: int(beU16(rest[0:2])),
			LSN:       beU64(rest[2:10]),
		})
		rest = rest[10:]
	}
	return a, nil
}

// --- leader side ---

// replSession is one subscribed standby: per-partition cursors stream
// records to it, and its acks record how far it has applied.
type replSession struct {
	name  string
	parts int
	// acked is the last LSN the peer reported applied; sent the last
	// LSN streamed to it — both per partition, written concurrently by
	// the handler (acks) and the senders.
	acked []atomic.Uint64
	sent  []atomic.Uint64
}

// handleSegmentAck processes one SegmentAck on an authenticated v4
// session: the first subscribes (spawning the per-partition senders),
// later ones update the session's applied positions. Returns the live
// session so the handler threads it through subsequent acks.
func (c *Controller) handleSegmentAck(sess *replSession, m SegmentAck, apName string, done chan struct{}) *replSession {
	if sess != nil {
		for _, p := range m.Positions {
			if p.Partition >= 0 && p.Partition < sess.parts {
				sess.acked[p.Partition].Store(p.LSN)
			}
		}
		return sess
	}
	js := c.journals()
	if js == nil {
		c.logf("controller: %s subscribed but no journal is attached", apName)
		return nil
	}
	n := len(js)
	sess = &replSession{
		name:  apName,
		parts: n,
		acked: make([]atomic.Uint64, n),
		sent:  make([]atomic.Uint64, n),
	}
	after := make([]uint64, n)
	for _, p := range m.Positions {
		if p.Partition >= 0 && p.Partition < n {
			after[p.Partition] = p.LSN
			sess.acked[p.Partition].Store(p.LSN)
		}
	}
	c.replMu.Lock()
	if c.repl == nil {
		c.repl = make(map[*replSession]struct{})
	}
	c.repl[sess] = struct{}{}
	c.replMu.Unlock()
	c.logf("controller: %s subscribed to journal stream (%d partition(s))", apName, n)
	for i := range js {
		c.wg.Add(1)
		go c.streamPartition(sess, i, js[i], after[i], done)
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		select {
		case <-done:
		case <-c.ctx.Done():
		}
		c.replMu.Lock()
		delete(c.repl, sess)
		c.replMu.Unlock()
	}()
	return sess
}

// streamPartition tails one partition's journal from after and ships
// Segment frames to the session until its connection drops. The
// broadcaster pump owns the connection's write side, so frames are
// funneled through its queue with BLOCKING sends: a slow standby
// backpressures its own stream rather than losing frames (a dropped
// segment would gap the follower's LSN sequence).
func (c *Controller) streamPartition(sess *replSession, part int, j *journal.Journal, after uint64, done chan struct{}) {
	defer c.wg.Done()
	cur := journal.NewCursor(j.Dir(), after)
	defer cur.Close()
	sess.sent[part].Store(after)
	var lastSend time.Time
	send := func(recs []journal.Record) bool {
		frame := MarshalSegment(Segment{
			Partition: part,
			PartCount: sess.parts,
			LeaderLSN: j.LSN(),
			Records:   recs,
		})
		ch := c.broadcastChan(sess.name)
		if ch == nil {
			return false
		}
		select {
		case ch <- frame:
		case <-done:
			return false
		case <-c.ctx.Done():
			return false
		}
		lastSend = time.Now()
		return true
	}
	for {
		select {
		case <-done:
			return
		case <-c.ctx.Done():
			return
		default:
		}
		recs, err := cur.Next(replFrameBudget)
		if err != nil {
			c.logf("controller: journal stream p%d to %s: %v", part, sess.name, err)
			return
		}
		if len(recs) > 0 {
			if !send(recs) {
				return
			}
			sess.sent[part].Store(cur.NextLSN() - 1)
			continue
		}
		// Caught up with the durable tail: heartbeat so the standby can
		// observe lag 0, then poll again shortly.
		if time.Since(lastSend) >= replHeartbeat {
			if !send(nil) {
				return
			}
		}
		select {
		case <-done:
			return
		case <-c.ctx.Done():
			return
		case <-time.After(replPoll):
		}
	}
}

// broadcastChan looks up the broadcaster queue registered for a
// session name (nil once the connection is replaced or gone).
func (c *Controller) broadcastChan(name string) chan []byte {
	c.quar.mu.Lock()
	defer c.quar.mu.Unlock()
	if pc, ok := c.quar.conns[name]; ok {
		return pc.ch
	}
	return nil
}

// ReplicaStatus is one subscribed standby's replication state, as the
// leader sees it.
type ReplicaStatus struct {
	Name string `json:"name"`
	// Partitions lists per-partition stream positions; Lag is the
	// leader's durable tip minus the replica's applied LSN.
	Partitions []ReplicaPartition `json:"partitions"`
	MaxLag     uint64             `json:"max_lag"`
}

// ReplicaPartition is one partition's position within a ReplicaStatus.
type ReplicaPartition struct {
	Partition int    `json:"partition"`
	SentLSN   uint64 `json:"sent_lsn"`
	AckedLSN  uint64 `json:"acked_lsn"`
	Lag       uint64 `json:"lag"`
}

// ReplicationStatus reports every live journal-stream subscriber and
// its per-partition lag — the /status face of replication.
func (c *Controller) ReplicationStatus() []ReplicaStatus {
	js := c.journals()
	c.replMu.Lock()
	sessions := make([]*replSession, 0, len(c.repl))
	for s := range c.repl {
		sessions = append(sessions, s)
	}
	c.replMu.Unlock()
	out := make([]ReplicaStatus, 0, len(sessions))
	for _, s := range sessions {
		rs := ReplicaStatus{Name: s.name, Partitions: make([]ReplicaPartition, s.parts)}
		for i := 0; i < s.parts; i++ {
			var tip uint64
			if js != nil && i < len(js) {
				tip = js[i].LSN()
			}
			acked := s.acked[i].Load()
			lag := uint64(0)
			if tip > acked {
				lag = tip - acked
			}
			rs.Partitions[i] = ReplicaPartition{
				Partition: i,
				SentLSN:   s.sent[i].Load(),
				AckedLSN:  acked,
				Lag:       lag,
			}
			if lag > rs.MaxLag {
				rs.MaxLag = lag
			}
		}
		out = append(out, rs)
	}
	sortReplicaStatus(out)
	return out
}

func sortReplicaStatus(rs []ReplicaStatus) {
	for i := 1; i < len(rs); i++ {
		for k := i; k > 0 && rs[k].Name < rs[k-1].Name; k-- {
			rs[k], rs[k-1] = rs[k-1], rs[k]
		}
	}
}

// Big-endian append/read helpers for the replication codec.
func be16(b []byte, v uint16) []byte { return append(b, byte(v>>8), byte(v)) }
func be32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
func be64(b []byte, v uint64) []byte {
	return append(b, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32), byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
func beU16(b []byte) uint16 { return uint16(b[0])<<8 | uint16(b[1]) }
func beU32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}
func beU64(b []byte) uint64 {
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}
