package netproto

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"secureangle/internal/defense"
	"secureangle/internal/fusion"
	"secureangle/internal/journal"
	"secureangle/internal/ops"
	"secureangle/internal/wifi"
)

// The controller's operations surface: live per-AP session health, a
// structured JSON status document at /status, Prometheus text
// exposition at /metrics, and the enrollment admin endpoint at
// /enroll. Everything here reads the same engine Stats()/Snapshot()
// accessors the close-time log always used — the satellite fix is that
// they are now continuously scrapeable instead of visible once, at
// shutdown.

// Session-path instruments (package-level: zero-alloc on the frame
// paths, shared by every controller in the process).
var (
	mAuthRejects = ops.Default().Counter("secureangle_controller_auth_rejects_total",
		"Sessions rejected at the handshake for a missing, unknown, or revoked token.")
	mDirAckSeconds = ops.Default().Histogram("secureangle_controller_directive_ack_seconds",
		"Latency from directive broadcast to the first AP acknowledgement for that MAC.",
		ops.DurationBuckets())
)

// apHealth is one session's live health, updated lock-free by the
// session's read loop and snapshotted by APHealth()/collectors.
type apHealth struct {
	name      string
	observer  bool
	version   uint16
	connected time.Time
	lastSeen  atomic.Int64 // unix nanos of the last inbound frame
	frames    atomic.Uint64
	reports   atomic.Uint64
	acks      atomic.Uint64
	lastAckNs atomic.Int64 // latency of the latest ack (0 = none yet)
	queue     func() int   // send-queue depth (set by startBroadcaster)
}

func newAPHealth(name string, observer bool, version uint16) *apHealth {
	h := &apHealth{name: name, observer: observer, version: version, connected: time.Now()}
	h.lastSeen.Store(h.connected.UnixNano())
	return h
}

// APHealth is one connected session's health snapshot.
type APHealth struct {
	Name string `json:"name"`
	// Observer marks a broadcast/query-only session (empty Hello name).
	Observer bool `json:"observer,omitempty"`
	// Version is the negotiated protocol version.
	Version     uint16    `json:"version"`
	ConnectedAt time.Time `json:"connected_at"`
	LastSeen    time.Time `json:"last_seen"`
	// QueueDepth is the outbound broadcast queue's current backlog.
	QueueDepth int `json:"queue_depth"`
	// Frames counts inbound frames; Reports bearing reports (batch
	// members counted individually); Acks applied-countermeasure
	// acknowledgements.
	Frames  uint64 `json:"frames"`
	Reports uint64 `json:"reports"`
	Acks    uint64 `json:"acks"`
	// AckLatency is the latency of the latest directive ack (zero
	// until the session acks one).
	AckLatency time.Duration `json:"ack_latency_ns,omitempty"`
}

// APHealth snapshots every connected session, sorted by name.
func (c *Controller) APHealth() []APHealth {
	c.quar.mu.Lock()
	hs := make([]*apHealth, 0, len(c.quar.conns))
	depths := make([]int, 0, len(c.quar.conns))
	for _, ac := range c.quar.conns {
		if ac.health == nil {
			continue
		}
		hs = append(hs, ac.health)
		depths = append(depths, len(ac.ch))
	}
	c.quar.mu.Unlock()
	out := make([]APHealth, len(hs))
	for i, h := range hs {
		out[i] = APHealth{
			Name:        h.name,
			Observer:    h.observer,
			Version:     h.version,
			ConnectedAt: h.connected,
			LastSeen:    time.Unix(0, h.lastSeen.Load()),
			QueueDepth:  depths[i],
			Frames:      h.frames.Load(),
			Reports:     h.reports.Load(),
			Acks:        h.acks.Load(),
			AckLatency:  time.Duration(h.lastAckNs.Load()),
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// noteDirectiveSent timestamps a directive broadcast so the matching
// ack yields a latency sample. The map holds one entry per MAC with a
// live directive and is bounded: past 4096 entries (far above any real
// quarantine set, which the defense engine itself caps) new sends
// evict an arbitrary old entry.
func (c *Controller) noteDirectiveSent(mac wifi.Addr) {
	now := time.Now()
	c.mu.Lock()
	if c.dirSent == nil {
		c.dirSent = make(map[wifi.Addr]time.Time)
	}
	if _, ok := c.dirSent[mac]; !ok && len(c.dirSent) >= 4096 {
		for k := range c.dirSent {
			delete(c.dirSent, k)
			break
		}
	}
	c.dirSent[mac] = now
	c.mu.Unlock()
}

// noteDirectiveAck records one applied-countermeasure ack: the global
// latency histogram plus the acking session's health counters. The
// sent timestamp is kept (not consumed) because every AP in the fleet
// acks the same broadcast.
func (c *Controller) noteDirectiveAck(mac wifi.Addr, apName string) {
	c.mu.Lock()
	sent, ok := c.dirSent[mac]
	c.mu.Unlock()
	var lat time.Duration
	if ok {
		lat = time.Since(sent)
		mDirAckSeconds.Observe(lat.Seconds())
	}
	c.quar.mu.Lock()
	ac, live := c.quar.conns[apName]
	c.quar.mu.Unlock()
	if live && ac.health != nil {
		ac.health.acks.Add(1)
		if ok {
			ac.health.lastAckNs.Store(int64(lat))
		}
	}
}

// ThreatStatus is one live threat-table row in the /status document.
type ThreatStatus struct {
	MAC    string  `json:"mac"`
	State  string  `json:"state"`
	Action string  `json:"action"`
	Score  float64 `json:"score"`
	// LastAP is the most recent flagging AP.
	LastAP  string    `json:"last_ap,omitempty"`
	Since   time.Time `json:"since"`
	Updated time.Time `json:"updated"`
}

// FusionStatus is the fusion section of the /status document.
type FusionStatus struct {
	fusion.Stats
	// Clients and Pending are the live bounded-memory gauges.
	Clients int `json:"clients"`
	Pending int `json:"pending"`
	// Shards carries per-shard counters, for spotting MAC-range skew.
	Shards []fusion.Stats `json:"shards,omitempty"`
}

// DefenseStatus is the defense section of the /status document.
type DefenseStatus struct {
	defense.Stats
	// Allow/Monitor/Quarantine count live clients by threat state.
	Allow      int `json:"allow"`
	Monitor    int `json:"monitor"`
	Quarantine int `json:"quarantine"`
}

// Status is the controller's structured status document, served as
// JSON at /status and rendered by `secureangle status`.
type Status struct {
	Time time.Time `json:"time"`
	// Proto is the highest protocol version this controller speaks.
	Proto        uint16 `json:"proto_version"`
	AuthRequired bool   `json:"auth_required"`
	// Partitions is the MAC-range partition count of the engine core.
	Partitions int `json:"partitions"`
	// Enrolled lists AP names with minted tokens.
	Enrolled []string      `json:"enrolled,omitempty"`
	Fusion   FusionStatus  `json:"fusion"`
	Defense  DefenseStatus `json:"defense"`
	// UnknownAPDrops / DirectiveAcks are the controller's own ingress
	// counters (see ControllerStats).
	UnknownAPDrops uint64 `json:"unknown_ap_drops"`
	DirectiveAcks  uint64 `json:"directive_acks"`
	// Journal is nil when no flight recorder is attached; on a
	// partitioned controller it aggregates the per-partition journals
	// (counters summed, LSN the max, SnapshotLSN the min — the
	// conservative recovery bound) and JournalPartitions carries the
	// per-partition breakdown.
	Journal           *journal.Stats  `json:"journal,omitempty"`
	JournalPartitions []journal.Stats `json:"journal_partitions,omitempty"`
	// Replication lists journal-stream subscribers (warm standbys) and
	// their per-partition lag, as this leader sees them.
	Replication []ReplicaStatus `json:"replication,omitempty"`
	APs         []APHealth      `json:"aps"`
	Threats     []ThreatStatus  `json:"threats"`
}

// StatusReport assembles the live status document. Like Stats it never
// builds the lazy engines: before the first report the fusion/defense
// sections read zero.
func (c *Controller) StatusReport() Status {
	st := Status{
		Time:           time.Now(),
		Proto:          ProtoVersion,
		AuthRequired:   c.RequireAuth,
		Partitions:     c.nParts(),
		Enrolled:       c.EnrolledAPs(),
		UnknownAPDrops: c.unknownAP.Load(),
		DirectiveAcks:  c.directiveAcks.Load(),
		APs:            c.APHealth(),
		Threats:        []ThreatStatus{},
	}
	if set := c.partsLoaded(); set != nil {
		st.Fusion = FusionStatus{
			Stats:   set.Stats(),
			Clients: set.ClientCount(),
			Pending: set.PendingCount(),
		}
		if set.N() == 1 {
			// Single partition: the per-shard breakdown is the engine's
			// own lock stripes, byte-compatible with the PR 7 document.
			st.Fusion.Shards = set.At(0).Fusion.ShardStats()
		} else {
			// Partitioned: the breakdown is per MAC-range partition.
			st.Fusion.Shards = set.PartitionStats()
		}
		st.Defense.Stats = set.DefenseStats()
		st.Defense.Allow, st.Defense.Monitor, st.Defense.Quarantine = set.StateCounts()
		for _, th := range set.Threats() {
			if th.State == defense.StateAllow {
				continue // the threat table shows live suspicion, not history
			}
			st.Threats = append(st.Threats, ThreatStatus{
				MAC:     th.MAC.String(),
				State:   th.State.String(),
				Action:  th.Action.String(),
				Score:   th.Score,
				LastAP:  th.LastAP,
				Since:   th.Since,
				Updated: th.Updated,
			})
		}
		sort.Slice(st.Threats, func(i, j int) bool { return st.Threats[i].Score > st.Threats[j].Score })
	}
	if js := c.journals(); js != nil {
		agg, per := aggregateJournalStats(js)
		st.Journal = &agg
		if len(per) > 1 {
			st.JournalPartitions = per
		}
	}
	if rs := c.ReplicationStatus(); len(rs) > 0 {
		st.Replication = rs
	}
	return st
}

// aggregateJournalStats folds the per-partition journal stats into one
// document-level view (sums for counters; max LSN; min SnapshotLSN —
// the partition furthest behind bounds recovery; latest SnapshotAt)
// plus the per-partition slice. A single journal passes through
// unchanged.
func aggregateJournalStats(js []*journal.Journal) (journal.Stats, []journal.Stats) {
	per := make([]journal.Stats, len(js))
	for i, j := range js {
		per[i] = j.Stats()
	}
	if len(per) == 1 {
		return per[0], per
	}
	var agg journal.Stats
	for i, s := range per {
		agg.Appends += s.Appends
		agg.AppendedBytes += s.AppendedBytes
		agg.Fsyncs += s.Fsyncs
		agg.Rotations += s.Rotations
		agg.Segments += s.Segments
		if s.LSN > agg.LSN {
			agg.LSN = s.LSN
		}
		if i == 0 || s.SnapshotLSN < agg.SnapshotLSN {
			agg.SnapshotLSN = s.SnapshotLSN
		}
		if s.SnapshotAt.After(agg.SnapshotAt) {
			agg.SnapshotAt = s.SnapshotAt
		}
	}
	return agg, per
}

// RegisterOps installs the controller's scrape-time collector families
// on reg: fusion/defense/journal counters, live gauges, and the per-AP
// health table. Called by ServeOps with the default registry;
// re-registering (another controller, a test) replaces the closures,
// so the families always reflect the latest registrant.
func (c *Controller) RegisterOps(reg *ops.Registry) {
	reg.RegisterCollector("secureangle_fusion_events_total",
		"Fusion engine counters by kind.", ops.KindCounter,
		func(emit func(string, float64)) {
			s := c.Stats()
			emit(`kind="ingested"`, float64(s.Ingested))
			emit(`kind="decisions"`, float64(s.Decisions))
			emit(`kind="dup_dropped"`, float64(s.DupDropped))
			emit(`kind="pending_expired"`, float64(s.PendingExpired))
			emit(`kind="pending_evicted"`, float64(s.PendingEvicted))
			emit(`kind="clients_evicted"`, float64(s.ClientsEvicted))
			emit(`kind="forced_timeouts"`, float64(s.ForcedTimeouts))
			emit(`kind="fuse_errors"`, float64(s.FuseErrors))
		})
	reg.RegisterCollector("secureangle_fusion_shard_events_total",
		"Per-shard fusion counters, for spotting MAC-range skew.", ops.KindCounter,
		func(emit func(string, float64)) {
			set := c.partsLoaded()
			if set == nil || set.N() != 1 {
				return // partitioned cores report per-partition instead
			}
			for i, s := range set.At(0).Fusion.ShardStats() {
				emit(fmt.Sprintf(`shard="%d",kind="ingested"`, i), float64(s.Ingested))
				emit(fmt.Sprintf(`shard="%d",kind="decisions"`, i), float64(s.Decisions))
				emit(fmt.Sprintf(`shard="%d",kind="evicted"`, i), float64(s.PendingEvicted+s.ClientsEvicted))
			}
		})
	reg.RegisterCollector("secureangle_partition_events_total",
		"Per-partition fusion counters, for spotting MAC-range skew across the sharded engine set.", ops.KindCounter,
		func(emit func(string, float64)) {
			set := c.partsLoaded()
			if set == nil {
				return
			}
			for i, s := range set.PartitionStats() {
				emit(fmt.Sprintf(`partition="%d",kind="ingested"`, i), float64(s.Ingested))
				emit(fmt.Sprintf(`partition="%d",kind="decisions"`, i), float64(s.Decisions))
				emit(fmt.Sprintf(`partition="%d",kind="evicted"`, i), float64(s.PendingEvicted+s.ClientsEvicted))
			}
		})
	reg.RegisterCollector("secureangle_fusion_clients",
		"Live tracked clients in the fusion engine.", ops.KindGauge,
		func(emit func(string, float64)) {
			if set := c.partsLoaded(); set != nil {
				emit("", float64(set.ClientCount()))
			}
		})
	reg.RegisterCollector("secureangle_fusion_pending",
		"In-flight transmissions awaiting corroborating bearings.", ops.KindGauge,
		func(emit func(string, float64)) {
			if set := c.partsLoaded(); set != nil {
				emit("", float64(set.PendingCount()))
			}
		})
	reg.RegisterCollector("secureangle_defense_events_total",
		"Defense engine counters by kind.", ops.KindCounter,
		func(emit func(string, float64)) {
			d := c.Stats().Defense
			emit(`kind="spoof_verdicts"`, float64(d.SpoofVerdicts))
			emit(`kind="fence_verdicts"`, float64(d.FenceVerdicts))
			emit(`kind="track_verdicts"`, float64(d.TrackVerdicts))
			emit(`kind="quarantines"`, float64(d.Quarantines))
			emit(`kind="null_steers"`, float64(d.NullSteers))
			emit(`kind="releases"`, float64(d.Releases))
			emit(`kind="directives"`, float64(d.Directives))
		})
	reg.RegisterCollector("secureangle_defense_clients",
		"Live clients by threat state.", ops.KindGauge,
		func(emit func(string, float64)) {
			set := c.partsLoaded()
			if set == nil {
				return
			}
			allow, monitor, quarantine := set.StateCounts()
			emit(`state="allow"`, float64(allow))
			emit(`state="monitor"`, float64(monitor))
			emit(`state="quarantine"`, float64(quarantine))
		})
	reg.RegisterCollector("secureangle_controller_unknown_ap_drops_total",
		"Reports dropped because the AP never sent a Hello.", ops.KindCounter,
		func(emit func(string, float64)) { emit("", float64(c.unknownAP.Load())) })
	reg.RegisterCollector("secureangle_controller_directive_acks_total",
		"Applied-countermeasure acknowledgements from APs.", ops.KindCounter,
		func(emit func(string, float64)) { emit("", float64(c.directiveAcks.Load())) })
	reg.RegisterCollector("secureangle_controller_sessions",
		"Connected sessions (APs and observers).", ops.KindGauge,
		func(emit func(string, float64)) {
			c.quar.mu.Lock()
			n := len(c.quar.conns)
			c.quar.mu.Unlock()
			emit("", float64(n))
		})
	// Journal families: a single-partition controller keeps the PR 5–7
	// unlabeled series; a partitioned one labels each row with its
	// partition index.
	journalEmit := func(emit func(string, float64), v func(journal.Stats) float64) {
		js := c.journals()
		if js == nil {
			return
		}
		if len(js) == 1 {
			emit("", v(js[0].Stats()))
			return
		}
		for i, j := range js {
			emit(fmt.Sprintf(`partition="%d"`, i), v(j.Stats()))
		}
	}
	reg.RegisterCollector("secureangle_journal_appends_total",
		"Records appended to the flight recorder.", ops.KindCounter,
		func(emit func(string, float64)) {
			journalEmit(emit, func(s journal.Stats) float64 { return float64(s.Appends) })
		})
	reg.RegisterCollector("secureangle_journal_fsyncs_total",
		"fdatasync calls issued by the flight recorder.", ops.KindCounter,
		func(emit func(string, float64)) {
			journalEmit(emit, func(s journal.Stats) float64 { return float64(s.Fsyncs) })
		})
	reg.RegisterCollector("secureangle_journal_lsn",
		"Last assigned journal record number.", ops.KindGauge,
		func(emit func(string, float64)) {
			journalEmit(emit, func(s journal.Stats) float64 { return float64(s.LSN) })
		})
	reg.RegisterCollector("secureangle_journal_segments",
		"WAL segment files on disk.", ops.KindGauge,
		func(emit func(string, float64)) {
			journalEmit(emit, func(s journal.Stats) float64 { return float64(s.Segments) })
		})
	reg.RegisterCollector("secureangle_journal_snapshot_age_seconds",
		"Seconds since the newest snapshot completed (-1: none this run).", ops.KindGauge,
		func(emit func(string, float64)) {
			journalEmit(emit, func(s journal.Stats) float64 {
				if s.SnapshotAt.IsZero() {
					return -1
				}
				return time.Since(s.SnapshotAt).Seconds()
			})
		})
	reg.RegisterCollector("secureangle_journal_replication_lag",
		"Journal records the leader has durably assigned but each replica has not yet acknowledged, per partition.", ops.KindGauge,
		func(emit func(string, float64)) {
			for _, rs := range c.ReplicationStatus() {
				for _, p := range rs.Partitions {
					emit(fmt.Sprintf(`replica=%q,partition="%d"`, rs.Name, p.Partition), float64(p.Lag))
				}
			}
		})
	reg.RegisterCollector("secureangle_ap_last_seen_seconds",
		"Seconds since each session's last inbound frame.", ops.KindGauge,
		func(emit func(string, float64)) {
			for _, h := range c.APHealth() {
				emit(fmt.Sprintf("ap=%q", h.Name), time.Since(h.LastSeen).Seconds())
			}
		})
	reg.RegisterCollector("secureangle_ap_send_queue",
		"Outbound broadcast queue depth per session.", ops.KindGauge,
		func(emit func(string, float64)) {
			for _, h := range c.APHealth() {
				emit(fmt.Sprintf("ap=%q", h.Name), float64(h.QueueDepth))
			}
		})
	reg.RegisterCollector("secureangle_ap_reports_total",
		"Bearing reports ingested per session.", ops.KindCounter,
		func(emit func(string, float64)) {
			for _, h := range c.APHealth() {
				emit(fmt.Sprintf("ap=%q", h.Name), float64(h.Reports))
			}
		})
	reg.RegisterCollector("secureangle_ap_version",
		"Negotiated protocol version per session.", ops.KindGauge,
		func(emit func(string, float64)) {
			for _, h := range c.APHealth() {
				emit(fmt.Sprintf("ap=%q", h.Name), float64(h.Version))
			}
		})
}

// TraceSpanView is one span of a retained trace in the /traces
// document.
type TraceSpanView struct {
	Stage string `json:"stage"`
	AP    string `json:"ap,omitempty"`
	MAC   string `json:"mac,omitempty"`
	// Partition is the controller partition the span was recorded
	// under (AP-side spans carry 0).
	Partition uint16 `json:"partition"`
	StartNs   int64  `json:"start_ns"`
	DurNs     int64  `json:"dur_ns"`
}

// TraceView is one retained trace in the /traces document.
type TraceView struct {
	// Trace is the 16-hex-digit trace ID — the join key against
	// journal timelines and trace= log fields.
	Trace string `json:"trace"`
	// Why is the retention reason ("incident" or "sampled").
	Why        string          `json:"why"`
	StartNs    int64           `json:"start_ns"`
	DurationNs int64           `json:"duration_ns"`
	Spans      []TraceSpanView `json:"spans"`
}

// TraceExemplar links one latency-histogram series to a concrete
// recent trace — the pivot from "p99 moved" to one retained timeline.
type TraceExemplar struct {
	Metric string `json:"metric"`
	Labels string `json:"labels,omitempty"`
	Trace  string `json:"trace"`
}

// TracesDocument is the /traces response body.
type TracesDocument struct {
	Retained  int             `json:"retained"`
	Traces    []TraceView     `json:"traces"`
	Exemplars []TraceExemplar `json:"exemplars,omitempty"`
}

// tracesDocument assembles the /traces body: the tail-sampled retained
// store (newest first, capped at max, optionally filtered to one trace
// ID) plus the current histogram exemplars.
func (c *Controller) tracesDocument(max int, filter uint64) TracesDocument {
	rec := c.tracer()
	doc := TracesDocument{Retained: rec.RetainedCount(), Traces: []TraceView{}}
	for _, v := range rec.Snapshot(max) {
		if filter != 0 && v.Trace != filter {
			continue
		}
		tv := TraceView{
			Trace:      fmt.Sprintf("%016x", v.Trace),
			Why:        v.Why.String(),
			StartNs:    v.StartNs,
			DurationNs: v.EndNs - v.StartNs,
			Spans:      make([]TraceSpanView, 0, len(v.Spans)),
		}
		for _, sp := range v.Spans {
			sv := TraceSpanView{
				Stage:     sp.Stage.String(),
				AP:        sp.AP,
				Partition: sp.Partition,
				StartNs:   sp.Start,
				DurNs:     sp.Dur,
			}
			if sp.MAC != (wifi.Addr{}) {
				sv.MAC = sp.MAC.String()
			}
			tv.Spans = append(tv.Spans, sv)
		}
		doc.Traces = append(doc.Traces, tv)
	}
	ops.Default().Walk(func(s ops.Sample) {
		if s.Kind == ops.KindHistogram && s.Exemplar != 0 {
			doc.Exemplars = append(doc.Exemplars, TraceExemplar{
				Metric: s.Name, Labels: s.Labels,
				Trace: fmt.Sprintf("%016x", s.Exemplar),
			})
		}
	})
	return doc
}

// readOnlyJSON gates a handler to GET/HEAD and stamps the JSON
// content type; anything else is a 405 with the Allow header set.
func readOnlyJSON(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, `{"error":"method not allowed"}`, http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		h(w, r)
	}
}

// OpsHandler returns the controller's operations HTTP handler:
//
//	GET  /metrics          Prometheus text exposition (default registry)
//	GET  /status           the Status document as JSON
//	GET  /traces           retained decision traces + histogram exemplars
//	                       (?n=50 caps the list, ?trace=<hex id> filters)
//	GET  /enroll           enrolled AP names as JSON
//	POST /enroll?name=X    mint (or rotate) X's token; returns it once
//	POST /enroll?name=X&revoke=1   revoke X's enrollment
//	GET  /debug/pprof/...  runtime profiles (only when PprofOps is set)
//
// The handler is also what ServeOps mounts. Callers embedding it in
// their own server should keep it off untrusted networks: /enroll
// mints credentials.
func (c *Controller) OpsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", ops.Default().Handler())
	if c.PprofOps {
		mountPprof(mux)
	}
	mux.HandleFunc("/status", readOnlyJSON(func(w http.ResponseWriter, r *http.Request) {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(c.StatusReport())
	}))
	mux.HandleFunc("/traces", readOnlyJSON(func(w http.ResponseWriter, r *http.Request) {
		max := 50
		if s := r.URL.Query().Get("n"); s != "" {
			if n, err := strconv.Atoi(s); err == nil && n > 0 {
				max = n
			}
		}
		var filter uint64
		if s := r.URL.Query().Get("trace"); s != "" {
			id, err := strconv.ParseUint(s, 16, 64)
			if err != nil {
				http.Error(w, `{"error":"bad trace id"}`, http.StatusBadRequest)
				return
			}
			filter = id
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(c.tracesDocument(max, filter))
	}))
	mux.HandleFunc("/enroll", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		switch r.Method {
		case http.MethodGet:
			_ = json.NewEncoder(w).Encode(map[string]any{"enrolled": c.EnrolledAPs()})
		case http.MethodPost:
			name := r.URL.Query().Get("name")
			if name == "" {
				http.Error(w, `{"error":"missing name"}`, http.StatusBadRequest)
				return
			}
			if r.URL.Query().Get("revoke") != "" {
				if !c.RevokeAP(name) {
					http.Error(w, `{"error":"not enrolled"}`, http.StatusNotFound)
					return
				}
				_ = json.NewEncoder(w).Encode(map[string]any{"revoked": name})
				return
			}
			token, err := c.EnrollAP(name)
			if err != nil {
				http.Error(w, `{"error":"enroll failed"}`, http.StatusInternalServerError)
				return
			}
			_ = json.NewEncoder(w).Encode(map[string]any{"name": name, "token": token})
		default:
			http.Error(w, `{"error":"method not allowed"}`, http.StatusMethodNotAllowed)
		}
	})
	return mux
}

// mountPprof registers the Go runtime profiling endpoints on mux (the
// explicit-handler form: nothing here touches http.DefaultServeMux)
// and turns on mutex-contention sampling so /debug/pprof/mutex has
// data — the profile loadgen investigations ask for first, since the
// controller's hot paths are lock-bounded, not CPU-bounded.
func mountPprof(mux *http.ServeMux) {
	runtime.SetMutexProfileFraction(5)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// ServeOps starts the operations HTTP server on ln and registers the
// controller's collector families on the default registry. It returns
// immediately; Close shuts the server down with the rest of the
// controller.
func (c *Controller) ServeOps(ln net.Listener) {
	c.RegisterOps(ops.Default())
	srv := &http.Server{Handler: c.OpsHandler(), ReadHeaderTimeout: 5 * time.Second}
	c.mu.Lock()
	c.opsSrv = srv
	c.opsLn = ln
	c.mu.Unlock()
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		_ = srv.Serve(ln)
	}()
}
