package netproto

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"secureangle/internal/geom"
	"secureangle/internal/journal"
	"secureangle/internal/locate"
	"secureangle/internal/wifi"
)

// ingestWorkload builds a report stream covering every partition of a
// 4-way split: interleaved fusing pairs (several per MAC, so batches
// hold multiple same-MAC decisions), duplicate reports, and one report
// from an AP the controller never registered.
func ingestWorkload() []Report {
	ap1Pos, ap2Pos := geom.Point{X: 0, Y: 0}, geom.Point{X: 24, Y: 0}
	targets := []geom.Point{{X: 12, Y: 8}, {X: 6, Y: 4}, {X: 18, Y: 10}}
	var rs []Report
	for seq := uint64(1); seq <= 4; seq++ {
		for m := 0; m < 16; m++ {
			mac := wifi.Addr{byte(m << 4), 0, 0, 0, 0, byte(m)} // spread over partitions
			// One target per MAC: a client teleporting between targets
			// would trip the defense engine's velocity anomaly and emit
			// directives whose lease deadlines read the wall clock —
			// nondeterministic journal bytes either way it is ingested.
			target := targets[m%len(targets)]
			rs = append(rs,
				Report{APName: "ap1", MAC: mac, SeqNo: seq, BearingDeg: geom.BearingDeg(ap1Pos, target)},
				Report{APName: "ap2", MAC: mac, SeqNo: seq, BearingDeg: geom.BearingDeg(ap2Pos, target)},
			)
			if m%4 == 0 {
				rs = append(rs, Report{APName: "ap1", MAC: mac, SeqNo: seq, BearingDeg: geom.BearingDeg(ap1Pos, target)})
			}
		}
		rs = append(rs, Report{APName: "ghost", MAC: wifi.Addr{1}, SeqNo: seq, BearingDeg: 10})
	}
	return rs
}

// newIngestController builds a journaled 4-partition controller with
// pinned clocks and registered AP positions, fed directly through the
// ingest fast paths (no TCP: the frame dispatch is covered elsewhere).
func newIngestController(t *testing.T) (*Controller, string) {
	t.Helper()
	fence := &locate.Fence{Boundary: geom.Rect(0, 0, 24, 16)}
	c := NewController(fence)
	c.Partitions = 4
	c.SnapshotInterval = -1
	c.Logf = func(string, ...any) {}
	dir := t.TempDir()
	if err := c.WithJournalDir(dir, journal.Options{
		Clock: func() time.Time { return time.Unix(1_700_000_000, 0) },
	}); err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	c.apPos["ap1"] = geom.Point{X: 0, Y: 0}
	c.apPos["ap2"] = geom.Point{X: 24, Y: 0}
	c.mu.Unlock()
	return c, dir
}

// journalStreams reads every partition journal back as one string per
// partition (LSN, type, payload), the comparison key for stream
// identity.
func journalStreams(t *testing.T, base string, parts int) []string {
	t.Helper()
	out := make([]string, parts)
	for p := 0; p < parts; p++ {
		if err := journal.ReadRecords(filepath.Join(base, fmt.Sprintf("p%d", p)), 0, func(rec journal.Record) error {
			out[p] += fmt.Sprintf("%d %d %x %d\n", rec.LSN, rec.Type, rec.Data, rec.TS.UnixNano())
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// TestIngestBatchJournalStreamIdentity pins the controller-level
// identity claim of the batched fast path: for any batch sizing,
// ingestBatch leaves every partition journal byte-identical to serial
// per-report ingest — decisions interleaved before their completing
// report's record, group-committed report runs indistinguishable from
// serial appends — and drops the same unknown-AP reports.
func TestIngestBatchJournalStreamIdentity(t *testing.T) {
	rs := ingestWorkload()

	serial, serialDir := newIngestController(t)
	for _, r := range rs {
		serial.ingest(r)
	}
	serialUnknown := serial.unknownAP.Load()
	serial.Close()
	want := journalStreams(t, serialDir, 4)
	for p, s := range want {
		if s == "" {
			t.Fatalf("serial workload left partition %d empty — workload does not cover the split", p)
		}
	}

	for _, size := range []int{1, 2, 5, 64, len(rs)} {
		batch, batchDir := newIngestController(t)
		for start := 0; start < len(rs); start += size {
			batch.ingestBatch(rs[start:min(start+size, len(rs))])
		}
		if got := batch.unknownAP.Load(); got != serialUnknown {
			t.Errorf("size %d: unknown-AP drops = %d, serial counted %d", size, got, serialUnknown)
		}
		batch.Close()
		got := journalStreams(t, batchDir, 4)
		for p := range want {
			if got[p] != want[p] {
				t.Errorf("size %d: partition %d journal stream diverged from serial\n got:\n%s\nwant:\n%s",
					size, p, got[p], want[p])
			}
		}
	}
}
