package netproto

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"secureangle/internal/geom"
	"secureangle/internal/locate"
)

func startAuthController(t *testing.T, require bool) (*Controller, string) {
	t.Helper()
	fence := &locate.Fence{Boundary: geom.Rect(0, 0, 24, 16)}
	c := NewController(fence)
	c.RequireAuth = require
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c.Serve(ln)
	return c, ln.Addr().String()
}

func dialToken(t *testing.T, addr, name, token string) (*Agent, error) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return DialContext(ctx, addr, Hello{Name: name, Pos: geom.Point{X: 1, Y: 1}, Token: token})
}

// TestEnrollTokenAccepted: the mint → Hello → Welcome round trip. A v4
// agent presenting its minted token connects and its reports are
// ingested, not dropped.
func TestEnrollTokenAccepted(t *testing.T) {
	c, addr := startAuthController(t, true)
	defer c.Close()
	token, err := c.EnrollAP("ap1")
	if err != nil {
		t.Fatal(err)
	}
	a, err := dialToken(t, addr, "ap1", token)
	if err != nil {
		t.Fatalf("enrolled agent rejected: %v", err)
	}
	defer a.Close()
	if a.Version() != ProtoVersion {
		t.Fatalf("negotiated v%d, want v%d", a.Version(), ProtoVersion)
	}
}

// TestEnrollBadTokenRejected: the acceptance criterion — a v4 agent
// with a bad or revoked token gets the typed rejection.
func TestEnrollBadTokenRejected(t *testing.T) {
	c, addr := startAuthController(t, true)
	defer c.Close()
	token, err := c.EnrollAP("ap1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dialToken(t, addr, "ap1", "deadbeef"); !errors.Is(err, ErrAuthRejected) {
		t.Fatalf("bad token: err = %v, want ErrAuthRejected", err)
	}
	if _, err := dialToken(t, addr, "ap2", token); !errors.Is(err, ErrAuthRejected) {
		t.Fatalf("unenrolled name with someone else's token: err = %v, want ErrAuthRejected", err)
	}
	if !c.RevokeAP("ap1") {
		t.Fatal("RevokeAP(ap1) = false")
	}
	if _, err := dialToken(t, addr, "ap1", token); !errors.Is(err, ErrAuthRejected) {
		t.Fatalf("revoked token: err = %v, want ErrAuthRejected", err)
	}
	if c.RevokeAP("ap1") {
		t.Fatal("second RevokeAP(ap1) = true")
	}
}

// TestEnrollRotation: re-enrolling a name rotates its token; the old
// token stops validating immediately.
func TestEnrollRotation(t *testing.T) {
	c, addr := startAuthController(t, true)
	defer c.Close()
	old, err := c.EnrollAP("ap1")
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := c.EnrollAP("ap1")
	if err != nil {
		t.Fatal(err)
	}
	if old == fresh {
		t.Fatal("rotation returned the same token")
	}
	if _, err := dialToken(t, addr, "ap1", old); !errors.Is(err, ErrAuthRejected) {
		t.Fatalf("stale token: err = %v, want ErrAuthRejected", err)
	}
	a, err := dialToken(t, addr, "ap1", fresh)
	if err != nil {
		t.Fatalf("rotated token rejected: %v", err)
	}
	a.Close()
	if got := c.EnrolledAPs(); len(got) != 1 || got[0] != "ap1" {
		t.Fatalf("EnrolledAPs = %v", got)
	}
}

// TestEnrollLegacyOptionalAuth: the backward-compat criterion — v1–v3
// agents still connect when auth is optional, and a v4 agent may omit
// the token.
func TestEnrollLegacyOptionalAuth(t *testing.T) {
	c, addr := startAuthController(t, false)
	defer c.Close()
	v1, err := Dial(addr, Hello{Name: "ap1", Pos: geom.Point{X: 1, Y: 1}})
	if err != nil {
		t.Fatal(err)
	}
	v1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	v2, err := DialContext(ctx, addr, Hello{Name: "ap2", Pos: geom.Point{X: 2, Y: 1}, Version: ProtoV2})
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	if v2.Version() != ProtoV2 {
		t.Fatalf("v2 agent negotiated v%d", v2.Version())
	}
	v4, err := dialToken(t, addr, "ap3", "")
	if err != nil {
		t.Fatalf("tokenless v4 agent rejected with auth optional: %v", err)
	}
	defer v4.Close()
	// A presented token must still validate, even when auth is optional.
	if _, err := dialToken(t, addr, "ap4", "bogus"); !errors.Is(err, ErrAuthRejected) {
		t.Fatalf("bogus token with auth optional: err = %v, want ErrAuthRejected", err)
	}
}

// TestEnrollRequireAuthClosesLegacy: with RequireAuth on, a tokenless
// v2 session is refused. The v2 protocol has no room for a typed
// rejection, so the agent observes the handshake failing.
func TestEnrollRequireAuthClosesLegacy(t *testing.T) {
	c, addr := startAuthController(t, true)
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := DialContext(ctx, addr, Hello{Name: "ap1", Pos: geom.Point{X: 1, Y: 1}, Version: ProtoV2}); err == nil {
		t.Fatal("tokenless v2 agent connected to a RequireAuth controller")
	}
}

// TestEnrollObserver: observers have no name to look a token up
// under, so with auth required they present any enrolled AP's token.
func TestEnrollObserver(t *testing.T) {
	c, addr := startAuthController(t, true)
	defer c.Close()
	token, err := c.EnrollAP("ap1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dialToken(t, addr, "", "nope"); !errors.Is(err, ErrAuthRejected) {
		t.Fatalf("observer with bad token: err = %v, want ErrAuthRejected", err)
	}
	obs, err := dialToken(t, addr, "", token)
	if err != nil {
		t.Fatalf("observer with enrolled token rejected: %v", err)
	}
	obs.Close()
}

// TestEnrollV4WireForms pins the new encodings: the v4 Hello appends
// version + token to the v1 body, the v4 Welcome appends a status
// byte, and both survive Unmarshal.
func TestEnrollV4WireForms(t *testing.T) {
	h := Hello{Name: "ap1", Pos: geom.Point{X: 3, Y: 4}, Version: ProtoV4, Token: "tok"}
	b := MarshalHello(h)
	if want := 1 + 2 + 3 + 16 + 2 + 2 + 3; len(b) != want {
		t.Fatalf("v4 hello is %d bytes, want %d", len(b), want)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.(Hello) != h {
		t.Fatalf("hello round trip = %+v, want %+v", got, h)
	}
	w := Welcome{Version: ProtoV4, Status: WelcomeAuthRejected}
	wb := MarshalWelcome(w)
	if len(wb) != 4 {
		t.Fatalf("v4 welcome is %d bytes, want 4", len(wb))
	}
	wgot, err := Unmarshal(wb)
	if err != nil {
		t.Fatal(err)
	}
	if wgot.(Welcome) != w {
		t.Fatalf("welcome round trip = %+v, want %+v", wgot, w)
	}
	// The v1–v3 forms must be byte-identical to what they always were.
	if got := MarshalWelcome(Welcome{Version: ProtoV2}); len(got) != 3 {
		t.Fatalf("v2 welcome grew to %d bytes", len(got))
	}
	if got := MarshalHello(Hello{Name: "ap1", Pos: geom.Point{X: 3, Y: 4}, Version: ProtoV3}); len(got) != 1+2+3+16+2 {
		t.Fatalf("v3 hello grew to %d bytes", len(got))
	}
	// A status byte on a pre-v4 Welcome is malformed, as is trailing
	// garbage on a pre-v4 Hello.
	if _, err := Unmarshal([]byte{TypeWelcome, 0, 2, 1}); err == nil {
		t.Fatal("4-byte v2 welcome decoded")
	}
	if _, err := Unmarshal(append(MarshalHello(Hello{Name: "x", Version: ProtoV2}), 0, 0)); err == nil {
		t.Fatal("v2 hello with trailing bytes decoded")
	}
}
