package netproto

import (
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"

	"secureangle/internal/journal"
)

// Token-based AP enrollment (protocol v4). The controller mints one
// bearer token per AP name; the agent presents it in the v4 Hello and
// the controller answers with a Welcome status byte. Only token
// digests are kept — the plaintext exists once, in EnrollAP's return
// value — so a controller snapshot or debugger can't leak fleet
// credentials. Whether a tokenless session (any v1–v3 agent, or a v4
// agent with an empty token) is accepted is the RequireAuth knob:
// false preserves the open pre-v4 behaviour, true closes the port to
// everything but enrolled APs.

// ErrAuthRejected is returned by the dialing helpers when the
// controller's Welcome carries WelcomeAuthRejected: the token was
// missing, unknown, or revoked and the controller requires
// authentication.
var ErrAuthRejected = errors.New("netproto: enrollment token rejected")

// tokenBytes is the entropy of a minted token (hex-encoded on the
// wire: 32 characters).
const tokenBytes = 16

// EnrollAP mints a fresh bearer token for the named AP and stores its
// digest. The plaintext token is returned exactly once; re-enrolling
// an already-enrolled name rotates its token (the old one stops
// validating immediately).
func (c *Controller) EnrollAP(name string) (string, error) {
	if name == "" {
		return "", errors.New("netproto: enroll: empty AP name")
	}
	var raw [tokenBytes]byte
	if _, err := rand.Read(raw[:]); err != nil {
		return "", fmt.Errorf("netproto: enroll: %w", err)
	}
	token := hex.EncodeToString(raw[:])
	digest := sha256.Sum256([]byte(token))
	c.mu.Lock()
	if c.tokens == nil {
		c.tokens = make(map[string][sha256.Size]byte)
	}
	c.tokens[name] = digest
	c.mu.Unlock()
	// Enrollment mutations are MAC-less, so they live in partition 0's
	// journal: a restart (or a streaming standby) rebuilds the token
	// table and the fleet's credentials survive failover.
	c.journalAppendTo(0, journal.RecEnroll, journal.EncodeEnroll(journal.EnrollEvent{Name: name, Digest: digest[:]}))
	return token, nil
}

// RevokeAP deletes the named AP's enrollment. Sessions already
// established keep running — revocation gates the next handshake, the
// usual bearer-token contract — but a controller that wants the AP
// gone now can additionally drop its connection.
func (c *Controller) RevokeAP(name string) bool {
	c.mu.Lock()
	_, ok := c.tokens[name]
	if ok {
		delete(c.tokens, name)
	}
	c.mu.Unlock()
	if ok {
		// An empty digest is the journal's revocation form.
		c.journalAppendTo(0, journal.RecEnroll, journal.EncodeEnroll(journal.EnrollEvent{Name: name}))
	}
	return ok
}

// EnrolledAPs lists enrolled AP names, sorted.
func (c *Controller) EnrolledAPs() []string {
	c.mu.Lock()
	names := make([]string, 0, len(c.tokens))
	for n := range c.tokens {
		names = append(names, n)
	}
	c.mu.Unlock()
	sort.Strings(names)
	return names
}

// authorize decides whether a Hello may open a session. A presented
// token must validate even when auth is optional (a wrong token is a
// misconfigured or probing peer, not a legacy one); an absent token is
// acceptable exactly when RequireAuth is off. Observers (empty Name)
// have no identity to look a token up under, so with auth required
// they must present some enrolled AP's token.
func (c *Controller) authorize(h Hello) (bool, string) {
	c.mu.Lock()
	required := c.RequireAuth
	var want [sha256.Size]byte
	enrolled := false
	var all [][sha256.Size]byte
	if h.Token != "" {
		if h.Name == "" {
			all = make([][sha256.Size]byte, 0, len(c.tokens))
			for _, d := range c.tokens {
				all = append(all, d)
			}
		} else {
			want, enrolled = c.tokens[h.Name]
		}
	}
	c.mu.Unlock()

	if h.Token == "" {
		if required {
			return false, "authentication required"
		}
		return true, ""
	}
	got := sha256.Sum256([]byte(h.Token))
	if h.Name == "" {
		for _, d := range all {
			if subtle.ConstantTimeCompare(got[:], d[:]) == 1 {
				return true, ""
			}
		}
		return false, "observer token not recognised"
	}
	if !enrolled {
		return false, "AP not enrolled"
	}
	if subtle.ConstantTimeCompare(got[:], want[:]) != 1 {
		return false, "bad token"
	}
	return true, ""
}
