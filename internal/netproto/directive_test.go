package netproto

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"secureangle/internal/defense"
	"secureangle/internal/geom"
	"secureangle/internal/locate"
	"secureangle/internal/wifi"
)

func TestDefenseDirectiveWireRoundTrip(t *testing.T) {
	cases := []Directive{
		{Directive: defense.Directive{
			MAC:        wifi.MustParseAddr("66:00:00:00:00:05"),
			Action:     defense.ActionNullSteer,
			From:       defense.StateMonitor,
			To:         defense.StateQuarantine,
			Reporter:   "ap1",
			BearingDeg: 123.5,
			Pos:        geom.Point{X: 4.25, Y: -1.5},
			HasPos:     true,
			Score:      5.75,
			Distance:   0.91,
			Threshold:  0.12,
			Stage:      "spoofcheck",
		}},
		{Directive: defense.Directive{
			MAC:    wifi.MustParseAddr("00:16:ea:50:00:07"),
			Action: defense.ActionAllow,
			From:   defense.StateQuarantine,
			To:     defense.StateAllow,
		}, Ack: true},
		{}, // zero value
	}
	for i, d := range cases {
		got, err := Unmarshal(MarshalDirective(d))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got.(Directive) != d {
			t.Errorf("case %d: round trip %+v != %+v", i, got, d)
		}
	}
}

func TestDefenseDirectiveUnmarshalMalformed(t *testing.T) {
	good := MarshalDirective(Directive{Directive: defense.Directive{Reporter: "ap1", Stage: "spoofcheck"}})
	for _, b := range [][]byte{
		{TypeDirective},
		good[:len(good)-1],                      // truncated trailing string
		good[:1+1+directiveFixedWire-3],         // truncated fixed fields
		append(append([]byte{}, good...), 0xff), // trailing junk
	} {
		if _, err := Unmarshal(b); err == nil {
			t.Errorf("malformed directive %v accepted", b)
		}
	}
}

func TestDefenseThreatsWireRoundTrip(t *testing.T) {
	ts := time.Unix(1234, 567000000)
	in := Threats{
		ID:   7,
		More: true,
		States: []defense.ClientThreat{
			{
				MAC:           wifi.MustParseAddr("66:00:00:00:00:01"),
				State:         defense.StateQuarantine,
				Action:        defense.ActionNullSteer,
				Score:         4.5,
				Flags:         3,
				FenceDrops:    2,
				SpeedFlags:    1,
				LastAP:        "ap2",
				Stage:         "spoofcheck",
				LastDistance:  0.8,
				LastThreshold: 0.12,
				BearingDeg:    211.25,
				Pos:           geom.Point{X: 1, Y: 2},
				HasPos:        true,
				Since:         ts,
				Updated:       ts.Add(time.Second),
			},
			{MAC: wifi.MustParseAddr("66:00:00:00:00:02"), Since: ts, Updated: ts},
		},
	}
	got, err := Unmarshal(MarshalThreats(in))
	if err != nil {
		t.Fatal(err)
	}
	out := got.(Threats)
	if out.ID != in.ID || out.More != in.More || len(out.States) != 2 {
		t.Fatalf("header mismatch: %+v", out)
	}
	for i := range in.States {
		a, b := in.States[i], out.States[i]
		if !a.Since.Equal(b.Since) || !a.Updated.Equal(b.Updated) {
			t.Errorf("state %d time mismatch", i)
		}
		a.Since, a.Updated, b.Since, b.Updated = time.Time{}, time.Time{}, time.Time{}, time.Time{}
		if a != b {
			t.Errorf("state %d: %+v != %+v", i, b, a)
		}
	}

	// Oversized strings are capped, not rejected.
	long := Threats{States: []defense.ClientThreat{{LastAP: strings.Repeat("x", 400)}}}
	got, err = Unmarshal(MarshalThreats(long))
	if err != nil {
		t.Fatal(err)
	}
	if n := len(got.(Threats).States[0].LastAP); n != threatMaxStr {
		t.Errorf("capped string length = %d", n)
	}

	// Malformed bodies.
	goodB := MarshalThreats(in)
	for _, b := range [][]byte{
		{TypeThreat, 0, 0},
		goodB[:len(goodB)-1],
		append(append([]byte{}, goodB...), 1),
	} {
		if _, err := Unmarshal(b); err == nil {
			t.Errorf("malformed threats %v accepted", b[:min(len(b), 12)])
		}
	}
}

func TestDefenseQueryKindRoundTrip(t *testing.T) {
	q := Query{MAC: wifi.MustParseAddr("00:16:ea:50:00:02"), All: true, ID: 9, Kind: KindThreats}
	got, err := Unmarshal(MarshalQuery(q))
	if err != nil {
		t.Fatal(err)
	}
	if got.(Query) != q {
		t.Errorf("round trip %+v != %+v", got, q)
	}
	// KindTracks encodes in the legacy 11-byte form.
	q.Kind = KindTracks
	b := MarshalQuery(q)
	if len(b) != 12 { // type byte + 11 body bytes
		t.Errorf("tracks query wire length = %d, want legacy 12", len(b))
	}
	if got, err = Unmarshal(b); err != nil || got.(Query) != q {
		t.Errorf("legacy round trip %+v, %v", got, err)
	}
}

// defenseTestController serves a controller whose defense policy
// escalates straight to null-steer on the first alert and releases
// quickly by decay.
func defenseTestController(t *testing.T) (*Controller, net.Listener) {
	t.Helper()
	c := NewController(&locate.Fence{Boundary: geom.Rect(0, 0, 24, 16)})
	c.DefensePolicy = defense.Policy{
		NullSteerScore: 2, // first alert (weight >= 2) null-steers
		HalfLife:       200 * time.Millisecond,
		MinQuarantine:  time.Millisecond,
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c.Serve(ln)
	t.Cleanup(c.Close)
	return c, ln
}

// TestDefenseDirectiveBroadcastV1Gate pins the acceptance criterion:
// a spoof alert produces a TypeDirective broadcast on v2 sessions and
// NEVER a TypeDirective frame on a v1 session (which instead gets the
// legacy Alert form).
func TestDefenseDirectiveBroadcastV1Gate(t *testing.T) {
	c, ln := defenseTestController(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// v3 reporter + v3 listener (DialContext negotiates the build version).
	a1, err := DialContext(ctx, ln.Addr().String(), Hello{Name: "ap1", Pos: geom.Point{X: 2, Y: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer a1.Close()
	a2, err := DialContext(ctx, ln.Addr().String(), Hello{Name: "ap2", Pos: geom.Point{X: 20, Y: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	directives := a2.Directives()

	// Raw v1 session: speak the wire by hand so every inbound frame's
	// type byte can be inspected.
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if err := WriteMessage(raw, MarshalHello(Hello{Name: "legacy", Pos: geom.Point{X: 10, Y: 2}})); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // let all broadcasters register

	bad := wifi.MustParseAddr("66:00:00:00:00:21")
	if err := a1.SendAlertDetail(Alert{
		APName: "ap1", MAC: bad, Distance: 0.9, Threshold: 0.12,
		BearingDeg: 77, HasBearing: true, Stage: "spoofcheck",
	}); err != nil {
		t.Fatal(err)
	}

	// The v2 listener receives the typed directive with the evidence.
	select {
	case d, ok := <-directives:
		if !ok {
			t.Fatal("directive channel closed")
		}
		if d.MAC != bad || d.Action != defense.ActionNullSteer || d.To != defense.StateQuarantine {
			t.Fatalf("directive = %+v", d)
		}
		if d.BearingDeg != 77 || d.Stage != "spoofcheck" || d.Distance != 0.9 {
			t.Errorf("directive evidence = %+v", d)
		}
		if d.Ack {
			t.Error("broadcast marked as ack")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no directive within 5s")
	}

	// The quarantine list reflects the defense engine's state while the
	// quarantine is live (the fast decay policy below releases it soon).
	if q := c.Quarantined(); len(q) != 1 || q[0].MAC != bad || q[0].Stage != "spoofcheck" {
		t.Errorf("Quarantined() = %+v", q)
	}
	if th, ok := c.Threat(bad); !ok || th.Action != defense.ActionNullSteer {
		t.Errorf("Threat() = %+v, %v", th, ok)
	}

	// The v1 session sees the legacy alert — and no TypeDirective frame,
	// ever. Read frames until the quiet period.
	raw.SetReadDeadline(time.Now().Add(600 * time.Millisecond))
	sawAlert := false
	for {
		body, err := ReadMessage(raw)
		if err != nil {
			break // deadline: no more frames
		}
		if len(body) == 0 {
			t.Fatal("empty frame")
		}
		switch body[0] {
		case TypeAlert:
			al, err := Unmarshal(body)
			if err != nil {
				t.Fatalf("v1 alert decode: %v", err)
			}
			if al.(Alert).MAC != bad {
				t.Errorf("v1 alert MAC = %v", al.(Alert).MAC)
			}
			if al.(Alert).Stage != "" {
				t.Errorf("v1 alert carries v2 stage %q", al.(Alert).Stage)
			}
			sawAlert = true
		case TypeDirective:
			t.Fatal("v1 session received a TypeDirective frame")
		}
	}
	if !sawAlert {
		t.Error("v1 session missed the quarantine alert")
	}

	// By now the fast-decay policy has released the quarantine on its
	// own — the seed's permanent map is gone.
	if s := c.Stats(); s.Defense.Quarantines != 1 {
		t.Errorf("stats = %+v", s.Defense)
	}
}

func TestDefenseV1SendersGated(t *testing.T) {
	_, ln := defenseTestController(t)
	a, err := Dial(ln.Addr().String(), Hello{Name: "v1ap", Pos: geom.Point{}})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.SendRelease(wifi.MustParseAddr("66:00:00:00:00:22")); err != ErrRequiresV3 {
		t.Errorf("v1 SendRelease err = %v", err)
	}
	if err := a.SendDirectiveAck(defense.Directive{}); err != ErrRequiresV3 {
		t.Errorf("v1 SendDirectiveAck err = %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := a.QueryThreats(ctx, Query{All: true}); err != ErrRequiresV3 {
		t.Errorf("v1 QueryThreats err = %v", err)
	}
}

func TestDefenseOperatorReleaseOverWire(t *testing.T) {
	c, ln := defenseTestController(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	ap, err := DialContext(ctx, ln.Addr().String(), Hello{Name: "ap1", Pos: geom.Point{X: 2, Y: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer ap.Close()
	directives := ap.Directives()

	// Observer session (empty name): the CLI's connection shape.
	op, err := DialContext(ctx, ln.Addr().String(), Hello{})
	if err != nil {
		t.Fatal(err)
	}
	defer op.Close()
	time.Sleep(100 * time.Millisecond)

	bad := wifi.MustParseAddr("66:00:00:00:00:23")
	if err := ap.SendAlertDetail(Alert{APName: "ap1", MAC: bad, Distance: 0.9, Threshold: 0.12}); err != nil {
		t.Fatal(err)
	}
	// Quarantine directive lands at the AP.
	select {
	case d := <-directives:
		if d.Action == defense.ActionAllow {
			t.Fatalf("first directive = %+v", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no quarantine directive")
	}

	// Operator releases over the wire; the AP sees the release
	// directive and the quarantine list empties.
	if err := op.SendRelease(bad); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-directives:
		if d.Action != defense.ActionAllow || d.Reporter != "operator" {
			t.Fatalf("release directive = %+v", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no release directive")
	}
	if q := c.Quarantined(); len(q) != 0 {
		t.Errorf("quarantine list after release: %+v", q)
	}
	if s := c.Stats(); s.Defense.OperatorReleases != 1 {
		t.Errorf("stats = %+v", s.Defense)
	}

	// The AP acks an applied countermeasure; the controller counts it.
	if err := ap.SendDirectiveAck(defense.Directive{MAC: bad, Action: defense.ActionNullSteer, Reporter: "ap1"}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().DirectiveAcks != 1 {
		if time.Now().After(deadline) {
			t.Fatal("directive ack never counted")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestDefenseThreatQueryOverWire(t *testing.T) {
	c, ln := defenseTestController(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	ap, err := DialContext(ctx, ln.Addr().String(), Hello{Name: "ap1", Pos: geom.Point{X: 2, Y: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer ap.Close()
	time.Sleep(50 * time.Millisecond)

	bad := wifi.MustParseAddr("66:00:00:00:00:24")
	if err := ap.SendAlertDetail(Alert{APName: "ap1", MAC: bad, Distance: 0.9, Threshold: 0.12, BearingDeg: 33, HasBearing: true}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(c.Quarantined()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("alert never ingested")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// All-threats query.
	states, err := ap.QueryThreats(ctx, Query{All: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 1 || states[0].MAC != bad || states[0].State != defense.StateQuarantine {
		t.Fatalf("QueryThreats(all) = %+v", states)
	}
	if states[0].BearingDeg != 33 || states[0].LastAP != "ap1" {
		t.Errorf("threat evidence = %+v", states[0])
	}

	// Single-MAC query, and a miss.
	states, err = ap.QueryThreats(ctx, Query{MAC: bad})
	if err != nil || len(states) != 1 {
		t.Fatalf("QueryThreats(mac) = %+v, %v", states, err)
	}
	states, err = ap.QueryThreats(ctx, Query{MAC: wifi.MustParseAddr("00:00:00:00:00:99")})
	if err != nil || len(states) != 0 {
		t.Fatalf("QueryThreats(miss) = %+v, %v", states, err)
	}
}

// TestDefenseQuarantineDecaysOverController drives the TTL/decay story
// end to end over TCP: quarantine enters, then releases on its own,
// and the release directive reaches the AP.
func TestDefenseQuarantineDecaysOverController(t *testing.T) {
	c, ln := defenseTestController(t) // 200ms half-life, 1ms MinQuarantine
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	ap, err := DialContext(ctx, ln.Addr().String(), Hello{Name: "ap1", Pos: geom.Point{X: 2, Y: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer ap.Close()
	directives := ap.Directives()
	time.Sleep(50 * time.Millisecond)

	bad := wifi.MustParseAddr("66:00:00:00:00:25")
	if err := ap.SendAlertDetail(Alert{APName: "ap1", MAC: bad, Distance: 0.9, Threshold: 0.12}); err != nil {
		t.Fatal(err)
	}
	var seen []defense.Action
	deadline := time.After(8 * time.Second)
	for {
		select {
		case d, ok := <-directives:
			if !ok {
				t.Fatal("directive channel closed")
			}
			seen = append(seen, d.Action)
			if d.Action == defense.ActionAllow {
				if d.Reporter != "decay" {
					t.Errorf("release reporter = %q", d.Reporter)
				}
				if q := c.Quarantined(); len(q) != 0 {
					t.Errorf("quarantine list after decay: %+v", q)
				}
				if s := c.Stats(); s.Defense.DecayReleases != 1 {
					t.Errorf("stats = %+v", s.Defense)
				}
				return
			}
		case <-deadline:
			t.Fatalf("no decay release; directives seen: %v", seen)
		}
	}
}

// TestDefenseDirectiveV2SessionGate pins the mixed-build contract: a
// session that negotiated v2 (a pre-defense build) never receives
// TypeDirective or TypeThreat frames, and its quarantine alerts stay
// in the exact stage-only v2 form that build shipped with.
func TestDefenseDirectiveV2SessionGate(t *testing.T) {
	_, ln := defenseTestController(t)

	// Raw session advertising v2: read the Welcome by hand, then
	// inspect every broadcast frame's type byte.
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if err := WriteMessage(raw, MarshalHello(Hello{Name: "oldv2", Pos: geom.Point{X: 10, Y: 2}, Version: ProtoV2})); err != nil {
		t.Fatal(err)
	}
	body, err := ReadMessage(raw)
	if err != nil {
		t.Fatal(err)
	}
	if w, err := Unmarshal(body); err != nil || w.(Welcome).Version != ProtoV2 {
		t.Fatalf("welcome = %v, %v", w, err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	reporter, err := DialContext(ctx, ln.Addr().String(), Hello{Name: "ap1", Pos: geom.Point{X: 2, Y: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer reporter.Close()
	time.Sleep(100 * time.Millisecond)

	bad := wifi.MustParseAddr("66:00:00:00:00:26")
	if err := reporter.SendAlertDetail(Alert{
		APName: "ap1", MAC: bad, Distance: 0.9, Threshold: 0.12,
		BearingDeg: 77, HasBearing: true, Stage: "spoofcheck",
	}); err != nil {
		t.Fatal(err)
	}

	raw.SetReadDeadline(time.Now().Add(600 * time.Millisecond))
	sawAlert := false
	for {
		body, err := ReadMessage(raw)
		if err != nil {
			break // deadline: quiet
		}
		if len(body) == 0 {
			t.Fatal("empty frame")
		}
		switch body[0] {
		case TypeAlert:
			// The v2 form: stage string present, no threshold/bearing
			// tail — byte-exact what a v2 build's unmarshal accepts.
			msg, err := Unmarshal(body)
			if err != nil {
				t.Fatalf("v2 alert decode: %v", err)
			}
			al := msg.(Alert)
			if al.MAC != bad || al.Stage != "spoofcheck" {
				t.Errorf("v2 alert = %+v", al)
			}
			if al.Threshold != 0 || al.BearingDeg != 0 {
				t.Errorf("v2 alert carries v3 fields: %+v", al)
			}
			sawAlert = true
		case TypeDirective, TypeThreat:
			t.Fatalf("v2 session received frame type %d", body[0])
		}
	}
	if !sawAlert {
		t.Error("v2 session missed the quarantine alert")
	}
}
