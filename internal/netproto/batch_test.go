package netproto

import (
	"net"
	"reflect"
	"testing"

	"secureangle/internal/music"
	"secureangle/internal/signature"
	"secureangle/internal/wifi"
)

func batchTestSig(n int, scale float64) *signature.Signature {
	grid := make([]float64, n)
	p := make([]float64, n)
	for i := range grid {
		grid[i] = float64(i)
		p[i] = scale * float64(i+1)
	}
	return signature.FromPseudospectrum(&music.Pseudospectrum{AnglesDeg: grid, P: p})
}

func TestReportBatchRoundTrip(t *testing.T) {
	batch := []Report{
		{APName: "ap1", MAC: wifi.Addr{1, 2, 3, 4, 5, 6}, BearingDeg: 41.5, SeqNo: 7, Sig: batchTestSig(16, 1)},
		{APName: "ap2", MAC: wifi.Addr{9, 9, 9, 0, 0, 1}, BearingDeg: -12.25, SeqNo: 8},
		{APName: "ap1", MAC: wifi.Addr{1, 2, 3, 4, 5, 6}, BearingDeg: 300, SeqNo: 9, Sig: batchTestSig(16, 2)},
	}
	msg, err := Unmarshal(MarshalReportBatch(batch))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := msg.(ReportBatch)
	if !ok {
		t.Fatalf("decoded %T, want ReportBatch", msg)
	}
	if !reflect.DeepEqual([]Report(got), batch) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, batch)
	}
}

func TestReportBatchEmptyAndMalformed(t *testing.T) {
	msg, err := Unmarshal(MarshalReportBatch(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got := msg.(ReportBatch); len(got) != 0 {
		t.Fatalf("empty batch decoded to %d reports", len(got))
	}

	// A count the body cannot back must be rejected, not allocated.
	bad := []byte{TypeReportBatch, 0xff, 0xff, 0xff, 0xff}
	if _, err := Unmarshal(bad); err == nil {
		t.Fatal("hostile count accepted")
	}
	// Trailing garbage after the last report must be rejected.
	b := MarshalReportBatch([]Report{{APName: "x", SeqNo: 1}})
	if _, err := Unmarshal(append(b, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// TestSendBatchChunksOversized feeds SendBatch more signed reports than
// one frame can hold and checks every report arrives, split across
// multiple ReportBatch frames.
func TestSendBatchChunksOversized(t *testing.T) {
	// ~23 KB per signature: 60 reports > 1 MB, forcing at least 2 frames.
	sig := batchTestSig(1440, 1)
	var batch []Report
	for i := 0; i < 60; i++ {
		batch = append(batch, Report{APName: "ap1", MAC: wifi.Addr{0, 0, 0, 0, 0, byte(i)}, SeqNo: uint64(i), Sig: sig})
	}

	client, server := net.Pipe()
	type recv struct {
		reports []Report
		frames  int
		err     error
	}
	done := make(chan recv, 1)
	go func() {
		var r recv
		for len(r.reports) < len(batch) {
			body, err := ReadMessage(server)
			if err != nil {
				r.err = err
				break
			}
			msg, err := Unmarshal(body)
			if err != nil {
				r.err = err
				break
			}
			rb, ok := msg.(ReportBatch)
			if !ok {
				t.Errorf("received %T, want ReportBatch", msg)
				break
			}
			r.frames++
			r.reports = append(r.reports, rb...)
		}
		done <- r
	}()

	a := &Agent{conn: client}
	if err := a.SendBatch(batch); err != nil {
		t.Fatal(err)
	}
	r := <-done
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.frames < 2 {
		t.Fatalf("oversized batch arrived in %d frame(s), want >= 2", r.frames)
	}
	if len(r.reports) != len(batch) {
		t.Fatalf("received %d reports, want %d", len(r.reports), len(batch))
	}
	for i := range batch {
		if r.reports[i].SeqNo != batch[i].SeqNo || r.reports[i].MAC != batch[i].MAC {
			t.Fatalf("report %d arrived out of order or corrupted", i)
		}
	}
}
