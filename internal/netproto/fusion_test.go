package netproto

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"secureangle/internal/fusion"
	"secureangle/internal/geom"
	"secureangle/internal/locate"
	"secureangle/internal/wifi"
)

// TestFusionAPReconnectReplacesConnection is the reconnect regression
// test: an AP that reconnects under the same name (its old TCP
// connection lingering) must atomically replace the registration —
// new position used for fusion, old broadcaster retired, old
// connection closed — with broadcasts reaching only the new session.
func TestFusionAPReconnectReplacesConnection(t *testing.T) {
	c, addr := startController(t)
	defer c.Close()
	sub := c.Subscribe(4)

	target := geom.Point{X: 9, Y: 6}
	stalePos := geom.Point{X: 1, Y: 14} // wrong corner: a fix computed with it misses badly
	goodPos := geom.Point{X: 4, Y: 2}
	ap2Pos := geom.Point{X: 20, Y: 3}

	stale, err := Dial(addr, Hello{Name: "ap1", Pos: stalePos})
	if err != nil {
		t.Fatal(err)
	}
	defer stale.Close()
	a2, err := Dial(addr, Hello{Name: "ap2", Pos: ap2Pos})
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	time.Sleep(100 * time.Millisecond) // let both registrations land

	// ap1 reconnects from its real position while the old connection is
	// still open.
	fresh, err := Dial(addr, Hello{Name: "ap1", Pos: goodPos})
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()

	// The controller must have closed the stale connection: its read
	// side sees EOF/reset promptly, not a hang.
	stale.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := ReadMessage(stale.conn); err == nil {
		t.Fatal("stale connection still readable after reconnect")
	}

	// Round trip through the replaced registration: reports from the
	// fresh connection fuse against ap1's NEW position.
	mac := wifi.MustParseAddr("00:16:ea:50:00:21")
	if err := fresh.Send(Report{APName: "ap1", MAC: mac, SeqNo: 1, BearingDeg: geom.BearingDeg(goodPos, target)}); err != nil {
		t.Fatal(err)
	}
	if err := a2.Send(Report{APName: "ap2", MAC: mac, SeqNo: 1, BearingDeg: geom.BearingDeg(ap2Pos, target)}); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-sub.C:
		if d.Pos.Dist(target) > 0.1 {
			t.Errorf("fused at %v, want %v (stale AP position used?)", d.Pos, target)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no decision after reconnect")
	}

	// Broadcasts reach the fresh session (the stale broadcaster is gone,
	// so this would have raced or been lost on the old queue).
	alerts := fresh.Alerts()
	bad := wifi.MustParseAddr("66:00:00:00:00:21")
	if err := a2.SendAlert("ap2", bad, 0.7); err != nil {
		t.Fatal(err)
	}
	select {
	case al, ok := <-alerts:
		if !ok || al.MAC != bad {
			t.Errorf("fresh session broadcast = %+v ok=%v", al, ok)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fresh session received no broadcast")
	}
}

// TestFusionQueryTracksOverWire drives the full v2 mobility-query
// round trip: reports fuse into tracks, an agent Querys one MAC and
// All, and the wire TrackStates match the in-process accessors.
func TestFusionQueryTracksOverWire(t *testing.T) {
	c, addr := startController(t)
	defer c.Close()

	ap1Pos := geom.Point{X: 4, Y: 2}
	ap2Pos := geom.Point{X: 20, Y: 3}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	a1, err := DialContext(ctx, addr, Hello{Name: "ap1", Pos: ap1Pos})
	if err != nil {
		t.Fatal(err)
	}
	defer a1.Close()
	a2, err := DialContext(ctx, addr, Hello{Name: "ap2", Pos: ap2Pos})
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()

	sub := c.Subscribe(8)
	mac := wifi.MustParseAddr("00:16:ea:50:00:22")
	for seq := uint64(1); seq <= 3; seq++ {
		target := geom.Point{X: 8 + float64(seq), Y: 6}
		if err := a1.SendContext(ctx, Report{APName: "ap1", MAC: mac, SeqNo: seq, BearingDeg: geom.BearingDeg(ap1Pos, target)}); err != nil {
			t.Fatal(err)
		}
		if err := a2.SendContext(ctx, Report{APName: "ap2", MAC: mac, SeqNo: seq, BearingDeg: geom.BearingDeg(ap2Pos, target)}); err != nil {
			t.Fatal(err)
		}
		select {
		case <-sub.C:
		case <-ctx.Done():
			t.Fatalf("no decision for seq %d", seq)
		}
	}

	// Wire query for the single MAC.
	states, err := a1.QueryTracks(ctx, Query{MAC: mac})
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 1 {
		t.Fatalf("QueryTracks(mac) = %d states, want 1", len(states))
	}
	ts := states[0]
	if ts.MAC != mac || ts.Fixes != 3 || ts.LastSeq != 3 {
		t.Errorf("wire track = %+v, want 3 fixes through seq 3", ts)
	}
	want, ok := c.Track(mac)
	if !ok {
		t.Fatal("in-process Track missing")
	}
	if ts.Pos != want.Pos || ts.Vel != want.Vel || !ts.Updated.Equal(want.Updated) || ts.Decision != want.Decision {
		t.Errorf("wire track %+v != in-process %+v", ts, want)
	}

	// Query for an unknown MAC returns an empty (but prompt) reply.
	none, err := a2.QueryTracks(ctx, Query{MAC: wifi.MustParseAddr("aa:aa:aa:aa:aa:aa")})
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Errorf("unknown MAC returned %d states", len(none))
	}

	// Query All sees the same single client.
	all, err := a2.QueryTracks(ctx, Query{All: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 || all[0].MAC != mac {
		t.Errorf("QueryTracks(all) = %+v", all)
	}
}

// TestFusionQueryRejectedOnV1 pins the compatibility gate: a v1 agent
// cannot send a Query (client-side error), and a raw v1 session
// pushing a Query frame at the controller is ignored without the
// connection being torn down.
func TestFusionQueryRejectedOnV1(t *testing.T) {
	c, addr := startController(t)
	defer c.Close()

	v1, err := Dial(addr, Hello{Name: "ap1", Pos: geom.Point{X: 1, Y: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer v1.Close()
	if err := v1.Query(Query{All: true}); !errors.Is(err, ErrRequiresV2) {
		t.Errorf("v1 Query err = %v, want ErrRequiresV2", err)
	}
	if _, err := v1.QueryTracks(context.Background(), Query{All: true}); !errors.Is(err, ErrRequiresV2) {
		t.Errorf("v1 QueryTracks err = %v, want ErrRequiresV2", err)
	}

	// A misbehaving v1 peer that writes the frame anyway: the
	// controller ignores it and the session stays usable.
	time.Sleep(50 * time.Millisecond)
	if err := WriteMessage(v1.conn, MarshalQuery(Query{All: true})); err != nil {
		t.Fatal(err)
	}
	mac := wifi.MustParseAddr("66:00:00:00:00:23")
	if err := v1.SendAlert("ap1", mac, 0.9); err != nil {
		t.Fatalf("alert after rogue query: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(c.Quarantined()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("session died after v1 query frame")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFusionQueryTracksMarshalRoundTrip covers the Tracks wire codec,
// including the chunking flag.
func TestFusionQueryTracksMarshalRoundTrip(t *testing.T) {
	in := Tracks{More: true}
	for i := 0; i < 3; i++ {
		in.States = append(in.States, trackStateFixture(i))
	}
	got, err := Unmarshal(MarshalTracks(in))
	if err != nil {
		t.Fatal(err)
	}
	out := got.(Tracks)
	if !out.More || len(out.States) != 3 {
		t.Fatalf("round trip %+v", out)
	}
	for i, ts := range out.States {
		want := in.States[i]
		if ts.MAC != want.MAC || ts.Pos != want.Pos || ts.Vel != want.Vel ||
			ts.Fixes != want.Fixes || ts.LastSeq != want.LastSeq ||
			!ts.Updated.Equal(want.Updated) || ts.Decision != want.Decision {
			t.Errorf("state %d: %+v != %+v", i, ts, want)
		}
	}

	q := Query{MAC: wifi.MustParseAddr("00:16:ea:50:00:24"), All: true}
	gq, err := Unmarshal(MarshalQuery(q))
	if err != nil {
		t.Fatal(err)
	}
	if gq.(Query) != q {
		t.Errorf("query round trip %+v != %+v", gq, q)
	}

	for i, b := range [][]byte{
		{TypeQuery},
		{TypeQuery, 1, 2, 3},
		{TypeTrack},
		{TypeTrack, 0, 0, 0, 0, 9, 1}, // count says 9, body empty-ish
	} {
		if _, err := Unmarshal(b); err == nil {
			t.Errorf("malformed case %d accepted", i)
		}
	}
}

// TestFusionControllerStats exercises Controller.Stats end to end:
// fused decisions, duplicate drops, and unknown-AP drops all count.
func TestFusionControllerStats(t *testing.T) {
	c, addr := startController(t)
	defer c.Close()
	sub := c.Subscribe(4)

	ap1Pos := geom.Point{X: 4, Y: 2}
	ap2Pos := geom.Point{X: 20, Y: 3}
	a1, err := Dial(addr, Hello{Name: "ap1", Pos: ap1Pos})
	if err != nil {
		t.Fatal(err)
	}
	defer a1.Close()
	a2, err := Dial(addr, Hello{Name: "ap2", Pos: ap2Pos})
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	time.Sleep(50 * time.Millisecond)

	target := geom.Point{X: 9, Y: 6}
	mac := wifi.MustParseAddr("00:16:ea:50:00:25")
	a1.Send(Report{APName: "ap1", MAC: mac, SeqNo: 1, BearingDeg: geom.BearingDeg(ap1Pos, target)})
	a2.Send(Report{APName: "ap2", MAC: mac, SeqNo: 1, BearingDeg: geom.BearingDeg(ap2Pos, target)})
	select {
	case <-sub.C:
	case <-time.After(5 * time.Second):
		t.Fatal("no decision")
	}
	// A replay of the decided transmission and a report from a ghost AP.
	a1.Send(Report{APName: "ap1", MAC: mac, SeqNo: 1, BearingDeg: 10})
	a1.Send(Report{APName: "ghost", MAC: mac, SeqNo: 2, BearingDeg: 10})

	deadline := time.Now().Add(5 * time.Second)
	for {
		s := c.Stats()
		if s.Decisions == 1 && s.DupDropped >= 1 && s.UnknownAPDrops == 1 {
			if s.Ingested < 3 {
				t.Errorf("Ingested = %d, want >= 3", s.Ingested)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats never converged: %+v", s)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFusionControllerMinDiversityDisabled: the controller-level knob
// reaches the engine — with the guard disabled, a degenerate pair
// fuses immediately instead of waiting out the decision timeout.
func TestFusionControllerMinDiversityDisabled(t *testing.T) {
	fence := &locate.Fence{Boundary: geom.Rect(0, 0, 24, 16)}
	c := NewController(fence)
	c.MinDiversityDeg = -1
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c.Serve(ln)
	defer c.Close()

	ap1 := geom.Point{X: 20, Y: 5}
	ap2 := geom.Point{X: 12, Y: 13}
	ap3 := geom.Point{X: 8, Y: 5}
	target := geom.Point{X: 16, Y: 9.5} // near the ap1-ap2 line

	a1, _ := Dial(ln.Addr().String(), Hello{Name: "ap1", Pos: ap1})
	defer a1.Close()
	a2, _ := Dial(ln.Addr().String(), Hello{Name: "ap2", Pos: ap2})
	defer a2.Close()
	a3, _ := Dial(ln.Addr().String(), Hello{Name: "ap3", Pos: ap3})
	defer a3.Close()
	time.Sleep(50 * time.Millisecond)

	mac := wifi.MustParseAddr("00:16:ea:50:00:26")
	a1.Send(Report{APName: "ap1", MAC: mac, SeqNo: 7, BearingDeg: geom.BearingDeg(ap1, target)})
	a2.Send(Report{APName: "ap2", MAC: mac, SeqNo: 7, BearingDeg: geom.BearingDeg(ap2, target)})

	// With three APs registered and the guard off, two low-diversity
	// bearings decide at once — well inside the 1s forced timeout.
	select {
	case d := <-c.Decisions():
		if len(d.APs) != 2 {
			t.Errorf("decision used %d APs, want the immediate pair", len(d.APs))
		}
	case <-time.After(700 * time.Millisecond):
		t.Fatal("guard disabled but decision still deferred")
	}
}

func trackStateFixture(i int) (ts fusion.TrackState) {
	ts.MAC = wifi.Addr{0, 0x16, 0xea, 0x50, 0x01, byte(i)}
	ts.Pos = geom.Point{X: float64(i) + 0.5, Y: 2 * float64(i)}
	ts.Vel = geom.Point{X: -0.25, Y: float64(i)}
	ts.Fixes = uint64(10 + i)
	ts.LastSeq = uint64(100 + i)
	ts.Updated = time.Unix(1700000000+int64(i), 12345)
	ts.Decision = locate.Drop
	return ts
}

// TestFusionObserverSessionNotAnAP: an empty-name Hello is an observer
// — it can query tracks and receives broadcasts, but is not counted as
// a registered AP, so it does not break the all-APs-reported fusion
// shortcut for low-diversity geometry.
func TestFusionObserverSessionNotAnAP(t *testing.T) {
	c, addr := startController(t)
	defer c.Close()

	ap1 := geom.Point{X: 20, Y: 5}
	ap2 := geom.Point{X: 12, Y: 13}
	target := geom.Point{X: 16, Y: 9.5} // ~7 deg diversity: below the guard

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	a1, err := DialContext(ctx, addr, Hello{Name: "ap1", Pos: ap1})
	if err != nil {
		t.Fatal(err)
	}
	defer a1.Close()
	a2, err := DialContext(ctx, addr, Hello{Name: "ap2", Pos: ap2})
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	obs, err := DialContext(ctx, addr, Hello{}) // observer: empty name
	if err != nil {
		t.Fatal(err)
	}
	defer obs.Close()
	time.Sleep(50 * time.Millisecond)

	// Both (and all) registered APs report: the shortcut fuses the
	// low-diversity pair immediately. If the observer were counted as
	// a third AP, this would stall until the 1s forced timeout.
	mac := wifi.MustParseAddr("00:16:ea:50:00:27")
	a1.SendContext(ctx, Report{APName: "ap1", MAC: mac, SeqNo: 1, BearingDeg: geom.BearingDeg(ap1, target)})
	a2.SendContext(ctx, Report{APName: "ap2", MAC: mac, SeqNo: 1, BearingDeg: geom.BearingDeg(ap2, target)})
	select {
	case <-c.Decisions():
	case <-time.After(700 * time.Millisecond):
		t.Fatal("observer session inflated apCount: all-APs shortcut did not fire")
	}

	// The observer can pull the resulting track over the wire.
	states, err := obs.QueryTracks(ctx, Query{All: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 1 || states[0].MAC != mac {
		t.Errorf("observer query = %+v", states)
	}
}

// TestFusionServeValidatesConfig: contradictory fusion tuning fails at
// Serve, before peers can trigger the lazy engine build mid-handler.
func TestFusionServeValidatesConfig(t *testing.T) {
	fence := &locate.Fence{Boundary: geom.Rect(0, 0, 24, 16)}
	c := NewController(fence)
	c.MinAPs = 1 // triangulation needs two bearings
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	defer func() {
		if recover() == nil {
			t.Error("Serve accepted MinAPs=1")
		}
	}()
	c.Serve(ln)
}

// TestFusionQueryTracksDrainsStaleReplies: a reply left behind by a
// ctx-cancelled QueryTracks must not be returned to the next query.
func TestFusionQueryTracksDrainsStaleReplies(t *testing.T) {
	c, addr := startController(t)
	defer c.Close()
	sub := c.Subscribe(4)

	ap1Pos := geom.Point{X: 4, Y: 2}
	ap2Pos := geom.Point{X: 20, Y: 3}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	a1, err := DialContext(ctx, addr, Hello{Name: "ap1", Pos: ap1Pos})
	if err != nil {
		t.Fatal(err)
	}
	defer a1.Close()
	a2, err := DialContext(ctx, addr, Hello{Name: "ap2", Pos: ap2Pos})
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()

	target := geom.Point{X: 9, Y: 6}
	mac := wifi.MustParseAddr("00:16:ea:50:00:28")
	a1.SendContext(ctx, Report{APName: "ap1", MAC: mac, SeqNo: 1, BearingDeg: geom.BearingDeg(ap1Pos, target)})
	a2.SendContext(ctx, Report{APName: "ap2", MAC: mac, SeqNo: 1, BearingDeg: geom.BearingDeg(ap2Pos, target)})
	select {
	case <-sub.C:
	case <-ctx.Done():
		t.Fatal("no decision")
	}

	// Abandon a query: send it, never read the reply.
	if err := a1.Query(Query{All: true}); err != nil {
		t.Fatal(err)
	}
	_ = a1.TrackReplies()              // subscribe so the reply queues
	time.Sleep(100 * time.Millisecond) // let the stale frame land

	// The next query must answer with ITS result, not the stale one.
	states, err := a1.QueryTracks(ctx, Query{MAC: wifi.MustParseAddr("aa:aa:aa:aa:aa:aa")})
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 0 {
		t.Errorf("stale All-reply leaked into a MAC query: %+v", states)
	}
}

// TestFusionAlertsParkedBeforeSubscribe: broadcasts read by the shared
// reader (started via TrackReplies) before Alerts() is called are
// delivered to the eventual subscriber, not dropped.
func TestFusionAlertsParkedBeforeSubscribe(t *testing.T) {
	c, addr := startController(t)
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	listener, err := DialContext(ctx, addr, Hello{Name: "ap1", Pos: geom.Point{X: 1, Y: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer listener.Close()
	sender, err := DialContext(ctx, addr, Hello{Name: "ap2", Pos: geom.Point{X: 2, Y: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()

	// Start the listener's shared reader through the tracks side only.
	if _, err := listener.QueryTracks(ctx, Query{All: true}); err != nil {
		t.Fatal(err)
	}
	bad := wifi.MustParseAddr("66:00:00:00:00:29")
	if err := sender.SendAlert("ap2", bad, 0.8); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(c.Quarantined()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("alert never quarantined")
		}
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond) // broadcast reaches the reader pre-subscribe

	// Late subscription must still see the parked broadcast.
	select {
	case al, ok := <-listener.Alerts():
		if !ok || al.MAC != bad {
			t.Errorf("parked alert = %+v ok=%v", al, ok)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("alert read before Alerts() was dropped")
	}
}
