package netproto

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"secureangle/internal/geom"
	"secureangle/internal/locate"
	"secureangle/internal/wifi"
)

// TestControllerConcurrentAgents hammers the controller with many agents
// reporting many transmissions concurrently and checks every fusable
// transmission yields exactly one decision.
func TestControllerConcurrentAgents(t *testing.T) {
	fence := &locate.Fence{Boundary: geom.Rect(0, 0, 24, 16)}
	c := NewController(fence)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c.Serve(ln)
	defer c.Close()

	const nAPs = 6
	const nTx = 50
	apPos := make([]geom.Point, nAPs)
	agents := make([]*Agent, nAPs)
	for i := 0; i < nAPs; i++ {
		apPos[i] = geom.Point{X: float64(i * 4), Y: float64((i % 3) * 7)}
		a, err := Dial(ln.Addr().String(), Hello{Name: fmt.Sprintf("ap%d", i), Pos: apPos[i]})
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		agents[i] = a
	}
	// Give the controller a moment to register all Hellos before reports
	// arrive (reports from unregistered APs are dropped by design).
	time.Sleep(100 * time.Millisecond)

	// Each transmission is seen by all APs; agents send concurrently.
	targets := make([]geom.Point, nTx)
	for i := range targets {
		targets[i] = geom.Point{X: 2 + float64(i%20), Y: 2 + float64(i%12)}
	}
	var wg sync.WaitGroup
	for ai, a := range agents {
		wg.Add(1)
		go func(ai int, a *Agent) {
			defer wg.Done()
			for seq, target := range targets {
				r := Report{
					APName:     fmt.Sprintf("ap%d", ai),
					MAC:        wifi.Addr{0, 0, 0, 0, 0, byte(seq)},
					SeqNo:      uint64(seq),
					BearingDeg: geom.BearingDeg(apPos[ai], target),
				}
				if err := a.Send(r); err != nil {
					t.Errorf("agent %d: %v", ai, err)
					return
				}
			}
		}(ai, a)
	}
	wg.Wait()

	got := map[uint64]FenceDecision{}
	timeout := time.After(10 * time.Second)
	for len(got) < nTx {
		select {
		case d, ok := <-c.Decisions():
			if !ok {
				t.Fatalf("decisions channel closed with %d/%d", len(got), nTx)
			}
			if _, dup := got[d.SeqNo]; dup {
				t.Fatalf("duplicate decision for seq %d", d.SeqNo)
			}
			got[d.SeqNo] = d
		case <-timeout:
			t.Fatalf("timeout with %d/%d decisions", len(got), nTx)
		}
	}
	// Every decision localises its target accurately and allows it
	// (all targets are inside).
	for seq, d := range got {
		want := targets[seq]
		if d.Pos.Dist(want) > 0.5 {
			t.Errorf("seq %d localised at %v, want %v", seq, d.Pos, want)
		}
		if d.Decision != locate.Allow {
			t.Errorf("seq %d dropped", seq)
		}
		if len(d.APs) < 2 {
			t.Errorf("seq %d fused from %d APs", seq, len(d.APs))
		}
	}
}

// TestAgentConcurrentSend checks Agent.Send is safe under concurrent use
// (the mutex must serialise frames; interleaved writes would corrupt the
// length-prefixed stream).
func TestAgentConcurrentSend(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	done := make(chan error, 1)
	const n = 200
	go func() {
		// Read Hello + n reports off the pipe; any framing corruption
		// surfaces as a decode error.
		for i := 0; i <= n; i++ {
			body, err := ReadMessage(server)
			if err != nil {
				done <- err
				return
			}
			if _, err := Unmarshal(body); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	a, err := NewAgentOn(client, Hello{Name: "stress", Pos: geom.Point{}})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < n/8; i++ {
				r := Report{APName: "stress", SeqNo: uint64(g*1000 + i), BearingDeg: float64(i)}
				if err := a.Send(r); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("stream corrupted: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reader hung")
	}
}
