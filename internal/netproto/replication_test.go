package netproto

import (
	"context"
	"net"
	"sort"
	"testing"
	"time"

	"secureangle/internal/defense"
	"secureangle/internal/geom"
	"secureangle/internal/journal"
	"secureangle/internal/locate"
	"secureangle/internal/wifi"
)

func TestReplicationWireRoundTrip(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	seg := Segment{
		Partition: 3, PartCount: 8, LeaderLSN: 4242,
		Records: []journal.Record{
			{LSN: 10, Type: journal.RecReport, TS: now, Data: []byte("hello")},
			{LSN: 11, Type: journal.RecAlert, TS: now.Add(time.Millisecond), Data: nil},
			{LSN: 12, Type: journal.RecSkip, TS: now, Data: journal.EncodeSkip(journal.SkipEvent{End: 20})},
		},
	}
	got, err := Unmarshal(MarshalSegment(seg))
	if err != nil {
		t.Fatalf("segment round trip: %v", err)
	}
	g, ok := got.(Segment)
	if !ok {
		t.Fatalf("segment decoded as %T", got)
	}
	if g.Partition != seg.Partition || g.PartCount != seg.PartCount || g.LeaderLSN != seg.LeaderLSN || len(g.Records) != 3 {
		t.Fatalf("segment header mismatch: %+v", g)
	}
	for i, rec := range g.Records {
		want := seg.Records[i]
		if rec.LSN != want.LSN || rec.Type != want.Type || !rec.TS.Equal(want.TS) || string(rec.Data) != string(want.Data) {
			t.Fatalf("record %d mismatch: got %+v want %+v", i, rec, want)
		}
	}

	// Heartbeat frames are empty but carry the leader position.
	hb := Segment{Partition: 0, PartCount: 1, LeaderLSN: 99}
	got, err = Unmarshal(MarshalSegment(hb))
	if err != nil {
		t.Fatalf("heartbeat round trip: %v", err)
	}
	if g := got.(Segment); g.LeaderLSN != 99 || len(g.Records) != 0 {
		t.Fatalf("heartbeat mismatch: %+v", g)
	}

	ack := SegmentAck{Positions: []SegmentPos{{Partition: 0, LSN: 7}, {Partition: 3, LSN: 4242}}}
	got, err = Unmarshal(MarshalSegmentAck(ack))
	if err != nil {
		t.Fatalf("ack round trip: %v", err)
	}
	ga, ok := got.(SegmentAck)
	if !ok {
		t.Fatalf("ack decoded as %T", got)
	}
	if len(ga.Positions) != 2 || ga.Positions[1] != ack.Positions[1] {
		t.Fatalf("ack mismatch: %+v", ga)
	}

	// Truncated segment frames must error, not panic or mis-parse.
	raw := MarshalSegment(seg)
	for _, cut := range []int{1, 5, 14, len(raw) - 1} {
		if _, err := Unmarshal(raw[:cut]); err == nil {
			t.Errorf("truncated segment (%d bytes) decoded without error", cut)
		}
	}
}

// TestReplicationFailoverEndToEnd is the PR's acceptance path: a
// partitioned leader quarantines an attacker, a warm standby follows
// the journal stream to zero lag, the leader dies abruptly, the
// standby promotes, and the AP reconnects to it with its original
// enrollment token and is resumed into the surviving quarantine.
func TestReplicationFailoverEndToEnd(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	fence := &locate.Fence{Boundary: geom.Rect(0, 0, 24, 16)}
	policy := defense.Policy{HalfLife: time.Hour, MinQuarantine: time.Millisecond}
	attacker := wifi.MustParseAddr("66:00:00:00:00:01")
	ap1Pos := geom.Point{X: 0, Y: 0}

	// --- Leader: partitioned, authenticated, journaling. ---
	leader := NewController(fence)
	leader.Partitions = 2
	leader.DefensePolicy = policy
	leader.RequireAuth = true
	leader.SnapshotInterval = -1
	if err := leader.WithJournalDir(t.TempDir(), journal.Options{}); err != nil {
		t.Fatal(err)
	}
	ap1Token, err := leader.EnrollAP("ap1")
	if err != nil {
		t.Fatal(err)
	}
	standbyToken, err := leader.EnrollAP("standby-1")
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	leader.Serve(ln)

	// --- Standby follows over the same enrollment trust root. ---
	sb, err := NewStandby(StandbyConfig{
		LeaderAddr: ln.Addr().String(),
		Dir:        t.TempDir(),
		Token:      standbyToken,
		Fence:      fence,
		Configure: func(c *Controller) {
			c.Partitions = 2
			c.DefensePolicy = policy
			c.RequireAuth = true
			c.SnapshotInterval = -1
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close()
	runDone := make(chan error, 1)
	go func() { runDone <- sb.Run(ctx) }()

	ag1, err := DialContext(ctx, ln.Addr().String(), Hello{Name: "ap1", Pos: ap1Pos, Token: ap1Token})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)

	// The incident: quarantine the attacker on the leader.
	if err := ag1.SendAlertDetail(Alert{
		APName: "ap1", MAC: attacker, Distance: 0.9, Threshold: 0.12,
		BearingDeg: 60, HasBearing: true, Stage: "spoofcheck",
	}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "leader quarantine", func() bool { return len(leader.Quarantined()) == 1 })

	// Replication lag drains to zero on both ends of the stream: the
	// standby reports failover-ready, and the leader's own replication
	// status sees the standby fully acked.
	waitFor(t, 10*time.Second, "standby failover-ready", func() bool {
		st := sb.Status()
		return st.Connected && st.FailoverReady && st.MaxLag == 0
	})
	waitFor(t, 10*time.Second, "leader sees replica at zero lag", func() bool {
		reps := leader.ReplicationStatus()
		return len(reps) == 1 && reps[0].MaxLag == 0
	})
	// The warm controller already mirrors the incident.
	if q := sb.Controller().Quarantined(); len(q) != 1 || q[0].MAC != attacker {
		t.Fatalf("standby warm quarantine = %+v", q)
	}
	if sb.Promoted() {
		t.Fatal("standby promoted itself before the leader died")
	}

	// --- Abrupt leader death: listener and AP session torn down, the
	// controller abandoned without Close (no shutdown snapshot, no
	// graceful journal seal reaches the standby). ---
	ag1.Close()
	ln.Close()

	// Operator-driven promotion (the POST /promote path calls the same
	// method).
	sb.Promote()
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("standby Run after promotion: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("standby Run did not return after promotion")
	}
	promoted := sb.Controller()
	if q := promoted.Quarantined(); len(q) != 1 || q[0].MAC != attacker {
		t.Fatalf("promoted quarantine = %+v", q)
	}

	// --- The fleet fails over: ap1 reconnects to the promoted standby
	// with its ORIGINAL token (enrollment streamed through the journal)
	// and is resumed into the surviving quarantine. ---
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	promoted.Serve(ln2)
	ag2, err := DialContext(ctx, ln2.Addr().String(), Hello{Name: "ap1", Pos: ap1Pos, Token: ap1Token})
	if err != nil {
		t.Fatalf("ap1 reconnect with original token: %v", err)
	}
	defer ag2.Close()
	select {
	case d, ok := <-ag2.Directives():
		if !ok {
			t.Fatal("directive channel closed awaiting resume")
		}
		if d.MAC != attacker || d.Action != defense.ActionQuarantine || d.Reporter != "resume" {
			t.Fatalf("resume directive = %+v", d)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no resume directive from the promoted standby")
	}

	// An un-enrolled peer is still locked out post-failover.
	if _, err := DialContext(ctx, ln2.Addr().String(), Hello{Name: "rogue", Pos: ap1Pos}); err == nil {
		t.Fatal("tokenless dial to promoted standby succeeded under RequireAuth")
	}
}

// TestStandbyAutoPromotesOnLeaderSilence covers the leader-loss
// timeout: PromoteAfter of silence promotes without an operator.
func TestStandbyAutoPromotesOnLeaderSilence(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	fence := &locate.Fence{Boundary: geom.Rect(0, 0, 24, 16)}

	leader := NewController(fence)
	leader.SnapshotInterval = -1
	if err := leader.WithJournalDir(t.TempDir(), journal.Options{}); err != nil {
		t.Fatal(err)
	}
	token, err := leader.EnrollAP("standby-1")
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	leader.Serve(ln)

	sb, err := NewStandby(StandbyConfig{
		LeaderAddr:   ln.Addr().String(),
		Dir:          t.TempDir(),
		Token:        token,
		Fence:        fence,
		Configure:    func(c *Controller) { c.SnapshotInterval = -1 },
		PromoteAfter: time.Second,
		ReconnectMin: 50 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close()
	runDone := make(chan error, 1)
	go func() { runDone <- sb.Run(ctx) }()

	// Wait until the standby has actually followed (sized itself from a
	// frame), then kill the leader without ceremony.
	waitFor(t, 10*time.Second, "standby to follow", func() bool {
		st := sb.Status()
		return st.Connected && len(st.Partitions) > 0
	})
	ln.Close()
	leader.Close() // drops the replication session; the stream goes silent

	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("standby Run: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("standby never auto-promoted after leader silence")
	}
	if !sb.Promoted() {
		t.Fatal("Run returned but standby not promoted")
	}
}

// TestPartitionedDecisionIdentity pins the refactor's core invariant: a
// controller sharded over 4 partitions produces exactly the decisions
// and threat states of the monolithic (1-partition) controller for the
// same input sequence.
func TestPartitionedDecisionIdentity(t *testing.T) {
	fence := &locate.Fence{Boundary: geom.Rect(0, 0, 24, 16)}
	ap1Pos, ap2Pos := geom.Point{X: 0, Y: 0}, geom.Point{X: 24, Y: 0}
	policy := defense.Policy{HalfLife: time.Hour, MinQuarantine: time.Millisecond}

	build := func(parts int) *Controller {
		c := NewController(fence)
		c.Partitions = parts
		c.DefensePolicy = policy
		c.mu.Lock()
		c.apPos["ap1"] = ap1Pos
		c.apPos["ap2"] = ap2Pos
		c.mu.Unlock()
		return c
	}
	mono, sharded := build(1), build(4)
	defer mono.Close()
	defer sharded.Close()
	monoSub := mono.Subscribe(256)
	shardedSub := sharded.Subscribe(256)

	// A spread of MACs that lands on all 4 partitions (IndexFor keys
	// off the high-order bits), mixed inside/outside targets, plus
	// spoof alerts for two of them.
	macs := make([]wifi.Addr, 12)
	for i := range macs {
		macs[i] = wifi.Addr{byte(i * 21), byte(i * 73), 0x55, 0, 0, byte(i + 1)}
	}
	feed := func(c *Controller) {
		for i, mac := range macs {
			target := geom.Point{X: float64(2 + i*2), Y: 8}
			if i%3 == 0 {
				target.Y = 30 // outside the fence: a drop decision
			}
			c.ingest(Report{APName: "ap1", MAC: mac, SeqNo: uint64(i + 1), BearingDeg: geom.BearingDeg(ap1Pos, target)})
			c.ingest(Report{APName: "ap2", MAC: mac, SeqNo: uint64(i + 1), BearingDeg: geom.BearingDeg(ap2Pos, target)})
		}
		c.handleAlert(Alert{APName: "ap1", MAC: macs[2], Distance: 0.9, Threshold: 0.12, Stage: "spoofcheck"})
		c.handleAlert(Alert{APName: "ap2", MAC: macs[7], Distance: 0.8, Threshold: 0.12, Stage: "spoofcheck"})
	}
	feed(mono)
	feed(sharded)

	collect := func(ch <-chan FenceDecision, n int) []FenceDecision {
		out := make([]FenceDecision, 0, n)
		for len(out) < n {
			select {
			case d := <-ch:
				out = append(out, d)
			case <-time.After(10 * time.Second):
				t.Fatalf("only %d/%d decisions arrived", len(out), n)
			}
		}
		return out
	}
	want := collect(monoSub.C, len(macs))
	got := collect(shardedSub.C, len(macs))
	key := func(d FenceDecision) string { return d.MAC.String() }
	sort.Slice(want, func(i, j int) bool { return key(want[i]) < key(want[j]) })
	sort.Slice(got, func(i, j int) bool { return key(got[i]) < key(got[j]) })
	for i := range want {
		w, g := want[i], got[i]
		if w.MAC != g.MAC || w.SeqNo != g.SeqNo || w.Decision != g.Decision || w.Pos != g.Pos {
			t.Fatalf("decision %d diverges: mono %+v vs sharded %+v", i, w, g)
		}
	}

	// Threat state is identical too (Threats() is MAC-sorted on both).
	wantTh, gotTh := mono.Threats(), sharded.Threats()
	if len(wantTh) != len(gotTh) {
		t.Fatalf("threat counts diverge: mono %d vs sharded %d", len(wantTh), len(gotTh))
	}
	for i := range wantTh {
		w, g := wantTh[i], gotTh[i]
		if w.MAC != g.MAC || w.State != g.State || w.Flags != g.Flags {
			t.Fatalf("threat %d diverges: mono %+v vs sharded %+v", i, w, g)
		}
	}
	if len(mono.Quarantined()) != 2 || len(sharded.Quarantined()) != 2 {
		t.Fatalf("quarantine counts: mono %d, sharded %d, want 2",
			len(mono.Quarantined()), len(sharded.Quarantined()))
	}

	// Aggregate stats line up on the totals that are partition-invariant.
	ms, ss := mono.Stats(), sharded.Stats()
	if ms.Stats.Ingested != ss.Stats.Ingested || ms.Stats.Decisions != ss.Stats.Decisions {
		t.Fatalf("fusion stats diverge: mono %+v vs sharded %+v", ms.Stats, ss.Stats)
	}
}

// TestCloseSnapshotsEveryPartition is the shutdown-ordering regression
// test: Close must snapshot each partition's journal before sealing it,
// in deterministic partition order, so a restart restores instantly
// with no WAL tail.
func TestCloseSnapshotsEveryPartition(t *testing.T) {
	dir := t.TempDir()
	fence := &locate.Fence{Boundary: geom.Rect(0, 0, 24, 16)}
	ap1Pos, ap2Pos := geom.Point{X: 0, Y: 0}, geom.Point{X: 24, Y: 0}

	c := NewController(fence)
	c.Partitions = 4
	if err := c.WithJournalDir(dir, journal.Options{}); err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	c.apPos["ap1"] = ap1Pos
	c.apPos["ap2"] = ap2Pos
	c.mu.Unlock()
	// IndexFor keys off the high-order MAC bits, so spread the first
	// octet across its full range to land traffic in every partition.
	for i := 0; i < 64; i++ {
		mac := wifi.Addr{byte(i * 4), byte(i * 37), byte(i * 11), 0, 0, byte(i)}
		target := geom.Point{X: 12, Y: 8}
		c.ingest(Report{APName: "ap1", MAC: mac, SeqNo: 1, BearingDeg: geom.BearingDeg(ap1Pos, target)})
		c.ingest(Report{APName: "ap2", MAC: mac, SeqNo: 1, BearingDeg: geom.BearingDeg(ap2Pos, target)})
	}
	c.Close()

	// Every partition journal must reopen with its snapshot covering its
	// full history: SnapshotLSN == LSN means zero tail to replay.
	for p := 0; p < 4; p++ {
		j, err := journal.Open(dir+"/p"+string(rune('0'+p)), journal.Options{})
		if err != nil {
			t.Fatalf("reopen p%d: %v", p, err)
		}
		st := j.Stats()
		j.Close()
		if st.LSN == 0 {
			t.Fatalf("p%d journalled nothing — MAC spread missed it", p)
		}
		if st.SnapshotLSN != st.LSN {
			t.Fatalf("p%d sealed with uncovered tail: snapshot LSN %d < LSN %d", p, st.SnapshotLSN, st.LSN)
		}
	}
}
