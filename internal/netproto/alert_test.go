package netproto

import (
	"net"
	"testing"
	"time"

	"secureangle/internal/geom"
	"secureangle/internal/locate"
	"secureangle/internal/wifi"
)

func TestAlertMarshalRoundTrip(t *testing.T) {
	a := Alert{APName: "ap3", MAC: wifi.MustParseAddr("00:16:ea:50:00:07"), Distance: 0.83}
	got, err := Unmarshal(MarshalAlert(a))
	if err != nil {
		t.Fatal(err)
	}
	if got.(Alert) != a {
		t.Errorf("round trip %+v != %+v", got, a)
	}
}

func TestAlertUnmarshalMalformed(t *testing.T) {
	for _, b := range [][]byte{
		{TypeAlert},
		{TypeAlert, 0, 2, 'a', 'b', 1, 2, 3}, // truncated MAC+distance
	} {
		if _, err := Unmarshal(b); err == nil {
			t.Errorf("malformed alert %v accepted", b)
		}
	}
}

func TestQuarantinePropagation(t *testing.T) {
	// AP1 flags a spoofer; the controller quarantines the MAC and every
	// other AP learns about it.
	fence := &locate.Fence{Boundary: geom.Rect(0, 0, 24, 16)}
	c := NewController(fence)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c.Serve(ln)
	defer c.Close()

	a1, err := Dial(ln.Addr().String(), Hello{Name: "ap1", Pos: geom.Point{X: 8, Y: 5}})
	if err != nil {
		t.Fatal(err)
	}
	defer a1.Close()
	a2, err := Dial(ln.Addr().String(), Hello{Name: "ap2", Pos: geom.Point{X: 20, Y: 5}})
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()

	// AP2 listens for broadcasts.
	alerts := a2.Alerts()
	time.Sleep(50 * time.Millisecond) // let both Hellos register broadcasters

	bad := wifi.MustParseAddr("66:00:00:00:00:05")
	if err := a1.SendAlert("ap1", bad, 0.91); err != nil {
		t.Fatal(err)
	}

	select {
	case al, ok := <-alerts:
		if !ok {
			t.Fatal("alert channel closed")
		}
		if al.MAC != bad {
			t.Errorf("broadcast MAC = %v", al.MAC)
		}
		if al.APName != "controller" {
			t.Errorf("broadcast origin = %q", al.APName)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no broadcast within 5s")
	}

	// The controller's quarantine list includes the MAC.
	q := c.Quarantined()
	if len(q) != 1 || q[0].MAC != bad {
		t.Errorf("quarantine list = %+v", q)
	}

	// A duplicate alert does not re-broadcast.
	if err := a1.SendAlert("ap1", bad, 0.95); err != nil {
		t.Fatal(err)
	}
	select {
	case al := <-alerts:
		t.Errorf("duplicate alert re-broadcast: %+v", al)
	case <-time.After(300 * time.Millisecond):
	}
	if len(c.Quarantined()) != 1 {
		t.Error("duplicate changed quarantine size")
	}
}

func TestQuarantineBroadcastReachesLateJoiner(t *testing.T) {
	// An AP joining while a quarantine is in force receives it as a
	// resume frame (the legacy Alert form on a v1 session) — the same
	// path that re-arms the fleet after a crash-recovered controller
	// restart. This test pins the behaviour.
	fence := &locate.Fence{Boundary: geom.Rect(0, 0, 24, 16)}
	c := NewController(fence)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c.Serve(ln)
	defer c.Close()

	a1, _ := Dial(ln.Addr().String(), Hello{Name: "ap1", Pos: geom.Point{}})
	defer a1.Close()
	time.Sleep(50 * time.Millisecond)
	bad := wifi.MustParseAddr("66:00:00:00:00:09")
	a1.SendAlert("ap1", bad, 0.9)
	time.Sleep(100 * time.Millisecond)

	late, _ := Dial(ln.Addr().String(), Hello{Name: "late", Pos: geom.Point{X: 1, Y: 1}})
	defer late.Close()
	alerts := late.Alerts()
	select {
	case al, ok := <-alerts:
		if !ok {
			t.Fatal("alert channel closed")
		}
		if al.MAC != bad || al.APName != "controller" {
			t.Errorf("resume alert = %+v", al)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("late joiner never received the active quarantine")
	}
	// And the list is available on demand.
	if len(c.Quarantined()) != 1 {
		t.Error("quarantine list missing the alert")
	}
}

func TestControllerDefersDegenerateGeometry(t *testing.T) {
	// Two APs whose bearing lines are nearly parallel (client close to
	// the inter-AP line) must NOT produce a decision until a third,
	// diverse bearing arrives.
	fence := &locate.Fence{Boundary: geom.Rect(0, 0, 24, 16)}
	c := NewController(fence)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c.Serve(ln)
	defer c.Close()

	ap1 := geom.Point{X: 20, Y: 5}
	ap2 := geom.Point{X: 12, Y: 13}
	ap3 := geom.Point{X: 8, Y: 5}
	target := geom.Point{X: 16, Y: 9} // on the ap1-ap2 line

	a1, _ := Dial(ln.Addr().String(), Hello{Name: "ap1", Pos: ap1})
	defer a1.Close()
	a2, _ := Dial(ln.Addr().String(), Hello{Name: "ap2", Pos: ap2})
	defer a2.Close()
	a3, _ := Dial(ln.Addr().String(), Hello{Name: "ap3", Pos: ap3})
	defer a3.Close()
	time.Sleep(50 * time.Millisecond)

	mac := wifi.MustParseAddr("00:16:ea:50:00:02")
	a1.Send(Report{APName: "ap1", MAC: mac, SeqNo: 7, BearingDeg: geom.BearingDeg(ap1, target)})
	a2.Send(Report{APName: "ap2", MAC: mac, SeqNo: 7, BearingDeg: geom.BearingDeg(ap2, target)})

	select {
	case d := <-c.Decisions():
		t.Fatalf("degenerate pair decided: %+v", d)
	case <-time.After(300 * time.Millisecond):
	}

	a3.Send(Report{APName: "ap3", MAC: mac, SeqNo: 7, BearingDeg: geom.BearingDeg(ap3, target)})
	select {
	case d := <-c.Decisions():
		if d.Pos.Dist(target) > 0.5 {
			t.Errorf("fused at %v, want %v", d.Pos, target)
		}
		if len(d.APs) != 3 {
			t.Errorf("decision used %d APs", len(d.APs))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no decision after diverse bearing arrived")
	}
}
