package netproto

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"secureangle/internal/geom"
	"secureangle/internal/ops"
	"secureangle/internal/wifi"
)

// TestStatusReportLive: Stats/StatusReport surface the session and
// fusion state continuously — while the controller runs, not only in
// the close-time log.
func TestStatusReportLive(t *testing.T) {
	c, addr := startController(t)
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	a, err := DialContext(ctx, addr, Hello{Name: "ap1", Pos: geom.Point{X: 4, Y: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	mac := wifi.Addr{1, 2, 3, 4, 5, 6}
	for i := 0; i < 3; i++ {
		if err := a.Send(Report{APName: "ap1", MAC: mac, BearingDeg: 40, SeqNo: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 3*time.Second, "state", func() bool { return c.Stats().Ingested == 3 })

	st := c.StatusReport()
	if st.Proto != ProtoVersion {
		t.Fatalf("status proto = %d, want %d", st.Proto, ProtoVersion)
	}
	if st.Fusion.Ingested != 3 {
		t.Fatalf("status fusion ingested = %d, want 3", st.Fusion.Ingested)
	}
	if len(st.Fusion.Shards) == 0 {
		t.Fatal("status has no fusion shard breakdown")
	}
	var sum uint64
	for _, s := range st.Fusion.Shards {
		sum += s.Ingested
	}
	if sum != 3 {
		t.Fatalf("shard ingested sum = %d, want 3", sum)
	}
	if len(st.APs) != 1 || st.APs[0].Name != "ap1" {
		t.Fatalf("status APs = %+v, want one entry for ap1", st.APs)
	}
	h := st.APs[0]
	if h.Version != ProtoVersion || h.Reports != 3 || h.Frames < 3 {
		t.Fatalf("ap1 health = %+v (want v%d, 3 reports, >=3 frames)", h, ProtoVersion)
	}
	if time.Since(h.LastSeen) > time.Minute || h.LastSeen.Before(h.ConnectedAt) {
		t.Fatalf("ap1 last seen implausible: %+v", h)
	}
}

// TestStatusEndpoints: ServeOps serves valid Prometheus text
// exposition at /metrics and the JSON status document at /status.
func TestStatusEndpoints(t *testing.T) {
	c, addr := startController(t)
	defer c.Close()
	if _, err := c.EnrollAP("ap1"); err != nil {
		t.Fatal(err)
	}
	opsLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c.ServeOps(opsLn)
	base := "http://" + opsLn.Addr().String()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	a, err := DialContext(ctx, addr, Hello{Name: "ap1", Pos: geom.Point{X: 4, Y: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Send(Report{APName: "ap1", MAC: wifi.Addr{1}, BearingDeg: 10, SeqNo: 1}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, "state", func() bool { return c.Stats().Ingested == 1 })

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type = %q", ct)
	}
	est, err := ops.CheckExposition(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("/metrics is not valid exposition: %v\n%s", err, body)
	}
	if est.Families < 10 || est.Samples < 20 {
		t.Fatalf("/metrics too sparse: %+v", est)
	}
	for _, want := range []string{
		"secureangle_fusion_events_total", "secureangle_defense_clients",
		"secureangle_controller_sessions", "secureangle_ap_last_seen_seconds",
		`secureangle_ap_reports_total{ap="ap1"} 1`,
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}

	resp, err = http.Get(base + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("/status is not JSON: %v", err)
	}
	if st.Fusion.Ingested != 1 || len(st.APs) != 1 || len(st.Enrolled) != 1 {
		t.Fatalf("/status = %+v", st)
	}
}

// TestStatusEnrollEndpoint: the HTTP admin flow — mint, list, use,
// revoke.
func TestStatusEnrollEndpoint(t *testing.T) {
	c, addr := startAuthController(t, true)
	defer c.Close()
	opsLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c.ServeOps(opsLn)
	base := "http://" + opsLn.Addr().String()

	resp, err := http.Post(base+"/enroll?name=ap1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var minted struct{ Name, Token string }
	if err := json.NewDecoder(resp.Body).Decode(&minted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if minted.Name != "ap1" || len(minted.Token) != 32 {
		t.Fatalf("mint reply = %+v", minted)
	}
	a, err := dialToken(t, addr, "ap1", minted.Token)
	if err != nil {
		t.Fatalf("HTTP-minted token rejected: %v", err)
	}
	a.Close()

	resp, err = http.Get(base + "/enroll")
	if err != nil {
		t.Fatal(err)
	}
	var listed struct{ Enrolled []string }
	if err := json.NewDecoder(resp.Body).Decode(&listed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listed.Enrolled) != 1 || listed.Enrolled[0] != "ap1" {
		t.Fatalf("enrolled list = %+v", listed)
	}

	resp, err = http.Post(base+"/enroll?name=ap1&revoke=1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("revoke status = %d", resp.StatusCode)
	}
	if got := c.EnrolledAPs(); len(got) != 0 {
		t.Fatalf("still enrolled after revoke: %v", got)
	}
	resp, err = http.Post(base+"/enroll?name=ap1&revoke=1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double revoke status = %d, want 404", resp.StatusCode)
	}
}

// TestStatusCollectorsTrackLatestController: RegisterOps replaces the
// collector closures, so a second controller (a restart, a test) owns
// the families instead of stacking duplicate samples.
func TestStatusCollectorsTrackLatestController(t *testing.T) {
	reg := ops.NewRegistry()
	c1, _ := startController(t)
	c1.RegisterOps(reg)
	c1.Close()
	c2, addr := startController(t)
	defer c2.Close()
	c2.RegisterOps(reg)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	a, err := DialContext(ctx, addr, Hello{Name: "ap1", Pos: geom.Point{X: 4, Y: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Send(Report{APName: "ap1", MAC: wifi.Addr{1}, BearingDeg: 10, SeqNo: 1}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, "state", func() bool { return c2.Stats().Ingested == 1 })

	found := 0
	reg.Walk(func(s ops.Sample) {
		if s.Name == "secureangle_fusion_events_total" && s.Labels == `kind="ingested"` {
			found++
			if s.Value != 1 {
				t.Fatalf("ingested sample = %g, want 1 (from the live controller)", s.Value)
			}
		}
	})
	if found != 1 {
		t.Fatalf("ingested sample emitted %d times, want once", found)
	}
}

// TestStatusDirectiveAckLatency: an acked directive produces a
// latency sample and per-AP ack counters.
func TestStatusDirectiveAckLatency(t *testing.T) {
	c, addr := startController(t)
	c.DefensePolicy.QuarantineScore = 1 // first verdict quarantines
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	a, err := DialContext(ctx, addr, Hello{Name: "ap1", Pos: geom.Point{X: 4, Y: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	dirs := a.Directives()

	mac := wifi.Addr{9, 9, 9, 9, 9, 9}
	if err := a.SendAlertDetail(Alert{APName: "ap1", MAC: mac, Distance: 99, Threshold: 1, Stage: "spoof"}); err != nil {
		t.Fatal(err)
	}
	var d Directive
	select {
	case d = <-dirs:
	case <-time.After(3 * time.Second):
		t.Fatal("no directive broadcast")
	}
	if err := a.SendDirectiveAck(d.Directive); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, "state", func() bool { return c.Stats().DirectiveAcks == 1 })
	waitFor(t, 3*time.Second, "state", func() bool {
		hs := c.APHealth()
		return len(hs) == 1 && hs[0].Acks == 1 && hs[0].AckLatency > 0
	})
	if got := mDirAckSeconds.Count(); got == 0 {
		t.Fatal("no ack latency sample observed")
	}
}

// TestOpsHandlerStatusIsValidJSONUnderLoad exercises the /status
// encoder while sessions churn, for the race detector's benefit.
func TestOpsHandlerStatusIsValidJSONUnderLoad(t *testing.T) {
	c, addr := startController(t)
	defer c.Close()
	opsLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c.ServeOps(opsLn)
	base := "http://" + opsLn.Addr().String()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5; i++ {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			a, err := DialContext(ctx, addr, Hello{Name: fmt.Sprintf("ap%d", i), Pos: geom.Point{X: 1, Y: 1}})
			cancel()
			if err != nil {
				continue
			}
			a.Send(Report{APName: fmt.Sprintf("ap%d", i), MAC: wifi.Addr{byte(i)}, BearingDeg: 5, SeqNo: 1})
			a.Close()
		}
	}()
	for i := 0; i < 10; i++ {
		resp, err := http.Get(base + "/status")
		if err != nil {
			t.Fatal(err)
		}
		var st Status
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("scrape %d: %v", i, err)
		}
	}
	<-done
}
