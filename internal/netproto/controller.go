package netproto

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"secureangle/internal/defense"
	"secureangle/internal/fusion"
	"secureangle/internal/geom"
	"secureangle/internal/journal"
	"secureangle/internal/locate"
	"secureangle/internal/partition"
	"secureangle/internal/trace"
	"secureangle/internal/wifi"
)

// FenceDecision is the controller's fused output for one transmission.
type FenceDecision struct {
	MAC      wifi.Addr
	SeqNo    uint64
	Pos      geom.Point
	Decision locate.Decision
	// APs lists the access points whose bearings contributed.
	APs []string
}

// DefaultReadTimeout is the per-connection read deadline Serve applies
// between messages when Controller.ReadTimeout is zero. An agent that
// goes silent for longer is disconnected, so a stalled peer cannot pin
// a handler goroutine (and its Close drain) forever. Healthy agents
// with nothing to report stay connected by calling Agent.Ping within
// this window; deployments with listen-only v1 agents (which predate
// Ping) should set ReadTimeout negative to disable the deadline.
const DefaultReadTimeout = 2 * time.Minute

// Controller fuses AP reports into localisation and fence decisions.
// One goroutine per connection reads messages; fusion state lives in a
// bounded fusion.Engine sharded by client MAC (see package fusion for
// the lifecycle guarantees), built lazily from the exported tuning
// fields on first use — set them before traffic arrives.
type Controller struct {
	Fence *locate.Fence
	// MinAPs is the number of distinct AP bearings required per decision
	// (default 2).
	MinAPs int
	// Logf, if set, receives diagnostic output.
	Logf func(format string, args ...any)
	// DecisionTimeout bounds how long a geometrically-degenerate pending
	// decision waits for a more diverse bearing before fusing what it has
	// (default 1s).
	DecisionTimeout time.Duration
	// ReadTimeout is the per-connection keepalive read deadline
	// (default DefaultReadTimeout; negative disables deadlines).
	ReadTimeout time.Duration
	// MinDiversityDeg is the angular-diversity threshold of the
	// geometric-dilution guard (0 = the default 15 degrees; negative
	// disables the guard).
	MinDiversityDeg float64
	// PendingTTL bounds how long a report waits for corroborating
	// bearings from other APs before it is expired (default 10s).
	PendingTTL time.Duration
	// MaxClients caps tracked clients, LRU-evicted beyond it (default
	// 65536). MaxPendingPerClient caps one client's in-flight
	// transmissions (default 8).
	MaxClients          int
	MaxPendingPerClient int
	// FusionShards is the engine's lock-striping factor (default 16).
	FusionShards int
	// DefensePolicy tunes the defense engine's threat state machine —
	// escalation thresholds, score decay, quarantine TTL (zero fields
	// take the package defense defaults). Set it before traffic arrives,
	// like the fusion tuning fields.
	DefensePolicy defense.Policy
	// RequireAuth closes the TCP port to everything but enrolled APs:
	// sessions whose Hello carries no valid enrollment token (any
	// v1–v3 agent, or a v4 agent that skipped `secureangle enroll`)
	// are rejected at the handshake. Off by default — the pre-v4 open
	// behaviour — so existing fleets keep connecting; a presented
	// token must validate even when auth is optional.
	RequireAuth bool
	// SnapshotInterval is the journal's snapshot cadence when WithJournal
	// attached one (default DefaultSnapshotInterval; negative disables
	// snapshots entirely — recovery then replays the whole WAL). Between
	// snapshots a crash costs one WAL-tail replay; shorter intervals buy
	// faster restarts for more write amplification.
	SnapshotInterval time.Duration
	// Partitions splits the controller core into N MAC-range partitions
	// (default 1), each with its own fusion engine, defense engine, and
	// — with WithJournalDir — journal stream. The public API is
	// unchanged: Track, Threats, Quarantined, and StatusReport fan in
	// across partitions. Because fusion/defense state is strictly
	// per-MAC, a partitioned controller is decision-identical to the
	// monolith; per-partition capacity caps (MaxClients etc.) apply to
	// each partition, so the effective totals scale with N. Set it
	// before traffic arrives, like the other tuning fields.
	Partitions int
	// Tracer receives the controller's decision-trace spans (ingest,
	// fusion, alert, directive, ack, release) and applies the tail-based
	// retention policy. Nil uses the process-wide trace.Default()
	// recorder, which /traces exposes.
	Tracer *trace.Recorder
	// PprofOps mounts the Go runtime profiling endpoints
	// (/debug/pprof/..., including CPU, heap, and mutex-contention
	// profiles) on the operations handler. Off by default: profiles
	// expose internals and cost a little steady-state bookkeeping, so
	// they are opt-in like the rest of the ops surface. Set it before
	// OpsHandler/ServeOps.
	PprofOps bool

	mu       sync.Mutex
	apPos    map[string]geom.Point
	decision chan FenceDecision
	subs     map[int]chan FenceDecision
	nextSub  int
	closed   bool
	quar     *peers
	// tokens maps enrolled AP names to token digests (see enroll.go);
	// dirSent remembers when each MAC's latest directive was broadcast
	// so an ack can be turned into a latency sample (bounded, see
	// noteDirectiveSent). Both under mu.
	tokens  map[string][sha256.Size]byte
	dirSent map[wifi.Addr]time.Time

	// opsSrv is the /metrics + /status HTTP server when ServeOps was
	// called (nil otherwise), shut down by Close.
	opsSrv *http.Server
	opsLn  net.Listener

	// parts is the partitioned engine core (one fusion + defense engine
	// pair per MAC-range partition), built lazily on first traffic —
	// both engine kinds together, freezing the tuning fields.
	partsOnce   sync.Once
	parts       atomic.Pointer[partition.Set]
	unknownAP   atomic.Uint64
	observerSeq atomic.Uint64
	// directiveAcks counts applied-countermeasure reports from APs.
	directiveAcks atomic.Uint64

	// The flight recorder (see WithJournal / WithJournalDir): one
	// journal per partition; clk is the engines' time source, pinned to
	// recorded timestamps while recovery replays the WAL tail;
	// recovering suppresses journaling and fan-out of the re-derived
	// events.
	jset       atomic.Pointer[journalSet]
	clk        journal.ReplayClock
	recovering atomic.Bool
	snapDone   chan struct{}
	snapWG     sync.WaitGroup

	// repl tracks live replication sessions (peers that subscribed with
	// a SegmentAck), for the lag gauge and /status.
	replMu sync.Mutex
	repl   map[*replSession]struct{}

	ln     net.Listener
	wg     sync.WaitGroup
	ctx    context.Context
	cancel context.CancelFunc
}

// NewController returns a controller enforcing the given fence.
func NewController(fence *locate.Fence) *Controller {
	ctx, cancel := context.WithCancel(context.Background())
	return &Controller{
		Fence:    fence,
		MinAPs:   2,
		apPos:    make(map[string]geom.Point),
		decision: make(chan FenceDecision, 64),
		subs:     make(map[int]chan FenceDecision),
		quar:     newPeers(),
		ctx:      ctx,
		cancel:   cancel,
	}
}

// fusionConfig assembles the engine Config from the controller's
// tuning fields as they stand right now.
func (c *Controller) fusionConfig() fusion.Config {
	return fusion.Config{
		Shards:              c.FusionShards,
		MinAPs:              c.MinAPs,
		DecisionTimeout:     c.DecisionTimeout,
		PendingTTL:          c.PendingTTL,
		MinDiversityDeg:     c.MinDiversityDeg,
		MaxClients:          c.MaxClients,
		MaxPendingPerClient: c.MaxPendingPerClient,
		Fence:               c.Fence,
		APCount:             c.apCount,
		Emit:                c.emitDecision,
		Logf:                func(format string, args ...any) { c.logf(format, args...) },
		Clock:               c.clk.Now,
	}
}

// nParts resolves the partition count (Partitions <= 0 means 1).
func (c *Controller) nParts() int {
	if c.Partitions <= 0 {
		return 1
	}
	return c.Partitions
}

// partsBuild returns the partitioned engine set, building every
// partition's fusion and defense engine on first traffic from the
// controller's tuning fields (so callers may set them any time between
// NewController and the first report; read-only accessors never
// trigger the build). Contradictory settings panic, the core.NewAP
// Config contract — Serve pre-validates so the common misconfiguration
// fails at startup, not at the first packet. After Close, either no
// set exists (nil, and ingest is a no-op) or the existing engines
// refuse further input themselves.
func (c *Controller) partsBuild() *partition.Set {
	if s := c.parts.Load(); s != nil {
		return s
	}
	c.partsOnce.Do(func() {
		c.mu.Lock()
		closed := c.closed
		c.mu.Unlock()
		if closed {
			return
		}
		c.parts.Store(partition.MustNew(c.nParts(),
			func(int) fusion.Config { return c.fusionConfig() },
			func(int) defense.Config { return c.defenseConfig() }))
	})
	return c.parts.Load()
}

// partsLoaded returns the engine set only if traffic (or recovery) has
// already built it — the read-only accessors' view.
func (c *Controller) partsLoaded() *partition.Set { return c.parts.Load() }

func (c *Controller) apCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.apPos)
}

// defenseConfig assembles the defense engine Config from the
// controller's tuning as it stands right now.
func (c *Controller) defenseConfig() defense.Config {
	return defense.Config{
		Policy: c.DefensePolicy,
		Emit:   c.emitDirective,
		Logf:   func(format string, args ...any) { c.logf(format, args...) },
		Clock:  c.clk.Now,
	}
}

// Release is the operator path out of quarantine: drop the MAC's
// threat state back to allow and broadcast the release directive to
// every v2 AP. Reports whether the MAC had any threat state. (The wire
// face is Agent.SendRelease; the CLI face `secureangle defense
// -release`.)
func (c *Controller) Release(mac wifi.Addr) bool {
	return c.releaseFrom(mac, "operator")
}

// releaseFrom is the shared release path: source names who asked (the
// in-process API, or the AP that relayed a wire request) and is what
// the journal records.
func (c *Controller) releaseFrom(mac wifi.Addr, source string) bool {
	s := c.partsLoaded()
	if s == nil {
		return false
	}
	// Capture the threat's trace link before Release wipes the entry —
	// the timeline's closing event joins on it.
	var tr uint64
	if th, ok := s.State(mac); ok {
		tr = th.Trace
	}
	ok := s.Release(mac)
	if ok {
		c.traceSpan(trace.StageRelease, tr, mac, source, 0)
		c.tracer().Retain(tr)
		c.journalAppend(mac, journal.RecRelease, journal.EncodeRelease(journal.ReleaseEvent{MAC: mac, Source: source, Trace: tr}))
	}
	return ok
}

// Threats returns the defense engine's live threat state for every
// tracked client — the in-process face of the Query(KindThreats)
// exchange.
func (c *Controller) Threats() []defense.ClientThreat {
	if s := c.partsLoaded(); s != nil {
		return s.Threats()
	}
	return nil
}

// Threat returns one client's live threat state.
func (c *Controller) Threat(mac wifi.Addr) (defense.ClientThreat, bool) {
	if s := c.partsLoaded(); s != nil {
		return s.State(mac)
	}
	return defense.ClientThreat{}, false
}

// emitDecision fans one fused decision out to the legacy channel and
// every subscriber, then feeds the defense engine (the fusion engine
// calls it outside shard locks). The serial path: the mobility track
// is queried right after the fence report, which — with one ingest per
// emit — is the state the completing bearing left behind.
func (c *Controller) emitDecision(d fusion.Decision) {
	if !c.fanOutDecision(d) {
		return // mid-close: the engines may be tearing down too
	}
	if s := c.partsBuild(); s != nil {
		c.reportFence(s, d)
		if ts, ok := s.Track(d.MAC); ok {
			s.ReportTrack(defense.TrackVerdict{MAC: d.MAC, Pos: ts.Pos, Vel: ts.Vel, Trace: d.Trace})
		}
	}
}

// emitDecisionTracked is emitDecision for the batched ingest path: the
// track state was captured under the shard lock at decision time, so
// the defense engine sees the same mobility evidence a serial
// Ingest/emit interleaving would — not a track already advanced by
// later same-MAC bearings in the batch.
func (c *Controller) emitDecisionTracked(d fusion.Decision, ts fusion.TrackState, tracked bool) {
	if !c.fanOutDecision(d) {
		return // mid-close: the engines may be tearing down too
	}
	if s := c.partsBuild(); s != nil {
		c.reportFence(s, d)
		if tracked {
			s.ReportTrack(defense.TrackVerdict{MAC: d.MAC, Pos: ts.Pos, Vel: ts.Vel, Trace: d.Trace})
		}
	}
}

// fanOutDecision journals a decision and delivers it to the legacy
// channel and every subscriber. It returns false when the controller
// is mid-close (channels torn down) and the caller should stop.
func (c *Controller) fanOutDecision(d fusion.Decision) bool {
	// During journal recovery the decision is a re-derivation of history:
	// it still feeds the defense engine (that is how threat scores are
	// rebuilt), but consumers must not see it again and the journal
	// already holds it.
	if c.recovering.Load() {
		return true
	}
	c.journalAppend(d.MAC, journal.RecDecision, journal.EncodeDecision(d))
	// Tail-based retention decided at the fusion boundary: an allowed
	// decision is benign (kept at the probabilistic sample rate); a
	// denied one is fence evidence and retained unconditionally.
	c.traceSpan(trace.StageFuse, d.Trace, d.MAC, "controller", 0)
	if d.Decision == locate.Allow {
		c.tracer().Sample(d.Trace)
	} else {
		c.tracer().Retain(d.Trace)
	}
	out := FenceDecision{MAC: d.MAC, SeqNo: d.Seq, Pos: d.Pos, Decision: d.Decision, APs: d.APs}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return false // the decision channels may be mid-close
	}
	select {
	case c.decision <- out:
	default:
		c.logf("controller: decision channel full, dropping %v", out.MAC)
	}
	for id, ch := range c.subs {
		select {
		case ch <- out:
		default:
			c.logf("controller: subscriber %d behind, dropping %v", id, out.MAC)
		}
	}
	c.mu.Unlock()
	return true
}

// reportFence closes the loop: every fused fence decision is defense
// evidence.
func (c *Controller) reportFence(s *partition.Set, d fusion.Decision) {
	s.ReportFence(defense.FenceVerdict{
		MAC: d.MAC, Seq: d.Seq, Pos: d.Pos,
		Allowed: d.Decision == locate.Allow, Forced: d.Forced,
		Trace: d.Trace,
	})
}

// ControllerStats aggregates the fusion engine's counters with the
// defense engine's and the controller's own ingress drops.
type ControllerStats struct {
	fusion.Stats
	// Defense holds the defense engine's counters (verdicts ingested,
	// quarantines, null-steer escalations, releases by cause).
	Defense defense.Stats
	// UnknownAPDrops counts reports from APs that never sent a Hello.
	UnknownAPDrops uint64
	// DirectiveAcks counts applied-countermeasure reports from APs.
	DirectiveAcks uint64
}

// Stats snapshots the controller's fusion, defense, and ingress
// counters. Like the other read-only accessors it reports zeros before
// the first report has built the engines, rather than building them
// (which would freeze the tuning fields early).
func (c *Controller) Stats() ControllerStats {
	s := ControllerStats{
		UnknownAPDrops: c.unknownAP.Load(),
		DirectiveAcks:  c.directiveAcks.Load(),
	}
	if set := c.partsLoaded(); set != nil {
		s.Stats = set.Stats()
		s.Defense = set.DefenseStats()
	}
	return s
}

// Track returns the live mobility-trace state for one client MAC — the
// in-process face of the wire Query/Tracks exchange.
func (c *Controller) Track(mac wifi.Addr) (fusion.TrackState, bool) {
	if s := c.partsLoaded(); s != nil {
		return s.Track(mac)
	}
	return fusion.TrackState{}, false
}

// Snapshot returns the mobility-trace state of every tracked client.
func (c *Controller) Snapshot() []fusion.TrackState {
	if s := c.partsLoaded(); s != nil {
		return s.Snapshot()
	}
	return nil
}

// Decisions delivers fused fence decisions as they become available —
// the v1 single-consumer channel, kept for compatibility. New callers
// use Subscribe, which fans out to any number of consumers.
func (c *Controller) Decisions() <-chan FenceDecision { return c.decision }

// Subscription is one registered consumer of fused fence decisions.
type Subscription struct {
	// C delivers this subscriber's decisions. It closes on Unsubscribe
	// or when the controller shuts down.
	C <-chan FenceDecision

	id int
	ch chan FenceDecision
}

// Subscribe registers a decision consumer. Every fused decision is
// fanned out to all live subscriptions (and the legacy Decisions
// channel); a subscriber that falls more than buf decisions behind has
// further decisions dropped rather than stalling fusion. buf <= 0
// defaults to 64. Subscribing to a closed controller returns an
// already-closed channel.
func (c *Controller) Subscribe(buf int) *Subscription {
	if buf <= 0 {
		buf = 64
	}
	ch := make(chan FenceDecision, buf)
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.nextSub
	c.nextSub++
	if c.closed {
		close(ch)
	} else {
		c.subs[id] = ch
	}
	return &Subscription{C: ch, id: id, ch: ch}
}

// Unsubscribe removes a subscription and closes its channel. Safe to
// call after Close (a no-op then: Close already closed the channel).
func (c *Controller) Unsubscribe(s *Subscription) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ch, ok := c.subs[s.id]; ok {
		delete(c.subs, s.id)
		close(ch)
	}
}

// Serve starts accepting AP connections on the listener. It returns
// immediately; Close shuts everything down. Contradictory fusion or
// defense tuning (see Config in packages fusion and defense) panics
// here, before any peer traffic can trigger the engines' lazy builds
// inside a handler.
func (c *Controller) Serve(ln net.Listener) {
	if c.parts.Load() == nil {
		if err := c.fusionConfig().WithDefaults().Validate(); err != nil {
			panic(err)
		}
		if err := c.defenseConfig().WithDefaults().Validate(); err != nil {
			panic(err)
		}
		if n := c.nParts(); n > partition.MaxPartitions {
			panic(fmt.Sprintf("netproto: Partitions %d exceeds %d", n, partition.MaxPartitions))
		}
	}
	c.ln = ln
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			c.wg.Add(1)
			go func() {
				defer c.wg.Done()
				c.handle(conn)
			}()
		}
	}()
}

// Close stops the listener, drains the in-flight connection handlers
// (each is unblocked by cancelling its connection), shuts the fusion
// engine down, and only then closes the decision channels, so no
// consumer sees a premature close. The final fusion statistics are
// logged through Logf.
func (c *Controller) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	// Flight recorder last rites: stop the snapshot ticker, then for
	// each partition in deterministic order 0..N-1 take the shutdown
	// snapshot while the engines are still alive (so a clean restart
	// restores instantly instead of replaying the WAL) and only then
	// seal that partition's journal. Snapshot-before-seal per partition
	// matters: sealing first would leave the snapshot unwritable and a
	// restart replaying the whole WAL tail.
	if c.snapDone != nil {
		close(c.snapDone)
		c.snapWG.Wait()
	}
	if js := c.jset.Load(); js != nil {
		for i, j := range js.js {
			if c.snapshotsEnabled() {
				if err := c.saveSnapshot(i, j); err != nil {
					c.logf("controller: shutdown snapshot p%d: %v", i, err)
				}
			}
			if err := j.Close(); err != nil {
				c.logf("controller: journal close p%d: %v", i, err)
			}
		}
	}
	// Burn the lazy-init slot so a racing ingest cannot build a fresh
	// engine set after we shut down; then close whichever engines exist.
	c.partsOnce.Do(func() {})
	if set := c.partsLoaded(); set != nil {
		set.Close()
		s := set.Stats()
		c.logf("controller: close: ingested=%d decisions=%d dups=%d expired=%d evictedPending=%d evictedClients=%d forced=%d fuseErrors=%d unknownAP=%d",
			s.Ingested, s.Decisions, s.DupDropped, s.PendingExpired, s.PendingEvicted, s.ClientsEvicted, s.ForcedTimeouts, s.FuseErrors, c.unknownAP.Load())
		d := set.DefenseStats()
		c.logf("controller: defense close: spoofs=%d fences=%d tracks=%d quarantines=%d nullSteers=%d releases=%d (decay=%d ttl=%d operator=%d evicted=%d) acks=%d",
			d.SpoofVerdicts, d.FenceVerdicts, d.TrackVerdicts, d.Quarantines, d.NullSteers, d.Releases, d.DecayReleases, d.TTLReleases, d.OperatorReleases, d.EvictedReleases, c.directiveAcks.Load())
	}
	c.cancel()
	if c.ln != nil {
		c.ln.Close()
	}
	c.mu.Lock()
	opsSrv := c.opsSrv
	c.mu.Unlock()
	if opsSrv != nil {
		opsSrv.Close()
	}
	c.wg.Wait()
	close(c.decision)
	c.mu.Lock()
	for id, ch := range c.subs {
		delete(c.subs, id)
		close(ch)
	}
	c.mu.Unlock()
}

func (c *Controller) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// tracer resolves the span recorder (Tracer field, else the process
// default).
func (c *Controller) tracer() *trace.Recorder {
	if c.Tracer != nil {
		return c.Tracer
	}
	return trace.Default()
}

// traceSpan records one controller-side span on a packet's decision
// trace. No-op for untraced events (id zero) and during journal
// recovery — replayed history must not mint fresh wall-clock timings.
// start == 0 records a point event at now; a nonzero start records the
// elapsed interval since it.
func (c *Controller) traceSpan(stage trace.Stage, id uint64, mac wifi.Addr, ap string, start int64) {
	if id == 0 || c.recovering.Load() {
		return
	}
	now := trace.Now()
	var dur int64
	if start != 0 {
		dur = now - start
	} else {
		start = now
	}
	c.tracer().Record(trace.Span{
		Trace: id, Stage: stage, Start: start, Dur: dur,
		MAC: mac, AP: ap, Partition: uint16(partition.IndexFor(mac, c.nParts())),
	})
}

// readTimeout resolves the keepalive deadline (<0 disables).
func (c *Controller) readTimeout() time.Duration {
	if c.ReadTimeout != 0 {
		return c.ReadTimeout
	}
	return DefaultReadTimeout
}

func (c *Controller) handle(conn net.Conn) {
	defer conn.Close()
	// Close the connection when the controller shuts down so the read
	// loop unblocks.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-c.ctx.Done():
			conn.Close()
		case <-done:
		}
	}()

	helloed := false
	tokenOK := false
	var ver uint16 = ProtoV1
	var apName string
	var bcast chan []byte
	var health *apHealth
	var repl *replSession
	for {
		if t := c.readTimeout(); t > 0 {
			conn.SetReadDeadline(time.Now().Add(t))
		}
		body, err := ReadMessage(conn)
		if err != nil {
			if !errors.Is(err, net.ErrClosed) {
				c.logf("controller: read: %v", err)
			}
			return
		}
		msg, err := Unmarshal(body)
		if err != nil {
			c.logf("controller: decode: %v", err)
			return
		}
		if health != nil {
			health.lastSeen.Store(time.Now().UnixNano())
			health.frames.Add(1)
		}
		switch m := msg.(type) {
		case Hello:
			if helloed {
				c.logf("controller: duplicate Hello %q ignored", m.Name)
				continue
			}
			helloed = true
			ver = NegotiateVersion(m.Version)
			if ok, reason := c.authorize(m); !ok {
				// Reject before the AP registers as a bearing source. A
				// v4 peer gets the typed rejection; older peers (which
				// can only be here with RequireAuth on) just see the
				// connection drop — their protocol has no room for more.
				if ver >= ProtoV4 {
					if err := WriteMessage(conn, MarshalWelcome(Welcome{Version: ver, Status: WelcomeAuthRejected})); err != nil {
						c.logf("controller: auth reject to %q: %v", m.Name, err)
					}
				}
				mAuthRejects.Inc()
				c.logf("controller: session %q rejected: %s", m.Name, reason)
				return
			}
			// A token that reached this point validated (authorize
			// rejects bad ones even when auth is optional): the session
			// is entitled to the token-gated exchanges — replication.
			tokenOK = m.Token != ""
			apName = m.Name
			if m.Name == "" {
				// Observer session: receives broadcasts and may query,
				// but is never a bearing source — kept out of apPos so
				// it cannot skew the all-APs-reported fusion shortcut.
				apName = fmt.Sprintf("#observer%d", c.observerSeq.Add(1))
				c.logf("controller: observer %s connected (protocol v%d)", apName, ver)
			} else {
				c.mu.Lock()
				c.apPos[m.Name] = m.Pos
				c.mu.Unlock()
				c.logf("controller: AP %q at %v (protocol v%d)", m.Name, m.Pos, ver)
			}
			if m.Version >= ProtoV2 {
				// v2 handshake: answer with the negotiated version.
				// Written directly — the broadcaster is not running yet,
				// so this goroutine still owns the write side and the
				// Welcome is guaranteed to be the first controller frame
				// the agent reads. (On v4+ sessions MarshalWelcome
				// appends WelcomeOK.)
				if err := WriteMessage(conn, MarshalWelcome(Welcome{Version: ver})); err != nil {
					c.logf("controller: welcome to %q: %v", m.Name, err)
					return
				}
			}
			health = newAPHealth(apName, m.Name == "", ver)
			bcast = c.startBroadcaster(apName, conn, done, ver, health)
		case Ping:
			// Keepalive only: reading it already pushed the deadline.
		case Report:
			if health != nil {
				health.reports.Add(1)
			}
			c.ingest(m)
		case ReportBatch:
			if health != nil {
				health.reports.Add(uint64(len(m)))
			}
			c.ingestBatch(m)
		case Alert:
			c.handleAlert(m)
		case Query:
			// v2-gated: a Query on a v1 session (or before the Hello) is
			// ignored rather than answered with frames the peer cannot
			// decode — and rather than killing the connection.
			if !helloed || ver < ProtoV2 {
				c.logf("controller: query ignored on v%d session", ver)
				continue
			}
			c.answerQuery(m, apName, bcast, ver)
		case Directive:
			// v3-gated: countermeasure acks and operator release
			// requests only make sense on a session that negotiated the
			// defense exchanges.
			if !helloed || ver < ProtoV3 {
				c.logf("controller: directive ignored on v%d session", ver)
				continue
			}
			c.handleDirective(m, apName)
		case SegmentAck:
			// v4-gated and token-gated: journal streaming ships the
			// fleet's full event history, so only a peer that proved an
			// enrollment token may subscribe. The first ack is the
			// subscribe position vector; later ones report applied LSNs.
			if !helloed || ver < ProtoV4 || !tokenOK {
				c.logf("controller: segment ack ignored on unauthenticated v%d session", ver)
				continue
			}
			repl = c.handleSegmentAck(repl, m, apName, done)
		}
	}
}

// startBroadcaster registers an outbound queue for an AP connection and
// pumps controller broadcasts (quarantine alerts, track replies) onto
// the socket. From this point the write side of the connection is the
// broadcaster's alone, so no lock is shared with the read loop.
//
// An AP reconnecting under a name still registered (its old TCP
// connection lingering half-open) replaces the registration atomically:
// the stale broadcaster is stopped, its queue abandoned, and its
// connection closed so the old handler reaps itself — no handoff window
// in which broadcasts race between the two connections.
func (c *Controller) startBroadcaster(name string, conn net.Conn, done chan struct{}, version uint16, health *apHealth) chan []byte {
	ch := make(chan []byte, 16)
	stop := make(chan struct{})
	if health != nil {
		health.queue = func() int { return len(ch) }
	}
	c.quar.mu.Lock()
	prev, hadPrev := c.quar.conns[name]
	c.quar.conns[name] = apConn{ch: ch, version: version, stop: stop, conn: conn, health: health}
	c.quar.mu.Unlock()
	if hadPrev {
		c.logf("controller: AP %q reconnected, replacing stale connection", name)
		close(prev.stop)
		prev.conn.Close()
	}
	// A (re)connecting AP must learn the quarantines already in force —
	// after a controller restart the defense engine's restored leases
	// would otherwise exist only in controller memory while the fleet,
	// freshly rebooted or lease-expired, lets the attackers back in.
	resume := c.resumeFrames(version)
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		defer func() {
			c.quar.mu.Lock()
			if cur, ok := c.quar.conns[name]; ok && cur.ch == ch {
				delete(c.quar.conns, name)
			}
			c.quar.mu.Unlock()
		}()
		// The pump owns the write side from birth, so the resume frames
		// are written directly, ahead of any queued broadcast.
		for _, frame := range resume {
			if err := WriteMessage(conn, frame); err != nil {
				return
			}
		}
		for {
			select {
			case body := <-ch:
				if err := WriteMessage(conn, body); err != nil {
					return
				}
			case <-stop:
				return
			case <-c.ctx.Done():
				return
			case <-done:
				return
			}
		}
	}()
	return ch
}

// ingest resolves a report's AP position and hands the bearing to the
// fusion engine, which emits a decision once MinAPs distinct APs have
// reported the same (MAC, seq) with acceptable geometry.
func (c *Controller) ingest(r Report) {
	c.mu.Lock()
	pos, ok := c.apPos[r.APName]
	c.mu.Unlock()
	if !ok {
		c.unknownAP.Add(1)
		c.logf("controller: report from unknown AP %q dropped", r.APName)
		return
	}
	// Apply before journaling: a snapshot racing this event then either
	// sees its effect (and the event's LSN predates the capture) or the
	// event lands in the replayed tail — double-applied at worst, never
	// lost. The fusion seq window absorbs a re-applied report.
	t0 := trace.Now()
	if s := c.partsBuild(); s != nil {
		s.Ingest(fusion.Bearing{AP: r.APName, APPos: pos, MAC: r.MAC, Seq: r.SeqNo, Deg: r.BearingDeg, Trace: r.Trace})
	}
	c.traceSpan(trace.StageIngest, r.Trace, r.MAC, r.APName, t0)
	c.journalAppend(r.MAC, journal.RecReport, journal.EncodeReport(journal.ReportEvent{
		AP: r.APName, APPos: pos, MAC: r.MAC, Seq: r.SeqNo, BearingDeg: r.BearingDeg, Trace: r.Trace,
	}))
}

// batchIngestScratch is the pooled per-batch state of ingestBatch: the
// resolved bearings, their partition-grouped reordering, and the
// encode arena + record headers each journal flush reuses.
type batchIngestScratch struct {
	bearings []fusion.Bearing
	grouped  []fusion.Bearing
	partOf   []int32
	counts   []int32
	recs     []journal.Record
	enc      []byte
	offs     []int32
}

var batchIngestPool = sync.Pool{New: func() any { return &batchIngestScratch{} }}

// ingestBatch is the TypeReportBatch fast path: one AP-position lookup
// pass under one lock, one partition grouping pass, one engine batch
// per touched partition (fusion takes each shard lock once, not once
// per report), and group-committed report records. Per-partition
// journal streams are byte-identical to len(rs) serial ingest calls:
// within a partition, the records of report i's fused decision (and
// any directives it provokes) land before report i's own record, and
// reports between decisions group-commit as one journal batch.
func (c *Controller) ingestBatch(rs []Report) {
	if len(rs) == 0 {
		return
	}
	if len(rs) == 1 {
		c.ingest(rs[0])
		return
	}
	sc := batchIngestPool.Get().(*batchIngestScratch)
	// Resolve every report's AP position under one registry lock.
	bearings := sc.bearings[:0]
	unknown := 0
	c.mu.Lock()
	for i := range rs {
		r := &rs[i]
		pos, ok := c.apPos[r.APName]
		if !ok {
			unknown++
			continue
		}
		bearings = append(bearings, fusion.Bearing{AP: r.APName, APPos: pos, MAC: r.MAC, Seq: r.SeqNo, Deg: r.BearingDeg, Trace: r.Trace})
	}
	c.mu.Unlock()
	sc.bearings = bearings
	for i := range bearings {
		b := &bearings[i]
		c.traceSpan(trace.StageIngest, b.Trace, b.MAC, b.AP, 0)
	}
	if unknown > 0 {
		c.unknownAP.Add(uint64(unknown))
		c.logf("controller: %d report(s) from unknown AP(s) dropped", unknown)
	}
	if len(bearings) == 0 {
		c.releaseBatchScratch(sc)
		return
	}

	set := c.partsBuild()
	n := 1
	if set != nil {
		n = set.N()
	} else if js := c.journals(); js != nil {
		n = len(js) // journal-only mode: group for the right journals
	}
	if n == 1 {
		c.ingestRun(set, 0, bearings, sc)
		c.releaseBatchScratch(sc)
		return
	}

	// Group bearings by partition (stable counting sort): each
	// partition's engine and journal then see one contiguous run.
	if cap(sc.partOf) < len(bearings) {
		sc.partOf = make([]int32, len(bearings))
		sc.grouped = make([]fusion.Bearing, len(bearings))
	}
	if cap(sc.counts) < n+1 {
		sc.counts = make([]int32, n+1)
	}
	partOf, grouped := sc.partOf[:len(bearings)], sc.grouped[:len(bearings)]
	counts := sc.counts[:n+1]
	for i := range counts {
		counts[i] = 0
	}
	for i := range bearings {
		p := int32(partition.IndexFor(bearings[i].MAC, n))
		partOf[i] = p
		counts[p+1]++
	}
	for p := 0; p < n; p++ {
		counts[p+1] += counts[p]
	}
	next := counts[:n]
	for i := range bearings {
		p := partOf[i]
		grouped[next[p]] = bearings[i]
		next[p]++
	}
	start := int32(0)
	for p := 0; p < n; p++ {
		end := counts[p] // advanced to the run's end by the scatter
		if end == start {
			continue
		}
		c.ingestRun(set, p, grouped[start:end], sc)
		start = end
	}
	c.releaseBatchScratch(sc)
}

// ingestRun feeds one partition's contiguous run of bearings to its
// fusion engine as a batch and journals the run's report records in
// group commits, interleaved so the per-partition record stream
// matches serial ingest: reports before a decision flush as one batch
// before that decision's records.
func (c *Controller) ingestRun(set *partition.Set, p int, run []fusion.Bearing, sc *batchIngestScratch) {
	cursor := 0
	if set != nil {
		set.At(p).Fusion.IngestBatch(run, func(i int, d fusion.Decision, ts fusion.TrackState, tracked bool) {
			if i > cursor {
				c.flushReportRun(p, run[cursor:i], sc)
				cursor = i
			}
			c.emitDecisionTracked(d, ts, tracked)
		})
	}
	c.flushReportRun(p, run[cursor:], sc)
}

// flushReportRun group-commits one slice of a partition run's report
// records: every payload is encoded into one reused arena and the
// whole slice lands with a single journal AppendBatch.
func (c *Controller) flushReportRun(p int, run []fusion.Bearing, sc *batchIngestScratch) {
	if len(run) == 0 {
		return
	}
	js := c.journals()
	if js == nil || c.recovering.Load() {
		return
	}
	enc, offs := sc.enc[:0], sc.offs[:0]
	for i := range run {
		b := &run[i]
		enc = journal.AppendReport(enc, journal.ReportEvent{
			AP: b.AP, APPos: b.APPos, MAC: b.MAC, Seq: b.Seq, BearingDeg: b.Deg, Trace: b.Trace,
		})
		offs = append(offs, int32(len(enc)))
	}
	recs := sc.recs[:0]
	prev := int32(0)
	for _, off := range offs {
		recs = append(recs, journal.Record{Type: journal.RecReport, Data: enc[prev:off:off]})
		prev = off
	}
	sc.enc, sc.offs, sc.recs = enc, offs, recs
	if p < 0 || p >= len(js) {
		p = 0
	}
	if _, err := js[p].AppendBatch(recs); err != nil && !errors.Is(err, journal.ErrClosed) {
		c.logf("controller: journal batch append p%d: %v", p, err)
	}
}

// releaseBatchScratch clears reference-holding scratch and pools it.
func (c *Controller) releaseBatchScratch(sc *batchIngestScratch) {
	clear(sc.bearings)
	clear(sc.grouped)
	clear(sc.recs) // Data fields alias the arena; drop them
	batchIngestPool.Put(sc)
}

// --- AP agent side ---

// Agent is an AP's connection to the controller.
type Agent struct {
	conn net.Conn
	mu   sync.Mutex

	// version is the negotiated protocol version (ProtoV1 when the
	// legacy constructors skipped the handshake).
	version uint16

	// Timeout, when positive, bounds every Send*/SendAlert* write with
	// a deadline, so a wedged controller cannot block the AP's hot path
	// indefinitely. Set it before sharing the Agent across goroutines.
	Timeout time.Duration

	// The shared inbound reader (see startReader): one goroutine demuxes
	// controller frames onto the per-type channels for Alerts,
	// TrackReplies, ThreatReplies, and Directives. Track/threat frames
	// nobody subscribed to are discarded, so a tracks-only consumer is
	// never wedged behind undrained alerts (and vice versa); alerts and
	// directives arriving before their accessor is called are parked
	// (bounded) and flushed to the first subscriber.
	readerOnce     sync.Once
	alerts         chan Alert
	tracks         chan Tracks
	threats        chan Threats
	directives     chan Directive
	wantAlerts     atomic.Bool
	wantTracks     atomic.Bool
	wantThreats    atomic.Bool
	wantDirectives atomic.Bool
	pendMu         sync.Mutex
	pendAlerts     []Alert
	pendDirectives []Directive
	readerClosed   bool // reader exited; channels are closed (pendMu)
	querySeq       atomic.Uint32
}

// Version reports the protocol version negotiated for this session.
func (a *Agent) Version() uint16 {
	if a.version == 0 {
		return ProtoV1
	}
	return a.version
}

// Dial connects to the controller and sends the Hello as given — the
// v1 exchange (no version negotiation) unless the caller sets
// hello.Version and reads the Welcome itself. New code uses
// DialContext, which negotiates automatically.
func Dial(addr string, hello Hello) (*Agent, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	a := &Agent{conn: conn, version: NegotiateVersion(hello.Version)}
	if err := WriteMessage(conn, MarshalHello(hello)); err != nil {
		conn.Close()
		return nil, err
	}
	return a, nil
}

// DialContext connects to the controller under ctx (an already-
// cancelled context fails immediately; a deadline bounds dial and
// handshake) and performs the v2 handshake: the Hello advertises
// hello.Version (defaulted to ProtoVersion when zero) and the
// controller's Welcome fixes the session version, readable afterwards
// via Version.
func DialContext(ctx context.Context, addr string, hello Hello) (*Agent, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	a, err := handshake(ctx, conn, hello)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return a, nil
}

// NewAgentOn wraps an existing connection (tests use net.Pipe) with the
// v1 exchange: the Hello is written as given and no reply is awaited.
func NewAgentOn(conn net.Conn, hello Hello) (*Agent, error) {
	a := &Agent{conn: conn, version: NegotiateVersion(hello.Version)}
	if err := WriteMessage(conn, MarshalHello(hello)); err != nil {
		return nil, err
	}
	return a, nil
}

// NewAgentContext is DialContext's handshake on an existing connection:
// it writes a versioned Hello and waits for the controller's Welcome.
// The far end must therefore be a (v2) controller, not a passive pipe.
func NewAgentContext(ctx context.Context, conn net.Conn, hello Hello) (*Agent, error) {
	return handshake(ctx, conn, hello)
}

// handshake writes the versioned Hello and consumes the Welcome. Both a
// ctx deadline and plain cancellation interrupt it: cancellation closes
// the connection mid-handshake, so a peer that accepts but never
// replies cannot block the caller.
func handshake(ctx context.Context, conn net.Conn, hello Hello) (*Agent, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if hello.Version == 0 {
		hello.Version = ProtoVersion
	}
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl)
		defer conn.SetDeadline(time.Time{})
	}
	if err := WriteMessage(conn, MarshalHello(hello)); err != nil {
		return nil, err
	}
	a := &Agent{conn: conn, version: ProtoV1}
	if hello.Version >= ProtoV2 {
		body, err := ReadMessage(conn)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
			return nil, fmt.Errorf("netproto: welcome: %w", err)
		}
		msg, err := Unmarshal(body)
		if err != nil {
			return nil, fmt.Errorf("netproto: welcome: %w", err)
		}
		w, ok := msg.(Welcome)
		if !ok {
			return nil, fmt.Errorf("netproto: expected Welcome, got %T", msg)
		}
		if w.Status != WelcomeOK {
			return nil, ErrAuthRejected
		}
		a.version = NegotiateVersion(w.Version)
	}
	return a, nil
}

// writeBody frames and writes one message with the Agent's write
// deadline applied. Caller holds a.mu.
func (a *Agent) writeBody(body []byte) error {
	if a.Timeout > 0 {
		a.conn.SetWriteDeadline(time.Now().Add(a.Timeout))
		defer a.conn.SetWriteDeadline(time.Time{})
	}
	return WriteMessage(a.conn, body)
}

// Send ships one report, encoded at the session's negotiated version
// (the trace ID needs v5 — older sessions get it stripped); safe for
// concurrent use. A configured Timeout bounds the write.
func (a *Agent) Send(r Report) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.writeBody(marshalReportV(r, a.Version()))
}

// SendContext is Send with the context's deadline bounding the write
// instead of the Agent's Timeout; an already-cancelled context fails
// immediately, before taking the send lock.
func (a *Agent) SendContext(ctx context.Context, r Report) error {
	return a.sendWithCtx(ctx, func(write func([]byte) error) error {
		return write(marshalReportV(r, a.Version()))
	})
}

// SendBatch ships a batch of reports as ReportBatch messages — the
// AP-side counterpart of core.ObserveBatch, one frame (and one syscall)
// for many observations instead of one each. Batches whose encoding
// would exceed MaxMessageSize are split across multiple frames
// transparently. Safe for concurrent use; reports of one call are not
// interleaved with other senders. A configured Timeout bounds each
// frame's write.
func (a *Agent) SendBatch(rs []Report) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sendBatchLocked(rs, a.writeBody)
}

// SendBatchContext is SendBatch with the context's deadline bounding
// every frame write instead of the Agent's Timeout; an already-
// cancelled context fails immediately.
func (a *Agent) SendBatchContext(ctx context.Context, rs []Report) error {
	return a.sendWithCtx(ctx, func(write func([]byte) error) error {
		return a.sendBatchLocked(rs, write)
	})
}

// sendWithCtx runs one send operation under a.mu with the context's
// deadline (when present) replacing the Agent's Timeout for its writes.
// The single home for the deadline-vs-Timeout rule.
func (a *Agent) sendWithCtx(ctx context.Context, send func(write func([]byte) error) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if dl, ok := ctx.Deadline(); ok {
		a.conn.SetWriteDeadline(dl)
		defer a.conn.SetWriteDeadline(time.Time{})
		return send(func(body []byte) error { return WriteMessage(a.conn, body) })
	}
	return send(a.writeBody)
}

// sendBatchLocked chunks reports into ReportBatch frames under
// MaxMessageSize and hands each to write, encoding at the session's
// negotiated version (v5 sessions append the trailing trace-ID block,
// budgeted into the chunk size). Caller holds a.mu.
func (a *Agent) sendBatchLocked(rs []Report, write func([]byte) error) error {
	if len(rs) == 0 {
		return nil
	}
	tracePer := 0
	if a.Version() >= ProtoV5 {
		tracePer = 8
	}
	for start := 0; start < len(rs); {
		// Grow the chunk until the next report would overflow the frame.
		body := []byte{TypeReportBatch, 0, 0, 0, 0}
		end := start
		for ; end < len(rs); end++ {
			next := appendReportBody(body, rs[end])
			if len(next)+tracePer*(end-start+1) > MaxMessageSize && end > start {
				break
			}
			body = next
			if len(body)+tracePer*(end-start+1) > MaxMessageSize {
				// A single oversized report: let WriteMessage reject it.
				end++
				break
			}
		}
		if tracePer > 0 {
			for i := start; i < end; i++ {
				body = binary.BigEndian.AppendUint64(body, rs[i].Trace)
			}
		}
		binary.BigEndian.PutUint32(body[1:5], uint32(end-start))
		if err := write(body); err != nil {
			return err
		}
		start = end
	}
	return nil
}

// Ping sends a keepalive frame, resetting the controller's read
// deadline for this connection. Agents that can go quiet longer than
// Controller.ReadTimeout (listen-only fence nodes) call it
// periodically; agents that report continuously never need to.
func (a *Agent) Ping() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.writeBody(MarshalPing())
}

// Close terminates the agent's connection.
func (a *Agent) Close() error { return a.conn.Close() }
