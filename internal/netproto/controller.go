package netproto

import (
	"context"
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"time"

	"secureangle/internal/geom"
	"secureangle/internal/locate"
	"secureangle/internal/wifi"
)

// FenceDecision is the controller's fused output for one transmission.
type FenceDecision struct {
	MAC      wifi.Addr
	SeqNo    uint64
	Pos      geom.Point
	Decision locate.Decision
	// APs lists the access points whose bearings contributed.
	APs []string
}

// Controller fuses AP reports into localisation and fence decisions. One
// goroutine per connection reads messages; fusion state is mutex-guarded.
type Controller struct {
	Fence *locate.Fence
	// MinAPs is the number of distinct AP bearings required per decision
	// (default 2).
	MinAPs int
	// Logf, if set, receives diagnostic output.
	Logf func(format string, args ...any)
	// DecisionTimeout bounds how long a geometrically-degenerate pending
	// decision waits for a more diverse bearing before fusing what it has
	// (default 1s).
	DecisionTimeout time.Duration

	mu       sync.Mutex
	apPos    map[string]geom.Point
	pending  map[pendingKey]map[string]float64 // (mac, seq) -> apName -> bearing
	decided  map[pendingKey]bool
	decision chan FenceDecision
	quar     *quarantine
	timers   map[pendingKey]*time.Timer

	ln     net.Listener
	wg     sync.WaitGroup
	ctx    context.Context
	cancel context.CancelFunc
}

type pendingKey struct {
	mac wifi.Addr
	seq uint64
}

// NewController returns a controller enforcing the given fence.
func NewController(fence *locate.Fence) *Controller {
	ctx, cancel := context.WithCancel(context.Background())
	return &Controller{
		Fence:    fence,
		MinAPs:   2,
		apPos:    make(map[string]geom.Point),
		pending:  make(map[pendingKey]map[string]float64),
		decided:  make(map[pendingKey]bool),
		decision: make(chan FenceDecision, 64),
		quar:     newQuarantine(),
		timers:   make(map[pendingKey]*time.Timer),
		ctx:      ctx,
		cancel:   cancel,
	}
}

// Decisions delivers fused fence decisions as they become available.
func (c *Controller) Decisions() <-chan FenceDecision { return c.decision }

// Serve starts accepting AP connections on the listener. It returns
// immediately; Close shuts everything down.
func (c *Controller) Serve(ln net.Listener) {
	c.ln = ln
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			c.wg.Add(1)
			go func() {
				defer c.wg.Done()
				c.handle(conn)
			}()
		}
	}()
}

// Close stops the listener and waits for connection handlers to drain.
func (c *Controller) Close() {
	c.mu.Lock()
	for k, t := range c.timers {
		t.Stop()
		delete(c.timers, k)
	}
	c.mu.Unlock()
	c.cancel()
	if c.ln != nil {
		c.ln.Close()
	}
	c.wg.Wait()
	close(c.decision)
}

func (c *Controller) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

func (c *Controller) handle(conn net.Conn) {
	defer conn.Close()
	// Close the connection when the controller shuts down so the read
	// loop unblocks.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-c.ctx.Done():
			conn.Close()
		case <-done:
		}
	}()

	for {
		body, err := ReadMessage(conn)
		if err != nil {
			if !errors.Is(err, net.ErrClosed) {
				c.logf("controller: read: %v", err)
			}
			return
		}
		msg, err := Unmarshal(body)
		if err != nil {
			c.logf("controller: decode: %v", err)
			return
		}
		switch m := msg.(type) {
		case Hello:
			c.mu.Lock()
			c.apPos[m.Name] = m.Pos
			c.mu.Unlock()
			c.logf("controller: AP %q at %v", m.Name, m.Pos)
			c.startBroadcaster(m.Name, conn, done)
		case Report:
			c.ingest(m)
		case ReportBatch:
			for _, r := range m {
				c.ingest(r)
			}
		case Alert:
			c.handleAlert(m)
		}
	}
}

// startBroadcaster registers an outbound queue for an AP connection and
// pumps controller broadcasts (quarantine alerts) onto the socket. The
// write side of the connection is the controller's alone, so no lock is
// shared with the read loop.
func (c *Controller) startBroadcaster(name string, conn net.Conn, done chan struct{}) {
	ch := make(chan []byte, 16)
	c.quar.mu.Lock()
	c.quar.conns[name] = ch
	c.quar.mu.Unlock()
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		defer func() {
			c.quar.mu.Lock()
			delete(c.quar.conns, name)
			c.quar.mu.Unlock()
		}()
		for {
			select {
			case body := <-ch:
				if err := WriteMessage(conn, body); err != nil {
					return
				}
			case <-c.ctx.Done():
				return
			case <-done:
				return
			}
		}
	}()
}

// ingest records a report and emits a decision once MinAPs distinct APs
// have reported the same (MAC, seq).
func (c *Controller) ingest(r Report) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.apPos[r.APName]; !ok {
		c.logf("controller: report from unknown AP %q dropped", r.APName)
		return
	}
	key := pendingKey{r.MAC, r.SeqNo}
	if c.decided[key] {
		return
	}
	m := c.pending[key]
	if m == nil {
		m = make(map[string]float64)
		c.pending[key] = m
	}
	m[r.APName] = r.BearingDeg
	if len(m) < c.MinAPs {
		return
	}

	// Geometric dilution guard: when every pair of bearing lines is
	// nearly parallel (a client close to the line between two APs), the
	// intersection is ill-conditioned and can land tens of metres away.
	// Hold the decision until a bearing with angular diversity arrives —
	// unless every registered AP has already reported, or the decision
	// timeout forces the best-available fix (see below).
	if !c.diverse(m) && len(m) < len(c.apPos) {
		if _, armed := c.timers[key]; !armed {
			k := key
			c.timers[key] = time.AfterFunc(c.decisionTimeout(), func() {
				c.mu.Lock()
				defer c.mu.Unlock()
				c.finalizeLocked(k)
			})
		}
		return
	}
	c.finalizeLocked(key)
}

// decisionTimeout returns the configured forced-decision deadline.
func (c *Controller) decisionTimeout() time.Duration {
	if c.DecisionTimeout > 0 {
		return c.DecisionTimeout
	}
	return time.Second
}

// diverse checks angular diversity of the pending bearings (c.mu held).
func (c *Controller) diverse(m map[string]float64) bool {
	obs := make([]locate.BearingObs, 0, len(m))
	for name, bearing := range m {
		obs = append(obs, locate.BearingObs{AP: c.apPos[name], BearingDeg: bearing})
	}
	return angularlyDiverse(obs, 15)
}

// finalizeLocked fuses whatever bearings are pending for key and emits
// the decision. Caller holds c.mu. A no-op when the key was already
// decided or has too few bearings.
func (c *Controller) finalizeLocked(key pendingKey) {
	if t, ok := c.timers[key]; ok {
		t.Stop()
		delete(c.timers, key)
	}
	if c.decided[key] {
		return
	}
	m := c.pending[key]
	if len(m) < c.MinAPs {
		return
	}
	obs := make([]locate.BearingObs, 0, len(m))
	aps := make([]string, 0, len(m))
	for name, bearing := range m {
		obs = append(obs, locate.BearingObs{AP: c.apPos[name], BearingDeg: bearing})
		aps = append(aps, name)
	}
	dec, pos, err := c.Fence.Decide(obs)
	if err != nil {
		c.logf("controller: fuse %v seq %d: %v", key.mac, key.seq, err)
		return
	}
	c.decided[key] = true
	delete(c.pending, key)
	out := FenceDecision{MAC: key.mac, SeqNo: key.seq, Pos: pos, Decision: dec, APs: aps}
	select {
	case c.decision <- out:
	default:
		c.logf("controller: decision channel full, dropping %v", out.MAC)
	}
}

// angularlyDiverse reports whether some pair of bearing lines crosses at
// no less than minDeg degrees (bearings compared modulo 180: a line and
// its reverse are the same line).
func angularlyDiverse(obs []locate.BearingObs, minDeg float64) bool {
	for i := 0; i < len(obs); i++ {
		for j := i + 1; j < len(obs); j++ {
			d := obs[i].BearingDeg - obs[j].BearingDeg
			for d < 0 {
				d += 180
			}
			for d >= 180 {
				d -= 180
			}
			if d > 90 {
				d = 180 - d
			}
			if d >= minDeg {
				return true
			}
		}
	}
	return false
}

// --- AP agent side ---

// Agent is an AP's connection to the controller.
type Agent struct {
	conn net.Conn
	mu   sync.Mutex
}

// Dial connects to the controller and sends the Hello.
func Dial(addr string, hello Hello) (*Agent, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	a := &Agent{conn: conn}
	if err := WriteMessage(conn, MarshalHello(hello)); err != nil {
		conn.Close()
		return nil, err
	}
	return a, nil
}

// NewAgentOn wraps an existing connection (tests use net.Pipe).
func NewAgentOn(conn net.Conn, hello Hello) (*Agent, error) {
	a := &Agent{conn: conn}
	if err := WriteMessage(conn, MarshalHello(hello)); err != nil {
		return nil, err
	}
	return a, nil
}

// Send ships one report; safe for concurrent use.
func (a *Agent) Send(r Report) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return WriteMessage(a.conn, MarshalReport(r))
}

// SendBatch ships a batch of reports as ReportBatch messages — the
// AP-side counterpart of core.ObserveBatch, one frame (and one syscall)
// for many observations instead of one each. Batches whose encoding
// would exceed MaxMessageSize are split across multiple frames
// transparently. Safe for concurrent use; reports of one call are not
// interleaved with other senders.
func (a *Agent) SendBatch(rs []Report) error {
	if len(rs) == 0 {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for start := 0; start < len(rs); {
		// Grow the chunk until the next report would overflow the frame.
		body := []byte{TypeReportBatch, 0, 0, 0, 0}
		end := start
		for ; end < len(rs); end++ {
			next := appendReportBody(body, rs[end])
			if len(next) > MaxMessageSize && end > start {
				break
			}
			body = next
			if len(body) > MaxMessageSize {
				// A single oversized report: let WriteMessage reject it.
				end++
				break
			}
		}
		binary.BigEndian.PutUint32(body[1:5], uint32(end-start))
		if err := WriteMessage(a.conn, body); err != nil {
			return err
		}
		start = end
	}
	return nil
}

// Close terminates the agent's connection.
func (a *Agent) Close() error { return a.conn.Close() }
