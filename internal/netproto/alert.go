package netproto

import (
	"encoding/binary"
	"math"
	"sync"

	"secureangle/internal/wifi"
)

// TypeAlert carries a spoofing alert: an AP that flagged a MAC address
// reports it to the controller, and the controller broadcasts the
// quarantine to every connected AP — one AP's detection protects the
// whole deployment (the defense-in-depth posture of section 1 applied
// fleet-wide).
const TypeAlert = 3

// Alert is a spoofing-detection notice for one MAC.
type Alert struct {
	// APName identifies the reporting AP ("controller" on broadcasts).
	APName string
	MAC    wifi.Addr
	// Distance is the signature distance that triggered the flag.
	Distance float64
}

// MarshalAlert encodes an Alert message body.
func MarshalAlert(a Alert) []byte {
	b := []byte{TypeAlert}
	b = writeString(b, a.APName)
	b = append(b, a.MAC[:]...)
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(a.Distance))
	return b
}

// unmarshalAlert decodes an Alert body (after the type byte).
func unmarshalAlert(rest []byte) (Alert, error) {
	var a Alert
	name, rest, err := readString(rest)
	if err != nil {
		return a, err
	}
	if len(rest) != 6+8 {
		return a, ErrBadMessage
	}
	a.APName = name
	copy(a.MAC[:], rest[:6])
	a.Distance = math.Float64frombits(binary.BigEndian.Uint64(rest[6:14]))
	return a, nil
}

// --- Controller-side quarantine state ---

// quarantine tracks flagged MACs and the agents to notify.
type quarantine struct {
	mu    sync.Mutex
	macs  map[wifi.Addr]Alert
	conns map[string]chan []byte // per-AP outbound broadcast queues
}

func newQuarantine() *quarantine {
	return &quarantine{
		macs:  make(map[wifi.Addr]Alert),
		conns: make(map[string]chan []byte),
	}
}

// add records a flagged MAC; returns true if it is new.
func (q *quarantine) add(a Alert) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, seen := q.macs[a.MAC]; seen {
		return false
	}
	q.macs[a.MAC] = a
	return true
}

// list snapshots the quarantined MACs.
func (q *quarantine) list() []Alert {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Alert, 0, len(q.macs))
	for _, a := range q.macs {
		out = append(out, a)
	}
	return out
}

// Quarantined returns the controller's current quarantine list.
func (c *Controller) Quarantined() []Alert {
	if c.quar == nil {
		return nil
	}
	return c.quar.list()
}

// handleAlert ingests an agent's alert and broadcasts the quarantine to
// every connected agent.
func (c *Controller) handleAlert(a Alert) {
	if !c.quar.add(a) {
		return // already quarantined
	}
	c.logf("controller: quarantining %s (flagged by %s, distance %.3f)", a.MAC, a.APName, a.Distance)
	broadcast := MarshalAlert(Alert{APName: "controller", MAC: a.MAC, Distance: a.Distance})
	c.quar.mu.Lock()
	defer c.quar.mu.Unlock()
	for name, ch := range c.quar.conns {
		select {
		case ch <- broadcast:
		default:
			c.logf("controller: broadcast queue to %s full", name)
		}
	}
}

// --- Agent-side ---

// SendAlert reports a flagged MAC to the controller.
func (a *Agent) SendAlert(apName string, mac wifi.Addr, distance float64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return WriteMessage(a.conn, MarshalAlert(Alert{APName: apName, MAC: mac, Distance: distance}))
}

// Alerts starts a background reader delivering controller broadcasts.
// Call at most once; the channel closes when the connection drops. Only
// agents that listen for alerts should call this (the read loop consumes
// the connection's inbound side).
func (a *Agent) Alerts() <-chan Alert {
	out := make(chan Alert, 16)
	go func() {
		defer close(out)
		for {
			body, err := ReadMessage(a.conn)
			if err != nil {
				return
			}
			msg, err := Unmarshal(body)
			if err != nil {
				continue
			}
			if al, ok := msg.(Alert); ok {
				out <- al
			}
		}
	}()
	return out
}
