package netproto

import (
	"encoding/binary"
	"math"
	"net"
	"sync"

	"secureangle/internal/defense"
	"secureangle/internal/journal"
	"secureangle/internal/trace"
	"secureangle/internal/wifi"
)

// TypeAlert carries a spoofing alert: an AP that flagged a MAC address
// reports it to the controller, which feeds the scored verdict into its
// defense engine (package defense). When the engine escalates the
// client into quarantine, every connected AP learns about it — v2
// sessions through a typed Directive, v1 sessions through a legacy
// Alert broadcast — so one AP's detection protects the whole deployment
// (the defense-in-depth posture of section 1 applied fleet-wide).
const TypeAlert = 3

// Alert is a spoofing-detection notice for one MAC.
type Alert struct {
	// APName identifies the reporting AP ("controller" on broadcasts).
	APName string
	MAC    wifi.Addr
	// Distance is the signature distance that triggered the flag.
	Distance float64
	// Stage, when non-empty, is the pipeline stage behind the alert —
	// a core.PipelineError's Stage field crossing the wire, so the
	// controller's quarantine records *why* an AP raised the flag
	// ("spoofcheck" for a signature mismatch, "detect"/"estimate" for
	// anomalous failures). Protocol v2 onwards: the field is stripped
	// when the session negotiated v1, and absent from v1 peers' alerts.
	Stage string
	// Threshold is the match policy's MaxDistance the flag was judged
	// against — with Distance it carries the verdict's margin, so the
	// defense engine weighs a barely-flagged packet differently from a
	// gross mismatch. Protocol v3 only.
	Threshold float64
	// BearingDeg is the bearing the flagging AP observed the offending
	// frame at — the null-steer fallback direction when the threat has
	// no fused position. HasBearing marks it measured (bearing 0 is a
	// legitimate direction): v1/v2 alerts and bare SendAlert leave it
	// false, and the defense engine will not null-steer on a bearing
	// nobody measured. Protocol v3 only.
	BearingDeg float64
	HasBearing bool
	// Trace is the trace ID of the flagged observation, linking the
	// alert to the packet's end-to-end decision trace. Protocol v5 only.
	Trace uint64
}

// MarshalAlert encodes an Alert message body in the highest wire form
// this build speaks.
func MarshalAlert(a Alert) []byte {
	return marshalAlertV(a, ProtoVersion)
}

// marshalAlertV encodes an Alert for a session at the given negotiated
// version: the v1 form has no trailing fields, v2 appends the stage
// string when non-empty (byte-identical to what v2 builds shipped),
// v3 always appends stage + threshold + bearing, and v5 appends the
// trailing trace ID.
func marshalAlertV(a Alert, version uint16) []byte {
	b := []byte{TypeAlert}
	b = writeString(b, a.APName)
	b = append(b, a.MAC[:]...)
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(a.Distance))
	switch {
	case version >= ProtoV3:
		b = writeString(b, a.Stage)
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(a.Threshold))
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(a.BearingDeg))
		if a.HasBearing {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		if version >= ProtoV5 {
			b = binary.BigEndian.AppendUint64(b, a.Trace)
		}
	case version >= ProtoV2 && a.Stage != "":
		b = writeString(b, a.Stage)
	}
	return b
}

// unmarshalAlert decodes an Alert body (after the type byte), accepting
// the v1 form (no trailing fields), the v2 form (stage string only),
// the v3 form (stage + threshold + bearing), and the v5 form (v3 plus
// the trailing trace ID).
func unmarshalAlert(rest []byte) (Alert, error) {
	var a Alert
	name, rest, err := readString(rest)
	if err != nil {
		return a, err
	}
	if len(rest) < 6+8 {
		return a, ErrBadMessage
	}
	a.APName = name
	copy(a.MAC[:], rest[:6])
	a.Distance = math.Float64frombits(binary.BigEndian.Uint64(rest[6:14]))
	rest = rest[14:]
	if len(rest) == 0 {
		return a, nil // v1 form
	}
	a.Stage, rest, err = readString(rest)
	if err != nil {
		return a, err
	}
	if len(rest) == 0 {
		return a, nil // v2 form (stage only)
	}
	if len(rest) != 17 && len(rest) != 17+8 {
		return a, ErrBadMessage
	}
	a.Threshold = math.Float64frombits(binary.BigEndian.Uint64(rest[0:8]))
	a.BearingDeg = math.Float64frombits(binary.BigEndian.Uint64(rest[8:16]))
	a.HasBearing = rest[16] != 0
	if len(rest) == 17+8 { // v5: trailing trace ID
		a.Trace = binary.BigEndian.Uint64(rest[17:])
	}
	return a, nil
}

// --- Controller-side connection registry ---

// apConn is one registered agent connection's outbound queue and the
// protocol version negotiated for it (broadcasts are re-encoded per
// connection so v1 agents keep decoding them). stop and conn let a
// reconnect under the same AP name retire the stale broadcaster and
// connection atomically with the replacement.
type apConn struct {
	ch      chan []byte
	version uint16
	stop    chan struct{}
	conn    net.Conn
	health  *apHealth
}

// peers tracks the agents to notify on broadcasts. (The seed kept the
// quarantined-MAC map here too; that state now lives in the defense
// engine, with TTLs and a release path, instead of a permanent map.)
type peers struct {
	mu    sync.Mutex
	conns map[string]apConn // per-AP outbound broadcast queues
}

func newPeers() *peers {
	return &peers{conns: make(map[string]apConn)}
}

// Quarantined returns an Alert view of every client the defense engine
// currently holds in quarantine — the shape the seed's permanent
// quarantine list had, kept for compatibility. Entries now expire
// (TTL/decay) and can be released (Controller.Release), so the list
// shrinks as well as grows. Threats returns the full scored state.
func (c *Controller) Quarantined() []Alert {
	s := c.partsLoaded()
	if s == nil {
		return nil
	}
	states := s.Quarantined()
	out := make([]Alert, 0, len(states))
	for _, st := range states {
		out = append(out, Alert{
			APName:     st.LastAP,
			MAC:        st.MAC,
			Distance:   st.LastDistance,
			Threshold:  st.LastThreshold,
			Stage:      st.Stage,
			BearingDeg: st.BearingDeg,
			HasBearing: st.HasBearing,
			Trace:      st.Trace,
		})
	}
	return out
}

// handleAlert ingests an agent's alert as a scored spoof verdict. The
// defense engine decides whether it escalates; escalations come back
// through emitDirective, which broadcasts to the fleet.
func (c *Controller) handleAlert(a Alert) {
	v := defense.SpoofVerdict{
		AP:         a.APName,
		MAC:        a.MAC,
		Flagged:    true,
		Distance:   a.Distance,
		Threshold:  a.Threshold,
		BearingDeg: a.BearingDeg,
		HasBearing: a.HasBearing,
		Stage:      a.Stage,
		Trace:      a.Trace,
	}
	// An alert is incident evidence: its trace is retained
	// unconditionally, never left to the benign sampler.
	c.traceSpan(trace.StageAlert, a.Trace, a.MAC, a.APName, 0)
	c.tracer().Retain(a.Trace)
	// Apply before journaling (the ingest ordering): a snapshot racing
	// this alert re-applies it from the tail at worst — one bounded
	// double-count of its score — rather than losing the evidence.
	if s := c.partsBuild(); s != nil {
		s.ReportSpoof(v)
	}
	c.journalAppend(v.MAC, journal.RecAlert, journal.EncodeAlert(v))
}

// --- Agent-side ---

// SendAlert reports a flagged MAC to the controller (no stage detail —
// the v1 form; SendAlertDetail carries the full v2 Alert).
func (a *Agent) SendAlert(apName string, mac wifi.Addr, distance float64) error {
	return a.SendAlertDetail(Alert{APName: apName, MAC: mac, Distance: distance})
}

// SendAlertDetail ships a full Alert, encoded at this session's
// negotiated version: the Stage field needs v2 and the scored
// Threshold/BearingDeg/HasBearing fields need v3 — older sessions get
// them stripped, so the encoding always matches what the far end
// decodes.
func (a *Agent) SendAlertDetail(al Alert) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.writeBody(marshalAlertV(al, a.Version()))
}

// Alerts delivers controller broadcasts through the agent's shared
// background reader (started on first use; TrackReplies and Directives
// feed off the same reader, and up to a buffer's worth of alerts read
// before this call are flushed to the subscriber). The channel closes
// when the connection drops. Only agents that listen for controller
// frames should call this (the read loop consumes the connection's
// inbound side), and callers must keep draining the channel.
func (a *Agent) Alerts() <-chan Alert {
	a.startReader()
	a.pendMu.Lock()
	// Flush parked broadcasts in order before live delivery begins;
	// len(pendAlerts) <= cap(alerts) and nothing was sent while
	// unsubscribed, so these sends cannot block — and the reader only
	// closes the channel after marking readerClosed under this lock,
	// so they cannot hit a closed channel either.
	if !a.readerClosed {
		for _, al := range a.pendAlerts {
			a.alerts <- al
		}
	}
	a.pendAlerts = nil
	a.wantAlerts.Store(true)
	a.pendMu.Unlock()
	return a.alerts
}
