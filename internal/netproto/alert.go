package netproto

import (
	"encoding/binary"
	"math"
	"net"
	"sync"

	"secureangle/internal/wifi"
)

// TypeAlert carries a spoofing alert: an AP that flagged a MAC address
// reports it to the controller, and the controller broadcasts the
// quarantine to every connected AP — one AP's detection protects the
// whole deployment (the defense-in-depth posture of section 1 applied
// fleet-wide).
const TypeAlert = 3

// Alert is a spoofing-detection notice for one MAC.
type Alert struct {
	// APName identifies the reporting AP ("controller" on broadcasts).
	APName string
	MAC    wifi.Addr
	// Distance is the signature distance that triggered the flag.
	Distance float64
	// Stage, when non-empty, is the pipeline stage behind the alert —
	// a core.PipelineError's Stage field crossing the wire, so the
	// controller's quarantine records *why* an AP raised the flag
	// ("spoofcheck" for a signature mismatch, "detect"/"estimate" for
	// anomalous failures). Protocol v2 only: the field is stripped when
	// the session negotiated v1, and absent from v1 peers' alerts.
	Stage string
}

// MarshalAlert encodes an Alert message body in the highest wire form
// this build speaks (the Stage field is omitted when empty, which is
// also the v1 form).
func MarshalAlert(a Alert) []byte {
	return marshalAlertV(a, ProtoVersion)
}

// marshalAlertV encodes an Alert for a session at the given negotiated
// version, stripping v2-only fields for v1 sessions.
func marshalAlertV(a Alert, version uint16) []byte {
	b := []byte{TypeAlert}
	b = writeString(b, a.APName)
	b = append(b, a.MAC[:]...)
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(a.Distance))
	if version >= ProtoV2 && a.Stage != "" {
		b = writeString(b, a.Stage)
	}
	return b
}

// unmarshalAlert decodes an Alert body (after the type byte), accepting
// both the v1 form and the v2 form with the trailing stage string.
func unmarshalAlert(rest []byte) (Alert, error) {
	var a Alert
	name, rest, err := readString(rest)
	if err != nil {
		return a, err
	}
	if len(rest) < 6+8 {
		return a, ErrBadMessage
	}
	a.APName = name
	copy(a.MAC[:], rest[:6])
	a.Distance = math.Float64frombits(binary.BigEndian.Uint64(rest[6:14]))
	rest = rest[14:]
	if len(rest) == 0 {
		return a, nil
	}
	a.Stage, rest, err = readString(rest)
	if err != nil {
		return a, err
	}
	if len(rest) != 0 {
		return a, ErrBadMessage
	}
	return a, nil
}

// --- Controller-side quarantine state ---

// apConn is one registered agent connection's outbound queue and the
// protocol version negotiated for it (broadcasts are re-encoded per
// connection so v1 agents keep decoding them). stop and conn let a
// reconnect under the same AP name retire the stale broadcaster and
// connection atomically with the replacement.
type apConn struct {
	ch      chan []byte
	version uint16
	stop    chan struct{}
	conn    net.Conn
}

// quarantine tracks flagged MACs and the agents to notify.
type quarantine struct {
	mu    sync.Mutex
	macs  map[wifi.Addr]Alert
	conns map[string]apConn // per-AP outbound broadcast queues
}

func newQuarantine() *quarantine {
	return &quarantine{
		macs:  make(map[wifi.Addr]Alert),
		conns: make(map[string]apConn),
	}
}

// add records a flagged MAC; returns true if it is new.
func (q *quarantine) add(a Alert) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, seen := q.macs[a.MAC]; seen {
		return false
	}
	q.macs[a.MAC] = a
	return true
}

// list snapshots the quarantined MACs.
func (q *quarantine) list() []Alert {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Alert, 0, len(q.macs))
	for _, a := range q.macs {
		out = append(out, a)
	}
	return out
}

// Quarantined returns the controller's current quarantine list.
func (c *Controller) Quarantined() []Alert {
	if c.quar == nil {
		return nil
	}
	return c.quar.list()
}

// handleAlert ingests an agent's alert and broadcasts the quarantine to
// every connected agent, encoding per connection at its negotiated
// protocol version (v1 sessions get the stage field stripped).
func (c *Controller) handleAlert(a Alert) {
	if !c.quar.add(a) {
		return // already quarantined
	}
	c.logf("controller: quarantining %s (flagged by %s, distance %.3f, stage %q)", a.MAC, a.APName, a.Distance, a.Stage)
	out := Alert{APName: "controller", MAC: a.MAC, Distance: a.Distance, Stage: a.Stage}
	c.quar.mu.Lock()
	defer c.quar.mu.Unlock()
	for name, ac := range c.quar.conns {
		select {
		case ac.ch <- marshalAlertV(out, ac.version):
		default:
			c.logf("controller: broadcast queue to %s full", name)
		}
	}
}

// --- Agent-side ---

// SendAlert reports a flagged MAC to the controller (no stage detail —
// the v1 form; SendAlertDetail carries the full v2 Alert).
func (a *Agent) SendAlert(apName string, mac wifi.Addr, distance float64) error {
	return a.SendAlertDetail(Alert{APName: apName, MAC: mac, Distance: distance})
}

// SendAlertDetail ships a full Alert. The v2-only Stage field (set from
// a core.PipelineError's Stage by callers that have one) is stripped
// when this session negotiated protocol v1, so the encoding always
// matches what the far end decodes.
func (a *Agent) SendAlertDetail(al Alert) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.writeBody(marshalAlertV(al, a.Version()))
}

// Alerts delivers controller broadcasts through the agent's shared
// background reader (started on first use; TrackReplies feeds off the
// same reader, and up to a buffer's worth of alerts read before this
// call are flushed to the subscriber). The channel closes when the
// connection drops. Only agents that listen for controller frames
// should call this (the read loop consumes the connection's inbound
// side), and callers must keep draining the channel.
func (a *Agent) Alerts() <-chan Alert {
	a.startReader()
	a.pendMu.Lock()
	// Flush parked broadcasts in order before live delivery begins;
	// len(pendAlerts) <= cap(alerts) and nothing was sent while
	// unsubscribed, so these sends cannot block — and the reader only
	// closes the channel after marking readerClosed under this lock,
	// so they cannot hit a closed channel either.
	if !a.readerClosed {
		for _, al := range a.pendAlerts {
			a.alerts <- al
		}
	}
	a.pendAlerts = nil
	a.wantAlerts.Store(true)
	a.pendMu.Unlock()
	return a.alerts
}
