package ops

import (
	"testing"
	"time"
)

// BenchmarkMetricsCounter is the headline number for the metrics core:
// one counter increment plus one histogram observation, the exact
// footprint instrumentation adds to a hot-path event. Tracked in the
// BENCH_PR*.json trajectory.
func BenchmarkMetricsCounter(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "bench counter")
	h := r.Histogram("bench_seconds", "bench histogram", DurationBuckets())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Observe(0.0003)
	}
}

func BenchmarkMetricsCounterParallel(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "bench counter")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkMetricsObserveSince(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_seconds", "bench histogram", DurationBuckets())
	t0 := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ObserveSince(t0)
	}
}
