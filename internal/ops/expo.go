package ops

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus writes the registry in Prometheus text exposition
// format (version 0.0.4): one # HELP and # TYPE line per family, then
// one sample line per series. Histograms expose cumulative _bucket
// series plus _sum and _count, per the format. Families whose
// collector has nothing to emit yet still get their header lines, so
// a dashboard can discover the full catalogue from a fresh process.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.famsSorted() {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		f.samples(func(s Sample) {
			switch s.Kind {
			case KindCounter, KindGauge:
				fmt.Fprintf(bw, "%s%s %s\n", s.Name, renderLabels(s.Labels), fmtFloat(s.Value))
			case KindHistogram:
				cum := uint64(0)
				for i, c := range s.Buckets {
					cum += c
					le := "+Inf"
					if i < len(s.Bounds) {
						le = fmtFloat(s.Bounds[i])
					}
					fmt.Fprintf(bw, "%s_bucket%s %d\n", s.Name, renderLabels(joinLabels(s.Labels, `le="`+le+`"`)), cum)
				}
				fmt.Fprintf(bw, "%s_sum%s %s\n", s.Name, renderLabels(s.Labels), fmtFloat(s.Sum))
				fmt.Fprintf(bw, "%s_count%s %d\n", s.Name, renderLabels(s.Labels), s.Count)
			}
		})
		if err := bw.Flush(); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func renderLabels(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
