package ops

import "net/http"

// Handler serves the registry in Prometheus text exposition format.
// Mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
