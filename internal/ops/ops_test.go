package ops

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestOpsCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("test_total", "a counter"); again != c {
		t.Fatal("re-registering a counter must return the same instrument")
	}
	g := r.Gauge("test_gauge", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Load(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
}

func TestOpsHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if got, want := h.Sum(), 5.555; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	var buckets []uint64
	r.Walk(func(s Sample) {
		if s.Name == "test_seconds" {
			buckets = s.Buckets
		}
	})
	want := []uint64{1, 1, 1, 1}
	for i := range want {
		if buckets[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", buckets, want)
		}
	}
}

func TestOpsLabelledSeries(t *testing.T) {
	r := NewRegistry()
	a := r.CounterL("test_errs_total", "errors", `stage="detect"`)
	b := r.CounterL("test_errs_total", "errors", `stage="align"`)
	if a == b {
		t.Fatal("distinct label sets must get distinct instruments")
	}
	a.Inc()
	b.Add(2)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE test_errs_total counter",
		`test_errs_total{stage="detect"} 1`,
		`test_errs_total{stage="align"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestOpsCollector(t *testing.T) {
	r := NewRegistry()
	vals := map[string]float64{"a": 1, "b": 2}
	r.RegisterCollector("test_live", "live view", KindGauge, func(emit func(string, float64)) {
		for _, k := range []string{"a", "b"} {
			emit(fmt.Sprintf("ap=%q", k), vals[k])
		}
	})
	var got []string
	r.Walk(func(s Sample) {
		got = append(got, fmt.Sprintf("%s{%s}=%g", s.Name, s.Labels, s.Value))
	})
	if len(got) != 2 || got[0] != `test_live{ap="a"}=1` || got[1] != `test_live{ap="b"}=2` {
		t.Fatalf("collector samples = %v", got)
	}
	// Re-registering replaces the collector rather than stacking a second.
	r.RegisterCollector("test_live", "live view", KindGauge, func(emit func(string, float64)) {
		emit(`ap="c"`, 3)
	})
	got = got[:0]
	r.Walk(func(s Sample) { got = append(got, s.Labels) })
	if len(got) != 1 || got[0] != `ap="c"` {
		t.Fatalf("replaced collector samples = %v", got)
	}
}

func TestOpsExpositionParses(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total", "a counter").Add(7)
	r.GaugeL("test_gauge", "a gauge", `shard="0"`).Set(1.25)
	h := r.Histogram("test_seconds", "latency", DurationBuckets())
	h.Observe(0.0003)
	h.ObserveSince(time.Now().Add(-time.Millisecond))
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	st, err := CheckExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exposition did not parse: %v\n%s", err, buf.String())
	}
	if st.Families != 3 {
		t.Fatalf("families = %d, want 3", st.Families)
	}
	if st.Samples < 10 {
		t.Fatalf("samples = %d, want >= 10 (histogram buckets)", st.Samples)
	}
}

func TestOpsCheckExpositionRejects(t *testing.T) {
	bad := []string{
		"1bad_name 3\n",
		"ok_name notanumber\n",
		"ok_name{le=\"unterminated} 3\n",
		"# TYPE x counter\n# TYPE x counter\nx 1\n",
		"x 1\n# TYPE x counter\n",
		"# TYPE x frobnicator\n",
	}
	for _, in := range bad {
		if _, err := CheckExposition(strings.NewReader(in)); err == nil {
			t.Fatalf("CheckExposition accepted %q", in)
		}
	}
	good := "# HELP y help text\n# TYPE y histogram\ny_bucket{le=\"+Inf\"} 2\ny_sum 3.5\ny_count 2\n"
	if _, err := CheckExposition(strings.NewReader(good)); err != nil {
		t.Fatalf("CheckExposition rejected valid input: %v", err)
	}
}

func TestOpsConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "c")
	h := r.Histogram("test_seconds", "h", []float64{1, 2})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(1.5)
				r.CounterL("test_dyn_total", "d", `w="x"`).Inc()
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var buf bytes.Buffer
			if err := r.WritePrometheus(&buf); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if c.Load() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Load())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}

// TestOpsUpdateAllocs pins the hot-path promise: updates on
// pre-registered instruments are allocation-free.
func TestOpsUpdateAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "c")
	g := r.Gauge("test_gauge", "g")
	h := r.Histogram("test_seconds", "h", DurationBuckets())
	t0 := time.Now()
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(1)
		g.Add(0.5)
		h.Observe(0.002)
		h.ObserveSince(t0)
	})
	if allocs != 0 {
		t.Fatalf("instrument updates allocated %.1f/op, want 0", allocs)
	}
}

func TestOpsKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total", "c")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge under a counter name must panic")
		}
	}()
	r.Gauge("test_total", "g")
}
