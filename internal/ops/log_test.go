package ops

import (
	"strings"
	"testing"
	"time"
)

func fixedClock() time.Time {
	return time.Date(2026, 8, 8, 12, 0, 0, 123e6, time.UTC)
}

// TestLoggerFormat pins the line shape the incident tooling greps:
// RFC 3339 timestamp, level= tag, then the message with its key=value
// fields untouched.
func TestLoggerFormat(t *testing.T) {
	var sb strings.Builder
	l := NewLogger(&sb)
	l.clock = fixedClock
	l.Infof("controller: quarantining mac=%s trace=%016x", "aa:bb:cc:dd:ee:ff", uint64(0xdeadbeef))
	got := sb.String()
	want := "2026-08-08T12:00:00.123Z level=info controller: quarantining mac=aa:bb:cc:dd:ee:ff trace=00000000deadbeef\n"
	if got != want {
		t.Fatalf("line = %q, want %q", got, want)
	}
}

// TestLoggerLevels: lines below the threshold are dropped, the rest
// carry their own level tag.
func TestLoggerLevels(t *testing.T) {
	var sb strings.Builder
	l := NewLogger(&sb)
	l.clock = fixedClock
	l.Debugf("hidden")
	l.Warnf("seen")
	l.Errorf("also seen")
	out := sb.String()
	if strings.Contains(out, "hidden") {
		t.Fatal("debug line passed an info-level logger")
	}
	if !strings.Contains(out, "level=warn seen") || !strings.Contains(out, "level=error also seen") {
		t.Fatalf("output = %q", out)
	}
	l.SetLevel(LevelDebug)
	l.Debugf("now visible")
	if !strings.Contains(sb.String(), "level=debug now visible") {
		t.Fatalf("debug line missing after SetLevel: %q", sb.String())
	}
	l.SetLevel(LevelError)
	if l.Enabled(LevelWarn) {
		t.Fatal("warn enabled at error threshold")
	}
}

// TestParseLevel: names map to levels, junk falls back to info.
func TestParseLevel(t *testing.T) {
	cases := map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "warn": LevelWarn,
		"warning": LevelWarn, "error": LevelError, "bogus": LevelInfo, "": LevelInfo,
	}
	for in, want := range cases {
		if got := ParseLevel(in); got != want {
			t.Errorf("ParseLevel(%q) = %v, want %v", in, got, want)
		}
	}
}
