// Package ops is the fleet operations metrics core: a registry of
// atomic counters, gauges, and fixed-bucket histograms cheap enough to
// sit on the data-plane hot paths. The design splits the cost the way
// the hot paths need it split:
//
//   - Registration (Counter/Gauge/Histogram lookups by name) takes
//     locks and may allocate. It happens once, at package init or
//     engine construction, never per packet.
//   - Updates (Inc/Add/Set/Observe) are lock-free atomic operations on
//     the instrument pointer the caller kept. Zero allocations, no map
//     lookups, safe from any goroutine.
//   - Collection (WritePrometheus, Walk) snapshots under read locks at
//     scrape cadence and may allocate freely.
//
// Instruments are identified by a Prometheus-style family name plus an
// optional pre-rendered label string (`shard="3"`). Registering the
// same (name, labels) pair twice returns the same instrument, so
// package-level instruments and repeated engine construction in tests
// compose without double-registration panics.
//
// Scrape-time views over state that lives elsewhere (per-AP health,
// per-shard engine counters, journal position) register as collectors:
// a closure invoked at collection time that emits one sample per label
// set. Re-registering a collector under the same name replaces it, so
// the latest controller owns the family.
package ops

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is the exposition type of a metric family.
type Kind uint8

const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = iota
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindHistogram is a fixed-bucket distribution.
	KindHistogram
)

// String names the kind in Prometheus exposition terms.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Counter is a monotonically increasing uint64. All methods are
// lock-free and allocation-free.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a float64 that can move in either direction. All methods
// are lock-free and allocation-free.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (which may be negative) with a CAS loop.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution with cumulative exposition.
// Observe is lock-free and allocation-free; bucket bounds are frozen
// at registration.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
	// exemplar is the trace ID of the most recent observation that
	// carried one — the jump from an aggregate latency series to one
	// concrete retained trace (/traces?trace=...).
	exemplar atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the elapsed time since t0 in seconds.
func (h *Histogram) ObserveSince(t0 time.Time) {
	h.Observe(time.Since(t0).Seconds())
}

// ObserveExemplar records one value and stamps the observation's trace
// ID as the histogram's exemplar (a zero trace leaves the previous
// exemplar in place). Lock-free and allocation-free, like Observe.
func (h *Histogram) ObserveExemplar(v float64, trace uint64) {
	h.Observe(v)
	if trace != 0 {
		h.exemplar.Store(trace)
	}
}

// ObserveSinceExemplar is ObserveSince with an exemplar trace ID.
func (h *Histogram) ObserveSinceExemplar(t0 time.Time, trace uint64) {
	h.ObserveExemplar(time.Since(t0).Seconds(), trace)
}

// Exemplar returns the trace ID of the latest exemplar-carrying
// observation, or zero if none was ever recorded.
func (h *Histogram) Exemplar() uint64 { return h.exemplar.Load() }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// DurationBuckets is the default bound set for latency histograms:
// exponential from 1 us to ~16 s, wide enough for both the
// sub-microsecond controller paths and the ~300 us packet pipeline.
func DurationBuckets() []float64 {
	b := make([]float64, 0, 13)
	for v := 1e-6; v < 20; v *= 4 {
		b = append(b, v)
	}
	return b
}

// family is one exposition family: a name, a kind, and one instrument
// per label set (or a collector that emits samples at scrape time).
type family struct {
	name string
	help string
	kind Kind

	mu     sync.Mutex
	series map[string]any // labels -> *Counter | *Gauge | *Histogram
	order  []string       // labels in registration order

	collect func(emit func(labels string, value float64))
}

const regShards = 16

// Registry holds metric families sharded by name hash. The zero value
// is not usable; call NewRegistry, or use Default.
type Registry struct {
	shards [regShards]struct {
		mu   sync.RWMutex
		fams map[string]*family
	}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	for i := range r.shards {
		r.shards[i].fams = make(map[string]*family)
	}
	return r
}

var defaultRegistry = NewRegistry()

// Default is the process-wide registry. Package-level instruments in
// the instrumented layers register here, and the controller's
// /metrics endpoint serves it.
func Default() *Registry { return defaultRegistry }

func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// fam returns the family, creating it with the given kind if absent.
// It panics if the name exists with a different kind: that is a
// programming error, not a runtime condition.
func (r *Registry) fam(name, help string, kind Kind) *family {
	sh := &r.shards[fnv32(name)%regShards]
	sh.mu.RLock()
	f := sh.fams[name]
	sh.mu.RUnlock()
	if f == nil {
		sh.mu.Lock()
		f = sh.fams[name]
		if f == nil {
			f = &family{name: name, help: help, kind: kind, series: make(map[string]any)}
			sh.fams[name] = f
		}
		sh.mu.Unlock()
	}
	if f.kind != kind {
		panic(fmt.Sprintf("ops: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	return f
}

func (f *family) instrument(labels string, make func() any) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	if inst, ok := f.series[labels]; ok {
		return inst
	}
	inst := make()
	f.series[labels] = inst
	f.order = append(f.order, labels)
	return inst
}

// Counter registers (or returns the existing) unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterL(name, help, "")
}

// CounterL registers (or returns the existing) counter with the given
// pre-rendered label string, e.g. `stage="detect"`.
func (r *Registry) CounterL(name, help, labels string) *Counter {
	f := r.fam(name, help, KindCounter)
	return f.instrument(labels, func() any { return &Counter{} }).(*Counter)
}

// Gauge registers (or returns the existing) unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeL(name, help, "")
}

// GaugeL registers (or returns the existing) labelled gauge.
func (r *Registry) GaugeL(name, help, labels string) *Gauge {
	f := r.fam(name, help, KindGauge)
	return f.instrument(labels, func() any { return &Gauge{} }).(*Gauge)
}

// Histogram registers (or returns the existing) unlabelled histogram.
// bounds must be ascending; they are copied. A histogram registered
// twice keeps its first bound set.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.HistogramL(name, help, "", bounds)
}

// HistogramL registers (or returns the existing) labelled histogram.
func (r *Registry) HistogramL(name, help, labels string, bounds []float64) *Histogram {
	f := r.fam(name, help, KindHistogram)
	return f.instrument(labels, func() any {
		b := make([]float64, len(bounds))
		copy(b, bounds)
		for i := 1; i < len(b); i++ {
			if b[i] <= b[i-1] {
				panic(fmt.Sprintf("ops: histogram %q bounds not ascending", name))
			}
		}
		return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
	}).(*Histogram)
}

// RegisterCollector installs a scrape-time sample source for one
// family. kind must be KindCounter or KindGauge. The closure is called
// once per collection with an emit function; each emit call produces
// one sample with the given pre-rendered labels. Re-registering the
// same name replaces the previous collector.
func (r *Registry) RegisterCollector(name, help string, kind Kind, fn func(emit func(labels string, value float64))) {
	if kind == KindHistogram {
		panic("ops: histogram collectors are not supported")
	}
	sh := &r.shards[fnv32(name)%regShards]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	f := sh.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		sh.fams[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("ops: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	f.mu.Lock()
	f.collect = fn
	f.mu.Unlock()
}

// Sample is one collected value, used by Walk.
type Sample struct {
	Name   string
	Labels string
	Kind   Kind
	Value  float64 // counters and gauges

	// Histogram-only fields.
	Bounds  []float64
	Buckets []uint64 // per-bound counts (not cumulative), +Inf last
	Count   uint64
	Sum     float64
	// Exemplar is the trace ID of the latest exemplar-carrying
	// observation (zero if none) — the /traces link for this series.
	Exemplar uint64
}

// famsSorted snapshots every family in name order.
func (r *Registry) famsSorted() []*family {
	var fams []*family
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		for _, f := range sh.fams {
			fams = append(fams, f)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// samples visits one family's samples: registered instruments in
// registration order, then collector samples in emit order. A family
// may legitimately emit zero samples (a collector whose source is not
// built yet).
func (f *family) samples(visit func(s Sample)) {
	f.mu.Lock()
	collect := f.collect
	labels := append([]string(nil), f.order...)
	insts := make([]any, len(labels))
	for i, l := range labels {
		insts[i] = f.series[l]
	}
	f.mu.Unlock()
	for i, l := range labels {
		s := Sample{Name: f.name, Labels: l, Kind: f.kind}
		switch inst := insts[i].(type) {
		case *Counter:
			s.Value = float64(inst.Load())
		case *Gauge:
			s.Value = inst.Load()
		case *Histogram:
			s.Bounds = inst.bounds
			s.Buckets = make([]uint64, len(inst.counts))
			for b := range inst.counts {
				s.Buckets[b] = inst.counts[b].Load()
			}
			s.Count = inst.Count()
			s.Sum = inst.Sum()
			s.Exemplar = inst.Exemplar()
		}
		visit(s)
	}
	if collect != nil {
		collect(func(labels string, value float64) {
			visit(Sample{Name: f.name, Labels: labels, Kind: f.kind, Value: value})
		})
	}
}

// Walk visits every family in name order and every sample within a
// family in registration order (collector samples in emit order). It
// is the single traversal both the Prometheus writer and tests use.
func (r *Registry) Walk(visit func(s Sample)) {
	for _, f := range r.famsSorted() {
		f.samples(visit)
	}
}

// help returns the registered help string for a family name, for the
// exposition writer.
func (r *Registry) famMeta(name string) (help string, kind Kind, ok bool) {
	sh := &r.shards[fnv32(name)%regShards]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	f := sh.fams[name]
	if f == nil {
		return "", 0, false
	}
	return f.help, f.kind, true
}
