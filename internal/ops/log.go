package ops

// A leveled key=value logger for the controller plane. The controller
// and CLI log lines are grep-and-awk material during an incident
// (mac=, ap=, partition=, trace= keys joined against `secureangle
// incident` output), so the logger's job is a stable machine-parsable
// prefix — RFC 3339 timestamp and level tag — in front of the existing
// printf-style messages, not a structured-logging framework.

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders log severities.
type Level int32

const (
	// LevelDebug is per-event chatter (suppressed by default).
	LevelDebug Level = iota
	// LevelInfo is normal operational narrative.
	LevelInfo
	// LevelWarn is degraded-but-running conditions.
	LevelWarn
	// LevelError is failed operations.
	LevelError
)

// String names the level as it appears in the level= field.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int32(l))
	}
}

// ParseLevel maps a level name ("debug", "info", "warn", "error") to
// its Level, defaulting to LevelInfo on anything unrecognised.
func ParseLevel(s string) Level {
	switch s {
	case "debug":
		return LevelDebug
	case "warn", "warning":
		return LevelWarn
	case "error":
		return LevelError
	default:
		return LevelInfo
	}
}

// Logger writes leveled, timestamped lines to one writer. Safe for
// concurrent use; lines below the threshold are dropped before
// formatting, so a debug-heavy caller costs one atomic load per
// suppressed line.
type Logger struct {
	mu  sync.Mutex
	w   io.Writer
	min atomic.Int32
	// clock is swappable for tests; nil means time.Now.
	clock func() time.Time
}

// NewLogger returns a Logger writing to w at LevelInfo.
func NewLogger(w io.Writer) *Logger {
	l := &Logger{w: w}
	l.min.Store(int32(LevelInfo))
	return l
}

// SetLevel sets the minimum level that reaches the writer.
func (l *Logger) SetLevel(min Level) { l.min.Store(int32(min)) }

// Enabled reports whether lines at lv currently reach the writer.
func (l *Logger) Enabled(lv Level) bool { return int32(lv) >= l.min.Load() }

// Logf writes one line at lv: `<ts> level=<lv> <message>`.
func (l *Logger) Logf(lv Level, format string, args ...any) {
	if !l.Enabled(lv) {
		return
	}
	now := time.Now
	if l.clock != nil {
		now = l.clock
	}
	msg := fmt.Sprintf(format, args...)
	l.mu.Lock()
	defer l.mu.Unlock()
	fmt.Fprintf(l.w, "%s level=%s %s\n", now().UTC().Format("2006-01-02T15:04:05.000Z07:00"), lv, msg)
}

// Debugf, Infof, Warnf, and Errorf are Logf at a fixed level.
func (l *Logger) Debugf(format string, args ...any) { l.Logf(LevelDebug, format, args...) }
func (l *Logger) Infof(format string, args ...any)  { l.Logf(LevelInfo, format, args...) }
func (l *Logger) Warnf(format string, args ...any)  { l.Logf(LevelWarn, format, args...) }
func (l *Logger) Errorf(format string, args ...any) { l.Logf(LevelError, format, args...) }

// Printf is Infof under the name the controller's Logf hook and the
// journal Options.Logf hook expect, so a Logger plugs in directly:
//
//	c.Logf = logger.Printf
func (l *Logger) Printf(format string, args ...any) { l.Infof(format, args...) }
