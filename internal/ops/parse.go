package ops

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ExpoStats summarises a parsed exposition: how many families and
// samples it contained. CheckExposition returns it so smoke tests can
// assert the scrape was non-trivial, not just syntactically valid.
type ExpoStats struct {
	Families int
	Samples  int
}

// CheckExposition validates Prometheus text exposition format
// (0.0.4): metric-name syntax, label syntax, parseable sample values,
// at most one # TYPE per family, and TYPE lines preceding the
// family's samples. It exists so the CI smoke and the unit tests
// validate /metrics with a real parser instead of grepping for
// substrings. The first violation is returned with its line number.
func CheckExposition(r io.Reader) (ExpoStats, error) {
	var st ExpoStats
	typed := make(map[string]string) // family -> type
	seen := make(map[string]bool)    // family with samples emitted
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 3 && (fields[1] == "TYPE" || fields[1] == "HELP") {
				name := fields[2]
				if !validMetricName(name) {
					return st, fmt.Errorf("line %d: bad metric name %q in %s line", lineNo, name, fields[1])
				}
				if fields[1] == "TYPE" {
					if len(fields) != 4 {
						return st, fmt.Errorf("line %d: TYPE line missing type", lineNo)
					}
					switch fields[3] {
					case "counter", "gauge", "histogram", "summary", "untyped":
					default:
						return st, fmt.Errorf("line %d: unknown type %q", lineNo, fields[3])
					}
					if _, dup := typed[name]; dup {
						return st, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
					}
					if seen[name] {
						return st, fmt.Errorf("line %d: TYPE for %q after its samples", lineNo, name)
					}
					typed[name] = fields[3]
					st.Families++
				}
			}
			continue
		}
		name, rest, err := parseSampleName(line)
		if err != nil {
			return st, fmt.Errorf("line %d: %v", lineNo, err)
		}
		seen[familyOf(name, typed)] = true
		rest = strings.TrimSpace(rest)
		val := rest
		if i := strings.IndexByte(rest, ' '); i >= 0 {
			val = rest[:i] // optional timestamp follows
		}
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			return st, fmt.Errorf("line %d: bad sample value %q", lineNo, val)
		}
		st.Samples++
	}
	if err := sc.Err(); err != nil {
		return st, err
	}
	return st, nil
}

// familyOf maps a sample's metric name back to its declared family,
// accounting for histogram/summary suffixes.
func familyOf(name string, typed map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			if t, ok := typed[base]; ok && (t == "histogram" || t == "summary") {
				return base
			}
		}
	}
	return name
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// parseSampleName consumes the metric name and optional {labels} from
// a sample line, returning the name and the remainder (the value).
func parseSampleName(line string) (name, rest string, err error) {
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' {
		i++
	}
	name = line[:i]
	if !validMetricName(name) {
		return "", "", fmt.Errorf("bad metric name %q", name)
	}
	if i < len(line) && line[i] == '{' {
		end, err := scanLabels(line[i:])
		if err != nil {
			return "", "", err
		}
		i += end
	}
	if i >= len(line) || line[i] != ' ' {
		return "", "", fmt.Errorf("missing value after %q", name)
	}
	return name, line[i+1:], nil
}

// scanLabels validates a {k="v",...} block starting at s[0]=='{' and
// returns the index just past the closing brace.
func scanLabels(s string) (int, error) {
	i := 1
	for {
		if i < len(s) && s[i] == '}' {
			return i + 1, nil
		}
		start := i
		for i < len(s) && s[i] != '=' {
			c := s[i]
			if c != '_' && !(c >= 'a' && c <= 'z') && !(c >= 'A' && c <= 'Z') && !(i > start && c >= '0' && c <= '9') {
				return 0, fmt.Errorf("bad label name in %q", s)
			}
			i++
		}
		if i == start || i >= len(s) {
			return 0, fmt.Errorf("bad label block %q", s)
		}
		i++ // '='
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("unquoted label value in %q", s)
		}
		i++
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' {
				i++
			}
			i++
		}
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label value in %q", s)
		}
		i++ // closing quote
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}
