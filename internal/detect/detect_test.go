package detect

import (
	"math"
	"testing"

	"secureangle/internal/dsp"
	"secureangle/internal/ofdm"
	"secureangle/internal/rng"
)

// buildStream places a packet at the given offset in a noisy stream.
func buildStream(offset, tail int, snrDB float64, seed int64) ([]complex128, *ofdm.Packet) {
	mod := ofdm.NewModulator(ofdm.DefaultParams())
	pkt, err := mod.BuildPacket([]byte("0123456789abcdef0123456789abcdef"), ofdm.QPSK)
	if err != nil {
		panic(err)
	}
	stream := make([]complex128, offset+len(pkt.Samples)+tail)
	copy(stream[offset:], pkt.Samples)
	sp := dsp.Power(pkt.Samples)
	sigma2 := sp / dsp.FromDB(snrDB)
	rng.New(seed).AddAWGN(stream, sigma2)
	return stream, pkt
}

func TestMetricHighInsidePreambleLowOutside(t *testing.T) {
	stream, _ := buildStream(500, 500, 25, 1)
	m, _ := Metric(stream, DefaultConfig())
	// Inside the STF (core samples around offset 516) the metric must be
	// near 1; far away it must be low.
	peak := 0.0
	for d := 500; d < 560 && d < len(m); d++ {
		peak = math.Max(peak, m[d])
	}
	if peak < 0.8 {
		t.Errorf("metric inside preamble = %v, want > 0.8", peak)
	}
	noiseMax := 0.0
	for d := 0; d < 300; d++ {
		noiseMax = math.Max(noiseMax, m[d])
	}
	if noiseMax > 0.45 {
		t.Errorf("metric in noise = %v, want < 0.45", noiseMax)
	}
}

func TestFindSinglePacket(t *testing.T) {
	stream, _ := buildStream(700, 600, 25, 2)
	dets := Find(stream, DefaultConfig())
	if len(dets) != 1 {
		t.Fatalf("detections = %d, want 1", len(dets))
	}
	// Start should land within the first STF symbol (CP ambiguity is
	// acceptable: within ~32 samples of the true start).
	if d := dets[0].Start - 700; d < -32 || d > 48 {
		t.Errorf("start offset error = %d samples", d)
	}
	if dets[0].Metric < 0.8 {
		t.Errorf("peak metric = %v", dets[0].Metric)
	}
}

func TestFindMultiplePackets(t *testing.T) {
	mod := ofdm.NewModulator(ofdm.DefaultParams())
	pkt, _ := mod.BuildPacket([]byte("payload-one-abcdef"), ofdm.BPSK)
	stream := make([]complex128, 5000)
	copy(stream[400:], pkt.Samples)
	copy(stream[2800:], pkt.Samples)
	src := rng.New(3)
	src.AddAWGN(stream, dsp.Power(pkt.Samples)/dsp.FromDB(25))

	dets := Find(stream, DefaultConfig())
	if len(dets) != 2 {
		t.Fatalf("detections = %d, want 2", len(dets))
	}
	if d := dets[0].Start - 400; d < -32 || d > 48 {
		t.Errorf("first start error %d", d)
	}
	if d := dets[1].Start - 2800; d < -32 || d > 48 {
		t.Errorf("second start error %d", d)
	}
}

func TestNoFalseDetectionInPureNoise(t *testing.T) {
	src := rng.New(4)
	stream := src.AWGN(20000, 1.0)
	dets := Find(stream, DefaultConfig())
	if len(dets) != 0 {
		t.Errorf("false detections in noise: %d", len(dets))
	}
}

func TestCFOEstimate(t *testing.T) {
	// Apply a known CFO and check the coarse estimate.
	const cfo = 30e3 // 30 kHz, ~12 ppm at 2.4 GHz
	stream, _ := buildStream(600, 400, 30, 5)
	shifted := dsp.MixFrequency(stream, cfo, 20e6, 0)
	dets := Find(shifted, DefaultConfig())
	if len(dets) != 1 {
		t.Fatalf("detections = %d", len(dets))
	}
	if err := math.Abs(dets[0].CFOHz - cfo); err > 3e3 {
		t.Errorf("CFO estimate error = %v Hz", err)
	}
}

func TestCFORange(t *testing.T) {
	// The half-symbol correlator is unambiguous for |CFO| < fs/(2L) =
	// 312.5 kHz; test a negative offset too.
	const cfo = -100e3
	stream, _ := buildStream(600, 400, 30, 6)
	shifted := dsp.MixFrequency(stream, cfo, 20e6, 0)
	dets := Find(shifted, DefaultConfig())
	if len(dets) != 1 {
		t.Fatalf("detections = %d", len(dets))
	}
	if err := math.Abs(dets[0].CFOHz - cfo); err > 5e3 {
		t.Errorf("CFO estimate error = %v Hz", err)
	}
}

func TestDetectionAtLowSNR(t *testing.T) {
	stream, _ := buildStream(800, 400, 8, 7)
	dets := Find(stream, DefaultConfig())
	if len(dets) != 1 {
		t.Fatalf("detections at 8 dB = %d, want 1", len(dets))
	}
	if d := dets[0].Start - 800; d < -40 || d > 60 {
		t.Errorf("start error at low SNR = %d", d)
	}
}

func TestMetricEmptyInput(t *testing.T) {
	m, p := Metric(nil, DefaultConfig())
	if m != nil || p != nil {
		t.Error("Metric(nil) should return nil")
	}
	if Find(make([]complex128, 10), DefaultConfig()) != nil {
		t.Error("Find on tiny input should return nil")
	}
}

func TestExtractAligned(t *testing.T) {
	streams := [][]complex128{
		make([]complex128, 100),
		make([]complex128, 100),
	}
	for i := range streams[0] {
		streams[0][i] = complex(float64(i), 0)
		streams[1][i] = complex(0, float64(i))
	}
	got, ok := ExtractAligned(streams, Detection{Start: 10}, 20)
	if !ok {
		t.Fatal("extraction failed")
	}
	if len(got) != 2 || len(got[0]) != 20 {
		t.Fatalf("shape %dx%d", len(got), len(got[0]))
	}
	if got[0][0] != 10 || got[1][19] != complex(0, 29) {
		t.Error("window content wrong")
	}
	if _, ok := ExtractAligned(streams, Detection{Start: 95}, 20); ok {
		t.Error("overrun accepted")
	}
	if _, ok := ExtractAligned(streams, Detection{Start: -1}, 5); ok {
		t.Error("negative start accepted")
	}
}

func BenchmarkMetric(b *testing.B) {
	stream, _ := buildStream(1000, 1000, 20, 8)
	cfg := DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Metric(stream, cfg)
	}
}

func BenchmarkFind(b *testing.B) {
	stream, _ := buildStream(1000, 1000, 20, 9)
	cfg := DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Find(stream, cfg)
	}
}

func TestCorrectCFOEnablesDemodulation(t *testing.T) {
	// End-to-end: a packet with CFO fails hard-decision demodulation
	// until the detector's estimate is applied.
	mod := ofdm.NewModulator(ofdm.DefaultParams())
	payload := []byte("cfo-correction-check-0123456789abcdef")
	pkt, err := mod.BuildPacket(payload, ofdm.QAM16)
	if err != nil {
		t.Fatal(err)
	}
	stream := make([]complex128, 400+len(pkt.Samples)+200)
	copy(stream[400:], pkt.Samples)
	src := rng.New(31)
	src.AddAWGN(stream, dsp.Power(pkt.Samples)/dsp.FromDB(30))
	const cfo = 150e3 // ~0.48 subcarrier spacings: severe ICI
	shifted := dsp.MixFrequency(stream, cfo, 20e6, 0)

	dets := Find(shifted, DefaultConfig())
	if len(dets) != 1 {
		t.Fatalf("detections = %d", len(dets))
	}
	dem := ofdm.NewDemodulator(ofdm.DefaultParams())

	// Locate the true packet start near the detection (the plateau gives
	// CP-level ambiguity; search the neighbourhood for the best demod).
	tryDemod := func(samples []complex128) bool {
		for off := -40; off <= 40; off++ {
			start := dets[0].Start + off
			if start < 0 || start+len(pkt.Samples) > len(samples) {
				continue
			}
			bits, err := dem.Demodulate(samples[start:], pkt.NSymbols, ofdm.QAM16)
			if err != nil {
				continue
			}
			errs := 0
			for i := range bits {
				if bits[i] != pkt.PayloadBits[i] {
					errs++
				}
			}
			if errs == 0 {
				return true
			}
		}
		return false
	}

	if tryDemod(shifted) {
		t.Fatal("demodulation succeeded with uncorrected 150 kHz CFO — test is vacuous")
	}
	corrected := CorrectCFO(shifted, dets[0].CFOHz, 20e6)
	if !tryDemod(corrected) {
		t.Errorf("demodulation failed after CFO correction (estimate %.0f Hz, true %.0f)", dets[0].CFOHz, cfo)
	}
}

func TestMetricBoundedProperty(t *testing.T) {
	// The Minn-normalised metric is bounded to [0, 1] by Cauchy-Schwarz
	// for any input.
	src := rng.New(32)
	for trial := 0; trial < 20; trial++ {
		n := 400 + src.Intn(500)
		x := src.AWGN(n, 1+10*src.Float64())
		// Occasionally embed structure.
		if trial%3 == 0 {
			mod := ofdm.NewModulator(ofdm.DefaultParams())
			pre := mod.Preamble()
			copy(x[src.Intn(n-len(pre)):], pre)
		}
		m, _ := Metric(x, DefaultConfig())
		for i, v := range m {
			if v < 0 || v > 1+1e-9 {
				t.Fatalf("trial %d: metric[%d] = %v out of [0,1]", trial, i, v)
			}
		}
	}
}
