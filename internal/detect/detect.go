// Package detect locates OFDM packets in raw sample streams with the
// Schmidl-Cox algorithm, exactly the role it plays in the SecureAngle
// prototype ("we realize the Schmidl-Cox OFDM packet detection algorithm
// to locate packets in the raw samples", section 3). It also provides the
// coarse carrier-frequency-offset estimate that falls out of the timing
// metric's phase.
package detect

import (
	"math"
	"math/cmplx"

	"secureangle/internal/dsp"
	"secureangle/internal/pool"
)

// Config parameterises the detector.
type Config struct {
	// HalfLen is the repetition half-length L: the preamble's first
	// training symbol consists of two identical halves of L samples. For
	// the 64-point OFDM preamble here, L = 32.
	HalfLen int
	// SampleRate in Hz, for CFO conversion.
	SampleRate float64
	// Threshold on the timing metric M(d) in (0, 1); Schmidl-Cox's M
	// approaches 1 inside the preamble and hovers near 0 in noise. 0.5 is
	// robust across the SNRs the testbed uses.
	Threshold float64
	// MinGap suppresses re-detection within this many samples of a
	// previous detection (at least a packet length).
	MinGap int
}

// DefaultConfig returns the detector settings for the default PHY.
func DefaultConfig() Config {
	return Config{HalfLen: 32, SampleRate: 20e6, Threshold: 0.5, MinGap: 400}
}

// Detection is one located packet.
type Detection struct {
	// Start is the estimated index of the first preamble sample.
	Start int
	// Metric is the peak Schmidl-Cox metric value in [0, 1].
	Metric float64
	// CFOHz is the coarse carrier frequency offset estimate.
	CFOHz float64
}

// Metric computes the Schmidl-Cox timing metric over the stream, in the
// normalised form M(d) = |P(d)|^2 / (R1(d) * R2(d)), where P correlates
// each half-symbol with the next and R1, R2 are the energies of the two
// halves. By Cauchy-Schwarz M <= 1, so the metric cannot blow up at packet
// edges where one half holds signal and the other noise (the plain
// Schmidl-Cox denominator R2^2 does, producing phantom trailing-edge
// detections). The returned slice has len(x) - 2L + 1 entries; index d
// corresponds to a candidate symbol starting at sample d.
func Metric(x []complex128, cfg Config) ([]float64, []complex128) {
	return MetricArena(x, cfg, nil)
}

func complexBuf(ar *pool.Arena, n int) []complex128 {
	if ar == nil {
		return make([]complex128, n)
	}
	return ar.ComplexUninit(n)
}

func floatBuf(ar *pool.Arena, n int) []float64 {
	if ar == nil {
		return make([]float64, n)
	}
	return ar.Float(n)
}

// MetricArena is Metric with every intermediate buffer drawn from ar (nil
// behaves exactly like Metric): the returned slices alias the arena and
// are valid until its next Reset.
func MetricArena(x []complex128, cfg Config, ar *pool.Arena) ([]float64, []complex128) {
	L := cfg.HalfLen
	if len(x) < 2*L {
		return nil, nil
	}
	// prod[d] = conj(x[d]) * x[d+L]; energy[d] = |x[d]|^2.
	n := len(x) - L
	prod := complexBuf(ar, n)
	energy := floatBuf(ar, len(x))
	for d := 0; d < n; d++ {
		prod[d] = cmplx.Conj(x[d]) * x[d+L]
	}
	for d := range x {
		energy[d] = real(x[d])*real(x[d]) + imag(x[d])*imag(x[d])
	}
	p := dsp.MovingSumInto(complexBuf(ar, n-L+1), prod, L)
	r := dsp.MovingSumRealInto(floatBuf(ar, len(x)-L+1), energy, L) // r[d] = energy of x[d..d+L)
	m := floatBuf(ar, len(p))
	for d := range p {
		r1 := r[d]
		r2 := r[d+L]
		if r1*r2 <= 1e-60 {
			m[d] = 0
			continue
		}
		pm := cmplx.Abs(p[d])
		m[d] = pm * pm / (r1 * r2)
	}
	return m, p
}

// Find scans the stream and returns all detections, in order. For each
// region where the metric exceeds the threshold, the packet start is
// taken as the first sample of the plateau (Schmidl-Cox's metric forms a
// plateau of length CP over a repeated-half symbol preceded by a cyclic
// prefix; the rising edge marks the preamble start to within the CP,
// which is all the correlation-matrix pipeline needs).
func Find(x []complex128, cfg Config) []Detection {
	return FindArena(x, cfg, nil, nil)
}

// FindArena is Find with metric buffers drawn from ar and detections
// appended to dets (pass a scratch slice truncated to length 0 for an
// allocation-free steady state; nil behaves exactly like Find).
func FindArena(x []complex128, cfg Config, ar *pool.Arena, dets []Detection) []Detection {
	m, p := MetricArena(x, cfg, ar)
	if m == nil {
		return dets
	}
	out := dets
	lastEnd := -cfg.MinGap - 1
	d := 0
	for d < len(m) {
		if m[d] < cfg.Threshold || d-lastEnd <= cfg.MinGap {
			d++
			continue
		}
		// Walk the plateau: track the peak while above threshold.
		peak, peakIdx := m[d], d
		start := d
		for d < len(m) && m[d] >= cfg.Threshold {
			if m[d] > peak {
				peak, peakIdx = m[d], d
			}
			d++
		}
		cfo := cfoFromCorrelation(p[peakIdx], cfg)
		out = append(out, Detection{Start: start, Metric: peak, CFOHz: cfo})
		lastEnd = start
	}
	return out
}

// cfoFromCorrelation converts the phase of the half-symbol correlation to
// a frequency offset: a CFO of f rotates the second half by
// 2 pi f L / fs relative to the first.
func cfoFromCorrelation(p complex128, cfg Config) float64 {
	ph := cmplx.Phase(p)
	return ph * cfg.SampleRate / (2 * math.Pi * float64(cfg.HalfLen))
}

// ExtractAligned returns n samples starting at det.Start from each of the
// per-antenna streams, or false if any stream is too short. The AoA
// pipeline runs the detector on one antenna and extracts the same window
// from all of them (the prototype's shared sampling clock guarantees
// alignment; the simulator's front end provides the same guarantee).
func ExtractAligned(streams [][]complex128, det Detection, n int) ([][]complex128, bool) {
	return ExtractAlignedArena(streams, det, n, nil)
}

// ExtractAlignedArena is ExtractAligned drawing the header slice from ar
// (the sample windows are views into streams either way).
func ExtractAlignedArena(streams [][]complex128, det Detection, n int, ar *pool.Arena) ([][]complex128, bool) {
	var out [][]complex128
	if ar == nil {
		out = make([][]complex128, len(streams))
	} else {
		out = ar.Streams(len(streams))
	}
	for i, s := range streams {
		if det.Start < 0 || det.Start+n > len(s) {
			return nil, false
		}
		out[i] = s[det.Start : det.Start+n]
	}
	return out, true
}

// CorrectCFO removes a carrier frequency offset from samples (returns a
// new slice), using the estimate the Schmidl-Cox correlator produced.
// Demodulation needs this; the covariance pipeline does not (a common
// rotation cancels in x x^H).
func CorrectCFO(x []complex128, cfoHz, sampleRate float64) []complex128 {
	return dsp.MixFrequency(x, -cfoHz, sampleRate, 0)
}
