package testbed

import (
	"math"
	"strings"
	"testing"

	"secureangle/internal/env"
	"secureangle/internal/geom"
	"secureangle/internal/ofdm"
	"secureangle/internal/wifi"
)

func TestClientsComplete(t *testing.T) {
	cs := Clients()
	if len(cs) != 20 {
		t.Fatalf("clients = %d, want 20", len(cs))
	}
	seen := map[int]bool{}
	for _, c := range cs {
		if c.ID < 1 || c.ID > 20 {
			t.Errorf("client ID %d out of range", c.ID)
		}
		if seen[c.ID] {
			t.Errorf("duplicate client %d", c.ID)
		}
		seen[c.ID] = true
	}
}

func TestClientByID(t *testing.T) {
	c, err := ClientByID(5)
	if err != nil || c.ID != 5 {
		t.Fatalf("ClientByID(5) = %v, %v", c, err)
	}
	if _, err := ClientByID(99); err == nil {
		t.Error("ClientByID(99) accepted")
	}
}

func TestAllClientsInsideBuilding(t *testing.T) {
	_, shell := Building()
	for _, c := range Clients() {
		if !shell.Contains(c.Pos) {
			t.Errorf("client %d at %v outside the shell", c.ID, c.Pos)
		}
	}
	for _, p := range []geom.Point{AP1, AP2, AP3} {
		if !shell.Contains(p) {
			t.Errorf("AP at %v outside the shell", p)
		}
	}
}

func TestOutsidePositionsAreOutside(t *testing.T) {
	_, shell := Building()
	for _, p := range OutsidePositions() {
		if shell.Contains(p) {
			t.Errorf("outside position %v is inside the shell", p)
		}
	}
}

func TestPillarBlockedClients(t *testing.T) {
	// Clients 11 and 12: direct path crosses the pillar (two faces, so
	// amplitude x0.36), leaving reflections within a few dB — the
	// high-variance regime of Figure 5.
	e, _ := Building()
	free := env.New(nil, nil)
	for _, id := range []int{11, 12} {
		c, _ := ClientByID(id)
		paths := e.Trace(c.Pos, AP1)
		dp, ok := env.DirectPath(paths)
		if !ok {
			t.Fatalf("client %d has no direct path", id)
		}
		fp, _ := env.DirectPath(free.Trace(c.Pos, AP1))
		ratio := cAbs(dp.Gain) / cAbs(fp.Gain)
		if math.Abs(ratio-0.36) > 1e-9 {
			t.Errorf("client %d direct attenuation = %v, want 0.36 (two pillar faces)", id, ratio)
		}
		// Strongest reflection within 6 dB of the attenuated direct path.
		var strongest float64
		for _, p := range paths {
			if p.Order > 0 {
				strongest = math.Max(strongest, cAbs(p.Gain))
			}
		}
		relDB := 20 * math.Log10(strongest/cAbs(dp.Gain))
		if relDB < -6 {
			t.Errorf("client %d strongest reflection %v dB below direct: not a hard case", id, -relDB)
		}
	}
}

func TestClient5HasClearLineOfSight(t *testing.T) {
	e, _ := Building()
	c5, _ := ClientByID(5)
	paths := e.Trace(c5.Pos, AP1)
	if paths[0].Order != 0 {
		t.Error("client 5's strongest path is not direct")
	}
}

func TestClient2InAnotherRoom(t *testing.T) {
	// Client 2's direct path crosses the drywall partition: attenuated
	// but present.
	e, _ := Building()
	c2, _ := ClientByID(2)
	dp, ok := env.DirectPath(e.Trace(c2.Pos, AP1))
	if !ok {
		t.Fatal("client 2 unreachable")
	}
	free := env.New(nil, nil)
	fp, _ := env.DirectPath(free.Trace(c2.Pos, AP1))
	ratio := cAbs(dp.Gain) / cAbs(fp.Gain)
	if math.Abs(ratio-env.Drywall.Transmission) > 1e-9 {
		t.Errorf("client 2 attenuation = %v, want one drywall crossing (%v)", ratio, env.Drywall.Transmission)
	}
}

func TestGroundTruthBearings(t *testing.T) {
	// Spot checks: client 4 at (13.5, 4) from AP1 (8, 5).
	c4, _ := ClientByID(4)
	want := math.Atan2(-1, 5.5) * 180 / math.Pi
	if want < 0 {
		want += 360
	}
	if got := GroundTruth(AP1, c4.Pos); math.Abs(got-want) > 1e-9 {
		t.Errorf("client 4 bearing = %v, want %v", got, want)
	}
}

func TestArrays(t *testing.T) {
	ca := CircularArray()
	if ca.N() != 8 {
		t.Error("circular array size")
	}
	la := LinearArray()
	if la.N() != 8 {
		t.Error("linear array size")
	}
	spacing := la.Elements[1].Sub(la.Elements[0]).Norm()
	if math.Abs(spacing-0.0613) > 3e-4 {
		t.Errorf("linear spacing = %v", spacing)
	}
}

func TestClientMACsDistinct(t *testing.T) {
	seen := map[wifi.Addr]bool{}
	for id := 1; id <= 20; id++ {
		mac := ClientMAC(id)
		if seen[mac] {
			t.Fatalf("duplicate MAC for client %d", id)
		}
		seen[mac] = true
	}
}

func TestUplinkFrameRoundTrip(t *testing.T) {
	f := UplinkFrame(7, 42, []byte("data"))
	got, err := wifi.Unmarshal(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Addr2 != ClientMAC(7) || got.Seq != 42 {
		t.Error("uplink frame fields")
	}
}

func TestFrameBaseband(t *testing.T) {
	f := UplinkFrame(1, 1, []byte("payload"))
	bb, err := FrameBaseband(f, ofdm.QPSK)
	if err != nil {
		t.Fatal(err)
	}
	// Padding present: leading zeros.
	for i := 0; i < 300; i++ {
		if bb[i] != 0 {
			t.Fatal("lead padding not zero")
		}
	}
	if len(bb) <= 600 {
		t.Error("baseband too short")
	}
}

func cAbs(c complex128) float64 {
	return math.Hypot(real(c), imag(c))
}

func TestMapRendersAllMarkers(t *testing.T) {
	m := Map()
	// All three APs.
	for _, mark := range []string{"A", "B", "C", "##"} {
		if !strings.Contains(m, mark) {
			t.Errorf("map missing %q", mark)
		}
	}
	// All client markers: digits 1-9 and letters a-k.
	for id := 1; id <= 20; id++ {
		mark := string(rune('0' + id))
		if id >= 10 {
			mark = string(rune('a' + id - 10))
		}
		if !strings.Contains(m, mark) {
			t.Errorf("map missing client %d marker %q", id, mark)
		}
	}
	// Walls intact: the border lines survive marker plotting.
	lines := strings.Split(m, "\n")
	if !strings.HasPrefix(lines[1], "+") || !strings.HasSuffix(lines[1], "+") {
		t.Error("top border broken")
	}
}
