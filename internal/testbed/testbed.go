// Package testbed reconstructs the paper's Figure 4 office environment:
// a building with a main room containing the 8-antenna WARP access point
// and a cement pillar, an adjacent office, a corridor wing, and the 20
// numbered Soekris clients whose bearings the evaluation measures. All
// experiment drivers (Figures 5-7, accuracy claims, fence, spoofing) run
// against this floor plan.
//
// Layout (metres, origin at the building's south-west corner):
//
//	y=16 +----------------------------------------------+
//	     |  20   19      18       17       15   16      |  corridor wing
//	y=10 +----------------------[drywall]---------------+
//	     |        9                  10  .  11          |
//	     |   8        AP1 (8,5)    [pillar] 12    | 2   |
//	     |        7        5     3    4            | 13 |  east office
//	     |   6                                14   |    |
//	y=0  +---------------------------[drywall x=16]-----+
//	     x=0                        x=16           x=24
//
// Clients 6 (far corner), 11 (fully behind the pillar) and 12 (behind the
// pillar with strong east-wall reflections) reproduce the degraded cases
// the paper singles out in Figure 5; client 2 sits in "another room
// nearby" and clients 5 / 10 are the near / far in-room clients of
// Figure 6.
package testbed

import (
	"fmt"
	"sync"

	"secureangle/internal/antenna"
	"secureangle/internal/env"
	"secureangle/internal/geom"
	"secureangle/internal/ofdm"
	"secureangle/internal/radio"
	"secureangle/internal/rng"
	"secureangle/internal/wifi"
)

// NoiseFloor is the absolute per-sample noise variance of the receiver
// chains, chosen to give roughly 30 dB SNR for a line-of-sight client 5 m
// from the AP — comparable to the prototype's indoor operating point.
const NoiseFloor = 4e-9

// AP1 is the primary access point position (main room), matching the
// "AP" marker of Figure 4.
var AP1 = geom.Point{X: 8, Y: 5}

// AP2 and AP3 are the additional access points the virtual-fence
// application uses for bearing triangulation (section 2.3.1: "an
// environment where more than two access points are computing this
// bearing information").
var (
	AP2 = geom.Point{X: 20, Y: 5}
	AP3 = geom.Point{X: 12, Y: 13}
)

// Pillar is the cement pillar in the main room that blocks clients 11 and
// 12. A ray through the pillar crosses two faces; the per-face amplitude
// transmission of 0.6 yields ~9 dB total power attenuation — enough to
// bring wall reflections within a few dB of the direct path (the paper's
// "blocked" clients still show a direct-path peak, just with greater
// variance and occasional false-positive flips, section 3.1), unlike an
// exterior concrete wall which is nearly opaque.
var Pillar = env.Obstacle{
	Poly: geom.Rect(10.0, 6.4, 10.8, 7.2),
	Mat:  env.Material{Reflection: 0.45, Transmission: 0.6},
	Name: "pillar",
}

// Client is one numbered Soekris client.
type Client struct {
	ID  int
	Pos geom.Point
	// Room is a human-readable location tag.
	Room string
}

// Clients returns the 20 clients of Figure 4.
func Clients() []Client {
	return []Client{
		{1, geom.Point{X: 10.5, Y: 8.2}, "main"},
		{2, geom.Point{X: 18.5, Y: 6.5}, "east office"},
		{3, geom.Point{X: 12.5, Y: 6.2}, "main"},
		{4, geom.Point{X: 13.5, Y: 4.0}, "main"},
		{5, geom.Point{X: 9.8, Y: 3.6}, "main"},
		{6, geom.Point{X: 0.8, Y: 0.8}, "main (far corner)"},
		{7, geom.Point{X: 4.0, Y: 2.2}, "main"},
		{8, geom.Point{X: 2.2, Y: 5.2}, "main"},
		{9, geom.Point{X: 3.0, Y: 8.4}, "main"},
		{10, geom.Point{X: 14.0, Y: 8.6}, "main (far)"},
		{11, geom.Point{X: 12.8, Y: 8.6}, "main (behind pillar)"},
		{12, geom.Point{X: 13.0, Y: 7.8}, "main (behind pillar)"},
		{13, geom.Point{X: 20.0, Y: 3.0}, "east office"},
		{14, geom.Point{X: 22.5, Y: 8.5}, "east office"},
		{15, geom.Point{X: 17.5, Y: 12.5}, "corridor"},
		{16, geom.Point{X: 21.0, Y: 14.0}, "corridor"},
		{17, geom.Point{X: 13.0, Y: 13.0}, "corridor"},
		{18, geom.Point{X: 9.0, Y: 14.5}, "corridor"},
		{19, geom.Point{X: 5.0, Y: 12.0}, "corridor"},
		{20, geom.Point{X: 1.5, Y: 14.5}, "corridor"},
	}
}

// ClientByID returns the client with the given 1-based ID.
func ClientByID(id int) (Client, error) {
	for _, c := range Clients() {
		if c.ID == id {
			return c, nil
		}
	}
	return Client{}, fmt.Errorf("testbed: no client %d", id)
}

// OutsidePositions are transmitter locations outside the building shell,
// used by the virtual-fence and attacker experiments.
func OutsidePositions() []geom.Point {
	return []geom.Point{
		{X: -3, Y: 8},
		{X: 27, Y: 4},
		{X: 12, Y: -3},
		{X: 26, Y: 15},
	}
}

// Building constructs the environment (walls, pillar) and returns it with
// the fence polygon (the building shell).
func Building() (*env.Environment, geom.Polygon) {
	shell := geom.Rect(0, 0, 24, 16)
	walls := []env.Wall{
		// Concrete exterior shell.
		{Seg: geom.Segment{A: geom.Point{X: 0, Y: 0}, B: geom.Point{X: 24, Y: 0}}, Mat: env.Concrete, Name: "shell-s"},
		{Seg: geom.Segment{A: geom.Point{X: 24, Y: 0}, B: geom.Point{X: 24, Y: 16}}, Mat: env.Concrete, Name: "shell-e"},
		{Seg: geom.Segment{A: geom.Point{X: 24, Y: 16}, B: geom.Point{X: 0, Y: 16}}, Mat: env.Concrete, Name: "shell-n"},
		{Seg: geom.Segment{A: geom.Point{X: 0, Y: 16}, B: geom.Point{X: 0, Y: 0}}, Mat: env.Concrete, Name: "shell-w"},
		// Internal drywall partitions: east office and corridor wing.
		{Seg: geom.Segment{A: geom.Point{X: 16, Y: 0}, B: geom.Point{X: 16, Y: 10}}, Mat: env.Drywall, Name: "part-e"},
		{Seg: geom.Segment{A: geom.Point{X: 0, Y: 10}, B: geom.Point{X: 24, Y: 10}}, Mat: env.Drywall, Name: "part-n"},
	}
	e := env.New(walls, []env.Obstacle{Pillar})
	e.MaxOrder = 1
	return e, shell
}

// GroundTruth returns the true bearing (global degrees) from an AP
// position to a client position.
func GroundTruth(ap, client geom.Point) float64 { return geom.BearingDeg(ap, client) }

// CircularArray returns the paper's octagonal 8-antenna arrangement.
func CircularArray() *antenna.Array {
	return antenna.NewUCA(8, 0.047, antenna.DefaultCarrierHz)
}

// LinearArray returns the paper's half-wavelength 8-antenna ULA.
func LinearArray() *antenna.Array {
	return antenna.NewHalfWaveULA(8, antenna.DefaultCarrierHz)
}

// NewAPFrontEnd builds a calibratable front end at pos with testbed noise
// settings.
func NewAPFrontEnd(arr *antenna.Array, pos geom.Point, src *rng.Source) *radio.FrontEnd {
	return radio.NewFrontEnd(arr, pos, src, radio.WithNoiseFloor(NoiseFloor))
}

// ClientMAC returns a deterministic MAC address for a client ID.
func ClientMAC(id int) wifi.Addr {
	return wifi.Addr{0x00, 0x16, 0xea, 0x50, 0x00, byte(id)}
}

// BSSID is the testbed's BSS identifier.
var BSSID = wifi.Addr{0x00, 0x16, 0xea, 0x00, 0x00, 0xff}

// UplinkFrame builds a representative uplink data frame from a client.
func UplinkFrame(clientID int, seq uint16, payload []byte) *wifi.Frame {
	return &wifi.Frame{
		Type:    wifi.Data,
		ToDS:    true,
		Addr1:   BSSID,
		Addr2:   ClientMAC(clientID),
		Addr3:   BSSID,
		Seq:     seq,
		Payload: payload,
	}
}

// maxBasebandCacheEntries bounds the modulated-frame cache (an entry is
// ~1100 complexes; the testbed's workloads cycle through a handful of
// distinct frames).
const maxBasebandCacheEntries = 64

var (
	basebandMu    sync.Mutex
	basebandCache map[string][]complex128

	// keyPool holds scratch buffers for the cache key so a warm
	// FrameBaseband call marshals the frame without allocating.
	keyPool = sync.Pool{New: func() any {
		b := make([]byte, 0, 1<<10)
		return &b
	}}
)

// FrameBaseband turns a MAC frame into padded OFDM baseband samples ready
// for the channel: the transmit side of the testbed. Modulation is a pure
// function of the frame bytes, so results are cached by content — the
// returned slice is shared across calls and must be treated as read-only
// (every receive path only reads the transmit buffer).
func FrameBaseband(f *wifi.Frame, mod ofdm.Modulation) ([]complex128, error) {
	kb := keyPool.Get().(*[]byte)
	key := append(f.AppendMarshal((*kb)[:0]), byte(mod))
	basebandMu.Lock()
	bb, ok := basebandCache[string(key)]
	basebandMu.Unlock()
	if ok {
		*kb = key
		keyPool.Put(kb)
		return bb, nil
	}
	m := ofdm.NewModulator(ofdm.DefaultParams())
	pkt, err := m.BuildPacket(key[:len(key)-1], mod)
	if err != nil {
		*kb = key
		keyPool.Put(kb)
		return nil, err
	}
	bb = radio.PadPacket(pkt.Samples, 300, 300)
	basebandMu.Lock()
	if basebandCache == nil {
		basebandCache = make(map[string][]complex128)
	}
	if len(basebandCache) >= maxBasebandCacheEntries {
		clear(basebandCache)
	}
	basebandCache[string(key)] = bb
	basebandMu.Unlock()
	*kb = key
	keyPool.Put(kb)
	return bb, nil
}
