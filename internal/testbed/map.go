package testbed

import (
	"strings"
)

// Map renders the Figure 4 floor plan as ASCII art: walls, the pillar,
// numbered clients (letters beyond 9), and AP positions. One character
// cell covers 0.5 m x 1 m (x by y), matching a terminal's aspect ratio.
func Map() string {
	const (
		cellW = 0.5 // metres per column
		cellH = 1.0 // metres per row
		cols  = int(24/cellW) + 1
		rows  = int(16/cellH) + 1
	)
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols))
	}
	// plot marks the cell containing the point; y grows upward, rows grow
	// downward.
	plot := func(x, y float64, marks string) {
		c := int(x / cellW)
		r := rows - 1 - int(y/cellH)
		// Clamp markers into the interior so border walls stay intact.
		if r < 1 {
			r = 1
		}
		if r > rows-2 {
			r = rows - 2
		}
		for i := 0; i < len(marks); i++ {
			cc := c + i
			if cc < 1 {
				cc = 1
			}
			if cc > cols-2 {
				cc = cols - 2
			}
			grid[r][cc] = marks[i]
		}
	}

	// Shell.
	for c := 0; c < cols; c++ {
		grid[0][c] = '-'
		grid[rows-1][c] = '-'
	}
	for r := 0; r < rows; r++ {
		grid[r][0] = '|'
		grid[r][cols-1] = '|'
	}
	grid[0][0], grid[0][cols-1] = '+', '+'
	grid[rows-1][0], grid[rows-1][cols-1] = '+', '+'

	// Partitions: drywall x=16 (y 0..10), drywall y=10 (x 0..24).
	for y := 0.5; y < 10; y += cellH {
		plot(16, y, ":")
	}
	for x := 0.5; x < 24; x += cellW {
		plot(x, 10, ".")
	}

	// Pillar.
	plot(10.0, 6.8, "##")

	// Clients: 1-9 digits, 10-20 letters a-k.
	for _, c := range Clients() {
		mark := string(rune('0' + c.ID))
		if c.ID >= 10 {
			mark = string(rune('a' + c.ID - 10))
		}
		plot(c.Pos.X, c.Pos.Y, mark)
	}

	// APs.
	plot(AP1.X, AP1.Y, "A")
	plot(AP2.X, AP2.Y, "B")
	plot(AP3.X, AP3.Y, "C")

	var b strings.Builder
	b.WriteString("Figure 4 floor plan (A/B/C = APs, digits/letters = clients 1-20, ## = pillar):\n")
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("legend: a=10 b=11 c=12 d=13 e=14 f=15 g=16 h=17 i=18 j=19 k=20\n")
	return b.String()
}
