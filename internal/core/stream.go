package core

import (
	"context"
	"errors"
	"runtime"
	"sync"

	"secureangle/internal/radio"
)

// ErrStreamClosed reports a Submit on a stream whose Close has begun.
var ErrStreamClosed = errors.New("secureangle: stream closed")

// StreamResult is one ordered output of a Stream. Seq is the value the
// corresponding Submit returned, and results are delivered strictly in
// Seq order. Err values are *PipelineError wrapping the taxonomy
// sentinels, exactly as in BatchResult.
type StreamResult struct {
	Seq    uint64
	Report *Report
	Err    error
}

// Stream is the always-on ingestion handle of the v2 API: an AP as a
// service rather than a call-per-packet library. Submit accepts
// transmissions with bounded buffering (it blocks when depth results
// are in flight — backpressure instead of unbounded queues), a worker
// pool runs the estimation pipeline concurrently, and Results delivers
// reports in submission order.
//
//	s := node.Stream(ctx, 16)
//	go func() {
//		for r := range s.Results() { ... }
//	}()
//	for pkt := range packets {
//		if _, err := s.Submit(ctx, pkt); err != nil { break }
//	}
//	s.Close()
//
// The serial half of reception (channel resolution, noise-stream forks)
// runs at Submit time in submission order, so a stream draws the same
// deterministic channel/noise realisations as ObserveBatch over the
// same items.
type Stream struct {
	ap     *AP
	ctx    context.Context
	cancel context.CancelFunc

	sem  chan struct{} // in-flight bound: submitted but not yet delivered
	work chan streamJob
	done chan StreamResult // completed jobs to the emitter; cap == depth, never blocks

	results  chan StreamResult
	emitDone chan struct{}

	mu      sync.Mutex
	closed  bool
	nextSeq uint64

	wg sync.WaitGroup // workers
}

// streamJob is one submitted transmission after its serial prepare.
type streamJob struct {
	seq  uint64
	prep *radio.PreparedReceive
	bb   []complex128
	err  error // prepare-stage failure, carried to the result slot
}

// Stream opens an ingestion handle on the AP. depth bounds the number
// of in-flight observations (submitted but not yet delivered on
// Results); depth <= 0 defaults to twice the worker-pool width. The
// stream stops accepting work when ctx is cancelled; queued items then
// resolve to StageDispatch errors. Call Close to flush and release the
// workers.
func (ap *AP) Stream(ctx context.Context, depth int) *Stream {
	workers := ap.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if depth <= 0 {
		depth = 2 * workers
	}
	if workers > depth {
		workers = depth
	}
	sctx, cancel := context.WithCancel(ctx)
	s := &Stream{
		ap:       ap,
		ctx:      sctx,
		cancel:   cancel,
		sem:      make(chan struct{}, depth),
		work:     make(chan streamJob, depth),
		done:     make(chan StreamResult, depth),
		results:  make(chan StreamResult),
		emitDone: make(chan struct{}),
	}
	for w := 0; w < workers; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for job := range s.work {
				s.done <- s.runJob(job)
			}
		}()
	}
	go s.emit()
	// A cancelled context closes the stream so Results always terminates.
	go func() {
		<-sctx.Done()
		s.Close()
	}()
	return s
}

// Submit queues one transmission and returns its sequence number. It
// blocks while depth observations are in flight (backpressure) and
// fails once ctx or the stream's context is cancelled, or after Close.
func (s *Stream) Submit(ctx context.Context, it BatchItem) (uint64, error) {
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		return 0, ctx.Err()
	case <-s.ctx.Done():
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return 0, ErrStreamClosed
		}
		return 0, s.ctx.Err()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		<-s.sem
		return 0, ErrStreamClosed
	}
	seq := s.nextSeq
	s.nextSeq++
	job := streamJob{seq: seq, bb: it.Baseband}
	// The order-sensitive half runs here, serialised by s.mu in
	// submission order and by ap.prepMu against concurrent batch calls.
	s.ap.prepMu.Lock()
	prep, err := s.ap.FE.PrepareReceive(s.ap.Env, it.TX, len(it.Baseband))
	s.ap.prepMu.Unlock()
	if err != nil {
		job.err = s.ap.stageErr(StageReceive, err)
	} else {
		job.prep = prep
	}
	s.work <- job // cap(work) == cap(sem): never blocks
	return seq, nil
}

// Results delivers reports in submission order. The channel closes
// after Close (or context cancellation) once every in-flight item has
// been delivered or discarded.
func (s *Stream) Results() <-chan StreamResult { return s.results }

// runJob executes the concurrent half of the pipeline for one job.
func (s *Stream) runJob(j streamJob) StreamResult {
	r := StreamResult{Seq: j.seq}
	if j.err != nil {
		r.Err = j.err
		return r
	}
	if err := s.ctx.Err(); err != nil {
		r.Err = s.ap.stageErr(StageDispatch, err)
		return r
	}
	streams, err := s.ap.FE.ReceivePrepared(j.prep, j.bb)
	if err != nil {
		r.Err = s.ap.stageErr(StageReceive, err)
		return r
	}
	r.Report, r.Err = s.ap.process(streams)
	return r
}

// emit reorders completed jobs into submission order and delivers them.
func (s *Stream) emit() {
	defer close(s.emitDone)
	defer close(s.results)
	pending := make(map[uint64]StreamResult)
	var next uint64
	for r := range s.done {
		pending[r.Seq] = r
		for {
			rr, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			select {
			case s.results <- rr:
			case <-s.ctx.Done():
				// Consumer may be gone after cancellation: try once
				// more without blocking, then discard.
				select {
				case s.results <- rr:
				default:
				}
			}
			<-s.sem
		}
	}
}

// Close stops accepting submissions, flushes every in-flight item to
// Results, closes Results, and releases the workers. It blocks until
// the flush completes, so drain Results concurrently. Safe to call more
// than once.
func (s *Stream) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.emitDone
		return
	}
	s.closed = true
	close(s.work)
	s.mu.Unlock()

	s.wg.Wait()   // workers drained s.work; all results are in s.done
	close(s.done) // emitter flushes the reorder buffer and closes results
	<-s.emitDone
	s.cancel() // release the context watcher
}
