package core

import (
	"math"
	"testing"

	"secureangle/internal/geom"
	"secureangle/internal/locate"
	"secureangle/internal/ofdm"
	"secureangle/internal/rng"
	"secureangle/internal/signature"
	"secureangle/internal/testbed"
)

// The grid-free overhaul makes root-MUSIC the default bearing estimator
// on uniform linear arrays, with the pseudospectrum (and everything
// built on it: signatures, spoof checks, fence triangulation inputs'
// provenance) still produced by the manifold grid scan. These tests pin
// the contract across the Figure 5 client sweep and the Figure 6
// spoofing scenario: per-mode bearings agree within a small tolerance,
// and the decision-bearing artifacts — signature bytes, spoof verdicts,
// fence decisions — are bit-for-bit identical between modes.

func newULAAP(t testing.TB, name string, pos geom.Point, seed int64, mode BearingMode) *AP {
	t.Helper()
	e, _ := testbed.Building()
	fe := testbed.NewAPFrontEnd(testbed.LinearArray(), pos, rng.New(seed))
	cfg := DefaultConfig()
	cfg.Bearing = mode
	return NewAP(name, fe, e, cfg)
}

// observeULA observes one client frame with a fresh AP in the given
// mode. Equal seeds give equal channel and noise realisations across
// modes, so any output difference is the estimator's alone.
func observeULA(t *testing.T, clientID int, seed int64, mode BearingMode) *Report {
	t.Helper()
	ap := newULAAP(t, "ap1", testbed.AP1, seed, mode)
	c, err := testbed.ClientByID(clientID)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := testbed.FrameBaseband(testbed.UplinkFrame(clientID, 1, []byte("parity")), ofdm.QPSK)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ap.Observe(c.Pos, bb)
	if err != nil {
		t.Fatalf("client %d mode %d: %v", clientID, mode, err)
	}
	return rep
}

// foldULA maps a global bearing into the ULA's unambiguous half-plane
// [0, 180] (the default axis-0 linear array aliases -theta onto theta).
func foldULA(b float64) float64 {
	g := math.Mod(b, 360)
	if g < 0 {
		g += 360
	}
	if g > 180 {
		g = 360 - g
	}
	return g
}

// TestGridFreeBearingParityFig5Sweep sweeps all 20 testbed clients (the
// Figure 5 population) and pins accuracy parity between the grid scan
// and the grid-free estimators:
//
//   - the pseudospectrum is bit-identical across modes (the grid scan
//     is mode-independent, so signatures cannot diverge);
//   - where the grid estimate is good (line-of-sight-quality clients),
//     the grid-free bearing agrees with it to within a few grid steps;
//   - against ground truth, grid-free is never materially worse per
//     client, and resolves at least as many clients to within 5 degrees
//     (on the multipath-degraded clients 2, 11 and 12 the polynomial
//     rooting is in fact substantially better than the 1-degree grid,
//     which is the point of shipping it as the default).
func TestGridFreeBearingParityFig5Sweep(t *testing.T) {
	goodGrid, goodRoot, goodEsp := 0, 0, 0
	for _, c := range testbed.Clients() {
		grid := observeULA(t, c.ID, int64(c.ID), BearingGrid)
		root := observeULA(t, c.ID, int64(c.ID), BearingRootMUSIC)
		esp := observeULA(t, c.ID, int64(c.ID), BearingESPRIT)

		// Identical spectra: the grid scan is mode-independent.
		for i := range grid.Spectrum.P {
			if grid.Spectrum.P[i] != root.Spectrum.P[i] || grid.Spectrum.P[i] != esp.Spectrum.P[i] {
				t.Fatalf("client %d: pseudospectrum differs across modes at bin %d", c.ID, i)
			}
		}

		gt := foldULA(testbed.GroundTruth(testbed.AP1, c.Pos))
		eGrid := angSepDeg(grid.BearingDeg, gt)
		eRoot := angSepDeg(root.BearingDeg, gt)
		eEsp := angSepDeg(esp.BearingDeg, gt)
		if eGrid <= 5 {
			goodGrid++
		}
		if eRoot <= 5 {
			goodRoot++
		}
		if eEsp <= 5 {
			goodEsp++
		}

		// Per-client: grid-free never materially worse than the grid.
		// Root-MUSIC polishes the same subspace, so its slack is below
		// one grid step; ESPRIT's least-squares rotation gets a little
		// more on clients where both lobes are multipath garbage.
		if eRoot > eGrid+1.0 {
			t.Errorf("client %d: root-MUSIC err %.2f vs grid err %.2f (gt %.2f)", c.ID, eRoot, eGrid, gt)
		}
		if eEsp > eGrid+8.0 {
			t.Errorf("client %d: ESPRIT err %.2f vs grid err %.2f (gt %.2f)", c.ID, eEsp, eGrid, gt)
		}

		// Where the grid succeeds, the modes agree tightly.
		const tol = 3.0
		if eGrid <= tol {
			if d := angSepDeg(grid.BearingDeg, root.BearingDeg); d > tol {
				t.Errorf("client %d: grid %.2f vs root-MUSIC %.2f (sep %.2f > %.1f)",
					c.ID, grid.BearingDeg, root.BearingDeg, d, tol)
			}
			if d := angSepDeg(grid.BearingDeg, esp.BearingDeg); d > tol {
				t.Errorf("client %d: grid %.2f vs ESPRIT %.2f (sep %.2f > %.1f)",
					c.ID, grid.BearingDeg, esp.BearingDeg, d, tol)
			}
		}
	}
	if goodRoot < goodGrid {
		t.Errorf("root-MUSIC resolves %d/20 clients within 5 degrees, grid resolves %d", goodRoot, goodGrid)
	}
	if goodEsp < goodGrid {
		t.Errorf("ESPRIT resolves %d/20 clients within 5 degrees, grid resolves %d", goodEsp, goodGrid)
	}
}

// TestGridFreeSignatureParity asserts the AoA signature — the spoof
// check's entire input — is byte-identical between grid and grid-free
// modes, so enrollment and matching cannot diverge.
func TestGridFreeSignatureParity(t *testing.T) {
	for _, id := range []int{2, 5, 10} { // the Figure 6 clients
		grid := observeULA(t, id, int64(100+id), BearingGrid)
		root := observeULA(t, id, int64(100+id), BearingRootMUSIC)
		gb := grid.Sig.Marshal()
		rb := root.Sig.Marshal()
		if string(gb) != string(rb) {
			t.Errorf("client %d: signature bytes differ between grid and root-MUSIC", id)
		}
	}
}

// TestGridFreeSpoofVerdictParity replays the Figure 6 spoofing
// scenario — enroll a legitimate client, then an attacker at an outside
// position transmits with the spoofed MAC — in both modes and requires
// identical accept/flag decisions, distances, and thresholds.
func TestGridFreeSpoofVerdictParity(t *testing.T) {
	run := func(mode BearingMode) []signature.Decision {
		ap := newULAAP(t, "ap1", testbed.AP1, 77, mode)
		legit, err := testbed.ClientByID(5)
		if err != nil {
			t.Fatal(err)
		}
		attacker := testbed.OutsidePositions()[0]
		var out []signature.Decision
		for seq := uint16(1); seq <= 4; seq++ {
			fr, err := ap.ProcessFrame(legit.Pos, testbed.UplinkFrame(5, seq, []byte("legit")), ofdm.QPSK)
			if err != nil {
				t.Fatalf("mode %d legit seq %d: %v", mode, seq, err)
			}
			out = append(out, fr.Decision)
		}
		for seq := uint16(5); seq <= 6; seq++ {
			fr, err := ap.ProcessFrame(attacker, testbed.UplinkFrame(5, seq, []byte("spoof")), ofdm.QPSK)
			if err != nil {
				t.Fatalf("mode %d attacker seq %d: %v", mode, seq, err)
			}
			out = append(out, fr.Decision)
		}
		return out
	}
	grid := run(BearingGrid)
	root := run(BearingRootMUSIC)
	esp := run(BearingESPRIT)
	for i := range grid {
		if grid[i] != root[i] || grid[i] != esp[i] {
			t.Errorf("frame %d: decisions diverge (grid %v, root %v, esprit %v)",
				i, grid[i], root[i], esp[i])
		}
	}
}

// TestGridFreeFenceDecisionParity triangulates a client from three ULA
// APs in each mode and requires the same fence decision. The bearings
// differ by at most the grid quantisation, so the located point moves
// by centimetres — never across the fence.
func TestGridFreeFenceDecisionParity(t *testing.T) {
	_, shell := testbed.Building()
	fence := &locate.Fence{Boundary: shell}
	aps := []struct {
		name string
		pos  geom.Point
	}{{"ap1", testbed.AP1}, {"ap2", testbed.AP2}, {"ap3", testbed.AP3}}

	decide := func(mode BearingMode, target geom.Point, clientID int) (locate.Decision, geom.Point) {
		obs := make([]locate.BearingObs, 0, len(aps))
		for i, a := range aps {
			ap := newULAAP(t, a.name, a.pos, int64(200+i), mode)
			bb, err := testbed.FrameBaseband(testbed.UplinkFrame(clientID, 1, []byte("fence")), ofdm.QPSK)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := ap.Observe(target, bb)
			if err != nil {
				t.Fatalf("mode %d %s: %v", mode, a.name, err)
			}
			obs = append(obs, locate.BearingObs{AP: a.pos, BearingDeg: rep.BearingDeg})
		}
		d, p, err := fence.Decide(obs)
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		return d, p
	}

	for _, id := range []int{5, 10} {
		c, err := testbed.ClientByID(id)
		if err != nil {
			t.Fatal(err)
		}
		gd, gp := decide(BearingGrid, c.Pos, id)
		rd, rp := decide(BearingRootMUSIC, c.Pos, id)
		if gd != rd {
			t.Errorf("client %d: fence decisions diverge (grid %v at %v, root %v at %v)", id, gd, gp, rd, rp)
		}
		if dist := math.Hypot(gp.X-rp.X, gp.Y-rp.Y); dist > 1.0 {
			t.Errorf("client %d: located points %.2fm apart across modes", id, dist)
		}
	}
}
