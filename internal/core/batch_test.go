package core

import (
	"errors"
	"sort"
	"sync"
	"testing"

	"secureangle/internal/music"
	"secureangle/internal/ofdm"
	"secureangle/internal/rng"
	"secureangle/internal/signature"
	"secureangle/internal/testbed"
	"secureangle/internal/wifi"
)

func newBatchAP(t testing.TB, workers int) *AP {
	t.Helper()
	e, _ := testbed.Building()
	fe := testbed.NewAPFrontEnd(testbed.CircularArray(), testbed.AP1, rng.New(11))
	cfg := DefaultConfig()
	cfg.Workers = workers
	return NewAP("batch-ap", fe, e, cfg)
}

func uplinkBaseband(t testing.TB, id int, seq uint16) []complex128 {
	t.Helper()
	bb, err := testbed.FrameBaseband(testbed.UplinkFrame(id, seq, []byte("uplink")), ofdm.QPSK)
	if err != nil {
		t.Fatal(err)
	}
	return bb
}

func cloneStreams(s [][]complex128) [][]complex128 {
	out := make([][]complex128, len(s))
	for i, st := range s {
		out[i] = append([]complex128(nil), st...)
	}
	return out
}

// TestProcessStreamsBatchMatchesSerial captures packets from several
// clients and asserts the pooled batch path reproduces serial
// ProcessStreams on the same captures exactly.
func TestProcessStreamsBatchMatchesSerial(t *testing.T) {
	ap := newBatchAP(t, 4)
	var captures [][][]complex128
	for _, id := range []int{1, 3, 5, 7, 9, 14} {
		c, err := testbed.ClientByID(id)
		if err != nil {
			t.Fatal(err)
		}
		streams, err := ap.Receive(c.Pos, uplinkBaseband(t, id, 1))
		if err != nil {
			t.Fatal(err)
		}
		captures = append(captures, streams)
	}

	serialIn := make([][][]complex128, len(captures))
	batchIn := make([][][]complex128, len(captures))
	for i, s := range captures {
		serialIn[i] = cloneStreams(s)
		batchIn[i] = cloneStreams(s)
	}

	var serial []*Report
	for _, s := range serialIn {
		rep, err := ap.ProcessStreams(s)
		if err != nil {
			t.Fatal(err)
		}
		serial = append(serial, rep)
	}
	batch := ap.ProcessStreamsBatch(batchIn)
	if len(batch) != len(serial) {
		t.Fatalf("batch returned %d results, want %d", len(batch), len(serial))
	}
	for i, br := range batch {
		if br.Err != nil {
			t.Fatalf("item %d: %v", i, br.Err)
		}
		want := serial[i]
		got := br.Report
		if got.BearingDeg != want.BearingDeg || got.Sources != want.Sources || got.SNRdB != want.SNRdB {
			t.Fatalf("item %d: batch (%v, %d, %v) != serial (%v, %d, %v)",
				i, got.BearingDeg, got.Sources, got.SNRdB, want.BearingDeg, want.Sources, want.SNRdB)
		}
		d, err := signature.Distance(got.Sig, want.Sig)
		if err != nil {
			t.Fatal(err)
		}
		if d != 0 {
			t.Fatalf("item %d: signature distance %v", i, d)
		}
	}
}

// TestObserveBatchReports asserts the batched receive path produces sound
// reports for every visible client and isolates per-item failures.
func TestObserveBatchReports(t *testing.T) {
	ap := newBatchAP(t, 3)
	var items []BatchItem
	var truths []float64
	for _, id := range []int{1, 5, 8, 9} {
		c, err := testbed.ClientByID(id)
		if err != nil {
			t.Fatal(err)
		}
		items = append(items, BatchItem{TX: c.Pos, Baseband: uplinkBaseband(t, id, 2)})
		truths = append(truths, testbed.GroundTruth(testbed.AP1, c.Pos))
	}
	// A transmitter with an empty baseband must fail alone.
	items = append(items, BatchItem{TX: items[0].TX})

	res := ap.ObserveBatch(items)
	if len(res) != len(items) {
		t.Fatalf("got %d results for %d items", len(res), len(items))
	}
	for i := 0; i < len(truths); i++ {
		if res[i].Err != nil {
			t.Fatalf("item %d: %v", i, res[i].Err)
		}
		if res[i].Report.Sig == nil || len(res[i].Report.Spectrum.P) == 0 {
			t.Fatalf("item %d: incomplete report", i)
		}
	}
	if res[len(items)-1].Err == nil {
		t.Fatal("empty-baseband item did not fail")
	}
}

// TestObserveBatchConcurrentCallers fires batches and frame observations
// from many goroutines at one AP — the many-client ingest scenario — and
// relies on -race to catch synchronisation regressions in the front end,
// environment, and registry layers.
func TestObserveBatchConcurrentCallers(t *testing.T) {
	ap := newBatchAP(t, 2)
	clients := testbed.Clients()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var items []BatchItem
			for i := 0; i < 4; i++ {
				c := clients[(g*4+i)%len(clients)]
				items = append(items, BatchItem{TX: c.Pos, Baseband: uplinkBaseband(t, c.ID, uint16(g))})
			}
			for _, r := range ap.ObserveBatch(items) {
				if r.Err != nil && !errors.Is(r.Err, ErrNotDetected) {
					t.Errorf("goroutine %d: %v", g, r.Err)
				}
			}
		}(g)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := clients[g%len(clients)]
			frame := testbed.UplinkFrame(c.ID, uint16(g), []byte("uplink"))
			if _, err := ap.ProcessFrame(c.Pos, frame, ofdm.QPSK); err != nil && !errors.Is(err, ErrNotDetected) {
				t.Errorf("frame goroutine %d: %v", g, err)
			}
		}(g)
	}
	wg.Wait()
}

// TestProcessFrameBatchRegistrySemantics checks that a batch enrolls each
// new MAC exactly once and spoof-checks the rest, in item order.
func TestProcessFrameBatchRegistrySemantics(t *testing.T) {
	ap := newBatchAP(t, 4)
	c, err := testbed.ClientByID(5)
	if err != nil {
		t.Fatal(err)
	}
	var items []FrameBatchItem
	for i := 0; i < 4; i++ {
		items = append(items, FrameBatchItem{
			TX:    c.Pos,
			Frame: testbed.UplinkFrame(c.ID, uint16(i), []byte("uplink")),
			Mod:   ofdm.QPSK,
		})
	}
	res := ap.ProcessFrameBatch(items)
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
		if want := i == 0; r.Report.Enrolled != want {
			t.Fatalf("item %d: Enrolled = %v, want %v", i, r.Report.Enrolled, want)
		}
		if r.Report.Decision != signature.Accept {
			t.Fatalf("item %d: decision %v", i, r.Report.Decision)
		}
	}
	if !ap.Known(testbed.ClientMAC(c.ID)) {
		t.Fatal("client not enrolled after batch")
	}
}

// --- Sharded registry equivalence with the old single-mutex registry ---

// singleMutexRegistry replicates the pre-sharding registry semantics: one
// map, one lock, the reference for the equivalence test.
type singleMutexRegistry struct {
	mu sync.Mutex
	m  map[wifi.Addr]*signature.Tracker
}

func (r *singleMutexRegistry) observe(mac wifi.Addr, sig *signature.Signature, policy signature.MatchPolicy) (signature.Decision, float64, bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	tr, known := r.m[mac]
	if !known {
		r.m[mac] = signature.NewTracker(sig, policy, trackerAlpha)
		return signature.Accept, 0, true, nil
	}
	dec, dist, err := tr.Observe(sig)
	return dec, dist, false, err
}

func (r *singleMutexRegistry) identify(obs *signature.Signature) ([]Identification, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Identification, 0, len(r.m))
	for mac, tr := range r.m {
		d, err := signature.Distance(tr.Stored(), obs)
		if err != nil {
			return nil, err
		}
		out = append(out, Identification{MAC: mac, Distance: d})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Distance != out[j].Distance {
			return out[i].Distance < out[j].Distance
		}
		return out[i].MAC.String() < out[j].MAC.String()
	})
	return out, nil
}

// gridSignature builds a signature with controlled contents so the test
// does not have to run the pipeline.
func gridSignature(vals []float64) *signature.Signature {
	grid := make([]float64, len(vals))
	for i := range grid {
		grid[i] = float64(i)
	}
	return signature.FromPseudospectrum(&music.Pseudospectrum{AnglesDeg: grid, P: vals})
}

// TestShardedRegistryMatchesSingleMutex drives both registries through an
// identical enroll/observe/identify schedule and asserts identical
// decisions, distances, and rankings.
func TestShardedRegistryMatchesSingleMutex(t *testing.T) {
	sharded := newShardedRegistry()
	reference := &singleMutexRegistry{m: make(map[wifi.Addr]*signature.Tracker)}
	policy := signature.DefaultPolicy()
	src := rng.New(99)

	macs := make([]wifi.Addr, 12)
	for i := range macs {
		macs[i] = testbed.ClientMAC(i + 1)
	}
	randomSig := func() *signature.Signature {
		vals := make([]float64, 90)
		for i := range vals {
			vals[i] = src.Float64()
		}
		return gridSignature(vals)
	}

	for step := 0; step < 400; step++ {
		mac := macs[src.Intn(len(macs))]
		sig := randomSig()
		v1, enr1, err1 := sharded.observe(mac, sig, policy)
		d2, dist2, enr2, err2 := reference.observe(mac, sig, policy)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("step %d: error mismatch %v vs %v", step, err1, err2)
		}
		if v1.Decision != d2 || v1.Distance != dist2 || enr1 != enr2 {
			t.Fatalf("step %d: sharded (%v, %v, %v) != reference (%v, %v, %v)",
				step, v1.Decision, v1.Distance, enr1, d2, dist2, enr2)
		}
		if v1.Threshold != policy.MaxDistance {
			t.Fatalf("step %d: verdict threshold %v != policy %v", step, v1.Threshold, policy.MaxDistance)
		}
		if step%50 == 0 {
			probe := randomSig()
			got, err := rankByDistance(sharded.snapshot(), probe)
			if err != nil {
				t.Fatal(err)
			}
			want, err := reference.identify(probe)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("step %d: identify lengths %d vs %d", step, len(got), len(want))
			}
			for i := range got {
				if got[i].MAC != want[i].MAC || got[i].Distance != want[i].Distance {
					t.Fatalf("step %d rank %d: (%v, %v) != (%v, %v)",
						step, i, got[i].MAC, got[i].Distance, want[i].MAC, want[i].Distance)
				}
			}
		}
	}

	// Spot-check the lookup surface too.
	for _, mac := range macs {
		if sharded.known(mac) != (reference.m[mac] != nil) {
			t.Fatalf("known(%v) disagrees", mac)
		}
		s1, ok1 := sharded.stored(mac)
		tr, ok2 := reference.m[mac]
		if ok1 != ok2 {
			t.Fatalf("stored(%v) presence disagrees", mac)
		}
		if ok1 {
			d, err := signature.Distance(s1, tr.Stored())
			if err != nil {
				t.Fatal(err)
			}
			if d != 0 {
				t.Fatalf("stored(%v) distance %v", mac, d)
			}
		}
	}
}

// TestShardedRegistryConcurrent hammers the registry from many goroutines
// under -race and checks per-MAC enrollment happened exactly once.
func TestShardedRegistryConcurrent(t *testing.T) {
	reg := newShardedRegistry()
	policy := signature.DefaultPolicy()
	base := rng.New(5)
	sigs := make([]*signature.Signature, 64)
	for i := range sigs {
		vals := make([]float64, 90)
		for j := range vals {
			vals[j] = base.Float64()
		}
		sigs[i] = gridSignature(vals)
	}

	var wg sync.WaitGroup
	var enrolls [16]int32
	var mu sync.Mutex
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				mac := testbed.ClientMAC(i % 16)
				_, enrolled, err := reg.observe(mac, sigs[(g*31+i)%len(sigs)], policy)
				if err != nil {
					t.Errorf("observe: %v", err)
					return
				}
				if enrolled {
					mu.Lock()
					enrolls[i%16]++
					mu.Unlock()
				}
			}
		}(g)
	}
	wg.Wait()
	for mac, n := range enrolls {
		if n != 1 {
			t.Fatalf("MAC %d enrolled %d times", mac, n)
		}
	}
	if _, err := rankByDistance(reg.snapshot(), sigs[0]); err != nil {
		t.Fatal(err)
	}
}
