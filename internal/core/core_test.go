package core

import (
	"math"
	"testing"

	"secureangle/internal/geom"
	"secureangle/internal/music"
	"secureangle/internal/ofdm"
	"secureangle/internal/rng"
	"secureangle/internal/signature"
	"secureangle/internal/testbed"
	"secureangle/internal/wifi"
)

func newTestAP(t testing.TB, seed int64) *AP {
	t.Helper()
	e, _ := testbed.Building()
	fe := testbed.NewAPFrontEnd(testbed.CircularArray(), testbed.AP1, rng.New(seed))
	return NewAP("ap1", fe, e, DefaultConfig())
}

func observeClient(t testing.TB, ap *AP, clientID int, seq uint16) *Report {
	t.Helper()
	c, err := testbed.ClientByID(clientID)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := testbed.FrameBaseband(testbed.UplinkFrame(clientID, seq, []byte("payload")), ofdm.QPSK)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ap.Observe(c.Pos, bb)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestNewAPDefaults(t *testing.T) {
	ap := newTestAP(t, 1)
	if len(ap.Grid()) != 360 {
		t.Errorf("grid size = %d", len(ap.Grid()))
	}
	if len(ap.Offsets()) != 8 {
		t.Errorf("offsets = %d", len(ap.Offsets()))
	}
}

func TestObserveLineOfSightClient(t *testing.T) {
	ap := newTestAP(t, 2)
	c5, _ := testbed.ClientByID(5)
	want := testbed.GroundTruth(testbed.AP1, c5.Pos)
	rep := observeClient(t, ap, 5, 1)
	if geom.AngularDistDeg(rep.BearingDeg, want) > 4 {
		t.Errorf("client 5 bearing = %v, want %v", rep.BearingDeg, want)
	}
	if rep.Sig == nil || rep.Spectrum == nil {
		t.Error("report missing signature/spectrum")
	}
	if rep.SNRdB < 10 {
		t.Errorf("client 5 SNR = %v dB, implausibly low", rep.SNRdB)
	}
}

func TestObserveSeveralClients(t *testing.T) {
	ap := newTestAP(t, 3)
	// Line-of-sight clients spread around the AP.
	// Tolerance 8 degrees: client 4's east-wall bounce arrives ~5 degrees
	// from its direct path; the two coherent arrivals merge into one
	// slightly-biased peak, exactly the 4-antenna behaviour the paper
	// describes scaled to unresolvable separations.
	for _, id := range []int{1, 3, 4, 7, 8, 9} {
		c, _ := testbed.ClientByID(id)
		want := testbed.GroundTruth(testbed.AP1, c.Pos)
		rep := observeClient(t, ap, id, uint16(id))
		if geom.AngularDistDeg(rep.BearingDeg, want) > 8 {
			t.Errorf("client %d bearing = %v, want %v", id, rep.BearingDeg, want)
		}
	}
}

func TestObserveNoPacket(t *testing.T) {
	ap := newTestAP(t, 4)
	// Noise-only "transmission": an all-zero baseband produces no
	// detectable packet at the AP (only receiver noise).
	bb := make([]complex128, 4000)
	_, err := ap.Observe(geom.Point{X: 9, Y: 5}, bb)
	if err == nil {
		t.Fatal("expected failure on empty transmission")
	}
}

func TestBlockedClientsDegraded(t *testing.T) {
	// Clients 11/12 (pillar) must show larger bearing error or variance
	// than the line-of-sight near client 5 — Figure 5's key qualitative
	// structure.
	ap := newTestAP(t, 5)
	errFor := func(id int) float64 {
		c, _ := testbed.ClientByID(id)
		want := testbed.GroundTruth(testbed.AP1, c.Pos)
		var worst float64
		for pkt := 0; pkt < 3; pkt++ {
			rep := observeClient(t, ap, id, uint16(pkt))
			worst = math.Max(worst, geom.AngularDistDeg(rep.BearingDeg, want))
		}
		return worst
	}
	e5 := errFor(5)
	e12 := errFor(12)
	if e5 > 5 {
		t.Errorf("client 5 worst error %v too large", e5)
	}
	// Client 12 behind the pillar: observably worse than a LoS client —
	// but still bounded (the paper reports all clients within ~14 deg).
	if e12 > 25 {
		t.Errorf("client 12 error %v out of band", e12)
	}
	t.Logf("client 5 worst error %.1f deg; client 12 worst error %.1f deg", e5, e12)
}

func TestProcessFrameEnrollsThenAccepts(t *testing.T) {
	ap := newTestAP(t, 6)
	c5, _ := testbed.ClientByID(5)
	frame := testbed.UplinkFrame(5, 1, []byte("hello"))

	fr, err := ap.ProcessFrame(c5.Pos, frame, ofdm.QPSK)
	if err != nil {
		t.Fatal(err)
	}
	if !fr.Enrolled {
		t.Fatal("first frame should enroll")
	}
	if !ap.Known(testbed.ClientMAC(5)) {
		t.Fatal("registry missing client 5")
	}
	// Subsequent frames from the same location: accepted.
	for seq := uint16(2); seq <= 6; seq++ {
		frame.Seq = seq
		fr, err := ap.ProcessFrame(c5.Pos, frame, ofdm.QPSK)
		if err != nil {
			t.Fatal(err)
		}
		if fr.Enrolled {
			t.Fatal("re-enrolled a known client")
		}
		if fr.Decision != signature.Accept {
			t.Errorf("seq %d: legit frame flagged (distance %v)", seq, fr.Distance)
		}
	}
}

func TestProcessFrameFlagsSpoofer(t *testing.T) {
	ap := newTestAP(t, 7)
	c5, _ := testbed.ClientByID(5)
	legit := testbed.UplinkFrame(5, 1, []byte("hello"))
	if _, err := ap.ProcessFrame(c5.Pos, legit, ofdm.QPSK); err != nil {
		t.Fatal(err)
	}

	// Attacker at client 9's position forges client 5's MAC.
	c9, _ := testbed.ClientByID(9)
	spoof := testbed.UplinkFrame(5, 2, []byte("inject"))
	fr, err := ap.ProcessFrame(c9.Pos, spoof, ofdm.QPSK)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Decision != signature.Flag {
		t.Errorf("spoofed frame accepted (distance %v)", fr.Distance)
	}
}

func TestStoredSignatureAccess(t *testing.T) {
	ap := newTestAP(t, 8)
	mac := testbed.ClientMAC(3)
	if _, ok := ap.StoredSignature(mac); ok {
		t.Error("unknown MAC has a signature")
	}
	rep := observeClient(t, ap, 3, 1)
	ap.Enroll(mac, rep.Sig)
	sig, ok := ap.StoredSignature(mac)
	if !ok || sig == nil {
		t.Fatal("enrolled signature missing")
	}
	d, err := signature.Distance(sig, rep.Sig)
	if err != nil || d > 1e-12 {
		t.Errorf("stored signature differs: %v, %v", d, err)
	}
}

func TestCustomEstimator(t *testing.T) {
	e, _ := testbed.Building()
	fe := testbed.NewAPFrontEnd(testbed.CircularArray(), testbed.AP1, rng.New(9))
	cfg := DefaultConfig()
	cfg.Estimator = music.Bartlett{}
	ap := NewAP("bartlett-ap", fe, e, cfg)
	c5, _ := testbed.ClientByID(5)
	bb, _ := testbed.FrameBaseband(testbed.UplinkFrame(5, 1, nil), ofdm.QPSK)
	rep, err := ap.Observe(c5.Pos, bb)
	if err != nil {
		t.Fatal(err)
	}
	want := testbed.GroundTruth(testbed.AP1, c5.Pos)
	if geom.AngularDistDeg(rep.BearingDeg, want) > 8 {
		t.Errorf("Bartlett bearing = %v, want %v", rep.BearingDeg, want)
	}
}

func TestReportMetadata(t *testing.T) {
	ap := newTestAP(t, 10)
	rep := observeClient(t, ap, 5, 1)
	if rep.AP != "ap1" {
		t.Error("AP name missing")
	}
	if rep.APPos != testbed.AP1 {
		t.Error("AP position missing")
	}
	if rep.Sources < 1 {
		t.Errorf("sources = %d", rep.Sources)
	}
	if rep.Detection.Metric < 0.5 {
		t.Errorf("detection metric = %v", rep.Detection.Metric)
	}
}

func TestPacketExtent(t *testing.T) {
	// Packet of length 800 embedded at 100 in a 2000-sample buffer of
	// near-silence: extent from 100 should approximate 800.
	x := make([]complex128, 2000)
	for i := 100; i < 900; i++ {
		x[i] = complex(1, 0)
	}
	rng.New(11).AddAWGN(x, 1e-6)
	n := packetExtent(x, 100, nil)
	if n < 700 || n > 1000 {
		t.Errorf("extent = %d, want ~800", n)
	}
	// Start beyond the buffer.
	if packetExtent(x, 2000, nil) != 0 {
		t.Error("extent past end should be 0")
	}
}

func TestDistinctClientsHaveDistinctSignatures(t *testing.T) {
	ap := newTestAP(t, 12)
	sigs := map[int]*signature.Signature{}
	for _, id := range []int{1, 5, 7, 9} {
		sigs[id] = observeClient(t, ap, id, 1).Sig
	}
	for _, a := range []int{1, 5, 7, 9} {
		for _, b := range []int{1, 5, 7, 9} {
			d, err := signature.Distance(sigs[a], sigs[b])
			if err != nil {
				t.Fatal(err)
			}
			if a != b && d < signature.DefaultPolicy().MaxDistance {
				t.Errorf("clients %d and %d have near-identical signatures (d=%v)", a, b, d)
			}
		}
	}
}

func TestWifiAddrKeying(t *testing.T) {
	// Registry must key strictly on MAC, not on position.
	ap := newTestAP(t, 13)
	c5, _ := testbed.ClientByID(5)
	mac := wifi.MustParseAddr("02:00:00:00:00:77")
	f := &wifi.Frame{Type: wifi.Data, Addr1: testbed.BSSID, Addr2: mac, Addr3: testbed.BSSID, Seq: 1}
	if _, err := ap.ProcessFrame(c5.Pos, f, ofdm.BPSK); err != nil {
		t.Fatal(err)
	}
	if !ap.Known(mac) {
		t.Error("custom MAC not enrolled")
	}
	if ap.Known(testbed.ClientMAC(5)) {
		t.Error("client-5 MAC enrolled without a frame")
	}
}

func TestIdentifyRanksTrueTransmitterFirst(t *testing.T) {
	// Enroll three clients; a flagged frame from client 9's position with
	// client 5's MAC should identify client 9 as the physical source.
	ap := newTestAP(t, 14)
	for _, id := range []int{5, 7, 9} {
		c, _ := testbed.ClientByID(id)
		rep := observeClient(t, ap, id, 1)
		ap.Enroll(testbed.ClientMAC(id), rep.Sig)
		_ = c
	}
	c9, _ := testbed.ClientByID(9)
	spoof := testbed.UplinkFrame(5, 99, []byte("inject")) // claims to be client 5
	fr, err := ap.ProcessFrame(c9.Pos, spoof, ofdm.QPSK)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Decision != signature.Flag {
		t.Fatal("spoof not flagged")
	}
	ids, err := ap.Identify(fr.Sig)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("identifications = %d", len(ids))
	}
	if ids[0].MAC != testbed.ClientMAC(9) {
		t.Errorf("best match = %v, want client 9's MAC", ids[0].MAC)
	}
	if ids[0].Distance > 0.1 {
		t.Errorf("true source distance %v", ids[0].Distance)
	}
	// And the claimed identity (client 5) ranks behind the true source.
	for _, id := range ids[1:] {
		if id.Distance < ids[0].Distance {
			t.Error("ranking violated")
		}
	}
}
