package core

import (
	"context"
	"errors"
	"testing"

	"secureangle/internal/antenna"
	"secureangle/internal/cmat"
	"secureangle/internal/music"
	"secureangle/internal/ofdm"
	"secureangle/internal/rng"
	"secureangle/internal/signature"
	"secureangle/internal/testbed"
)

// --- Config.Validate ---

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		func() Config { c := DefaultConfig(); c.Workers = -1; return c }(),
		func() Config { c := DefaultConfig(); c.GridStepDeg = 0; return c }(),
		func() Config { c := DefaultConfig(); c.GridStepDeg = -2; return c }(),
		func() Config { c := DefaultConfig(); c.CalSamples = -5; return c }(),
		func() Config { c := DefaultConfig(); c.Policy = signature.MatchPolicy{MaxDistance: -1}; return c }(),
		func() Config { c := DefaultConfig(); c.Policy = signature.MatchPolicy{MaxDistance: 3}; return c }(),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
	// The zero config is invalid as-is but valid after defaulting — the
	// tolerance NewAP extends to zero-valued knobs.
	if err := (Config{}).Validate(); err == nil {
		t.Error("zero config accepted without defaulting")
	}
	if err := (Config{}).WithDefaults().Validate(); err != nil {
		t.Errorf("defaulted zero config rejected: %v", err)
	}
}

func TestNewAPPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewAP accepted negative Workers")
		}
	}()
	cfg := DefaultConfig()
	cfg.Workers = -3
	e, _ := testbed.Building()
	fe := testbed.NewAPFrontEnd(testbed.CircularArray(), testbed.AP1, rng.New(1))
	NewAP("bad", fe, e, cfg)
}

// --- Deferred calibration / ErrNotCalibrated ---

func TestDeferredCalibration(t *testing.T) {
	e, _ := testbed.Building()
	fe := testbed.NewAPFrontEnd(testbed.CircularArray(), testbed.AP1, rng.New(21))
	cfg := DefaultConfig()
	cfg.DeferCalibration = true
	ap := NewAP("deferred", fe, e, cfg)
	if ap.Calibrated() {
		t.Fatal("AP calibrated despite DeferCalibration")
	}
	c, err := testbed.ClientByID(5)
	if err != nil {
		t.Fatal(err)
	}
	bb := uplinkBaseband(t, c.ID, 1)
	_, err = ap.Observe(c.Pos, bb)
	if !errors.Is(err, ErrNotCalibrated) {
		t.Fatalf("uncalibrated observe err %v, want ErrNotCalibrated", err)
	}
	var pe *PipelineError
	if !errors.As(err, &pe) || pe.Stage != StageCalibrate || pe.AP != "deferred" {
		t.Fatalf("err %v, want PipelineError{calibrate, deferred}", err)
	}

	ap.Calibrate()
	if !ap.Calibrated() {
		t.Fatal("Calibrate did not take")
	}
	if _, err := ap.Observe(c.Pos, bb); err != nil {
		t.Fatalf("post-calibration observe: %v", err)
	}
}

// --- Error taxonomy through the serial and batch paths ---

func TestErrTooFewSnapshots(t *testing.T) {
	ap := newBatchAP(t, 1)
	short := make([][]complex128, 8)
	for i := range short {
		short[i] = make([]complex128, 4) // fewer snapshots than antennas
	}
	_, err := ap.ProcessStreams(short)
	if !errors.Is(err, ErrTooFewSnapshots) {
		t.Fatalf("short capture err %v, want ErrTooFewSnapshots", err)
	}
}

func TestErrNotDetectedIdentity(t *testing.T) {
	// The deprecated alias and the new sentinel are the same value, so
	// pre-v2 errors.Is checks keep passing.
	if !errors.Is(ErrNoPacket, ErrNotDetected) || ErrNoPacket != ErrNotDetected {
		t.Fatal("ErrNoPacket is not an alias of ErrNotDetected")
	}
}

func TestProcessFrameErrorCarriesMAC(t *testing.T) {
	ap := newBatchAP(t, 1)
	c, err := testbed.ClientByID(5)
	if err != nil {
		t.Fatal(err)
	}
	frame := testbed.UplinkFrame(c.ID, 1, []byte("u"))
	// Sabotage detection with an empty-payload baseband of zeros: feed
	// the frame via the batch path but to an unhearable capture by
	// replacing the baseband with silence.
	res := ap.ProcessFrameBatch([]FrameBatchItem{{TX: c.Pos, Frame: frame, Mod: ofdm.QPSK}})
	if res[0].Err != nil {
		t.Fatalf("setup frame failed: %v", res[0].Err)
	}

	// Now the error path: a deferred-calibration AP fails the frame and
	// the PipelineError names the frame's transmitter.
	cfg := DefaultConfig()
	cfg.DeferCalibration = true
	e, _ := testbed.Building()
	fe := testbed.NewAPFrontEnd(testbed.CircularArray(), testbed.AP1, rng.New(31))
	uncal := NewAP("uncal", fe, e, cfg)
	_, err = uncal.ProcessFrame(c.Pos, frame, ofdm.QPSK)
	var pe *PipelineError
	if !errors.As(err, &pe) || pe.MAC != frame.Addr2 {
		t.Fatalf("frame error %v does not carry MAC %v", err, frame.Addr2)
	}
}

// --- Context cancellation ---

// cancellingEstimator cancels a context on its first Pseudospectrum
// call, then delegates to Bartlett — a hook to cancel a batch from
// inside item 0's estimation stage.
type cancellingEstimator struct {
	cancel context.CancelFunc
}

func (ce *cancellingEstimator) Name() string { return "cancelling" }

func (ce *cancellingEstimator) Pseudospectrum(r *cmat.Matrix, arr *antenna.Array, grid []float64) (*music.Pseudospectrum, error) {
	if ce.cancel != nil {
		ce.cancel()
		ce.cancel = nil
	}
	return music.Bartlett{}.Pseudospectrum(r, arr, grid)
}

func TestObserveBatchContextPreCancelled(t *testing.T) {
	ap := newBatchAP(t, 2)
	items := streamItems(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := ap.ObserveBatchContext(ctx, items)
	if len(res) != len(items) {
		t.Fatalf("got %d results", len(res))
	}
	for i, r := range res {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("item %d err %v, want context.Canceled", i, r.Err)
		}
		var pe *PipelineError
		if !errors.As(r.Err, &pe) || pe.Stage != StageDispatch {
			t.Errorf("item %d err %v, want StageDispatch PipelineError", i, r.Err)
		}
	}
}

func TestObserveBatchContextMidBatchCancel(t *testing.T) {
	// Workers=1 runs items serially; the estimator cancels the context
	// during item 0, so items 1.. must come back ctx-wrapped without
	// being dispatched.
	e, _ := testbed.Building()
	fe := testbed.NewAPFrontEnd(testbed.CircularArray(), testbed.AP1, rng.New(41))
	ctx, cancel := context.WithCancel(context.Background())
	cfg := DefaultConfig()
	cfg.Workers = 1
	cfg.Estimator = &cancellingEstimator{cancel: cancel}
	ap := NewAP("cancel", fe, e, cfg)

	items := streamItems(t, 4)
	res := ap.ObserveBatchContext(ctx, items)
	if res[0].Err != nil {
		t.Fatalf("item 0 (in flight at cancel) failed: %v", res[0].Err)
	}
	for i := 1; i < len(res); i++ {
		if !errors.Is(res[i].Err, context.Canceled) {
			t.Errorf("item %d err %v, want context.Canceled", i, res[i].Err)
		}
	}
}

func TestProcessStreamsBatchContextCancel(t *testing.T) {
	ap := newBatchAP(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sets := make([][][]complex128, 3)
	for i := range sets {
		sets[i] = make([][]complex128, 8)
		for a := range sets[i] {
			sets[i][a] = make([]complex128, 100)
		}
	}
	for i, r := range ap.ProcessStreamsBatchContext(ctx, sets) {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("set %d err %v, want context.Canceled", i, r.Err)
		}
	}
}

func TestObserveContextCancelled(t *testing.T) {
	ap := newBatchAP(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c, err := testbed.ClientByID(5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ap.ObserveContext(ctx, c.Pos, uplinkBaseband(t, c.ID, 1)); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled observe err %v", err)
	}
}
