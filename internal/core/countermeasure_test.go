package core

import (
	"testing"
	"time"

	"secureangle/internal/beamform"
	"secureangle/internal/defense"
	"secureangle/internal/geom"
	"secureangle/internal/ofdm"
	"secureangle/internal/signature"
	"secureangle/internal/testbed"
	"secureangle/internal/wifi"
)

func TestDefenseApplyQuarantineDirective(t *testing.T) {
	ap := newTestAP(t, 21)
	victim, err := testbed.ClientByID(5)
	if err != nil {
		t.Fatal(err)
	}
	mac := testbed.ClientMAC(5)

	// Train, then confirm normal traffic is clean.
	if _, err := ap.ProcessFrame(victim.Pos, testbed.UplinkFrame(5, 1, nil), ofdm.QPSK); err != nil {
		t.Fatal(err)
	}
	fr, err := ap.ProcessFrame(victim.Pos, testbed.UplinkFrame(5, 2, nil), ofdm.QPSK)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Quarantined || fr.Decision != signature.Accept {
		t.Fatalf("clean frame: %+v", fr)
	}
	if fr.Threshold != signature.DefaultPolicy().MaxDistance {
		t.Errorf("FrameReport.Threshold = %v", fr.Threshold)
	}
	if v := fr.Verdict(); v.Margin() <= 0 {
		t.Errorf("accepted frame has non-positive margin: %+v", v)
	}

	// Quarantine the MAC: subsequent frames are stamped for dropping.
	cm, err := ap.ApplyDirective(defense.Directive{MAC: mac, Action: defense.ActionQuarantine})
	if err != nil {
		t.Fatal(err)
	}
	if cm.Action != defense.ActionQuarantine || cm.Weights != nil {
		t.Fatalf("countermeasure = %+v", cm)
	}
	fr, err = ap.ProcessFrame(victim.Pos, testbed.UplinkFrame(5, 3, nil), ofdm.QPSK)
	if err != nil {
		t.Fatal(err)
	}
	if !fr.Quarantined {
		t.Fatal("quarantined MAC's frame not stamped")
	}
	if got := ap.Countermeasures(); len(got) != 1 || got[0].MAC != mac {
		t.Fatalf("Countermeasures() = %+v", got)
	}

	// Release clears it.
	if _, err := ap.ApplyDirective(defense.Directive{MAC: mac, Action: defense.ActionAllow}); err != nil {
		t.Fatal(err)
	}
	fr, err = ap.ProcessFrame(victim.Pos, testbed.UplinkFrame(5, 4, nil), ofdm.QPSK)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Quarantined {
		t.Fatal("released MAC still stamped")
	}
	if got := ap.Countermeasures(); len(got) != 0 {
		t.Fatalf("countermeasures after release: %+v", got)
	}
}

func TestDefenseApplyNullSteerDirective(t *testing.T) {
	ap := newTestAP(t, 22)
	victim, err := testbed.ClientByID(5)
	if err != nil {
		t.Fatal(err)
	}
	// Train so the AP knows its serve bearing (victim's direction).
	if _, err := ap.ProcessFrame(victim.Pos, testbed.UplinkFrame(5, 1, nil), ofdm.QPSK); err != nil {
		t.Fatal(err)
	}
	if _, err := ap.ProcessFrame(victim.Pos, testbed.UplinkFrame(5, 2, nil), ofdm.QPSK); err != nil {
		t.Fatal(err)
	}
	serve, known := ap.ServeBearing()
	if !known {
		t.Fatal("no serve bearing after accepted traffic")
	}

	// Null-steer toward a threat position across the room: the AP must
	// derive its own bearing from the fused position.
	threatPos := geom.Point{X: 4, Y: 12}
	threatMAC := wifi.MustParseAddr("66:00:00:00:00:01")
	d := defense.Directive{
		MAC: threatMAC, Action: defense.ActionNullSteer,
		Pos: threatPos, HasPos: true, BearingDeg: 123, // wire bearing ignored when HasPos
	}
	cm, err := ap.ApplyDirective(d)
	if err != nil {
		t.Fatal(err)
	}
	wantNull := geom.BearingDeg(ap.FE.Pos, threatPos)
	if cm.NullBearingDeg != wantNull {
		t.Fatalf("null bearing %v, want %v from fused position", cm.NullBearingDeg, wantNull)
	}
	arr := ap.FE.Array
	if g := beamform.Gain(arr, cm.Weights, wantNull); g > 1e-12 {
		t.Errorf("gain at null bearing = %g, want ~0", g)
	}
	gServe := beamform.Gain(arr, cm.Weights, cm.ServeBearingDeg)
	if gServe < 1 {
		t.Errorf("gain at serve bearing = %g, want >= 1 (constrained to unit response)", gServe)
	}
	if cm.ServeBearingDeg != serve && geom.AngularDistDeg(serve, wantNull) >= minNullSepDeg {
		t.Errorf("serve bearing %v, want tracked %v", cm.ServeBearingDeg, serve)
	}
	// Null-steered MACs are also dropped.
	if !ap.measures.active(threatMAC) {
		t.Error("null-steered MAC not marked active")
	}

	// Fallback path: no position — use the reporter's measured bearing.
	cm2, err := ap.ApplyDirective(defense.Directive{
		MAC: threatMAC, Action: defense.ActionNullSteer, BearingDeg: 123, HasBearing: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cm2.NullBearingDeg != 123 {
		t.Errorf("fallback null bearing = %v, want 123", cm2.NullBearingDeg)
	}
	if g := beamform.Gain(arr, cm2.Weights, 123); g > 1e-12 {
		t.Errorf("fallback gain at null = %g", g)
	}

	// No direction at all: the null-steer is downgraded to a plain
	// quarantine rather than aimed at an arbitrary default bearing.
	cm3, err := ap.ApplyDirective(defense.Directive{
		MAC: threatMAC, Action: defense.ActionNullSteer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cm3.Action != defense.ActionQuarantine || cm3.Weights != nil {
		t.Errorf("directionless null-steer not downgraded: %+v", cm3)
	}
	if !ap.measures.active(threatMAC) {
		t.Error("downgraded countermeasure not active")
	}
}

func TestDefenseCountermeasureLeaseExpires(t *testing.T) {
	// A lost release directive cannot strand a countermeasure: the
	// directive's TTL becomes a lease the AP expires on its own.
	ap := newTestAP(t, 24)
	threatMAC := wifi.MustParseAddr("66:00:00:00:00:03")
	cm, err := ap.ApplyDirective(defense.Directive{
		MAC: threatMAC, Action: defense.ActionQuarantine, TTL: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cm.Expires.IsZero() {
		t.Fatal("lease not recorded")
	}
	if !ap.measures.active(threatMAC) {
		t.Fatal("countermeasure inactive before lease expiry")
	}
	if _, ok := ap.CountermeasureFor(threatMAC); !ok {
		t.Fatal("CountermeasureFor missed live lease")
	}
	time.Sleep(50 * time.Millisecond)
	if ap.measures.active(threatMAC) {
		t.Error("countermeasure survived its lease")
	}
	if _, ok := ap.CountermeasureFor(threatMAC); ok {
		t.Error("CountermeasureFor returned an expired lease")
	}
	if got := ap.Countermeasures(); len(got) != 0 {
		t.Errorf("Countermeasures() lists expired lease: %+v", got)
	}
}

func TestDefenseNullSteerDegenerateServeBearing(t *testing.T) {
	// A threat on the same bearing as the serve direction must not force
	// the beamformer to satisfy colinear constraints: the serve bearing
	// shifts away from the null.
	ap := newTestAP(t, 23)
	ap.measures.noteServeBearing(200)
	cm, err := ap.ApplyDirective(defense.Directive{
		MAC: wifi.MustParseAddr("66:00:00:00:00:02"), Action: defense.ActionNullSteer,
		BearingDeg: 205, HasBearing: true, // within minNullSepDeg of the serve bearing
	})
	if err != nil {
		t.Fatal(err)
	}
	if sep := geom.AngularDistDeg(cm.ServeBearingDeg, cm.NullBearingDeg); sep < minNullSepDeg {
		t.Fatalf("serve/null separation %v below floor", sep)
	}
	if g := beamform.Gain(ap.FE.Array, cm.Weights, 205); g > 1e-12 {
		t.Errorf("gain at null = %g", g)
	}
}
