package core

import (
	"secureangle/internal/ops"
)

// The pipeline's operational instruments, registered once on the
// process-wide registry. Updates are atomic and allocation-free, so
// they sit directly on the packet hot path without moving the pinned
// alloc budget (see TestPacketPathAllocs at the repo root).
var (
	mPackets = ops.Default().Counter("secureangle_core_packets_total",
		"Packets entering the estimation pipeline.")
	mReports = ops.Default().Counter("secureangle_core_reports_total",
		"Packets that produced a bearing report.")

	mStageErrs = func() map[string]*ops.Counter {
		m := make(map[string]*ops.Counter)
		for _, st := range []string{
			StageDispatch, StageReceive, StageCalibrate, StageDetect,
			StageAlign, StageEstimate, StageSpoofCheck,
		} {
			m[st] = ops.Default().CounterL("secureangle_core_stage_errors_total",
				"Pipeline failures by stage.", `stage="`+st+`"`)
		}
		return m
	}()

	mReceiveSeconds = ops.Default().HistogramL("secureangle_core_stage_seconds",
		"Per-stage pipeline latency.", `stage="receive"`, ops.DurationBuckets())
	mDetectSeconds = ops.Default().HistogramL("secureangle_core_stage_seconds",
		"Per-stage pipeline latency.", `stage="detect"`, ops.DurationBuckets())
	mEstimateSeconds = ops.Default().HistogramL("secureangle_core_stage_seconds",
		"Per-stage pipeline latency.", `stage="estimate"`, ops.DurationBuckets())
	mPacketSeconds = ops.Default().Histogram("secureangle_core_packet_seconds",
		"End-to-end estimation latency per packet (detect + estimate).",
		ops.DurationBuckets())

	mScratchHits = ops.Default().Counter("secureangle_core_scratch_hits_total",
		"Packet passes served by a pooled pipeline scratch.")
	mScratchMisses = ops.Default().Counter("secureangle_core_scratch_misses_total",
		"Packet passes that had to allocate a fresh pipeline scratch.")
)

// countStageErr records one pipeline failure for the stage. Unknown
// stage names (none exist today) are dropped rather than allocating a
// series on an error path.
func countStageErr(stage string) {
	if c, ok := mStageErrs[stage]; ok {
		c.Inc()
	}
}
