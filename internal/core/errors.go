package core

import (
	"errors"
	"fmt"

	"secureangle/internal/radio"
	"secureangle/internal/wifi"
)

// The error taxonomy of the v2 API. Every failure the pipeline can
// produce is one of these sentinels wrapped in a *PipelineError that
// records where it happened, so callers dispatch with errors.Is/As
// instead of matching strings:
//
//	res := node.ObserveBatch(ctx, items)
//	for _, r := range res {
//		switch {
//		case errors.Is(r.Err, core.ErrNotDetected): // unhearable, skip
//		case errors.Is(r.Err, core.ErrBlocked):     // no propagation path
//		case r.Err != nil:                          // real failure
//		}
//	}
var (
	// ErrNotDetected reports that the Schmidl-Cox detector found no
	// packet in the received samples (noise-only capture, or SNR below
	// the detection cliff).
	ErrNotDetected = errors.New("secureangle: no packet detected")
	// ErrBlocked reports a transmitter with no propagation path to the
	// AP. It is the radio package's sentinel re-exported, so errors.Is
	// works whichever layer produced it.
	ErrBlocked = radio.ErrBlocked
	// ErrNotCalibrated reports an observation attempted before the
	// section 2.2 calibration ran (Config.DeferCalibration without a
	// subsequent Calibrate call).
	ErrNotCalibrated = errors.New("secureangle: front end not calibrated")
	// ErrTooFewSnapshots reports a capture too short for a full-rank
	// antenna covariance (fewer snapshots than antennas).
	ErrTooFewSnapshots = errors.New("secureangle: too few snapshots for a full-rank covariance")
)

// ErrNoPacket is the pre-v2 name of ErrNotDetected, kept so existing
// errors.Is checks and direct comparisons against the sentinel keep
// working.
//
// Deprecated: use ErrNotDetected.
var ErrNoPacket = ErrNotDetected

// Pipeline stage names recorded in PipelineError.Stage, in pipeline
// order. StageDispatch is not a signal-processing stage: it marks work
// that was never run because the batch's context was cancelled first.
const (
	StageDispatch   = "dispatch"
	StageReceive    = "receive"
	StageCalibrate  = "calibrate"
	StageDetect     = "detect"
	StageAlign      = "align"
	StageEstimate   = "estimate"
	StageSpoofCheck = "spoofcheck"
)

// PipelineError is the structured error the v2 pipeline returns: which
// stage failed, on which AP, and (for frame observations) which
// transmitter address was being processed. It wraps the underlying
// cause, so errors.Is against the sentinels above and errors.As for the
// struct itself both work.
type PipelineError struct {
	// Stage is one of the Stage* constants.
	Stage string
	// AP names the access point that produced the error.
	AP string
	// MAC is the transmitter address, when the observation was a MAC
	// frame (zero otherwise).
	MAC wifi.Addr
	// Err is the underlying cause.
	Err error
}

// Error formats the stage, AP, and (when set) MAC around the cause.
func (e *PipelineError) Error() string {
	if e.MAC != (wifi.Addr{}) {
		return fmt.Sprintf("%s: %s [%s]: %v", e.AP, e.Stage, e.MAC, e.Err)
	}
	return fmt.Sprintf("%s: %s: %v", e.AP, e.Stage, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *PipelineError) Unwrap() error { return e.Err }

// stageErr wraps err with this AP's identity and the failing stage.
func (ap *AP) stageErr(stage string, err error) error {
	countStageErr(stage)
	return &PipelineError{Stage: stage, AP: ap.Name, Err: err}
}

// withMAC stamps the transmitter address onto a pipeline error, for the
// frame entry points. Non-pipeline errors pass through unchanged.
func withMAC(err error, mac wifi.Addr) error {
	var pe *PipelineError
	if errors.As(err, &pe) && pe.MAC == (wifi.Addr{}) {
		pe.MAC = mac
	}
	return err
}
