package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"secureangle/internal/testbed"
)

// streamItems builds n valid uplink batch items cycling the testbed
// clients.
func streamItems(t *testing.T, n int) []BatchItem {
	t.Helper()
	clients := testbed.Clients()
	items := make([]BatchItem, n)
	for i := range items {
		c := clients[i%len(clients)]
		items[i] = BatchItem{TX: c.Pos, Baseband: uplinkBaseband(t, c.ID, uint16(i))}
	}
	return items
}

// TestStreamMatchesObserveBatch: a stream over the same items on an
// identically-seeded AP draws the same channel and noise realisations
// as ObserveBatch, so the reports are bit-identical and arrive in
// submission order.
func TestStreamMatchesObserveBatch(t *testing.T) {
	items := streamItems(t, 8)

	batchAP := newBatchAP(t, 2)
	want := batchAP.ObserveBatch(items)

	streamAP := newBatchAP(t, 2)
	s := streamAP.Stream(context.Background(), 4)
	got := make([]StreamResult, 0, len(items))
	done := make(chan struct{})
	go func() {
		defer close(done)
		for r := range s.Results() {
			got = append(got, r)
		}
	}()
	for i, it := range items {
		seq, err := s.Submit(context.Background(), it)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if seq != uint64(i) {
			t.Fatalf("submit %d returned seq %d", i, seq)
		}
	}
	s.Close()
	<-done

	if len(got) != len(items) {
		t.Fatalf("got %d results for %d items", len(got), len(items))
	}
	for i, r := range got {
		if r.Seq != uint64(i) {
			t.Errorf("result %d has seq %d: delivery out of order", i, r.Seq)
		}
		if (r.Err == nil) != (want[i].Err == nil) {
			t.Errorf("item %d: stream err %v, batch err %v", i, r.Err, want[i].Err)
			continue
		}
		if r.Err == nil && r.Report.BearingDeg != want[i].Report.BearingDeg {
			t.Errorf("item %d: stream bearing %v, batch bearing %v",
				i, r.Report.BearingDeg, want[i].Report.BearingDeg)
		}
	}
}

// TestStreamBackpressure: with depth in-flight results unconsumed,
// Submit blocks instead of buffering without bound.
func TestStreamBackpressure(t *testing.T) {
	ap := newBatchAP(t, 1)
	items := streamItems(t, 4)
	s := ap.Stream(context.Background(), 2)

	// Fill the in-flight window without consuming results.
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(context.Background(), items[i]); err != nil {
			t.Fatal(err)
		}
	}
	// The third submit must block until a result is consumed; give it a
	// short context and expect the deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := s.Submit(ctx, items[2]); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked submit returned %v, want deadline exceeded", err)
	}

	// Consuming one result frees one slot.
	r := <-s.Results()
	if r.Seq != 0 {
		t.Fatalf("first result seq %d", r.Seq)
	}
	if _, err := s.Submit(context.Background(), items[3]); err != nil {
		t.Fatalf("submit after drain: %v", err)
	}
	go func() {
		for range s.Results() {
		}
	}()
	s.Close()
}

// TestStreamCancellation: cancelling the stream context fails further
// submits and terminates Results.
func TestStreamCancellation(t *testing.T) {
	ap := newBatchAP(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	s := ap.Stream(ctx, 2)
	go func() {
		for range s.Results() {
		}
	}()
	if _, err := s.Submit(context.Background(), streamItems(t, 1)[0]); err != nil {
		t.Fatal(err)
	}
	cancel()
	// The watcher closes the stream; Submit must fail from then on.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := s.Submit(context.Background(), streamItems(t, 1)[0])
		if err != nil {
			if !errors.Is(err, context.Canceled) && !errors.Is(err, ErrStreamClosed) {
				t.Fatalf("post-cancel submit: %v", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("submits still accepted after cancel")
		}
	}
	s.Close() // idempotent
}

// TestStreamSubmitAfterClose: Close refuses later submissions.
func TestStreamSubmitAfterClose(t *testing.T) {
	ap := newBatchAP(t, 1)
	s := ap.Stream(context.Background(), 2)
	go func() {
		for range s.Results() {
		}
	}()
	s.Close()
	if _, err := s.Submit(context.Background(), streamItems(t, 1)[0]); !errors.Is(err, ErrStreamClosed) {
		t.Fatalf("submit after close: %v, want ErrStreamClosed", err)
	}
}

// TestStreamErrorTaxonomy: a noise-only submission surfaces
// ErrNotDetected through the ordered Results channel as a
// *PipelineError, without disturbing neighbouring items.
func TestStreamErrorTaxonomy(t *testing.T) {
	ap := newBatchAP(t, 2)
	good := streamItems(t, 2)
	silent := BatchItem{TX: good[1].TX, Baseband: make([]complex128, len(good[1].Baseband))}

	s := ap.Stream(context.Background(), 4)
	results := make([]StreamResult, 0, 3)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for r := range s.Results() {
			results = append(results, r)
		}
	}()
	for _, it := range []BatchItem{good[0], silent, good[1]} {
		if _, err := s.Submit(context.Background(), it); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	<-done

	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("good items failed: %v / %v", results[0].Err, results[2].Err)
	}
	if !errors.Is(results[1].Err, ErrNotDetected) {
		t.Fatalf("silent item err %v, want ErrNotDetected", results[1].Err)
	}
	var pe *PipelineError
	if !errors.As(results[1].Err, &pe) || pe.Stage != StageDetect {
		t.Fatalf("silent item err %v, want PipelineError at %q", results[1].Err, StageDetect)
	}
}
