// Package core assembles SecureAngle's per-AP pipeline — the paper's
// primary contribution. For every received transmission it runs:
//
//	raw per-antenna samples
//	  -> Schmidl-Cox packet detection (internal/detect)
//	  -> calibration offsets applied  (internal/radio, section 2.2)
//	  -> packet-scale correlation matrix (internal/music, section 3)
//	  -> MUSIC pseudospectrum        (section 2.1)
//	  -> bearing estimate + AoA signature (sections 2.1, 2.3)
//
// and maintains the per-MAC signature registry that implements address
// spoofing prevention (section 2.3.2).
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"secureangle/internal/antenna"
	"secureangle/internal/cmat"
	"secureangle/internal/detect"
	"secureangle/internal/dsp"
	"secureangle/internal/env"
	"secureangle/internal/geom"
	"secureangle/internal/music"
	"secureangle/internal/ofdm"
	"secureangle/internal/pool"
	"secureangle/internal/radio"
	"secureangle/internal/signature"
	"secureangle/internal/testbed"
	"secureangle/internal/trace"
	"secureangle/internal/wifi"
)

// BearingMode selects how the default (nil-Estimator) pipeline derives
// its bearing estimate. The pseudospectrum — and with it the AoA
// signature and every spoof/fence decision — always comes from the
// manifold grid scan regardless of mode; the mode only governs the
// bearing number, which the grid-free estimators resolve without the
// grid's quantisation on arrays whose geometry permits it.
type BearingMode int

const (
	// BearingAuto (the default) uses grid-free root-MUSIC on uniform
	// linear arrays and the grid scan everywhere else.
	BearingAuto BearingMode = iota
	// BearingGrid forces the grid-scan bearing on every array.
	BearingGrid
	// BearingRootMUSIC behaves like BearingAuto (named for explicitness
	// in configs that must not silently change estimator).
	BearingRootMUSIC
	// BearingESPRIT uses the ESPRIT rotation-operator estimator on
	// uniform linear arrays, the grid scan everywhere else.
	BearingESPRIT
)

// Config tunes an AP's estimation pipeline.
type Config struct {
	// GridStepDeg is the pseudospectrum angle resolution (default 1).
	GridStepDeg float64
	// Bearing selects the default path's bearing estimator; see
	// BearingMode. Ignored when Estimator is non-nil (explicit
	// estimators own the whole spectrum-and-bearing computation).
	Bearing BearingMode
	// Estimator computes pseudospectra; default is MUSIC with
	// MDL-selected source count, which handles the partially-coherent
	// multipath of packet-scale covariances. Estimators that implement
	// music.ManifoldEstimator run on the AP's precomputed scan manifold
	// and receive the packet's true snapshot count. A non-nil Estimator
	// must be safe for concurrent Pseudospectrum calls if the batch
	// entry points are used (the estimators in internal/music all are).
	Estimator music.Estimator
	// Policy is the signature matching threshold for spoof detection.
	Policy signature.MatchPolicy
	// CalSamples is the calibration capture length (default 2000).
	CalSamples int
	// Detector configures Schmidl-Cox packet detection.
	Detector detect.Config
	// Workers bounds the worker pool ObserveBatch and
	// ProcessStreamsBatch fan estimation out on. Zero means one worker
	// per CPU (GOMAXPROCS); negative values are rejected by Validate.
	Workers int
	// DeferCalibration skips the constructor's section 2.2 calibration
	// pass. Observations fail with ErrNotCalibrated until the AP's
	// Calibrate method runs — the service posture where an AP comes up,
	// registers with the controller, and calibrates on command.
	DeferCalibration bool
}

// DefaultConfig returns the settings used throughout the evaluation.
// Workers is left at zero, which means one worker per CPU (GOMAXPROCS)
// in every batch/stream entry point.
func DefaultConfig() Config {
	return Config{
		GridStepDeg: 1,
		Estimator:   nil, // auto-MUSIC per packet
		Policy:      signature.DefaultPolicy(),
		CalSamples:  2000,
		Detector:    detect.DefaultConfig(),
	}
}

// WithDefaults fills zero-valued knobs with the evaluation defaults
// (the tolerant pre-v2 constructor behavior): grid step 1 degree, 2000
// calibration samples, the default detector and policy. Workers stays
// zero — zero already means GOMAXPROCS.
func (c Config) WithDefaults() Config {
	if c.GridStepDeg == 0 {
		c.GridStepDeg = 1
	}
	if c.CalSamples == 0 {
		c.CalSamples = 2000
	}
	if c.Detector.HalfLen == 0 {
		c.Detector = detect.DefaultConfig()
	}
	if c.Policy == (signature.MatchPolicy{}) {
		c.Policy = signature.DefaultPolicy()
	}
	return c
}

// Validate rejects configurations no pipeline can run: a negative
// worker bound, a zero or negative pseudospectrum step, a non-positive
// calibration capture length, or a match policy without a usable
// threshold. A zero-valued knob is not automatically an error — NewAP
// and the secureangle.New facade fill defaults (withDefaults) before
// validating, so only genuinely contradictory settings fail.
func (c Config) Validate() error {
	if c.Workers < 0 {
		return fmt.Errorf("core: Workers %d is negative (0 means GOMAXPROCS)", c.Workers)
	}
	if c.GridStepDeg <= 0 {
		return fmt.Errorf("core: GridStepDeg %g must be positive", c.GridStepDeg)
	}
	if c.CalSamples <= 0 {
		return fmt.Errorf("core: CalSamples %d must be positive", c.CalSamples)
	}
	if err := c.Policy.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if c.Bearing < BearingAuto || c.Bearing > BearingESPRIT {
		return fmt.Errorf("core: unknown BearingMode %d", c.Bearing)
	}
	return nil
}

// AP is one SecureAngle access point.
type AP struct {
	Name string
	FE   *radio.FrontEnd
	Env  *env.Environment

	cfg      Config
	offsets  []float64
	grid     []float64
	manifold *antenna.Manifold

	// ULA geometry for the grid-free bearing estimators; ulaOK is false
	// on arrays they cannot serve (the circular octagon).
	ulaSpacingWl float64
	ulaAxisDeg   float64
	ulaOK        bool
	// scratch pools per-packet pipeline buffers (see pipeScratch).
	scratch sync.Pool

	// prepMu serialises the order-sensitive half of batch synthesis (the
	// front end's noise-stream forks) across concurrent batch calls.
	prepMu   sync.Mutex
	registry *shardedRegistry
	// measures is the AP's active-countermeasure table: the runtime face
	// of controller defense directives (quarantine drops, null-steer
	// weights). See countermeasure.go.
	measures countermeasures
}

// NewAP builds an AP and immediately runs the section 2.2 calibration
// procedure against its front end, so subsequent observations are phase
// coherent (unless cfg.DeferCalibration postpones it). Zero-valued
// config knobs take the evaluation defaults; a config that fails
// Validate after defaulting (negative Workers, negative grid step, a
// broken match policy) is a programming error and panics — callers that
// want an error instead validate first, as secureangle.New does.
func NewAP(name string, fe *radio.FrontEnd, e *env.Environment, cfg Config) *AP {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	grid := fe.Array.ScanGrid(cfg.GridStepDeg)
	ap := &AP{
		Name:     name,
		FE:       fe,
		Env:      e,
		cfg:      cfg,
		grid:     grid,
		manifold: antenna.NewManifold(fe.Array, grid),
		registry: newShardedRegistry(),
	}
	ap.ulaSpacingWl, ap.ulaAxisDeg, ap.ulaOK = music.ULAGeometry(fe.Array)
	if !cfg.DeferCalibration {
		ap.offsets = fe.Calibrate(cfg.CalSamples)
	}
	return ap
}

// Calibrate runs the section 2.2 procedure now — the deferred half of
// Config.DeferCalibration. Not safe to call concurrently with
// observations (calibration is a setup step, not a hot-path one).
func (ap *AP) Calibrate() {
	ap.offsets = ap.FE.Calibrate(ap.cfg.CalSamples)
}

// Calibrated reports whether calibration offsets are in place.
func (ap *AP) Calibrated() bool { return ap.offsets != nil }

// NewAPFromCapture builds an AP whose calibration offsets come from a
// recorded calibration capture (one stream per chain of the reference
// tone) rather than from the live front end — the constructor offline
// replay uses, where the recorded streams carry the recording rig's
// offsets, not this front end's.
func NewAPFromCapture(name string, fe *radio.FrontEnd, e *env.Environment, cfg Config, calStreams [][]complex128) *AP {
	ap := NewAP(name, fe, e, cfg)
	ap.offsets = radio.EstimateOffsets(calStreams)
	return ap
}

// Grid returns the AP's pseudospectrum bearing grid.
func (ap *AP) Grid() []float64 { return append([]float64(nil), ap.grid...) }

// Offsets returns the calibration offsets in use.
func (ap *AP) Offsets() []float64 { return append([]float64(nil), ap.offsets...) }

// Report is the physical-layer result for one received packet.
type Report struct {
	AP         string
	APPos      geom.Point
	BearingDeg float64
	Spectrum   *music.Pseudospectrum
	Sig        *signature.Signature
	Detection  detect.Detection
	// Sources is the signal-subspace dimension MDL selected.
	Sources int
	// SNRdB is the in-band SNR estimated from the covariance eigenvalues.
	SNRdB float64
	// Trace is the 64-bit decision-trace ID minted for this packet —
	// the handle every downstream hop (spoof check, wire report,
	// fusion, defense, directive, ack) records its span under, and the
	// key `secureangle incident` reconstructs the timeline by.
	Trace uint64
}

// Observe receives a transmission from tx through the environment and
// runs the full pipeline, returning the bearing report. Failures are
// *PipelineError values wrapping the taxonomy sentinels (ErrBlocked,
// ErrNotDetected, ...).
func (ap *AP) Observe(tx geom.Point, baseband []complex128) (*Report, error) {
	return ap.ObserveContext(context.Background(), tx, baseband)
}

// ObserveContext is Observe honouring ctx: a cancelled context stops
// the pipeline at the next stage boundary and returns the ctx error
// wrapped in a StageDispatch PipelineError.
func (ap *AP) ObserveContext(ctx context.Context, tx geom.Point, baseband []complex128) (*Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, ap.stageErr(StageDispatch, err)
	}
	sc := ap.getScratch()
	defer ap.putScratch(sc)
	tRecv := time.Now()
	streams, err := ap.FE.ReceiveArena(ap.Env, tx, baseband, sc.arena)
	if err != nil {
		return nil, ap.stageErr(StageReceive, err)
	}
	mReceiveSeconds.ObserveSince(tRecv)
	if err := ctx.Err(); err != nil {
		return nil, ap.stageErr(StageDispatch, err)
	}
	return ap.processScratch(streams, sc)
}

// Receive propagates baseband from tx to the AP's antennas and returns
// the raw capture without running the estimation stages — the synthesis
// half of Observe. Callers that must consume channel and noise
// realisations in a fixed order but want the estimation fanned out (the
// experiment sweeps) capture serially with Receive and then hand the
// captures to ProcessStreamsBatch.
func (ap *AP) Receive(tx geom.Point, baseband []complex128) ([][]complex128, error) {
	return ap.FE.Receive(ap.Env, tx, baseband)
}

// ProcessStreams runs the detection + estimation pipeline on raw
// per-antenna streams captured elsewhere (e.g. replayed from an iqfile
// recording). Calibration offsets are applied first, exactly as in the
// live path. The streams are modified in place.
func (ap *AP) ProcessStreams(streams [][]complex128) (*Report, error) {
	return ap.process(streams)
}

// process runs detection + estimation on already-received streams with a
// pooled scratch. It is a pure function of the streams and the AP's
// immutable configuration, so the batch entry points run it concurrently
// from a worker pool (each worker holding its own scratch). Every
// failure is a *PipelineError naming the stage that produced it.
func (ap *AP) process(streams [][]complex128) (*Report, error) {
	sc := ap.getScratch()
	defer ap.putScratch(sc)
	return ap.processScratch(streams, sc)
}

// processScratch is the pipeline body. Everything intermediate — the
// detection metric, packet windows, covariance, eigensystem, grid-free
// polynomial buffers — lives in sc; only the Report and the slices it
// carries (spectrum values, signature) are allocated.
func (ap *AP) processScratch(streams [][]complex128, sc *pipeScratch) (*Report, error) {
	mPackets.Inc()
	t0 := time.Now()
	// Mint the packet's trace ID up front so the stage histograms can
	// exemplar-link it even when a later stage fails the packet.
	tr := trace.NextID()
	if ap.offsets == nil {
		return nil, ap.stageErr(StageCalibrate, ErrNotCalibrated)
	}
	if len(streams) == 0 || len(streams[0]) < len(streams) {
		// Fewer snapshots than antennas: the covariance cannot reach
		// full rank, so nothing downstream is meaningful.
		return nil, ap.stageErr(StageAlign, ErrTooFewSnapshots)
	}
	radio.ApplyCalibration(streams, ap.offsets)

	sc.dets = detect.FindArena(streams[0], ap.cfg.Detector, sc.arena, sc.dets[:0])
	if len(sc.dets) == 0 {
		return nil, ap.stageErr(StageDetect, ErrNotDetected)
	}
	det := sc.dets[0]

	// Packet extent: from the detected start to where smoothed power
	// falls back toward the noise floor ("compute the correlation matrix
	// ... with each entire packet", section 3).
	n := packetExtent(streams[0], det.Start, sc.arena)
	if n < len(streams) {
		return nil, ap.stageErr(StageAlign, ErrTooFewSnapshots)
	}
	win, ok := detect.ExtractAlignedArena(streams, det, n, sc.arena)
	if !ok {
		return nil, ap.stageErr(StageAlign, errors.New("detection window out of range"))
	}
	mDetectSeconds.ObserveSinceExemplar(t0, tr)
	tEst := time.Now()

	r, err := music.CovarianceInto(&sc.cov, win)
	if err != nil {
		return nil, ap.stageErr(StageEstimate, err)
	}

	var (
		ps      *music.Pseudospectrum
		bearing float64
		sources int
		snr     float64
	)
	switch est := ap.cfg.Estimator.(type) {
	case nil:
		// Default auto-MUSIC path: one eigendecomposition per packet,
		// shared between the manifold scan (whose MDL model order uses
		// the packet's true snapshot count n), the subspace stats, and
		// the grid-free bearing estimators.
		eig, err := sc.eig.HermEig(r)
		if err != nil {
			return nil, ap.stageErr(StageEstimate, err)
		}
		ps = &music.Pseudospectrum{AnglesDeg: ap.grid, P: make([]float64, len(ap.grid))}
		k, err := (&music.MUSIC{}).PseudospectrumFromEigInto(ps, eig, ap.manifold, n)
		if err != nil {
			return nil, ap.stageErr(StageEstimate, err)
		}
		sources, snr = k, snrFromEig(eig.Values, k)
		bearing = ap.bearingFromEig(eig, k, r, ps, sc)
	case music.ManifoldEstimator:
		ps, err = est.PseudospectrumOnManifold(r, ap.manifold, n)
		if err != nil {
			return nil, ap.stageErr(StageEstimate, err)
		}
		sources, snr = subspaceStats(r, n)
		bearing = rankPeaksByPower(ps, r, ap.FE.Array)
	default:
		ps, err = est.Pseudospectrum(r, ap.FE.Array, ap.grid)
		if err != nil {
			return nil, ap.stageErr(StageEstimate, err)
		}
		sources, snr = subspaceStats(r, n)
		bearing = rankPeaksByPower(ps, r, ap.FE.Array)
	}

	rep := &Report{
		AP:         ap.Name,
		APPos:      ap.FE.Pos,
		BearingDeg: bearing,
		Spectrum:   ps,
		Sig:        signature.FromPseudospectrum(ps),
		Detection:  det,
		Sources:    sources,
		SNRdB:      snr,
		Trace:      tr,
	}
	mEstimateSeconds.ObserveSinceExemplar(tEst, tr)
	mPacketSeconds.ObserveSinceExemplar(t0, tr)
	mReports.Inc()
	trace.Default().Record(trace.Span{
		Trace: tr,
		Stage: trace.StageObserve,
		Start: t0.UnixNano(),
		Dur:   int64(time.Since(t0)),
		AP:    ap.Name,
	})
	return rep, nil
}

// rankPeaksByPower selects the bearing estimate from a MUSIC
// pseudospectrum. MUSIC peak height measures subspace proximity, not
// received power: a weak composite of distant reflections can out-peak
// the direct path. Re-ranking the top MUSIC peaks by their Bartlett
// (delay-and-sum) power keeps MUSIC's angular precision while selecting
// the arrival that actually carries the most energy — which is the direct
// path whenever one exists (section 3.1).
func rankPeaksByPower(ps *music.Pseudospectrum, r *cmat.Matrix, arr *antenna.Array) float64 {
	peaks := ps.Peaks(8, 12)
	if len(peaks) <= 1 {
		return ps.PeakBearing()
	}
	grid := make([]float64, len(peaks))
	for i, p := range peaks {
		grid[i] = p.BearingDeg
	}
	bart, err := (music.Bartlett{}).Pseudospectrum(r, arr, grid)
	if err != nil {
		return ps.PeakBearing()
	}
	best, bi := -1.0, 0
	for i, v := range bart.P {
		if v > best {
			best, bi = v, i
		}
	}
	return grid[bi]
}

// subspaceStats reports the MDL source count and an eigenvalue-based SNR
// estimate (signal eigenvalue mass over noise eigenvalue mass).
func subspaceStats(r *cmat.Matrix, n int) (int, float64) {
	eig, err := cmat.HermEig(r)
	if err != nil {
		return 1, 0
	}
	k := music.MDLSources(eig.Values, n)
	return k, snrFromEig(eig.Values, k)
}

// snrFromEig estimates the in-band SNR from descending covariance
// eigenvalues split at signal-subspace dimension k.
func snrFromEig(eigvals []float64, k int) float64 {
	var sig, noise float64
	for i, v := range eigvals {
		if i < k {
			sig += v
		} else {
			noise += v
		}
	}
	m := len(eigvals)
	if noise <= 0 || k >= m {
		return 60
	}
	// Per-eigenvalue noise power; signal mass above the noise floor.
	noisePer := noise / float64(m-k)
	excess := sig - float64(k)*noisePer
	if excess <= 0 {
		return 0
	}
	return dsp.DB(excess / noise)
}

// packetExtent returns the number of samples from start to the end of the
// packet, found by tracking smoothed instantaneous power against the
// trailing noise floor. Scratch buffers come from ar (nil allocates).
func packetExtent(x []complex128, start int, ar *pool.Arena) int {
	const win = 80 // one OFDM symbol
	if start >= len(x) {
		return 0
	}
	rest := x[start:]
	if len(rest) <= win {
		return len(rest)
	}
	var pow, smDst []float64
	if ar == nil {
		pow = make([]float64, len(rest))
		smDst = make([]float64, len(rest)-win+1)
	} else {
		pow = ar.Float(len(rest))
		smDst = ar.Float(len(rest) - win + 1)
	}
	for i, v := range rest {
		pow[i] = real(v)*real(v) + imag(v)*imag(v)
	}
	sm := dsp.MovingSumRealInto(smDst, pow, win)
	// Peak smoothed power near the packet head sets the reference.
	ref := 0.0
	for i := 0; i < len(sm) && i < 400; i++ {
		if sm[i] > ref {
			ref = sm[i]
		}
	}
	if ref == 0 {
		return len(rest)
	}
	end := len(sm)
	for i := 160; i < len(sm); i++ { // skip at least two symbols
		if sm[i] < ref/20 { // 13 dB below the packet body
			end = i
			break
		}
	}
	n := end + win
	if n > len(rest) {
		n = len(rest)
	}
	return n
}

// --- Spoofing prevention (section 2.3.2) ---

// FrameReport extends Report with the MAC-layer identity check.
type FrameReport struct {
	Report
	MAC      wifi.Addr
	Decision signature.Decision
	Distance float64
	// Threshold is the match policy's MaxDistance the check compared
	// Distance against; Margin() on the Verdict view gives the headroom.
	Threshold float64
	// Enrolled is true when this packet trained a new registry entry
	// (initial training stage) rather than being checked.
	Enrolled bool
	// Quarantined marks a frame from a MAC the AP holds an active
	// countermeasure directive against (see ApplyDirective); such frames
	// are to be dropped by the caller regardless of Decision.
	Quarantined bool
}

// Verdict assembles the scored spoof-check verdict of this frame.
func (fr *FrameReport) Verdict() signature.Verdict {
	return signature.Verdict{Decision: fr.Decision, Distance: fr.Distance, Threshold: fr.Threshold}
}

// ProcessFrame transmits the frame from tx, runs the pipeline, and applies
// the spoof check for the frame's transmitter address: unknown addresses
// are enrolled (training stage); known addresses are compared against
// their certified signature Scl and either accepted (updating Scl) or
// flagged.
func (ap *AP) ProcessFrame(tx geom.Point, frame *wifi.Frame, mod ofdm.Modulation) (*FrameReport, error) {
	return ap.ProcessFrameContext(context.Background(), tx, frame, mod)
}

// ProcessFrameContext is ProcessFrame honouring ctx. Pipeline failures
// carry the frame's transmitter address in their PipelineError.
func (ap *AP) ProcessFrameContext(ctx context.Context, tx geom.Point, frame *wifi.Frame, mod ofdm.Modulation) (*FrameReport, error) {
	bb, err := testbed.FrameBaseband(frame, mod)
	if err != nil {
		return nil, err
	}
	rep, err := ap.ObserveContext(ctx, tx, bb)
	if err != nil {
		return nil, withMAC(err, frame.Addr2)
	}
	fr := &FrameReport{Report: *rep, MAC: frame.Addr2}
	tSpoof := time.Now()
	v, enrolled, err := ap.registry.observe(frame.Addr2, rep.Sig, ap.cfg.Policy)
	if err != nil {
		return nil, &PipelineError{Stage: StageSpoofCheck, AP: ap.Name, MAC: frame.Addr2, Err: err}
	}
	trace.Default().Record(trace.Span{
		Trace: rep.Trace,
		Stage: trace.StageSpoofCheck,
		Start: tSpoof.UnixNano(),
		Dur:   int64(time.Since(tSpoof)),
		MAC:   frame.Addr2,
		AP:    ap.Name,
	})
	fr.Decision = v.Decision
	fr.Distance = v.Distance
	fr.Threshold = v.Threshold
	fr.Enrolled = enrolled
	fr.Quarantined = ap.measures.active(frame.Addr2)
	if v.Decision == signature.Accept && !fr.Quarantined {
		// Remember where legitimate traffic comes from: the serve bearing
		// a null-steer countermeasure preserves gain toward.
		ap.measures.noteServeBearing(rep.BearingDeg)
	}
	return fr, nil
}

// Enroll registers (or replaces) a certified signature for a MAC address.
func (ap *AP) Enroll(mac wifi.Addr, sig *signature.Signature) {
	ap.registry.enroll(mac, sig, ap.cfg.Policy)
}

// Known reports whether a MAC has a certified signature.
func (ap *AP) Known(mac wifi.Addr) bool {
	return ap.registry.known(mac)
}

// StoredSignature returns the current certified signature for a MAC.
func (ap *AP) StoredSignature(mac wifi.Addr) (*signature.Signature, bool) {
	return ap.registry.stored(mac)
}

// Identify ranks every enrolled client by signature distance to an
// observation — the primitive behind the anomaly-detection systems the
// paper cites ([1], [9]): when a frame is flagged, Identify reveals which
// known client the transmitter's physical signature actually resembles
// (often the attacker's own enrolled station).
func (ap *AP) Identify(obs *signature.Signature) ([]Identification, error) {
	return rankByDistance(ap.registry.snapshot(), obs)
}
