package core

import (
	"bytes"
	"math"
	"testing"

	"secureangle/internal/geom"
	"secureangle/internal/iqfile"
	"secureangle/internal/ofdm"
	"secureangle/internal/rng"
	"secureangle/internal/testbed"
)

// TestCaptureReplayMatchesLive records a reception to the SAIQ format,
// replays it through a freshly-constructed AP, and checks the offline
// bearing matches the live one — the regression-fixture workflow.
func TestCaptureReplayMatchesLive(t *testing.T) {
	e, _ := testbed.Building()
	fe := testbed.NewAPFrontEnd(testbed.CircularArray(), testbed.AP1, rng.New(21))
	c, err := testbed.ClientByID(3)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := testbed.FrameBaseband(testbed.UplinkFrame(3, 1, []byte("replay")), ofdm.QPSK)
	if err != nil {
		t.Fatal(err)
	}
	streams, err := fe.Receive(e, c.Pos, bb)
	if err != nil {
		t.Fatal(err)
	}
	calStreams := fe.CalibrationCapture(2000)

	// Live processing (copy: process mutates).
	liveStreams := deepCopy(streams)
	liveCal := deepCopy(calStreams)
	liveAP := NewAPFromCapture("live", fe, e, DefaultConfig(), liveCal)
	liveRep, err := liveAP.ProcessStreams(liveStreams)
	if err != nil {
		t.Fatal(err)
	}

	// Round-trip both captures through the file format.
	var dataBuf, calBuf bytes.Buffer
	if err := iqfile.Write(&dataBuf, &iqfile.Capture{SampleRate: 20e6, Streams: streams}); err != nil {
		t.Fatal(err)
	}
	if err := iqfile.Write(&calBuf, &iqfile.Capture{SampleRate: 20e6, Streams: calStreams}); err != nil {
		t.Fatal(err)
	}
	dataCap, err := iqfile.Read(&dataBuf)
	if err != nil {
		t.Fatal(err)
	}
	calCap, err := iqfile.Read(&calBuf)
	if err != nil {
		t.Fatal(err)
	}

	// Replay on a *different* front end (its own random offsets are
	// irrelevant: the recorded calibration carries the recording rig's).
	fe2 := testbed.NewAPFrontEnd(testbed.CircularArray(), testbed.AP1, rng.New(9999))
	replayAP := NewAPFromCapture("replay", fe2, e, DefaultConfig(), calCap.Streams)
	replayRep, err := replayAP.ProcessStreams(dataCap.Streams)
	if err != nil {
		t.Fatal(err)
	}

	if d := geom.AngularDistDeg(liveRep.BearingDeg, replayRep.BearingDeg); d > 1.01 {
		t.Errorf("live bearing %v vs replay %v (diff %v)", liveRep.BearingDeg, replayRep.BearingDeg, d)
	}
	truth := testbed.GroundTruth(testbed.AP1, c.Pos)
	if d := geom.AngularDistDeg(replayRep.BearingDeg, truth); d > 6 {
		t.Errorf("replay bearing %v, truth %v", replayRep.BearingDeg, truth)
	}
	// float32 quantisation must not visibly move the detection metric.
	if math.Abs(liveRep.Detection.Metric-replayRep.Detection.Metric) > 0.01 {
		t.Errorf("metric drifted: %v vs %v", liveRep.Detection.Metric, replayRep.Detection.Metric)
	}
}

func deepCopy(s [][]complex128) [][]complex128 {
	out := make([][]complex128, len(s))
	for i := range s {
		out[i] = append([]complex128(nil), s[i]...)
	}
	return out
}
