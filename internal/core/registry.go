package core

import (
	"sort"
	"sync"

	"secureangle/internal/signature"
	"secureangle/internal/wifi"
)

// trackerAlpha is the certified-signature update rate used for every
// tracker the AP enrolls (section 2.3.2's Scl update).
const trackerAlpha = 0.25

// registryShardCount is the lock-striping factor of the per-MAC signature
// registry. A single mutex serialises every spoof check an AP performs;
// with the batch pipeline running checks from a worker pool, striping by
// MAC keeps unrelated clients off each other's lock while preserving
// per-MAC ordering (all packets of one MAC hash to one shard).
const registryShardCount = 16

type registryShard struct {
	mu sync.Mutex
	m  map[wifi.Addr]*signature.Tracker
}

// shardedRegistry is the N-way lock-striped replacement for the old
// map[wifi.Addr]*Tracker under one AP-wide mutex.
type shardedRegistry struct {
	shards [registryShardCount]registryShard
}

func newShardedRegistry() *shardedRegistry {
	r := &shardedRegistry{}
	for i := range r.shards {
		r.shards[i].m = make(map[wifi.Addr]*signature.Tracker)
	}
	return r
}

// shardFor hashes a MAC onto its shard (FNV-1a).
func (r *shardedRegistry) shardFor(mac wifi.Addr) *registryShard {
	return &r.shards[mac.Hash()%registryShardCount]
}

// observe runs the spoof check for one observation: unknown MACs enroll a
// tracker seeded with sig and report enrolled=true; known MACs are
// compared against their certified signature, returning the scored
// verdict (decision + distance + threshold).
func (r *shardedRegistry) observe(mac wifi.Addr, sig *signature.Signature, policy signature.MatchPolicy) (v signature.Verdict, enrolled bool, err error) {
	s := r.shardFor(mac)
	s.mu.Lock()
	defer s.mu.Unlock()
	tr, known := s.m[mac]
	if !known {
		s.m[mac] = signature.NewTracker(sig, policy, trackerAlpha)
		return signature.Verdict{Decision: signature.Accept, Threshold: policy.MaxDistance}, true, nil
	}
	v, err = tr.ObserveVerdict(sig)
	return v, false, err
}

// enroll registers (or replaces) a certified signature.
func (r *shardedRegistry) enroll(mac wifi.Addr, sig *signature.Signature, policy signature.MatchPolicy) {
	s := r.shardFor(mac)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[mac] = signature.NewTracker(sig, policy, trackerAlpha)
}

// known reports whether a MAC has a certified signature.
func (r *shardedRegistry) known(mac wifi.Addr) bool {
	s := r.shardFor(mac)
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.m[mac]
	return ok
}

// stored returns the current certified signature for a MAC.
func (r *shardedRegistry) stored(mac wifi.Addr) (*signature.Signature, bool) {
	s := r.shardFor(mac)
	s.mu.Lock()
	defer s.mu.Unlock()
	tr, ok := s.m[mac]
	if !ok {
		return nil, false
	}
	return tr.Stored(), true
}

// snapshot returns every enrolled (MAC, certified signature) pair. Each
// shard is locked in turn, so the result is a consistent view per shard
// but not across shards — the same guarantee registry iteration under one
// mutex gave callers that interleave with concurrent enrolls.
func (r *shardedRegistry) snapshot() []Identification {
	var out []Identification
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		for mac, tr := range s.m {
			out = append(out, Identification{MAC: mac, sig: tr.Stored()})
		}
		s.mu.Unlock()
	}
	return out
}

// Identification is one ranked registry candidate for an observed
// signature.
type Identification struct {
	MAC      wifi.Addr
	Distance float64

	sig *signature.Signature
}

// rankByDistance scores every candidate against obs and sorts ascending.
func rankByDistance(cands []Identification, obs *signature.Signature) ([]Identification, error) {
	for i := range cands {
		d, err := signature.Distance(cands[i].sig, obs)
		if err != nil {
			return nil, err
		}
		cands[i].Distance = d
		cands[i].sig = nil
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Distance != cands[j].Distance {
			return cands[i].Distance < cands[j].Distance
		}
		return cands[i].MAC.String() < cands[j].MAC.String()
	})
	return cands, nil
}
