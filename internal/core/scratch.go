package core

import (
	"math"

	"secureangle/internal/cmat"
	"secureangle/internal/detect"
	"secureangle/internal/dsp"
	"secureangle/internal/music"
	"secureangle/internal/pool"
)

// pipeScratch carries every reusable buffer one packet's pipeline pass
// needs: the sample arena (receive synthesis, detection metric, packet
// windows), the covariance matrix, the Jacobi eigensolver workspace, the
// root-MUSIC polynomial buffers, and the small index/steering scratch of
// the bearing selection. One scratch serves one pass at a time; the AP
// keeps them in a sync.Pool so concurrent batch workers each hold their
// own and the steady-state packet path allocates only what escapes into
// the Report.
type pipeScratch struct {
	arena *pool.Arena
	cov   cmat.Matrix
	eig   cmat.EigWorkspace
	dets  []detect.Detection
	root  music.RootScratch
	steer []complex128
	peaks []int
	kept  []int
}

func (ap *AP) getScratch() *pipeScratch {
	if sc, ok := ap.scratch.Get().(*pipeScratch); ok {
		mScratchHits.Inc()
		return sc
	}
	mScratchMisses.Inc()
	n := ap.FE.Array.N()
	return &pipeScratch{
		// The arena grows to fit the first packet and stays there; these
		// are just reasonable starting sizes (a padded testbed frame is
		// ~1100 samples, synthesised at pow2 length 2048 across n chains).
		arena: pool.NewArena(1<<14, 1<<12, 4*n),
		steer: make([]complex128, n),
	}
}

func (ap *AP) putScratch(sc *pipeScratch) {
	sc.arena.Reset()
	ap.scratch.Put(sc)
}

// bearingFromEig picks the report bearing on the default (nil-estimator)
// path. On a uniform linear array the grid-free estimators resolve the
// arrival angles from the packet's eigendecomposition directly — no grid
// quantisation — and the Bartlett power re-rank then selects the arrival
// carrying the most energy, exactly the selection rule of the grid path.
// Any grid-free failure (root finding, degenerate subspace) falls back
// to the grid scan, as does a non-ULA array or Config.Bearing ==
// BearingGrid. The pseudospectrum (and therefore the AoA signature and
// the spoof/fence decisions built on it) always comes from the grid
// scan; only the bearing estimate goes grid-free.
func (ap *AP) bearingFromEig(eig *cmat.EigResult, k int, r *cmat.Matrix, ps *music.Pseudospectrum, sc *pipeScratch) float64 {
	if ap.ulaOK && ap.cfg.Bearing != BearingGrid {
		var (
			doas []float64
			err  error
		)
		if ap.cfg.Bearing == BearingESPRIT {
			doas, err = music.ESPRITDOAsFromEig(eig, k, ap.ulaSpacingWl, ap.ulaAxisDeg)
		} else {
			doas, err = music.RootDOAsFromEig(eig, k, ap.ulaSpacingWl, ap.ulaAxisDeg, &sc.root)
		}
		if err == nil && len(doas) > 0 {
			return ap.bestByBartlett(doas, r, sc)
		}
	}
	return ap.rankPeaksScratch(ps, r, sc)
}

// bestByBartlett returns the DOA with the highest Bartlett (delay-and-
// sum) power — the grid-free counterpart of rankPeaksByPower's re-rank.
func (ap *AP) bestByBartlett(doas []float64, r *cmat.Matrix, sc *pipeScratch) float64 {
	if len(doas) == 1 {
		return doas[0]
	}
	best, bd := math.Inf(-1), doas[0]
	for _, d := range doas {
		ap.FE.Array.SteeringInto(sc.steer, d)
		if p := bartlettPower(r, sc.steer); p > best {
			best, bd = p, d
		}
	}
	return bd
}

// bartlettPower evaluates a^H R a / n for one steering vector.
func bartlettPower(r *cmat.Matrix, a []complex128) float64 {
	nn := r.Rows
	var num complex128
	for e := 0; e < nn; e++ {
		row := r.Data[e*nn : (e+1)*nn]
		var ra complex128
		for f, v := range row {
			ra += v * a[f]
		}
		num += complex(real(a[e]), -imag(a[e])) * ra
	}
	return math.Max(real(num)/float64(nn), 0)
}

// rankPeaksScratch is rankPeaksByPower for spectra scanned on the AP's
// own grid: it works on grid indices so the steering vectors come from
// the precomputed manifold and the peak bookkeeping reuses the scratch
// index slices — the same selection (local maxima, 8 degree separation,
// 12 dB floor, Bartlett re-rank) with nothing allocated.
func (ap *AP) rankPeaksScratch(ps *music.Pseudospectrum, r *cmat.Matrix, sc *pipeScratch) float64 {
	n := len(ps.P)
	cands := sc.peaks[:0]
	for i := 0; i < n; i++ {
		v := ps.P[i]
		left, right := math.Inf(-1), math.Inf(-1)
		if i > 0 {
			left = ps.P[i-1]
		}
		if i < n-1 {
			right = ps.P[i+1]
		}
		if v >= left && v > right || v > left && v >= right {
			cands = append(cands, i)
		}
	}
	// Insertion sort, descending by pseudospectrum value.
	for i := 1; i < len(cands); i++ {
		j := i
		for j > 0 && ps.P[cands[j]] > ps.P[cands[j-1]] {
			cands[j], cands[j-1] = cands[j-1], cands[j]
			j--
		}
	}
	// Enforce the minimum angular separation, strongest first.
	kept := sc.kept[:0]
	for _, c := range cands {
		ok := true
		for _, kp := range kept {
			if angSepDeg(ps.AnglesDeg[kp], ps.AnglesDeg[c]) < 8 {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, c)
		}
	}
	sc.peaks, sc.kept = cands, kept
	if len(kept) == 0 {
		return ps.PeakBearing()
	}
	// Drop peaks more than 12 dB below the strongest.
	top := ps.P[kept[0]]
	m := kept[:0]
	for _, c := range kept {
		if dsp.DB(ps.P[c]/top) >= -12 {
			m = append(m, c)
		}
	}
	kept = m
	if len(kept) <= 1 {
		return ps.PeakBearing()
	}
	best, bi := -1.0, kept[0]
	for _, c := range kept {
		if p := bartlettPower(r, ap.manifold.Steering(c)); p > best {
			best, bi = p, c
		}
	}
	return ps.AnglesDeg[bi]
}

func angSepDeg(a, b float64) float64 {
	d := math.Mod(math.Abs(a-b), 360)
	if d > 180 {
		d = 360 - d
	}
	return d
}
