package core

// The AP side of the closed defense loop: controller directives
// (internal/defense) land here and become physical countermeasures.
// A quarantine directive marks the MAC so ProcessFrame stamps its
// frames Quarantined (the caller drops them); a null-steer directive
// additionally computes LCMV weights (internal/beamform) that keep
// unit gain toward the AP's current serve bearing while placing a
// spatial transmit null toward the threat — the paper's section 5
// "yield to transmitters you can localise" primitive, finally wired
// into the runtime.

import (
	"math"
	"sync"
	"time"

	"secureangle/internal/beamform"
	"secureangle/internal/defense"
	"secureangle/internal/geom"
	"secureangle/internal/wifi"
)

// Countermeasure is one applied directive: what the AP is doing about a
// flagged MAC right now.
type Countermeasure struct {
	MAC    wifi.Addr
	Action defense.Action
	// NullBearingDeg is the bearing the transmit null points at (valid
	// for ActionNullSteer).
	NullBearingDeg float64
	// ServeBearingDeg is the bearing the null-steer weights preserve
	// unit gain toward (the AP's last accepted legitimate bearing).
	ServeBearingDeg float64
	// Weights are the applied unit-norm transmit weights (nil unless
	// ActionNullSteer). Verify with beamform.Gain: ~0 at
	// NullBearingDeg, high at ServeBearingDeg.
	Weights []complex128
	// Applied is when the directive took effect at this AP.
	Applied time.Time
	// Expires is the countermeasure's lease end (zero = no lease): past
	// it the AP treats the countermeasure as cleared even if the
	// release directive never arrived — the directive's TTL backstop,
	// set from the controller policy's QuarantineTTL.
	Expires time.Time
}

// expired reports whether the countermeasure's lease has lapsed.
func (cm Countermeasure) expired(now time.Time) bool {
	return !cm.Expires.IsZero() && now.After(cm.Expires)
}

// countermeasures is the AP's active-countermeasure table. The zero
// value is usable: ProcessFrame only reads, ApplyDirective creates the
// map lazily.
type countermeasures struct {
	mu sync.RWMutex
	m  map[wifi.Addr]Countermeasure
	// serveBearingDeg tracks the bearing of the last accepted
	// legitimate frame — where the AP's downlink should keep pointing
	// while it nulls a threat.
	serveBearingDeg float64
	serveKnown      bool
	// nextReap amortises the lease sweep: expired entries (whose MACs
	// may never transmit or be directed again — the exact case the
	// lease backstops) are reaped at most once per reapInterval from
	// the write paths, so the table stays O(live countermeasures).
	nextReap time.Time
}

// reapInterval bounds how often the full-table lease sweep runs.
const reapInterval = time.Minute

// reapLocked deletes lease-expired entries when the amortisation timer
// allows. Write lock held.
func (c *countermeasures) reapLocked(now time.Time) {
	if now.Before(c.nextReap) {
		return
	}
	c.nextReap = now.Add(reapInterval)
	for mac, cm := range c.m {
		if cm.expired(now) {
			delete(c.m, mac)
		}
	}
}

// active reports whether mac has a live countermeasure (its frames are
// to be dropped). Lease expiry is checked lazily: a countermeasure
// whose TTL lapsed counts as cleared, so a lost release directive
// cannot strand a client (the map entry itself is reaped on the next
// directive for the MAC).
func (c *countermeasures) active(mac wifi.Addr) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	cm, ok := c.m[mac]
	return ok && !cm.expired(time.Now())
}

// noteServeBearing records the bearing of an accepted legitimate frame
// (and, running on every accepted frame, hosts the amortised lease
// reap).
func (c *countermeasures) noteServeBearing(deg float64) {
	now := time.Now()
	c.mu.Lock()
	c.serveBearingDeg, c.serveKnown = deg, true
	c.reapLocked(now)
	c.mu.Unlock()
}

// minNullSepDeg is the smallest serve/null angular separation the
// constrained beamformer is asked to honour: closer than this the two
// steering constraints are nearly colinear (unit gain and a null a
// fraction of a beamwidth apart forces enormous sidelobes), so the
// serve direction is shifted away from the null.
const minNullSepDeg = 15.0

// ApplyDirective applies one controller directive at this AP and
// returns the resulting countermeasure state. ActionAllow clears the
// MAC's entry (the returned countermeasure records the release);
// ActionQuarantine marks the MAC for dropping; ActionNullSteer
// additionally computes null-steer weights toward the directive's
// bearing — derived from the threat's fused position when the
// directive carries one (each AP computes its own bearing to it),
// falling back to the reporting AP's measured bearing. A null-steer
// directive with neither (no position, no valid bearing) is downgraded
// to a plain quarantine: a spatial null must never be aimed at a
// default direction. A positive directive TTL becomes the
// countermeasure's lease (see Countermeasure.Expires).
func (ap *AP) ApplyDirective(d defense.Directive) (Countermeasure, error) {
	c := &ap.measures
	now := time.Now()
	cm := Countermeasure{MAC: d.MAC, Action: d.Action, Applied: now}
	if d.Action == defense.ActionAllow {
		c.mu.Lock()
		delete(c.m, d.MAC)
		c.mu.Unlock()
		return cm, nil
	}
	if d.TTL > 0 {
		cm.Expires = now.Add(d.TTL)
	}
	if d.Action == defense.ActionNullSteer && !d.HasPos && !d.HasBearing {
		cm.Action = defense.ActionQuarantine
	}
	if cm.Action == defense.ActionNullSteer {
		nullDeg := d.BearingDeg
		if d.HasPos {
			nullDeg = geom.BearingDeg(ap.FE.Pos, d.Pos)
		}
		c.mu.RLock()
		serveDeg, known := c.serveBearingDeg, c.serveKnown
		c.mu.RUnlock()
		if !known || geom.AngularDistDeg(serveDeg, nullDeg) < minNullSepDeg {
			// No (usable) serve direction: keep serving broadside
			// relative to the threat.
			serveDeg = math.Mod(nullDeg+90, 360)
		}
		w, err := beamform.SteerWithNull(ap.FE.Array, serveDeg, nullDeg)
		if err != nil {
			return Countermeasure{}, err
		}
		cm.NullBearingDeg = nullDeg
		cm.ServeBearingDeg = serveDeg
		cm.Weights = w
	}
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[wifi.Addr]Countermeasure)
	}
	c.m[d.MAC] = cm
	c.reapLocked(now)
	c.mu.Unlock()
	return cm, nil
}

// CountermeasureFor returns the active (unexpired) countermeasure for
// a MAC.
func (ap *AP) CountermeasureFor(mac wifi.Addr) (Countermeasure, bool) {
	c := &ap.measures
	c.mu.RLock()
	defer c.mu.RUnlock()
	cm, ok := c.m[mac]
	if !ok || cm.expired(time.Now()) {
		return Countermeasure{}, false
	}
	return cm, true
}

// Countermeasures snapshots every active (unexpired) countermeasure at
// this AP.
func (ap *AP) Countermeasures() []Countermeasure {
	c := &ap.measures
	c.mu.RLock()
	defer c.mu.RUnlock()
	now := time.Now()
	out := make([]Countermeasure, 0, len(c.m))
	for _, cm := range c.m {
		if !cm.expired(now) {
			out = append(out, cm)
		}
	}
	return out
}

// ServeBearing returns the bearing of the last accepted legitimate
// frame, when one exists — the direction null-steer weights protect.
func (ap *AP) ServeBearing() (float64, bool) {
	c := &ap.measures
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.serveBearingDeg, c.serveKnown
}
