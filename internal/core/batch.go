package core

import (
	"context"
	"runtime"
	"sync"

	"secureangle/internal/geom"
	"secureangle/internal/ofdm"
	"secureangle/internal/radio"
	"secureangle/internal/signature"
	"secureangle/internal/testbed"
	"secureangle/internal/wifi"
)

// BatchItem is one transmission for ObserveBatch: a transmitter position
// and the padded baseband it sends.
type BatchItem struct {
	TX       geom.Point
	Baseband []complex128
}

// BatchResult pairs the pipeline output for one batch item with its error;
// exactly one of the two is set. Per-item errors (a blocked transmitter,
// an undetected packet) do not fail the rest of the batch; each error is
// a *PipelineError wrapping the taxonomy sentinels, so callers dispatch
// with errors.Is(r.Err, ErrNotDetected) and friends.
type BatchResult struct {
	Report *Report
	Err    error
}

// workers resolves the estimation pool bound.
func (ap *AP) workers(items int) int {
	w := ap.cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > items {
		w = items
	}
	if w < 1 {
		w = 1
	}
	return w
}

// runPool fans fn over item indices on a bounded worker pool.
func runPool(n, workers int, fn func(i int)) {
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(start int) {
			defer wg.Done()
			for i := start; i < n; i += workers {
				fn(i)
			}
		}(w)
	}
	wg.Wait()
}

// ObserveBatch is ObserveBatchContext with a background context.
func (ap *AP) ObserveBatch(items []BatchItem) []BatchResult {
	return ap.ObserveBatchContext(context.Background(), items)
}

// ObserveBatchContext receives a batch of transmissions and runs the
// estimation pipeline — detect, calibrate, covariance,
// eigendecomposition, manifold scan — on a bounded worker pool
// (Config.Workers, default GOMAXPROCS). Cancelling ctx stops the pool
// from dispatching further items; every item not yet started gets a
// StageDispatch *PipelineError wrapping ctx.Err(), while items already
// in flight finish normally. The slice is always fully populated.
//
// The order-sensitive half of reception (ray tracing through the shared
// environment, forking the front end's noise stream) runs serially in
// item order, so a batch draws a deterministic set of channel and noise
// realisations; everything downstream runs concurrently. Results align
// with items by index. Note the per-item noise streams are forked rather
// than drawn from the front end's sequential stream, so a batch's noise
// differs sample-for-sample from the same transmissions pushed one at a
// time through Observe (both are draws from the same model).
func (ap *AP) ObserveBatchContext(ctx context.Context, items []BatchItem) []BatchResult {
	out := make([]BatchResult, len(items))
	prep := make([]*radio.PreparedReceive, len(items))

	ap.prepMu.Lock()
	for i, it := range items {
		if err := ctx.Err(); err != nil {
			out[i].Err = ap.stageErr(StageDispatch, err)
			continue
		}
		p, err := ap.FE.PrepareReceive(ap.Env, it.TX, len(it.Baseband))
		if err != nil {
			out[i].Err = ap.stageErr(StageReceive, err)
			continue
		}
		prep[i] = p
	}
	ap.prepMu.Unlock()

	runPool(len(items), ap.workers(len(items)), func(i int) {
		if prep[i] == nil {
			return
		}
		if err := ctx.Err(); err != nil {
			out[i].Err = ap.stageErr(StageDispatch, err)
			return
		}
		sc := ap.getScratch()
		defer ap.putScratch(sc)
		streams, err := ap.FE.ReceivePreparedArena(prep[i], items[i].Baseband, sc.arena)
		if err != nil {
			out[i].Err = ap.stageErr(StageReceive, err)
			return
		}
		out[i].Report, out[i].Err = ap.processScratch(streams, sc)
	})
	return out
}

// ProcessStreamsBatch is ProcessStreamsBatchContext with a background
// context.
func (ap *AP) ProcessStreamsBatch(streamSets [][][]complex128) []BatchResult {
	return ap.ProcessStreamsBatchContext(context.Background(), streamSets)
}

// ProcessStreamsBatchContext runs the estimation pipeline on raw
// per-antenna captures (each element as for ProcessStreams) concurrently
// on the bounded worker pool. The streams are modified in place. Results
// align with streamSets by index, and each result is identical to a
// serial ProcessStreams call on the same capture. Cancelling ctx stops
// dispatching; undispatched items get StageDispatch errors.
func (ap *AP) ProcessStreamsBatchContext(ctx context.Context, streamSets [][][]complex128) []BatchResult {
	out := make([]BatchResult, len(streamSets))
	runPool(len(streamSets), ap.workers(len(streamSets)), func(i int) {
		if err := ctx.Err(); err != nil {
			out[i].Err = ap.stageErr(StageDispatch, err)
			return
		}
		out[i].Report, out[i].Err = ap.process(streamSets[i])
	})
	return out
}

// FrameBatchItem is one MAC frame transmission for ProcessFrameBatch.
type FrameBatchItem struct {
	TX    geom.Point
	Frame *wifi.Frame
	Mod   ofdm.Modulation
}

// FrameBatchResult pairs a spoof-checked FrameReport with its error.
type FrameBatchResult struct {
	Report *FrameReport
	Err    error
}

// ProcessFrameBatch is ProcessFrameBatchContext with a background
// context.
func (ap *AP) ProcessFrameBatch(items []FrameBatchItem) []FrameBatchResult {
	return ap.ProcessFrameBatchContext(context.Background(), items)
}

// ProcessFrameBatchContext is the batch form of ProcessFrame:
// transmissions are synthesised and estimated as in ObserveBatchContext,
// then the spoof checks run serially in item order against the sharded
// registry, so enrollment and accept/flag decisions are deterministic
// for a given batch. Pipeline errors carry the item's transmitter
// address; cancellation marks undispatched items with StageDispatch
// errors and skips their spoof checks (a cancelled batch must not
// enroll).
func (ap *AP) ProcessFrameBatchContext(ctx context.Context, items []FrameBatchItem) []FrameBatchResult {
	out := make([]FrameBatchResult, len(items))
	obs := make([]BatchItem, len(items))
	for i, it := range items {
		bb, err := testbed.FrameBaseband(it.Frame, it.Mod)
		if err != nil {
			out[i].Err = err
			continue
		}
		obs[i] = BatchItem{TX: it.TX, Baseband: bb}
	}
	reps := ap.ObserveBatchContext(ctx, obs)
	for i, r := range reps {
		if out[i].Err != nil {
			continue
		}
		if r.Err != nil {
			out[i].Err = withMAC(r.Err, items[i].Frame.Addr2)
			continue
		}
		if err := ctx.Err(); err != nil {
			out[i].Err = &PipelineError{Stage: StageDispatch, AP: ap.Name, MAC: items[i].Frame.Addr2, Err: err}
			continue
		}
		fr := &FrameReport{Report: *r.Report, MAC: items[i].Frame.Addr2}
		v, enrolled, err := ap.registry.observe(items[i].Frame.Addr2, r.Report.Sig, ap.cfg.Policy)
		if err != nil {
			out[i].Err = &PipelineError{Stage: StageSpoofCheck, AP: ap.Name, MAC: items[i].Frame.Addr2, Err: err}
			continue
		}
		fr.Decision = v.Decision
		fr.Distance = v.Distance
		fr.Threshold = v.Threshold
		fr.Enrolled = enrolled
		fr.Quarantined = ap.measures.active(items[i].Frame.Addr2)
		if v.Decision == signature.Accept && !fr.Quarantined {
			ap.measures.noteServeBearing(r.Report.BearingDeg)
		}
		out[i].Report = fr
	}
	return out
}
