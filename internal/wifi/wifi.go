// Package wifi implements the minimal slice of the 802.11 MAC that
// SecureAngle's applications consume: addresses, data/management frame
// headers, CRC-32 frame check sequences, and (de)serialisation. The
// spoofing-prevention application keys its signature registry on the
// transmitter address carried here.
package wifi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Addr is a 48-bit MAC address.
type Addr [6]byte

// Hash returns the FNV-1a hash of the address — the shared shard-
// selection hash of core's signature registry and the controller's
// fusion engine.
func (a Addr) Hash() uint32 {
	h := uint32(2166136261)
	for _, b := range a {
		h ^= uint32(b)
		h *= 16777619
	}
	return h
}

// ParseAddr parses the colon-separated hex form "aa:bb:cc:dd:ee:ff".
func ParseAddr(s string) (Addr, error) {
	var a Addr
	if len(s) != 17 {
		return a, fmt.Errorf("wifi: bad MAC address %q", s)
	}
	for i := 0; i < 6; i++ {
		var b byte
		if _, err := fmt.Sscanf(s[i*3:i*3+2], "%02x", &b); err != nil {
			return a, fmt.Errorf("wifi: bad MAC address %q: %v", s, err)
		}
		a[i] = b
		if i < 5 && s[i*3+2] != ':' {
			return a, fmt.Errorf("wifi: bad MAC address %q", s)
		}
	}
	return a, nil
}

// MustParseAddr is ParseAddr that panics on error, for test fixtures.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// String renders the address in the canonical colon form.
func (a Addr) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", a[0], a[1], a[2], a[3], a[4], a[5])
}

const hexDigits = "0123456789abcdef"

// AppendText appends the colon-separated hex form to dst and returns
// the extended slice — the allocation-free formatter for hot-path
// logging and span rendering (String allocates via fmt).
func (a Addr) AppendText(dst []byte) []byte {
	for i, b := range a {
		if i > 0 {
			dst = append(dst, ':')
		}
		dst = append(dst, hexDigits[b>>4], hexDigits[b&0xf])
	}
	return dst
}

// Broadcast is the all-ones address.
var Broadcast = Addr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// FrameType is the 802.11 frame type.
type FrameType byte

const (
	// Management frames (type 00).
	Management FrameType = 0
	// Control frames (type 01).
	Control FrameType = 1
	// Data frames (type 10).
	Data FrameType = 2
)

// String names the frame type.
func (t FrameType) String() string {
	switch t {
	case Management:
		return "management"
	case Control:
		return "control"
	case Data:
		return "data"
	default:
		return fmt.Sprintf("FrameType(%d)", byte(t))
	}
}

// Frame is a simplified 802.11 frame: frame control essentials, the three
// addresses of an infrastructure BSS frame, a sequence number, and a
// payload, protected by a CRC-32 FCS on the wire.
type Frame struct {
	Type    FrameType
	Subtype byte
	ToDS    bool
	FromDS  bool
	Retry   bool
	Addr1   Addr // receiver
	Addr2   Addr // transmitter — the address SecureAngle fingerprints
	Addr3   Addr // BSSID
	Seq     uint16
	Payload []byte
}

// headerLen is frame control (2) + duration (2) + 3 addresses (18) +
// seq control (2).
const headerLen = 2 + 2 + 18 + 2

// fcsLen is the CRC-32 trailer length.
const fcsLen = 4

// ErrBadFCS reports a frame whose CRC-32 check failed.
var ErrBadFCS = errors.New("wifi: FCS mismatch")

// ErrTruncated reports a byte slice too short to hold a frame.
var ErrTruncated = errors.New("wifi: truncated frame")

// Marshal serialises the frame including its FCS.
func (f *Frame) Marshal() []byte {
	return f.AppendMarshal(nil)
}

// AppendMarshal serialises the frame including its FCS, appending to dst
// (which may be nil, or a scratch buffer for an allocation-free marshal)
// and returning the extended slice.
func (f *Frame) AppendMarshal(dst []byte) []byte {
	n := headerLen + len(f.Payload) + fcsLen
	off := len(dst)
	if cap(dst)-off >= n {
		dst = dst[:off+n]
		clear(dst[off:])
	} else {
		dst = append(dst, make([]byte, n)...)
	}
	out := dst[off:]
	fc := uint16(f.Type&0x3) << 2
	fc |= uint16(f.Subtype&0xf) << 4
	if f.ToDS {
		fc |= 1 << 8
	}
	if f.FromDS {
		fc |= 1 << 9
	}
	if f.Retry {
		fc |= 1 << 11
	}
	binary.LittleEndian.PutUint16(out[0:2], fc)
	// Duration left zero.
	copy(out[4:10], f.Addr1[:])
	copy(out[10:16], f.Addr2[:])
	copy(out[16:22], f.Addr3[:])
	binary.LittleEndian.PutUint16(out[22:24], f.Seq<<4)
	copy(out[headerLen:], f.Payload)
	fcs := crc32.ChecksumIEEE(out[:headerLen+len(f.Payload)])
	binary.LittleEndian.PutUint32(out[headerLen+len(f.Payload):], fcs)
	return dst
}

// Unmarshal parses a frame and verifies its FCS.
func Unmarshal(b []byte) (*Frame, error) {
	if len(b) < headerLen+fcsLen {
		return nil, ErrTruncated
	}
	body := b[:len(b)-fcsLen]
	want := binary.LittleEndian.Uint32(b[len(b)-fcsLen:])
	if crc32.ChecksumIEEE(body) != want {
		return nil, ErrBadFCS
	}
	fc := binary.LittleEndian.Uint16(b[0:2])
	f := &Frame{
		Type:    FrameType((fc >> 2) & 0x3),
		Subtype: byte((fc >> 4) & 0xf),
		ToDS:    fc&(1<<8) != 0,
		FromDS:  fc&(1<<9) != 0,
		Retry:   fc&(1<<11) != 0,
		Seq:     binary.LittleEndian.Uint16(b[22:24]) >> 4,
	}
	copy(f.Addr1[:], b[4:10])
	copy(f.Addr2[:], b[10:16])
	copy(f.Addr3[:], b[16:22])
	f.Payload = append([]byte(nil), body[headerLen:]...)
	return f, nil
}

// Scrambler is the 802.11 frame-synchronous scrambler, polynomial
// x^7 + x^4 + 1, used to whiten payload bits so OFDM symbols have no
// pathological structure.
type Scrambler struct {
	state byte // 7-bit state
}

// NewScrambler returns a scrambler with the given nonzero 7-bit seed.
func NewScrambler(seed byte) *Scrambler {
	if seed&0x7f == 0 {
		seed = 0x5d // standard-ish nonzero default
	}
	return &Scrambler{state: seed & 0x7f}
}

// Apply scrambles (or descrambles — the operation is an involution when
// started from the same seed) the bits in place and returns them.
func (s *Scrambler) Apply(bits []byte) []byte {
	for i := range bits {
		// Feedback = x7 xor x4 (bits 6 and 3 of state).
		fb := ((s.state >> 6) ^ (s.state >> 3)) & 1
		s.state = ((s.state << 1) | fb) & 0x7f
		bits[i] ^= fb
	}
	return bits
}
