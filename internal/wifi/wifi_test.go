package wifi

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	a, err := ParseAddr("00:16:ea:12:34:56")
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != "00:16:ea:12:34:56" {
		t.Errorf("round trip = %s", a)
	}
	for _, bad := range []string{"", "0016ea123456", "00:16:ea:12:34", "zz:16:ea:12:34:56", "00-16-ea-12-34-56"} {
		if _, err := ParseAddr(bad); err == nil {
			t.Errorf("ParseAddr(%q) accepted", bad)
		}
	}
}

func TestMustParseAddrPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseAddr did not panic")
		}
	}()
	MustParseAddr("bogus")
}

func TestBroadcast(t *testing.T) {
	if Broadcast.String() != "ff:ff:ff:ff:ff:ff" {
		t.Errorf("Broadcast = %s", Broadcast)
	}
}

func TestFrameTypeString(t *testing.T) {
	if Management.String() != "management" || Control.String() != "control" || Data.String() != "data" {
		t.Error("FrameType strings")
	}
	if FrameType(7).String() == "" {
		t.Error("unknown type should render")
	}
}

func testFrame() *Frame {
	return &Frame{
		Type:    Data,
		Subtype: 0,
		ToDS:    true,
		Retry:   true,
		Addr1:   MustParseAddr("00:16:ea:aa:aa:01"),
		Addr2:   MustParseAddr("00:16:ea:bb:bb:02"),
		Addr3:   MustParseAddr("00:16:ea:cc:cc:03"),
		Seq:     1234,
		Payload: []byte("hello secureangle"),
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	f := testFrame()
	b := f.Marshal()
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != f.Type || got.Subtype != f.Subtype || got.ToDS != f.ToDS ||
		got.FromDS != f.FromDS || got.Retry != f.Retry || got.Seq != f.Seq {
		t.Errorf("header mismatch: %+v vs %+v", got, f)
	}
	if got.Addr1 != f.Addr1 || got.Addr2 != f.Addr2 || got.Addr3 != f.Addr3 {
		t.Error("addresses mismatch")
	}
	if !bytes.Equal(got.Payload, f.Payload) {
		t.Error("payload mismatch")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(a1, a2, a3 [6]byte, seq uint16, payload []byte) bool {
		fr := &Frame{
			Type: Data, Addr1: Addr(a1), Addr2: Addr(a2), Addr3: Addr(a3),
			Seq: seq & 0xfff, Payload: payload,
		}
		got, err := Unmarshal(fr.Marshal())
		if err != nil {
			return false
		}
		return got.Addr2 == fr.Addr2 && got.Seq == fr.Seq && bytes.Equal(got.Payload, fr.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalDetectsCorruption(t *testing.T) {
	b := testFrame().Marshal()
	for _, idx := range []int{0, 5, 12, len(b) - 5, len(b) - 1} {
		c := append([]byte(nil), b...)
		c[idx] ^= 0x40
		if _, err := Unmarshal(c); err != ErrBadFCS {
			t.Errorf("corruption at %d: err = %v, want ErrBadFCS", idx, err)
		}
	}
}

func TestUnmarshalTruncated(t *testing.T) {
	if _, err := Unmarshal(make([]byte, 10)); err != ErrTruncated {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

func TestSpoofedFrameCarriesForgedAddress(t *testing.T) {
	// The attack SecureAngle defends against: a frame with a forged Addr2
	// is valid at the MAC layer — the FCS says nothing about identity.
	legit := testFrame()
	spoof := testFrame()
	spoof.Addr2 = legit.Addr2 // attacker copies the victim's MAC
	got, err := Unmarshal(spoof.Marshal())
	if err != nil {
		t.Fatalf("spoofed frame rejected by MAC layer: %v", err)
	}
	if got.Addr2 != legit.Addr2 {
		t.Error("forged address not preserved")
	}
}

func TestScramblerInvolution(t *testing.T) {
	f := func(seed byte, data []byte) bool {
		bits := make([]byte, len(data))
		for i, d := range data {
			bits[i] = d & 1
		}
		orig := append([]byte(nil), bits...)
		NewScrambler(seed).Apply(bits)
		NewScrambler(seed).Apply(bits)
		return bytes.Equal(bits, orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestScramblerWhitens(t *testing.T) {
	bits := make([]byte, 1000) // all zeros
	NewScrambler(0x5d).Apply(bits)
	ones := 0
	for _, b := range bits {
		if b == 1 {
			ones++
		}
	}
	// A maximal-length 7-bit LFSR is balanced to within ~1/127.
	if ones < 400 || ones > 600 {
		t.Errorf("scrambler output unbalanced: %d ones of 1000", ones)
	}
}

func TestScramblerZeroSeedSubstituted(t *testing.T) {
	s := NewScrambler(0)
	bits := make([]byte, 8)
	s.Apply(bits)
	var any byte
	for _, b := range bits {
		any |= b
	}
	if any == 0 {
		t.Error("zero seed left scrambler degenerate")
	}
}
