// Package partition owns N MAC-range partitions of the controller
// core. Each partition holds its own fusion engine and defense engine
// (and, at the controller layer, its own journal stream); the Set fans
// queries in across all partitions so the Controller facade keeps its
// monolithic API.
//
// Partitioning is by MAC range, not hash: partition i owns the MACs
// whose 48-bit big-endian value falls in [i*2^48/N, (i+1)*2^48/N).
// Range ownership keeps journal streams self-describing (a segment's
// partition index pins the MAC range it can contain) and makes
// repartitioning a contiguous split/merge rather than a full reshuffle.
// Because fusion and defense state is strictly per-MAC, a partitioned
// set is decision-identical to a monolithic engine pair over any input
// stream.
package partition

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"secureangle/internal/defense"
	"secureangle/internal/fusion"
	"secureangle/internal/wifi"
)

// MaxPartitions bounds the fan-out; journal streams and the
// replication wire format carry the partition index as a uint16.
const MaxPartitions = 1024

// Part is one MAC-range partition: a fusion engine and a defense
// engine sharing the range.
type Part struct {
	Fusion  *fusion.Engine
	Defense *defense.Engine
}

// Set is a fixed-size ordered collection of partitions. All methods
// are safe for concurrent use (the engines themselves are sharded and
// concurrent); Close is one-shot.
type Set struct {
	parts []Part
}

// New builds an n-partition set. fcfg and dcfg produce the per-
// partition engine configs (called with the partition index, so
// callers can label Logf output or divide capacity caps). Engines are
// constructed in partition order; on error every engine already built
// is closed before returning.
func New(n int, fcfg func(p int) fusion.Config, dcfg func(p int) defense.Config) (*Set, error) {
	if n <= 0 {
		return nil, fmt.Errorf("partition: count %d, want >= 1", n)
	}
	if n > MaxPartitions {
		return nil, fmt.Errorf("partition: count %d exceeds max %d", n, MaxPartitions)
	}
	s := &Set{parts: make([]Part, n)}
	for i := range s.parts {
		fe, err := fusion.New(fcfg(i))
		if err != nil {
			s.closeFirst(i)
			return nil, fmt.Errorf("partition %d: fusion: %w", i, err)
		}
		de, err := defense.New(dcfg(i))
		if err != nil {
			fe.Close()
			s.closeFirst(i)
			return nil, fmt.Errorf("partition %d: defense: %w", i, err)
		}
		s.parts[i] = Part{Fusion: fe, Defense: de}
	}
	return s, nil
}

// MustNew is New, panicking on error (mirrors fusion.MustNew).
func MustNew(n int, fcfg func(p int) fusion.Config, dcfg func(p int) defense.Config) *Set {
	s, err := New(n, fcfg, dcfg)
	if err != nil {
		panic(err)
	}
	return s
}

// closeFirst closes partitions [0, i) after a mid-construction error.
func (s *Set) closeFirst(i int) {
	for k := 0; k < i; k++ {
		s.parts[k].Fusion.Close()
		s.parts[k].Defense.Close()
	}
}

// N returns the partition count.
func (s *Set) N() int { return len(s.parts) }

// At returns partition i.
func (s *Set) At(i int) Part { return s.parts[i] }

// IndexFor maps a MAC to its owning partition: the top bits of the
// 48-bit big-endian MAC value select a contiguous range.
func (s *Set) IndexFor(mac wifi.Addr) int {
	return IndexFor(mac, len(s.parts))
}

// IndexFor maps a MAC to one of n contiguous ranges covering the
// 48-bit MAC space. n must be in [1, MaxPartitions].
func IndexFor(mac wifi.Addr, n int) int {
	v := uint64(mac[0])<<40 | uint64(mac[1])<<32 | uint64(mac[2])<<24 |
		uint64(mac[3])<<16 | uint64(mac[4])<<8 | uint64(mac[5])
	return int(v * uint64(n) >> 48)
}

// For returns the partition owning mac.
func (s *Set) For(mac wifi.Addr) Part { return s.parts[s.IndexFor(mac)] }

// Ingest routes a bearing to its MAC's partition.
func (s *Set) Ingest(b fusion.Bearing) { s.For(b.MAC).Fusion.Ingest(b) }

// setBatchScratch is the pooled grouping state one IngestBatch call
// borrows: the partition-grouped reordering of the batch.
type setBatchScratch struct {
	partOf  []int32
	counts  []int32
	order   []int32
	grouped []fusion.Bearing
}

var setBatchPool = sync.Pool{New: func() any { return &setBatchScratch{} }}

// IngestBatch routes a slice of bearings, grouping them by partition
// index once so each touched partition's engine takes its shard locks
// once per batch (fusion.Engine.IngestBatch) instead of once per
// bearing. Per-MAC input order is preserved, so the decisions are
// exactly those of len(bs) serial Ingest calls; they are delivered
// outside all engine locks, grouped by partition and input-ordered
// within each partition. emit, when non-nil, receives each decision
// with the input index of the bearing that completed it and overrides
// the engines' configured Emit for this batch.
func (s *Set) IngestBatch(bs []fusion.Bearing, emit fusion.BatchEmit) {
	if len(bs) == 0 {
		return
	}
	if len(s.parts) == 1 {
		if emit == nil {
			s.parts[0].Fusion.IngestBatch(bs, nil)
			return
		}
		s.parts[0].Fusion.IngestBatch(bs, emit)
		return
	}
	n := int32(len(s.parts))
	sc := setBatchPool.Get().(*setBatchScratch)
	if cap(sc.partOf) < len(bs) {
		sc.partOf = make([]int32, len(bs))
		sc.order = make([]int32, len(bs))
		sc.grouped = make([]fusion.Bearing, len(bs))
	}
	if cap(sc.counts) < int(n)+1 {
		sc.counts = make([]int32, n+1)
	}
	partOf, order := sc.partOf[:len(bs)], sc.order[:len(bs)]
	grouped, counts := sc.grouped[:len(bs)], sc.counts[:n+1]
	for i := range counts {
		counts[i] = 0
	}
	for i := range bs {
		p := int32(IndexFor(bs[i].MAC, int(n)))
		partOf[i] = p
		counts[p+1]++
	}
	for p := int32(0); p < n; p++ {
		counts[p+1] += counts[p]
	}
	next := counts[:n]
	for i := range bs {
		p := partOf[i]
		order[next[p]] = int32(i)
		grouped[next[p]] = bs[i]
		next[p]++
	}
	start := int32(0)
	for p := int32(0); p < n; p++ {
		end := counts[p] // advanced to the run's end by the scatter
		if end == start {
			continue
		}
		run, runOrder := grouped[start:end], order[start:end]
		if emit == nil {
			s.parts[p].Fusion.IngestBatch(run, nil)
		} else {
			s.parts[p].Fusion.IngestBatch(run, func(i int, d fusion.Decision, t fusion.TrackState, tracked bool) {
				emit(int(runOrder[i]), d, t, tracked)
			})
		}
		start = end
	}
	clear(grouped) // drop Bearing string refs before pooling
	setBatchPool.Put(sc)
}

// ReportSpoof routes a spoof verdict to its MAC's partition.
func (s *Set) ReportSpoof(v defense.SpoofVerdict) { s.For(v.MAC).Defense.ReportSpoof(v) }

// ReportFence routes a fence verdict to its MAC's partition.
func (s *Set) ReportFence(v defense.FenceVerdict) { s.For(v.MAC).Defense.ReportFence(v) }

// ReportTrack routes a track verdict to its MAC's partition.
func (s *Set) ReportTrack(v defense.TrackVerdict) { s.For(v.MAC).Defense.ReportTrack(v) }

// Release releases mac's countermeasure in its partition.
func (s *Set) Release(mac wifi.Addr) bool { return s.For(mac).Defense.Release(mac) }

// Track returns mac's track state from its partition.
func (s *Set) Track(mac wifi.Addr) (fusion.TrackState, bool) {
	return s.For(mac).Fusion.Track(mac)
}

// State returns mac's threat state from its partition.
func (s *Set) State(mac wifi.Addr) (defense.ClientThreat, bool) {
	return s.For(mac).Defense.State(mac)
}

// Stats sums fusion stats across partitions.
func (s *Set) Stats() fusion.Stats {
	var sum fusion.Stats
	for i := range s.parts {
		st := s.parts[i].Fusion.Stats()
		sum.Ingested += st.Ingested
		sum.Decisions += st.Decisions
		sum.DupDropped += st.DupDropped
		sum.PendingExpired += st.PendingExpired
		sum.PendingEvicted += st.PendingEvicted
		sum.ClientsEvicted += st.ClientsEvicted
		sum.ForcedTimeouts += st.ForcedTimeouts
		sum.FuseErrors += st.FuseErrors
	}
	return sum
}

// DefenseStats sums defense stats across partitions.
func (s *Set) DefenseStats() defense.Stats {
	var sum defense.Stats
	for i := range s.parts {
		st := s.parts[i].Defense.Stats()
		sum.SpoofVerdicts += st.SpoofVerdicts
		sum.FenceVerdicts += st.FenceVerdicts
		sum.TrackVerdicts += st.TrackVerdicts
		sum.Quarantines += st.Quarantines
		sum.NullSteers += st.NullSteers
		sum.Releases += st.Releases
		sum.DecayReleases += st.DecayReleases
		sum.TTLReleases += st.TTLReleases
		sum.OperatorReleases += st.OperatorReleases
		sum.EvictedReleases += st.EvictedReleases
		sum.SpeedFlags += st.SpeedFlags
		sum.Evicted += st.Evicted
		sum.Directives += st.Directives
	}
	return sum
}

// PartitionStats returns the per-partition fusion stats in partition
// order — the per-partition analogue of fusion.Engine.ShardStats.
func (s *Set) PartitionStats() []fusion.Stats {
	out := make([]fusion.Stats, len(s.parts))
	for i := range s.parts {
		out[i] = s.parts[i].Fusion.Stats()
	}
	return out
}

// PartitionDefenseStats returns the per-partition defense stats in
// partition order.
func (s *Set) PartitionDefenseStats() []defense.Stats {
	out := make([]defense.Stats, len(s.parts))
	for i := range s.parts {
		out[i] = s.parts[i].Defense.Stats()
	}
	return out
}

// ClientCount sums tracked fusion clients across partitions.
func (s *Set) ClientCount() int {
	n := 0
	for i := range s.parts {
		n += s.parts[i].Fusion.ClientCount()
	}
	return n
}

// PendingCount sums pending fusion transactions across partitions.
func (s *Set) PendingCount() int {
	n := 0
	for i := range s.parts {
		n += s.parts[i].Fusion.PendingCount()
	}
	return n
}

// DefenseClientCount sums tracked threat entries across partitions.
func (s *Set) DefenseClientCount() int {
	n := 0
	for i := range s.parts {
		n += s.parts[i].Defense.ClientCount()
	}
	return n
}

// Snapshot fans in the fusion track snapshot across partitions,
// ordered by MAC for deterministic output.
func (s *Set) Snapshot() []fusion.TrackState {
	var out []fusion.TrackState
	for i := range s.parts {
		out = append(out, s.parts[i].Fusion.Snapshot()...)
	}
	sort.Slice(out, func(i, j int) bool {
		return macLess(out[i].MAC, out[j].MAC)
	})
	return out
}

// Threats fans in the defense threat snapshot across partitions,
// ordered by MAC.
func (s *Set) Threats() []defense.ClientThreat {
	var out []defense.ClientThreat
	for i := range s.parts {
		out = append(out, s.parts[i].Defense.Snapshot()...)
	}
	sortThreats(out)
	return out
}

// Quarantined fans in the quarantined threat entries across
// partitions, ordered by MAC.
func (s *Set) Quarantined() []defense.ClientThreat {
	var out []defense.ClientThreat
	for i := range s.parts {
		out = append(out, s.parts[i].Defense.Quarantined()...)
	}
	sortThreats(out)
	return out
}

// StateCounts sums the defense state census across partitions.
func (s *Set) StateCounts() (allow, monitor, quarantine int) {
	for i := range s.parts {
		a, m, q := s.parts[i].Defense.StateCounts()
		allow += a
		monitor += m
		quarantine += q
	}
	return allow, monitor, quarantine
}

// Sweep drives every partition's coarse sweep with the same instant —
// used by replay and tests; live engines self-tick.
func (s *Set) Sweep(now time.Time) {
	for i := range s.parts {
		s.parts[i].Fusion.Sweep(now)
		s.parts[i].Defense.Sweep(now)
	}
}

// Close shuts every partition down in deterministic order (0..N-1,
// fusion before defense within each). Idempotent per engine.
func (s *Set) Close() {
	for i := range s.parts {
		s.parts[i].Fusion.Close()
		s.parts[i].Defense.Close()
	}
}

func macLess(a, b wifi.Addr) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func sortThreats(ts []defense.ClientThreat) {
	sort.Slice(ts, func(i, j int) bool { return macLess(ts[i].MAC, ts[j].MAC) })
}
