package partition

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"secureangle/internal/defense"
	"secureangle/internal/fusion"
	"secureangle/internal/geom"
	"secureangle/internal/wifi"
)

// testSetFixed builds a Set with a pinned clock so serial and batch
// runs stamp identical decisions.
func testSetFixed(t testing.TB, n int, emit func(fusion.Decision)) *Set {
	t.Helper()
	if emit == nil {
		emit = func(fusion.Decision) {}
	}
	s, err := New(n,
		func(p int) fusion.Config {
			return fusion.Config{
				Fence:        testFence(),
				APCount:      func() int { return 2 },
				TickInterval: time.Hour,
				Clock:        func() time.Time { return time.Unix(1000, 0) },
				Emit:         emit,
			}
		},
		func(p int) defense.Config {
			return defense.Config{
				TickInterval: time.Hour,
				Emit:         func(defense.Directive) {},
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// setWorkload spreads transmissions over every partition of a 4-way
// split, with repeated same-MAC fixes (track-state capture) and
// duplicate reports mixed in.
func setWorkload() []fusion.Bearing {
	ap1, ap2 := geom.Point{X: 0, Y: 0}, geom.Point{X: 24, Y: 0}
	var bs []fusion.Bearing
	targets := []geom.Point{{X: 12, Y: 8}, {X: 5, Y: 4}, {X: 20, Y: 11}}
	for seq := uint64(1); seq <= 5; seq++ {
		for m := 0; m < 16; m++ {
			mac := macFromU48(uint64(m) << 44) // spread across partitions
			target := targets[(int(seq)+m)%len(targets)]
			bs = append(bs,
				fusion.Bearing{AP: "ap1", APPos: ap1, MAC: mac, Seq: seq, Deg: geom.BearingDeg(ap1, target)},
				fusion.Bearing{AP: "ap2", APPos: ap2, MAC: mac, Seq: seq, Deg: geom.BearingDeg(ap2, target)},
			)
			if m%5 == 0 {
				bs = append(bs, fusion.Bearing{AP: "ap1", APPos: ap1, MAC: mac, Seq: seq, Deg: geom.BearingDeg(ap1, target)})
			}
		}
	}
	return bs
}

// TestSetIngestBatchMatchesSerial pins Set.IngestBatch's identity
// claim: any batch sizing yields exactly the serial path's decisions
// (same per-MAC decision sequence, same positions and verdicts), with
// the per-partition engines' counters agreeing too.
func TestSetIngestBatchMatchesSerial(t *testing.T) {
	bs := setWorkload()
	for _, parts := range []int{1, 4} {
		byMAC := func(decs []fusion.Decision) map[wifi.Addr][]fusion.Decision {
			m := make(map[wifi.Addr][]fusion.Decision)
			for _, d := range decs {
				m[d.MAC] = append(m[d.MAC], d)
			}
			return m
		}

		var serial []fusion.Decision
		ss := testSetFixed(t, parts, func(d fusion.Decision) { serial = append(serial, d) })
		for _, b := range bs {
			ss.Ingest(b)
		}
		serialStats := ss.Stats()

		for _, size := range []int{1, 3, 64, len(bs)} {
			var got []fusion.Decision
			sb := testSetFixed(t, parts, nil)
			for start := 0; start < len(bs); start += size {
				end := min(start+size, len(bs))
				sb.IngestBatch(bs[start:end], func(i int, d fusion.Decision, ts fusion.TrackState, tracked bool) {
					if !tracked || ts.Fixes == 0 {
						t.Errorf("parts=%d size=%d: decision for %v carried no track state", parts, size, d.MAC)
					}
					got = append(got, d)
				})
			}
			if sb.Stats() != serialStats {
				t.Errorf("parts=%d size=%d: stats diverged: %+v vs %+v", parts, size, sb.Stats(), serialStats)
			}
			if !reflect.DeepEqual(byMAC(got), byMAC(serial)) {
				t.Errorf("parts=%d size=%d: per-MAC decision streams diverged (%d vs %d decisions)",
					parts, size, len(got), len(serial))
			}
		}
	}
}

// TestSetIngestBatchNilEmit pins the nil-emit fallback: decisions go
// to each engine's configured Emit.
func TestSetIngestBatchNilEmit(t *testing.T) {
	bs := setWorkload()
	count := 0
	s := testSetFixed(t, 4, func(fusion.Decision) { count++ })
	s.IngestBatch(bs, nil)
	if count == 0 {
		t.Fatal("nil emit: no decisions reached the configured Emit")
	}
}

// BenchmarkPartitionIngestBatch is BenchmarkPartitionIngest's batched
// counterpart: the same two-bearings-fuse workload submitted through
// Set.IngestBatch in 64-report batches (the TypeReportBatch frame
// path). The acceptance bar is beating per-report ingest at parts=4
// and parts=16.
func BenchmarkPartitionIngestBatch(b *testing.B) {
	ap1, ap2 := geom.Point{X: 0, Y: 0}, geom.Point{X: 24, Y: 0}
	target := geom.Point{X: 12, Y: 8}
	deg1, deg2 := geom.BearingDeg(ap1, target), geom.BearingDeg(ap2, target)
	const batch = 64 // 32 transmissions, two bearings each
	for _, parts := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("parts=%d", parts), func(b *testing.B) {
			s := benchSet(b, parts)
			// See BenchmarkPartitionIngest: collect the previous
			// sub-bench's dead clients so GC debt does not leak across
			// sub-benchmarks.
			runtime.GC()
			bs := make([]fusion.Bearing, 0, batch)
			var seq uint64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				seq++
				mac := macFromU48(seq << 29)
				bs = append(bs,
					fusion.Bearing{AP: "ap1", APPos: ap1, MAC: mac, Seq: seq, Deg: deg1},
					fusion.Bearing{AP: "ap2", APPos: ap2, MAC: mac, Seq: seq, Deg: deg2},
				)
				if len(bs) == batch {
					s.IngestBatch(bs, nil)
					bs = bs[:0]
				}
			}
		})
	}
}
