package partition

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"secureangle/internal/defense"
	"secureangle/internal/fusion"
	"secureangle/internal/geom"
	"secureangle/internal/locate"
	"secureangle/internal/wifi"
)

func testFence() *locate.Fence {
	return &locate.Fence{Boundary: geom.Rect(0, 0, 24, 16)}
}

func testSet(t testing.TB, n int, emit func(fusion.Decision)) *Set {
	t.Helper()
	if emit == nil {
		emit = func(fusion.Decision) {}
	}
	s, err := New(n,
		func(p int) fusion.Config {
			return fusion.Config{
				Fence:        testFence(),
				APCount:      func() int { return 2 },
				TickInterval: time.Hour,
				Emit:         emit,
			}
		},
		func(p int) defense.Config {
			return defense.Config{
				TickInterval: time.Hour,
				Emit:         func(defense.Directive) {},
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func macFromU48(v uint64) wifi.Addr {
	return wifi.Addr{
		byte(v >> 40), byte(v >> 32), byte(v >> 24),
		byte(v >> 16), byte(v >> 8), byte(v),
	}
}

// TestIndexForProperties pins the range-partitioner contract: indexes
// stay in [0, n), are monotone in the MAC's 48-bit value (range, not
// hash, partitioning), hit both edge partitions at the address-space
// edges, and cover every partition over a uniform spread.
func TestPartitionIndexForProperties(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 16, 255, MaxPartitions} {
		lo, hi := macFromU48(0), macFromU48(1<<48-1)
		if got := IndexFor(lo, n); got != 0 {
			t.Fatalf("n=%d: IndexFor(00:...:00) = %d, want 0", n, got)
		}
		if got := IndexFor(hi, n); got != n-1 {
			t.Fatalf("n=%d: IndexFor(ff:...:ff) = %d, want %d", n, got, n-1)
		}
		seen := make(map[int]bool)
		prev := 0
		const samples = 1 << 12
		for i := 0; i < samples; i++ {
			v := uint64(i) * ((1 << 48) / samples)
			idx := IndexFor(macFromU48(v), n)
			if idx < 0 || idx >= n {
				t.Fatalf("n=%d: IndexFor(%012x) = %d out of range", n, v, idx)
			}
			if idx < prev {
				t.Fatalf("n=%d: index not monotone at %012x: %d after %d", n, v, idx, prev)
			}
			prev = idx
			seen[idx] = true
		}
		if n <= samples && len(seen) != n {
			t.Fatalf("n=%d: uniform spread hit only %d partitions", n, len(seen))
		}
	}
}

// TestSetRoutesByRange verifies Set routing agrees with IndexFor and
// that per-partition state lands where the range says it must.
func TestPartitionSetRoutesByRange(t *testing.T) {
	s := testSet(t, 4, nil)
	macs := []wifi.Addr{
		macFromU48(0),                 // p0
		macFromU48(1 << 46),           // p1
		macFromU48(1 << 47),           // p2
		macFromU48(1<<47 | 1<<46 | 5), // p3
	}
	for i, mac := range macs {
		if got := s.IndexFor(mac); got != i {
			t.Fatalf("IndexFor(%v) = %d, want %d", mac, got, i)
		}
		s.ReportSpoof(defense.SpoofVerdict{AP: "ap1", MAC: mac, Flagged: true, Distance: 0.9, Threshold: 0.12})
		if _, ok := s.At(i).Defense.State(mac); !ok {
			t.Fatalf("verdict for %v did not land in partition %d", mac, i)
		}
		for p := 0; p < s.N(); p++ {
			if p == i {
				continue
			}
			if _, ok := s.At(p).Defense.State(mac); ok {
				t.Fatalf("verdict for %v leaked into partition %d", mac, p)
			}
		}
	}
}

// TestSetFanIn verifies the fan-in accessors: sums match per-partition
// stats, and the merged snapshots are MAC-sorted across partitions.
func TestPartitionSetFanIn(t *testing.T) {
	decisions := 0
	s := testSet(t, 4, func(fusion.Decision) { decisions++ })
	ap1, ap2 := geom.Point{X: 0, Y: 0}, geom.Point{X: 24, Y: 0}
	target := geom.Point{X: 12, Y: 8}
	const clients = 32
	for i := clients - 1; i >= 0; i-- { // reverse order: sorting must be real
		mac := macFromU48(uint64(i) << 43)
		s.Ingest(fusion.Bearing{AP: "ap1", APPos: ap1, MAC: mac, Seq: 1, Deg: geom.BearingDeg(ap1, target)})
		s.Ingest(fusion.Bearing{AP: "ap2", APPos: ap2, MAC: mac, Seq: 1, Deg: geom.BearingDeg(ap2, target)})
	}
	if decisions != clients {
		t.Fatalf("decisions = %d, want %d", decisions, clients)
	}
	sum := s.Stats()
	if sum.Ingested != 2*clients || sum.Decisions != clients {
		t.Fatalf("summed stats = %+v", sum)
	}
	per := s.PartitionStats()
	if len(per) != 4 {
		t.Fatalf("PartitionStats len = %d", len(per))
	}
	var perSum uint64
	active := 0
	for _, st := range per {
		perSum += st.Ingested
		if st.Ingested > 0 {
			active++
		}
	}
	if perSum != sum.Ingested {
		t.Fatalf("per-partition ingested %d != summed %d", perSum, sum.Ingested)
	}
	if active < 2 {
		t.Fatalf("MAC spread exercised only %d partitions", active)
	}
	if got := s.ClientCount(); got != clients {
		t.Fatalf("ClientCount = %d, want %d", got, clients)
	}
	snap := s.Snapshot()
	if len(snap) != clients {
		t.Fatalf("Snapshot len = %d, want %d", len(snap), clients)
	}
	for i := 1; i < len(snap); i++ {
		if !macLess(snap[i-1].MAC, snap[i].MAC) {
			t.Fatalf("Snapshot not MAC-sorted at %d: %v !< %v", i, snap[i-1].MAC, snap[i].MAC)
		}
	}

	// Threat fan-in: quarantine two clients in different partitions.
	for _, v := range []uint64{1 << 40, 1 << 47} {
		s.ReportSpoof(defense.SpoofVerdict{AP: "ap1", MAC: macFromU48(v), Flagged: true, Distance: 0.9, Threshold: 0.12})
	}
	q := s.Quarantined()
	if len(q) != 2 || !macLess(q[0].MAC, q[1].MAC) {
		t.Fatalf("Quarantined = %+v", q)
	}
	_, _, quar := s.StateCounts()
	if quar != 2 {
		t.Fatalf("StateCounts quarantine = %d, want 2", quar)
	}
	if ds := s.DefenseStats(); ds.Quarantines != 2 || ds.SpoofVerdicts != 2 {
		t.Fatalf("DefenseStats = %+v", ds)
	}
}

func TestPartitionNewValidation(t *testing.T) {
	fcfg := func(int) fusion.Config {
		return fusion.Config{Fence: testFence(), TickInterval: time.Hour}
	}
	dcfg := func(int) defense.Config {
		return defense.Config{TickInterval: time.Hour}
	}
	if _, err := New(0, fcfg, dcfg); err == nil {
		t.Error("New(0) succeeded")
	}
	if _, err := New(MaxPartitions+1, fcfg, dcfg); err == nil {
		t.Errorf("New(%d) succeeded", MaxPartitions+1)
	}
	// A mid-construction failure must not leak the partitions already
	// built (verified by the error surfacing the failing index).
	_, err := New(4, func(p int) fusion.Config {
		if p == 2 {
			return fusion.Config{} // nil fence: invalid
		}
		return fcfg(p)
	}, dcfg)
	if err == nil {
		t.Fatal("New with invalid partition-2 config succeeded")
	}
}

// benchSet builds a Set whose TOTAL client capacity is the single-
// engine default regardless of the partition count, by splitting
// MaxClients across partitions. Without this, parts=1 runs at its cap
// (bounded live heap, evicting) while parts=4/16 hold every minted
// client live — and the parts= comparison measures GC mark cost of
// different client populations instead of routing cost.
func benchSet(b *testing.B, parts int) *Set {
	b.Helper()
	s, err := New(parts,
		func(p int) fusion.Config {
			return fusion.Config{
				Fence:        testFence(),
				APCount:      func() int { return 2 },
				TickInterval: time.Hour,
				MaxClients:   fusion.DefaultMaxClients / parts,
				Emit:         func(fusion.Decision) {},
			}
		},
		func(p int) defense.Config {
			return defense.Config{
				TickInterval: time.Hour,
				Emit:         func(defense.Directive) {},
			}
		})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Close)
	return s
}

// BenchmarkPartitionIngest measures the partitioned hot path — MAC
// route + sharded fusion ingest, two bearings fusing per transmission —
// at 1, 4, and 16 partitions. Sweep -cpu to see route fan-out relieve
// engine-level contention.
func BenchmarkPartitionIngest(b *testing.B) {
	ap1, ap2 := geom.Point{X: 0, Y: 0}, geom.Point{X: 24, Y: 0}
	target := geom.Point{X: 12, Y: 8}
	deg1, deg2 := geom.BearingDeg(ap1, target), geom.BearingDeg(ap2, target)
	for _, parts := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("parts=%d", parts), func(b *testing.B) {
			s := benchSet(b, parts)
			// Collect the previous sub-benchmark's dead client population
			// before timing: each op below mints a fresh MAC, so a run
			// leaves a large heap behind, and without this the later
			// sub-benches inherit the earlier ones' GC debt — parts=4
			// measured slower than parts=1 purely by running second.
			runtime.GC()
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				var seq uint64
				for pb.Next() {
					seq++
					mac := macFromU48(seq << 29) // spread the high bits
					s.Ingest(fusion.Bearing{AP: "ap1", APPos: ap1, MAC: mac, Seq: seq, Deg: deg1})
					s.Ingest(fusion.Bearing{AP: "ap2", APPos: ap2, MAC: mac, Seq: seq, Deg: deg2})
				}
			})
		})
	}
}
