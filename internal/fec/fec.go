// Package fec implements 802.11a/g's forward error correction: the
// rate-1/2 K=7 convolutional code (generators 133/171 octal), a
// hard-decision Viterbi decoder, and the per-symbol block interleaver.
// The prototype's traffic was real 802.11 OFDM; with this package the
// simulated packets carry the same coding chain, so bit errors introduced
// by the channel behave the way deployed receivers see them.
package fec

import (
	"errors"
	"fmt"
	"math"
)

const (
	// K is the constraint length.
	K = 7
	// nStates is the trellis size, 2^(K-1).
	nStates = 1 << (K - 1)
	// g0 and g1 are the standard 802.11a generator polynomials (octal
	// 133 and 171 in the newest-bit-at-MSB convention). This encoder's
	// shift register keeps the newest bit at the LSB, so the constants
	// are stored bit-reversed (155, 117 octal); the emitted sequence is
	// bit-exact with the standard.
	g0 = 0o155
	g1 = 0o117
)

// parity returns the parity of x.
func parity(x uint32) byte {
	x ^= x >> 16
	x ^= x >> 8
	x ^= x >> 4
	x ^= x >> 2
	x ^= x >> 1
	return byte(x & 1)
}

// Encode convolutionally encodes bits (values 0/1) at rate 1/2, appending
// K-1 zero tail bits to terminate the trellis. Output length is
// 2*(len(bits)+6).
func Encode(bits []byte) []byte {
	out := make([]byte, 0, 2*(len(bits)+K-1))
	var state uint32 // last K-1 input bits, newest in the LSB side of the register
	emit := func(b byte) {
		reg := state<<1 | uint32(b)
		out = append(out, parity(reg&g0), parity(reg&g1))
		state = reg & (nStates - 1)
	}
	for _, b := range bits {
		emit(b & 1)
	}
	for i := 0; i < K-1; i++ {
		emit(0)
	}
	return out
}

// ErrBadLength reports a coded stream whose length is not usable.
var ErrBadLength = errors.New("fec: coded length must be even and cover the tail")

// Decode runs hard-decision Viterbi over a rate-1/2 coded stream produced
// by Encode (including its tail), returning the information bits.
func Decode(coded []byte) ([]byte, error) {
	if len(coded)%2 != 0 || len(coded) < 2*(K-1) {
		return nil, ErrBadLength
	}
	nSteps := len(coded) / 2
	nInfo := nSteps - (K - 1)
	if nInfo < 0 {
		return nil, ErrBadLength
	}

	const inf = math.MaxInt32 / 2
	metric := make([]int32, nStates)
	next := make([]int32, nStates)
	for i := range metric {
		metric[i] = inf
	}
	metric[0] = 0

	// Survivor bits, one row per step.
	surv := make([][]byte, nSteps)

	// Precompute per-(state, input) outputs.
	var out0 [nStates][2]byte // input 0: coded bit pair
	var out1 [nStates][2]byte
	for s := 0; s < nStates; s++ {
		reg0 := uint32(s) << 1
		out0[s] = [2]byte{parity(reg0 & g0), parity(reg0 & g1)}
		reg1 := reg0 | 1
		out1[s] = [2]byte{parity(reg1 & g0), parity(reg1 & g1)}
	}

	for step := 0; step < nSteps; step++ {
		r0, r1 := coded[2*step]&1, coded[2*step+1]&1
		for i := range next {
			next[i] = inf
		}
		row := make([]byte, nStates)
		for s := 0; s < nStates; s++ {
			if metric[s] >= inf {
				continue
			}
			for _, in := range [2]int{0, 1} {
				var o [2]byte
				if in == 0 {
					o = out0[s]
				} else {
					o = out1[s]
				}
				ns := ((s << 1) | in) & (nStates - 1)
				cost := metric[s]
				if o[0] != r0 {
					cost++
				}
				if o[1] != r1 {
					cost++
				}
				if cost < next[ns] {
					next[ns] = cost
					// Survivor: remember the predecessor's top bit and
					// input; the predecessor is recoverable from ns and
					// the stored dropped bit.
					row[ns] = byte(in) | byte(s>>(K-2))<<1
				}
			}
		}
		copy(metric, next)
		surv[step] = row
	}

	// Terminated trellis ends at state 0.
	state := 0
	decoded := make([]byte, nSteps)
	for step := nSteps - 1; step >= 0; step-- {
		entry := surv[step][state]
		in := entry & 1
		dropped := (entry >> 1) & 1
		decoded[step] = in
		state = (state >> 1) | int(dropped)<<(K-2)
	}
	return decoded[:nInfo], nil
}

// Interleaver is the 802.11a per-OFDM-symbol block interleaver for ncbps
// coded bits per symbol (two permutations; the second depends on the bits
// per subcarrier, nbpsc).
type Interleaver struct {
	ncbps int
	perm  []int // write index for each read index
	inv   []int
}

// NewInterleaver builds the interleaver for ncbps coded bits per symbol
// and nbpsc coded bits per subcarrier.
func NewInterleaver(ncbps, nbpsc int) (*Interleaver, error) {
	if ncbps <= 0 || ncbps%16 != 0 {
		return nil, fmt.Errorf("fec: ncbps %d must be a positive multiple of 16", ncbps)
	}
	s := nbpsc / 2
	if s < 1 {
		s = 1
	}
	il := &Interleaver{ncbps: ncbps, perm: make([]int, ncbps), inv: make([]int, ncbps)}
	for k := 0; k < ncbps; k++ {
		// First permutation: adjacent coded bits onto nonadjacent
		// subcarriers.
		i := (ncbps/16)*(k%16) + k/16
		// Second permutation: adjacent bits alternate between more and
		// less significant constellation bits.
		j := s*(i/s) + (i+ncbps-(16*i)/ncbps)%s
		il.perm[k] = j
		il.inv[j] = k
	}
	return il, nil
}

// Interleave permutes one symbol's worth of bits.
func (il *Interleaver) Interleave(bits []byte) ([]byte, error) {
	if len(bits) != il.ncbps {
		return nil, fmt.Errorf("fec: interleave needs %d bits, got %d", il.ncbps, len(bits))
	}
	out := make([]byte, il.ncbps)
	for k, j := range il.perm {
		out[j] = bits[k]
	}
	return out, nil
}

// Deinterleave inverts Interleave.
func (il *Interleaver) Deinterleave(bits []byte) ([]byte, error) {
	if len(bits) != il.ncbps {
		return nil, fmt.Errorf("fec: deinterleave needs %d bits, got %d", il.ncbps, len(bits))
	}
	out := make([]byte, il.ncbps)
	for j, k := range il.inv {
		out[k] = bits[j]
	}
	return out, nil
}
