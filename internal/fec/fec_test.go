package fec

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func randBits(rng *rand.Rand, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(rng.Intn(2))
	}
	return out
}

func TestEncodeLengthAndRate(t *testing.T) {
	bits := []byte{1, 0, 1, 1}
	coded := Encode(bits)
	if len(coded) != 2*(4+K-1) {
		t.Fatalf("coded length = %d", len(coded))
	}
	for _, b := range coded {
		if b > 1 {
			t.Fatal("non-binary output")
		}
	}
}

func TestEncodeKnownVector(t *testing.T) {
	// All-zero input must give all-zero output (linear code).
	coded := Encode(make([]byte, 10))
	for _, b := range coded {
		if b != 0 {
			t.Fatal("zero input produced nonzero output")
		}
	}
	// A single leading 1 produces the generator impulse response:
	// g0 = 133 octal = 1011011, g1 = 171 octal = 1111001 (MSB first taps;
	// our register shifts left so the response reads off the taps).
	coded = Encode([]byte{1, 0, 0, 0, 0, 0, 0})
	wantPairs := [][2]byte{{1, 1}, {0, 1}, {1, 1}, {1, 1}, {0, 0}, {1, 0}, {1, 1}}
	for i, w := range wantPairs {
		if coded[2*i] != w[0] || coded[2*i+1] != w[1] {
			t.Fatalf("impulse response pair %d = (%d,%d), want %v",
				i, coded[2*i], coded[2*i+1], w)
		}
	}
}

func TestEncodeDecodeCleanRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 7, 48, 96, 500} {
		bits := randBits(rng, n)
		decoded, err := Decode(Encode(bits))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(decoded, bits) {
			t.Fatalf("n=%d: clean round trip failed", n)
		}
	}
}

func TestDecodeCorrectsErrors(t *testing.T) {
	// Rate-1/2 K=7 has free distance 10: it corrects any 4 errors spread
	// through a long block, and far denser random errors in practice.
	rng := rand.New(rand.NewSource(2))
	bits := randBits(rng, 200)
	coded := Encode(bits)

	// 4 isolated errors.
	c := append([]byte(nil), coded...)
	for _, pos := range []int{10, 90, 200, 333} {
		c[pos] ^= 1
	}
	decoded, err := Decode(c)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(decoded, bits) {
		t.Fatal("4 isolated errors not corrected")
	}
}

func TestDecodeUnderRandomBER(t *testing.T) {
	// 3% random BER over a long block: Viterbi should recover everything
	// almost always at this operating point.
	rng := rand.New(rand.NewSource(3))
	fails := 0
	for trial := 0; trial < 10; trial++ {
		bits := randBits(rng, 300)
		coded := Encode(bits)
		for i := range coded {
			if rng.Float64() < 0.03 {
				coded[i] ^= 1
			}
		}
		decoded, err := Decode(coded)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(decoded, bits) {
			fails++
		}
	}
	if fails > 2 {
		t.Errorf("3%% BER: %d/10 blocks failed", fails)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte{1}); err != ErrBadLength {
		t.Errorf("odd length err = %v", err)
	}
	if _, err := Decode([]byte{1, 0}); err != ErrBadLength {
		t.Errorf("too-short err = %v", err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		bits := make([]byte, len(data))
		for i, d := range data {
			bits[i] = d & 1
		}
		decoded, err := Decode(Encode(bits))
		return err == nil && bytes.Equal(decoded, bits)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestInterleaverRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// The four 802.11a modes: BPSK 48, QPSK 96, 16-QAM 192, 64-QAM 288
	// coded bits per symbol.
	for _, mode := range []struct{ ncbps, nbpsc int }{
		{48, 1}, {96, 2}, {192, 4}, {288, 6},
	} {
		il, err := NewInterleaver(mode.ncbps, mode.nbpsc)
		if err != nil {
			t.Fatal(err)
		}
		bits := randBits(rng, mode.ncbps)
		inter, err := il.Interleave(bits)
		if err != nil {
			t.Fatal(err)
		}
		back, err := il.Deinterleave(inter)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back, bits) {
			t.Fatalf("ncbps=%d round trip failed", mode.ncbps)
		}
		// The interleave must actually move bits (not identity).
		if bytes.Equal(inter, bits) && mode.ncbps > 16 {
			t.Fatalf("ncbps=%d interleaver is the identity", mode.ncbps)
		}
	}
}

func TestInterleaverSpreadsBursts(t *testing.T) {
	// A burst of adjacent coded-bit errors must land on non-adjacent
	// positions after deinterleaving — the property that makes Viterbi
	// effective against frequency-selective fades.
	il, err := NewInterleaver(192, 4)
	if err != nil {
		t.Fatal(err)
	}
	burst := make([]byte, 192)
	for i := 60; i < 68; i++ { // 8-bit burst in the interleaved domain
		burst[i] = 1
	}
	spread, err := il.Deinterleave(burst)
	if err != nil {
		t.Fatal(err)
	}
	// Max run length of 1s after deinterleaving must be short.
	run, maxRun := 0, 0
	for _, b := range spread {
		if b == 1 {
			run++
			if run > maxRun {
				maxRun = run
			}
		} else {
			run = 0
		}
	}
	if maxRun > 2 {
		t.Errorf("burst survived deinterleaving with run %d", maxRun)
	}
}

func TestInterleaverRejectsBadSizes(t *testing.T) {
	if _, err := NewInterleaver(50, 2); err == nil {
		t.Error("non-multiple-of-16 accepted")
	}
	if _, err := NewInterleaver(0, 1); err == nil {
		t.Error("zero accepted")
	}
	il, _ := NewInterleaver(48, 1)
	if _, err := il.Interleave(make([]byte, 47)); err == nil {
		t.Error("wrong length accepted")
	}
	if _, err := il.Deinterleave(make([]byte, 49)); err == nil {
		t.Error("wrong length accepted")
	}
}

func BenchmarkViterbiDecode600(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	coded := Encode(randBits(rng, 600))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(coded); err != nil {
			b.Fatal(err)
		}
	}
}
