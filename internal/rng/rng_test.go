package rng

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
	c := New(43)
	same := true
	a2 := New(42)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestForkIndependence(t *testing.T) {
	s := New(1)
	f1 := s.Fork()
	f2 := s.Fork()
	diff := false
	for i := 0; i < 10; i++ {
		if f1.Float64() != f2.Float64() {
			diff = true
		}
	}
	if !diff {
		t.Error("forked sources identical")
	}
}

func TestUniformRange(t *testing.T) {
	s := New(2)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(-3, 7)
		if v < -3 || v >= 7 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestPhaseRange(t *testing.T) {
	s := New(3)
	for i := 0; i < 1000; i++ {
		p := s.Phase()
		if p < 0 || p >= 2*math.Pi {
			t.Fatalf("Phase out of range: %v", p)
		}
	}
}

func TestComplexGaussianMoments(t *testing.T) {
	s := New(4)
	const n = 200000
	const sigma2 = 2.5
	var sum complex128
	var pow float64
	for i := 0; i < n; i++ {
		v := s.ComplexGaussian(sigma2)
		sum += v
		pow += real(v)*real(v) + imag(v)*imag(v)
	}
	mean := cmplx.Abs(sum) / n
	if mean > 0.02 {
		t.Errorf("mean magnitude = %v, want ~0", mean)
	}
	if got := pow / n; math.Abs(got-sigma2) > 0.05 {
		t.Errorf("variance = %v, want %v", got, sigma2)
	}
}

func TestAWGNAndAddAWGN(t *testing.T) {
	s := New(5)
	noise := s.AWGN(10000, 1.0)
	if len(noise) != 10000 {
		t.Fatal("length")
	}
	var pow float64
	for _, v := range noise {
		pow += real(v)*real(v) + imag(v)*imag(v)
	}
	if got := pow / 10000; math.Abs(got-1) > 0.05 {
		t.Errorf("AWGN variance = %v", got)
	}
	x := make([]complex128, 1000)
	s.AddAWGN(x, 4.0)
	var p2 float64
	for _, v := range x {
		p2 += real(v)*real(v) + imag(v)*imag(v)
	}
	if got := p2 / 1000; math.Abs(got-4) > 0.6 {
		t.Errorf("AddAWGN variance = %v", got)
	}
}

func TestRayleighPositiveAndMean(t *testing.T) {
	s := New(6)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		v := s.Rayleigh(2.0)
		if v < 0 {
			t.Fatal("negative Rayleigh sample")
		}
		sum += v
	}
	want := 2.0 * math.Sqrt(math.Pi/2)
	if got := sum / n; math.Abs(got-want) > 0.03 {
		t.Errorf("Rayleigh mean = %v, want %v", got, want)
	}
}

func TestRicianGainPower(t *testing.T) {
	s := New(7)
	const n = 100000
	var pow float64
	for i := 0; i < n; i++ {
		g := s.RicianGain(1.0, 0.5)
		pow += real(g)*real(g) + imag(g)*imag(g)
	}
	// E|g|^2 = losMag^2 + scatter2 = 1.5.
	if got := pow / n; math.Abs(got-1.5) > 0.05 {
		t.Errorf("Rician power = %v, want 1.5", got)
	}
}

func TestOUStationarity(t *testing.T) {
	s := New(8)
	ou := NewOU(s, 5, 2, 10)
	// Advance many correlation times; sample the stationary distribution.
	var sum, sq float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := ou.Advance(5) // half a tau per step
		sum += v
		sq += (v - 5) * (v - 5)
	}
	mean := sum / n
	std := math.Sqrt(sq / n)
	if math.Abs(mean-5) > 0.15 {
		t.Errorf("OU mean = %v, want 5", mean)
	}
	if math.Abs(std-2) > 0.15 {
		t.Errorf("OU std = %v, want 2", std)
	}
}

func TestOUCorrelationDecay(t *testing.T) {
	// Values one tau apart should correlate ~exp(-1); values 100 tau apart
	// should be nearly uncorrelated. Estimate over many restarts.
	const tau = 1.0
	var shortProd, longProd, var0 float64
	const n = 5000
	s := New(9)
	for i := 0; i < n; i++ {
		ou := NewOU(s.Fork(), 0, 1, tau)
		v0 := ou.Value()
		v1 := ou.Advance(tau)
		ou2 := NewOU(s.Fork(), 0, 1, tau)
		w0 := ou2.Value()
		w1 := ou2.Advance(100 * tau)
		shortProd += v0 * v1
		longProd += w0 * w1
		var0 += v0 * v0
	}
	shortCorr := shortProd / var0
	longCorr := longProd / var0
	if math.Abs(shortCorr-math.Exp(-1)) > 0.08 {
		t.Errorf("corr at tau = %v, want %v", shortCorr, math.Exp(-1))
	}
	if math.Abs(longCorr) > 0.08 {
		t.Errorf("corr at 100 tau = %v, want ~0", longCorr)
	}
}

func TestOUAdvanceNegativeDt(t *testing.T) {
	s := New(10)
	ou := NewOU(s, 0, 1, 1)
	v := ou.Value()
	// Negative dt clamps to zero: with a=1 the value must not change by
	// the deterministic part; the noise term is zero since sqrt(1-1)=0.
	if got := ou.Advance(-5); got != v {
		t.Errorf("Advance(-5) changed value: %v -> %v", v, got)
	}
}

func TestIntn(t *testing.T) {
	s := New(11)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := s.Intn(5)
		if v < 0 || v >= 5 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Errorf("Intn coverage: %v", seen)
	}
}

func TestNormal(t *testing.T) {
	s := New(12)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Normal(3, 2)
	}
	if got := sum / n; math.Abs(got-3) > 0.05 {
		t.Errorf("Normal mean = %v", got)
	}
}
