// Package rng wraps math/rand with the random processes the simulator
// needs: complex AWGN, Rayleigh/Rician path gains, random phases, and an
// Ornstein-Uhlenbeck drift process used to model channel coherence time.
// Every consumer takes an explicit *Source so experiments are reproducible
// from a single seed.
package rng

import (
	"math"
	"math/cmplx"
	"math/rand"
)

// Source is a deterministic random source for simulation.
type Source struct {
	r *rand.Rand
}

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	return &Source{r: rand.New(rand.NewSource(seed))}
}

// Fork returns an independent Source derived from this one, so that
// subsystems (noise per antenna, drift per path) consume disjoint streams
// without coupling their sample counts.
func (s *Source) Fork() *Source { return New(s.r.Int63()) }

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Intn returns a uniform integer in [0, n).
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Uniform returns a uniform value in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 { return lo + (hi-lo)*s.r.Float64() }

// Normal returns a Gaussian sample with the given mean and stddev.
func (s *Source) Normal(mean, std float64) float64 { return mean + std*s.r.NormFloat64() }

// Phase returns a uniform phase in [0, 2 pi).
func (s *Source) Phase() float64 { return 2 * math.Pi * s.r.Float64() }

// ComplexGaussian returns a circularly-symmetric complex Gaussian sample
// with total variance sigma2 (variance sigma2/2 per real dimension) — the
// standard AWGN model.
func (s *Source) ComplexGaussian(sigma2 float64) complex128 {
	std := math.Sqrt(sigma2 / 2)
	return complex(std*s.r.NormFloat64(), std*s.r.NormFloat64())
}

// AWGN fills a fresh slice of n complex noise samples of total variance
// sigma2 each.
func (s *Source) AWGN(n int, sigma2 float64) []complex128 {
	out := make([]complex128, n)
	std := math.Sqrt(sigma2 / 2)
	for i := range out {
		out[i] = complex(std*s.r.NormFloat64(), std*s.r.NormFloat64())
	}
	return out
}

// AddAWGN adds complex Gaussian noise of per-sample variance sigma2 to x in
// place.
func (s *Source) AddAWGN(x []complex128, sigma2 float64) {
	std := math.Sqrt(sigma2 / 2)
	for i := range x {
		x[i] += complex(std*s.r.NormFloat64(), std*s.r.NormFloat64())
	}
}

// Rayleigh returns a Rayleigh-distributed magnitude with scale sigma
// (mode sigma; mean sigma*sqrt(pi/2)).
func (s *Source) Rayleigh(sigma float64) float64 {
	return sigma * math.Sqrt(-2*math.Log(1-s.r.Float64()))
}

// RicianGain returns a complex gain with a fixed line-of-sight component of
// magnitude losMag and a scattered complex Gaussian component of total
// variance scatter2 — the standard Rician fading model.
func (s *Source) RicianGain(losMag, scatter2 float64) complex128 {
	return complex(losMag, 0)*cmplx.Rect(1, s.Phase()) + s.ComplexGaussian(scatter2)
}

// OU is a discrete Ornstein-Uhlenbeck process: a mean-reverting random walk
// with stationary standard deviation Sigma and correlation time Tau. The
// channel simulator uses one OU process per reflector degree of freedom so
// that reflection-path gains decorrelate over the configured coherence
// time while remaining stationary — exactly the behaviour Figure 6 probes.
type OU struct {
	Mean  float64 // long-run mean
	Sigma float64 // stationary standard deviation
	Tau   float64 // correlation time, seconds
	x     float64 // current deviation from mean
	src   *Source
}

// NewOU returns an OU process started at its stationary distribution.
func NewOU(src *Source, mean, sigma, tau float64) *OU {
	return &OU{Mean: mean, Sigma: sigma, Tau: tau, x: src.Normal(0, sigma), src: src}
}

// Value returns the current process value.
func (o *OU) Value() float64 { return o.Mean + o.x }

// Advance steps the process forward by dt seconds and returns the new
// value. The exact discretisation x' = a x + sqrt(1-a^2) sigma W with
// a = exp(-dt/tau) keeps the process stationary for any step size, so the
// simulator can jump straight from t=0 to t=1 day (Figure 6's log-spaced
// offsets) without accumulating integration error.
func (o *OU) Advance(dt float64) float64 {
	if dt < 0 {
		dt = 0
	}
	a := math.Exp(-dt / o.Tau)
	o.x = a*o.x + math.Sqrt(1-a*a)*o.src.Normal(0, o.Sigma)
	return o.Value()
}
