// Package env simulates the indoor propagation environment the SecureAngle
// prototype was measured in: walls with reflection and transmission
// coefficients, a cement pillar that blocks or attenuates paths, and a
// geometric ray tracer (the image method) that produces, for any
// transmitter/receiver pair, the set of propagation paths — direct plus
// reflections — with their angles of arrival, delays, and complex gains.
//
// The package also models the temporal dynamics of the channel: reflection
// path gains drift with a configurable coherence time (an
// Ornstein-Uhlenbeck process per wall), while the direct path stays
// stable, which is the behaviour Figure 6 of the paper probes at
// log-spaced intervals out to one day.
package env

import (
	"math"
	"math/cmplx"
	"sort"
	"sync"

	"secureangle/internal/antenna"
	"secureangle/internal/geom"
	"secureangle/internal/rng"
)

// Material describes how a surface interacts with an incident ray, as
// amplitude (not power) coefficients.
type Material struct {
	Reflection   float64 // amplitude reflection coefficient, 0..1
	Transmission float64 // amplitude transmission (through-wall) coefficient, 0..1
}

// Typical materials for the office testbed. Reflection coefficients fold
// in the diffuse-scattering loss of rough painted surfaces (a smooth
// specular model with textbook Fresnel magnitudes lets corner clients'
// wall bounces rival their direct path and produces deep coherent fades
// that real cluttered offices do not exhibit).
var (
	// Drywall partitions: weak reflectors, fairly transparent.
	Drywall = Material{Reflection: 0.28, Transmission: 0.55}
	// Concrete exterior walls / pillar faces: the strongest reflectors,
	// with the 10-15 dB penetration loss measured for real concrete walls
	// at 2.4 GHz (outdoor attackers remain audible — the threat model of
	// section 1 requires it).
	Concrete = Material{Reflection: 0.45, Transmission: 0.25}
	// Glass: modest reflection, mostly transparent.
	Glass = Material{Reflection: 0.25, Transmission: 0.75}
)

// Wall is a planar (in 2-D: linear) reflector/transmitter.
type Wall struct {
	Seg geom.Segment
	Mat Material
	// Name is used in diagnostics and drift bookkeeping.
	Name string
}

// Obstacle is a convex blocking region (the cement pillar). Rays crossing
// it are attenuated by Transmission per crossing; its faces also act as
// reflectors with the given material.
type Obstacle struct {
	Poly geom.Polygon
	Mat  Material
	Name string
}

// Path is one propagation path from transmitter to receiver.
type Path struct {
	BearingDeg float64    // angle of arrival at the receiver, global degrees
	Delay      float64    // absolute propagation delay, seconds
	Gain       complex128 // complex amplitude (free-space loss x interactions x drift)
	Order      int        // number of reflections (0 = direct path)
	Via        string     // name of the reflecting wall(s), for diagnostics
}

// Environment is the full propagation scene.
type Environment struct {
	Walls     []Wall
	Obstacles []Obstacle

	// MaxOrder caps reflection depth: 0 = direct only, 1 = single-bounce,
	// 2 adds double-bounce paths.
	MaxOrder int

	// CarrierHz fixes the wavelength for per-path phase.
	CarrierHz float64

	// MinGain drops paths whose |gain| falls below this fraction of the
	// strongest path's |gain|, keeping path lists small.
	MinGain float64

	// mu serialises Trace and Advance: tracing lazily instantiates drift
	// processes and Advance evolves them, so concurrent APs sharing one
	// environment must not interleave inside either.
	mu    sync.Mutex
	drift *driftState
	epoch uint64
}

// New returns an environment with the given scene and sensible defaults
// (single-bounce reflections, default carrier, 1% path-gain floor).
func New(walls []Wall, obstacles []Obstacle) *Environment {
	return &Environment{
		Walls:     walls,
		Obstacles: obstacles,
		MaxOrder:  1,
		CarrierHz: antenna.DefaultCarrierHz,
		MinGain:   0.01,
	}
}

// Wavelength returns the carrier wavelength.
func (e *Environment) Wavelength() float64 { return antenna.SpeedOfLight / e.CarrierHz }

// reflectors returns every reflecting segment in the scene: walls plus
// obstacle faces.
func (e *Environment) reflectors() []Wall {
	out := make([]Wall, 0, len(e.Walls)+4*len(e.Obstacles))
	out = append(out, e.Walls...)
	for _, o := range e.Obstacles {
		for i, edge := range o.Poly.Edges() {
			out = append(out, Wall{Seg: edge, Mat: o.Mat, Name: o.Name + faceName(i)})
		}
	}
	return out
}

func faceName(i int) string { return "/face" + string(rune('0'+i%10)) }

// freeSpaceAmp is the free-space amplitude factor lambda/(4 pi d).
func (e *Environment) freeSpaceAmp(d float64) float64 {
	if d < 0.1 {
		d = 0.1 // clamp: the testbed never places a client on top of the AP
	}
	return e.Wavelength() / (4 * math.Pi * d)
}

// segmentAttenuation multiplies the amplitude transmission coefficients of
// every wall and obstacle face the open segment (a,b) crosses, excluding
// reflectors named in skip (the walls a reflected ray bounces off).
func (e *Environment) segmentAttenuation(a, b geom.Point, skip map[string]bool) float64 {
	seg := geom.Segment{A: a, B: b}
	att := 1.0
	for _, w := range e.reflectors() {
		if skip[w.Name] {
			continue
		}
		if _, hit := seg.IntersectInterior(w.Seg); hit {
			att *= w.Mat.Transmission
		}
	}
	return att
}

// Trace returns the propagation paths from tx to rx, strongest first.
// Paths include the direct path (possibly attenuated through walls or the
// pillar) and up to MaxOrder wall reflections computed with the image
// method. Gains include the drift perturbation if EnableDrift was called.
func (e *Environment) Trace(tx, rx geom.Point) []Path {
	e.mu.Lock()
	defer e.mu.Unlock()
	var paths []Path

	k := 2 * math.Pi / e.Wavelength()

	// Direct path.
	d := tx.Dist(rx)
	att := e.segmentAttenuation(tx, rx, nil)
	if amp := e.freeSpaceAmp(d) * att; amp > 0 {
		paths = append(paths, Path{
			BearingDeg: geom.BearingDeg(rx, tx),
			Delay:      d / antenna.SpeedOfLight,
			Gain:       cmplx.Rect(amp, -k*d),
			Order:      0,
			Via:        "direct",
		})
	}

	if e.MaxOrder >= 1 {
		paths = append(paths, e.singleBounce(tx, rx, k)...)
	}
	if e.MaxOrder >= 2 {
		paths = append(paths, e.doubleBounce(tx, rx, k)...)
	}

	// Apply drift perturbations to reflected paths.
	if e.drift != nil {
		for i := range paths {
			if paths[i].Order > 0 {
				paths[i].Gain *= e.drift.gainFor(paths[i].Via)
			}
		}
	}

	// Sort by gain, strongest first, and apply the relative gain floor.
	sort.Slice(paths, func(i, j int) bool {
		return cmplx.Abs(paths[i].Gain) > cmplx.Abs(paths[j].Gain)
	})
	if len(paths) > 0 {
		floor := cmplx.Abs(paths[0].Gain) * e.MinGain
		kept := paths[:0]
		for _, p := range paths {
			if cmplx.Abs(p.Gain) >= floor {
				kept = append(kept, p)
			}
		}
		paths = kept
	}
	return paths
}

// singleBounce finds all one-reflection paths via the image method: mirror
// tx across each reflector; if the image-to-rx segment crosses the actual
// reflector segment, a specular path exists through the crossing point.
func (e *Environment) singleBounce(tx, rx geom.Point, k float64) []Path {
	var out []Path
	for _, w := range e.reflectors() {
		img := w.Seg.Reflect(tx)
		hit, ok := geom.Segment{A: img, B: rx}.IntersectInterior(w.Seg)
		if !ok {
			continue
		}
		// Total geometric length equals |img - rx| by the mirror property.
		d := img.Dist(rx)
		att := w.Mat.Reflection
		skip := map[string]bool{w.Name: true}
		att *= e.segmentAttenuation(tx, hit, skip)
		att *= e.segmentAttenuation(hit, rx, skip)
		amp := e.freeSpaceAmp(d) * att
		if amp <= 0 {
			continue
		}
		out = append(out, Path{
			BearingDeg: geom.BearingDeg(rx, hit),
			Delay:      d / antenna.SpeedOfLight,
			Gain:       cmplx.Rect(amp, -k*d),
			Order:      1,
			Via:        w.Name,
		})
	}
	return out
}

// doubleBounce finds two-reflection paths: mirror tx across wall A, mirror
// that image across wall B, and trace back rx -> B -> A -> tx.
func (e *Environment) doubleBounce(tx, rx geom.Point, k float64) []Path {
	refl := e.reflectors()
	var out []Path
	for ai, wa := range refl {
		imgA := wa.Seg.Reflect(tx)
		for bi, wb := range refl {
			if ai == bi {
				continue
			}
			imgAB := wb.Seg.Reflect(imgA)
			// Last leg: rx toward imgAB must cross wall B.
			hitB, ok := geom.Segment{A: imgAB, B: rx}.IntersectInterior(wb.Seg)
			if !ok {
				continue
			}
			// Middle leg: hitB toward imgA must cross wall A.
			hitA, ok := geom.Segment{A: imgA, B: hitB}.IntersectInterior(wa.Seg)
			if !ok {
				continue
			}
			d := imgAB.Dist(rx)
			skip := map[string]bool{wa.Name: true, wb.Name: true}
			att := wa.Mat.Reflection * wb.Mat.Reflection
			att *= e.segmentAttenuation(tx, hitA, skip)
			att *= e.segmentAttenuation(hitA, hitB, skip)
			att *= e.segmentAttenuation(hitB, rx, skip)
			amp := e.freeSpaceAmp(d) * att
			if amp <= 0 {
				continue
			}
			out = append(out, Path{
				BearingDeg: geom.BearingDeg(rx, hitB),
				Delay:      d / antenna.SpeedOfLight,
				Gain:       cmplx.Rect(amp, -k*d),
				Order:      2,
				Via:        wa.Name + "+" + wb.Name,
			})
		}
	}
	return out
}

// --- Temporal drift (coherence-time model) ---

// driftState carries one complex perturbation per reflector, each driven
// by two OU processes (log-magnitude and phase).
type driftState struct {
	tau  float64
	mag  map[string]*rng.OU
	ph   map[string]*rng.OU
	src  *rng.Source
	magS float64
	phS  float64
}

// EnableDrift turns on temporal evolution of reflection gains. tau is the
// coherence time in seconds (the paper cites 25-125 ms outdoors at walking
// speed; indoor office reflectors drift much more slowly, so experiments
// use seconds-to-minutes scales). magSigma is the stationary std of the
// log-amplitude perturbation; phSigmaRad of the phase perturbation.
func (e *Environment) EnableDrift(src *rng.Source, tau, magSigma, phSigmaRad float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.epoch++
	e.drift = &driftState{
		tau:  tau,
		mag:  make(map[string]*rng.OU),
		ph:   make(map[string]*rng.OU),
		src:  src,
		magS: magSigma,
		phS:  phSigmaRad,
	}
}

// Advance evolves the drift state by dt seconds. A no-op when drift is
// disabled.
func (e *Environment) Advance(dt float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.drift == nil {
		return
	}
	e.epoch++
	for _, o := range e.drift.mag {
		o.Advance(dt)
	}
	for _, o := range e.drift.ph {
		o.Advance(dt)
	}
}

// Epoch returns a counter that increments whenever the channel realisation
// may have changed (drift enabled or advanced). Between equal epochs,
// Trace is a pure function of its endpoints, which lets receivers cache
// derived channel state per transmitter position.
func (e *Environment) Epoch() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.epoch
}

// gainFor returns the current complex perturbation for a reflector,
// lazily creating its OU processes on first use.
func (d *driftState) gainFor(name string) complex128 {
	m, ok := d.mag[name]
	if !ok {
		m = rng.NewOU(d.src.Fork(), 0, d.magS, d.tau)
		d.mag[name] = m
	}
	p, ok := d.ph[name]
	if !ok {
		p = rng.NewOU(d.src.Fork(), 0, d.phS, d.tau)
		d.ph[name] = p
	}
	return cmplx.Rect(math.Exp(m.Value()), p.Value())
}

// DirectPath returns the order-0 path from Trace, if present.
func DirectPath(paths []Path) (Path, bool) {
	for _, p := range paths {
		if p.Order == 0 {
			return p, true
		}
	}
	return Path{}, false
}

// StrongestBearing returns the bearing of the strongest path.
func StrongestBearing(paths []Path) (float64, bool) {
	if len(paths) == 0 {
		return 0, false
	}
	best := paths[0]
	for _, p := range paths[1:] {
		if cmplx.Abs(p.Gain) > cmplx.Abs(best.Gain) {
			best = p
		}
	}
	return best.BearingDeg, true
}
