package env

import (
	"math"
	"math/cmplx"
	"testing"

	"secureangle/internal/antenna"
	"secureangle/internal/geom"
	"secureangle/internal/rng"
)

// openRoom is a 10x8 m room with concrete walls.
func openRoom() *Environment {
	walls := []Wall{
		{Seg: geom.Segment{A: geom.Point{X: 0, Y: 0}, B: geom.Point{X: 10, Y: 0}}, Mat: Concrete, Name: "south"},
		{Seg: geom.Segment{A: geom.Point{X: 10, Y: 0}, B: geom.Point{X: 10, Y: 8}}, Mat: Concrete, Name: "east"},
		{Seg: geom.Segment{A: geom.Point{X: 10, Y: 8}, B: geom.Point{X: 0, Y: 8}}, Mat: Concrete, Name: "north"},
		{Seg: geom.Segment{A: geom.Point{X: 0, Y: 8}, B: geom.Point{X: 0, Y: 0}}, Mat: Concrete, Name: "west"},
	}
	return New(walls, nil)
}

func TestDirectPathGeometry(t *testing.T) {
	e := openRoom()
	tx := geom.Point{X: 7, Y: 4}
	rx := geom.Point{X: 3, Y: 4}
	paths := e.Trace(tx, rx)
	dp, ok := DirectPath(paths)
	if !ok {
		t.Fatal("no direct path")
	}
	if math.Abs(dp.BearingDeg-0) > 1e-9 { // tx is due +x of rx
		t.Errorf("direct bearing = %v, want 0", dp.BearingDeg)
	}
	wantDelay := 4.0 / antenna.SpeedOfLight
	if math.Abs(dp.Delay-wantDelay) > 1e-15 {
		t.Errorf("delay = %v, want %v", dp.Delay, wantDelay)
	}
	if dp.Order != 0 || dp.Via != "direct" {
		t.Errorf("direct path metadata: %+v", dp)
	}
}

func TestDirectPathIsStrongest(t *testing.T) {
	e := openRoom()
	paths := e.Trace(geom.Point{X: 7, Y: 4}, geom.Point{X: 3, Y: 4})
	if len(paths) < 2 {
		t.Fatalf("expected multipath, got %d paths", len(paths))
	}
	// Trace sorts strongest first; with line of sight that must be direct.
	if paths[0].Order != 0 {
		t.Errorf("strongest path is order %d via %s", paths[0].Order, paths[0].Via)
	}
	for _, p := range paths[1:] {
		if cmplx.Abs(p.Gain) > cmplx.Abs(paths[0].Gain)+1e-18 {
			t.Error("paths not sorted by gain")
		}
	}
}

func TestSingleBounceCount(t *testing.T) {
	// In a closed rectangle with both endpoints interior, all four walls
	// give a specular single-bounce path.
	e := openRoom()
	paths := e.Trace(geom.Point{X: 7, Y: 4}, geom.Point{X: 3, Y: 4})
	var bounces int
	for _, p := range paths {
		if p.Order == 1 {
			bounces++
		}
	}
	if bounces != 4 {
		t.Errorf("single-bounce paths = %d, want 4", bounces)
	}
}

func TestReflectionGeometryKnown(t *testing.T) {
	// tx and rx both 2 m above the south wall (y=0), 6 m apart: the
	// south-wall bounce has total length sqrt(6^2 + 4^2) = 7.211 m and
	// arrives from below rx at the specular point midway.
	e := openRoom()
	tx := geom.Point{X: 8, Y: 2}
	rx := geom.Point{X: 2, Y: 2}
	paths := e.Trace(tx, rx)
	var south *Path
	for i := range paths {
		if paths[i].Via == "south" {
			south = &paths[i]
		}
	}
	if south == nil {
		t.Fatal("no south-wall bounce")
	}
	wantLen := math.Hypot(6, 4)
	if math.Abs(south.Delay*antenna.SpeedOfLight-wantLen) > 1e-9 {
		t.Errorf("bounce length = %v, want %v", south.Delay*antenna.SpeedOfLight, wantLen)
	}
	// Specular point at (5, 0): bearing from rx (2,2) to (5,0).
	wantBearing := geom.BearingDeg(rx, geom.Point{X: 5, Y: 0})
	if math.Abs(south.BearingDeg-wantBearing) > 1e-9 {
		t.Errorf("bounce bearing = %v, want %v", south.BearingDeg, wantBearing)
	}
}

func TestReflectionWeakerThanDirect(t *testing.T) {
	e := openRoom()
	paths := e.Trace(geom.Point{X: 7, Y: 4}, geom.Point{X: 3, Y: 4})
	dp, _ := DirectPath(paths)
	for _, p := range paths {
		if p.Order == 1 && cmplx.Abs(p.Gain) >= cmplx.Abs(dp.Gain) {
			t.Errorf("bounce via %s at least as strong as direct", p.Via)
		}
	}
}

func TestThroughWallAttenuation(t *testing.T) {
	// Put a drywall partition between tx and rx; direct gain must shrink
	// by exactly the transmission coefficient relative to no partition.
	walls := []Wall{
		{Seg: geom.Segment{A: geom.Point{X: 5, Y: -10}, B: geom.Point{X: 5, Y: 10}}, Mat: Drywall, Name: "partition"},
	}
	tx := geom.Point{X: 8, Y: 0}
	rx := geom.Point{X: 2, Y: 0}

	withWall := New(walls, nil)
	free := New(nil, nil)
	p1, ok1 := DirectPath(withWall.Trace(tx, rx))
	p0, ok0 := DirectPath(free.Trace(tx, rx))
	if !ok0 || !ok1 {
		t.Fatal("missing direct paths")
	}
	ratio := cmplx.Abs(p1.Gain) / cmplx.Abs(p0.Gain)
	if math.Abs(ratio-Drywall.Transmission) > 1e-9 {
		t.Errorf("through-wall ratio = %v, want %v", ratio, Drywall.Transmission)
	}
}

func TestObstacleBlocksDirect(t *testing.T) {
	pillar := Obstacle{
		Poly: geom.Rect(4.5, -0.5, 5.5, 0.5),
		Mat:  Concrete,
		Name: "pillar",
	}
	e := New(nil, []Obstacle{pillar})
	tx := geom.Point{X: 9, Y: 0}
	rx := geom.Point{X: 1, Y: 0}
	p, ok := DirectPath(e.Trace(tx, rx))
	if !ok {
		t.Fatal("direct path dropped entirely")
	}
	free, _ := DirectPath(New(nil, nil).Trace(tx, rx))
	ratio := cmplx.Abs(p.Gain) / cmplx.Abs(free.Gain)
	// The ray crosses two pillar faces.
	want := Concrete.Transmission * Concrete.Transmission
	if math.Abs(ratio-want) > 1e-9 {
		t.Errorf("pillar attenuation = %v, want %v", ratio, want)
	}
}

func TestObstacleFacesReflect(t *testing.T) {
	pillar := Obstacle{Poly: geom.Rect(4, 2, 5, 3), Mat: Concrete, Name: "pillar"}
	e := New(nil, []Obstacle{pillar})
	// tx and rx placed south of the pillar: its south face (y=2) should
	// produce a bounce.
	tx := geom.Point{X: 6, Y: 0}
	rx := geom.Point{X: 3, Y: 0}
	var found bool
	for _, p := range e.Trace(tx, rx) {
		if p.Order == 1 {
			found = true
		}
	}
	if !found {
		t.Error("no reflection off pillar faces")
	}
}

func TestMinGainFloorDropsWeakPaths(t *testing.T) {
	e := openRoom()
	e.MinGain = 0.9999 // keep only (nearly) the strongest
	paths := e.Trace(geom.Point{X: 7, Y: 4}, geom.Point{X: 3, Y: 4})
	if len(paths) != 1 {
		t.Errorf("gain floor kept %d paths, want 1", len(paths))
	}
}

func TestDoubleBounce(t *testing.T) {
	e := openRoom()
	e.MaxOrder = 2
	e.MinGain = 0 // keep everything
	paths := e.Trace(geom.Point{X: 7, Y: 4}, geom.Point{X: 3, Y: 4})
	var order2 int
	for _, p := range paths {
		if p.Order == 2 {
			order2++
			if p.Delay <= 0 {
				t.Error("double bounce with nonpositive delay")
			}
		}
	}
	if order2 == 0 {
		t.Error("MaxOrder=2 produced no double-bounce paths")
	}
	// Double bounces travel farther than the direct path.
	dp, _ := DirectPath(paths)
	for _, p := range paths {
		if p.Order == 2 && p.Delay <= dp.Delay {
			t.Error("double bounce arrived before direct path")
		}
	}
}

func TestPhaseMatchesDelay(t *testing.T) {
	// Path phase must equal -2 pi d / lambda (mod 2 pi).
	e := openRoom()
	paths := e.Trace(geom.Point{X: 7, Y: 4}, geom.Point{X: 3, Y: 4.5})
	lambda := e.Wavelength()
	for _, p := range paths {
		d := p.Delay * antenna.SpeedOfLight
		want := math.Mod(-2*math.Pi*d/lambda, 2*math.Pi)
		got := cmplx.Phase(p.Gain)
		diff := math.Mod(got-want, 2*math.Pi)
		if diff > math.Pi {
			diff -= 2 * math.Pi
		}
		if diff < -math.Pi {
			diff += 2 * math.Pi
		}
		if math.Abs(diff) > 1e-6 {
			t.Errorf("path via %s: phase %v, want %v", p.Via, got, want)
		}
	}
}

func TestDriftStableDirectWanderingReflections(t *testing.T) {
	e := openRoom()
	e.EnableDrift(rng.New(1), 60, 0.2, 0.8)
	tx := geom.Point{X: 7, Y: 4}
	rx := geom.Point{X: 3, Y: 4}

	base := e.Trace(tx, rx)
	baseDirect, _ := DirectPath(base)
	baseBounce := gainsByVia(base)

	e.Advance(600) // ten coherence times
	later := e.Trace(tx, rx)
	laterDirect, _ := DirectPath(later)
	laterBounce := gainsByVia(later)

	if cmplx.Abs(baseDirect.Gain-laterDirect.Gain) > 1e-15 {
		t.Error("direct path drifted")
	}
	var changed int
	for via, g := range baseBounce {
		if g2, ok := laterBounce[via]; ok && cmplx.Abs(g-g2) > 1e-6 {
			changed++
		}
	}
	if changed == 0 {
		t.Error("no reflection gains drifted after 10 coherence times")
	}
}

func TestDriftDeterministicPerSeed(t *testing.T) {
	mk := func(seed int64) []Path {
		e := openRoom()
		e.EnableDrift(rng.New(seed), 60, 0.2, 0.8)
		e.Advance(30)
		return e.Trace(geom.Point{X: 7, Y: 4}, geom.Point{X: 3, Y: 4})
	}
	a := mk(5)
	b := mk(5)
	if len(a) != len(b) {
		t.Fatal("path counts differ")
	}
	for i := range a {
		if cmplx.Abs(a[i].Gain-b[i].Gain) > 1e-15 {
			t.Fatal("same seed produced different drift")
		}
	}
}

func TestAdvanceWithoutDriftIsNoop(t *testing.T) {
	e := openRoom()
	e.Advance(100) // must not panic
}

func TestStrongestBearing(t *testing.T) {
	if _, ok := StrongestBearing(nil); ok {
		t.Error("empty path list")
	}
	paths := []Path{
		{BearingDeg: 10, Gain: 0.1},
		{BearingDeg: 20, Gain: 0.5},
		{BearingDeg: 30, Gain: 0.2},
	}
	b, ok := StrongestBearing(paths)
	if !ok || b != 20 {
		t.Errorf("StrongestBearing = %v, %v", b, ok)
	}
}

func TestDirectPathAbsent(t *testing.T) {
	if _, ok := DirectPath([]Path{{Order: 1}}); ok {
		t.Error("order-1-only list reported a direct path")
	}
}

func gainsByVia(paths []Path) map[string]complex128 {
	out := map[string]complex128{}
	for _, p := range paths {
		if p.Order > 0 {
			out[p.Via] = p.Gain
		}
	}
	return out
}
