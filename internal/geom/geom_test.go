package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPointArithmetic(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -1}
	if p.Add(q) != (Point{4, 1}) {
		t.Error("Add")
	}
	if p.Sub(q) != (Point{-2, 3}) {
		t.Error("Sub")
	}
	if p.Scale(2) != (Point{2, 4}) {
		t.Error("Scale")
	}
	if p.Dot(q) != 1 {
		t.Error("Dot")
	}
	if p.Cross(q) != -7 {
		t.Error("Cross")
	}
	if !approx(Point{3, 4}.Norm(), 5, 1e-12) {
		t.Error("Norm")
	}
	if !approx(p.Dist(q), math.Hypot(2, 3), 1e-12) {
		t.Error("Dist")
	}
	u := Point{3, 4}.Unit()
	if !approx(u.Norm(), 1, 1e-12) {
		t.Error("Unit")
	}
	if (Point{}).Unit() != (Point{}) {
		t.Error("Unit zero vector")
	}
}

func TestBearingDeg(t *testing.T) {
	o := Point{0, 0}
	cases := []struct {
		q    Point
		want float64
	}{
		{Point{1, 0}, 0}, {Point{0, 1}, 90}, {Point{-1, 0}, 180}, {Point{0, -1}, 270},
		{Point{1, 1}, 45},
	}
	for _, c := range cases {
		if got := BearingDeg(o, c.q); !approx(got, c.want, 1e-9) {
			t.Errorf("BearingDeg(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestPointAtRoundTrip(t *testing.T) {
	f := func(bearing, r float64) bool {
		b := math.Mod(math.Abs(bearing), 360)
		rr := 1 + math.Mod(math.Abs(r), 100)
		o := Point{2, 3}
		p := PointAt(o, b, rr)
		return approx(BearingDeg(o, p), b, 1e-6) && approx(o.Dist(p), rr, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAngularDistDeg(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{0, 0, 0}, {10, 350, 20}, {180, 0, 180}, {359, 1, 2}, {90, 270, 180},
	}
	for _, c := range cases {
		if got := AngularDistDeg(c.a, c.b); !approx(got, c.want, 1e-9) {
			t.Errorf("AngularDistDeg(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSegmentIntersect(t *testing.T) {
	s := Segment{Point{0, 0}, Point{2, 2}}
	u := Segment{Point{0, 2}, Point{2, 0}}
	p, ok := s.Intersect(u)
	if !ok || !approx(p.X, 1, 1e-12) || !approx(p.Y, 1, 1e-12) {
		t.Fatalf("Intersect = %v, %v", p, ok)
	}
	// Non-intersecting.
	v := Segment{Point{5, 5}, Point{6, 6}}
	if _, ok := s.Intersect(v); ok {
		t.Error("disjoint segments intersected")
	}
	// Parallel.
	w := Segment{Point{0, 1}, Point{2, 3}}
	if _, ok := s.Intersect(w); ok {
		t.Error("parallel segments intersected")
	}
}

func TestIntersectInteriorExcludesEndpoints(t *testing.T) {
	s := Segment{Point{0, 0}, Point{2, 0}}
	touch := Segment{Point{2, 0}, Point{2, 2}} // shares endpoint (2,0)
	if _, ok := s.IntersectInterior(touch); ok {
		t.Error("endpoint touch counted as interior intersection")
	}
	cross := Segment{Point{1, -1}, Point{1, 1}}
	if _, ok := s.IntersectInterior(cross); !ok {
		t.Error("proper crossing missed")
	}
}

func TestReflect(t *testing.T) {
	// Mirror across the x-axis.
	wall := Segment{Point{0, 0}, Point{10, 0}}
	img := wall.Reflect(Point{3, 4})
	if !approx(img.X, 3, 1e-12) || !approx(img.Y, -4, 1e-12) {
		t.Fatalf("Reflect = %v", img)
	}
	// Reflection is an involution.
	f := func(x, y float64) bool {
		p := Point{math.Mod(x, 50), math.Mod(y, 50)}
		w := Segment{Point{1, 2}, Point{7, 5}}
		back := w.Reflect(w.Reflect(p))
		return approx(back.X, p.X, 1e-9) && approx(back.Y, p.Y, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestReflectPreservesWallDistance(t *testing.T) {
	wall := Segment{Point{0, 0}, Point{4, 4}}
	p := Point{1, 3}
	img := wall.Reflect(p)
	if !approx(wall.DistToPoint(p), wall.DistToPoint(img), 1e-9) {
		t.Errorf("reflection changed distance to wall: %v vs %v",
			wall.DistToPoint(p), wall.DistToPoint(img))
	}
}

func TestDistToPoint(t *testing.T) {
	s := Segment{Point{0, 0}, Point{10, 0}}
	if !approx(s.DistToPoint(Point{5, 3}), 3, 1e-12) {
		t.Error("perpendicular distance")
	}
	if !approx(s.DistToPoint(Point{-3, 4}), 5, 1e-12) {
		t.Error("distance beyond endpoint should be to endpoint")
	}
	degenerate := Segment{Point{1, 1}, Point{1, 1}}
	if !approx(degenerate.DistToPoint(Point{4, 5}), 5, 1e-12) {
		t.Error("degenerate segment distance")
	}
}

func TestPolygonContains(t *testing.T) {
	sq := Rect(0, 0, 10, 10)
	if !sq.Contains(Point{5, 5}) {
		t.Error("centre not inside")
	}
	if sq.Contains(Point{-1, 5}) || sq.Contains(Point{5, 11}) {
		t.Error("outside point reported inside")
	}
	tri := Polygon{{0, 0}, {4, 0}, {0, 4}}
	if !tri.Contains(Point{1, 1}) {
		t.Error("triangle interior")
	}
	if tri.Contains(Point{3, 3}) {
		t.Error("triangle exterior")
	}
	if (Polygon{{0, 0}, {1, 1}}).Contains(Point{0, 0}) {
		t.Error("degenerate polygon should contain nothing")
	}
}

func TestPolygonEdgesAndCentroid(t *testing.T) {
	sq := Rect(0, 0, 2, 2)
	edges := sq.Edges()
	if len(edges) != 4 {
		t.Fatalf("edges = %d", len(edges))
	}
	var perim float64
	for _, e := range edges {
		perim += e.Length()
	}
	if !approx(perim, 8, 1e-12) {
		t.Errorf("perimeter = %v", perim)
	}
	c := sq.Centroid()
	if !approx(c.X, 1, 1e-12) || !approx(c.Y, 1, 1e-12) {
		t.Errorf("centroid = %v", c)
	}
}

func TestLineIntersection(t *testing.T) {
	// From (0,0) at 45 deg and from (2,0) at 135 deg meet at (1,1).
	p, ok := LineIntersection(Point{0, 0}, 45, Point{2, 0}, 135)
	if !ok || !approx(p.X, 1, 1e-9) || !approx(p.Y, 1, 1e-9) {
		t.Fatalf("LineIntersection = %v, %v", p, ok)
	}
	// Parallel lines fail.
	if _, ok := LineIntersection(Point{0, 0}, 30, Point{1, 1}, 30); ok {
		t.Error("parallel lines intersected")
	}
	if _, ok := LineIntersection(Point{0, 0}, 30, Point{1, 1}, 210); ok {
		t.Error("anti-parallel lines intersected")
	}
}

func TestLineIntersectionTriangulationProperty(t *testing.T) {
	// Two APs observing the true bearing to a target must triangulate back
	// to the target.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		ap1 := Point{rng.Float64() * 10, rng.Float64() * 10}
		ap2 := Point{10 + rng.Float64()*10, rng.Float64() * 10}
		target := Point{rng.Float64() * 20, 10 + rng.Float64()*10}
		b1 := BearingDeg(ap1, target)
		b2 := BearingDeg(ap2, target)
		got, ok := LineIntersection(ap1, b1, ap2, b2)
		if !ok {
			continue // collinear geometry, legitimately ambiguous
		}
		if got.Dist(target) > 1e-6 {
			t.Fatalf("triangulation error %v for target %v got %v", got.Dist(target), target, got)
		}
	}
}

func TestSegmentBasics(t *testing.T) {
	s := Segment{Point{0, 0}, Point{4, 0}}
	if !approx(s.Length(), 4, 1e-12) {
		t.Error("Length")
	}
	if s.Midpoint() != (Point{2, 0}) {
		t.Error("Midpoint")
	}
}

func TestPointString(t *testing.T) {
	if got := (Point{1, 2}).String(); got != "(1.000, 2.000)" {
		t.Errorf("String = %q", got)
	}
}
