// Package geom provides the 2-D computational geometry behind SecureAngle's
// channel simulator and virtual fence: points, segments, reflections
// (image method), ray-segment intersection, and point-in-polygon tests.
//
// Conventions: coordinates in metres; bearings in degrees measured
// counter-clockwise from the +x axis, matching Figure 4 of the paper where
// the circular array reports 0-360 degrees.
package geom

import (
	"fmt"
	"math"
)

// Point is a 2-D point or vector in metres.
type Point struct {
	X, Y float64
}

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns s * p.
func (p Point) Scale(s float64) Point { return Point{s * p.X, s * p.Y} }

// Dot returns the dot product p . q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z component of the cross product p x q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of p.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the distance between p and q.
func (p Point) Dist(q Point) float64 { return p.Sub(q).Norm() }

// Unit returns p scaled to unit length; the zero vector is returned as-is.
func (p Point) Unit() Point {
	n := p.Norm()
	if n == 0 {
		return p
	}
	return p.Scale(1 / n)
}

// String renders the point for diagnostics.
func (p Point) String() string { return fmt.Sprintf("(%.3f, %.3f)", p.X, p.Y) }

// BearingDeg returns the bearing from p to q in degrees in [0, 360).
func BearingDeg(p, q Point) float64 {
	d := q.Sub(p)
	deg := math.Atan2(d.Y, d.X) * 180 / math.Pi
	if deg < 0 {
		deg += 360
	}
	return deg
}

// PointAt returns the point at the given bearing (degrees) and range r
// from origin o.
func PointAt(o Point, bearingDeg, r float64) Point {
	rad := bearingDeg * math.Pi / 180
	return Point{o.X + r*math.Cos(rad), o.Y + r*math.Sin(rad)}
}

// AngularDistDeg returns the smallest absolute difference between two
// bearings in degrees, in [0, 180].
func AngularDistDeg(a, b float64) float64 {
	d := math.Mod(math.Abs(a-b), 360)
	if d > 180 {
		d = 360 - d
	}
	return d
}

// Segment is a line segment between two points.
type Segment struct {
	A, B Point
}

// Length returns the segment's length.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// Midpoint returns the segment's midpoint.
func (s Segment) Midpoint() Point { return s.A.Add(s.B).Scale(0.5) }

// Intersect reports whether segments s and t properly intersect and, if so,
// the intersection point. Collinear overlaps report no intersection (they
// do not occur with the testbed geometry and are irrelevant for ray
// tracing, where grazing incidence carries no energy).
func (s Segment) Intersect(t Segment) (Point, bool) {
	r := s.B.Sub(s.A)
	d := t.B.Sub(t.A)
	denom := r.Cross(d)
	if math.Abs(denom) < 1e-15 {
		return Point{}, false
	}
	qp := t.A.Sub(s.A)
	u := qp.Cross(d) / denom // parameter along s
	v := qp.Cross(r) / denom // parameter along t
	const eps = 1e-12
	if u < -eps || u > 1+eps || v < -eps || v > 1+eps {
		return Point{}, false
	}
	return s.A.Add(r.Scale(u)), true
}

// IntersectInterior is Intersect but excludes intersections at the
// endpoints of either segment (strict interior crossing). Ray tracing uses
// it to avoid double-counting a wall the ray merely touches at a corner.
func (s Segment) IntersectInterior(t Segment) (Point, bool) {
	r := s.B.Sub(s.A)
	d := t.B.Sub(t.A)
	denom := r.Cross(d)
	if math.Abs(denom) < 1e-15 {
		return Point{}, false
	}
	qp := t.A.Sub(s.A)
	u := qp.Cross(d) / denom
	v := qp.Cross(r) / denom
	const eps = 1e-9
	if u <= eps || u >= 1-eps || v <= eps || v >= 1-eps {
		return Point{}, false
	}
	return s.A.Add(r.Scale(u)), true
}

// Reflect returns the mirror image of p across the infinite line through
// the segment — the "image source" of the image method of multipath
// modelling.
func (s Segment) Reflect(p Point) Point {
	d := s.B.Sub(s.A)
	n2 := d.Dot(d)
	if n2 == 0 {
		return p
	}
	ap := p.Sub(s.A)
	t := ap.Dot(d) / n2
	foot := s.A.Add(d.Scale(t))
	return foot.Add(foot.Sub(p))
}

// DistToPoint returns the shortest distance from p to the segment.
func (s Segment) DistToPoint(p Point) float64 {
	d := s.B.Sub(s.A)
	n2 := d.Dot(d)
	if n2 == 0 {
		return s.A.Dist(p)
	}
	t := p.Sub(s.A).Dot(d) / n2
	t = math.Max(0, math.Min(1, t))
	return s.A.Add(d.Scale(t)).Dist(p)
}

// Polygon is a simple polygon given by its vertices in order.
type Polygon []Point

// Contains reports whether p lies strictly inside the polygon, using the
// even-odd ray-casting rule. Points exactly on an edge may report either
// way; callers that care (the fence) apply a margin.
func (poly Polygon) Contains(p Point) bool {
	n := len(poly)
	if n < 3 {
		return false
	}
	inside := false
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		pi, pj := poly[i], poly[j]
		if (pi.Y > p.Y) != (pj.Y > p.Y) {
			xCross := (pj.X-pi.X)*(p.Y-pi.Y)/(pj.Y-pi.Y) + pi.X
			if p.X < xCross {
				inside = !inside
			}
		}
	}
	return inside
}

// Edges returns the polygon's edges as segments.
func (poly Polygon) Edges() []Segment {
	n := len(poly)
	out := make([]Segment, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Segment{poly[i], poly[(i+1)%n]})
	}
	return out
}

// Centroid returns the arithmetic mean of the vertices (adequate for the
// convex rooms in the testbed).
func (poly Polygon) Centroid() Point {
	var c Point
	for _, p := range poly {
		c = c.Add(p)
	}
	return c.Scale(1 / float64(len(poly)))
}

// Rect returns the axis-aligned rectangle polygon with corners (x0,y0) and
// (x1,y1).
func Rect(x0, y0, x1, y1 float64) Polygon {
	return Polygon{{x0, y0}, {x1, y0}, {x1, y1}, {x0, y1}}
}

// LineIntersection returns the intersection of two infinite lines, each
// given by a point and a bearing in degrees. ok is false for (nearly)
// parallel lines. This is the primitive behind two-AP bearing
// triangulation.
func LineIntersection(p1 Point, bearing1 float64, p2 Point, bearing2 float64) (Point, bool) {
	r1 := math.Pi / 180 * bearing1
	r2 := math.Pi / 180 * bearing2
	d1 := Point{math.Cos(r1), math.Sin(r1)}
	d2 := Point{math.Cos(r2), math.Sin(r2)}
	denom := d1.Cross(d2)
	if math.Abs(denom) < 1e-9 {
		return Point{}, false
	}
	t := p2.Sub(p1).Cross(d2) / denom
	return p1.Add(d1.Scale(t)), true
}
