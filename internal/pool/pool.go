// Package pool provides the per-worker scratch arena the per-packet hot
// path allocates from. The data plane's steady state — receive, detect,
// covariance, eigendecomposition, pseudospectrum — reuses the same
// buffers packet after packet (the NDN-DPDK forwarding discipline:
// preallocated object pools, run-to-completion, no per-packet heap
// traffic). An Arena is a bump allocator over a handful of growable
// slabs: allocation is a slice re-slice, Reset recycles everything at
// once, and after the first few packets the slabs have grown to the
// workload's high-water mark and no further heap allocation occurs.
//
// An Arena is not safe for concurrent use; each pipeline worker owns one
// (core keeps them in a sync.Pool keyed by worker).
package pool

// Arena is a bump allocator for the slice types the estimation path
// uses. Buffers obtained from an Arena remain valid until Reset; Reset
// invalidates all of them at once (the per-packet lifecycle).
type Arena struct {
	cbuf []complex128
	coff int
	fbuf []float64
	foff int
	sbuf [][]complex128
	soff int
}

// NewArena returns an arena with capacity hints for the three slab
// kinds; zero hints are fine (slabs grow on demand).
func NewArena(complexCap, floatCap, sliceCap int) *Arena {
	return &Arena{
		cbuf: make([]complex128, complexCap),
		fbuf: make([]float64, floatCap),
		sbuf: make([][]complex128, sliceCap),
	}
}

// Complex returns a zeroed []complex128 of length n valid until Reset.
func (a *Arena) Complex(n int) []complex128 {
	if a.coff+n > len(a.cbuf) {
		a.growComplex(n)
	}
	out := a.cbuf[a.coff : a.coff+n : a.coff+n]
	a.coff += n
	for i := range out {
		out[i] = 0
	}
	return out
}

// ComplexUninit is Complex without the zero fill, for callers that
// overwrite every element before reading (FFT inputs, copies). The
// returned buffer holds stale samples from earlier packets.
func (a *Arena) ComplexUninit(n int) []complex128 {
	if a.coff+n > len(a.cbuf) {
		a.growComplex(n)
	}
	out := a.cbuf[a.coff : a.coff+n : a.coff+n]
	a.coff += n
	return out
}

// Float returns a zeroed []float64 of length n valid until Reset.
func (a *Arena) Float(n int) []float64 {
	if a.foff+n > len(a.fbuf) {
		a.growFloat(n)
	}
	out := a.fbuf[a.foff : a.foff+n : a.foff+n]
	a.foff += n
	for i := range out {
		out[i] = 0
	}
	return out
}

// Streams returns a [][]complex128 header slice of length n (entries
// nil) valid until Reset — the per-antenna stream set shape.
func (a *Arena) Streams(n int) [][]complex128 {
	if a.soff+n > len(a.sbuf) {
		a.growStreams(n)
	}
	out := a.sbuf[a.soff : a.soff+n : a.soff+n]
	a.soff += n
	for i := range out {
		out[i] = nil
	}
	return out
}

// Reset recycles the arena: every buffer handed out since the previous
// Reset is invalidated and the backing slabs are reused.
func (a *Arena) Reset() {
	a.coff, a.foff, a.soff = 0, 0, 0
}

// grow* replace the active slab with one large enough for the request,
// doubling so steady-state workloads stop growing after warm-up.
// Outstanding buffers keep the old slab alive until their Reset, which
// is exactly the lifetime contract.

func (a *Arena) growComplex(n int) {
	c := 2 * len(a.cbuf)
	if c < a.coff+n {
		c = a.coff + n
	}
	a.cbuf = make([]complex128, c)
	a.coff = 0
}

func (a *Arena) growFloat(n int) {
	c := 2 * len(a.fbuf)
	if c < a.foff+n {
		c = a.foff + n
	}
	a.fbuf = make([]float64, c)
	a.foff = 0
}

func (a *Arena) growStreams(n int) {
	c := 2 * len(a.sbuf)
	if c < a.soff+n {
		c = a.soff + n
	}
	a.sbuf = make([][]complex128, c)
	a.soff = 0
}
