package pool

import "testing"

func TestArenaReuseAndReset(t *testing.T) {
	a := NewArena(8, 8, 2)
	c1 := a.Complex(4)
	if len(c1) != 4 {
		t.Fatalf("len = %d", len(c1))
	}
	for i := range c1 {
		c1[i] = complex(float64(i), 1)
	}
	c2 := a.Complex(4)
	for _, v := range c2 {
		if v != 0 {
			t.Fatalf("Complex not zeroed: %v", v)
		}
	}
	a.Reset()
	c3 := a.Complex(4)
	if &c3[0] != &c1[0] {
		t.Error("Reset did not recycle the slab")
	}
	for _, v := range c3 {
		if v != 0 {
			t.Fatalf("recycled buffer not zeroed: %v", v)
		}
	}
}

func TestArenaGrowthKeepsOldBuffersValid(t *testing.T) {
	a := NewArena(4, 0, 0)
	c1 := a.Complex(4)
	c1[0] = 7
	c2 := a.Complex(16) // forces growth mid-cycle
	if c1[0] != 7 {
		t.Error("old buffer invalidated by growth")
	}
	c2[0] = 9
	if c1[0] != 7 {
		t.Error("new slab aliases old buffer")
	}
}

func TestArenaSteadyStateZeroAlloc(t *testing.T) {
	a := NewArena(0, 0, 0)
	packet := func() {
		s := a.Streams(8)
		for i := range s {
			s[i] = a.Complex(128)
		}
		_ = a.Float(256)
		_ = a.ComplexUninit(64)
		a.Reset()
	}
	packet() // warm to high-water mark
	if n := testing.AllocsPerRun(100, packet); n > 0 {
		t.Errorf("steady-state allocs/op = %v, want 0", n)
	}
}

func TestArenaFloatAndStreams(t *testing.T) {
	a := NewArena(0, 0, 0)
	f := a.Float(10)
	f[3] = 1.5
	s := a.Streams(3)
	if len(s) != 3 || s[0] != nil {
		t.Fatalf("Streams shape wrong: %v", s)
	}
	a.Reset()
	f2 := a.Float(10)
	if f2[3] != 0 {
		t.Error("Float not zeroed after Reset")
	}
}
