package signature

import (
	"math"
	"testing"
)

func TestL2DistanceBasics(t *testing.T) {
	a := FromPseudospectrum(gauss(grid360(), []float64{100}, []float64{5}, []float64{1}))
	if d, err := L2Distance(a, a); err != nil || d != 0 {
		t.Errorf("self L2 = %v, %v", d, err)
	}
	b := FromPseudospectrum(gauss(grid360(), []float64{250}, []float64{5}, []float64{1}))
	d, err := L2Distance(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Disjoint unit-energy spectra: distance sqrt(2).
	if math.Abs(d-math.Sqrt2) > 1e-6 {
		t.Errorf("disjoint L2 = %v, want sqrt(2)", d)
	}
	short := FromPseudospectrum(gauss(grid360()[:100], []float64{50}, []float64{5}, []float64{1}))
	if _, err := L2Distance(a, short); err != ErrGridMismatch {
		t.Errorf("grid mismatch err = %v", err)
	}
}

func TestPeakSetDistance(t *testing.T) {
	a := FromPseudospectrum(gauss(grid360(), []float64{100, 200}, []float64{4, 4}, []float64{1, 0.5}))
	// Same peak geometry, different heights: metric must be near zero.
	b := FromPseudospectrum(gauss(grid360(), []float64{100, 200}, []float64{4, 4}, []float64{0.5, 1}))
	d, err := PeakSetDistance(a, b, 8, 15)
	if err != nil {
		t.Fatal(err)
	}
	if d > 0.5 {
		t.Errorf("height-only change moved peak-set distance to %v", d)
	}
	// Moved peaks: distance reflects the shift.
	c := FromPseudospectrum(gauss(grid360(), []float64{115, 215}, []float64{4, 4}, []float64{1, 0.5}))
	d2, err := PeakSetDistance(a, c, 8, 15)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d2-15) > 2 {
		t.Errorf("15-degree shift gives peak-set distance %v", d2)
	}
}

func TestPeakSetDistanceEmpty(t *testing.T) {
	flat := FromPseudospectrum(gauss(grid360(), nil, nil, nil))
	a := FromPseudospectrum(gauss(grid360(), []float64{100}, []float64{4}, []float64{1}))
	d, err := PeakSetDistance(a, flat, 8, 15)
	if err != nil {
		t.Fatal(err)
	}
	// A flat spectrum still produces grid-local maxima? It is all zeros,
	// so no peaks: the metric must saturate.
	if d != 180 {
		t.Logf("flat spectrum peak-set distance = %v (acceptable if flat has pseudo-peaks)", d)
	}
}

func TestMetricDispatchAndString(t *testing.T) {
	a := FromPseudospectrum(gauss(grid360(), []float64{100}, []float64{5}, []float64{1}))
	b := FromPseudospectrum(gauss(grid360(), []float64{110}, []float64{5}, []float64{1}))
	for _, m := range []Metric{Cosine, L2, PeakSet} {
		d, err := DistanceWith(m, a, b)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if d <= 0 {
			t.Errorf("%v distance = %v for distinct signatures", m, d)
		}
		if m.String() == "unknown" {
			t.Errorf("metric %d has no name", m)
		}
	}
	if Metric(99).String() != "unknown" {
		t.Error("unknown metric name")
	}
	if _, err := DistanceWith(Metric(99), a, b); err != nil {
		t.Error("unknown metric should fall back to cosine")
	}
}

func TestRankMatches(t *testing.T) {
	probe := FromPseudospectrum(gauss(grid360(), []float64{100, 160}, []float64{4, 6}, []float64{1, 0.3}))
	cands := map[string]*Signature{
		"same-spot": FromPseudospectrum(gauss(grid360(), []float64{100, 161}, []float64{4, 6}, []float64{1, 0.28})),
		"across":    FromPseudospectrum(gauss(grid360(), []float64{260, 30}, []float64{4, 6}, []float64{1, 0.3})),
		"nearby":    FromPseudospectrum(gauss(grid360(), []float64{108, 168}, []float64{4, 6}, []float64{1, 0.3})),
	}
	ranked, err := RankMatches(Cosine, probe, cands)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 3 {
		t.Fatalf("ranked = %v", ranked)
	}
	if ranked[0].Name != "same-spot" {
		t.Errorf("best match = %s", ranked[0].Name)
	}
	if ranked[2].Name != "across" {
		t.Errorf("worst match = %s", ranked[2].Name)
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Distance < ranked[i-1].Distance {
			t.Error("ranking not ascending")
		}
	}
}

func TestRankMatchesGridMismatch(t *testing.T) {
	probe := FromPseudospectrum(gauss(grid360(), []float64{100}, []float64{5}, []float64{1}))
	bad := map[string]*Signature{
		"short": FromPseudospectrum(gauss(grid360()[:10], []float64{5}, []float64{2}, []float64{1})),
	}
	if _, err := RankMatches(Cosine, probe, bad); err == nil {
		t.Error("grid mismatch accepted")
	}
}
