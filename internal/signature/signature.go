// Package signature implements SecureAngle's AoA signatures: a client's
// pseudospectrum sampled on a fixed bearing grid, the distance metrics
// that discriminate legitimate clients from spoofers, the
// tracking/updating of signatures as channels drift (section 2.3.2), and
// binary serialisation for shipping signatures between AP and controller.
package signature

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"secureangle/internal/music"
)

// Signature is an AoA signature: the normalised pseudospectrum of a client
// as seen by one AP. The combined direct-path and reflection-path AoAs
// form the unique signature for each client (section 1).
type Signature struct {
	// AnglesDeg is the bearing grid; all signatures compared against each
	// other must share it.
	AnglesDeg []float64
	// P is the pseudospectrum, normalised to unit total energy so metric
	// comparisons are scale-free.
	P []float64
}

// FromPseudospectrum builds a signature from a MUSIC pseudospectrum,
// normalising to unit energy. The bearing grid is shared with the
// pseudospectrum (a grid is immutable once built; nothing in the
// signature lifecycle writes it), while P is copied since the signature
// normalises it in place.
func FromPseudospectrum(ps *music.Pseudospectrum) *Signature {
	s := &Signature{
		AnglesDeg: ps.AnglesDeg,
		P:         append([]float64(nil), ps.P...),
	}
	s.normalize()
	return s
}

func (s *Signature) normalize() {
	var e float64
	for _, v := range s.P {
		e += v * v
	}
	e = math.Sqrt(e)
	if e == 0 {
		return
	}
	for i := range s.P {
		s.P[i] /= e
	}
}

// Clone returns a deep copy.
func (s *Signature) Clone() *Signature {
	return &Signature{
		AnglesDeg: append([]float64(nil), s.AnglesDeg...),
		P:         append([]float64(nil), s.P...),
	}
}

// ErrGridMismatch reports signatures on different bearing grids.
var ErrGridMismatch = errors.New("signature: bearing grids differ")

func (s *Signature) checkGrid(o *Signature) error {
	if len(s.P) != len(o.P) || len(s.AnglesDeg) != len(o.AnglesDeg) {
		return ErrGridMismatch
	}
	// Spot-check endpoints rather than every grid point.
	n := len(s.AnglesDeg)
	if n > 0 && (s.AnglesDeg[0] != o.AnglesDeg[0] || s.AnglesDeg[n-1] != o.AnglesDeg[n-1]) {
		return ErrGridMismatch
	}
	return nil
}

// Similarity returns the cosine similarity between two signatures in
// [0, 1] (both are nonnegative spectra): 1 means identical shape.
func Similarity(a, b *Signature) (float64, error) {
	if err := a.checkGrid(b); err != nil {
		return 0, err
	}
	var dot, na, nb float64
	for i := range a.P {
		dot += a.P[i] * b.P[i]
		na += a.P[i] * a.P[i]
		nb += b.P[i] * b.P[i]
	}
	if na == 0 || nb == 0 {
		return 0, nil
	}
	return dot / math.Sqrt(na*nb), nil
}

// Distance returns 1 - Similarity, a dissimilarity in [0, 1].
func Distance(a, b *Signature) (float64, error) {
	sim, err := Similarity(a, b)
	if err != nil {
		return 0, err
	}
	return 1 - sim, nil
}

// PeakBearings returns the bearings of the signature's dominant peaks
// (direct path plus reflections), strongest first.
func (s *Signature) PeakBearings(minSepDeg, floorDB float64) []float64 {
	ps := &music.Pseudospectrum{AnglesDeg: s.AnglesDeg, P: s.P}
	peaks := ps.Peaks(minSepDeg, floorDB)
	out := make([]float64, len(peaks))
	for i, p := range peaks {
		out[i] = p.BearingDeg
	}
	return out
}

// --- Matching and tracking (section 2.3.2) ---

// MatchPolicy sets the accept/flag decision.
type MatchPolicy struct {
	// MaxDistance accepts a packet when Distance(stored, observed) is at
	// most this value. Calibrated so normal channel drift stays below it
	// while a different transmit location exceeds it.
	MaxDistance float64
}

// DefaultPolicy returns a threshold that separates same-location drift
// from different-location signatures in the testbed experiments.
func DefaultPolicy() MatchPolicy { return MatchPolicy{MaxDistance: 0.12} }

// Validate rejects a policy no tracker can apply: the cosine distance
// lives in [0, 2], so a non-positive threshold flags every packet
// (including the training one) and a threshold above 2 accepts every
// packet. Zero is tolerated as "use the default" by callers that
// normalise configs; Validate itself is strict.
func (p MatchPolicy) Validate() error {
	if p.MaxDistance <= 0 || p.MaxDistance > 2 {
		return fmt.Errorf("signature: MaxDistance %g outside (0, 2]", p.MaxDistance)
	}
	return nil
}

// Decision is the outcome of a signature check.
type Decision int

const (
	// Accept: signature matches the stored profile.
	Accept Decision = iota
	// Flag: signature deviates — possible address spoofing.
	Flag
)

// String names the decision.
func (d Decision) String() string {
	if d == Accept {
		return "accept"
	}
	return "flag"
}

// Verdict is the scored outcome of a signature check: the binary
// decision plus the distance it was made at and the threshold it was
// made against, so callers (and the controller's defense engine) see
// *how close* the call was, not just which side of the line it fell on.
type Verdict struct {
	Decision Decision
	// Distance is the observed signature distance to the certified Scl.
	Distance float64
	// Threshold is the policy's MaxDistance the distance was compared to.
	Threshold float64
}

// Margin is the verdict's headroom: Threshold - Distance. Positive for
// accepted packets (how much drift remained before a flag), negative
// for flagged ones (how far past the threshold the mismatch landed).
// A barely-flagged packet (margin just below zero) and a
// gross mismatch (margin near -Threshold or beyond) carry very
// different threat weight downstream.
func (v Verdict) Margin() float64 { return v.Threshold - v.Distance }

// Severity is the normalised exceedance of a flagged verdict:
// max(0, (Distance-Threshold)/Threshold). Zero for accepted packets,
// 1.0 when the distance doubled the threshold. The defense engine
// scales spoof weights by it.
func (v Verdict) Severity() float64 {
	if v.Threshold <= 0 || v.Distance <= v.Threshold {
		return 0
	}
	return (v.Distance - v.Threshold) / v.Threshold
}

// Tracker maintains a client's certified signature Scl, updating it with
// accepted observations so that slow channel drift is tracked while abrupt
// changes are flagged (the paper: "Since Scl changes when the client or
// nearby obstacles move, the AP needs to track and update Scl").
type Tracker struct {
	Policy MatchPolicy
	// Alpha is the EWMA weight of a new accepted observation.
	Alpha float64

	stored *Signature
	// consecutive flags, for diagnostics/hysteresis by callers
	flagRun int
}

// NewTracker starts a tracker from the training-stage signature.
func NewTracker(initial *Signature, policy MatchPolicy, alpha float64) *Tracker {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.25
	}
	return &Tracker{Policy: policy, Alpha: alpha, stored: initial.Clone()}
}

// Stored returns (a copy of) the current certified signature.
func (t *Tracker) Stored() *Signature { return t.stored.Clone() }

// FlagRun returns the current count of consecutive flagged observations.
func (t *Tracker) FlagRun() int { return t.flagRun }

// Observe checks an incoming signature against the stored one. Accepted
// observations update the stored signature by EWMA; flagged ones leave it
// untouched (an attacker must not be able to walk the profile toward
// itself). The distance is returned for logging/metrics.
func (t *Tracker) Observe(obs *Signature) (Decision, float64, error) {
	v, err := t.ObserveVerdict(obs)
	return v.Decision, v.Distance, err
}

// ObserveVerdict is Observe returning the full scored verdict — the
// decision together with the distance and the threshold it was judged
// against, so the margin of the call survives into the caller.
func (t *Tracker) ObserveVerdict(obs *Signature) (Verdict, error) {
	v := Verdict{Threshold: t.Policy.MaxDistance}
	d, err := Distance(t.stored, obs)
	if err != nil {
		v.Decision = Flag
		return v, err
	}
	v.Distance = d
	if d > t.Policy.MaxDistance {
		t.flagRun++
		v.Decision = Flag
		return v, nil
	}
	t.flagRun = 0
	for i := range t.stored.P {
		t.stored.P[i] = (1-t.Alpha)*t.stored.P[i] + t.Alpha*obs.P[i]
	}
	t.stored.normalize()
	v.Decision = Accept
	return v, nil
}

// --- Serialisation ---

// magic identifies the wire format.
const magic = uint32(0x53414e47) // "SANG"

// Marshal encodes the signature in a compact binary form (big endian):
// magic, count, then angle/value float64 pairs.
func (s *Signature) Marshal() []byte {
	n := len(s.P)
	out := make([]byte, 8+16*n)
	binary.BigEndian.PutUint32(out[0:4], magic)
	binary.BigEndian.PutUint32(out[4:8], uint32(n))
	for i := 0; i < n; i++ {
		binary.BigEndian.PutUint64(out[8+16*i:], math.Float64bits(s.AnglesDeg[i]))
		binary.BigEndian.PutUint64(out[16+16*i:], math.Float64bits(s.P[i]))
	}
	return out
}

// Unmarshal decodes a signature produced by Marshal.
func Unmarshal(b []byte) (*Signature, error) {
	if len(b) < 8 {
		return nil, errors.New("signature: short buffer")
	}
	if binary.BigEndian.Uint32(b[0:4]) != magic {
		return nil, errors.New("signature: bad magic")
	}
	n := int(binary.BigEndian.Uint32(b[4:8]))
	if n < 0 || len(b) != 8+16*n {
		return nil, fmt.Errorf("signature: length %d does not match count %d", len(b), n)
	}
	s := &Signature{AnglesDeg: make([]float64, n), P: make([]float64, n)}
	for i := 0; i < n; i++ {
		s.AnglesDeg[i] = math.Float64frombits(binary.BigEndian.Uint64(b[8+16*i:]))
		s.P[i] = math.Float64frombits(binary.BigEndian.Uint64(b[16+16*i:]))
	}
	return s, nil
}
