package signature

import (
	"math"
	"testing"
	"testing/quick"

	"secureangle/internal/music"
)

// gauss builds a pseudospectrum with Gaussian peaks at the given bearings.
func gauss(grid []float64, centers []float64, widths []float64, heights []float64) *music.Pseudospectrum {
	p := make([]float64, len(grid))
	for i, a := range grid {
		for c := range centers {
			d := a - centers[c]
			p[i] += heights[c] * math.Exp(-d*d/(2*widths[c]*widths[c]))
		}
	}
	return &music.Pseudospectrum{AnglesDeg: grid, P: p}
}

func grid360() []float64 {
	g := make([]float64, 360)
	for i := range g {
		g[i] = float64(i)
	}
	return g
}

func TestFromPseudospectrumNormalises(t *testing.T) {
	s := FromPseudospectrum(gauss(grid360(), []float64{100}, []float64{5}, []float64{42}))
	var e float64
	for _, v := range s.P {
		e += v * v
	}
	if math.Abs(e-1) > 1e-9 {
		t.Errorf("energy = %v, want 1", e)
	}
}

func TestSelfSimilarityIsOne(t *testing.T) {
	s := FromPseudospectrum(gauss(grid360(), []float64{100, 200}, []float64{5, 8}, []float64{1, 0.4}))
	sim, err := Similarity(s, s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sim-1) > 1e-12 {
		t.Errorf("self similarity = %v", sim)
	}
	d, _ := Distance(s, s)
	if math.Abs(d) > 1e-12 {
		t.Errorf("self distance = %v", d)
	}
}

func TestDifferentLocationsAreDistant(t *testing.T) {
	a := FromPseudospectrum(gauss(grid360(), []float64{100, 160}, []float64{4, 6}, []float64{1, 0.3}))
	b := FromPseudospectrum(gauss(grid360(), []float64{250, 40}, []float64{4, 6}, []float64{1, 0.3}))
	d, err := Distance(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d < 0.5 {
		t.Errorf("distance between disjoint signatures = %v, want large", d)
	}
}

func TestSmallDriftIsClose(t *testing.T) {
	a := FromPseudospectrum(gauss(grid360(), []float64{100, 160}, []float64{4, 6}, []float64{1, 0.3}))
	// Same direct path; reflection peak moved 3 degrees and reweighted.
	b := FromPseudospectrum(gauss(grid360(), []float64{100, 163}, []float64{4, 6}, []float64{1, 0.25}))
	d, err := Distance(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d > DefaultPolicy().MaxDistance {
		t.Errorf("drifted signature distance = %v, above default threshold", d)
	}
}

func TestSimilaritySymmetricProperty(t *testing.T) {
	f := func(c1, c2 uint16) bool {
		g := grid360()
		a := FromPseudospectrum(gauss(g, []float64{float64(c1 % 360)}, []float64{5}, []float64{1}))
		b := FromPseudospectrum(gauss(g, []float64{float64(c2 % 360)}, []float64{5}, []float64{1}))
		s1, e1 := Similarity(a, b)
		s2, e2 := Similarity(b, a)
		if e1 != nil || e2 != nil {
			return false
		}
		return math.Abs(s1-s2) < 1e-12 && s1 >= -1e-12 && s1 <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGridMismatch(t *testing.T) {
	a := FromPseudospectrum(gauss(grid360(), []float64{100}, []float64{5}, []float64{1}))
	short := grid360()[:180]
	b := FromPseudospectrum(gauss(short, []float64{100}, []float64{5}, []float64{1}))
	if _, err := Similarity(a, b); err != ErrGridMismatch {
		t.Errorf("err = %v, want ErrGridMismatch", err)
	}
	// Same length, different grid values.
	shifted := make([]float64, 360)
	for i := range shifted {
		shifted[i] = float64(i) + 0.5
	}
	c := FromPseudospectrum(gauss(shifted, []float64{100}, []float64{5}, []float64{1}))
	if _, err := Similarity(a, c); err != ErrGridMismatch {
		t.Errorf("err = %v, want ErrGridMismatch", err)
	}
}

func TestPeakBearings(t *testing.T) {
	s := FromPseudospectrum(gauss(grid360(), []float64{100, 200, 300}, []float64{4, 4, 4}, []float64{1, 0.6, 0.3}))
	peaks := s.PeakBearings(10, 20)
	if len(peaks) != 3 {
		t.Fatalf("peaks = %v", peaks)
	}
	if peaks[0] != 100 || peaks[1] != 200 || peaks[2] != 300 {
		t.Errorf("peak order = %v", peaks)
	}
}

func TestTrackerAcceptsAndTracksDrift(t *testing.T) {
	g := grid360()
	initial := FromPseudospectrum(gauss(g, []float64{100, 160}, []float64{4, 6}, []float64{1, 0.3}))
	tr := NewTracker(initial, DefaultPolicy(), 0.3)

	// Slow drift of the reflection peak: 160 -> 170 in one-degree steps.
	for step := 1; step <= 10; step++ {
		obs := FromPseudospectrum(gauss(g, []float64{100, 160 + float64(step)}, []float64{4, 6}, []float64{1, 0.3}))
		dec, d, err := tr.Observe(obs)
		if err != nil {
			t.Fatal(err)
		}
		if dec != Accept {
			t.Fatalf("step %d flagged (distance %v): tracker failed to follow drift", step, d)
		}
	}
	// The stored signature has followed: it is now closer to 170 than the
	// original 160 profile.
	final := FromPseudospectrum(gauss(g, []float64{100, 170}, []float64{4, 6}, []float64{1, 0.3}))
	dNew, _ := Distance(tr.Stored(), final)
	dOld, _ := Distance(tr.Stored(), initial)
	if dNew >= dOld {
		t.Errorf("tracker did not follow drift: d(new)=%v d(old)=%v", dNew, dOld)
	}
}

func TestTrackerFlagsAttackerAndHoldsProfile(t *testing.T) {
	g := grid360()
	legit := FromPseudospectrum(gauss(g, []float64{100, 160}, []float64{4, 6}, []float64{1, 0.3}))
	attacker := FromPseudospectrum(gauss(g, []float64{260, 30}, []float64{4, 6}, []float64{1, 0.3}))
	tr := NewTracker(legit, DefaultPolicy(), 0.3)

	before := tr.Stored()
	for i := 0; i < 5; i++ {
		dec, _, err := tr.Observe(attacker)
		if err != nil {
			t.Fatal(err)
		}
		if dec != Flag {
			t.Fatal("attacker signature accepted")
		}
	}
	if tr.FlagRun() != 5 {
		t.Errorf("flag run = %d", tr.FlagRun())
	}
	// Stored profile must be unchanged: flagged packets must not be able
	// to walk the profile toward the attacker.
	after := tr.Stored()
	d, _ := Distance(before, after)
	if d > 1e-12 {
		t.Errorf("flagged observations moved the stored profile by %v", d)
	}
	// A legit packet resets the run.
	if dec, _, _ := tr.Observe(legit); dec != Accept {
		t.Error("legit packet flagged after attack")
	}
	if tr.FlagRun() != 0 {
		t.Error("flag run not reset")
	}
}

func TestTrackerAlphaClamp(t *testing.T) {
	g := grid360()
	s := FromPseudospectrum(gauss(g, []float64{100}, []float64{5}, []float64{1}))
	tr := NewTracker(s, DefaultPolicy(), -3)
	if tr.Alpha != 0.25 {
		t.Errorf("alpha = %v, want default 0.25", tr.Alpha)
	}
}

func TestDecisionString(t *testing.T) {
	if Accept.String() != "accept" || Flag.String() != "flag" {
		t.Error("decision strings")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	s := FromPseudospectrum(gauss(grid360(), []float64{100, 200}, []float64{5, 7}, []float64{1, 0.5}))
	b := s.Marshal()
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.checkGrid(got); err != nil {
		t.Fatal(err)
	}
	for i := range s.P {
		if s.P[i] != got.P[i] || s.AnglesDeg[i] != got.AnglesDeg[i] {
			t.Fatal("round trip mismatch")
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Error("nil accepted")
	}
	if _, err := Unmarshal(make([]byte, 8)); err == nil {
		t.Error("bad magic accepted")
	}
	s := FromPseudospectrum(gauss(grid360(), []float64{100}, []float64{5}, []float64{1}))
	b := s.Marshal()
	if _, err := Unmarshal(b[:len(b)-8]); err == nil {
		t.Error("truncated accepted")
	}
}

func TestZeroSignature(t *testing.T) {
	z := FromPseudospectrum(&music.Pseudospectrum{AnglesDeg: []float64{0, 1}, P: []float64{0, 0}})
	sim, err := Similarity(z, z)
	if err != nil {
		t.Fatal(err)
	}
	if sim != 0 {
		t.Errorf("zero-signature similarity = %v", sim)
	}
}

// --- Scored verdicts (the defense engine's margin input) ---

func TestDefenseVerdictMarginAndSeverity(t *testing.T) {
	g := grid360()
	legit := FromPseudospectrum(gauss(g, []float64{100, 160}, []float64{4, 6}, []float64{1, 0.3}))
	attacker := FromPseudospectrum(gauss(g, []float64{260, 30}, []float64{4, 6}, []float64{1, 0.3}))
	tr := NewTracker(legit, DefaultPolicy(), 0.3)

	// Same location: accepted with positive margin.
	v, err := tr.ObserveVerdict(legit.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if v.Decision != Accept || v.Distance != 0 {
		t.Fatalf("self verdict = %+v", v)
	}
	if v.Threshold != DefaultPolicy().MaxDistance {
		t.Errorf("threshold %v not exported", v.Threshold)
	}
	if m := v.Margin(); m != v.Threshold {
		t.Errorf("margin %v, want full threshold headroom", m)
	}
	if v.Severity() != 0 {
		t.Errorf("accepted verdict severity %v, want 0", v.Severity())
	}

	// Different location: flagged with negative margin, and the scored
	// verdict must agree with the legacy Observe tuple.
	v, err = tr.ObserveVerdict(attacker)
	if err != nil {
		t.Fatal(err)
	}
	if v.Decision != Flag {
		t.Fatalf("attacker accepted: %+v", v)
	}
	if v.Margin() >= 0 {
		t.Errorf("flagged margin %v, want negative", v.Margin())
	}
	wantSev := (v.Distance - v.Threshold) / v.Threshold
	if math.Abs(v.Severity()-wantSev) > 1e-12 || v.Severity() <= 0 {
		t.Errorf("severity %v, want %v", v.Severity(), wantSev)
	}

	tr2 := NewTracker(legit, DefaultPolicy(), 0.3)
	dec, dist, err := tr2.Observe(attacker)
	if err != nil {
		t.Fatal(err)
	}
	if dec != v.Decision || dist != v.Distance {
		t.Errorf("Observe (%v, %v) disagrees with ObserveVerdict %+v", dec, dist, v)
	}
}

func TestDefenseVerdictGridMismatchFlags(t *testing.T) {
	g := grid360()
	legit := FromPseudospectrum(gauss(g, []float64{100}, []float64{4}, []float64{1}))
	tr := NewTracker(legit, DefaultPolicy(), 0.3)
	short := &Signature{AnglesDeg: g[:10], P: legit.P[:10]}
	v, err := tr.ObserveVerdict(short)
	if err == nil || v.Decision != Flag {
		t.Fatalf("grid mismatch verdict = %+v, err %v", v, err)
	}
}

func TestDefenseVerdictSeverityDegenerateThreshold(t *testing.T) {
	v := Verdict{Decision: Flag, Distance: 0.5, Threshold: 0}
	if s := v.Severity(); s != 0 {
		t.Errorf("zero-threshold severity = %v, want 0 (no division blow-up)", s)
	}
}
