package signature

import (
	"math"
	"sort"
)

// L2Distance returns the Euclidean distance between two unit-energy
// signatures, in [0, sqrt(2)] for nonnegative spectra. It penalises
// absolute shape differences more evenly than cosine distance, which is
// dominated by the tallest peaks.
func L2Distance(a, b *Signature) (float64, error) {
	if err := a.checkGrid(b); err != nil {
		return 0, err
	}
	var s float64
	for i := range a.P {
		d := a.P[i] - b.P[i]
		s += d * d
	}
	return math.Sqrt(s), nil
}

// PeakSetDistance compares the *peak structure* of two signatures: the
// direct-path and reflection bearings (section 1: "The combined direct
// path and reflection path AoAs form the unique signature"). It is the
// mean, over the peaks of each signature, of the angular distance to the
// nearest peak of the other (a symmetric Chamfer distance on the circle),
// in degrees. Robust to peak-height changes that leave geometry intact —
// the regime where reflection gains drift but bearings hold.
func PeakSetDistance(a, b *Signature, minSepDeg, floorDB float64) (float64, error) {
	if err := a.checkGrid(b); err != nil {
		return 0, err
	}
	pa := a.PeakBearings(minSepDeg, floorDB)
	pb := b.PeakBearings(minSepDeg, floorDB)
	if len(pa) == 0 || len(pb) == 0 {
		return 180, nil
	}
	return (chamfer(pa, pb) + chamfer(pb, pa)) / 2, nil
}

func chamfer(from, to []float64) float64 {
	var sum float64
	for _, f := range from {
		best := 180.0
		for _, t := range to {
			if d := angSepDeg(f, t); d < best {
				best = d
			}
		}
		sum += best
	}
	return sum / float64(len(from))
}

func angSepDeg(a, b float64) float64 {
	d := math.Mod(math.Abs(a-b), 360)
	if d > 180 {
		d = 360 - d
	}
	return d
}

// Metric selects a distance function for matching.
type Metric int

const (
	// Cosine is 1 - cosine similarity (the default tracker metric).
	Cosine Metric = iota
	// L2 is Euclidean distance on unit-energy spectra.
	L2
	// PeakSet is the symmetric nearest-peak angular distance (degrees,
	// so thresholds differ from the unit-free metrics).
	PeakSet
)

// String names the metric.
func (m Metric) String() string {
	switch m {
	case Cosine:
		return "cosine"
	case L2:
		return "l2"
	case PeakSet:
		return "peakset"
	default:
		return "unknown"
	}
}

// DistanceWith computes the chosen metric.
func DistanceWith(m Metric, a, b *Signature) (float64, error) {
	switch m {
	case Cosine:
		return Distance(a, b)
	case L2:
		return L2Distance(a, b)
	case PeakSet:
		return PeakSetDistance(a, b, 8, 15)
	default:
		return Distance(a, b)
	}
}

// RankMatches orders candidate signatures by ascending distance to the
// probe under the chosen metric — the registry-search primitive for
// identifying which known client a packet most resembles.
func RankMatches(m Metric, probe *Signature, candidates map[string]*Signature) ([]Match, error) {
	out := make([]Match, 0, len(candidates))
	for name, sig := range candidates {
		d, err := DistanceWith(m, probe, sig)
		if err != nil {
			return nil, err
		}
		out = append(out, Match{Name: name, Distance: d})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Distance != out[j].Distance {
			return out[i].Distance < out[j].Distance
		}
		return out[i].Name < out[j].Name
	})
	return out, nil
}

// Match is one ranked candidate.
type Match struct {
	Name     string
	Distance float64
}
