package signature

// Native fuzzing of the signature codec: certified signatures travel
// through snapshots and over operator tooling, so Unmarshal can see
// arbitrary bytes. It must never panic, and whatever it accepts must
// re-encode to a canonical form that is a fixed point — the same
// contract the journal and netproto wire fuzzers pin.

import (
	"bytes"
	"testing"
)

func FuzzSignatureCodec(f *testing.F) {
	good := &Signature{
		AnglesDeg: []float64{-90, -45, 0, 45, 90},
		P:         []float64{0.05, 0.2, 0.5, 0.2, 0.05},
	}
	f.Add(good.Marshal())
	f.Add((&Signature{}).Marshal())
	f.Add([]byte{})
	f.Add([]byte{0x53, 0x41, 0x4e, 0x47}) // magic, no count
	f.Add(good.Marshal()[:20])            // truncated mid-pair

	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := Unmarshal(b)
		if err != nil {
			return
		}
		if len(s.AnglesDeg) != len(s.P) {
			t.Fatalf("accepted ragged signature: %d angles, %d weights", len(s.AnglesDeg), len(s.P))
		}
		enc := s.Marshal()
		if !bytes.Equal(enc, b) {
			t.Fatalf("decode->encode not a fixed point:\n in: %x\nout: %x", b, enc)
		}
		s2, err := Unmarshal(enc)
		if err != nil {
			t.Fatalf("canonical form rejected: %v", err)
		}
		if !bytes.Equal(s2.Marshal(), enc) {
			t.Fatal("second round trip diverged")
		}
	})
}
