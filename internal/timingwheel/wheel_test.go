package timingwheel

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestFiresOnce(t *testing.T) {
	w := New(time.Millisecond)
	defer w.Stop()
	ch := make(chan struct{})
	tm := &Timer{Fn: func() { close(ch) }}
	w.Schedule(tm, 5*time.Millisecond)
	select {
	case <-ch:
	case <-time.After(2 * time.Second):
		t.Fatal("timer did not fire")
	}
}

func TestNeverEarly(t *testing.T) {
	w := New(time.Millisecond)
	defer w.Stop()
	const d = 20 * time.Millisecond
	start := time.Now()
	var fired time.Duration
	ch := make(chan struct{})
	tm := &Timer{Fn: func() { fired = time.Since(start); close(ch) }}
	w.Schedule(tm, d)
	<-ch
	// One tick of quantisation slack under the deadline is the contract.
	if fired < d-time.Millisecond {
		t.Errorf("fired after %v, scheduled for %v", fired, d)
	}
}

func TestCancel(t *testing.T) {
	w := New(time.Millisecond)
	defer w.Stop()
	var fired atomic.Bool
	tm := &Timer{Fn: func() { fired.Store(true) }}
	w.Schedule(tm, 30*time.Millisecond)
	if !w.Cancel(tm) {
		t.Fatal("Cancel on a scheduled timer reported false")
	}
	if w.Cancel(tm) {
		t.Error("second Cancel reported true")
	}
	time.Sleep(60 * time.Millisecond)
	if fired.Load() {
		t.Error("cancelled timer fired")
	}
}

func TestPeriodicReschedule(t *testing.T) {
	w := New(time.Millisecond)
	defer w.Stop()
	var n atomic.Int32
	done := make(chan struct{})
	var tm *Timer
	tm = &Timer{Fn: func() {
		if n.Add(1) == 5 {
			close(done)
			return
		}
		w.Schedule(tm, 2*time.Millisecond)
	}}
	w.Schedule(tm, 2*time.Millisecond)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatalf("periodic timer fired %d/5 times", n.Load())
	}
}

func TestStopWaitDrainsInFlight(t *testing.T) {
	w := New(time.Millisecond)
	defer w.Stop()
	entered := make(chan struct{})
	release := make(chan struct{})
	var after atomic.Bool
	tm := &Timer{Fn: func() {
		close(entered)
		<-release
		after.Store(true)
	}}
	w.Schedule(tm, time.Millisecond)
	<-entered
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(release)
	}()
	w.StopWait(tm)
	if !after.Load() {
		t.Error("StopWait returned before the in-flight callback finished")
	}
}

// TestHierarchyLongDelay schedules past the level-0 span (64 ticks) so
// the deadline must survive at least one cascade.
func TestHierarchyLongDelay(t *testing.T) {
	w := New(time.Millisecond)
	defer w.Stop()
	ch := make(chan struct{})
	tm := &Timer{Fn: func() { close(ch) }}
	w.Schedule(tm, 100*time.Millisecond) // > 64 ticks: lives in level 1 first
	start := time.Now()
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("cascaded timer did not fire")
	}
	if e := time.Since(start); e < 99*time.Millisecond {
		t.Errorf("fired after %v, scheduled for 100ms", e)
	}
}

func TestManyTimersAllFire(t *testing.T) {
	w := New(time.Millisecond)
	defer w.Stop()
	const n = 200
	var fired atomic.Int32
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		tm := &Timer{Fn: func() { fired.Add(1); wg.Done() }}
		w.Schedule(tm, time.Duration(1+i%90)*time.Millisecond)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("only %d/%d timers fired", fired.Load(), n)
	}
}

func TestRescheduleMovesDeadline(t *testing.T) {
	w := New(time.Millisecond)
	defer w.Stop()
	ch := make(chan struct{})
	tm := &Timer{Fn: func() { close(ch) }}
	w.Schedule(tm, 500*time.Millisecond)
	w.Schedule(tm, 5*time.Millisecond) // move earlier; must not fire twice
	select {
	case <-ch:
	case <-time.After(2 * time.Second):
		t.Fatal("moved timer did not fire at the earlier deadline")
	}
}

func TestSharedAcquireRelease(t *testing.T) {
	a := Acquire()
	b := Acquire()
	if a != b {
		t.Error("Acquire returned distinct wheels")
	}
	ch := make(chan struct{})
	tm := &Timer{Fn: func() { close(ch) }}
	a.Schedule(tm, 2*time.Millisecond)
	<-ch
	Release(b)
	Release(a)
	sharedMu.Lock()
	if sharedRef != 0 || sharedW != nil {
		t.Errorf("shared wheel leaked: ref=%d", sharedRef)
	}
	sharedMu.Unlock()
	// A fresh Acquire after full release starts a new wheel.
	c := Acquire()
	defer Release(c)
	if c == nil {
		t.Fatal("re-Acquire returned nil")
	}
}

func TestConcurrentScheduleCancel(t *testing.T) {
	w := New(time.Millisecond)
	defer w.Stop()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tm := &Timer{Fn: func() {}}
			for i := 0; i < 200; i++ {
				w.Schedule(tm, time.Duration(1+i%70)*time.Millisecond)
				if i%3 == 0 {
					w.Cancel(tm)
				}
			}
			w.StopWait(tm)
		}()
	}
	wg.Wait()
}
