// Package timingwheel implements a hierarchical timing wheel in the
// style of the mintmr timers of fast dataplanes (and the classic
// Varghese-Lauck scheme the kernel timer wheel uses): time is
// quantised into ticks, each wheel level holds 64 slots, and a timer
// lives in the slot of the level whose span covers its deadline.
// Schedule and Cancel are O(1) — an intrusive doubly-linked list splice
// — and a tick advance touches only the slots that actually expire,
// cascading a higher-level slot down one level when the lower wheel
// wraps.
//
// One driver goroutine serves any number of timers: it sleeps until the
// earliest pending deadline (not on a coarse ticker) and is woken early
// only when a newly scheduled timer beats the current wake-up. The
// fusion and defense engines share a single process-wide wheel through
// Acquire/Release, replacing their per-engine sweeper goroutines.
package timingwheel

import (
	"sync"
	"time"
)

const (
	wheelBits = 6
	wheelSize = 1 << wheelBits // 64 slots per level
	wheelMask = wheelSize - 1
	levels    = 4 // horizon: 64^4 ticks (= ~194 days at 1ms)
)

// Timer is one schedulable callback. The zero value with Fn set is
// ready to use; a Timer must not be copied after first Schedule. The
// callback runs on the wheel's driver goroutine, so it must not block
// for long — and it may reschedule its own timer, which is how the
// engines express periodic sweeps without a ticker goroutine each.
type Timer struct {
	// Fn is the expiry callback.
	Fn func()

	next, prev *Timer
	slot       *slot
	when       uint64 // absolute deadline, in ticks
}

type slot struct {
	head Timer // sentinel: head.next..head.prev is the ring
}

func (s *slot) init() {
	s.head.next, s.head.prev = &s.head, &s.head
	s.head.slot = s
}

func (s *slot) push(t *Timer) {
	t.slot = s
	t.prev = s.head.prev
	t.next = &s.head
	s.head.prev.next = t
	s.head.prev = t
}

// unlink removes t from its slot ring; safe on an unscheduled timer.
func (t *Timer) unlink() {
	if t.slot == nil {
		return
	}
	t.prev.next = t.next
	t.next.prev = t.prev
	t.next, t.prev, t.slot = nil, nil, nil
}

// Wheel is a hierarchical timing wheel with its own driver goroutine.
type Wheel struct {
	tick  time.Duration
	start time.Time

	mu    sync.Mutex // guards slots, cur, timer links
	slots [levels][wheelSize]slot
	cur   uint64 // last tick fully processed

	// runMu is held for the duration of each expiry batch, so
	// StopWait can block until an in-flight callback returns.
	runMu sync.Mutex

	wake chan struct{} // kicked when an earlier deadline appears
	done chan struct{}
	wg   sync.WaitGroup
}

// DefaultTick is the default wheel resolution: deadlines are rounded up
// to the next multiple of it. 1ms is far below the 50ms engine sweep
// period and matches the latency of a woken goroutine anyway.
const DefaultTick = time.Millisecond

// New starts a wheel with the given tick resolution (0 selects
// DefaultTick). Stop it with Stop.
func New(tick time.Duration) *Wheel {
	if tick <= 0 {
		tick = DefaultTick
	}
	w := &Wheel{
		tick:  tick,
		start: time.Now(),
		wake:  make(chan struct{}, 1),
		done:  make(chan struct{}),
	}
	for l := range w.slots {
		for i := range w.slots[l] {
			w.slots[l][i].init()
		}
	}
	w.wg.Add(1)
	go w.run()
	return w
}

// Stop terminates the driver goroutine and waits for it. Pending timers
// are abandoned without firing.
func (w *Wheel) Stop() {
	close(w.done)
	w.wg.Wait()
}

// now returns the current time in ticks (monotonic since wheel start).
func (w *Wheel) now() uint64 {
	return uint64(time.Since(w.start) / w.tick)
}

// Schedule arms t to fire after d (rounded up to the wheel resolution,
// so a timer never fires early). A scheduled timer is moved, not
// duplicated. O(1).
func (w *Wheel) Schedule(t *Timer, d time.Duration) {
	if d < 0 {
		d = 0
	}
	ticks := uint64((d + w.tick - 1) / w.tick)
	if ticks == 0 {
		ticks = 1
	}
	w.mu.Lock()
	t.unlink()
	t.when = w.now() + ticks
	if t.when <= w.cur {
		t.when = w.cur + 1
	}
	w.place(t)
	earliest := t.when
	w.mu.Unlock()

	// Wake the driver if this deadline may precede its current sleep.
	_ = earliest
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

// Cancel disarms t; it reports whether the timer was scheduled. The
// callback may still be executing — use StopWait to also drain it.
func (w *Wheel) Cancel(t *Timer) bool {
	w.mu.Lock()
	was := t.slot != nil
	t.unlink()
	w.mu.Unlock()
	return was
}

// StopWait cancels t and blocks until any in-flight expiry batch has
// finished, then cancels again — so a callback that rescheduled its own
// timer concurrently with StopWait is also disarmed. On return the
// callback is not running and the timer will not fire.
func (w *Wheel) StopWait(t *Timer) {
	w.Cancel(t)
	w.runMu.Lock()
	//lint:ignore SA2001 the critical section is the wait itself
	w.runMu.Unlock()
	w.Cancel(t)
}

// place files t into the slot for t.when. Caller holds w.mu.
func (w *Wheel) place(t *Timer) {
	delta := t.when - w.cur
	for l := 0; l < levels; l++ {
		if delta < uint64(1)<<(wheelBits*(l+1)) || l == levels-1 {
			idx := (t.when >> (wheelBits * l)) & wheelMask
			w.slots[l][idx].push(t)
			return
		}
	}
}

// nextDue scans for the earliest pending deadline. Caller holds w.mu.
// Returns 0, false when the wheel is empty. O(levels * 64), run only
// when the driver picks its sleep duration.
func (w *Wheel) nextDue() (uint64, bool) {
	best, ok := uint64(0), false
	for l := 0; l < levels; l++ {
		for i := 0; i < wheelSize; i++ {
			s := &w.slots[l][i]
			for t := s.head.next; t != &s.head; t = t.next {
				if !ok || t.when < best {
					best, ok = t.when, true
				}
			}
		}
	}
	return best, ok
}

// run is the driver loop: sleep to the earliest deadline, advance the
// wheel, fire what expired.
func (w *Wheel) run() {
	defer w.wg.Done()
	sleep := time.NewTimer(time.Hour)
	defer sleep.Stop()
	for {
		w.mu.Lock()
		due, ok := w.nextDue()
		w.mu.Unlock()

		var wait time.Duration
		if !ok {
			wait = time.Hour
		} else {
			wait = time.Duration(due)*w.tick - time.Since(w.start)
			if wait < 0 {
				wait = 0
			}
		}
		if !sleep.Stop() {
			select {
			case <-sleep.C:
			default:
			}
		}
		sleep.Reset(wait)

		select {
		case <-w.done:
			return
		case <-w.wake:
		case <-sleep.C:
		}
		w.advance(w.now())
	}
}

// advance processes every tick in (w.cur, to], firing expired timers.
func (w *Wheel) advance(to uint64) {
	w.runMu.Lock()
	defer w.runMu.Unlock()

	var fire *Timer // singly-linked batch via .next
	w.mu.Lock()
	for w.cur < to {
		w.cur++
		// Cascade: when a lower wheel wraps, re-place the slot of the
		// next level whose span just elapsed.
		for l := 1; l < levels; l++ {
			shift := uint(wheelBits * l)
			if w.cur&((uint64(1)<<shift)-1) != 0 {
				break
			}
			idx := (w.cur >> shift) & wheelMask
			s := &w.slots[l][idx]
			for t := s.head.next; t != &s.head; {
				nxt := t.next
				t.unlink()
				w.place(t)
				t = nxt
			}
		}
		// Expire the level-0 slot for this tick.
		s := &w.slots[0][w.cur&wheelMask]
		for t := s.head.next; t != &s.head; {
			nxt := t.next
			t.unlink()
			t.next = fire
			fire = t
			t = nxt
		}
	}
	w.mu.Unlock()

	for t := fire; t != nil; {
		nxt := t.next
		t.next = nil
		if t.Fn != nil {
			t.Fn()
		}
		t = nxt
	}
}

// Shared process-wide wheel, refcounted so it exists only while at
// least one engine is open.
var (
	sharedMu  sync.Mutex
	sharedW   *Wheel
	sharedRef int
)

// Acquire returns the shared wheel, starting it on first use.
// Pair every Acquire with exactly one Release.
func Acquire() *Wheel {
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if sharedRef == 0 {
		sharedW = New(DefaultTick)
	}
	sharedRef++
	return sharedW
}

// Release drops one reference to the shared wheel, stopping its driver
// when the last user is gone.
func Release(w *Wheel) {
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if w != sharedW || sharedRef == 0 {
		return
	}
	sharedRef--
	if sharedRef == 0 {
		sharedW.Stop()
		sharedW = nil
	}
}
