package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceStdDev(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !approx(Mean(x), 5, 1e-12) {
		t.Errorf("Mean = %v", Mean(x))
	}
	// Sample variance with n-1: sum sq dev = 32, /7.
	if !approx(Variance(x), 32.0/7, 1e-12) {
		t.Errorf("Variance = %v", Variance(x))
	}
	if !approx(StdDev(x), math.Sqrt(32.0/7), 1e-12) {
		t.Errorf("StdDev = %v", StdDev(x))
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("empty/singleton handling")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = %v, %v", lo, hi)
	}
	lo, hi = MinMax(nil)
	if lo != 0 || hi != 0 {
		t.Error("MinMax(nil)")
	}
}

func TestPercentileAndMedian(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	if !approx(Percentile(x, 0), 1, 1e-12) || !approx(Percentile(x, 100), 5, 1e-12) {
		t.Error("percentile extremes")
	}
	if !approx(Median(x), 3, 1e-12) {
		t.Error("median odd")
	}
	if !approx(Median([]float64{1, 2, 3, 4}), 2.5, 1e-12) {
		t.Error("median even with interpolation")
	}
	if !approx(Percentile(x, 25), 2, 1e-12) {
		t.Errorf("P25 = %v", Percentile(x, 25))
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("Percentile(nil) should be NaN")
	}
	// Percentile must not reorder the caller's slice.
	y := []float64{3, 1, 2}
	Percentile(y, 50)
	if y[0] != 3 || y[1] != 1 {
		t.Error("Percentile mutated input")
	}
}

func TestConfidenceIntervalKnown(t *testing.T) {
	// n=10, std=1: 95% CI half-width = 2.262/sqrt(10) ~ 0.7153.
	x := make([]float64, 10)
	for i := range x {
		x[i] = float64(i)
	}
	sd := StdDev(x)
	want95 := 2.262 * sd / math.Sqrt(10)
	if got := ConfidenceInterval(x, 0.95); !approx(got, want95, 1e-3*want95) {
		t.Errorf("CI95 = %v, want %v", got, want95)
	}
	want99 := 3.250 * sd / math.Sqrt(10)
	if got := ConfidenceInterval(x, 0.99); !approx(got, want99, 1e-3*want99) {
		t.Errorf("CI99 = %v, want %v", got, want99)
	}
	if ConfidenceInterval([]float64{1}, 0.95) != 0 {
		t.Error("CI of singleton should be 0")
	}
}

func TestConfidenceIntervalLargeDF(t *testing.T) {
	x := make([]float64, 100)
	rng := rand.New(rand.NewSource(1))
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	ci95 := ConfidenceInterval(x, 0.95)
	ci99 := ConfidenceInterval(x, 0.99)
	if ci99 <= ci95 {
		t.Errorf("CI99 (%v) should exceed CI95 (%v)", ci99, ci95)
	}
	// Roughly 1.96 * sd / 10.
	want := 1.96 * StdDev(x) / 10
	if !approx(ci95, want, 0.05*want) {
		t.Errorf("CI95 = %v, want ~%v", ci95, want)
	}
}

func TestCircularMeanDeg(t *testing.T) {
	if got := CircularMeanDeg([]float64{350, 10}); !approx(got, 0, 1e-9) && !approx(got, 360, 1e-9) {
		t.Errorf("circular mean of 350,10 = %v", got)
	}
	if got := CircularMeanDeg([]float64{90, 90, 90}); !approx(got, 90, 1e-9) {
		t.Errorf("constant mean = %v", got)
	}
	if got := CircularMeanDeg([]float64{80, 100}); !approx(got, 90, 1e-9) {
		t.Errorf("mean of 80,100 = %v", got)
	}
}

func TestCircularSpreadDeg(t *testing.T) {
	if got := CircularSpreadDeg([]float64{45, 45, 45}); !approx(got, 0, 1e-6) {
		t.Errorf("zero spread = %v", got)
	}
	tight := CircularSpreadDeg([]float64{44, 45, 46})
	wide := CircularSpreadDeg([]float64{0, 90, 180})
	if tight >= wide {
		t.Errorf("spread ordering: tight %v, wide %v", tight, wide)
	}
	if CircularSpreadDeg(nil) != 0 {
		t.Error("empty spread")
	}
}

func TestAngularErrorsDeg(t *testing.T) {
	got := AngularErrorsDeg([]float64{0, 350, 180}, []float64{10, 10, 185})
	want := []float64{10, 20, 5}
	for i := range want {
		if !approx(got[i], want[i], 1e-9) {
			t.Errorf("AngularErrors[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]float64{0.5, 1.5, 1.6, 9.9, -5, 15}, 0, 10, 10)
	if h[0] != 2 { // 0.5 and clamped -5
		t.Errorf("bin0 = %d", h[0])
	}
	if h[1] != 2 {
		t.Errorf("bin1 = %d", h[1])
	}
	if h[9] != 2 { // 9.9 and clamped 15
		t.Errorf("bin9 = %d", h[9])
	}
	var total int
	for _, c := range h {
		total += c
	}
	if total != 6 {
		t.Errorf("total = %d", total)
	}
}

func TestBootstrap(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := []float64{1, 2, 3, 4, 5}
	res := Bootstrap(rng, x, 200, Mean)
	if len(res) != 200 {
		t.Fatalf("len = %d", len(res))
	}
	m := Mean(res)
	if !approx(m, 3, 0.5) {
		t.Errorf("bootstrap mean of means = %v", m)
	}
	if Bootstrap(rng, nil, 10, Mean) != nil {
		t.Error("Bootstrap(nil)")
	}
}

func TestFractionWithin(t *testing.T) {
	x := []float64{-1, 0.5, 2, -3}
	if got := FractionWithin(x, 1); got != 0.5 {
		t.Errorf("FractionWithin = %v", got)
	}
	if FractionWithin(nil, 1) != 0 {
		t.Error("empty input")
	}
}

func TestMeanShiftProperty(t *testing.T) {
	// Mean(x + c) = Mean(x) + c; Variance is shift-invariant.
	f := func(vals [8]float64, c float64) bool {
		c = math.Mod(c, 1000)
		x := vals[:]
		shifted := make([]float64, len(x))
		for i, v := range x {
			shifted[i] = math.Mod(v, 1000) + c
			x[i] = math.Mod(v, 1000)
		}
		return approx(Mean(shifted), Mean(x)+c, 1e-6) &&
			approx(Variance(shifted), Variance(x), 1e-6*(1+Variance(x)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
