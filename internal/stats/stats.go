// Package stats supplies the statistics the evaluation harness reports:
// means, standard deviations, percentiles, Student-t confidence intervals
// (the paper quotes 95% and 99% CIs), circular statistics for bearings,
// histograms, and bootstrap resampling.
package stats

import (
	"math"
	"math/rand"
	"sort"
)

// Mean returns the arithmetic mean, 0 for empty input.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Variance returns the unbiased sample variance (n-1 denominator); 0 when
// fewer than two samples.
func Variance(x []float64) float64 {
	n := len(x)
	if n < 2 {
		return 0
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(x []float64) float64 { return math.Sqrt(Variance(x)) }

// MinMax returns the extrema; zeros for empty input.
func MinMax(x []float64) (lo, hi float64) {
	if len(x) == 0 {
		return 0, 0
	}
	lo, hi = x[0], x[0]
	for _, v := range x[1:] {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return lo, hi
}

// Percentile returns the p-th percentile (0-100) with linear interpolation
// between closest ranks. NaN for empty input.
func Percentile(x []float64, p float64) float64 {
	if len(x) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), x...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 50th percentile.
func Median(x []float64) float64 { return Percentile(x, 50) }

// tCritical approximates the two-sided Student-t critical value for the
// given confidence level (e.g. 0.99) and degrees of freedom, using a table
// for small df and the normal approximation beyond it. Accuracy of ~1% is
// ample for the CI error bars in Figures 5-7.
func tCritical(conf float64, df int) float64 {
	if df < 1 {
		df = 1
	}
	var table []float64
	switch {
	case conf >= 0.985: // 99% two-sided
		table = []float64{63.66, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169,
			3.106, 3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845,
			2.831, 2.819, 2.807, 2.797, 2.787, 2.779, 2.771, 2.763, 2.756, 2.750}
	case conf >= 0.965: // 98% two-sided
		table = []float64{31.82, 6.965, 4.541, 3.747, 3.365, 3.143, 2.998, 2.896, 2.821, 2.764,
			2.718, 2.681, 2.650, 2.624, 2.602, 2.583, 2.567, 2.552, 2.539, 2.528,
			2.518, 2.508, 2.500, 2.492, 2.485, 2.479, 2.473, 2.467, 2.462, 2.457}
	case conf >= 0.925: // 95% two-sided
		table = []float64{12.71, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
			2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
			2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042}
	default: // 90%
		table = []float64{6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812,
			1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725,
			1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697}
	}
	if df <= len(table) {
		return table[df-1]
	}
	// Large-df limits (normal quantiles).
	switch {
	case conf >= 0.985:
		return 2.576
	case conf >= 0.965:
		return 2.326
	case conf >= 0.925:
		return 1.960
	default:
		return 1.645
	}
}

// ConfidenceInterval returns the half-width of the two-sided Student-t
// confidence interval for the mean of x at the given confidence level
// (e.g. 0.99 for the 99% error bars in Figure 5). Zero when fewer than two
// samples.
func ConfidenceInterval(x []float64, conf float64) float64 {
	n := len(x)
	if n < 2 {
		return 0
	}
	return tCritical(conf, n-1) * StdDev(x) / math.Sqrt(float64(n))
}

// CircularMeanDeg returns the circular mean of bearings in degrees, mapped
// to [0, 360). Bearings straddling the 0/360 seam average correctly (e.g.
// 350 and 10 average to 0, not 180).
func CircularMeanDeg(deg []float64) float64 {
	var sx, sy float64
	for _, d := range deg {
		r := d * math.Pi / 180
		sx += math.Cos(r)
		sy += math.Sin(r)
	}
	m := math.Atan2(sy, sx) * 180 / math.Pi
	if m < 0 {
		m += 360
	}
	return m
}

// CircularSpreadDeg returns the circular standard deviation (degrees) of
// bearings, from the mean resultant length R: sqrt(-2 ln R).
func CircularSpreadDeg(deg []float64) float64 {
	n := len(deg)
	if n == 0 {
		return 0
	}
	var sx, sy float64
	for _, d := range deg {
		r := d * math.Pi / 180
		sx += math.Cos(r)
		sy += math.Sin(r)
	}
	R := math.Hypot(sx, sy) / float64(n)
	if R >= 1 {
		return 0
	}
	if R <= 0 {
		return 180
	}
	return math.Sqrt(-2*math.Log(R)) * 180 / math.Pi
}

// AngularErrorsDeg returns |a_i - b_i| on the circle, element-wise, in
// degrees (range [0, 180]).
func AngularErrorsDeg(a, b []float64) []float64 {
	n := min(len(a), len(b))
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		d := math.Mod(math.Abs(a[i]-b[i]), 360)
		if d > 180 {
			d = 360 - d
		}
		out[i] = d
	}
	return out
}

// Histogram bins x into nbins equal-width bins over [lo, hi]; values
// outside the range are clamped into the end bins.
func Histogram(x []float64, lo, hi float64, nbins int) []int {
	out := make([]int, nbins)
	if nbins == 0 || hi <= lo {
		return out
	}
	w := (hi - lo) / float64(nbins)
	for _, v := range x {
		b := int((v - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		out[b]++
	}
	return out
}

// Bootstrap resamples x with replacement iters times, applies stat to each
// resample, and returns the results (for non-parametric CIs on arbitrary
// statistics).
func Bootstrap(rng *rand.Rand, x []float64, iters int, stat func([]float64) float64) []float64 {
	if len(x) == 0 || iters <= 0 {
		return nil
	}
	out := make([]float64, iters)
	resample := make([]float64, len(x))
	for i := 0; i < iters; i++ {
		for j := range resample {
			resample[j] = x[rng.Intn(len(x))]
		}
		out[i] = stat(resample)
	}
	return out
}

// FractionWithin returns the fraction of values with |v| <= bound.
func FractionWithin(x []float64, bound float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var c int
	for _, v := range x {
		if math.Abs(v) <= bound {
			c++
		}
	}
	return float64(c) / float64(len(x))
}
