// Package trace is the decision pipeline's distributed-tracing layer.
// Every observed packet is minted a 64-bit trace ID at the AP; the ID
// rides the wire protocol (v5 sessions), threads through fusion ingest,
// defense state transitions, directive fan-out, and ack receipt, and is
// stamped into the journal event codecs so an incident's causal
// timeline survives in the WAL.
//
// The live side of the layer is the Recorder: a fixed-size lock-striped
// ring of value-type Span records. Recording a span takes one striped
// mutex, copies one value, and bumps one atomic counter — zero
// allocations, tens of nanoseconds — so spans sit directly on the
// packet and controller hot paths without moving the pinned alloc
// budgets.
//
// Sampling is tail-based: every span of every trace enters the ring
// (the ring is the buffer), and the keep/drop decision happens when the
// trace's fate is known. A trace that touches an alert, a quarantine
// directive, or an ack is promoted to the retained store
// unconditionally (Retain); a benign trace is promoted with a
// configurable probability decided by a deterministic hash of its ID
// (Sample), so the retained store always holds every incident plus a
// representative background of normal traffic. Striping is by trace
// ID, so all of a trace's spans live in one stripe and promotion scans
// exactly one stripe under its lock.
package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"secureangle/internal/ops"
	"secureangle/internal/wifi"
)

// Stage labels where in the decision pipeline a span was recorded.
type Stage uint8

const (
	// StageObserve is the AP's estimation pipeline (detect + estimate).
	StageObserve Stage = 1 + iota
	// StageSpoofCheck is the AP's signature match for the packet's MAC.
	StageSpoofCheck
	// StageIngest is the controller accepting one report off the wire.
	StageIngest
	// StageFuse is a fusion decision (bearings crossed into a position).
	StageFuse
	// StageAlert is a spoof verdict arriving at the defense engine.
	StageAlert
	// StageDirective is a countermeasure directive fanning out.
	StageDirective
	// StageAck is an AP acknowledging an applied countermeasure.
	StageAck
	// StageRelease is a quarantine release (operator, decay, or TTL).
	StageRelease
)

// String names the stage for timelines and the /traces document.
func (s Stage) String() string {
	switch s {
	case StageObserve:
		return "observe"
	case StageSpoofCheck:
		return "spoofcheck"
	case StageIngest:
		return "ingest"
	case StageFuse:
		return "fuse"
	case StageAlert:
		return "alert"
	case StageDirective:
		return "directive"
	case StageAck:
		return "ack"
	case StageRelease:
		return "release"
	default:
		return "unknown"
	}
}

// Span is one recorded pipeline hop. It is a value type on purpose:
// recording copies it into a preallocated ring slot, so the steady
// path never allocates. AP is a reference to an existing interned
// string (the AP's session name), never a freshly built one.
type Span struct {
	Trace     uint64
	Start     int64 // unix nanoseconds
	Dur       int64 // nanoseconds
	MAC       wifi.Addr
	Stage     Stage
	Partition uint16
	AP        string
}

// Now returns the wall-clock instant spans are stamped with.
func Now() int64 { return time.Now().UnixNano() }

// splitmix64 finalizer: decorrelates sequential counter values into
// uniformly distributed IDs, so hash-based sampling is unbiased.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

var idState atomic.Uint64

func init() {
	idState.Store(uint64(time.Now().UnixNano()))
}

// NextID mints a process-unique nonzero 64-bit trace ID: a seeded
// counter pushed through a splitmix64 finalizer. Zero is reserved as
// "no trace" (a report from a pre-v5 peer).
func NextID() uint64 {
	x := mix(idState.Add(0x9e3779b97f4a7c15))
	if x == 0 {
		return 1
	}
	return x
}

const (
	numStripes = 32  // power of two; stripe = hash(trace) high bits
	stripeCap  = 256 // spans per stripe (power of two)
	// retainedTraces bounds the tail-sampled store; old traces are
	// evicted round-robin.
	retainedTraces = 256
)

// stripe is one lock-striped ring segment. next is monotone; the slot
// for the i'th span is i % stripeCap.
type stripe struct {
	mu   sync.Mutex
	next uint64
	buf  [stripeCap]Span
	// pad keeps adjacent stripes off the same cache line.
	_ [64]byte
}

// Retention records why a trace survived tail sampling.
type Retention uint8

const (
	// RetainedIncident: the trace touched an alert, directive, or ack.
	RetainedIncident Retention = 1 + iota
	// RetainedSampled: a benign trace kept by the probabilistic sampler.
	RetainedSampled
)

// String names the retention reason.
func (r Retention) String() string {
	switch r {
	case RetainedIncident:
		return "incident"
	case RetainedSampled:
		return "sampled"
	default:
		return "unknown"
	}
}

// retained is one kept trace: the spans promoted out of the ring.
type retained struct {
	id    uint64
	why   Retention
	last  int64 // latest span start, for ordering
	spans []Span
	inUse bool
}

// Recorder is the span ring plus the tail-sampling retained store.
// Record is safe from any goroutine and allocation-free; Retain,
// Sample, and Snapshot may allocate (they run on incident and scrape
// paths, not per packet).
type Recorder struct {
	stripes [numStripes]stripe

	// sampleBits is the benign-keep threshold compared against a
	// 64-bit hash of the trace ID; math.MaxUint64 keeps everything,
	// 0 keeps nothing.
	sampleBits atomic.Uint64

	retMu  sync.Mutex
	ret    [retainedTraces]retained
	retPos int
	byID   map[uint64]int

	mSpans    *ops.Counter
	mIncident *ops.Counter
	mSampled  *ops.Counter
	mDropped  *ops.Counter
}

// DefaultBenignSampleRate is the fraction of benign (no alert, no
// directive) traces the tail sampler retains.
const DefaultBenignSampleRate = 0.01

// NewRecorder builds a Recorder registering its counters on reg
// (nil uses ops.Default()).
func NewRecorder(reg *ops.Registry) *Recorder {
	if reg == nil {
		reg = ops.Default()
	}
	r := &Recorder{
		byID: make(map[uint64]int, retainedTraces),
		mSpans: reg.Counter("secureangle_trace_spans_total",
			"Pipeline spans recorded into the trace ring."),
		mIncident: reg.CounterL("secureangle_trace_retained_total",
			"Traces kept by the tail sampler, by reason.", `reason="incident"`),
		mSampled: reg.CounterL("secureangle_trace_retained_total",
			"Traces kept by the tail sampler, by reason.", `reason="sampled"`),
		mDropped: reg.Counter("secureangle_trace_dropped_total",
			"Benign traces the tail sampler let age out of the ring."),
	}
	r.SetBenignSampleRate(DefaultBenignSampleRate)
	return r
}

var defaultRecorder = NewRecorder(nil)

// Default is the process-wide recorder: the AP pipeline and the
// controller both record here, and the ops endpoint's /traces serves
// it.
func Default() *Recorder { return defaultRecorder }

// SetBenignSampleRate sets the fraction of benign traces the tail
// sampler keeps (clamped to [0, 1]). Incident traces are always kept.
func (r *Recorder) SetBenignSampleRate(p float64) {
	switch {
	case p <= 0:
		r.sampleBits.Store(0)
	case p >= 1:
		r.sampleBits.Store(^uint64(0))
	default:
		r.sampleBits.Store(uint64(p * float64(1<<63) * 2))
	}
}

func (r *Recorder) stripeFor(trace uint64) *stripe {
	return &r.stripes[mix(trace)>>32&(numStripes-1)]
}

// Record writes one span into the ring. Zero-alloc, a few tens of
// nanoseconds; a zero trace ID (an untraced pre-v5 report) is dropped
// so the ring holds only correlatable spans.
func (r *Recorder) Record(s Span) {
	if s.Trace == 0 {
		return
	}
	st := r.stripeFor(s.Trace)
	st.mu.Lock()
	st.buf[st.next&(stripeCap-1)] = s
	st.next++
	st.mu.Unlock()
	r.mSpans.Add(1)
}

// collect copies every span of trace id still live in its stripe,
// appending to dst.
func (r *Recorder) collect(id uint64, dst []Span) []Span {
	st := r.stripeFor(id)
	st.mu.Lock()
	n := st.next
	lo := uint64(0)
	if n > stripeCap {
		lo = n - stripeCap
	}
	for i := lo; i < n; i++ {
		if sp := st.buf[i&(stripeCap-1)]; sp.Trace == id {
			dst = append(dst, sp)
		}
	}
	st.mu.Unlock()
	return dst
}

// promote moves a trace's ring spans into the retained store, merging
// with any spans already retained for it (an incident trace is
// promoted again on each escalation, picking up the new spans).
func (r *Recorder) promote(id uint64, why Retention) {
	fresh := r.collect(id, nil)
	r.retMu.Lock()
	defer r.retMu.Unlock()
	slot, ok := r.byID[id]
	if !ok {
		slot = r.retPos % retainedTraces
		r.retPos++
		if old := &r.ret[slot]; old.inUse {
			delete(r.byID, old.id)
		}
		r.ret[slot] = retained{id: id, why: why, inUse: true}
		r.byID[id] = slot
	}
	t := &r.ret[slot]
	if why == RetainedIncident {
		t.why = RetainedIncident
	}
	for _, sp := range fresh {
		if !containsSpan(t.spans, sp) {
			t.spans = append(t.spans, sp)
		}
		if sp.Start > t.last {
			t.last = sp.Start
		}
	}
}

func containsSpan(spans []Span, s Span) bool {
	for _, have := range spans {
		if have.Stage == s.Stage && have.Start == s.Start && have.AP == s.AP && have.Dur == s.Dur {
			return true
		}
	}
	return false
}

// Retain promotes a trace unconditionally — called when the trace
// touches an alert, a quarantine/null-steer directive, or an ack.
// Safe to call repeatedly as an incident escalates.
func (r *Recorder) Retain(id uint64) {
	if id == 0 {
		return
	}
	r.retMu.Lock()
	_, known := r.byID[id]
	r.retMu.Unlock()
	if !known {
		r.mIncident.Inc()
	}
	r.promote(id, RetainedIncident)
}

// Sample is the benign tail decision: a trace that completed without
// touching the defense loop is kept with the configured probability
// (decided by a deterministic hash of its ID, so the choice is stable
// across partitions and replicas) and otherwise left to age out of
// the ring.
func (r *Recorder) Sample(id uint64) {
	if id == 0 {
		return
	}
	r.retMu.Lock()
	_, known := r.byID[id]
	r.retMu.Unlock()
	if known {
		// Already retained as an incident; nothing to decide.
		return
	}
	if mix(id^0xa0761d6478bd642f) >= r.sampleBits.Load() {
		r.mDropped.Inc()
		return
	}
	r.mSampled.Inc()
	r.promote(id, RetainedSampled)
}

// View is one retained trace as served by /traces.
type View struct {
	Trace   uint64
	Why     Retention
	Spans   []Span // ordered by start time
	StartNs int64
	EndNs   int64
}

// Snapshot returns the retained traces, most recent first, capped at
// max (<= 0 means all). Scrape-path only; allocates freely.
func (r *Recorder) Snapshot(max int) []View {
	r.retMu.Lock()
	views := make([]View, 0, len(r.byID))
	for _, slot := range r.byID {
		t := &r.ret[slot]
		v := View{Trace: t.id, Why: t.why, Spans: append([]Span(nil), t.spans...)}
		views = append(views, v)
	}
	r.retMu.Unlock()
	for i := range views {
		v := &views[i]
		sort.Slice(v.Spans, func(a, b int) bool { return v.Spans[a].Start < v.Spans[b].Start })
		if len(v.Spans) > 0 {
			v.StartNs = v.Spans[0].Start
			last := v.Spans[len(v.Spans)-1]
			v.EndNs = last.Start + last.Dur
		}
	}
	sort.Slice(views, func(a, b int) bool { return views[a].EndNs > views[b].EndNs })
	if max > 0 && len(views) > max {
		views = views[:max]
	}
	return views
}

// RetainedCount reports how many traces the store currently holds.
func (r *Recorder) RetainedCount() int {
	r.retMu.Lock()
	defer r.retMu.Unlock()
	return len(r.byID)
}
