package trace

import (
	"testing"

	"secureangle/internal/ops"
	"secureangle/internal/wifi"
)

func testRecorder() *Recorder { return NewRecorder(ops.NewRegistry()) }

func span(id uint64, stage Stage, start int64) Span {
	return Span{
		Trace: id, Stage: stage, Start: start, Dur: 100,
		MAC: wifi.Addr{0, 1, 2, 3, 4, 5}, AP: "ap1", Partition: 1,
	}
}

func TestTraceNextIDUniqueNonzero(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 10000; i++ {
		id := NextID()
		if id == 0 {
			t.Fatal("NextID returned zero")
		}
		if seen[id] {
			t.Fatalf("NextID repeated %#x after %d draws", id, i)
		}
		seen[id] = true
	}
}

func TestTraceRetainPromotesAllSpans(t *testing.T) {
	r := testRecorder()
	id := NextID()
	r.Record(span(id, StageObserve, 100))
	r.Record(span(id, StageIngest, 200))
	r.Record(span(id, StageFuse, 300))
	r.Retain(id)
	// New spans after the first promotion are picked up by the next.
	r.Record(span(id, StageDirective, 400))
	r.Retain(id)

	views := r.Snapshot(0)
	if len(views) != 1 {
		t.Fatalf("Snapshot: %d traces, want 1", len(views))
	}
	v := views[0]
	if v.Trace != id || v.Why != RetainedIncident {
		t.Fatalf("view = %+v, want trace %#x retained as incident", v, id)
	}
	if len(v.Spans) != 4 {
		t.Fatalf("retained %d spans, want 4: %+v", len(v.Spans), v.Spans)
	}
	for i := 1; i < len(v.Spans); i++ {
		if v.Spans[i].Start < v.Spans[i-1].Start {
			t.Fatalf("spans not time-ordered: %+v", v.Spans)
		}
	}
	if v.StartNs != 100 || v.EndNs != 500 {
		t.Fatalf("view window [%d, %d], want [100, 500]", v.StartNs, v.EndNs)
	}
}

func TestTraceRetainIsIdempotent(t *testing.T) {
	r := testRecorder()
	id := NextID()
	r.Record(span(id, StageIngest, 100))
	r.Retain(id)
	r.Retain(id)
	views := r.Snapshot(0)
	if len(views) != 1 || len(views[0].Spans) != 1 {
		t.Fatalf("double Retain duplicated spans: %+v", views)
	}
}

func TestTraceSampleKeepsDeterministicFraction(t *testing.T) {
	r := testRecorder()
	r.SetBenignSampleRate(0.5)
	kept := 0
	// Stay well under the retained-store cap so eviction does not skew
	// the measured keep fraction.
	const n = 400
	for i := 0; i < n; i++ {
		id := NextID()
		r.Record(span(id, StageFuse, int64(i)))
		r.Sample(id)
		r.Sample(id) // the decision is stable: re-sampling never flips it
	}
	kept = r.RetainedCount()
	if kept < n/4 || kept > 3*n/4 {
		t.Fatalf("0.5 sampler kept %d of %d", kept, n)
	}

	r2 := testRecorder()
	r2.SetBenignSampleRate(0)
	id := NextID()
	r2.Record(span(id, StageFuse, 1))
	r2.Sample(id)
	if got := r2.RetainedCount(); got != 0 {
		t.Fatalf("0.0 sampler kept %d traces", got)
	}

	r3 := testRecorder()
	r3.SetBenignSampleRate(1)
	id = NextID()
	r3.Record(span(id, StageFuse, 1))
	r3.Sample(id)
	if got := r3.RetainedCount(); got != 1 {
		t.Fatalf("1.0 sampler kept %d traces, want 1", got)
	}
}

func TestTraceSampleAfterRetainKeepsIncident(t *testing.T) {
	r := testRecorder()
	r.SetBenignSampleRate(0)
	id := NextID()
	r.Record(span(id, StageAlert, 1))
	r.Retain(id)
	r.Sample(id) // benign tail must not demote or duplicate
	views := r.Snapshot(0)
	if len(views) != 1 || views[0].Why != RetainedIncident {
		t.Fatalf("incident trace lost after Sample: %+v", views)
	}
}

func TestTraceZeroIDDropped(t *testing.T) {
	r := testRecorder()
	r.Record(Span{Trace: 0, Stage: StageIngest, Start: 1})
	r.Retain(0)
	r.Sample(0)
	if got := r.RetainedCount(); got != 0 {
		t.Fatalf("zero trace ID retained: %d", got)
	}
}

func TestTraceRetainedStoreEvictsRoundRobin(t *testing.T) {
	r := testRecorder()
	var first uint64
	for i := 0; i < retainedTraces+8; i++ {
		id := NextID()
		if i == 0 {
			first = id
		}
		r.Record(span(id, StageAlert, int64(i)))
		r.Retain(id)
	}
	if got := r.RetainedCount(); got != retainedTraces {
		t.Fatalf("retained %d traces, want cap %d", got, retainedTraces)
	}
	for _, v := range r.Snapshot(0) {
		if v.Trace == first {
			t.Fatal("oldest trace survived past the eviction horizon")
		}
	}
}

func TestTraceSnapshotMaxCapsOutput(t *testing.T) {
	r := testRecorder()
	for i := 0; i < 10; i++ {
		id := NextID()
		r.Record(span(id, StageAlert, int64(i)))
		r.Retain(id)
	}
	if got := len(r.Snapshot(3)); got != 3 {
		t.Fatalf("Snapshot(3) returned %d traces", got)
	}
}

func TestTraceRingOverwriteBounded(t *testing.T) {
	r := testRecorder()
	id := NextID()
	// Overflow the trace's stripe many times over; promotion must see
	// only what is still live, never grow without bound.
	for i := 0; i < stripeCap*4; i++ {
		r.Record(span(id, StageIngest, int64(i)))
	}
	r.Retain(id)
	v := r.Snapshot(0)[0]
	if len(v.Spans) > stripeCap {
		t.Fatalf("promotion yielded %d spans from a %d-slot stripe", len(v.Spans), stripeCap)
	}
}

func TestTraceStageAndRetentionStrings(t *testing.T) {
	stages := map[Stage]string{
		StageObserve: "observe", StageSpoofCheck: "spoofcheck",
		StageIngest: "ingest", StageFuse: "fuse", StageAlert: "alert",
		StageDirective: "directive", StageAck: "ack", StageRelease: "release",
		Stage(0): "unknown",
	}
	for st, want := range stages {
		if st.String() != want {
			t.Fatalf("Stage(%d).String() = %q, want %q", st, st.String(), want)
		}
	}
	if RetainedIncident.String() != "incident" || RetainedSampled.String() != "sampled" {
		t.Fatal("Retention strings wrong")
	}
	if Retention(0).String() != "unknown" {
		t.Fatal("zero Retention should stringify as unknown")
	}
}

// TestTraceSpanRecordAllocs pins the tentpole budget: recording a span
// on the steady path performs zero heap allocations.
func TestTraceSpanRecordAllocs(t *testing.T) {
	r := testRecorder()
	s := span(NextID(), StageIngest, Now())
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record(s)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f per span, want 0", allocs)
	}
}

func TestTraceConcurrentRecordAndSnapshot(t *testing.T) {
	r := testRecorder()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5000; i++ {
			id := NextID()
			r.Record(span(id, StageIngest, int64(i)))
			if i%16 == 0 {
				r.Retain(id)
			} else {
				r.Sample(id)
			}
		}
	}()
	for i := 0; i < 100; i++ {
		r.Snapshot(16)
	}
	<-done
}

func BenchmarkTraceSpan(b *testing.B) {
	r := testRecorder()
	s := span(NextID(), StageIngest, Now())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Record(s)
	}
}
