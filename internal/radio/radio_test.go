package radio

import (
	"math"
	"testing"

	"secureangle/internal/antenna"
	"secureangle/internal/dsp"
	"secureangle/internal/env"
	"secureangle/internal/geom"
	"secureangle/internal/music"
	"secureangle/internal/ofdm"
	"secureangle/internal/rng"
)

func freeSpace() *env.Environment {
	e := env.New(nil, nil)
	e.MaxOrder = 0
	return e
}

func testPacket(t testing.TB) []complex128 {
	t.Helper()
	mod := ofdm.NewModulator(ofdm.DefaultParams())
	pkt, err := mod.BuildPacket([]byte("secureangle-test-payload-0123456789"), ofdm.QPSK)
	if err != nil {
		t.Fatal(err)
	}
	return PadPacket(pkt.Samples, 200, 200)
}

func TestNewFrontEndDefaults(t *testing.T) {
	arr := antenna.NewUCA(8, 0.047, antenna.DefaultCarrierHz)
	fe := NewFrontEnd(arr, geom.Point{X: 1, Y: 2}, rng.New(1))
	if len(fe.PhaseOffsets) != 8 {
		t.Fatalf("offsets = %d", len(fe.PhaseOffsets))
	}
	var distinct bool
	for i := 1; i < 8; i++ {
		if fe.PhaseOffsets[i] != fe.PhaseOffsets[0] {
			distinct = true
		}
	}
	if !distinct {
		t.Error("phase offsets not randomised")
	}
}

func TestOptions(t *testing.T) {
	arr := antenna.NewUCA(8, 0.047, antenna.DefaultCarrierHz)
	off := make([]float64, 8)
	off[3] = 1.5
	fe := NewFrontEnd(arr, geom.Point{}, rng.New(2),
		WithCFO(12e3), WithSNR(31), WithQuantization(10), WithPhaseOffsets(off))
	if fe.CFOHz != 12e3 || fe.SNRdB != 31 || fe.QuantBits != 10 {
		t.Errorf("options not applied: %+v", fe)
	}
	if fe.PhaseOffsets[3] != 1.5 || fe.PhaseOffsets[0] != 0 {
		t.Error("WithPhaseOffsets not applied")
	}
}

func TestReceiveShapeAndErrors(t *testing.T) {
	arr := antenna.NewUCA(8, 0.047, antenna.DefaultCarrierHz)
	fe := NewFrontEnd(arr, geom.Point{}, rng.New(3))
	tx := geom.Point{X: 5, Y: 3}
	bb := testPacket(t)
	streams, err := fe.Receive(freeSpace(), tx, bb)
	if err != nil {
		t.Fatal(err)
	}
	if len(streams) != 8 {
		t.Fatalf("streams = %d", len(streams))
	}
	for _, s := range streams {
		if len(s) != len(bb) {
			t.Fatal("stream length mismatch")
		}
	}
	if _, err := fe.Receive(freeSpace(), tx, nil); err == nil {
		t.Error("empty baseband accepted")
	}
}

// pipelineBearing runs env -> radio -> covariance -> MUSIC and returns the
// estimated bearing.
func pipelineBearing(t *testing.T, fe *FrontEnd, e *env.Environment, tx geom.Point, calibrate bool) float64 {
	t.Helper()
	bb := testPacket(t)
	streams, err := fe.Receive(e, tx, bb)
	if err != nil {
		t.Fatal(err)
	}
	if calibrate {
		ApplyCalibration(streams, fe.Calibrate(2000))
	}
	r, err := music.Covariance(streams)
	if err != nil {
		t.Fatal(err)
	}
	// MDL-chosen source count: under coherent multipath the packet's
	// delay spread leaves a partially-decorrelated covariance whose
	// effective rank MDL recovers; a hardcoded single source would bias
	// the peak toward a blend of direct and reflected bearings.
	est := &music.MUSIC{Sources: 0, Samples: len(streams[0])}
	ps, err := est.Pseudospectrum(r, fe.Array, fe.Array.ScanGrid(0.5))
	if err != nil {
		t.Fatal(err)
	}
	return ps.PeakBearing()
}

func TestEndToEndBearingWithCalibration(t *testing.T) {
	arr := antenna.NewUCA(8, 0.047, antenna.DefaultCarrierHz)
	ap := geom.Point{X: 0, Y: 0}
	for _, want := range []float64{30, 117, 245, 331} {
		fe := NewFrontEnd(arr, ap, rng.New(4), WithSNR(25))
		tx := geom.PointAt(ap, want, 6)
		got := pipelineBearing(t, fe, freeSpace(), tx, true)
		if geom.AngularDistDeg(got, want) > 2.5 {
			t.Errorf("bearing %v: pipeline estimated %v", want, got)
		}
	}
}

func TestUncalibratedArrayFails(t *testing.T) {
	// Without removing the downconverter phases, MUSIC's bearing is
	// garbage — this is the whole point of section 2.2.
	arr := antenna.NewUCA(8, 0.047, antenna.DefaultCarrierHz)
	ap := geom.Point{X: 0, Y: 0}
	const want = 117.0
	var worst float64
	// A few random offset draws: at least one must break badly. (A single
	// draw could by luck be near-benign, so check the max error.)
	for seed := int64(10); seed < 15; seed++ {
		fe := NewFrontEnd(arr, ap, rng.New(seed), WithSNR(25))
		tx := geom.PointAt(ap, want, 6)
		got := pipelineBearing(t, fe, freeSpace(), tx, false)
		worst = math.Max(worst, geom.AngularDistDeg(got, want))
	}
	if worst < 10 {
		t.Errorf("uncalibrated worst error only %v degrees; expected gross failure", worst)
	}
}

func TestCalibrationEstimateAccuracy(t *testing.T) {
	arr := antenna.NewUCA(8, 0.047, antenna.DefaultCarrierHz)
	fe := NewFrontEnd(arr, geom.Point{}, rng.New(5))
	got := fe.Calibrate(4000)
	for a := 1; a < 8; a++ {
		want := dsp.WrapPhase(fe.PhaseOffsets[a] - fe.PhaseOffsets[0])
		diff := math.Abs(dsp.WrapPhase(got[a] - want))
		if diff > 0.01 {
			t.Errorf("chain %d offset error %v rad", a, diff)
		}
	}
	if got[0] != 0 {
		t.Error("reference chain offset must be zero")
	}
}

func TestCalibrationIdempotentOnCalibratedStreams(t *testing.T) {
	// After applying calibration, re-estimating offsets from freshly
	// calibrated captures should give ~zero.
	arr := antenna.NewUCA(4, 0.047, antenna.DefaultCarrierHz)
	fe := NewFrontEnd(arr, geom.Point{}, rng.New(6))
	offsets := fe.Calibrate(4000)
	cap2 := fe.CalibrationCapture(4000)
	ApplyCalibration(cap2, offsets)
	resid := EstimateOffsets(cap2)
	for a, r := range resid {
		if math.Abs(dsp.WrapPhase(r)) > 0.02 {
			t.Errorf("chain %d residual %v rad", a, r)
		}
	}
}

func TestCFODoesNotBreakBearing(t *testing.T) {
	// Common CFO multiplies every chain identically and cancels in the
	// covariance — the pipeline must still find the bearing.
	arr := antenna.NewUCA(8, 0.047, antenna.DefaultCarrierHz)
	ap := geom.Point{X: 0, Y: 0}
	fe := NewFrontEnd(arr, ap, rng.New(7), WithSNR(25), WithCFO(50e3))
	tx := geom.PointAt(ap, 200, 6)
	got := pipelineBearing(t, fe, freeSpace(), tx, true)
	if geom.AngularDistDeg(got, 200) > 2.5 {
		t.Errorf("bearing with CFO = %v, want 200", got)
	}
}

func TestQuantizationMildlyDegrades(t *testing.T) {
	arr := antenna.NewUCA(8, 0.047, antenna.DefaultCarrierHz)
	ap := geom.Point{X: 0, Y: 0}
	fe := NewFrontEnd(arr, ap, rng.New(8), WithSNR(25), WithQuantization(12))
	tx := geom.PointAt(ap, 77, 6)
	got := pipelineBearing(t, fe, freeSpace(), tx, true)
	if geom.AngularDistDeg(got, 77) > 3 {
		t.Errorf("bearing with 12-bit ADC = %v, want 77", got)
	}
}

func TestMultipathStrongestPeakIsDirect(t *testing.T) {
	// Client and AP in a room: the pseudospectrum's highest peak should
	// be the direct path (section 3.1's common case).
	walls := []env.Wall{
		{Seg: geom.Segment{A: geom.Point{X: -8, Y: -6}, B: geom.Point{X: 8, Y: -6}}, Mat: env.Concrete, Name: "s"},
		{Seg: geom.Segment{A: geom.Point{X: 8, Y: -6}, B: geom.Point{X: 8, Y: 6}}, Mat: env.Concrete, Name: "e"},
		{Seg: geom.Segment{A: geom.Point{X: 8, Y: 6}, B: geom.Point{X: -8, Y: 6}}, Mat: env.Concrete, Name: "n"},
		{Seg: geom.Segment{A: geom.Point{X: -8, Y: 6}, B: geom.Point{X: -8, Y: -6}}, Mat: env.Concrete, Name: "w"},
	}
	e := env.New(walls, nil)
	arr := antenna.NewUCA(8, 0.047, antenna.DefaultCarrierHz)
	ap := geom.Point{X: 0, Y: 0}
	fe := NewFrontEnd(arr, ap, rng.New(9), WithSNR(25))
	tx := geom.Point{X: 5, Y: 2.5}
	want := geom.BearingDeg(ap, tx)
	got := pipelineBearing(t, fe, e, tx, true)
	if geom.AngularDistDeg(got, want) > 4 {
		t.Errorf("multipath bearing = %v, want %v", got, want)
	}
}

func TestPadPacket(t *testing.T) {
	x := []complex128{1, 2}
	p := PadPacket(x, 3, 4)
	if len(p) != 9 || p[0] != 0 || p[3] != 1 || p[4] != 2 || p[8] != 0 {
		t.Errorf("PadPacket = %v", p)
	}
}

func TestQuantizeLevels(t *testing.T) {
	x := []complex128{complex(0.124, -0.52), complex(3.9, 0)}
	quantize(x, 2, 1.0) // 2-bit: step = 0.5 over [-1, 1]
	for _, v := range x {
		re := real(v)
		if math.Abs(re/0.5-math.Round(re/0.5)) > 1e-12 {
			t.Errorf("real part %v not on grid", re)
		}
		if real(v) > 1 || real(v) < -1 {
			t.Errorf("quantized value out of range: %v", v)
		}
	}
}

func TestFullyBlockedClient(t *testing.T) {
	// A client with every path below the gain floor yields an error.
	e := env.New(nil, nil)
	e.MaxOrder = 0
	e.MinGain = 2 // floor above the only path's own gain is impossible; use obstacle instead
	wall := env.Wall{Seg: geom.Segment{A: geom.Point{X: 2, Y: -50}, B: geom.Point{X: 2, Y: 50}}, Mat: env.Material{Reflection: 0, Transmission: 0}, Name: "shield"}
	e2 := env.New([]env.Wall{wall}, nil)
	e2.MaxOrder = 0
	arr := antenna.NewUCA(8, 0.047, antenna.DefaultCarrierHz)
	fe := NewFrontEnd(arr, geom.Point{}, rng.New(11))
	_, err := fe.Receive(e2, geom.Point{X: 5, Y: 0}, testPacket(t))
	if err == nil {
		t.Error("fully blocked client should error")
	}
	_ = e
}

func BenchmarkReceive8Antennas(b *testing.B) {
	arr := antenna.NewUCA(8, 0.047, antenna.DefaultCarrierHz)
	fe := NewFrontEnd(arr, geom.Point{}, rng.New(12))
	e := freeSpace()
	tx := geom.Point{X: 5, Y: 3}
	mod := ofdm.NewModulator(ofdm.DefaultParams())
	pkt, _ := mod.BuildPacket([]byte("bench-payload-0123456789abcdef"), ofdm.QPSK)
	bb := PadPacket(pkt.Samples, 200, 200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fe.Receive(e, tx, bb); err != nil {
			b.Fatal(err)
		}
	}
}
