package radio

import (
	"errors"
	"math"
	"math/cmplx"
	"testing"

	"secureangle/internal/antenna"
	"secureangle/internal/dsp"
	"secureangle/internal/env"
	"secureangle/internal/geom"
	"secureangle/internal/rng"
)

// testScene builds a small office-like scene with enough reflectors for
// real multipath (testbed is not importable here: it imports radio).
func testScene() *env.Environment {
	walls := []env.Wall{
		{Seg: geom.Segment{A: geom.Point{X: -2, Y: -2}, B: geom.Point{X: 12, Y: -2}}, Mat: env.Concrete, Name: "south"},
		{Seg: geom.Segment{A: geom.Point{X: 12, Y: -2}, B: geom.Point{X: 12, Y: 8}}, Mat: env.Concrete, Name: "east"},
		{Seg: geom.Segment{A: geom.Point{X: 12, Y: 8}, B: geom.Point{X: -2, Y: 8}}, Mat: env.Drywall, Name: "north"},
		{Seg: geom.Segment{A: geom.Point{X: -2, Y: 8}, B: geom.Point{X: -2, Y: -2}}, Mat: env.Glass, Name: "west"},
	}
	return env.New(walls, nil)
}

func testArray() *antenna.Array {
	return antenna.NewUCA(8, 0.047, antenna.DefaultCarrierHz)
}

// referenceReceive is the time-domain channel: per path, a
// frequency-domain fractional delay of the whole baseband, then a
// per-antenna steering fan-out — the behaviour the frequency-domain
// Receive must reproduce. The delay runs at the same pow2 transform
// length Receive uses (zero-pad, delay, truncate), so both sides realise
// the identical circular convolution — which, given the transmit
// buffer's lead/tail padding, is the linear (physical) convolution up to
// the sinc tails the padding absorbs.
func referenceReceive(f *FrontEnd, paths []env.Path, baseband []complex128) [][]complex128 {
	n := f.Array.N()
	ns := len(baseband)
	m := dsp.NextPow2(ns)
	padded := make([]complex128, m)
	copy(padded, baseband)
	out := make([][]complex128, n)
	for a := 0; a < n; a++ {
		out[a] = make([]complex128, ns)
	}
	for _, p := range paths {
		delayed := dsp.FractionalDelay(padded, p.Delay, f.SampleRate)
		dsp.Scale(delayed, p.Gain)
		steer := f.Array.Steering(p.BearingDeg)
		for a := 0; a < n; a++ {
			s := steer[a]
			dst := out[a]
			for i := range dst {
				dst[i] += delayed[i] * s
			}
		}
	}
	return out
}

// TestReceiveMatchesTimeDomainReference checks the frequency-domain
// synthesis against the per-path time-domain sum on a real multipath
// trace, with impairments and noise switched off so the channels compare
// sample for sample.
func TestReceiveMatchesTimeDomainReference(t *testing.T) {
	e := testScene()
	arr := testArray()
	apPos := geom.Point{X: 0, Y: 0}
	txPos := geom.Point{X: 7, Y: 4}
	fe := NewFrontEnd(arr, apPos, rng.New(3),
		WithPhaseOffsets(make([]float64, arr.N())),
		WithSNR(300), // noise variance ~1e-30: draws still occur, adds nothing visible
	)

	baseband := make([]complex128, 700)
	src := rng.New(4)
	for i := range baseband {
		baseband[i] = src.ComplexGaussian(1)
	}
	baseband = PadPacket(baseband, 64, 64)

	paths := e.Trace(txPos, fe.Pos)
	if len(paths) < 2 {
		t.Fatalf("trace found %d paths, want multipath", len(paths))
	}
	want := referenceReceive(fe, paths, baseband)

	got, err := fe.Receive(e, txPos, baseband)
	if err != nil {
		t.Fatal(err)
	}

	var ref float64
	for _, s := range want {
		ref = math.Max(ref, maxAbs(s))
	}
	for a := range want {
		for i := range want[a] {
			if d := cmplx.Abs(got[a][i] - want[a][i]); d > 1e-9*ref {
				t.Fatalf("antenna %d sample %d: |diff| = %g (ref %g)", a, i, d, ref)
			}
		}
	}
}

func maxAbs(x []complex128) float64 {
	var m float64
	for _, v := range x {
		m = math.Max(m, cmplx.Abs(v))
	}
	return m
}

// TestChannelResponseCache checks that repeated receives from one
// position reuse the cached response and that advancing the environment's
// drift epoch invalidates it.
func TestChannelResponseCache(t *testing.T) {
	e := testScene()
	e.EnableDrift(rng.New(8), 60, 0.3, 1.0)
	fe := NewFrontEnd(testArray(), geom.Point{}, rng.New(3), WithNoiseFloor(4e-9))
	pos := geom.Point{X: 7, Y: 4}

	resp1, err := fe.channelResponse(e, pos, 512)
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := fe.channelResponse(e, pos, 512)
	if err != nil {
		t.Fatal(err)
	}
	if resp1 != resp2 {
		t.Fatal("same-epoch response was rebuilt instead of cached")
	}

	e.Advance(120)
	resp3, err := fe.channelResponse(e, pos, 512)
	if err != nil {
		t.Fatal(err)
	}
	if resp3 == resp1 {
		t.Fatal("stale response served after drift advanced")
	}
}

// TestPrepareReceiveConcurrentUse synthesises prepared receives on many
// goroutines (run with -race) and checks stream shapes.
func TestPrepareReceiveConcurrentUse(t *testing.T) {
	e := testScene()
	arr := testArray()
	fe := NewFrontEnd(arr, geom.Point{}, rng.New(3), WithNoiseFloor(4e-9))
	pos := geom.Point{X: 5, Y: 3}
	baseband := make([]complex128, 600)
	src := rng.New(4)
	for i := range baseband {
		baseband[i] = src.ComplexGaussian(1)
	}

	const m = 8
	preps := make([]*PreparedReceive, m)
	for i := range preps {
		p, err := fe.PrepareReceive(e, pos, len(baseband))
		if err != nil {
			t.Fatal(err)
		}
		preps[i] = p
	}
	done := make(chan error, m)
	for i := range preps {
		go func(p *PreparedReceive) {
			streams, err := fe.ReceivePrepared(p, baseband)
			if err == nil && (len(streams) != arr.N() || len(streams[0]) != len(baseband)) {
				err = errShape
			}
			done <- err
		}(preps[i])
	}
	for i := 0; i < m; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}

	if _, err := fe.ReceivePrepared(preps[0], baseband[:10]); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

var errShape = errors.New("radio test: unexpected stream shape")
