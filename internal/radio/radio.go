// Package radio simulates the access point's multi-channel receiver — the
// role the WARP boards play in the SecureAngle prototype — and the
// calibration rig of section 2.2 (a USRP2 feeding a continuous carrier
// through equal-length cables into every radio front end).
//
// The front end applies, in order, exactly the impairments the hardware
// introduces and nothing else:
//
//  1. per-path steering phases from the array geometry (the physics),
//  2. a fixed, unknown phase offset per radio chain (the downconverter
//     impairment calibration must remove),
//  3. a common carrier frequency offset between client and AP (the boards
//     share oscillators and sampling clocks, so the offset is identical on
//     every chain),
//  4. additive white Gaussian noise per chain at a configured SNR,
//  5. optional ADC quantisation.
package radio

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"sync"

	"secureangle/internal/antenna"
	"secureangle/internal/dsp"
	"secureangle/internal/env"
	"secureangle/internal/geom"
	"secureangle/internal/pool"
	"secureangle/internal/rng"
)

// ErrBlocked reports a transmitter with no propagation path to the AP —
// every ray (direct and reflected) is obstructed. Callers that must
// distinguish "unhearable" from other failures test with errors.Is.
var ErrBlocked = errors.New("radio: no propagation paths (fully blocked)")

// FrontEnd is one AP's receive chain set.
type FrontEnd struct {
	Array *antenna.Array
	// Pos is the AP (array centre) position in the environment.
	Pos geom.Point
	// PhaseOffsets holds the per-chain downconverter phase (radians),
	// unknown to the algorithms until calibration estimates it.
	PhaseOffsets []float64
	// CFOHz is the residual carrier offset between client and AP.
	CFOHz float64
	// SNRdB sets the per-chain noise level relative to the mean received
	// signal power across chains. Ignored when NoiseFloor is set.
	SNRdB float64
	// NoiseFloor, if positive, is an absolute per-sample noise variance:
	// with it, distant or blocked clients naturally arrive at lower SNR,
	// as in the real testbed. Overrides SNRdB.
	NoiseFloor float64
	// QuantBits, if nonzero, quantises I and Q to that many bits across
	// a full scale of +-4 sigma of the signal.
	QuantBits int
	// SampleRate of the ADCs.
	SampleRate float64

	// mu guards the noise stream and the two synthesis caches; the
	// deterministic synthesis itself runs outside the lock.
	mu         sync.Mutex
	noise      *rng.Source
	chanCache  map[chanKey]*chanResponse
	cleanCache map[cleanKey]*cleanEntry
}

// maxChanCacheEntries bounds the per-front-end channel cache (an entry is
// one per-antenna frequency response, ~N*NextPow2(len(baseband))
// complexes).
const maxChanCacheEntries = 64

// maxCleanCacheEntries bounds the clean-capture cache (an entry is one
// full set of pre-impairment antenna streams, ~N*len(baseband)
// complexes, so the bound is deliberately small).
const maxCleanCacheEntries = 16

// chanKey identifies one cached channel: transmitter position and
// baseband length (which fixes the pow2 transform length).
type chanKey struct {
	x, y float64
	n    int
}

// chanResponse is the frequency-domain channel from one transmitter to
// every antenna, valid for one environment drift epoch. The response is
// held at the pow2 transform length m >= n so synthesis runs entirely on
// cached-table radix-2 transforms (a non-pow2 length would go through
// Bluestein: three times the transforms and a scratch buffer per call).
type chanResponse struct {
	epoch uint64
	m     int
	h     [][]complex128 // [antenna][DFT bin], length m
}

// cleanKey identifies one cached clean capture: transmitter position,
// baseband length, and a content hash of the baseband samples.
type cleanKey struct {
	x, y float64
	n    int
	hash uint64
}

// cleanEntry is the pre-impairment per-antenna capture for one
// (transmitter, baseband) pair — the fully deterministic half of Receive.
// Replaying it and applying live impairments draws exactly the same noise
// sequence as a fresh synthesis, so caching is invisible to determinism.
type cleanEntry struct {
	epoch   uint64
	streams [][]complex128 // [antenna][0:n], clean
}

// basebandHash is a word-wise FNV-1a over the sample bits — cheap enough
// (~2 mul/sample) to key the clean-capture cache on content rather than
// identity, so retransmissions of the same frame hit regardless of which
// buffer carries them.
func basebandHash(x []complex128) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, v := range x {
		h = (h ^ math.Float64bits(real(v))) * prime
		h = (h ^ math.Float64bits(imag(v))) * prime
	}
	return h
}

// Option configures a FrontEnd.
type Option func(*FrontEnd)

// WithCFO sets the client-AP carrier frequency offset.
func WithCFO(hz float64) Option { return func(f *FrontEnd) { f.CFOHz = hz } }

// WithSNR sets the per-chain SNR in dB.
func WithSNR(db float64) Option { return func(f *FrontEnd) { f.SNRdB = db } }

// WithNoiseFloor sets an absolute per-sample noise variance, overriding
// the relative SNR model.
func WithNoiseFloor(sigma2 float64) Option { return func(f *FrontEnd) { f.NoiseFloor = sigma2 } }

// WithQuantization enables b-bit ADC quantisation.
func WithQuantization(b int) Option { return func(f *FrontEnd) { f.QuantBits = b } }

// WithPhaseOffsets fixes the per-chain offsets instead of drawing them
// randomly (tests use this to assert exact values).
func WithPhaseOffsets(offsets []float64) Option {
	return func(f *FrontEnd) { f.PhaseOffsets = append([]float64(nil), offsets...) }
}

// NewFrontEnd builds a front end at the given position. Unknown per-chain
// phase offsets are drawn uniformly from [0, 2 pi) — the situation before
// the section 2.2 calibration — unless WithPhaseOffsets overrides them.
func NewFrontEnd(arr *antenna.Array, pos geom.Point, src *rng.Source, opts ...Option) *FrontEnd {
	f := &FrontEnd{
		Array:      arr,
		Pos:        pos,
		CFOHz:      0,
		SNRdB:      25,
		SampleRate: 20e6,
		noise:      src.Fork(),
	}
	f.PhaseOffsets = make([]float64, arr.N())
	for i := range f.PhaseOffsets {
		f.PhaseOffsets[i] = src.Phase()
	}
	for _, o := range opts {
		o(f)
	}
	if len(f.PhaseOffsets) != arr.N() {
		panic("radio: phase offset count != antenna count")
	}
	return f
}

// Receive propagates the transmitted baseband through the environment to
// this AP and returns one sample stream per antenna, all impairments
// applied. The transmit buffer should include lead-in/lead-out padding
// (see PadPacket) so fractionally-delayed copies stay within the buffer.
//
// The multipath channel is applied in the frequency domain: one forward
// FFT of the baseband, a multiply by the per-antenna channel response
// (cached per transmitter position while the environment's drift epoch is
// unchanged), and one inverse FFT per antenna — instead of a forward plus
// inverse transform per propagation path. The result is the same linear
// combination of fractionally-delayed path copies, just summed before the
// inverse transform rather than after.
func (f *FrontEnd) Receive(e *env.Environment, tx geom.Point, baseband []complex128) ([][]complex128, error) {
	return f.ReceiveArena(e, tx, baseband, nil)
}

// ReceiveArena is Receive drawing every output and scratch buffer from ar
// (nil behaves exactly like Receive): the returned streams alias the
// arena and are valid until its next Reset. The per-packet pipeline holds
// one arena per worker, making the steady-state receive allocation-free.
func (f *FrontEnd) ReceiveArena(e *env.Environment, tx geom.Point, baseband []complex128, ar *pool.Arena) ([][]complex128, error) {
	if len(baseband) == 0 {
		return nil, errors.New("radio: empty baseband")
	}
	out, err := f.cleanStreams(e, tx, baseband, ar)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.impair(out, f.noise)
	return out, nil
}

func arenaComplexUninit(ar *pool.Arena, n int) []complex128 {
	if ar == nil {
		return make([]complex128, n)
	}
	return ar.ComplexUninit(n)
}

func arenaStreams(ar *pool.Arena, n int) [][]complex128 {
	if ar == nil {
		return make([][]complex128, n)
	}
	return ar.Streams(n)
}

// cleanStreams returns the pre-impairment per-antenna capture for one
// transmission: replayed from the clean-capture cache when this exact
// (transmitter, baseband) pair was synthesised in the current drift
// epoch, else synthesised through the pow2 frequency-domain channel (and
// cached for the next retransmission).
func (f *FrontEnd) cleanStreams(e *env.Environment, tx geom.Point, baseband []complex128, ar *pool.Arena) ([][]complex128, error) {
	epoch := e.Epoch()
	key := cleanKey{x: tx.X, y: tx.Y, n: len(baseband), hash: basebandHash(baseband)}
	f.mu.Lock()
	ce, ok := f.cleanCache[key]
	f.mu.Unlock()
	if ok && ce.epoch == epoch {
		return f.replayClean(ce, ar), nil
	}
	resp, err := f.channelResponse(e, tx, len(baseband))
	if err != nil {
		return nil, err
	}
	out := f.synthesize(resp, baseband, ar)
	f.storeClean(key, epoch, out)
	return out, nil
}

// replayClean copies a cached clean capture into fresh (arena) buffers so
// the caller can impair them in place.
func (f *FrontEnd) replayClean(ce *cleanEntry, ar *pool.Arena) [][]complex128 {
	out := arenaStreams(ar, len(ce.streams))
	for a, s := range ce.streams {
		dst := arenaComplexUninit(ar, len(s))
		copy(dst, s)
		out[a] = dst
	}
	return out
}

// storeClean caches a private copy of the clean streams under the given
// drift epoch.
func (f *FrontEnd) storeClean(key cleanKey, epoch uint64, streams [][]complex128) {
	cp := make([][]complex128, len(streams))
	for a, s := range streams {
		cp[a] = append([]complex128(nil), s...)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.cleanCache == nil {
		f.cleanCache = make(map[cleanKey]*cleanEntry)
	}
	if len(f.cleanCache) >= maxCleanCacheEntries {
		clear(f.cleanCache)
	}
	f.cleanCache[key] = &cleanEntry{epoch: epoch, streams: cp}
}

// PreparedReceive bundles the order-sensitive half of Receive — the
// channel response for one (transmitter, length) pair and a noise source
// forked from the front end's stream — so the heavy synthesis can then run
// on any goroutine. Obtain it with PrepareReceive (serially), consume it
// with ReceivePrepared (concurrently).
type PreparedReceive struct {
	resp  *chanResponse
	noise *rng.Source
	n     int
	tx    geom.Point
	epoch uint64
}

// PrepareReceive resolves the channel for a transmission of n samples from
// tx and forks a private noise stream for it. Calls must not overlap with
// each other or with Receive on the same front end's noise determinism
// boundary; in return, the ReceivePrepared calls that consume the results
// are safe to run concurrently.
func (f *FrontEnd) PrepareReceive(e *env.Environment, tx geom.Point, n int) (*PreparedReceive, error) {
	if n <= 0 {
		return nil, errors.New("radio: empty baseband")
	}
	resp, err := f.channelResponse(e, tx, n)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	src := f.noise.Fork()
	f.mu.Unlock()
	return &PreparedReceive{resp: resp, noise: src, n: n, tx: tx, epoch: resp.epoch}, nil
}

// ReceivePrepared synthesises the per-antenna streams for one prepared
// transmission. Safe for concurrent use across distinct PreparedReceive
// values.
func (f *FrontEnd) ReceivePrepared(p *PreparedReceive, baseband []complex128) ([][]complex128, error) {
	return f.ReceivePreparedArena(p, baseband, nil)
}

// ReceivePreparedArena is ReceivePrepared drawing output buffers from ar
// (nil allocates); see ReceiveArena for the aliasing contract. Distinct
// PreparedReceive values with distinct arenas are safe concurrently.
func (f *FrontEnd) ReceivePreparedArena(p *PreparedReceive, baseband []complex128, ar *pool.Arena) ([][]complex128, error) {
	if len(baseband) != p.n {
		return nil, errors.New("radio: baseband length differs from prepared length")
	}
	key := cleanKey{x: p.tx.X, y: p.tx.Y, n: p.n, hash: basebandHash(baseband)}
	f.mu.Lock()
	ce, ok := f.cleanCache[key]
	f.mu.Unlock()
	var out [][]complex128
	if ok && ce.epoch == p.epoch {
		out = f.replayClean(ce, ar)
	} else {
		out = f.synthesize(p.resp, baseband, ar)
		f.storeClean(key, p.epoch, out)
	}
	f.impair(out, p.noise)
	return out, nil
}

// channelResponse returns the cached frequency-domain channel for (tx, n),
// rebuilding it when the environment's drift epoch has moved on.
func (f *FrontEnd) channelResponse(e *env.Environment, tx geom.Point, n int) (*chanResponse, error) {
	epoch := e.Epoch()
	key := chanKey{x: tx.X, y: tx.Y, n: n}
	f.mu.Lock()
	if r, ok := f.chanCache[key]; ok && r.epoch == epoch {
		f.mu.Unlock()
		return r, nil
	}
	f.mu.Unlock()

	paths := e.Trace(tx, f.Pos)
	if len(paths) == 0 {
		return nil, ErrBlocked
	}
	m := dsp.NextPow2(n)
	r := &chanResponse{epoch: epoch, m: m, h: f.buildResponse(paths, m)}

	f.mu.Lock()
	if f.chanCache == nil {
		f.chanCache = make(map[chanKey]*chanResponse)
	}
	if len(f.chanCache) >= maxChanCacheEntries {
		clear(f.chanCache)
	}
	f.chanCache[key] = r
	f.mu.Unlock()
	return r, nil
}

// buildResponse accumulates every path's delay ramp and steering phase
// into one per-antenna frequency response at the pow2 transform length m:
// H_a[k] = sum over paths of gain * steer_a * exp(-i 2 pi f_k delay).
func (f *FrontEnd) buildResponse(paths []env.Path, m int) [][]complex128 {
	nAnt := f.Array.N()
	h := make([][]complex128, nAnt)
	for a := range h {
		h[a] = make([]complex128, m)
	}
	freqs := dsp.FFTFreqs(m, f.SampleRate)
	ramp := make([]complex128, m)
	for _, p := range paths {
		for k, fr := range freqs {
			ramp[k] = p.Gain * cmplx.Rect(1, -2*math.Pi*fr*p.Delay)
		}
		steer := f.Array.Steering(p.BearingDeg)
		for a := 0; a < nAnt; a++ {
			s := steer[a]
			dst := h[a]
			for k, v := range ramp {
				dst[k] += v * s
			}
		}
	}
	return h
}

// synthesize applies a channel response to the baseband: the baseband is
// zero-padded to the response's pow2 length m (the transmit buffer's own
// lead/tail padding keeps the fractionally-delayed copies inside the
// first n samples, so truncating back to n loses nothing but the pad),
// one forward FFT, then per antenna a bin-wise multiply and inverse FFT —
// all radix-2 with cached tables, allocation-free given an arena. Pure
// function of its inputs; safe for concurrent use with distinct arenas.
func (f *FrontEnd) synthesize(resp *chanResponse, baseband []complex128, ar *pool.Arena) [][]complex128 {
	n := len(baseband)
	m := resp.m
	spec := arenaComplexUninit(ar, m)
	copy(spec, baseband)
	for k := n; k < m; k++ {
		spec[k] = 0
	}
	dsp.FFTInPlace(spec)
	out := arenaStreams(ar, len(resp.h))
	for a, ha := range resp.h {
		stream := arenaComplexUninit(ar, m)
		for k, v := range spec {
			stream[k] = v * ha[k]
		}
		dsp.IFFTInPlace(stream)
		out[a] = stream[:n]
	}
	return out
}

// impair applies the receiver impairments to clean streams in place, in
// the fixed order the hardware imposes: per-chain downconverter phase,
// common CFO, additive noise from src, optional quantisation.
func (f *FrontEnd) impair(out [][]complex128, src *rng.Source) {
	n := len(out)
	// Mean signal power across chains sets the noise variance, unless an
	// absolute floor is configured.
	var sp float64
	for a := 0; a < n; a++ {
		sp += dsp.Power(out[a])
	}
	sp /= float64(n)
	sigma2 := sp / dsp.FromDB(f.SNRdB)
	if f.NoiseFloor > 0 {
		sigma2 = f.NoiseFloor
	}

	for a := 0; a < n; a++ {
		// Downconverter phase offset (the impairment of section 2.2).
		dsp.Scale(out[a], cmplx.Rect(1, f.PhaseOffsets[a]))
		// Common CFO, identical on all chains (shared oscillators).
		if f.CFOHz != 0 {
			dsp.MixFrequencyInto(out[a], out[a], f.CFOHz, f.SampleRate, 0)
		}
		src.AddAWGN(out[a], sigma2)
		if f.QuantBits > 0 {
			quantize(out[a], f.QuantBits, 4*math.Sqrt(sp+sigma2))
		}
	}
}

// Transmission is one concurrent transmitter for ReceiveMulti.
type Transmission struct {
	Pos geom.Point
	// Baseband is the transmitted samples (already padded).
	Baseband []complex128
	// SampleOffset delays this transmitter's start within the capture
	// window (collisions and partial overlaps).
	SampleOffset int
	// Power scales the transmit amplitude (1 = unit power).
	Power float64
}

// ReceiveMulti simulates several transmitters on the air at once — the
// interference scenario section 3 of the paper worries about ("background
// noise and interference from other senders"). The capture window spans
// the longest transmission; each transmitter's signal propagates through
// its own multipath channel and the superposition arrives at every
// antenna.
func (f *FrontEnd) ReceiveMulti(e *env.Environment, txs []Transmission) ([][]complex128, error) {
	if len(txs) == 0 {
		return nil, errors.New("radio: no transmissions")
	}
	winLen := 0
	for _, tx := range txs {
		if len(tx.Baseband) == 0 {
			return nil, errors.New("radio: empty baseband")
		}
		if tx.SampleOffset < 0 {
			return nil, errors.New("radio: negative sample offset")
		}
		if n := tx.SampleOffset + len(tx.Baseband); n > winLen {
			winLen = n
		}
	}
	n := f.Array.N()
	out := make([][]complex128, n)
	for a := 0; a < n; a++ {
		out[a] = make([]complex128, winLen)
	}

	heard := false
	for _, tx := range txs {
		paths := e.Trace(tx.Pos, f.Pos)
		if len(paths) == 0 {
			continue // this transmitter is fully blocked
		}
		heard = true
		amp := complex(math.Sqrt(math.Max(tx.Power, 0)), 0)
		if tx.Power == 0 {
			amp = 1
		}
		for _, p := range paths {
			delayed := dsp.FractionalDelay(tx.Baseband, p.Delay, f.SampleRate)
			dsp.Scale(delayed, p.Gain*amp)
			steer := f.Array.Steering(p.BearingDeg)
			for a := 0; a < n; a++ {
				s := steer[a]
				dst := out[a][tx.SampleOffset:]
				for i, v := range delayed {
					dst[i] += v * s
				}
			}
		}
	}
	if !heard {
		return nil, fmt.Errorf("%w (all transmitters)", ErrBlocked)
	}

	f.mu.Lock()
	defer f.mu.Unlock()
	f.impair(out, f.noise)
	return out, nil
}

// quantize rounds I and Q to b-bit levels over [-fullScale, fullScale].
func quantize(x []complex128, b int, fullScale float64) {
	if fullScale <= 0 {
		return
	}
	levels := float64(int(1) << uint(b-1)) // per sign
	step := fullScale / levels
	q := func(v float64) float64 {
		v = math.Max(-fullScale, math.Min(fullScale, v))
		return math.Round(v/step) * step
	}
	for i := range x {
		x[i] = complex(q(real(x[i])), q(imag(x[i])))
	}
}

// PadPacket surrounds packet samples with lead/tail zeros so that packet
// detection sees a noise floor before the preamble and fractional path
// delays do not wrap signal energy around the buffer.
func PadPacket(samples []complex128, lead, tail int) []complex128 {
	out := make([]complex128, lead+len(samples)+tail)
	copy(out[lead:], samples)
	return out
}

// --- Calibration (section 2.2) ---

// CalibrationCapture simulates switching every front-end input from its
// antenna to the splitter fed by the reference source: each chain receives
// the same continuous carrier over an equal-length path, so the only
// phase differences between chains are the downconverter offsets (plus
// noise). n is the number of samples captured per chain.
func (f *FrontEnd) CalibrationCapture(n int) [][]complex128 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([][]complex128, f.Array.N())
	// Reference tone at a small baseband offset (a pure DC tone would
	// stress quantisers unrealistically; any common tone works since
	// offsets are estimated chain-relative).
	const toneHz = 312.5e3 // one OFDM subcarrier spacing
	sigma2 := 1 / dsp.FromDB(f.SNRdB+20)
	for a := range out {
		tone := make([]complex128, n)
		for i := range tone {
			tone[i] = cmplx.Rect(1, 2*math.Pi*toneHz*float64(i)/f.SampleRate)
		}
		dsp.Scale(tone, cmplx.Rect(1, f.PhaseOffsets[a]))
		// Cabled capture: much cleaner than over-the-air (36 dB attenuator
		// feeding directly into the front end), hence SNR + 20 dB.
		f.noise.AddAWGN(tone, sigma2)
		out[a] = tone
	}
	return out
}

// EstimateOffsets recovers each chain's phase offset relative to chain 0
// from a calibration capture: the paper's "seven relative phase offsets
// for antennas 2-8, relative to antenna one". Averaging the per-sample
// conjugate products rejects the capture noise.
func EstimateOffsets(capture [][]complex128) []float64 {
	out := make([]float64, len(capture))
	if len(capture) == 0 {
		return out
	}
	ref := capture[0]
	for a := 1; a < len(capture); a++ {
		var acc complex128
		for i := range ref {
			acc += capture[a][i] * cmplx.Conj(ref[i])
		}
		out[a] = cmplx.Phase(acc)
	}
	return out
}

// ApplyCalibration subtracts the estimated relative offsets from
// per-antenna streams in place, cancelling the downconverter phases so
// the steering model of section 2.1 applies.
func ApplyCalibration(streams [][]complex128, offsets []float64) {
	for a := range streams {
		if a >= len(offsets) {
			break
		}
		rot := cmplx.Rect(1, -offsets[a])
		dsp.Scale(streams[a], rot)
	}
}

// Calibrate runs the full section 2.2 procedure: capture, estimate,
// return the offsets to apply to subsequent over-the-air captures.
func (f *FrontEnd) Calibrate(nSamples int) []float64 {
	return EstimateOffsets(f.CalibrationCapture(nSamples))
}
