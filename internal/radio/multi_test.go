package radio

import (
	"math"
	"testing"

	"secureangle/internal/antenna"
	"secureangle/internal/env"
	"secureangle/internal/geom"
	"secureangle/internal/music"
	"secureangle/internal/rng"
)

func TestReceiveMultiErrors(t *testing.T) {
	arr := antenna.NewUCA(8, 0.047, antenna.DefaultCarrierHz)
	fe := NewFrontEnd(arr, geom.Point{}, rng.New(1))
	e := freeSpace()
	if _, err := fe.ReceiveMulti(e, nil); err == nil {
		t.Error("empty transmissions accepted")
	}
	if _, err := fe.ReceiveMulti(e, []Transmission{{Pos: geom.Point{X: 1}, Baseband: nil}}); err == nil {
		t.Error("empty baseband accepted")
	}
	if _, err := fe.ReceiveMulti(e, []Transmission{{Pos: geom.Point{X: 1}, Baseband: make([]complex128, 8), SampleOffset: -1}}); err == nil {
		t.Error("negative offset accepted")
	}
}

func TestReceiveMultiMatchesSingleTransmitter(t *testing.T) {
	// With one transmission, ReceiveMulti must be statistically
	// equivalent to Receive: check the pipeline bearing matches.
	arr := antenna.NewUCA(8, 0.047, antenna.DefaultCarrierHz)
	ap := geom.Point{}
	fe := NewFrontEnd(arr, ap, rng.New(2), WithSNR(25))
	e := freeSpace()
	tx := geom.PointAt(ap, 130, 6)
	bb := testPacket(t)

	streams, err := fe.ReceiveMulti(e, []Transmission{{Pos: tx, Baseband: bb, Power: 1}})
	if err != nil {
		t.Fatal(err)
	}
	ApplyCalibration(streams, fe.Calibrate(2000))
	r, err := music.Covariance(streams)
	if err != nil {
		t.Fatal(err)
	}
	est := &music.MUSIC{Sources: 0, Samples: len(streams[0])}
	ps, err := est.Pseudospectrum(r, arr, arr.ScanGrid(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if geom.AngularDistDeg(ps.PeakBearing(), 130) > 2.5 {
		t.Errorf("single-tx ReceiveMulti bearing = %v", ps.PeakBearing())
	}
}

func TestReceiveMultiResolvesConcurrentTransmitters(t *testing.T) {
	// Two clients transmitting simultaneously from different bearings:
	// their symbol streams are independent, so MUSIC separates both —
	// unlike coherent multipath of a single transmitter.
	arr := antenna.NewUCA(8, 0.047, antenna.DefaultCarrierHz)
	ap := geom.Point{}
	fe := NewFrontEnd(arr, ap, rng.New(3), WithSNR(25))
	e := freeSpace()
	txA := geom.PointAt(ap, 60, 6)
	txB := geom.PointAt(ap, 210, 7)

	streams, err := fe.ReceiveMulti(e, []Transmission{
		{Pos: txA, Baseband: testPacket(t), Power: 1},
		{Pos: txB, Baseband: testPacket(t), Power: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	ApplyCalibration(streams, fe.Calibrate(2000))
	r, err := music.Covariance(streams)
	if err != nil {
		t.Fatal(err)
	}
	est := &music.MUSIC{Sources: 2}
	ps, err := est.Pseudospectrum(r, arr, arr.ScanGrid(0.5))
	if err != nil {
		t.Fatal(err)
	}
	peaks := ps.Peaks(15, 15)
	if len(peaks) < 2 {
		t.Fatalf("peaks = %v", peaks)
	}
	got60, got210 := false, false
	for _, p := range peaks[:2] {
		if geom.AngularDistDeg(p.BearingDeg, 60) < 4 {
			got60 = true
		}
		if geom.AngularDistDeg(p.BearingDeg, 210) < 4 {
			got210 = true
		}
	}
	if !got60 || !got210 {
		t.Errorf("concurrent transmitters not resolved: %v", peaks[:2])
	}
}

func TestReceiveMultiOffsetWindow(t *testing.T) {
	// A transmission with a sample offset must land at that offset: the
	// energy before it should be noise-level.
	arr := antenna.NewUCA(4, 0.047, antenna.DefaultCarrierHz)
	ap := geom.Point{}
	fe := NewFrontEnd(arr, ap, rng.New(4), WithSNR(30))
	e := freeSpace()
	bb := testPacket(t)
	const off = 2000
	streams, err := fe.ReceiveMulti(e, []Transmission{
		{Pos: geom.PointAt(ap, 45, 5), Baseband: bb, SampleOffset: off, Power: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(streams[0]) != off+len(bb) {
		t.Fatalf("window length %d", len(streams[0]))
	}
	var early, late float64
	for i := 0; i < 1500; i++ {
		v := streams[0][i]
		early += real(v)*real(v) + imag(v)*imag(v)
	}
	// The padded baseband has 300 lead-in zeros; the packet body occupies
	// [off+300, off+len(bb)-300).
	for i := off + 350; i < off+len(bb)-350; i++ {
		v := streams[0][i]
		late += real(v)*real(v) + imag(v)*imag(v)
	}
	if late < 100*early {
		t.Errorf("offset energy ratio late/early = %v, want >> 1", late/math.Max(early, 1e-30))
	}
}

func TestReceiveMultiPowerScaling(t *testing.T) {
	// Power 4 should raise received energy ~4x versus power 1.
	arr := antenna.NewUCA(4, 0.047, antenna.DefaultCarrierHz)
	ap := geom.Point{}
	e := freeSpace()
	bb := testPacket(t)
	energy := func(p float64, seed int64) float64 {
		fe := NewFrontEnd(arr, ap, rng.New(seed), WithNoiseFloor(1e-15))
		streams, err := fe.ReceiveMulti(e, []Transmission{
			{Pos: geom.PointAt(ap, 45, 5), Baseband: bb, Power: p},
		})
		if err != nil {
			t.Fatal(err)
		}
		var s float64
		for _, v := range streams[0] {
			s += real(v)*real(v) + imag(v)*imag(v)
		}
		return s
	}
	e1 := energy(1, 5)
	e4 := energy(4, 5)
	if ratio := e4 / e1; math.Abs(ratio-4) > 0.2 {
		t.Errorf("power scaling ratio = %v, want ~4", ratio)
	}
}

func TestReceiveMultiAllBlocked(t *testing.T) {
	shield := env.Wall{
		Seg:  geom.Segment{A: geom.Point{X: 2, Y: -50}, B: geom.Point{X: 2, Y: 50}},
		Mat:  env.Material{Reflection: 0, Transmission: 0},
		Name: "shield",
	}
	blocked := env.New([]env.Wall{shield}, nil)
	blocked.MaxOrder = 0
	arr := antenna.NewUCA(4, 0.047, antenna.DefaultCarrierHz)
	fe := NewFrontEnd(arr, geom.Point{}, rng.New(6))
	_, err := fe.ReceiveMulti(blocked, []Transmission{
		{Pos: geom.Point{X: 5, Y: 0}, Baseband: make([]complex128, 64), Power: 1},
	})
	if err == nil {
		t.Error("fully blocked multi-receive should error")
	}
}
