package journal

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"secureangle/internal/defense"
	"secureangle/internal/fusion"
	"secureangle/internal/geom"
	"secureangle/internal/locate"
	"secureangle/internal/wifi"
)

// asV1 rewrites a current-codec payload to its version-1 byte form:
// the version byte flipped and the trailing trace ID dropped — exactly
// what a pre-trace build wrote.
func asV1(b []byte) []byte {
	v1 := append([]byte(nil), b[:len(b)-8]...)
	v1[0] = eventVersionV1
	return v1
}

// TestEventCodecV1Compat: journals written by the pre-trace codec keep
// decoding — every traced event reads back field-for-field with a zero
// trace.
func TestEventCodecV1Compat(t *testing.T) {
	mac := wifi.MustParseAddr("aa:bb:cc:dd:ee:01")
	rep := ReportEvent{AP: "ap1", APPos: geom.Point{X: 1, Y: 2}, MAC: mac, Seq: 7, BearingDeg: 33.5, Trace: 0xdead}
	gotR, err := DecodeReport(asV1(EncodeReport(rep)))
	if err != nil {
		t.Fatal(err)
	}
	wantR := rep
	wantR.Trace = 0
	if gotR != wantR {
		t.Fatalf("v1 report = %+v, want %+v", gotR, wantR)
	}

	v := defense.SpoofVerdict{AP: "ap1", MAC: mac, Flagged: true, Distance: 0.9, Threshold: 0.12, BearingDeg: 60, HasBearing: true, Stage: "spoofcheck", Trace: 0xbeef}
	gotV, err := DecodeAlert(asV1(EncodeAlert(v)))
	if err != nil {
		t.Fatal(err)
	}
	wantV := v
	wantV.Trace = 0
	if gotV != wantV {
		t.Fatalf("v1 alert = %+v, want %+v", gotV, wantV)
	}

	d := fusion.Decision{MAC: mac, Seq: 9, Pos: geom.Point{X: 3, Y: 4}, Decision: locate.Allow, APs: []string{"ap1", "ap2"}, Trace: 0xf00d}
	gotD, err := DecodeDecision(asV1(EncodeDecision(d)))
	if err != nil {
		t.Fatal(err)
	}
	if gotD.Trace != 0 || gotD.MAC != mac || gotD.Seq != 9 || len(gotD.APs) != 2 {
		t.Fatalf("v1 decision = %+v", gotD)
	}

	dir := defense.Directive{MAC: mac, Action: defense.ActionQuarantine, From: defense.StateMonitor, To: defense.StateQuarantine, Score: 3.5, Reporter: "ap1", Stage: "spoofcheck", Trace: 0xcafe}
	gotDir, err := DecodeDirective(asV1(EncodeDirective(dir)))
	if err != nil {
		t.Fatal(err)
	}
	if gotDir.Trace != 0 || gotDir.MAC != mac || gotDir.Action != defense.ActionQuarantine || gotDir.Reporter != "ap1" {
		t.Fatalf("v1 directive = %+v", gotDir)
	}

	rel := ReleaseEvent{MAC: mac, Source: "operator", Trace: 0xfeed}
	gotRel, err := DecodeRelease(asV1(EncodeRelease(rel)))
	if err != nil {
		t.Fatal(err)
	}
	if gotRel.Trace != 0 || gotRel.MAC != mac || gotRel.Source != "operator" {
		t.Fatalf("v1 release = %+v", gotRel)
	}
}

// TestEventCodecTraceRoundTrip: the current codec carries the trace
// through every event type.
func TestEventCodecTraceRoundTrip(t *testing.T) {
	mac := wifi.MustParseAddr("aa:bb:cc:dd:ee:02")
	const tr = uint64(0x0123456789abcdef)
	if got, err := DecodeReport(EncodeReport(ReportEvent{AP: "a", MAC: mac, Trace: tr})); err != nil || got.Trace != tr {
		t.Fatalf("report trace = %x, err %v", got.Trace, err)
	}
	if got, err := DecodeAlert(EncodeAlert(defense.SpoofVerdict{AP: "a", MAC: mac, Trace: tr})); err != nil || got.Trace != tr {
		t.Fatalf("alert trace = %x, err %v", got.Trace, err)
	}
	if got, err := DecodeDecision(EncodeDecision(fusion.Decision{MAC: mac, Trace: tr})); err != nil || got.Trace != tr {
		t.Fatalf("decision trace = %x, err %v", got.Trace, err)
	}
	if got, err := DecodeDirective(EncodeDirective(defense.Directive{MAC: mac, Trace: tr})); err != nil || got.Trace != tr {
		t.Fatalf("directive trace = %x, err %v", got.Trace, err)
	}
	if got, err := DecodeAck(EncodeAck(AckEvent{AP: "a", Directive: defense.Directive{MAC: mac, Trace: tr}})); err != nil || got.Directive.Trace != tr {
		t.Fatalf("ack trace = %x, err %v", got.Directive.Trace, err)
	}
	if got, err := DecodeRelease(EncodeRelease(ReleaseEvent{MAC: mac, Trace: tr})); err != nil || got.Trace != tr {
		t.Fatalf("release trace = %x, err %v", got.Trace, err)
	}
}

// writeIncidentJournal records one full incident (plus an unrelated
// MAC's report) into dir with controlled timestamps, and returns the
// incident MAC and trace.
func writeIncidentJournal(t *testing.T, dir string, base time.Time) (wifi.Addr, uint64) {
	t.Helper()
	mac := wifi.MustParseAddr("66:00:00:00:00:01")
	other := wifi.MustParseAddr("02:00:00:00:00:05")
	const tr = uint64(0xfeedfacecafebeef)
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	at := func(ms int) time.Time { return base.Add(time.Duration(ms) * time.Millisecond) }
	recs := []Record{
		{Type: RecReport, TS: at(0), Data: EncodeReport(ReportEvent{AP: "ap1", MAC: mac, Seq: 1, BearingDeg: 60, Trace: tr})},
		{Type: RecReport, TS: at(1), Data: EncodeReport(ReportEvent{AP: "ap2", MAC: other, Seq: 1, BearingDeg: 40})},
		{Type: RecAlert, TS: at(3), Data: EncodeAlert(defense.SpoofVerdict{AP: "ap1", MAC: mac, Flagged: true, Distance: 0.9, Threshold: 0.12, Stage: "spoofcheck", Trace: tr})},
		{Type: RecDecision, TS: at(5), Data: EncodeDecision(fusion.Decision{MAC: mac, Seq: 1, Pos: geom.Point{X: 30, Y: 2}, Decision: locate.Drop, APs: []string{"ap1", "ap2"}, Trace: tr})},
		{Type: RecDirective, TS: at(8), Data: EncodeDirective(defense.Directive{MAC: mac, Action: defense.ActionQuarantine, From: defense.StateAllow, To: defense.StateQuarantine, Score: 3.2, Reporter: "ap1", Stage: "spoofcheck", Trace: tr})},
		{Type: RecAck, TS: at(12), Data: EncodeAck(AckEvent{AP: "ap2", Directive: defense.Directive{MAC: mac, Action: defense.ActionQuarantine, Trace: tr}})},
		{Type: RecRelease, TS: at(20), Data: EncodeRelease(ReleaseEvent{MAC: mac, Source: "operator", Trace: tr})},
	}
	for _, rec := range recs {
		if _, err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return mac, tr
}

// TestReconstructIncidentFlat: a flat single-partition journal yields
// the ordered, latency-annotated timeline, filtered by MAC or by
// trace, and the unrelated client's records stay out of it.
func TestReconstructIncidentFlat(t *testing.T) {
	dir := t.TempDir()
	base := time.Date(2026, 8, 8, 10, 0, 0, 0, time.UTC)
	mac, tr := writeIncidentJournal(t, dir, base)

	inc, err := ReconstructIncident(dir, IncidentQuery{MAC: mac, HasMAC: true})
	if err != nil {
		t.Fatal(err)
	}
	wantTypes := []RecordType{RecReport, RecAlert, RecDecision, RecDirective, RecAck, RecRelease}
	if len(inc.Entries) != len(wantTypes) {
		t.Fatalf("timeline has %d entries, want %d: %+v", len(inc.Entries), len(wantTypes), inc.Entries)
	}
	for i, e := range inc.Entries {
		if e.Type != wantTypes[i] {
			t.Fatalf("entry %d type = %s, want %s", i, e.Type, wantTypes[i])
		}
		if e.Trace != tr {
			t.Fatalf("entry %d trace = %x, want %x", i, e.Trace, tr)
		}
	}
	// Inter-stage latencies come from the record timestamps: the
	// alert landed 3ms after the report, the ack 4ms after the
	// directive fan-out.
	if inc.Entries[1].SincePrev != 3*time.Millisecond {
		t.Fatalf("report->alert latency = %v, want 3ms", inc.Entries[1].SincePrev)
	}
	if inc.Entries[4].SincePrev != 4*time.Millisecond {
		t.Fatalf("directive->ack latency = %v, want 4ms", inc.Entries[4].SincePrev)
	}
	if len(inc.Traces) != 1 || inc.Traces[0] != tr {
		t.Fatalf("joined traces = %v", inc.Traces)
	}

	// The same timeline is reachable from the trace ID alone.
	byTrace, err := ReconstructIncident(dir, IncidentQuery{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if len(byTrace.Entries) != len(wantTypes) {
		t.Fatalf("by-trace timeline has %d entries, want %d", len(byTrace.Entries), len(wantTypes))
	}

	// Render is the CLI face; pin the load-bearing fields.
	out := inc.Render()
	for _, want := range []string{"report", "alert", "directive", "ack", "release", "trace=feedfacecafebeef", "+3ms"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render() missing %q:\n%s", want, out)
		}
	}

	// An empty query is a usage error, not an empty timeline.
	if _, err := ReconstructIncident(dir, IncidentQuery{}); err == nil {
		t.Fatal("empty query succeeded")
	}
}

// TestReconstructIncidentPartitioned: a dir/p0..pN tree merges
// per-partition streams by timestamp, and each entry names its stream.
func TestReconstructIncidentPartitioned(t *testing.T) {
	dir := t.TempDir()
	base := time.Date(2026, 8, 8, 11, 0, 0, 0, time.UTC)
	mac := wifi.MustParseAddr("66:00:00:00:00:01")
	const tr = uint64(0x1111222233334444)

	// The incident MAC's stream lives in p1; p0 holds another client.
	j0, err := Open(filepath.Join(dir, "p0"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	other := wifi.MustParseAddr("02:00:00:00:00:05")
	if _, err := j0.Append(Record{Type: RecReport, TS: base, Data: EncodeReport(ReportEvent{AP: "ap1", MAC: other, Seq: 1})}); err != nil {
		t.Fatal(err)
	}
	if err := j0.Close(); err != nil {
		t.Fatal(err)
	}
	j1, err := Open(filepath.Join(dir, "p1"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j1.Append(Record{Type: RecReport, TS: base.Add(time.Millisecond), Data: EncodeReport(ReportEvent{AP: "ap1", MAC: mac, Seq: 1, Trace: tr})}); err != nil {
		t.Fatal(err)
	}
	if _, err := j1.Append(Record{Type: RecDirective, TS: base.Add(4 * time.Millisecond), Data: EncodeDirective(defense.Directive{MAC: mac, Action: defense.ActionQuarantine, Reporter: "ap1", Trace: tr})}); err != nil {
		t.Fatal(err)
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	inc, err := ReconstructIncident(dir, IncidentQuery{MAC: mac, HasMAC: true})
	if err != nil {
		t.Fatal(err)
	}
	if inc.Partitions != 2 {
		t.Fatalf("scanned %d partitions, want 2", inc.Partitions)
	}
	if len(inc.Entries) != 2 {
		t.Fatalf("timeline has %d entries, want 2: %+v", len(inc.Entries), inc.Entries)
	}
	for _, e := range inc.Entries {
		if e.Partition != 1 {
			t.Fatalf("entry from partition %d, want 1: %+v", e.Partition, e)
		}
	}
	if inc.Entries[1].SincePrev != 3*time.Millisecond {
		t.Fatalf("report->directive latency = %v, want 3ms", inc.Entries[1].SincePrev)
	}
}

// TestReconstructIncidentCompacted: RecSkip gaps left by compaction
// carry no incident evidence and do not break reconstruction.
func TestReconstructIncidentCompacted(t *testing.T) {
	dir := t.TempDir()
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	mac, tr := writeIncidentJournal(t, dir, base)

	// Re-open and compact away benign bulk, then reconstruct from the
	// compacted segments.
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Roll to a fresh segment so the first one is compactable.
	if _, err := j.Append(Record{Type: RecRelease, TS: base.Add(time.Second), Data: EncodeRelease(ReleaseEvent{MAC: mac, Source: "decay", Trace: tr})}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	inc, err := ReconstructIncident(dir, IncidentQuery{MAC: mac, HasMAC: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(inc.Entries) != 7 {
		t.Fatalf("timeline has %d entries, want 7", len(inc.Entries))
	}
	if inc.Entries[6].Type != RecRelease || inc.Entries[6].AP != "decay" {
		t.Fatalf("final entry = %+v", inc.Entries[6])
	}
}

// TestIncidentSkipGap: a journal with an explicit compaction-gap record
// reconstructs around it.
func TestIncidentSkipGap(t *testing.T) {
	dir := t.TempDir()
	base := time.Date(2026, 8, 8, 13, 0, 0, 0, time.UTC)
	mac := wifi.MustParseAddr("66:00:00:00:00:02")
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(Record{Type: RecReport, TS: base, Data: EncodeReport(ReportEvent{AP: "ap1", MAC: mac, Seq: 1, Trace: 5})}); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(Record{Type: RecSkip, TS: base.Add(time.Millisecond), Data: EncodeSkip(SkipEvent{End: 2})}); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(Record{Type: RecRelease, TS: base.Add(2 * time.Millisecond), Data: EncodeRelease(ReleaseEvent{MAC: mac, Source: "operator", Trace: 5})}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	inc, err := ReconstructIncident(dir, IncidentQuery{MAC: mac, HasMAC: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(inc.Entries) != 2 {
		t.Fatalf("timeline has %d entries, want 2 (skip elided): %+v", len(inc.Entries), inc.Entries)
	}
}
