package journal

// Compaction-aware retention: rewrite snapshot-covered sealed segments
// keeping only incident-relevant events, so replication and multi-day
// retention do not ship the benign bulk.
//
// What stays is chosen conservatively around replay determinism:
//
//   - Directives, acks, releases, and enrollment mutations are always
//     kept (they are the audit trail and the token table).
//   - Alerts are always kept: every alert feeds a defense score, so
//     dropping any would change a replay's directive sequence.
//   - Reports and decisions survive only for MACs that had an incident
//     (an alert or directive anywhere in retained history), and only
//     within a window around that MAC's incident span. Benign-only
//     MACs never touch the defense engine, so eliding their bulk
//     leaves the replayed directive sequence intact.
//
// Elided runs are bridged by RecSkip records, so the LSN sequence
// stays contiguous and both recovery scans and replication cursors
// walk compacted history without special cases.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"

	"secureangle/internal/wifi"
)

// CompactPolicy tunes Compact. Zero fields take the defaults.
type CompactPolicy struct {
	// Window pads each incident MAC's [first, last] incident span:
	// reports/decisions for that MAC within the padded span are kept
	// (default 5 minutes).
	Window time.Duration
	// Logf, if set, receives diagnostic output.
	Logf func(format string, args ...any)
}

// DefaultCompactWindow pads incident spans during compaction.
const DefaultCompactWindow = 5 * time.Minute

// CompactStats summarises one Compact run.
type CompactStats struct {
	// SegmentsExamined counts sealed snapshot-covered candidates;
	// SegmentsRewritten those that actually shrank.
	SegmentsExamined, SegmentsRewritten int
	// RecordsDropped counts elided records; BytesReclaimed the on-disk
	// shrinkage across rewritten segments.
	RecordsDropped int
	BytesReclaimed int64
}

type incidentSpan struct {
	first, last time.Time
}

// Compact rewrites every sealed segment wholly covered by the latest
// snapshot, dropping benign bulk per pol. The active segment and any
// segment the snapshot does not cover are left untouched (they are
// still recovery's replay tail). Safe to run while appends continue;
// rewritten segments are swapped in atomically.
func (j *Journal) Compact(pol CompactPolicy) (CompactStats, error) {
	if pol.Window <= 0 {
		pol.Window = DefaultCompactWindow
	}
	var st CompactStats

	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return st, ErrClosed
	}
	snapLSN := j.snapLSN
	if err := j.syncLocked(); err != nil {
		j.mu.Unlock()
		return st, err
	}
	j.mu.Unlock()
	if snapLSN == 0 {
		return st, nil // nothing is snapshot-covered yet
	}

	// Pass 1: the incident index — every MAC with an alert or directive
	// anywhere in retained history, and its incident time span.
	incidents := map[wifi.Addr]*incidentSpan{}
	note := func(mac wifi.Addr, ts time.Time) {
		sp := incidents[mac]
		if sp == nil {
			incidents[mac] = &incidentSpan{first: ts, last: ts}
			return
		}
		if ts.Before(sp.first) {
			sp.first = ts
		}
		if ts.After(sp.last) {
			sp.last = ts
		}
	}
	err := ReadRecords(j.dir, 0, func(rec Record) error {
		switch rec.Type {
		case RecAlert:
			if v, err := DecodeAlert(rec.Data); err == nil {
				note(v.MAC, rec.TS)
			}
		case RecDirective:
			if d, err := DecodeDirective(rec.Data); err == nil {
				note(d.MAC, rec.TS)
			}
		}
		return nil
	})
	if err != nil {
		return st, fmt.Errorf("journal: compact index scan: %w", err)
	}

	keep := func(rec Record) bool {
		switch rec.Type {
		case RecReport:
			ev, err := DecodeReport(rec.Data)
			if err != nil {
				return true // undecodable: never drop what we don't understand
			}
			return inSpan(incidents[ev.MAC], rec.TS, pol.Window)
		case RecDecision:
			d, err := DecodeDecision(rec.Data)
			if err != nil {
				return true
			}
			return inSpan(incidents[d.MAC], rec.TS, pol.Window)
		default:
			return true
		}
	}

	// Pass 2: rewrite each covered sealed segment that shrinks.
	segs, err := listSegments(j.dir)
	if err != nil {
		return st, err
	}
	for i := 0; i+1 < len(segs); i++ {
		lastLSN := segs[i+1].firstLSN - 1
		if lastLSN > snapLSN {
			break // not wholly snapshot-covered (nor is anything later)
		}
		st.SegmentsExamined++
		dropped, reclaimed, err := j.compactSegment(segs[i], keep, pol)
		if err != nil {
			return st, err
		}
		if dropped > 0 {
			st.SegmentsRewritten++
			st.RecordsDropped += dropped
			st.BytesReclaimed += reclaimed
		}
	}
	return st, nil
}

func inSpan(sp *incidentSpan, ts time.Time, w time.Duration) bool {
	if sp == nil {
		return false
	}
	return !ts.Before(sp.first.Add(-w)) && !ts.After(sp.last.Add(w))
}

// compactSegment rewrites one sealed segment, eliding records keep
// rejects and bridging each elided run with a RecSkip. Returns the
// number of records dropped (0 = segment untouched) and the bytes
// reclaimed.
func (j *Journal) compactSegment(seg segmentInfo, keep func(Record) bool, pol CompactPolicy) (int, int64, error) {
	path := filepath.Join(j.dir, seg.name)
	before, err := os.Stat(path)
	if err != nil {
		return 0, 0, err
	}

	var kept []Record
	var dropped int
	// A pending elided run: firstLSN/firstTS of the run, last elided LSN.
	var runStart, runEnd uint64
	var runTS time.Time
	flushRun := func() {
		if runStart == 0 {
			return
		}
		kept = append(kept, Record{
			LSN:  runStart,
			Type: RecSkip,
			TS:   runTS,
			Data: EncodeSkip(SkipEvent{End: runEnd}),
		})
		runStart, runEnd = 0, 0
	}
	_, err = scanSegment(path, seg.firstLSN, 0, func(rec Record) error {
		end := rec.LSN
		if rec.Type == RecSkip {
			if sk, err := DecodeSkip(rec.Data); err == nil {
				end = sk.End
			}
		}
		if keep(rec) {
			flushRun()
			kept = append(kept, rec)
			return nil
		}
		dropped++
		if runStart == 0 {
			runStart, runTS = rec.LSN, rec.TS
		}
		runEnd = end
		return nil
	})
	if err != nil {
		return 0, 0, fmt.Errorf("journal: compact %s: %w", seg.name, err)
	}
	flushRun()
	if dropped == 0 {
		return 0, 0, nil
	}

	tmp := path + ".compact"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, 0, err
	}
	buf := make([]byte, 0, 1<<16)
	buf = append(buf, segMagic...)
	buf = binary.BigEndian.AppendUint16(buf, segVersion)
	buf = binary.BigEndian.AppendUint64(buf, seg.firstLSN)
	for _, rec := range kept {
		frameLen := frameFixed + len(rec.Data)
		start := len(buf)
		buf = binary.BigEndian.AppendUint32(buf, uint32(frameLen))
		buf = append(buf, 0, 0, 0, 0)
		buf = append(buf, byte(rec.Type))
		buf = binary.BigEndian.AppendUint64(buf, rec.LSN)
		buf = binary.BigEndian.AppendUint64(buf, uint64(rec.TS.UnixNano()))
		buf = append(buf, rec.Data...)
		binary.BigEndian.PutUint32(buf[start+4:start+8], crc32.Checksum(buf[start+recHdrSize:], crcTable))
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, 0, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, 0, err
	}

	// Swap under the journal lock so retention's file removals and the
	// rename cannot interleave.
	j.mu.Lock()
	err = os.Rename(tmp, path)
	j.mu.Unlock()
	if err != nil {
		os.Remove(tmp)
		return 0, 0, err
	}
	syncDir(j.dir)
	reclaimed := before.Size() - int64(len(buf))
	if pol.Logf != nil {
		pol.Logf("journal: compacted %s: dropped %d records, reclaimed %d bytes", seg.name, dropped, reclaimed)
	}
	return dropped, reclaimed, nil
}
