package journal

import (
	"bytes"
	"testing"
	"time"

	"secureangle/internal/defense"
	"secureangle/internal/geom"
	"secureangle/internal/locate"
	"secureangle/internal/wifi"
)

// writeIncident journals a synthetic two-AP incident and returns the
// cast of MACs: a benign inside client, an outside attacker racking up
// fence drops, and a spoofing attacker flagged by signature distance
// (then released by the operator).
func writeIncident(t *testing.T, dir string) (benign, fenceAttacker, spoofer wifi.Addr) {
	t.Helper()
	benign = wifi.Addr{0x02, 0, 0, 0, 0, 1}
	fenceAttacker = wifi.Addr{0x02, 0, 0, 0, 0, 2}
	spoofer = wifi.Addr{0x02, 0, 0, 0, 0, 3}
	ap1, ap2 := geom.Point{X: 0, Y: 0}, geom.Point{X: 24, Y: 0}

	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	ts := time.Unix(1_700_000_000, 0)
	step := func() time.Time { ts = ts.Add(50 * time.Millisecond); return ts }
	add := func(typ RecordType, data []byte) {
		t.Helper()
		if _, err := j.Append(Record{Type: typ, TS: step(), Data: data}); err != nil {
			t.Fatal(err)
		}
	}
	report := func(mac wifi.Addr, seq uint64, target geom.Point) {
		add(RecReport, EncodeReport(ReportEvent{AP: "ap1", APPos: ap1, MAC: mac, Seq: seq, BearingDeg: geom.BearingDeg(ap1, target)}))
		add(RecReport, EncodeReport(ReportEvent{AP: "ap2", APPos: ap2, MAC: mac, Seq: seq, BearingDeg: geom.BearingDeg(ap2, target)}))
	}

	inside, outside := geom.Point{X: 12, Y: 8}, geom.Point{X: 12, Y: 20}
	for seq := uint64(1); seq <= 2; seq++ {
		report(benign, seq, inside)
	}
	// Six drops: with the default FenceWeight 0.5 the fourth crosses the
	// default QuarantineScore 2; a sub-unity counterfactual crosses on
	// the second.
	for seq := uint64(1); seq <= 6; seq++ {
		report(fenceAttacker, seq, outside)
	}
	// One gross signature mismatch quarantines immediately under the
	// default SpoofWeight, then the operator releases it.
	add(RecAlert, EncodeAlert(defense.SpoofVerdict{
		AP: "ap1", MAC: spoofer, Flagged: true,
		Distance: 0.9, Threshold: 0.12, BearingDeg: 60, HasBearing: true, Stage: "spoofcheck",
	}))
	add(RecRelease, EncodeRelease(ReleaseEvent{MAC: spoofer, Source: "operator"}))
	return benign, fenceAttacker, spoofer
}

func testFence() *locate.Fence {
	return &locate.Fence{Boundary: geom.Rect(0, 0, 24, 16)}
}

// wireCat concatenates a replay's directive byte sequence — the
// byte-identity comparison surface.
func wireCat(res *ReplayResult) []byte {
	var out []byte
	for _, d := range res.Directives {
		out = append(out, d.Wire...)
	}
	return out
}

func TestReplayDeterminism(t *testing.T) {
	dir := t.TempDir()
	_, fenceAttacker, spoofer := writeIncident(t, dir)

	opts := ReplayOptions{Fence: testFence()}
	a, err := Replay(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Replay(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Directives) == 0 {
		t.Fatal("replay emitted no directives")
	}
	if !bytes.Equal(wireCat(a), wireCat(b)) {
		t.Fatalf("same journal + same policy diverged:\n%x\nvs\n%x", wireCat(a), wireCat(b))
	}
	for i := range a.Directives {
		if !a.Directives[i].TS.Equal(b.Directives[i].TS) || a.Directives[i].AfterLSN != b.Directives[i].AfterLSN {
			t.Errorf("directive %d provenance diverged: %+v vs %+v", i, a.Directives[i], b.Directives[i])
		}
	}

	// The incident's shape under the default policy: the spoofer was
	// quarantined and released; the fence attacker quarantined and still
	// held at end of replay.
	var sawSpooferQuar, sawSpooferRelease, sawFenceQuar bool
	for _, rd := range a.Directives {
		d := rd.Directive
		switch {
		case d.MAC == spoofer && d.To == defense.StateQuarantine:
			sawSpooferQuar = true
		case d.MAC == spoofer && d.Action == defense.ActionAllow:
			sawSpooferRelease = true
		case d.MAC == fenceAttacker && d.To == defense.StateQuarantine:
			sawFenceQuar = true
		}
	}
	if !sawSpooferQuar || !sawSpooferRelease || !sawFenceQuar {
		t.Errorf("directive sequence missing expected transitions: spooferQuar=%v spooferRelease=%v fenceQuar=%v (%d directives)",
			sawSpooferQuar, sawSpooferRelease, sawFenceQuar, len(a.Directives))
	}
	if len(a.Quarantined) != 1 || a.Quarantined[0].MAC != fenceAttacker {
		t.Errorf("end-of-replay quarantine = %+v", a.Quarantined)
	}
	if a.Reports != 16 || a.Alerts != 1 || a.Releases != 1 || a.Decisions != 8 {
		t.Errorf("replay counters = %+v", a)
	}
}

func TestReplayCounterfactualPolicyDiverges(t *testing.T) {
	dir := t.TempDir()
	benign, fenceAttacker, _ := writeIncident(t, dir)

	base, err := Replay(dir, ReplayOptions{Fence: testFence()})
	if err != nil {
		t.Fatal(err)
	}
	// "What if the quarantine bar were lower?" — 0.9 instead of 2, so
	// the second fence drop (not the fourth) quarantines the attacker.
	counter, err := Replay(dir, ReplayOptions{
		Fence: testFence(),
		Policy: defense.Policy{
			MonitorScore: 0.4, QuarantineScore: 0.9, ReleaseScore: 0.2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(wireCat(base), wireCat(counter)) {
		t.Fatal("counterfactual policy produced an identical directive sequence")
	}
	firstQuar := func(res *ReplayResult) (uint64, bool) {
		for _, rd := range res.Directives {
			if rd.Directive.MAC == fenceAttacker && rd.Directive.To == defense.StateQuarantine {
				return rd.AfterLSN, true
			}
		}
		return 0, false
	}
	baseLSN, ok1 := firstQuar(base)
	counterLSN, ok2 := firstQuar(counter)
	if !ok1 || !ok2 {
		t.Fatalf("missing fence-attacker quarantine: base=%v counter=%v", ok1, ok2)
	}
	if counterLSN >= baseLSN {
		t.Errorf("lower quarantine bar did not quarantine earlier: base after LSN %d, counterfactual after LSN %d", baseLSN, counterLSN)
	}
	// The benign inside client is quarantined under neither policy.
	for _, res := range []*ReplayResult{base, counter} {
		for _, rd := range res.Directives {
			if rd.Directive.MAC == benign {
				t.Errorf("benign client drew a directive: %+v", rd.Directive)
			}
		}
	}
}

func TestReplayTailPlaysOutDecay(t *testing.T) {
	dir := t.TempDir()
	_, fenceAttacker, _ := writeIncident(t, dir)

	// A fast-decaying counterfactual policy with a long tail: the
	// quarantine entered during the incident must decay back to release
	// within the simulated tail, with no live wall-clock waiting.
	// The bar must stay reachable under the fast decay (the default 2
	// is not: half the evidence evaporates between drops), so lower it
	// along with the release floor.
	opts := ReplayOptions{
		Fence: testFence(),
		Policy: defense.Policy{
			MonitorScore:    0.4,
			QuarantineScore: 0.9,
			ReleaseScore:    0.2,
			HalfLife:        200 * time.Millisecond,
			MinQuarantine:   time.Millisecond,
		},
		Tail: 5 * time.Second,
	}
	res, err := Replay(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantined) != 0 {
		t.Errorf("tail did not decay the quarantine: %+v", res.Quarantined)
	}
	var released bool
	for _, rd := range res.Directives {
		if rd.Directive.MAC == fenceAttacker && rd.Directive.Action == defense.ActionAllow && rd.Directive.Reporter == "decay" {
			released = true
		}
	}
	if !released {
		t.Error("no decay release in the tail")
	}
	// Tail replays are deterministic too.
	res2, err := Replay(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wireCat(res), wireCat(res2)) {
		t.Error("tail replay diverged between runs")
	}
}

func TestReplayRequiresFence(t *testing.T) {
	if _, err := Replay(t.TempDir(), ReplayOptions{}); err == nil {
		t.Fatal("fence-less replay succeeded")
	}
}
