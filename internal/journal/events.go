package journal

// The controller's journalled event vocabulary and its versioned binary
// codecs. Inputs (reports, alerts, releases) are what recovery and
// replay re-apply; outputs (decisions, directives, acks) are recorded
// for audit and for comparing a counterfactual replay against what the
// fleet actually did. Every payload opens with a codec version byte so
// old journals stay readable as fields are added.

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"secureangle/internal/defense"
	"secureangle/internal/fusion"
	"secureangle/internal/geom"
	"secureangle/internal/locate"
	"secureangle/internal/wifi"
)

// RecordType identifies a journal record's payload.
type RecordType uint8

const (
	// RecReport is one AP bearing report at controller ingest (input).
	RecReport RecordType = 1
	// RecAlert is one scored spoof verdict (input).
	RecAlert RecordType = 2
	// RecDecision is one fused fence decision (output).
	RecDecision RecordType = 3
	// RecDirective is one defense countermeasure order (output).
	RecDirective RecordType = 4
	// RecAck is one AP's applied-countermeasure acknowledgement (audit).
	RecAck RecordType = 5
	// RecRelease is one operator release (input).
	RecRelease RecordType = 6
	// RecSkip marks a compaction gap: the record's own LSN is the first
	// elided LSN and its payload carries the last. Readers advance the
	// expected sequence across the gap without dispatching anything.
	RecSkip RecordType = 7
	// RecEnroll is one enrollment-table mutation: an AP token digest
	// minted (Digest set) or revoked (Digest empty). Journalled so
	// tokens survive crash recovery and replicate to a standby — APs
	// re-home after failover without re-minting (audit/input).
	RecEnroll RecordType = 8
)

// String names the record type.
func (t RecordType) String() string {
	switch t {
	case RecReport:
		return "report"
	case RecAlert:
		return "alert"
	case RecDecision:
		return "decision"
	case RecDirective:
		return "directive"
	case RecAck:
		return "ack"
	case RecRelease:
		return "release"
	case RecSkip:
		return "skip"
	case RecEnroll:
		return "enroll"
	default:
		return fmt.Sprintf("record(%d)", uint8(t))
	}
}

// eventVersion is the current payload codec version. Version 2 appends
// a 64-bit trace ID to the report/alert/decision/directive/release
// payloads (the distributed-tracing context an incident timeline joins
// on); version-1 journals decode with a zero trace.
const eventVersion = 2

// eventVersionV1 is the pre-trace codec; still readable.
const eventVersionV1 = 1

// ReportEvent is one bearing report as ingested: the wire Report with
// the AP's position resolved against the registry at ingest time, so
// replay does not depend on the (long-gone) registration state.
type ReportEvent struct {
	AP         string
	APPos      geom.Point
	MAC        wifi.Addr
	Seq        uint64
	BearingDeg float64
	// Trace is the packet's trace ID (0 on records written by pre-v2
	// codecs or untraced wire sessions).
	Trace uint64
}

// AckEvent is one applied-countermeasure acknowledgement.
type AckEvent struct {
	AP        string
	Directive defense.Directive
}

// ReleaseEvent is one operator release.
type ReleaseEvent struct {
	MAC wifi.Addr
	// Source names the release path ("operator" for the in-process API,
	// the AP name for wire requests).
	Source string
	// Trace is the trace ID of the evidence chain being released (0
	// when the release has no traced antecedent).
	Trace uint64
}

// --- primitive append/read helpers (big endian, the netproto idiom) ---

func putStr(b []byte, s string) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

func getStr(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, errTruncated
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < n {
		return "", nil, errTruncated
	}
	return string(b[:n]), b[n:], nil
}

func putF64(b []byte, v float64) []byte {
	return binary.BigEndian.AppendUint64(b, math.Float64bits(v))
}

func putPoint(b []byte, p geom.Point) []byte { return putF64(putF64(b, p.X), p.Y) }

func putBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

var errTruncated = fmt.Errorf("journal: truncated event payload")

type reader struct {
	b   []byte
	ver byte
	err error
}

func (r *reader) str() string {
	if r.err != nil {
		return ""
	}
	s, rest, err := getStr(r.b)
	if err != nil {
		r.err = err
		return ""
	}
	r.b = rest
	return s
}

func (r *reader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 8 {
		r.err = errTruncated
		return 0
	}
	v := binary.BigEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) point() geom.Point { return geom.Point{X: r.f64(), Y: r.f64()} }

func (r *reader) byte() byte {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 1 {
		r.err = errTruncated
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *reader) bool() bool { return r.byte() != 0 }

func (r *reader) mac() wifi.Addr {
	var a wifi.Addr
	if r.err != nil {
		return a
	}
	if len(r.b) < 6 {
		r.err = errTruncated
		return a
	}
	copy(a[:], r.b[:6])
	r.b = r.b[6:]
	return a
}

func newReader(b []byte) (*reader, error) {
	if len(b) < 1 {
		return nil, errTruncated
	}
	if b[0] != eventVersion && b[0] != eventVersionV1 {
		return nil, fmt.Errorf("journal: unsupported event codec version %d", b[0])
	}
	return &reader{b: b[1:], ver: b[0]}, nil
}

// trace reads the trailing trace ID a version-2 payload carries;
// version-1 payloads decode with a zero trace.
func (r *reader) trace() uint64 {
	if r.ver < 2 {
		return 0
	}
	return r.u64()
}

// --- event codecs ---

// EncodeReport encodes a ReportEvent payload.
func EncodeReport(ev ReportEvent) []byte {
	return AppendReport(make([]byte, 0, 1+2+len(ev.AP)+16+6+8+8+8), ev)
}

// AppendReport appends a ReportEvent payload to b — the arena form
// batched ingest uses to encode a whole flush of report records into
// one reused buffer instead of one allocation per report.
func AppendReport(b []byte, ev ReportEvent) []byte {
	b = append(b, eventVersion)
	b = putStr(b, ev.AP)
	b = putPoint(b, ev.APPos)
	b = append(b, ev.MAC[:]...)
	b = binary.BigEndian.AppendUint64(b, ev.Seq)
	b = putF64(b, ev.BearingDeg)
	return binary.BigEndian.AppendUint64(b, ev.Trace)
}

// DecodeReport decodes an EncodeReport payload.
func DecodeReport(b []byte) (ReportEvent, error) {
	r, err := newReader(b)
	if err != nil {
		return ReportEvent{}, err
	}
	ev := ReportEvent{AP: r.str(), APPos: r.point(), MAC: r.mac(), Seq: r.u64(), BearingDeg: r.f64()}
	ev.Trace = r.trace()
	return ev, r.err
}

// EncodeAlert encodes a scored spoof verdict payload.
func EncodeAlert(v defense.SpoofVerdict) []byte {
	b := make([]byte, 0, 1+2+len(v.AP)+6+1+8+8+8+2+len(v.Stage))
	b = append(b, eventVersion)
	b = putStr(b, v.AP)
	b = append(b, v.MAC[:]...)
	var flags byte
	if v.Flagged {
		flags |= 1
	}
	if v.HasBearing {
		flags |= 2
	}
	b = append(b, flags)
	b = putF64(b, v.Distance)
	b = putF64(b, v.Threshold)
	b = putF64(b, v.BearingDeg)
	b = putStr(b, v.Stage)
	return binary.BigEndian.AppendUint64(b, v.Trace)
}

// DecodeAlert decodes an EncodeAlert payload.
func DecodeAlert(b []byte) (defense.SpoofVerdict, error) {
	r, err := newReader(b)
	if err != nil {
		return defense.SpoofVerdict{}, err
	}
	var v defense.SpoofVerdict
	v.AP = r.str()
	v.MAC = r.mac()
	flags := r.byte()
	v.Flagged = flags&1 != 0
	v.HasBearing = flags&2 != 0
	v.Distance = r.f64()
	v.Threshold = r.f64()
	v.BearingDeg = r.f64()
	v.Stage = r.str()
	v.Trace = r.trace()
	return v, r.err
}

// EncodeDecision encodes a fused fence decision payload.
func EncodeDecision(d fusion.Decision) []byte {
	b := make([]byte, 0, 1+6+8+16+1+1+1+8*len(d.APs))
	b = append(b, eventVersion)
	b = append(b, d.MAC[:]...)
	b = binary.BigEndian.AppendUint64(b, d.Seq)
	b = putPoint(b, d.Pos)
	b = append(b, byte(d.Decision))
	b = putBool(b, d.Forced)
	b = append(b, byte(len(d.APs)))
	for _, ap := range d.APs {
		b = putStr(b, ap)
	}
	return binary.BigEndian.AppendUint64(b, d.Trace)
}

// DecodeDecision decodes an EncodeDecision payload.
func DecodeDecision(b []byte) (fusion.Decision, error) {
	r, err := newReader(b)
	if err != nil {
		return fusion.Decision{}, err
	}
	var d fusion.Decision
	d.MAC = r.mac()
	d.Seq = r.u64()
	d.Pos = r.point()
	d.Decision = locate.Decision(r.byte())
	d.Forced = r.bool()
	n := int(r.byte())
	for i := 0; i < n && r.err == nil; i++ {
		d.APs = append(d.APs, r.str())
	}
	d.Trace = r.trace()
	return d, r.err
}

// EncodeDirective encodes a defense directive payload — the canonical
// byte form replay determinism is judged against.
func EncodeDirective(d defense.Directive) []byte {
	b := make([]byte, 0, 1+6+3+1+8*6+8+2+len(d.Reporter)+2+len(d.Stage))
	b = append(b, eventVersion)
	b = append(b, d.MAC[:]...)
	b = append(b, byte(d.Action), byte(d.From), byte(d.To))
	var flags byte
	if d.HasBearing {
		flags |= 1
	}
	if d.HasPos {
		flags |= 2
	}
	b = append(b, flags)
	b = putF64(b, d.BearingDeg)
	b = putPoint(b, d.Pos)
	b = putF64(b, d.Score)
	b = putF64(b, d.Distance)
	b = putF64(b, d.Threshold)
	b = binary.BigEndian.AppendUint64(b, uint64(d.TTL))
	b = putStr(b, d.Reporter)
	b = putStr(b, d.Stage)
	return binary.BigEndian.AppendUint64(b, d.Trace)
}

// DecodeDirective decodes an EncodeDirective payload.
func DecodeDirective(b []byte) (defense.Directive, error) {
	r, err := newReader(b)
	if err != nil {
		return defense.Directive{}, err
	}
	var d defense.Directive
	d.MAC = r.mac()
	d.Action = defense.Action(r.byte())
	d.From = defense.State(r.byte())
	d.To = defense.State(r.byte())
	flags := r.byte()
	d.HasBearing = flags&1 != 0
	d.HasPos = flags&2 != 0
	d.BearingDeg = r.f64()
	d.Pos = r.point()
	d.Score = r.f64()
	d.Distance = r.f64()
	d.Threshold = r.f64()
	d.TTL = time.Duration(r.u64())
	d.Reporter = r.str()
	d.Stage = r.str()
	d.Trace = r.trace()
	return d, r.err
}

// EncodeAck encodes an applied-countermeasure acknowledgement payload.
func EncodeAck(ev AckEvent) []byte {
	b := make([]byte, 0, 64)
	b = append(b, eventVersion)
	b = putStr(b, ev.AP)
	return putStr(b, string(EncodeDirective(ev.Directive)))
}

// DecodeAck decodes an EncodeAck payload.
func DecodeAck(b []byte) (AckEvent, error) {
	r, err := newReader(b)
	if err != nil {
		return AckEvent{}, err
	}
	var ev AckEvent
	ev.AP = r.str()
	inner := r.str()
	if r.err != nil {
		return AckEvent{}, r.err
	}
	ev.Directive, err = DecodeDirective([]byte(inner))
	return ev, err
}

// EncodeRelease encodes an operator-release payload.
func EncodeRelease(ev ReleaseEvent) []byte {
	b := make([]byte, 0, 1+6+2+len(ev.Source)+8)
	b = append(b, eventVersion)
	b = append(b, ev.MAC[:]...)
	b = putStr(b, ev.Source)
	return binary.BigEndian.AppendUint64(b, ev.Trace)
}

// DecodeRelease decodes an EncodeRelease payload.
func DecodeRelease(b []byte) (ReleaseEvent, error) {
	r, err := newReader(b)
	if err != nil {
		return ReleaseEvent{}, err
	}
	ev := ReleaseEvent{MAC: r.mac(), Source: r.str()}
	ev.Trace = r.trace()
	return ev, r.err
}

// SkipEvent is one compaction gap: the run of elided LSNs ends at End
// (inclusive). The carrying record's own LSN is the first elided LSN.
type SkipEvent struct {
	End uint64
}

// EncodeSkip encodes a compaction-gap payload.
func EncodeSkip(ev SkipEvent) []byte {
	b := make([]byte, 0, 1+8)
	b = append(b, eventVersion)
	return binary.BigEndian.AppendUint64(b, ev.End)
}

// DecodeSkip decodes an EncodeSkip payload.
func DecodeSkip(b []byte) (SkipEvent, error) {
	r, err := newReader(b)
	if err != nil {
		return SkipEvent{}, err
	}
	ev := SkipEvent{End: r.u64()}
	return ev, r.err
}

// EnrollEvent is one enrollment-table mutation. Digest is the sha256
// of the minted token (the plaintext token is never journalled); an
// empty Digest revokes the name.
type EnrollEvent struct {
	Name   string
	Digest []byte
}

// EncodeEnroll encodes an enrollment-mutation payload.
func EncodeEnroll(ev EnrollEvent) []byte {
	b := make([]byte, 0, 1+2+len(ev.Name)+2+len(ev.Digest))
	b = append(b, eventVersion)
	b = putStr(b, ev.Name)
	return putStr(b, string(ev.Digest))
}

// DecodeEnroll decodes an EncodeEnroll payload.
func DecodeEnroll(b []byte) (EnrollEvent, error) {
	r, err := newReader(b)
	if err != nil {
		return EnrollEvent{}, err
	}
	ev := EnrollEvent{Name: r.str()}
	if d := r.str(); d != "" {
		ev.Digest = []byte(d)
	}
	return ev, r.err
}

// DecodeEvent decodes a record's payload by its type, returning one of
// ReportEvent, defense.SpoofVerdict, fusion.Decision, defense.Directive,
// AckEvent, ReleaseEvent, SkipEvent, or EnrollEvent.
func DecodeEvent(rec Record) (any, error) {
	switch rec.Type {
	case RecReport:
		return DecodeReport(rec.Data)
	case RecAlert:
		return DecodeAlert(rec.Data)
	case RecDecision:
		return DecodeDecision(rec.Data)
	case RecDirective:
		return DecodeDirective(rec.Data)
	case RecAck:
		return DecodeAck(rec.Data)
	case RecRelease:
		return DecodeRelease(rec.Data)
	case RecSkip:
		return DecodeSkip(rec.Data)
	case RecEnroll:
		return DecodeEnroll(rec.Data)
	default:
		return nil, fmt.Errorf("journal: unknown record type %d", rec.Type)
	}
}

// --- the replay clock ---

// ReplayClock is a switchable time source for the fusion and defense
// engines: Set pins it to a recorded timestamp (recovery and replay
// drive it record by record), Live reverts it to wall time. The zero
// value reads wall time. Safe for concurrent use (engine sweepers read
// it from their tick loops).
type ReplayClock struct {
	ns atomic.Int64
}

// Now returns the pinned instant, or wall time when live.
func (c *ReplayClock) Now() time.Time {
	if n := c.ns.Load(); n != 0 {
		return time.Unix(0, n)
	}
	return time.Now()
}

// Set pins the clock to t.
func (c *ReplayClock) Set(t time.Time) { c.ns.Store(t.UnixNano()) }

// Live reverts the clock to wall time.
func (c *ReplayClock) Live() { c.ns.Store(0) }
