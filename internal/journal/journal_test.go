package journal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"secureangle/internal/defense"
	"secureangle/internal/fusion"
	"secureangle/internal/geom"
	"secureangle/internal/wifi"
)

// testClock is a deterministic, strictly-advancing record clock.
func testClock() func() time.Time {
	now := time.Unix(1_700_000_000, 0)
	var mu sync.Mutex
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		now = now.Add(time.Millisecond)
		return now
	}
}

func mustOpen(t *testing.T, dir string, opts Options) *Journal {
	t.Helper()
	if opts.Clock == nil {
		opts.Clock = testClock()
	}
	j, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func appendN(t *testing.T, j *Journal, typ RecordType, n int, payload []byte) (first, last uint64) {
	t.Helper()
	for i := 0; i < n; i++ {
		lsn, err := j.Append(Record{Type: typ, Data: payload})
		if err != nil {
			t.Fatal(err)
		}
		if first == 0 {
			first = lsn
		}
		last = lsn
	}
	return first, last
}

func collect(t *testing.T, dir string, after uint64) []Record {
	t.Helper()
	var out []Record
	if err := ReadRecords(dir, after, func(rec Record) error {
		// Data aliases the scan buffer per record; copy for retention.
		cp := rec
		cp.Data = append([]byte(nil), rec.Data...)
		out = append(out, cp)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestJournalAppendScanRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{})
	ev := ReportEvent{AP: "ap1", APPos: geom.Point{X: 1, Y: 2}, MAC: wifi.Addr{1, 2, 3, 4, 5, 6}, Seq: 7, BearingDeg: 42.5}
	lsn, err := j.Append(Record{Type: RecReport, Data: EncodeReport(ev)})
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 1 {
		t.Fatalf("first LSN = %d", lsn)
	}
	rel := ReleaseEvent{MAC: wifi.Addr{9, 9, 9, 9, 9, 9}, Source: "operator"}
	if _, err := j.Append(Record{Type: RecRelease, Data: EncodeRelease(rel)}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	recs := collect(t, dir, 0)
	if len(recs) != 2 {
		t.Fatalf("scanned %d records", len(recs))
	}
	if recs[0].LSN != 1 || recs[0].Type != RecReport || recs[1].LSN != 2 || recs[1].Type != RecRelease {
		t.Fatalf("records = %+v", recs)
	}
	if recs[0].TS.IsZero() || !recs[1].TS.After(recs[0].TS) {
		t.Errorf("timestamps not stamped/monotonic: %v, %v", recs[0].TS, recs[1].TS)
	}
	got, err := DecodeReport(recs[0].Data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ev) {
		t.Errorf("report round trip = %+v, want %+v", got, ev)
	}
	gotRel, err := DecodeRelease(recs[1].Data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotRel, rel) {
		t.Errorf("release round trip = %+v", gotRel)
	}
}

func TestJournalReopenContinuesLSN(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{})
	_, last := appendN(t, j, RecAlert, 5, EncodeAlert(defense.SpoofVerdict{AP: "ap1"}))
	j.Close()

	j2 := mustOpen(t, dir, Options{})
	defer j2.Close()
	lsn, err := j2.Append(Record{Type: RecAlert, Data: EncodeAlert(defense.SpoofVerdict{AP: "ap2"})})
	if err != nil {
		t.Fatal(err)
	}
	if lsn != last+1 {
		t.Fatalf("reopened journal assigned LSN %d, want %d", lsn, last+1)
	}
	j2.Sync()
	recs := collect(t, dir, 0)
	if len(recs) != 6 || recs[5].LSN != 6 {
		t.Fatalf("scan after reopen: %d records, last %+v", len(recs), recs[len(recs)-1])
	}
}

func TestJournalRotationAndScanAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every few records rotate.
	j := mustOpen(t, dir, Options{SegmentBytes: 256})
	payload := EncodeAlert(defense.SpoofVerdict{AP: "ap1", Stage: "spoofcheck"})
	_, last := appendN(t, j, RecAlert, 50, payload)
	j.Close()

	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected multiple segments, got %d", len(segs))
	}
	recs := collect(t, dir, 0)
	if len(recs) != 50 || recs[49].LSN != last {
		t.Fatalf("cross-segment scan: %d records, last LSN %d (want 50 through %d)", len(recs), recs[len(recs)-1].LSN, last)
	}
	// after-filter starts mid-stream.
	tail := collect(t, dir, 47)
	if len(tail) != 3 || tail[0].LSN != 48 {
		t.Fatalf("tail scan = %+v", tail)
	}
}

func TestJournalTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{})
	appendN(t, j, RecAlert, 10, EncodeAlert(defense.SpoofVerdict{AP: "ap1"}))
	j.Close()

	// Tear the last record: chop bytes off the only segment.
	segs, err := listSegments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments = %v (%v)", segs, err)
	}
	path := filepath.Join(dir, segs[0].name)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	recs := collect(t, dir, 0)
	if len(recs) != 9 {
		t.Fatalf("torn tail: scanned %d records, want 9", len(recs))
	}

	// Reopening appends after the durable prefix, in a fresh segment.
	j2 := mustOpen(t, dir, Options{})
	lsn, err := j2.Append(Record{Type: RecAlert, Data: EncodeAlert(defense.SpoofVerdict{AP: "ap2"})})
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 10 {
		t.Fatalf("post-tear LSN = %d, want 10", lsn)
	}
	j2.Close()
	recs = collect(t, dir, 0)
	if len(recs) != 10 || recs[9].LSN != 10 {
		t.Fatalf("post-tear scan: %d records", len(recs))
	}
	av, err := DecodeAlert(recs[9].Data)
	if err != nil || av.AP != "ap2" {
		t.Fatalf("post-tear record = %+v (%v)", av, err)
	}
}

func TestJournalCorruptRecordStopsScan(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{})
	appendN(t, j, RecAlert, 5, EncodeAlert(defense.SpoofVerdict{AP: "ap1"}))
	j.Close()

	// Flip a byte inside record 3's frame.
	segs, _ := listSegments(dir)
	path := filepath.Join(dir, segs[0].name)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Walk to the third record and corrupt its payload.
	off := segHdrSize
	for i := 0; i < 2; i++ {
		off += recHdrSize + int(binary.BigEndian.Uint32(data[off:off+4]))
	}
	data[off+recHdrSize+frameFixed] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	recs := collect(t, dir, 0)
	if len(recs) != 2 {
		t.Fatalf("scan past corruption: got %d records, want 2 (stop at the tear)", len(recs))
	}
}

func TestJournalSnapshotSaveLoadAndRetention(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{SegmentBytes: 256, MaxSegments: 2})
	payload := EncodeAlert(defense.SpoofVerdict{AP: "ap1"})
	appendN(t, j, RecAlert, 40, payload)

	state := []byte("engine-state-blob-1")
	lsn, err := j.SaveSnapshot(func(w io.Writer) error {
		_, err := w.Write(state)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 40 {
		t.Fatalf("snapshot LSN = %d, want 40", lsn)
	}
	gotLSN, r, ok, err := LatestSnapshot(dir)
	if err != nil || !ok {
		t.Fatalf("LatestSnapshot: ok=%v err=%v", ok, err)
	}
	blob, _ := io.ReadAll(r)
	r.Close()
	if gotLSN != 40 || !bytes.Equal(blob, state) {
		t.Fatalf("snapshot round trip: LSN %d, %q", gotLSN, blob)
	}

	// More traffic rotates more segments; retention may now drop sealed
	// segments covered by the snapshot, but never the uncovered tail.
	appendN(t, j, RecAlert, 40, payload)
	if _, err := j.SaveSnapshot(func(w io.Writer) error { _, err := w.Write([]byte("blob-2")); return err }); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	if len(segs) > 3 {
		t.Errorf("retention kept %d segments (cap 2 + active)", len(segs))
	}
	// Only the latest snapshotsKept snapshots remain.
	snaps, _ := listSnapshots(dir)
	if len(snaps) > snapshotsKept {
		t.Errorf("snapshot retention kept %d generations", len(snaps))
	}
	// The tail after the newest snapshot is still scannable.
	tail := collect(t, dir, j.SnapshotLSN())
	if len(tail) != 0 {
		t.Errorf("unexpected records after final snapshot: %d", len(tail))
	}
	j.Close()
}

func TestJournalNoTrimWithoutSnapshot(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{SegmentBytes: 256, MaxSegments: 2})
	appendN(t, j, RecAlert, 60, EncodeAlert(defense.SpoofVerdict{AP: "ap1"}))
	j.Close()
	recs := collect(t, dir, 0)
	if len(recs) != 60 {
		t.Fatalf("snapshot-less retention lost records: %d/60 remain", len(recs))
	}
}

func TestJournalClosedAppendFails(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{})
	j.Close()
	if _, err := j.Append(Record{Type: RecAlert, Data: []byte{1}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if err := j.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("sync after close: %v", err)
	}
}

func TestJournalFsyncPolicies(t *testing.T) {
	for _, p := range []FsyncPolicy{FsyncInterval, FsyncAlways, FsyncNever} {
		t.Run(p.String(), func(t *testing.T) {
			dir := t.TempDir()
			j := mustOpen(t, dir, Options{Fsync: p, FsyncEvery: 10 * time.Millisecond})
			appendN(t, j, RecAlert, 20, EncodeAlert(defense.SpoofVerdict{AP: "ap1"}))
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			if got := len(collect(t, dir, 0)); got != 20 {
				t.Fatalf("policy %v: %d/20 records durable after close", p, got)
			}
		})
	}
}

func TestJournalConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{SegmentBytes: 4096, Clock: time.Now})
	const (
		writers = 8
		each    = 200
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				ev := ReportEvent{AP: fmt.Sprintf("ap%d", w), Seq: uint64(i)}
				if _, err := j.Append(Record{Type: RecReport, Data: EncodeReport(ev)}); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	j.Close()
	recs := collect(t, dir, 0)
	if len(recs) != writers*each {
		t.Fatalf("concurrent append: %d/%d records", len(recs), writers*each)
	}
	for i, rec := range recs {
		if rec.LSN != uint64(i+1) {
			t.Fatalf("LSN sequence broke at %d: %d", i, rec.LSN)
		}
	}
}

func TestEventCodecRoundTrips(t *testing.T) {
	mac := wifi.Addr{0xaa, 0xbb, 0xcc, 1, 2, 3}
	dir := defense.Directive{
		MAC: mac, Action: defense.ActionNullSteer,
		From: defense.StateMonitor, To: defense.StateQuarantine,
		Reporter: "ap1", BearingDeg: 123.5, HasBearing: true,
		Pos: geom.Point{X: 3, Y: 4}, HasPos: true,
		Score: 5.25, Distance: 0.9, Threshold: 0.12, Stage: "spoofcheck",
		TTL: 10 * time.Minute,
	}
	if got, err := DecodeDirective(EncodeDirective(dir)); err != nil || !reflect.DeepEqual(got, dir) {
		t.Errorf("directive round trip = %+v (%v)", got, err)
	}
	ack := AckEvent{AP: "ap2", Directive: dir}
	if got, err := DecodeAck(EncodeAck(ack)); err != nil || !reflect.DeepEqual(got, ack) {
		t.Errorf("ack round trip = %+v (%v)", got, err)
	}
	dec := fusion.Decision{MAC: mac, Seq: 42, Pos: geom.Point{X: 1, Y: 2}, APs: []string{"ap1", "ap2"}, Forced: true}
	if got, err := DecodeDecision(EncodeDecision(dec)); err != nil || !reflect.DeepEqual(got, dec) {
		t.Errorf("decision round trip = %+v (%v)", got, err)
	}
	al := defense.SpoofVerdict{AP: "ap1", MAC: mac, Flagged: true, Distance: 0.5, Threshold: 0.12, BearingDeg: 77, HasBearing: true, Stage: "spoofcheck"}
	if got, err := DecodeAlert(EncodeAlert(al)); err != nil || !reflect.DeepEqual(got, al) {
		t.Errorf("alert round trip = %+v (%v)", got, err)
	}
	// Truncated payloads error instead of panicking.
	for _, enc := range [][]byte{EncodeDirective(dir), EncodeAck(ack), EncodeDecision(dec), EncodeAlert(al)} {
		for cut := 0; cut < len(enc); cut++ {
			if _, err := DecodeEvent(Record{Type: RecDirective, Data: enc[:cut]}); err == nil && cut < len(enc) {
				// Some prefixes of other types may decode as a different
				// shape; the guarantee is no panic, which reaching here
				// demonstrates.
				break
			}
		}
	}
}
