package journal

// Native fuzzing of the event codecs: recovery and replay feed every
// journalled payload through these decoders, and a torn write or a
// corrupted segment can hand them arbitrary bytes (the CRC catches
// media rot, not software bugs writing bad frames). Decoders must
// never panic, and whatever they accept must re-encode to a canonical
// form that is a fixed point — the same property the netproto wire
// fuzzer pins.

import (
	"bytes"
	"testing"
	"time"

	"secureangle/internal/defense"
	"secureangle/internal/fusion"
	"secureangle/internal/geom"
	"secureangle/internal/locate"
	"secureangle/internal/wifi"
)

// encodeEvent re-encodes a DecodeEvent result by its concrete type.
func encodeEvent(ev any) ([]byte, bool) {
	switch m := ev.(type) {
	case ReportEvent:
		return EncodeReport(m), true
	case defense.SpoofVerdict:
		return EncodeAlert(m), true
	case fusion.Decision:
		return EncodeDecision(m), true
	case defense.Directive:
		return EncodeDirective(m), true
	case AckEvent:
		return EncodeAck(m), true
	case ReleaseEvent:
		return EncodeRelease(m), true
	default:
		return nil, false
	}
}

func FuzzEventDecoders(f *testing.F) {
	mac := wifi.Addr{0x66, 0, 0, 0, 0, 5}
	dir := defense.Directive{
		MAC: mac, Action: defense.ActionNullSteer,
		From: defense.StateMonitor, To: defense.StateQuarantine,
		Reporter: "ap1", BearingDeg: 60, HasBearing: true,
		Pos: geom.Point{X: 3, Y: 4}, HasPos: true,
		Score: 5, Distance: 0.9, Threshold: 0.12, Stage: "spoofcheck",
		TTL: 10 * time.Minute,
	}
	seeds := []struct {
		typ  RecordType
		body []byte
	}{
		{RecReport, EncodeReport(ReportEvent{AP: "ap1", APPos: geom.Point{X: 1, Y: 2}, MAC: mac, Seq: 7, BearingDeg: 42.5})},
		{RecAlert, EncodeAlert(defense.SpoofVerdict{AP: "ap1", MAC: mac, Flagged: true, Distance: 0.9, Threshold: 0.12, BearingDeg: 60, HasBearing: true, Stage: "spoofcheck"})},
		{RecDecision, EncodeDecision(fusion.Decision{MAC: mac, Seq: 3, Pos: geom.Point{X: 12, Y: 8}, Decision: locate.Allow, APs: []string{"ap1", "ap2"}})},
		{RecDirective, EncodeDirective(dir)},
		{RecAck, EncodeAck(AckEvent{AP: "ap2", Directive: dir})},
		{RecRelease, EncodeRelease(ReleaseEvent{MAC: mac, Source: "operator"})},
		{RecReport, nil},            // empty payload
		{RecAck, []byte{0xff}},      // bad codec version
		{RecordType(99), []byte{1}}, // unknown record type
	}
	for _, s := range seeds {
		f.Add(uint8(s.typ), s.body)
	}
	f.Fuzz(func(t *testing.T, typ uint8, body []byte) {
		ev, err := DecodeEvent(Record{Type: RecordType(typ), Data: body})
		if err != nil {
			return // malformed input rejected — the contract
		}
		// Round-trip property: an accepted payload re-encodes to a
		// canonical body that decodes to the same value and re-encodes
		// identically (decoders tolerate trailing bytes, so one
		// normalisation pass is allowed before the fixed point).
		enc, ok := encodeEvent(ev)
		if !ok {
			t.Fatalf("decoded unknown event type %T", ev)
		}
		ev2, err := DecodeEvent(Record{Type: RecordType(typ), Data: enc})
		if err != nil {
			t.Fatalf("re-encoded %T does not decode: %v\ninput: %x\nre-encoded: %x", ev, err, body, enc)
		}
		enc2, ok := encodeEvent(ev2)
		if !ok {
			t.Fatalf("re-decoded unknown event type %T", ev2)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("canonical form is not a fixed point for %T:\n%x\nvs\n%x", ev, enc, enc2)
		}
	})
}
