package journal

// Incident forensics: reconstructing one client's (or one trace's)
// causal decision timeline from the WAL alone. The journal already
// records every decision-relevant event with a timestamp and — since
// codec v2 — the packet's trace ID, so report → verdict →
// score-crossing → directive → ack → release can be replayed as a
// timeline with inter-stage latencies long after the live trace ring
// has wrapped. Works on any journal layout the controller writes: a
// flat single-partition dir, a partitioned dir/p0..p{N-1} tree (entries
// merge by timestamp), a compacted journal (RecSkip gaps are elided
// bulk and carry no incident evidence), and a standby's replicated
// copy.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"secureangle/internal/defense"
	"secureangle/internal/fusion"
	"secureangle/internal/wifi"
)

// TimelineEntry is one journalled event on an incident timeline.
type TimelineEntry struct {
	// TS is the record's journal timestamp; LSN its sequence number
	// within Partition's stream (LSNs are per-partition — cross-
	// partition ordering is by TS).
	TS  time.Time
	LSN uint64
	// Partition is the partition stream the record came from (0 for a
	// flat single-partition journal).
	Partition int
	// Type is the journal record type ("report", "alert", "decision",
	// "directive", "ack", "release").
	Type RecordType
	// Trace is the event's trace ID (0 on v1 records and untraced
	// sessions).
	Trace uint64
	MAC   wifi.Addr
	// AP names the reporting/acking AP where the event has one.
	AP string
	// Detail is a one-line human summary of the event.
	Detail string
	// SincePrev is the latency from the previous timeline entry (0 on
	// the first).
	SincePrev time.Duration
}

// Incident is a reconstructed timeline for one MAC or one trace.
type Incident struct {
	MAC wifi.Addr
	// Traces lists the distinct nonzero trace IDs the timeline joined,
	// in first-seen order.
	Traces []uint64
	// Entries is the merged timeline, ordered by timestamp.
	Entries []TimelineEntry
	// Partitions is the number of partition streams scanned (1 for a
	// flat journal).
	Partitions int
	// Records is the total number of journal records scanned.
	Records int
}

// IncidentQuery selects which events join the timeline. At least one
// of MAC (with HasMAC) or Trace must be set; when both are set a
// record joins if it matches either — the trace links events (e.g. a
// directive fanning out) that a MAC filter alone would miss, and vice
// versa.
type IncidentQuery struct {
	MAC    wifi.Addr
	HasMAC bool
	// Trace filters by trace ID when nonzero.
	Trace uint64
	// After skips records with LSN <= it in every partition stream.
	After uint64
}

// incidentDirs resolves the journal layout under dir: the partition
// subdirectories for a partitioned tree, or dir itself for a flat
// journal.
func incidentDirs(dir string) ([]string, error) {
	var parts []string
	for i := 0; ; i++ {
		p := filepath.Join(dir, fmt.Sprintf("p%d", i))
		fi, err := os.Stat(p)
		if err != nil {
			if os.IsNotExist(err) {
				break
			}
			return nil, err
		}
		if !fi.IsDir() {
			break
		}
		parts = append(parts, p)
	}
	if len(parts) > 0 {
		return parts, nil
	}
	return []string{dir}, nil
}

// ReconstructIncident scans the journal layout under dir and returns
// the merged, latency-annotated timeline of every record matching q.
func ReconstructIncident(dir string, q IncidentQuery) (*Incident, error) {
	if !q.HasMAC && q.Trace == 0 {
		return nil, fmt.Errorf("journal: incident query needs a MAC or a trace ID")
	}
	dirs, err := incidentDirs(dir)
	if err != nil {
		return nil, err
	}
	inc := &Incident{MAC: q.MAC, Partitions: len(dirs)}
	for pi, pdir := range dirs {
		err := ReadRecords(pdir, q.After, func(rec Record) error {
			inc.Records++
			e, ok, err := incidentEntry(rec, q)
			if err != nil {
				return err
			}
			if ok {
				e.Partition = pi
				inc.Entries = append(inc.Entries, e)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.SliceStable(inc.Entries, func(i, j int) bool {
		a, b := inc.Entries[i], inc.Entries[j]
		if !a.TS.Equal(b.TS) {
			return a.TS.Before(b.TS)
		}
		if a.Partition != b.Partition {
			return a.Partition < b.Partition
		}
		return a.LSN < b.LSN
	})
	seen := map[uint64]bool{}
	for i := range inc.Entries {
		if i > 0 {
			inc.Entries[i].SincePrev = inc.Entries[i].TS.Sub(inc.Entries[i-1].TS)
		}
		if tr := inc.Entries[i].Trace; tr != 0 && !seen[tr] {
			seen[tr] = true
			inc.Traces = append(inc.Traces, tr)
		}
		// A by-trace query carries no MAC; name the incident after the
		// client the matched records implicate.
		if !q.HasMAC && inc.MAC == (wifi.Addr{}) {
			inc.MAC = inc.Entries[i].MAC
		}
	}
	return inc, nil
}

// incidentEntry decodes one record and reports whether it matches q.
func incidentEntry(rec Record, q IncidentQuery) (TimelineEntry, bool, error) {
	ev, err := DecodeEvent(rec)
	if err != nil {
		return TimelineEntry{}, false, fmt.Errorf("LSN %d: %w", rec.LSN, err)
	}
	e := TimelineEntry{TS: rec.TS, LSN: rec.LSN, Type: rec.Type}
	switch ev := ev.(type) {
	case ReportEvent:
		e.MAC, e.AP, e.Trace = ev.MAC, ev.AP, ev.Trace
		e.Detail = fmt.Sprintf("bearing %.1f° from %s (seq %d)", ev.BearingDeg, ev.AP, ev.Seq)
	case defense.SpoofVerdict:
		e.MAC, e.AP, e.Trace = ev.MAC, ev.AP, ev.Trace
		e.Detail = fmt.Sprintf("spoof verdict from %s: distance %.2f vs threshold %.2f (stage %s)",
			ev.AP, ev.Distance, ev.Threshold, ev.Stage)
	case fusion.Decision:
		e.MAC, e.Trace = ev.MAC, ev.Trace
		e.Detail = fmt.Sprintf("fence decision %s at (%.1f, %.1f) from %d AP(s)",
			ev.Decision, ev.Pos.X, ev.Pos.Y, len(ev.APs))
		if ev.Forced {
			e.Detail += " [forced]"
		}
	case defense.Directive:
		e.MAC, e.AP, e.Trace = ev.MAC, ev.Reporter, ev.Trace
		e.Detail = fmt.Sprintf("directive %s: %s -> %s (score %.2f, by %s)",
			ev.Action, ev.From, ev.To, ev.Score, ev.Reporter)
	case AckEvent:
		e.MAC, e.AP, e.Trace = ev.Directive.MAC, ev.AP, ev.Directive.Trace
		e.Detail = fmt.Sprintf("%s acknowledged %s applied", ev.AP, ev.Directive.Action)
	case ReleaseEvent:
		e.MAC, e.AP, e.Trace = ev.MAC, ev.Source, ev.Trace
		e.Detail = fmt.Sprintf("released (source %s)", ev.Source)
	default:
		// Skip gaps, enrollment mutations: no incident evidence.
		return TimelineEntry{}, false, nil
	}
	match := q.HasMAC && e.MAC == q.MAC
	if !match && q.Trace != 0 && e.Trace == q.Trace {
		match = true
	}
	return e, match, nil
}

// Render formats the incident as the `secureangle incident` report.
func (inc *Incident) Render() string {
	if len(inc.Entries) == 0 {
		return "no matching journal records\n"
	}
	out := fmt.Sprintf("incident timeline for %s: %d event(s) across %d partition stream(s), %d record(s) scanned\n",
		inc.MAC, len(inc.Entries), inc.Partitions, inc.Records)
	for _, e := range inc.Entries {
		gap := ""
		if e.SincePrev > 0 {
			gap = fmt.Sprintf("+%s", e.SincePrev.Truncate(time.Microsecond))
		}
		tr := ""
		if e.Trace != 0 {
			tr = fmt.Sprintf(" trace=%016x", e.Trace)
		}
		out += fmt.Sprintf("  %s %9s  p%d/%-6d %-9s %s%s\n",
			e.TS.Format("15:04:05.000000"), gap, e.Partition, e.LSN, e.Type, e.Detail, tr)
	}
	if len(inc.Traces) > 0 {
		out += "traces joined:"
		for _, tr := range inc.Traces {
			out += fmt.Sprintf(" %016x", tr)
		}
		out += "\n"
	}
	return out
}
