package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// batchRecords builds n report records with distinguishable payloads.
func batchRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{Type: RecReport, Data: []byte(fmt.Sprintf("report-%04d-padding-padding", i))}
	}
	return recs
}

// readDirBytes returns each segment file's contents keyed by name.
func readDirBytes(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte, len(segs))
	for _, seg := range segs {
		b, err := os.ReadFile(filepath.Join(dir, seg.name))
		if err != nil {
			t.Fatal(err)
		}
		out[seg.name] = b
	}
	return out
}

// TestAppendBatchMatchesSerialOnDisk pins the group-commit identity
// claim at the byte level: a batch append produces exactly the segment
// files of the same records appended one by one — same names, same
// bytes, same rotation points — so no reader (scan, cursor, recovery)
// can tell the two apart.
func TestAppendBatchMatchesSerialOnDisk(t *testing.T) {
	recs := batchRecords(40)
	fixed := func() time.Time { return time.Unix(1_700_000_000, 0) }
	// Tiny segments force several rotations mid-batch.
	opts := Options{SegmentBytes: 256, Clock: fixed}

	serialDir := t.TempDir()
	js := mustOpen(t, serialDir, opts)
	for _, r := range recs {
		if _, err := js.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	js.Close()

	for _, split := range []int{1, 7, 40} {
		batchDir := t.TempDir()
		jb := mustOpen(t, batchDir, opts)
		for start := 0; start < len(recs); start += split {
			end := min(start+split, len(recs))
			first, err := jb.AppendBatch(recs[start:end])
			if err != nil {
				t.Fatal(err)
			}
			if first != uint64(start)+1 {
				t.Fatalf("split %d: batch at %d assigned first LSN %d", split, start, first)
			}
		}
		jb.Close()

		want, got := readDirBytes(t, serialDir), readDirBytes(t, batchDir)
		if len(want) != len(got) {
			t.Fatalf("split %d: %d segments, serial wrote %d", split, len(got), len(want))
		}
		for name, wb := range want {
			if !bytes.Equal(got[name], wb) {
				t.Errorf("split %d: segment %s diverges from serial appends", split, name)
			}
		}
	}
}

// TestAppendBatchCrashYieldsWholePrefix is the group-commit crash
// test: truncating the log at any byte offset (the crash point) must
// leave a replayable prefix of whole records — LSNs 1..k with every
// payload intact — never a torn or interleaved suffix.
func TestAppendBatchCrashYieldsWholePrefix(t *testing.T) {
	recs := batchRecords(15)
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{Clock: func() time.Time { return time.Unix(1_700_000_000, 0) }})
	for start := 0; start < len(recs); start += 5 {
		if _, err := j.AppendBatch(recs[start : start+5]); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	segs, err := listSegments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("expected one segment, got %d (err %v)", len(segs), err)
	}
	whole, err := os.ReadFile(filepath.Join(dir, segs[0].name))
	if err != nil {
		t.Fatal(err)
	}

	prevKept := len(recs)
	for cut := len(whole); cut >= segHdrSize; cut-- {
		cutDir := t.TempDir()
		if err := os.WriteFile(filepath.Join(cutDir, segs[0].name), whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got := collect(t, cutDir, 0)
		if len(got) > prevKept {
			t.Fatalf("cut %d: %d records survive, more than at cut %d", cut, len(got), cut+1)
		}
		prevKept = len(got)
		for i, rec := range got {
			if rec.LSN != uint64(i)+1 {
				t.Fatalf("cut %d: record %d has LSN %d — gap in the prefix", cut, i, rec.LSN)
			}
			if !bytes.Equal(rec.Data, recs[i].Data) {
				t.Fatalf("cut %d: record %d payload torn", cut, i)
			}
		}
		// A couple of spot checks that the journal also recovers and
		// continues from the surviving prefix.
		if cut%37 == 0 {
			j2 := mustOpen(t, cutDir, Options{})
			lsn, err := j2.Append(Record{Type: RecReport, Data: []byte("after-crash")})
			if err != nil {
				t.Fatal(err)
			}
			if lsn != uint64(len(got))+1 {
				t.Fatalf("cut %d: reopened journal assigned LSN %d after %d survivors", cut, lsn, len(got))
			}
			j2.Close()
		}
	}
	if prevKept != 0 {
		t.Fatalf("cut at segment header still yields %d records", prevKept)
	}
}

// TestAppendBatchSingleFsyncUnderAlways pins the durability
// amortisation: under FsyncAlways a whole batch rides exactly one
// fsync instead of one per record.
func TestAppendBatchSingleFsyncUnderAlways(t *testing.T) {
	j := mustOpen(t, t.TempDir(), Options{Fsync: FsyncAlways})
	defer j.Close()
	if _, err := j.Append(Record{Type: RecReport, Data: []byte("warm")}); err != nil {
		t.Fatal(err)
	}
	base := j.Stats().Fsyncs
	if _, err := j.AppendBatch(batchRecords(16)); err != nil {
		t.Fatal(err)
	}
	if d := j.Stats().Fsyncs - base; d != 1 {
		t.Fatalf("batch of 16 under FsyncAlways cost %d fsyncs, want 1", d)
	}
}

// TestFsyncAlwaysConcurrentCommitters drives concurrent FsyncAlways
// appenders through the group-commit barrier: every record must be
// durable on return, the fsync count can never exceed the append
// count, and the log holds every record exactly once.
func TestFsyncAlwaysConcurrentCommitters(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{Fsync: FsyncAlways})
	const goroutines, perG = 4, 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if _, err := j.Append(Record{Type: RecReport, Data: []byte(fmt.Sprintf("g%d-%d", g, i))}); err != nil {
					t.Errorf("g%d append: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := j.Stats()
	if st.Appends != goroutines*perG {
		t.Fatalf("appends = %d", st.Appends)
	}
	if st.Fsyncs > st.Appends+1 {
		t.Fatalf("fsyncs = %d for %d appends — barrier not coalescing", st.Fsyncs, st.Appends)
	}
	j.Close()
	if got := collect(t, dir, 0); len(got) != goroutines*perG {
		t.Fatalf("recovered %d/%d records", len(got), goroutines*perG)
	}
}
