package journal

import (
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// drain pulls records from the cursor until it reports caught-up.
func drain(t *testing.T, c *Cursor) []Record {
	t.Helper()
	var out []Record
	for {
		recs, err := c.Next(1 << 20)
		if err != nil {
			t.Fatalf("cursor: %v", err)
		}
		if len(recs) == 0 {
			return out
		}
		out = append(out, recs...)
	}
}

func TestCursorStreamsAcrossRotations(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{SegmentBytes: 512, MaxSegments: 64, Fsync: FsyncNever})
	defer j.Close()

	appendN(t, j, RecReport, 50, make([]byte, 64))
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}

	c := NewCursor(dir, 0)
	defer c.Close()
	recs := drain(t, c)
	if len(recs) != 50 {
		t.Fatalf("cursor delivered %d records, want 50", len(recs))
	}
	for i, rec := range recs {
		if rec.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d, want %d", i, rec.LSN, i+1)
		}
	}

	// The cursor follows appends made after it caught up.
	_, last2 := appendN(t, j, RecReport, 30, make([]byte, 64))
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	recs = drain(t, c)
	if len(recs) != 30 {
		t.Fatalf("follow-up delivered %d records, want 30", len(recs))
	}
	if recs[len(recs)-1].LSN != last2 {
		t.Fatalf("last followed LSN %d, want %d", recs[len(recs)-1].LSN, last2)
	}
}

func TestCursorResumesFromPosition(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{SegmentBytes: 512, MaxSegments: 64, Fsync: FsyncNever})
	defer j.Close()
	appendN(t, j, RecReport, 20, make([]byte, 32))
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}

	c := NewCursor(dir, 12)
	defer c.Close()
	recs := drain(t, c)
	if len(recs) != 8 {
		t.Fatalf("cursor from 12 delivered %d records, want 8", len(recs))
	}
	if recs[0].LSN != 13 {
		t.Fatalf("first resumed LSN %d, want 13", recs[0].LSN)
	}
}

func TestCursorBootstrapsPastTrimmedHistory(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{SegmentBytes: 512, MaxSegments: 2, Fsync: FsyncNever})
	defer j.Close()
	// Snapshot so retention may drop sealed covered segments, then
	// append enough to rotate several times.
	appendN(t, j, RecReport, 100, make([]byte, 64))
	if _, err := j.SaveSnapshot(func(w io.Writer) error {
		_, err := w.Write([]byte("snap"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	appendN(t, j, RecReport, 100, make([]byte, 64))
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}

	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if segs[0].firstLSN == 1 {
		t.Skip("retention kept full history; nothing to bootstrap past")
	}

	c := NewCursor(dir, 0)
	defer c.Close()
	recs := drain(t, c)
	if len(recs) == 0 {
		t.Fatal("cursor delivered nothing")
	}
	if recs[0].LSN != segs[0].firstLSN {
		t.Fatalf("bootstrap started at LSN %d, want history start %d", recs[0].LSN, segs[0].firstLSN)
	}
	if recs[len(recs)-1].LSN != 200 {
		t.Fatalf("bootstrap ended at LSN %d, want 200", recs[len(recs)-1].LSN)
	}
}

func TestCursorParksAtTornTail(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{SegmentBytes: 1 << 20, MaxSegments: 64, Fsync: FsyncNever})
	appendN(t, j, RecReport, 10, make([]byte, 32))
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Garbage at the tail looks like a frame mid-write: the cursor must
	// deliver the valid prefix and park without error.
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, segs[len(segs)-1].name), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	c := NewCursor(dir, 0)
	defer c.Close()
	recs := drain(t, c)
	if len(recs) != 10 {
		t.Fatalf("cursor delivered %d records, want 10", len(recs))
	}
	// Still parked, still no error.
	recs, err = c.Next(1 << 20)
	if err != nil || len(recs) != 0 {
		t.Fatalf("parked cursor returned %d records, err %v", len(recs), err)
	}
}

func TestCursorSurfacesSkipRecords(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{SegmentBytes: 1 << 20, MaxSegments: 64, Fsync: FsyncNever})
	defer j.Close()
	now := time.Unix(1_700_000_000, 0)
	recs := []Record{
		{LSN: 1, Type: RecReport, TS: now, Data: []byte("a")},
		{LSN: 2, Type: RecSkip, TS: now, Data: EncodeSkip(SkipEvent{End: 5})},
		{LSN: 6, Type: RecReport, TS: now, Data: []byte("b")},
	}
	for _, rec := range recs {
		if err := j.AppendRecord(rec); err != nil {
			t.Fatalf("AppendRecord LSN %d: %v", rec.LSN, err)
		}
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}

	c := NewCursor(dir, 0)
	defer c.Close()
	got := drain(t, c)
	if len(got) != 3 {
		t.Fatalf("cursor delivered %d records, want 3 (skip surfaced verbatim)", len(got))
	}
	if got[1].Type != RecSkip || got[2].LSN != 6 {
		t.Fatalf("skip not surfaced correctly: %+v", got)
	}
}

func TestAppendRecordFollowerSemantics(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{Fsync: FsyncNever})
	defer j.Close()
	now := time.Unix(1_700_000_000, 0)

	// A virgin journal accepts any starting LSN: a fresh follower
	// bootstraps onto leader history that retention already trimmed.
	if err := j.AppendRecord(Record{LSN: 100, Type: RecReport, TS: now, Data: []byte("x")}); err != nil {
		t.Fatalf("bootstrap append: %v", err)
	}
	// Duplicates are idempotent no-ops.
	if err := j.AppendRecord(Record{LSN: 100, Type: RecReport, TS: now, Data: []byte("x")}); err != nil {
		t.Fatalf("duplicate append: %v", err)
	}
	// Gaps are refused.
	if err := j.AppendRecord(Record{LSN: 103, Type: RecReport, TS: now, Data: []byte("y")}); err == nil {
		t.Fatal("gap append succeeded, want error")
	}
	if err := j.AppendRecord(Record{LSN: 101, Type: RecReport, TS: now, Data: []byte("y")}); err != nil {
		t.Fatalf("sequential append: %v", err)
	}
	if got := j.LSN(); got != 101 {
		t.Fatalf("LSN %d, want 101", got)
	}

	// Records carrying zero LSNs belong to Append, not AppendRecord.
	if err := j.AppendRecord(Record{Type: RecReport, TS: now}); err == nil {
		t.Fatal("zero-LSN AppendRecord succeeded, want error")
	}

	// A reopened follower journal continues from its durable position.
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2 := mustOpen(t, dir, Options{Fsync: FsyncNever})
	defer j2.Close()
	if err := j2.AppendRecord(Record{LSN: 102, Type: RecReport, TS: now, Data: []byte("z")}); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
	if err := j2.AppendRecord(Record{LSN: 200, Type: RecReport, TS: now}); err == nil {
		t.Fatal("gap after reopen succeeded, want error")
	}
}
