package journal

// Deterministic re-application of the journalled event stream.
//
// ApplyRecords is the shared driver: it walks the log in LSN order,
// pins a ReplayClock to each record's timestamp, runs the caller's
// sweep hook (so time-driven transitions — decay releases, pending
// TTLs, forced decisions — happen at their recorded moments), and
// dispatches the *input* events to the caller's sinks. The controller's
// crash recovery feeds its live engines through it; Replay feeds fresh
// engines and captures the directive sequence, optionally under a
// different DefensePolicy — the counterfactual knob.

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"secureangle/internal/defense"
	"secureangle/internal/fusion"
	"secureangle/internal/locate"
)

// Hooks are ApplyRecords' sinks. Nil hooks are skipped. Clock is
// required: it is pinned to each record's timestamp before the record
// is dispatched.
type Hooks struct {
	Clock *ReplayClock
	// Sweep runs time-driven engine transitions at each record's
	// timestamp, before the record itself is applied.
	Sweep func(now time.Time)
	// OnRecord, if set, observes each record after the sweep and before
	// its event is dispatched (replay uses it to stamp provenance).
	OnRecord func(rec Record)
	// Input sinks — what recovery and replay re-apply.
	Report  func(ReportEvent)
	Alert   func(defense.SpoofVerdict)
	Release func(ReleaseEvent)
	// Enroll applies an enrollment-table mutation (token digest minted
	// or revoked) — how tokens survive recovery and failover.
	Enroll func(EnrollEvent)
	// Output observers — recorded decisions/directives/acks, for audit
	// or comparison; recovery leaves them nil (it re-derives outputs).
	Decision  func(fusion.Decision)
	Directive func(defense.Directive)
	Ack       func(AckEvent)
}

// Apply dispatches one record through h: pins the clock to the record
// timestamp, sweeps, decodes, and routes the event to its sink. It is
// the single-record core of ApplyRecords; the standby's live feed
// applies each replicated record through it. RecSkip records advance
// nothing (the elided events are compacted-away benign bulk).
func Apply(rec Record, h Hooks) error {
	if h.Clock != nil {
		h.Clock.Set(rec.TS)
	}
	if h.Sweep != nil {
		h.Sweep(rec.TS)
	}
	if h.OnRecord != nil {
		h.OnRecord(rec)
	}
	ev, err := DecodeEvent(rec)
	if err != nil {
		return fmt.Errorf("LSN %d: %w", rec.LSN, err)
	}
	switch ev := ev.(type) {
	case ReportEvent:
		if h.Report != nil {
			h.Report(ev)
		}
	case defense.SpoofVerdict:
		if h.Alert != nil {
			h.Alert(ev)
		}
	case ReleaseEvent:
		if h.Release != nil {
			h.Release(ev)
		}
	case EnrollEvent:
		if h.Enroll != nil {
			h.Enroll(ev)
		}
	case fusion.Decision:
		if h.Decision != nil {
			h.Decision(ev)
		}
	case defense.Directive:
		if h.Directive != nil {
			h.Directive(ev)
		}
	case AckEvent:
		if h.Ack != nil {
			h.Ack(ev)
		}
	case SkipEvent:
		// Compaction gap: nothing to re-apply.
	}
	return nil
}

// ApplyRecords re-applies every record in dir with LSN > after through
// h, in order, under the recorded clock. It returns the last LSN
// applied (== after when the log holds nothing newer) and the number of
// records seen. Undecodable payloads abort with an error — recovery
// must not silently skip events.
func ApplyRecords(dir string, after uint64, h Hooks) (last uint64, n int, err error) {
	if h.Clock == nil {
		return after, 0, fmt.Errorf("journal: ApplyRecords needs a Clock")
	}
	last = after
	err = ReadRecords(dir, after, func(rec Record) error {
		if err := Apply(rec, h); err != nil {
			return err
		}
		last, n = rec.LSN, n+1
		return nil
	})
	return last, n, err
}

// ReplayOptions tunes a counterfactual Replay.
type ReplayOptions struct {
	// Fence is the virtual-fence geometry of the recorded deployment.
	// Required: the journal records bearings, not the floor plan.
	Fence *locate.Fence
	// Policy is the DefensePolicy to re-run the incident under (zero
	// fields take the package defense defaults) — set it differently
	// from the recorded deployment's to ask "what would the fleet have
	// done?".
	Policy defense.Policy
	// Fusion optionally overrides fusion tuning (Fence, Emit, Clock,
	// APCount, and TickInterval are managed by Replay regardless).
	Fusion fusion.Config
	// After skips records with LSN <= it (0 replays all retained
	// history).
	After uint64
	// Tail extends the replay past the last record: the clock steps
	// forward TailStep at a time (default 50ms, the engines' tick) so
	// decay releases and TTL expiries that postdate the final event
	// still play out.
	Tail     time.Duration
	TailStep time.Duration
	// Logf, if set, receives diagnostic output.
	Logf func(format string, args ...any)
}

// ReplayedDirective is one directive the replayed policy emitted.
type ReplayedDirective struct {
	// TS is the replay-clock instant of emission; AfterLSN the last
	// journal record applied before it.
	TS        time.Time
	AfterLSN  uint64
	Directive defense.Directive
	// Wire is the canonical EncodeDirective byte form — the surface two
	// replays are byte-compared on.
	Wire []byte
}

// ReplayResult is a completed replay.
type ReplayResult struct {
	// Directives is the counterfactual directive sequence, in emission
	// order.
	Directives []ReplayedDirective
	// RecordedDirectives is the directive sequence the journal actually
	// recorded (what the live policy did), for comparison.
	RecordedDirectives []defense.Directive
	// Reports/Alerts/Releases count the re-applied inputs; Decisions the
	// fence decisions the replayed fusion engine emitted.
	Reports, Alerts, Releases, Decisions int
	// LastLSN is the last journal record applied.
	LastLSN uint64
	// Quarantined is the threat state still in quarantine when the
	// replay (including Tail) ended.
	Quarantined []defense.ClientThreat
}

// Replay re-runs a journal directory's event stream against fresh
// fusion and defense engines driven by the recorded clock, under
// opts.Policy, and returns the counterfactual directive sequence. Two
// replays of the same journal with the same options produce
// byte-identical Wire sequences: inputs are applied in LSN order on one
// goroutine, both engines iterate deterministically, and fusion sorts
// bearings before the least-squares fuse.
func Replay(dir string, opts ReplayOptions) (*ReplayResult, error) {
	if opts.Fence == nil {
		return nil, fmt.Errorf("journal: Replay needs the deployment's Fence")
	}
	if opts.TailStep <= 0 {
		opts.TailStep = 50 * time.Millisecond
	}
	clk := &ReplayClock{}
	res := &ReplayResult{}

	// The registered-AP shortcut: the live controller fuses once every
	// registered AP reported. Registrations are not journalled, so the
	// replay grows the count from the distinct AP names seen — a lower
	// bound that converges after one report from each AP.
	apSeen := map[string]bool{}

	var fusEng *fusion.Engine
	var defEng *defense.Engine
	var lastLSN uint64

	fcfg := opts.Fusion
	fcfg.Fence = opts.Fence
	fcfg.Clock = clk.Now
	fcfg.TickInterval = time.Hour // replay drives Sweep itself
	fcfg.APCount = func() int { return len(apSeen) }
	fcfg.Logf = opts.Logf
	// The decision sink mirrors the controller's closed loop: every
	// fused decision is defense evidence, and the refreshed track both
	// updates the threat's position and surfaces velocity anomalies.
	fcfg.Emit = func(d fusion.Decision) {
		res.Decisions++
		defEng.ReportFence(defense.FenceVerdict{
			MAC: d.MAC, Seq: d.Seq, Pos: d.Pos,
			Allowed: d.Decision == locate.Allow, Forced: d.Forced,
		})
		if ts, ok := fusEng.Track(d.MAC); ok {
			defEng.ReportTrack(defense.TrackVerdict{MAC: d.MAC, Pos: ts.Pos, Vel: ts.Vel})
		}
	}
	fusEng, err := fusion.New(fcfg)
	if err != nil {
		return nil, err
	}
	defer fusEng.Close()

	defEng, err = defense.New(defense.Config{
		Policy:       opts.Policy,
		Clock:        clk.Now,
		TickInterval: time.Hour,
		Logf:         opts.Logf,
		Emit: func(d defense.Directive) {
			res.Directives = append(res.Directives, ReplayedDirective{
				TS:        clk.Now(),
				AfterLSN:  lastLSN,
				Directive: d,
				Wire:      EncodeDirective(d),
			})
		},
	})
	if err != nil {
		return nil, err
	}
	defer defEng.Close()

	sweep := func(now time.Time) {
		fusEng.Sweep(now)
		defEng.Sweep(now)
	}
	var endTS time.Time
	last, _, err := ApplyRecords(dir, opts.After, Hooks{
		Clock: clk,
		Sweep: sweep,
		OnRecord: func(rec Record) {
			lastLSN = rec.LSN
			endTS = rec.TS
		},
		Report: func(ev ReportEvent) {
			res.Reports++
			apSeen[ev.AP] = true
			fusEng.Ingest(fusion.Bearing{AP: ev.AP, APPos: ev.APPos, MAC: ev.MAC, Seq: ev.Seq, Deg: ev.BearingDeg})
		},
		Alert: func(v defense.SpoofVerdict) {
			res.Alerts++
			defEng.ReportSpoof(v)
		},
		Release: func(ev ReleaseEvent) {
			res.Releases++
			defEng.Release(ev.MAC)
		},
		Directive: func(d defense.Directive) {
			res.RecordedDirectives = append(res.RecordedDirectives, d)
		},
	})
	if err != nil {
		return nil, err
	}
	res.LastLSN = last

	// Play the tail out: step the clock past the final record so
	// decay/TTL transitions complete.
	if opts.Tail > 0 && !endTS.IsZero() {
		for t := endTS.Add(opts.TailStep); !t.After(endTS.Add(opts.Tail)); t = t.Add(opts.TailStep) {
			clk.Set(t)
			sweep(t)
		}
	}
	res.Quarantined = defEng.Quarantined()
	sortThreats(res.Quarantined)
	return res, nil
}

// sortThreats orders threat states by MAC for deterministic output.
func sortThreats(ts []defense.ClientThreat) {
	sort.Slice(ts, func(i, j int) bool {
		return bytes.Compare(ts[i].MAC[:], ts[j].MAC[:]) < 0
	})
}
